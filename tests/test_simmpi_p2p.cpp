// Point-to-point semantics of the simulated message-passing runtime:
// (src, dst, tag) matching, FIFO ordering per channel, rendezvous progress,
// ring shifts via sendrecv, and communicator isolation.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::simmpi {
namespace {

TEST(P2P, PingPong) {
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) {
    double x = 0;
    if (c.rank() == 0) {
      x = 42.0;
      c.send(&x, 1, 1, 0);
      c.recv(&x, 1, 1, 1);
      EXPECT_DOUBLE_EQ(x, 43.0);
    } else {
      c.recv(&x, 1, 0, 0);
      EXPECT_DOUBLE_EQ(x, 42.0);
      x += 1.0;
      c.send(&x, 1, 0, 1);
    }
  });
}

TEST(P2P, TagMatching) {
  // Rank 0 sends two messages with different tags; rank 1 receives them in
  // the opposite order. Rendezvous sends deposit without blocking the match,
  // so tag selection must pick the right record.
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) {
    if (c.rank() == 0) {
      const double a = 1.0, b = 2.0;
      // Deposit both via sendrecv-style trick is not needed: use two sends
      // from a helper ordering. Rank 1 first asks for tag 7.
      c.send(&b, 1, 1, 7);
      c.send(&a, 1, 1, 3);
    } else {
      double x = 0, y = 0;
      c.recv(&x, 1, 0, 7);
      c.recv(&y, 1, 0, 3);
      EXPECT_DOUBLE_EQ(x, 2.0);
      EXPECT_DOUBLE_EQ(y, 1.0);
    }
  });
}

TEST(P2P, FifoPerChannel) {
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        const double v = i;
        c.send(&v, 1, 1, 0);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        double v = -1;
        c.recv(&v, 1, 0, 0);
        EXPECT_DOUBLE_EQ(v, static_cast<double>(i));
      }
    }
  });
}

TEST(P2P, RingShiftSendrecv) {
  // Classic Cannon-style circular shift: every rank passes its value left.
  const int P = 8;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    const int me = c.rank();
    const int dst = (me + P - 1) % P;  // send left
    const int src = (me + 1) % P;      // receive from right
    double mine = me, got = -1;
    c.sendrecv(&mine, 1, dst, &got, 1, src, 0);
    EXPECT_DOUBLE_EQ(got, static_cast<double>(src));
  });
}

TEST(P2P, RepeatedRingShiftsFullRotation) {
  const int P = 5;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    const int me = c.rank();
    double v = me;
    for (int step = 0; step < P; ++step) {
      double got = -1;
      c.sendrecv(&v, 1, (me + P - 1) % P, &got, 1, (me + 1) % P, 0);
      v = got;
    }
    EXPECT_DOUBLE_EQ(v, static_cast<double>(me));  // full rotation
  });
}

TEST(P2P, CommIsolation) {
  // Messages on a split communicator do not collide with world messages of
  // the same (src, dst, tag).
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) {
    Comm sub = c.split(0, c.rank());
    if (c.rank() == 0) {
      const double a = 10.0, b = 20.0;
      c.send(&a, 1, 1, 0);
      sub.send(&b, 1, 1, 0);
    } else {
      double b = 0, a = 0;
      sub.recv(&b, 1, 0, 0);
      c.recv(&a, 1, 0, 0);
      EXPECT_DOUBLE_EQ(a, 10.0);
      EXPECT_DOUBLE_EQ(b, 20.0);
    }
  });
}

TEST(P2P, ZeroByteMessage) {
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) {
    if (c.rank() == 0)
      c.send_bytes(nullptr, 0, 1, 0);
    else
      c.recv_bytes(nullptr, 0, 0, 0);
  });
}

TEST(P2P, LargePayloadIntegrity) {
  const i64 n = 100000;
  Cluster cl(2, Machine::unit_test());
  cl.run([&](Comm& c) {
    std::vector<double> buf(static_cast<size_t>(n));
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0.0);
      c.send(buf.data(), n, 1, 0);
    } else {
      c.recv(buf.data(), n, 0, 0);
      for (i64 i = 0; i < n; i += 9999)
        ASSERT_DOUBLE_EQ(buf[static_cast<size_t>(i)], static_cast<double>(i));
    }
  });
}

TEST(P2P, RankExceptionPropagates) {
  Cluster cl(2, Machine::unit_test());
  EXPECT_THROW(cl.run([](Comm& c) {
                 if (c.rank() == 1) throw Error("boom");
                 // rank 0 finishes normally; no deadlock because it does not
                 // wait on rank 1
               }),
               Error);
}

}  // namespace
}  // namespace ca3dmm::simmpi
