// Heterogeneous multi-cluster topologies (simmpi/topology.hpp) and the
// node-mapping fixes they exposed:
//
//  * Topology basics: explicit rank -> (cluster, node) map, globally unique
//    physical node ids, survivor restriction that PINS placement.
//  * Bugfix 1: group_link must derive the intra-node byte fraction from the
//    group's actual node multiset — the contiguous-placement (r-1)/(p-1)
//    shortcut undercharges inter-node traffic for strided/uneven groups.
//  * Bugfix 2: straggler attribution and trace pids must follow PHYSICAL
//    nodes after ResilientRunner's shrink renumbers the survivors.
//  * Heterogeneity-aware planning (core/hetero.hpp): weighted k partitioning
//    proportional to per-cluster GEMM rate beats the equal split on an
//    asymmetric CPU+GPU topology, with identical numerics.
//  * The 1e-6 drift gate holds for cross-cluster two-level schedules.
//  * Tuning keys carry the topology signature (schema v2).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/ca3dmm.hpp"
#include "core/hetero.hpp"
#include "costmodel/drift.hpp"
#include "costmodel/model.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "resilience/recovery.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/coll_cost.hpp"
#include "simmpi/topology.hpp"
#include "simmpi/trace.hpp"
#include "tuner/db.hpp"

namespace ca3dmm {
namespace {

using simmpi::ClusterSpec;
using simmpi::Cluster;
using simmpi::CollAlgo;
using simmpi::Comm;
using simmpi::FaultPlan;
using simmpi::GroupProfile;
using simmpi::InterClusterLink;
using simmpi::LinkParams;
using simmpi::Machine;
using simmpi::RankStats;
using simmpi::StragglerPolicy;
using simmpi::Topology;

constexpr std::uint64_t kSeedA = 51, kSeedB = 52;

Machine cpu_machine() {
  Machine m = Machine::unit_test();
  m.ranks_per_node = 2;
  return m;
}

/// GPU-like cluster: 4x the CPU rate through the device path (huge PCIe so
/// the staging term stays negligible, zero launch overhead for exact-value
/// assertions).
Machine gpu_machine() {
  Machine m = cpu_machine();
  m.use_gpu = true;
  m.gpu_flops = 4e9;
  m.gpu_peak_flops = 4e9;
  m.pcie_bandwidth = 1e15;
  m.gpu_gemm_overhead = 0.0;
  return m;
}

/// 8 CPU ranks + 8 GPU ranks joined by an inter-cluster link.
Topology cpu_gpu_topology() {
  return Topology::make({ClusterSpec{"cpu", cpu_machine(), 8},
                         ClusterSpec{"gpu", gpu_machine(), 8}},
                        InterClusterLink{5e-6, 5e8});
}

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// Runs C = A*B on `cl` under `opt` (native layouts) and returns every
/// rank's C block plus the aggregate stats.
std::vector<std::vector<double>> run_multiply(Cluster& cl, i64 m, i64 n,
                                              i64 k, const Ca3dmmOptions& opt,
                                              RankStats* stats = nullptr) {
  const int P = cl.nranks();
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P, opt);
  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  std::vector<std::vector<double>> out(static_cast<size_t>(P));
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a, b;
    fill_local(a_nat, me, kSeedA, a);
    fill_local(b_nat, me, kSeedB, b);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
    out[static_cast<size_t>(me)] = std::move(c);
  });
  if (stats) *stats = cl.aggregate_stats();
  return out;
}

// ---------------------------------------------------------------------------
// Topology basics
// ---------------------------------------------------------------------------

TEST(Topology, MapsRanksToClustersAndPhysicalNodes) {
  const Topology topo = cpu_gpu_topology();
  EXPECT_EQ(topo.nranks(), 16);
  EXPECT_EQ(topo.nclusters(), 2);
  EXPECT_FALSE(topo.single_cluster());
  // Contiguous assignment: cpu owns world ranks 0..7, gpu 8..15.
  EXPECT_EQ(topo.cluster_of_rank(0), 0);
  EXPECT_EQ(topo.cluster_of_rank(7), 0);
  EXPECT_EQ(topo.cluster_of_rank(8), 1);
  EXPECT_EQ(topo.cluster_of_rank(15), 1);
  // Node ids are globally unique: cpu nodes 0..3, gpu nodes 4..7.
  EXPECT_EQ(topo.node_of_rank(0), 0);
  EXPECT_EQ(topo.node_of_rank(7), 3);
  EXPECT_EQ(topo.node_of_rank(8), 4);
  EXPECT_EQ(topo.node_of_rank(15), 7);
  EXPECT_EQ(topo.nnodes(), 8);
  EXPECT_EQ(topo.cluster_of_node(3), 0);
  EXPECT_EQ(topo.cluster_of_node(4), 1);
  // Per-rank machines differ across the boundary.
  EXPECT_FALSE(topo.machine_of_rank(7).use_gpu);
  EXPECT_TRUE(topo.machine_of_rank(8).use_gpu);
  // The anchor machine is cluster 0's.
  EXPECT_FALSE(topo.machine().use_gpu);
}

TEST(Topology, SignatureSeparatesLayoutsAndZeroesForLegacy) {
  // The legacy single-machine model signs as 0 so v1-era tuner keys stay
  // valid; anything else must sign nonzero and distinctly.
  EXPECT_EQ(Topology::homogeneous(16, cpu_machine()).signature(), 0u);
  const std::uint64_t het = cpu_gpu_topology().signature();
  EXPECT_NE(het, 0u);
  const std::uint64_t cpu16 =
      Topology::make({ClusterSpec{"a", cpu_machine(), 8},
                      ClusterSpec{"b", cpu_machine(), 8}})
          .signature();
  EXPECT_NE(cpu16, 0u);
  EXPECT_NE(cpu16, het);
}

TEST(Topology, RestrictedToPinsPhysicalNodes) {
  // 6 ranks, 2 per node -> nodes 0,0,1,1,2,2. Dropping node 1's ranks must
  // leave the survivors on nodes 0 and 2 — NOT renumber them onto 0 and 1
  // the way rank/ranks_per_node would.
  const Topology topo = Topology::homogeneous(6, cpu_machine());
  const Topology shrunk = topo.restricted_to({0, 1, 4, 5});
  ASSERT_EQ(shrunk.nranks(), 4);
  EXPECT_EQ(shrunk.node_of_rank(0), 0);
  EXPECT_EQ(shrunk.node_of_rank(1), 0);
  EXPECT_EQ(shrunk.node_of_rank(2), 2);
  EXPECT_EQ(shrunk.node_of_rank(3), 2);
  EXPECT_EQ(shrunk.nnodes(), 2);
  EXPECT_EQ(shrunk.node_ids(), (std::vector<int>{0, 2}));
  EXPECT_EQ(shrunk.cluster_of_node(1), -1);  // no rank lives there any more
  // The shrunk map is no longer the contiguous division -> nonzero signature.
  EXPECT_NE(shrunk.signature(), 0u);
  // The legacy division would claim rank 2 sits on node 1 — the bug this
  // test pins down.
  EXPECT_NE(shrunk.node_of_rank(2), shrunk.machine().node_of_rank(2));
}

// ---------------------------------------------------------------------------
// Bugfix 1: exact node-multiset intra-node byte fraction
// ---------------------------------------------------------------------------

TEST(GroupLink, UnevenPlacementChargesExactInterNodeFraction) {
  // 4 ranks per node, intra-node links much faster than the NIC, so an
  // intra-fraction error shows up directly in the mixed beta.
  Machine mach = Machine::unit_test();
  mach.ranks_per_node = 4;
  mach.mem_bandwidth = 40e9;  // beta_intra = rpn/mem_bw = 1e-10
  mach.alpha_intra = 1e-7;
  const Topology topo = Topology::homogeneous(16, mach);

  // Group {0, 2, 4}: node 0 holds two ranks, node 1 one. Exact pair
  // counting: 2*1 ordered intra pairs of 3*2 total = 1/3. The legacy
  // contiguous shortcut says (max_rpn-1)/(p-1) = (2-1)/(3-1) = 1/2 —
  // overstating intra traffic, i.e. UNDERcharging the NIC.
  const std::vector<int> group{0, 2, 4};
  const GroupProfile exact = GroupProfile::from_topology(topo, group);
  EXPECT_NEAR(exact.intra_frac, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(simmpi::group_inter_frac(exact), 2.0 / 3.0, 1e-12);

  // from_world_ranks (the Machine-based path) must agree — the fix covers
  // both constructors.
  const GroupProfile via_machine = GroupProfile::from_world_ranks(mach, group);
  EXPECT_NEAR(via_machine.intra_frac, exact.intra_frac, 1e-15);

  // A hand-built profile with the same aggregates carries no multiset and
  // falls back to the legacy shortcut (sentinel intra_frac = -1).
  GroupProfile legacy;
  legacy.size = exact.size;
  legacy.nodes = exact.nodes;
  legacy.max_ranks_per_node = exact.max_ranks_per_node;
  legacy.single_node = false;
  ASSERT_LT(legacy.intra_frac, 0.0);
  EXPECT_NEAR(simmpi::group_inter_frac(legacy), 1.0 / 2.0, 1e-12);

  // The regression: the legacy link prices strictly less inter-node traffic,
  // so every bandwidth-bound collective on this group was undercharged.
  const LinkParams l_exact = simmpi::group_link(mach, exact);
  const LinkParams l_legacy = simmpi::group_link(mach, legacy);
  EXPECT_GT(l_exact.beta, l_legacy.beta);
  const double bytes = 1e6;
  EXPECT_GT(simmpi::t_allgather(l_exact, bytes, 3),
            simmpi::t_allgather(l_legacy, bytes, 3));
}

TEST(GroupLink, StridedReplicationGroupMatchesNodeMultiset) {
  // CA3DMM's replication groups stride by s^2; on 4-rank nodes a stride-4
  // group lands every member on a different node. Exact fraction: 0.
  Machine mach = Machine::unit_test();
  mach.ranks_per_node = 4;
  const Topology topo = Topology::homogeneous(16, mach);
  const GroupProfile g = GroupProfile::from_topology(topo, {0, 4, 8, 12});
  EXPECT_EQ(g.nodes, 4);
  EXPECT_EQ(g.max_ranks_per_node, 1);
  EXPECT_NEAR(g.intra_frac, 0.0, 1e-15);
  EXPECT_NEAR(simmpi::group_inter_frac(g), 1.0, 1e-15);
}

// ---------------------------------------------------------------------------
// Bugfix 2: physical placement survives shrink-and-replan
// ---------------------------------------------------------------------------

TEST(Recovery, StragglerAttributionSurvivesShrink) {
  // 6 ranks on 3 nodes (2 per node). Attempt 1 loses rank 0 (node 0) to a
  // kill; the survivors are renumbered 0..4. The straggler fault pins
  // PHYSICAL node 1 — whose ranks are old 2 and 3, renumbered 1 and 2.
  // Deriving nodes from the new numbering (r / ranks_per_node) would slam
  // the slowdown onto new ranks 2,3 = old ranks 3,4 — old rank 4 lives on
  // node 2 — and the degraded-node exclusion would shoot the wrong ranks.
  Machine mach = Machine::unit_test();
  mach.ranks_per_node = 2;
  resilience::ResilientRunner runner(
      6, mach, resilience::RetryPolicy{.max_attempts = 3});
  FaultPlan fp;
  fp.kills.push_back({.rank = 0, .at_op = 1});
  fp.stragglers.push_back({.node = 1, .factor = 50.0});
  runner.set_fault_plan(fp);
  StragglerPolicy sp;
  sp.enabled = true;
  sp.degrade_factor = 5.0;
  sp.min_lag_s = 1e-6;
  runner.set_straggler_policy(sp);

  const resilience::RecoveryReport rep = runner.run([](Comm& c) {
    for (int i = 0; i < 3; ++i) {
      c.charge_compute(1e6, 0);
      c.barrier();
    }
  });

  EXPECT_TRUE(rep.ok);
  ASSERT_EQ(rep.attempts_used(), 3);
  // Attempt 1: the kill fires before any barrier completes.
  EXPECT_EQ(rep.attempts[0].failed_world_ranks, (std::vector<int>{0}));
  // Attempt 2: the straggler policy must degrade PHYSICAL node 1 and fail
  // exactly its ranks — old world ranks 2 and 3.
  EXPECT_EQ(rep.attempts[1].degraded_nodes, (std::vector<int>{1}));
  EXPECT_EQ(rep.attempts[1].failed_world_ranks, (std::vector<int>{2, 3}));
  // Attempt 3 runs clean on old ranks {1, 4, 5} — nodes 0 and 2.
  EXPECT_TRUE(rep.attempts[2].ok);
  EXPECT_EQ(rep.final_nranks, 3);
  EXPECT_EQ(rep.surviving_world_ranks, (std::vector<int>{1, 4, 5}));
}

TEST(Trace, ShrunkClusterKeepsPhysicalNodePids) {
  // A cluster built on a survivor topology must emit trace process metadata
  // for the PHYSICAL nodes (0 and 2), not the contiguous renumbering (0, 1).
  const Topology topo =
      Topology::homogeneous(6, cpu_machine()).restricted_to({0, 1, 4, 5});
  Cluster cl(topo);
  cl.set_trace(true);
  cl.run([](Comm& c) { c.barrier(); });
  const std::string path = "test_hetero_trace.json";
  simmpi::write_chrome_trace_file(cl, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string trace = ss.str();
  std::remove(path.c_str());
  EXPECT_NE(trace.find("\"name\":\"node 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"node 2\""), std::string::npos);
  EXPECT_EQ(trace.find("\"name\":\"node 1\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Heterogeneous execution: numerics
// ---------------------------------------------------------------------------

struct Shape {
  const char* cls;
  i64 m, n, k;
};

TEST(HeteroExec, OracleAcrossShapeClasses) {
  const Topology topo = cpu_gpu_topology();
  const int P = topo.nranks();
  const Shape shapes[] = {
      {"square", 48, 48, 48},
      {"large-k", 16, 16, 256},
      {"large-mn", 96, 80, 16},
      {"skewed", 192, 24, 48},
  };
  for (const Shape& sh : shapes) {
    SCOPED_TRACE(sh.cls);
    const Ca3dmmOptions opt = make_hetero_options(topo, sh.m, sh.n, sh.k, P);
    const Ca3dmmPlan plan = Ca3dmmPlan::make(sh.m, sh.n, sh.k, P, opt);

    // Dense reference.
    Matrix<double> a(sh.m, sh.k), b(sh.k, sh.n), c_ref(sh.m, sh.n);
    a.fill_random(kSeedA);
    b.fill_random(kSeedB);
    gemm_ref<double>(false, false, sh.m, sh.n, sh.k, 1.0, a.data(), b.data(),
                     c_ref.data());

    Cluster cl(topo);
    const std::vector<std::vector<double>> got =
        run_multiply(cl, sh.m, sh.n, sh.k, opt);
    const BlockLayout c_nat = plan.c_native();
    for (int r = 0; r < P; ++r) {
      i64 pos = 0;
      for (const Rect& rect : c_nat.rects_of(r))
        for (i64 i = rect.r.lo; i < rect.r.hi; ++i)
          for (i64 j = rect.c.lo; j < rect.c.hi; ++j)
            ASSERT_NEAR(got[static_cast<size_t>(r)][static_cast<size_t>(pos++)],
                        c_ref(i, j), 1e-11 * static_cast<double>(sh.k + 1))
                << "rank " << r << " C(" << i << "," << j << ")";
    }

    // Machine speed never feeds the arithmetic: the same plan on a
    // homogeneous cluster returns bit-identical blocks.
    Cluster cl_hom(P, cpu_machine());
    const std::vector<std::vector<double>> hom =
        run_multiply(cl_hom, sh.m, sh.n, sh.k, opt);
    for (int r = 0; r < P; ++r) {
      ASSERT_EQ(got[static_cast<size_t>(r)].size(),
                hom[static_cast<size_t>(r)].size());
      for (size_t i = 0; i < got[static_cast<size_t>(r)].size(); ++i)
        ASSERT_EQ(got[static_cast<size_t>(r)][i], hom[static_cast<size_t>(r)][i])
            << "rank " << r << " element " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Heterogeneity-aware planning: weighted k split
// ---------------------------------------------------------------------------

TEST(HeteroPlan, AlignmentAndWeights) {
  const Topology topo = cpu_gpu_topology();
  // 2x2x4 k-task groups of 4 contiguous ranks: the cluster boundary at rank
  // 8 falls on a group boundary.
  EXPECT_TRUE(grid_aligned_with_clusters(topo, ProcGrid{2, 2, 4}));
  // Groups of 3 straddle rank 8.
  EXPECT_FALSE(grid_aligned_with_clusters(topo, ProcGrid{3, 1, 5}));

  const std::vector<double> w = k_group_weights(topo, ProcGrid{2, 2, 4});
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1e9);   // cpu rate
  EXPECT_DOUBLE_EQ(w[1], 1e9);
  EXPECT_DOUBLE_EQ(w[2], 4e9);   // gpu rate
  EXPECT_DOUBLE_EQ(w[3], 4e9);

  const Ca3dmmOptions opt = make_hetero_options(topo, 48, 48, 160, 16);
  ASSERT_TRUE(opt.force_grid.has_value());
  EXPECT_TRUE(grid_aligned_with_clusters(topo, *opt.force_grid));
  EXPECT_FALSE(opt.k_weights.empty());

  // On a single-cluster topology the call is a no-op.
  const Ca3dmmOptions hom = make_hetero_options(
      Topology::homogeneous(16, cpu_machine()), 48, 48, 160, 16);
  EXPECT_FALSE(hom.force_grid.has_value());
  EXPECT_TRUE(hom.k_weights.empty());
}

TEST(HeteroPlan, WeightedKRangePartitionsExactly) {
  Ca3dmmOptions opt;
  opt.force_grid = ProcGrid{2, 2, 4};
  opt.k_weights = {1.0, 1.0, 4.0, 4.0};
  const Ca3dmmPlan plan = Ca3dmmPlan::make(48, 48, 160, 16, opt);
  i64 covered = 0;
  i64 prev_hi = 0;
  for (int gk = 0; gk < 4; ++gk) {
    const Range r = plan.k_range(gk);
    EXPECT_EQ(r.lo, prev_hi) << "gk=" << gk;
    prev_hi = r.hi;
    covered += r.size();
  }
  EXPECT_EQ(prev_hi, 160);
  EXPECT_EQ(covered, 160);
  // Weight-proportional: 160 * {0.1, 0.1, 0.4, 0.4} = {16, 16, 64, 64}.
  EXPECT_EQ(plan.k_range(0).size(), 16);
  EXPECT_EQ(plan.k_range(1).size(), 16);
  EXPECT_EQ(plan.k_range(2).size(), 64);
  EXPECT_EQ(plan.k_range(3).size(), 64);
}

TEST(HeteroPlan, WeightedKSplitBeatsEqualSplitOnExecutedVtime) {
  // Slow compute (2e7 vs 8e7 flop/s, same fabric) so the GEMM dominates the
  // run: the equal k split leaves the fast cluster idle 3/4 of the compute
  // phase, which is exactly the imbalance the weighted split removes.
  Machine slow = cpu_machine();
  slow.flops_per_core = 2e7;
  Machine fast = slow;
  fast.flops_per_core = 8e7;
  const Topology topo =
      Topology::make({ClusterSpec{"slow", slow, 8}, ClusterSpec{"fast", fast, 8}},
                     InterClusterLink{5e-6, 5e8});
  const i64 m = 48, n = 48, k = 160;
  const ProcGrid grid{2, 2, 4};

  Ca3dmmOptions opt_hom;
  opt_hom.force_grid = grid;
  RankStats st_hom;
  Cluster cl_hom(topo);
  run_multiply(cl_hom, m, n, k, opt_hom, &st_hom);

  Ca3dmmOptions opt_het = opt_hom;
  opt_het.k_weights = k_group_weights(topo, grid);
  RankStats st_het;
  Cluster cl_het(topo);
  run_multiply(cl_het, m, n, k, opt_het, &st_het);

  // The tentpole gate: the hetero-aware plan strictly beats the equal split
  // in executed virtual time, and its compute load balance is tighter.
  EXPECT_LT(st_het.vtime, st_hom.vtime)
      << "hetero " << st_het.vtime << " vs homogeneous " << st_hom.vtime;
  // Equal split: max/mean = 4 / ((4 + 1) / 2) = 1.6. Weighted: both
  // clusters' ranks finish their GEMMs together.
  EXPECT_GT(st_hom.load_balance, 1.5);
  EXPECT_LT(st_het.load_balance, st_hom.load_balance);
  EXPECT_LT(st_het.load_balance, 1.1);

  // The model surfaces the same load-balance ratio before running anything.
  costmodel::Workload w;
  w.m = m;
  w.n = n;
  w.k = k;
  w.force_grid = grid;
  const costmodel::Prediction p_hom =
      costmodel::predict(costmodel::Algo::kCa3dmm, w, 16, topo);
  w.k_weights = opt_het.k_weights;
  const costmodel::Prediction p_het =
      costmodel::predict(costmodel::Algo::kCa3dmm, w, 16, topo);
  EXPECT_NEAR(p_hom.load_balance, st_hom.load_balance,
              1e-9 * st_hom.load_balance);
  EXPECT_NEAR(p_het.load_balance, st_het.load_balance,
              1e-9 * st_het.load_balance);
  EXPECT_LT(p_het.t_total, p_hom.t_total);
}

// ---------------------------------------------------------------------------
// Drift gate: cross-cluster two-level schedules
// ---------------------------------------------------------------------------

/// Two same-machine clusters joined by a distinct (slow) link: the
/// cross-cluster schedules engage on every cluster-spanning group while the
/// per-rank timing stays symmetric, so the engine's collective entry times
/// match the model's independent per-rank accumulation exactly.
Topology symmetric_two_cluster_topology() {
  return Topology::make({ClusterSpec{"left", cpu_machine(), 8},
                         ClusterSpec{"right", cpu_machine(), 8}},
                        InterClusterLink{5e-5, 2e8});
}

TEST(HeteroDrift, CrossClusterReduceScatterInsideGate) {
  // 2x2x4: the reduction groups take one rank from each k-task group —
  // spanning both clusters — so the reduce-scatter resolves to the
  // two-level cross-cluster schedule.
  const Topology topo = symmetric_two_cluster_topology();
  costmodel::Workload w;
  w.m = 48;
  w.n = 48;
  w.k = 64;
  w.force_grid = ProcGrid{2, 2, 4};
  w.coll.reduce_scatter = CollAlgo::kCrossCluster;
  for (const costmodel::Algo algo :
       {costmodel::Algo::kCa3dmm, costmodel::Algo::kCa3dmmSumma}) {
    Cluster cl(topo);
    const costmodel::DriftReport rep = costmodel::check_drift(algo, w, cl);
    EXPECT_TRUE(rep.ok()) << costmodel::algo_name(algo) << "\n" << rep.table();
  }
}

TEST(HeteroDrift, CrossClusterAllgatherInsideGate) {
  // 8x2x1: c = 4, s = 2. Replication groups stride by s^2 = 4 across the
  // single k-task group of all 16 ranks, so each {idx, idx+4, idx+8,
  // idx+12} group spans both clusters and the replication all-gather takes
  // the cross-cluster schedule.
  const Topology topo = symmetric_two_cluster_topology();
  costmodel::Workload w;
  w.m = 128;
  w.n = 32;
  w.k = 32;
  w.force_grid = ProcGrid{8, 2, 1};
  w.coll.allgather = CollAlgo::kCrossCluster;
  Cluster cl(topo);
  const costmodel::DriftReport rep =
      costmodel::check_drift(costmodel::Algo::kCa3dmm, w, cl);
  EXPECT_TRUE(rep.ok()) << rep.table();
}

TEST(HeteroDrift, AutoResolvesToCrossClusterAndStaysInsideGate) {
  // kAuto must route every cluster-spanning group to the cross-cluster
  // schedule in the engine and the model alike.
  const Topology topo = symmetric_two_cluster_topology();
  costmodel::Workload w;
  w.m = 48;
  w.n = 48;
  w.k = 64;
  w.force_grid = ProcGrid{2, 2, 4};
  w.coll = simmpi::CollectiveConfig::tuned();
  Cluster cl(topo);
  const costmodel::DriftReport rep =
      costmodel::check_drift(costmodel::Algo::kCa3dmm, w, cl);
  EXPECT_TRUE(rep.ok()) << rep.table();
}

TEST(HeteroDrift, WeightedKSplitTotalAndMemoryInsideGate) {
  // k_weights thread through Workload -> Ca3dmmOptions identically, so the
  // model reproduces the executed TOTAL vtime and peak memory of a weighted
  // partition exactly. Per-phase attribution is not gated here: uneven k
  // slices make ranks block at sync points, and the engine charges that
  // wait into whichever phase the rank happens to be in, which the model's
  // independent per-rank accumulation does not mirror phase-by-phase.
  const Topology topo = symmetric_two_cluster_topology();
  costmodel::Workload w;
  w.m = 48;
  w.n = 48;
  w.k = 160;
  w.force_grid = ProcGrid{2, 2, 4};
  w.k_weights = {1.0, 1.0, 3.0, 3.0};
  w.coll.reduce_scatter = CollAlgo::kCrossCluster;
  Cluster cl(topo);
  const costmodel::DriftReport rep =
      costmodel::check_drift(costmodel::Algo::kCa3dmm, w, cl);
  EXPECT_FALSE(rep.total.flagged) << rep.table();
  EXPECT_FALSE(rep.peak_bytes_flagged) << rep.table();
}

// ---------------------------------------------------------------------------
// Tuner keys carry the topology signature
// ---------------------------------------------------------------------------

TEST(TunerDb, TopologyKeysSeparateEntriesAndRoundTrip) {
  const Topology het = cpu_gpu_topology();
  const Machine mach = cpu_machine();

  // Homogeneous Topology keys collide with legacy Machine keys (signature
  // 0), so v2 files keep sharing entries across the old and new call sites.
  const tuner::TuningKey legacy = tuner::make_key(512, 512, 512, 16, mach);
  const tuner::TuningKey hom =
      tuner::make_key(512, 512, 512, 16, Topology::homogeneous(16, mach));
  EXPECT_EQ(legacy, hom);
  EXPECT_EQ(hom.topo, 0u);

  // A heterogeneous topology never shares a decision with the homogeneous
  // layout of the same rank count.
  const tuner::TuningKey hkey = tuner::make_key(512, 512, 512, 16, het);
  EXPECT_EQ(hkey.topo, het.signature());
  EXPECT_NE(hkey, hom);

  // Round trip through the v2 text format, including the cross-cluster
  // schedule token.
  tuner::TuningDb db;
  tuner::TuningEntry e;
  e.key = hkey;
  e.rep_m = e.rep_n = e.rep_k = 512;
  e.config.grid = ProcGrid{2, 2, 4};
  e.config.coll.allgather = CollAlgo::kCrossCluster;
  e.config.coll.reduce_scatter = CollAlgo::kCrossCluster;
  e.predicted_s = 1.5;
  db.put(e);
  const std::string blob = db.serialize();
  EXPECT_NE(blob.find("xc"), std::string::npos);
  tuner::TuningDb db2;
  ASSERT_TRUE(db2.deserialize(blob));
  const auto found = db2.find(hkey);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, e);
}

TEST(TunerDb, RejectsSchemaV1Files) {
  // v1 files carry no topology field; the DB must ignore them wholesale (a
  // tuning DB is a cache — never a way to break a run).
  tuner::TuningDb db;
  std::string v1 = "ca3dmm-tuning-db schema 1 costmodel ";
  v1 += std::to_string(costmodel::kCostModelVersion);
  v1 += "\nentries 0\n";
  EXPECT_FALSE(db.deserialize(v1));
  EXPECT_EQ(db.size(), 0u);
}

}  // namespace
}  // namespace ca3dmm
