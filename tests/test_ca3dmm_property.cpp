// Property sweep: CA3DMM equals the serial reference for randomly sampled
// shapes, process counts, transposes, layouts, and engine options. Each
// sampled configuration is an independent parameterized test case, so a
// failure pinpoints the configuration.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/ca3dmm.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

struct PropertyCase {
  i64 m, n, k;
  int P;
  bool ta, tb;
  int layout;    // 0 col, 1 row, 2 grid
  i64 min_kblk;
  bool use_summa;
};

std::vector<PropertyCase> sample_cases() {
  // Deterministic sampling: the suite is reproducible run to run.
  Rng rng(2026);
  std::vector<PropertyCase> cases;
  for (int i = 0; i < 48; ++i) {
    PropertyCase c;
    c.m = rng.uniform(1, 90);
    c.n = rng.uniform(1, 90);
    c.k = rng.uniform(1, 140);
    c.P = static_cast<int>(rng.uniform(1, 20));
    c.ta = rng.uniform(0, 1) == 1;
    c.tb = rng.uniform(0, 1) == 1;
    c.layout = static_cast<int>(rng.uniform(0, 2));
    c.min_kblk = rng.uniform(0, 1) == 1 ? 0 : rng.uniform(4, 256);
    c.use_summa = rng.uniform(0, 3) == 0;  // 25% SUMMA inner engine
    cases.push_back(c);
  }
  return cases;
}

BlockLayout pick_layout(int kind, i64 rows, i64 cols, int P) {
  switch (kind) {
    case 0: return BlockLayout::col_1d(rows, cols, P);
    case 1: return BlockLayout::row_1d(rows, cols, P);
    default: {
      int pr = 1;
      for (int d = 1; d * d <= P; ++d)
        if (P % d == 0) pr = d;
      return BlockLayout::grid_2d(rows, cols, pr, P / pr,
                                  /*col_major_ranks=*/(rows + cols) % 2 == 0);
    }
  }
}

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

class Ca3dmmProperty : public ::testing::TestWithParam<int> {};

TEST_P(Ca3dmmProperty, MatchesReference) {
  const PropertyCase c =
      sample_cases()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(strprintf("m=%lld n=%lld k=%lld P=%d ta=%d tb=%d layout=%d "
                         "min_kblk=%lld summa=%d",
                         static_cast<long long>(c.m),
                         static_cast<long long>(c.n),
                         static_cast<long long>(c.k), c.P, c.ta, c.tb,
                         c.layout, static_cast<long long>(c.min_kblk),
                         c.use_summa));

  Matrix<double> a(c.ta ? c.k : c.m, c.ta ? c.m : c.k),
      b(c.tb ? c.n : c.k, c.tb ? c.k : c.n);
  a.fill_random(41);
  b.fill_random(42);
  Matrix<double> c_ref(c.m, c.n);
  gemm_ref<double>(c.ta, c.tb, c.m, c.n, c.k, 1.0, a.data(), b.data(),
                   c_ref.data());

  const BlockLayout a_lay = pick_layout(c.layout, a.rows(), a.cols(), c.P);
  const BlockLayout b_lay = pick_layout(c.layout, b.rows(), b.cols(), c.P);
  const BlockLayout c_lay = pick_layout(c.layout, c.m, c.n, c.P);

  Ca3dmmOptions opt;
  opt.min_kblk = c.min_kblk;
  opt.use_summa = c.use_summa;
  const Ca3dmmPlan plan = Ca3dmmPlan::make(c.m, c.n, c.k, c.P, opt);

  Cluster cl(c.P, Machine::unit_test());
  cl.run([&](Comm& world) {
    std::vector<double> al, bl;
    fill_local(a_lay, world.rank(), 41, al);
    fill_local(b_lay, world.rank(), 42, bl);
    std::vector<double> cb(
        static_cast<size_t>(c_lay.local_size(world.rank())));
    ca3dmm_multiply<double>(world, plan, c.ta, c.tb, a_lay, al.data(), b_lay,
                            bl.data(), c_lay, cb.data());
    i64 pos = 0;
    for (const Rect& r : c_lay.rects_of(world.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          ASSERT_NEAR(cb[static_cast<size_t>(pos++)], c_ref(i, j),
                      1e-11 * (c.k + 1));
  });
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, Ca3dmmProperty, ::testing::Range(0, 48));

}  // namespace
}  // namespace ca3dmm
