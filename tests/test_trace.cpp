// Virtual-time tracing: export determinism, zero-perturbation when enabled,
// Chrome trace-event structure, per-phase aggregation, critical-path
// extraction, and the prediction-drift gate.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/ca3dmm.hpp"
#include "costmodel/drift.hpp"
#include "engine/engine.hpp"
#include "simmpi/trace.hpp"

namespace ca3dmm {
namespace {

using costmodel::Algo;
using costmodel::Workload;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;
using simmpi::Phase;
using simmpi::TraceKind;
using simmpi::TraceRecord;

Machine small_nodes() {
  Machine m = Machine::phoenix_mpi();
  m.ranks_per_node = 4;
  m.cores_per_node = 4;
  return m;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs one CA3DMM multiply, returns the final per-rank virtual clocks and
/// (via `c_out`) rank 0's C block.
std::vector<double> run_traced(const Workload& w, int P, const Machine& mach,
                               bool trace, std::vector<double>* c_out) {
  Cluster cl(P, mach);
  cl.set_trace(trace);
  costmodel::run_workload(Algo::kCa3dmm, w, cl);
  std::vector<double> clocks;
  for (int r = 0; r < P; ++r) clocks.push_back(cl.stats(r).vtime);
  if (c_out) {
    // Second run capturing rank 0's C block, with the same trace setting.
    Cluster cl2(P, mach);
    cl2.set_trace(trace);
    const Ca3dmmPlan plan = Ca3dmmPlan::make(w.m, w.n, w.k, P);
    const BlockLayout lc = plan.c_native();
    std::vector<std::vector<double>> cs(static_cast<size_t>(P));
    cl2.run([&](Comm& world) {
      const Ca3dmmPlan p2 = Ca3dmmPlan::make(w.m, w.n, w.k, P);
      const BlockLayout la = p2.a_native(), lb = p2.b_native();
      std::vector<double> a(static_cast<size_t>(la.local_size(world.rank()))),
          b(static_cast<size_t>(lb.local_size(world.rank())));
      for (size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<double>(i % 7) - 3.0;
      for (size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<double>(i % 5) - 2.0;
      auto& c = cs[static_cast<size_t>(world.rank())];
      c.assign(static_cast<size_t>(lc.local_size(world.rank())), 0.0);
      ca3dmm_multiply<double>(world, p2, false, false, la, a.data(), lb,
                              b.data(), lc, c.data());
    });
    *c_out = cs[0];
  }
  return clocks;
}

// ---- determinism and zero perturbation ----

TEST(Trace, ExportIsByteIdenticalAcrossRuns) {
  const Workload w{32, 32, 64};
  const char* p1 = "trace_det_1.json";
  const char* p2 = "trace_det_2.json";
  for (const char* path : {p1, p2}) {
    Cluster cl(16, small_nodes());
    cl.set_trace(true);
    costmodel::run_workload(Algo::kCa3dmm, w, cl);
    simmpi::write_chrome_trace_file(cl, path);
  }
  const std::string t1 = slurp(p1), t2 = slurp(p2);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  std::remove(p1);
  std::remove(p2);
}

TEST(Trace, EnablingTracingLeavesVtimesAndResultBitIdentical) {
  const Workload w{37, 29, 53};  // uneven: exercises every sync path
  const int P = 8;
  std::vector<double> c_off, c_on;
  const std::vector<double> off =
      run_traced(w, P, Machine::unit_test(), false, &c_off);
  const std::vector<double> on =
      run_traced(w, P, Machine::unit_test(), true, &c_on);
  ASSERT_EQ(off.size(), on.size());
  for (size_t r = 0; r < off.size(); ++r)
    EXPECT_EQ(off[r], on[r]) << "rank " << r;  // bitwise, no tolerance
  ASSERT_EQ(c_off.size(), c_on.size());
  for (size_t i = 0; i < c_off.size(); ++i) EXPECT_EQ(c_off[i], c_on[i]);
}

TEST(Trace, DisabledTracingRecordsNothing) {
  Cluster cl(8, Machine::unit_test());
  costmodel::run_workload(Algo::kCa3dmm, {32, 32, 32}, cl);
  for (int r = 0; r < 8; ++r) EXPECT_TRUE(cl.trace(r).empty());
  EXPECT_THROW(simmpi::write_chrome_trace_file(cl, "nope.json"), Error);
  EXPECT_THROW(simmpi::aggregate_trace(cl), Error);
  EXPECT_THROW(simmpi::critical_path(cl), Error);
}

// ---- export structure ----

TEST(Trace, ChromeTraceStructure) {
  const int P = 8;
  Cluster cl(P, small_nodes());
  cl.set_trace(true);
  costmodel::run_workload(Algo::kCa3dmm, {32, 32, 64, true}, cl);
  const char* path = "trace_structure.json";
  simmpi::write_chrome_trace_file(cl, path);
  const std::string t = slurp(path);
  std::remove(path);
  ASSERT_FALSE(t.empty());
  EXPECT_EQ(t.front(), '[');
  EXPECT_EQ(t[t.size() - 2], ']');  // trailing "]\n"
  // One process per node (P=8, 4 ranks/node -> nodes 0,1), one thread/rank.
  EXPECT_NE(t.find("\"name\":\"node 0\""), std::string::npos);
  EXPECT_NE(t.find("\"name\":\"node 1\""), std::string::npos);
  for (int r = 0; r < P; ++r)
    EXPECT_NE(t.find(strprintf("\"name\":\"rank %d\"", r)), std::string::npos);
  // Complete slices with phase categories and dependency edges.
  EXPECT_NE(t.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(t.find("collective redistribute"), std::string::npos);
  EXPECT_NE(t.find("compute local compute"), std::string::npos);
  EXPECT_NE(t.find("\"algo\":"), std::string::npos);
  EXPECT_NE(t.find("\"dep_rank\":"), std::string::npos);
  // Balanced braces (cheap well-formedness check; Perfetto accepts the
  // format, this guards against truncation).
  i64 depth = 0;
  for (char ch : t) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, RecordsCarryScheduleAndBytes) {
  Cluster cl(16, small_nodes());
  cl.set_trace(true);
  costmodel::run_workload(Algo::kCa3dmm, {32, 32, 64}, cl);
  bool saw_coll_with_algo = false, saw_gemm = false, saw_dep = false;
  for (int r = 0; r < cl.nranks(); ++r)
    for (const TraceRecord& rec : cl.trace(r)) {
      EXPECT_GE(rec.t1, rec.t0);
      if (rec.kind == TraceKind::kCollective && rec.algo != nullptr &&
          rec.bytes_out > 0 && rec.comm_size > 1)
        saw_coll_with_algo = true;
      if (rec.kind == TraceKind::kCompute && rec.phase == Phase::kCompute)
        saw_gemm = true;
      if (rec.dep_rank >= 0) {
        EXPECT_LT(rec.dep_rank, cl.nranks());
        saw_dep = true;
      }
    }
  EXPECT_TRUE(saw_coll_with_algo);
  EXPECT_TRUE(saw_gemm);
  EXPECT_TRUE(saw_dep);
}

TEST(Trace, MarkersRecordLibraryEvents) {
  Cluster cl(8, Machine::unit_test());
  cl.set_trace(true);
  // Custom layouts force real pack/unpack work in redistribution.
  costmodel::run_workload(Algo::kCa3dmm, {32, 32, 32, true}, cl);
  bool saw_pack = false, saw_unpack = false;
  for (int r = 0; r < cl.nranks(); ++r)
    for (const TraceRecord& rec : cl.trace(r)) {
      if (rec.kind != TraceKind::kMarker) continue;
      if (std::string(rec.name) == "redistribute:pack") saw_pack = true;
      if (std::string(rec.name) == "redistribute:unpack") saw_unpack = true;
    }
  EXPECT_TRUE(saw_pack);
  EXPECT_TRUE(saw_unpack);
}

TEST(Trace, EngineCacheEventsAreMarked) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.set_trace(true);
  cl.run([&](Comm& world) {
    engine::PgemmEngine eng(world);
    eng.plan_for(24, 24, 24);  // miss + build
    eng.plan_for(24, 24, 24);  // hit
  });
  int hits = 0, misses = 0, builds = 0;
  for (int r = 0; r < P; ++r)
    for (const TraceRecord& rec : cl.trace(r)) {
      if (rec.kind != TraceKind::kMarker) continue;
      const std::string n = rec.name;
      if (n == "engine:plan hit") ++hits;
      if (n == "engine:plan miss") ++misses;
      if (n == "engine:plan build") ++builds;
    }
  EXPECT_EQ(hits, P);
  EXPECT_EQ(misses, P);
  EXPECT_EQ(builds, P);
}

// ---- aggregation and critical path ----

TEST(Trace, AggregateMatchesRankStats) {
  Cluster cl(16, small_nodes());
  cl.set_trace(true);
  costmodel::run_workload(Algo::kCa3dmm, {32, 32, 64}, cl);
  const simmpi::TraceAggregate agg = simmpi::aggregate_trace(cl);
  const simmpi::RankStats stats = cl.aggregate_stats();
  EXPECT_EQ(agg.nranks, 16);
  EXPECT_EQ(agg.vtime_max, stats.vtime);
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    const simmpi::PhaseAggregate& a = agg.phases[static_cast<size_t>(p)];
    EXPECT_EQ(a.vtime_max, stats.phase_s[p]);
    EXPECT_EQ(a.bytes, stats.bytes_sent_s[p]);
    EXPECT_EQ(a.inter_bytes, stats.inter_bytes_s[p]);
    EXPECT_GE(a.skew_max, 0.0);
    EXPECT_GE(a.skew_avg, 0.0);
  }
  const std::string table = simmpi::format_aggregate_table(agg);
  EXPECT_NE(table.find("local compute"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(Trace, CriticalPathIsContiguousAndSpansTheRun) {
  Cluster cl(16, small_nodes());
  cl.set_trace(true);
  costmodel::run_workload(Algo::kCa3dmm, {37, 29, 53}, cl);
  const simmpi::RankStats stats = cl.aggregate_stats();
  const auto path = simmpi::critical_path(cl);
  ASSERT_FALSE(path.empty());
  // Ends at the overall makespan, starts at (or before any op of) t=0.
  EXPECT_NEAR(path.back().t1, stats.vtime, 1e-12);
  EXPECT_NEAR(path.front().t0, 0.0, 1e-12);
  for (size_t i = 0; i < path.size(); ++i) {
    EXPECT_LE(path[i].t0, path[i].t1);
    if (i > 0) {
      // Contiguous in virtual time: each segment begins where the previous
      // ended (hops switch ranks at exactly the dependency timestamp).
      EXPECT_NEAR(path[i].t0, path[i - 1].t1, 1e-12);
    }
  }
  EXPECT_FALSE(
      simmpi::format_critical_path(path).find("rank") == std::string::npos);
}

// ---- drift gate ----

TEST(Trace, DriftGatePassesOnEvenWorkloads) {
  // The evenly divisible configurations test_costmodel.cpp pins at
  // 1e-9 rtol; the gate's tight default tolerance must hold on all of them.
  struct Cfg {
    Workload w;
    int P;
    Machine mach;
  };
  const Cfg cfgs[] = {
      {Workload{32, 32, 32}, 8, Machine::unit_test()},
      {Workload{32, 32, 32}, 8, small_nodes()},
      {Workload{32, 32, 64}, 16, Machine::unit_test()},
      {Workload{32, 64, 16}, 8, small_nodes()},
  };
  for (const Cfg& c : cfgs) {
    Cluster cl(c.P, c.mach);
    const costmodel::DriftReport rep =
        costmodel::check_drift(Algo::kCa3dmm, c.w, cl);
    EXPECT_TRUE(rep.ok()) << rep.table();
    EXPECT_NE(rep.table().find("ok"), std::string::npos);
  }
}

TEST(Trace, DriftGateFlagsMispredictions) {
  const Workload w{32, 32, 64};
  Cluster cl(16, Machine::unit_test());
  const simmpi::RankStats executed =
      costmodel::run_workload(Algo::kCa3dmm, w, cl);
  costmodel::Prediction pred =
      costmodel::predict(Algo::kCa3dmm, w, 16, cl.machine());
  // A model that lost 10% of the compute phase must be flagged.
  pred.phase_s[static_cast<int>(Phase::kCompute)] *= 0.9;
  pred.t_total *= 0.999;
  const costmodel::DriftReport rep = costmodel::drift_report(pred, executed);
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.table().find("FAIL"), std::string::npos);
  // Peak-memory mismatches are hard failures too.
  costmodel::Prediction pred2 =
      costmodel::predict(Algo::kCa3dmm, w, 16, cl.machine());
  pred2.peak_bytes += 8;
  EXPECT_FALSE(costmodel::drift_report(pred2, executed).ok());
}

TEST(Trace, DriftToleranceRespectsUnevenShapes) {
  // Uneven shapes are documented to drift up to 15% in *total* time
  // (collective max-entry synchronization); individual phases can shift
  // attribution further (a rank waiting in a split charges misc time the
  // per-rank model books elsewhere), so the per-phase gate belongs to even
  // configurations only. Assert exactly the documented guarantees: total
  // within 15% and peak memory exact.
  Cluster cl(8, Machine::unit_test());
  costmodel::DriftOptions opts;
  opts.rtol = 0.15;
  const costmodel::DriftReport rep =
      costmodel::check_drift(Algo::kCa3dmm, {37, 29, 53}, cl, opts);
  EXPECT_FALSE(rep.total.flagged) << rep.table();
  EXPECT_FALSE(rep.peak_bytes_flagged) << rep.table();
}

}  // namespace
}  // namespace ca3dmm
