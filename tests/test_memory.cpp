// Memory accounting against the paper's eq. (11):
//
//     S = 2 (c mk + kn) / P + k_p mn / P      (elements, A-replicated case
//                                              shown; symmetric for B)
//
// The engine's tracked peak must sit at or slightly above S * esize for
// native-layout runs (the paper's formula excludes redistribution staging
// and the small final-C buffer), and well under 2x.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include <memory>

#include "core/ca3dmm.hpp"
#include "costmodel/model.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/pool.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

/// Eq. (11) in bytes for one rank (upper bound over ranks: nominal sizes).
double eq11_bytes(const Ca3dmmPlan& plan) {
  const double P = plan.active();
  const double m = static_cast<double>(plan.m());
  const double n = static_cast<double>(plan.n());
  const double k = static_cast<double>(plan.k());
  const double c = plan.c();
  const double kp = plan.grid().pk;
  const bool ra = plan.replicates_a();
  const double repl_term = ra ? (c * m * k + k * n) : (m * k + c * k * n);
  return (2.0 * repl_term / P + kp * m * n / P) * 8.0;
}

i64 run_peak(i64 m, i64 n, i64 k, int P, const Ca3dmmOptions& opt = {}) {
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P, opt);
  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a(static_cast<size_t>(a_nat.local_size(me)), 1.0);
    std::vector<double> b(static_cast<size_t>(b_nat.local_size(me)), 1.0);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
  });
  return cl.aggregate_stats().peak_bytes;
}

void check_eq11(i64 m, i64 n, i64 k, int P) {
  Ca3dmmOptions opt;
  opt.min_kblk = 0;  // no aggregation buffers: the eq. (11) configuration
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P, opt);
  const double s11 = eq11_bytes(plan);
  const double peak = static_cast<double>(run_peak(m, n, k, P, opt));
  SCOPED_TRACE(strprintf("m=%lld n=%lld k=%lld P=%d grid %dx%dx%d",
                         static_cast<long long>(m), static_cast<long long>(n),
                         static_cast<long long>(k), P, plan.grid().pm,
                         plan.grid().pn, plan.grid().pk));
  // Redistribution staging (native->native still stages local data once) and
  // the reduce pack buffer add at most ~mn/P-scale terms on top of (11).
  EXPECT_LT(peak, 2.0 * s11);
  EXPECT_GT(peak, 0.45 * s11);  // sanity: accounting is not missing buffers
}

TEST(Memory, Eq11SquareEven) { check_eq11(64, 64, 64, 8); }
TEST(Memory, Eq11ReplicatedA) { check_eq11(32, 64, 32, 8); }
TEST(Memory, Eq11ReplicatedB) { check_eq11(64, 32, 32, 8); }
TEST(Memory, Eq11DeepK) { check_eq11(24, 24, 512, 16); }
TEST(Memory, Eq11Flat) { check_eq11(96, 96, 16, 16); }

TEST(Memory, AsymptoticSquareScaling) {
  // Eq. (11) for m=n=k: S = O(m^2 / P^(2/3)) — doubling the problem at 8x
  // the processes keeps per-rank memory roughly constant * 2^2/8^(2/3) = 1.
  const i64 peak1 = run_peak(32, 32, 32, 4);
  const i64 peak2 = run_peak(64, 64, 64, 32);
  // m^2/P^(2/3): (64^2/32^(2/3)) / (32^2/4^(2/3)) = 4 / (8^(2/3)) = 1.0
  EXPECT_LT(static_cast<double>(peak2) / static_cast<double>(peak1), 2.0);
  EXPECT_GT(static_cast<double>(peak2) / static_cast<double>(peak1), 0.5);
}

TEST(Memory, AggregationBuffersAccounted) {
  // Multi-shift aggregation allocates staging proportional to min_kblk.
  Ca3dmmOptions no_agg;
  no_agg.min_kblk = 0;
  Ca3dmmOptions agg;
  agg.min_kblk = 512;  // force large aggregation buffers
  const i64 p1 = run_peak(32, 32, 128, 16, no_agg);
  const i64 p2 = run_peak(32, 32, 128, 16, agg);
  EXPECT_GT(p2, p1);
}

TEST(Memory, ModelTracksGridChanges) {
  // The paper observes that CA3DMM's per-process memory decays unevenly with
  // P because the process grid changes shape between counts (Table I
  // discussion). Our solver's grid sequence differs in detail, so assert the
  // qualitative features: strong overall decay across the P range and a
  // non-uniform step pattern (grid transitions), not smooth 2x halving.
  const simmpi::Machine mach = Machine::phoenix_mpi();
  costmodel::Workload w{6000, 6000, 1200000};
  std::vector<double> ratios;
  i64 first = 0, prev = 0, last = 0;
  for (int P : {192, 384, 768, 1536, 3072}) {
    const auto pred = costmodel::predict(costmodel::Algo::kCa3dmm, w, P, mach);
    if (prev > 0)
      ratios.push_back(static_cast<double>(prev) /
                       static_cast<double>(pred.peak_bytes));
    if (first == 0) first = pred.peak_bytes;
    prev = last = pred.peak_bytes;
  }
  EXPECT_GT(static_cast<double>(first) / static_cast<double>(last), 8.0);
  const auto [mn, mx] = std::minmax_element(ratios.begin(), ratios.end());
  EXPECT_GT(*mx / *mn, 1.4);  // uneven decay = grid shape transitions
}

TEST(Memory, PoolGaugesTrackAcquireAndGiveBack) {
  simmpi::BufferPool pool;
  EXPECT_EQ(pool.stats().live_bytes, 0);
  EXPECT_EQ(pool.stats().idle_bytes, 0);
  EXPECT_EQ(pool.stats().high_water_bytes, 0);

  void* a = pool.acquire(1024);
  void* b = pool.acquire(4096);
  EXPECT_EQ(pool.stats().live_bytes, 5120);
  EXPECT_EQ(pool.stats().idle_bytes, 0);
  EXPECT_EQ(pool.stats().high_water_bytes, 5120);

  pool.give_back(a, 1024);
  EXPECT_EQ(pool.stats().live_bytes, 4096);
  EXPECT_EQ(pool.stats().idle_bytes, 1024);
  EXPECT_EQ(pool.stats().idle_bytes, pool.idle_bytes());
  // Returning a buffer parks it; total footprint unchanged.
  EXPECT_EQ(pool.stats().high_water_bytes, 5120);

  // Re-acquiring the parked size moves the bytes idle -> live.
  void* a2 = pool.acquire(1024);
  EXPECT_EQ(pool.stats().live_bytes, 5120);
  EXPECT_EQ(pool.stats().idle_bytes, 0);
  EXPECT_EQ(pool.stats().hits, 1);

  pool.give_back(a2, 1024);
  pool.give_back(b, 4096);
  EXPECT_EQ(pool.stats().live_bytes, 0);
  EXPECT_EQ(pool.stats().idle_bytes, 5120);
  EXPECT_EQ(pool.stats().high_water_bytes, 5120);  // never exceeded
}

TEST(Memory, PoolHighWaterIsMonotonic) {
  simmpi::BufferPool pool;
  i64 prev = 0;
  for (int i = 1; i <= 8; ++i) {
    void* p = pool.acquire(i * 256);
    EXPECT_GE(pool.stats().high_water_bytes, prev);
    prev = pool.stats().high_water_bytes;
    pool.give_back(p, i * 256);
    EXPECT_GE(pool.stats().high_water_bytes, prev);
    prev = pool.stats().high_water_bytes;
  }
  // One buffer live at a time, all sizes distinct and parked: footprint grew
  // to sum(parked) + largest live.
  EXPECT_EQ(pool.stats().live_bytes, 0);
  EXPECT_EQ(pool.stats().idle_bytes, 256 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

TEST(Memory, PoolTrimToTargetFreesLargestFirst) {
  simmpi::BufferPool pool;
  void* a = pool.acquire(1024);
  void* b = pool.acquire(2048);
  void* c = pool.acquire(8192);
  pool.give_back(a, 1024);
  pool.give_back(b, 2048);
  pool.give_back(c, 8192);
  ASSERT_EQ(pool.idle_bytes(), 11264);

  // Target 4096: only the 8192 buffer must go (largest-first), leaving the
  // two small ones — 3072 idle, 8192 freed.
  const i64 freed = pool.trim(4096);
  EXPECT_EQ(freed, 8192);
  EXPECT_EQ(pool.idle_bytes(), 3072);
  EXPECT_EQ(pool.stats().idle_bytes, 3072);

  // The survivors are still reusable.
  void* b2 = pool.acquire(2048);
  EXPECT_EQ(pool.stats().hits, 1);
  pool.give_back(b2, 2048);

  // Default trim drains everything; live buffers would be untouched (none
  // here), and the high-water gauge keeps its historical value.
  const i64 freed_all = pool.trim();
  EXPECT_EQ(freed_all, 3072);
  EXPECT_EQ(pool.idle_bytes(), 0);
  EXPECT_EQ(pool.stats().high_water_bytes, 11264);
}

TEST(Memory, PoolTrimLeavesLiveBuffersAlone) {
  simmpi::BufferPool pool;
  void* live = pool.acquire(4096);
  void* idle = pool.acquire(1024);
  pool.give_back(idle, 1024);
  EXPECT_EQ(pool.trim(0), 1024);
  EXPECT_EQ(pool.stats().live_bytes, 4096);
  // The live buffer is still valid and returnable after the trim.
  std::memset(live, 0xab, 4096);
  pool.give_back(live, 4096);
  EXPECT_EQ(pool.stats().live_bytes, 0);
  EXPECT_EQ(pool.stats().idle_bytes, 4096);
  pool.trim();
}

TEST(Memory, PoolFootprintBudgetEvictsIdleBeforeAllocating) {
  simmpi::BufferPool pool;
  pool.set_footprint_budget(8192);
  void* a = pool.acquire(4096);
  pool.give_back(a, 4096);
  // Fits alongside the parked 4096: no eviction on this miss.
  void* b = pool.acquire(2048);
  pool.give_back(b, 2048);
  EXPECT_EQ(pool.stats().idle_bytes, 6144);
  EXPECT_EQ(pool.stats().trims, 0);
  // 8192 cannot fit next to 6144 idle under the budget: both idle
  // allocations are evicted (largest first) before the heap is touched.
  void* c = pool.acquire(8192);
  EXPECT_EQ(pool.stats().trims, 2);
  EXPECT_EQ(pool.stats().idle_bytes, 0);
  EXPECT_EQ(pool.stats().live_bytes, 8192);
  // The footprint high-water never exceeded the budget.
  EXPECT_LE(pool.stats().high_water_bytes, 8192);
  pool.give_back(c, 8192);
  // Live allocations are never denied: a request above the budget still
  // succeeds (the bound is max(budget, live peak), not a hard failure).
  void* big = pool.acquire(16384);
  EXPECT_EQ(pool.stats().idle_bytes, 0);
  pool.give_back(big, 16384);
}

TEST(Memory, FaultAbortLeavesNoLeakedOrStaleBuffers) {
  // Recovery regression: a rank killed mid-multiply unwinds every peer
  // through its PoolScope. Afterwards (a) no tracked bytes may remain
  // checked out on any rank — cur_bytes back to zero, nothing leaked — and
  // (b) a clean rerun on the SAME pools must produce a bit-identical C,
  // proving pooled reuse after an aborted run hands out zeroed memory, not
  // stale bytes from the failed attempt.
  const int P = 4;
  const Ca3dmmPlan plan = Ca3dmmPlan::make(32, 32, 32, P);
  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  std::vector<std::unique_ptr<simmpi::BufferPool>> pools;
  for (int r = 0; r < P; ++r)
    pools.push_back(std::make_unique<simmpi::BufferPool>());

  std::vector<std::vector<double>> c_out(P);
  const auto rank_body = [&](Comm& world) {
    const int me = world.rank();
    simmpi::PoolScope scope(pools[static_cast<size_t>(me)].get());
    std::vector<double> a(static_cast<size_t>(a_nat.local_size(me)), 1.0);
    std::vector<double> b(static_cast<size_t>(b_nat.local_size(me)), 1.0);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
    c_out[static_cast<size_t>(me)] = std::move(c);
  };

  Cluster cl(P, Machine::unit_test());
  simmpi::FaultPlan fp;
  fp.kills.push_back({.rank = 2, .at_op = 6});  // inside the Cannon step
  cl.set_fault_plan(fp);
  EXPECT_THROW(cl.run(rank_body), Error);

  i64 pooled_after_abort = 0;
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(cl.stats(r).cur_bytes, 0) << "rank " << r << " leaked";
    pooled_after_abort += pools[static_cast<size_t>(r)]->idle_bytes();
  }
  EXPECT_GT(pooled_after_abort, 0);  // unwinding returned buffers, not lost

  // Clean rerun on the same (now warm) pools.
  cl.set_fault_plan(simmpi::FaultPlan{});
  cl.run(rank_body);
  i64 pool_hits = 0;
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(cl.stats(r).cur_bytes, 0) << "rank " << r;
    pool_hits += pools[static_cast<size_t>(r)]->stats().hits;
  }
  EXPECT_GT(pool_hits, 0);  // the rerun actually reused aborted-run buffers

  // Reference without any pool: the pooled post-abort rerun must match
  // bit for bit.
  std::vector<std::vector<double>> c_ref(P);
  Cluster ref(P, Machine::unit_test());
  ref.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a(static_cast<size_t>(a_nat.local_size(me)), 1.0);
    std::vector<double> b(static_cast<size_t>(b_nat.local_size(me)), 1.0);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
    c_ref[static_cast<size_t>(me)] = std::move(c);
  });
  for (int r = 0; r < P; ++r) {
    ASSERT_EQ(c_out[static_cast<size_t>(r)].size(),
              c_ref[static_cast<size_t>(r)].size());
    for (size_t i = 0; i < c_ref[static_cast<size_t>(r)].size(); ++i)
      ASSERT_EQ(c_out[static_cast<size_t>(r)][i],
                c_ref[static_cast<size_t>(r)][i])
          << "rank " << r << " element " << i;
  }
}

}  // namespace
}  // namespace ca3dmm
