// Virtual-time semantics: operations advance rank clocks by exactly the
// paper's §III-D butterfly collective costs; exit time of a collective is
// max(entry clocks) + cost; overlap charging; determinism; memory tracking.
#include <gtest/gtest.h>

#include <vector>

#include "simmpi/cluster.hpp"
#include "simmpi/coll_cost.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::simmpi {
namespace {

constexpr double kAlpha = 1e-6;   // Machine::unit_test latency
constexpr double kBeta = 1e-9;    // 1 / unit_test bandwidth (per byte)
constexpr double kTol = 1e-15;

TEST(VClock, P2PCost) {
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) {
    double x = 1.0;
    if (c.rank() == 0)
      c.send(&x, 1, 1, 0);
    else
      c.recv(&x, 1, 0, 0);
    EXPECT_NEAR(c.now(), kAlpha + kBeta * 8.0, kTol);
  });
  EXPECT_NEAR(cl.stats(0).vtime, kAlpha + kBeta * 8.0, kTol);
  EXPECT_NEAR(cl.stats(1).vtime, kAlpha + kBeta * 8.0, kTol);
}

TEST(VClock, AllgatherMatchesFormula) {
  const int P = 4;
  const i64 each = 100;  // doubles per rank
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    std::vector<double> mine(static_cast<size_t>(each), 1.0);
    std::vector<double> all(static_cast<size_t>(each * P));
    c.allgather(mine.data(), each, all.data());
  });
  const double n_bytes = static_cast<double>(each * P * 8);
  const double expect =
      kAlpha * 2.0 /*log2(4)*/ + kBeta * n_bytes * (P - 1) / P;
  for (int r = 0; r < P; ++r) EXPECT_NEAR(cl.stats(r).vtime, expect, kTol);
}

TEST(VClock, ReduceScatterMatchesFormula) {
  const int P = 8;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    std::vector<i64> counts(static_cast<size_t>(P), 50);
    std::vector<double> s(static_cast<size_t>(50 * P), 1.0);
    std::vector<double> r(50);
    c.reduce_scatter(s.data(), r.data(), counts);
  });
  const double n_bytes = 50.0 * P * 8;
  const double expect = kAlpha * (P - 1) + kBeta * n_bytes * (P - 1) / P;
  EXPECT_NEAR(cl.stats(0).vtime, expect, kTol);
}

TEST(VClock, BroadcastMatchesFormula) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    std::vector<double> b(10, 0.0);
    c.bcast(b.data(), 10, 0);
  });
  const double n_bytes = 80.0;
  const double expect =
      kAlpha * (2.0 + P - 1) + 2.0 * kBeta * n_bytes * (P - 1) / P;
  EXPECT_NEAR(cl.stats(2).vtime, expect, kTol);
}

TEST(VClock, CollectiveExitIsMaxEntryPlusCost) {
  // Rank 1 computes 3 ms of work first; the barrier releases everyone at
  // rank 1's entry time + barrier cost.
  const int P = 3;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    if (c.rank() == 1) c.charge_compute(3e6, 0);  // 3e6 flops @1e9 = 3 ms
    c.barrier();
    EXPECT_NEAR(c.now(), 3e-3 + kAlpha * 2.0 /*log2(3)->2*/, 1e-12);
  });
}

TEST(VClock, ComputeChargesMachineRate) {
  Cluster cl(1, Machine::unit_test());
  cl.run([](Comm& c) {
    c.charge_compute(5e8, 0);
    EXPECT_NEAR(c.now(), 0.5, kTol);
  });
  EXPECT_NEAR(cl.stats(0).flops, 5e8, 1.0);
  EXPECT_NEAR(cl.stats(0).phase(Phase::kCompute), 0.5, kTol);
}

TEST(VClock, OverlappedComputeHidesBehindComm) {
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) {
    double x = 0;
    const i64 n = 1000000;  // 8 MB -> comm cost ~8e-3 s
    std::vector<double> buf(static_cast<size_t>(n), 1.0);
    c.sendrecv(buf.data(), n, 1 - c.rank(), buf.data(), n, 1 - c.rank(), 0);
    const double t_after_comm = c.now();
    // 4e6 flops = 4 ms < 8 ms comm: fully hidden.
    c.charge_overlapped_compute(4e6, 0);
    EXPECT_NEAR(c.now(), t_after_comm, kTol);
    // 16e6 flops = 16 ms: only the excess over the last op cost advances.
    c.sendrecv(buf.data(), n, 1 - c.rank(), buf.data(), n, 1 - c.rank(), 0);
    const double t2 = c.now();
    c.charge_overlapped_compute(16e6, 0);
    EXPECT_NEAR(c.now(), t2 + (16e-3 - c.last_op_cost()), 1e-9);
    (void)x;
  });
}

TEST(VClock, DeterministicAcrossRuns) {
  const int P = 6;
  auto workload = [](Comm& c) {
    std::vector<double> v(64, static_cast<double>(c.rank()));
    std::vector<double> all(64 * 6);
    c.charge_compute(1e6 * (c.rank() + 1), 0);
    c.allgather(v.data(), 64, all.data());
    Comm g = c.split(c.rank() % 2, c.rank());
    double s = c.rank(), r = 0;
    g.allreduce(&s, &r, 1);
    c.barrier();
  };
  double t1 = 0, t2 = 0;
  {
    Cluster cl(P, Machine::unit_test());
    cl.run(workload);
    t1 = cl.aggregate_stats().vtime;
  }
  {
    Cluster cl(P, Machine::unit_test());
    cl.run(workload);
    t2 = cl.aggregate_stats().vtime;
  }
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_GT(t1, 0.0);
}

TEST(VClock, PhaseAccounting) {
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) {
    c.set_phase(Phase::kReduce);
    double s = 1, r = 0;
    c.allreduce(&s, &r, 1);
    c.set_phase(Phase::kMisc);
    c.barrier();
  });
  EXPECT_GT(cl.stats(0).phase(Phase::kReduce), 0.0);
  EXPECT_GT(cl.stats(0).phase(Phase::kMisc), 0.0);
  EXPECT_DOUBLE_EQ(cl.stats(0).phase(Phase::kCompute), 0.0);
}

TEST(VClock, TrackedBufferPeak) {
  Cluster cl(1, Machine::unit_test());
  cl.run([](Comm&) {
    TrackedBuffer<double> a(1000);  // 8000 bytes
    {
      TrackedBuffer<double> b(500);  // peak 12000
    }
    TrackedBuffer<double> c2(100);  // current 8800 < peak
  });
  EXPECT_EQ(cl.stats(0).peak_bytes, 12000);
  EXPECT_EQ(cl.stats(0).cur_bytes, 0);
}

TEST(VClock, ChromeTraceExport) {
  Cluster cl(3, Machine::unit_test());
  cl.set_trace(true);
  cl.run([](Comm& c) {
    c.set_phase(Phase::kCompute);
    c.charge_compute(2e6, 0);
    c.set_phase(Phase::kReduce);
    double s = 1, r = 0;
    c.allreduce(&s, &r, 1);
  });
  const std::string path = ::testing::TempDir() + "ca3dmm_trace.json";
  cl.write_chrome_trace(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  const size_t n = std::fread(content.data(), 1, content.size(), f);
  std::fclose(f);
  content.resize(n);
  EXPECT_NE(content.find("local compute"), std::string::npos);
  EXPECT_NE(content.find("reduce C"), std::string::npos);
  EXPECT_NE(content.find("\"tid\":2"), std::string::npos);
  EXPECT_EQ(content.front(), '[');
}

TEST(VClock, TraceDisabledByDefaultThrowsOnExport) {
  Cluster cl(2, Machine::unit_test());
  cl.run([](Comm& c) { c.barrier(); });
  EXPECT_THROW(cl.write_chrome_trace("/tmp/nope.json"), Error);
}

TEST(VClock, GroupProfileComposition) {
  Machine m = Machine::phoenix_mpi();  // 24 ranks per node
  std::vector<int> ranks;
  for (int r = 0; r < 48; ++r) ranks.push_back(r);
  GroupProfile g = GroupProfile::from_world_ranks(m, ranks);
  EXPECT_EQ(g.size, 48);
  EXPECT_EQ(g.nodes, 2);
  EXPECT_EQ(g.max_ranks_per_node, 24);
  EXPECT_FALSE(g.single_node);

  GroupProfile one = GroupProfile::from_world_ranks(m, {0, 5, 23});
  EXPECT_TRUE(one.single_node);

  // Strided group: ranks 0, 24, 48 land on three distinct nodes.
  GroupProfile strided = GroupProfile::from_world_ranks(m, {0, 24, 48});
  EXPECT_EQ(strided.nodes, 3);
  EXPECT_EQ(strided.max_ranks_per_node, 1);
}

TEST(VClock, HybridVsPureLinkParameters) {
  // One rank per node (hybrid) reaches only a fraction of NIC bandwidth;
  // 24 ranks per node share it. These per-rank betas drive Fig. 4.
  Machine pure = Machine::phoenix_mpi();
  Machine hyb = Machine::phoenix_hybrid();
  EXPECT_NEAR(pure.inter_rank_bandwidth(), pure.nic_bandwidth / 24, 1.0);
  EXPECT_NEAR(hyb.inter_rank_bandwidth(),
              hyb.nic_bandwidth * hyb.single_rank_nic_fraction, 1.0);
  EXPECT_GT(hyb.inter_rank_bandwidth(), pure.inter_rank_bandwidth());
  EXPECT_GT(hyb.rank_flops(), pure.rank_flops());
}

TEST(VClock, ReduceScatterLargeMessagePenalty) {
  Machine m = Machine::phoenix_gpu();
  LinkParams l{1e-6, 1e-10};
  const int p = 4;
  const double small = t_reduce_scatter_machine(m, l, 1e6, p);
  EXPECT_DOUBLE_EQ(small, t_reduce_scatter(l, 1e6, p));
  const double big_bytes = (m.rs_penalty_threshold_bytes * p) * 2.0;
  const double big = t_reduce_scatter_machine(m, l, big_bytes, p);
  EXPECT_DOUBLE_EQ(big, t_reduce_scatter(l, big_bytes, p) * m.rs_penalty_factor);
}

}  // namespace
}  // namespace ca3dmm::simmpi
