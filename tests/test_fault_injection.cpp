// Failure semantics of the simulated cluster: cooperative abort (a failing
// rank unwinds every peer in bounded time, with a rank-attributed error),
// deterministic fault injection (rank kills, node stragglers, payload
// flips), the collective-consistency checker, and the deadlock watchdog.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ca3dmm.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"

namespace ca3dmm::simmpi {
namespace {

/// Runs rank_main and returns the Error message the run raised.
std::string run_expect_error(Cluster& cl,
                             const std::function<void(Comm&)>& rank_main) {
  try {
    cl.run(rank_main);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "run() completed without raising an Error";
  return "";
}

TEST(CooperativeAbort, ThrowMidCollectiveUnwindsWholeCluster) {
  // Rank 3 fails before entering the barrier every other rank is blocked
  // in. Without cooperative abort this deadlocks run(); with it, every peer
  // unwinds and the error names the failing rank.
  Cluster cl(8, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 3) throw Error("boom from rank 3");
    c.barrier();
  });
  EXPECT_NE(msg.find("rank 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("boom from rank 3"), std::string::npos) << msg;
}

TEST(CooperativeAbort, ThrowMidP2pUnwindsBlockedReceiver) {
  // Rank 0 blocks in a recv whose sender dies first.
  Cluster cl(2, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 1) throw Error("sender died");
    double x = 0;
    c.recv(&x, 1, 1, 0);
  });
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
}

TEST(CooperativeAbort, AllFailedRanksAreReported) {
  // Two ranks fail independently; the aggregated error must name both, and
  // the surviving ranks' stats must still be finalized.
  Cluster cl(6, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    c.charge_compute(1e6, 0);
    if (c.rank() == 1) throw Error("first failure");
    if (c.rank() == 4) throw Error("second failure");
    c.barrier();
  });
  EXPECT_NE(msg.find("2 ranks failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1 failed: first failure"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rank 4 failed: second failure"), std::string::npos)
      << msg;
  // Satellite: stats are finalized for every rank even on a failed run.
  for (int r = 0; r < 6; ++r)
    EXPECT_GT(cl.stats(r).vtime, 0.0) << "rank " << r;
}

TEST(CooperativeAbort, SendrecvRingUnwinds) {
  // One rank of a shift ring dies; everyone else is inside sendrecv.
  const int P = 6;
  Cluster cl(P, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [&](Comm& c) {
    const int me = c.rank();
    if (me == 2) throw Error("ring rank down");
    double v = me, got = -1;
    for (int step = 0; step < P; ++step)
      c.sendrecv(&v, 1, (me + P - 1) % P, &got, 1, (me + 1) % P, 0);
  });
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
}

TEST(FaultInjection, KillRankAtNthOpIsCaught) {
  Cluster cl(4, Machine::unit_test());
  FaultPlan fp;
  fp.kills.push_back({.rank = 2, .at_op = 3});
  cl.set_fault_plan(fp);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    for (int i = 0; i < 10; ++i) c.barrier();
  });
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fault injection"), std::string::npos) << msg;
  EXPECT_NE(msg.find("comm op 3"), std::string::npos) << msg;

  // The plan is cleared by attaching an empty one.
  cl.set_fault_plan(FaultPlan{});
  cl.run([](Comm& c) { c.barrier(); });
}

TEST(FaultInjection, StragglerShiftsAggregateVtimeByModeledAmount) {
  // unit_test machine: 1 rank/node, 1e9 flop/s, zero GEMM overhead. Each
  // rank runs one local GEMM then a barrier, so the aggregate virtual time
  // is gemm_time + t_barrier. Straggling rank 1's node by 3x must shift the
  // aggregate by exactly (3-1) * gemm_time.
  const double flops = 1e6;
  const double t_gemm = flops / 1e9;
  Machine m = Machine::unit_test();
  auto body = [&](Comm& c) {
    c.charge_compute(flops, 0);
    c.barrier();
  };
  Cluster cl(2, m);
  cl.run(body);
  const double base = cl.aggregate_stats().vtime;

  FaultPlan fp;
  fp.stragglers.push_back({.node = 1, .factor = 3.0});
  cl.set_fault_plan(fp);
  cl.run(body);
  const double straggled = cl.aggregate_stats().vtime;
  EXPECT_NEAR(straggled - base, 2.0 * t_gemm, 1e-12);
  // The non-straggled rank pays the wait inside the barrier: both exit at
  // the same virtual time.
  EXPECT_DOUBLE_EQ(cl.stats(0).vtime, cl.stats(1).vtime);
}

TEST(FaultInjection, PayloadFlipIsCaughtByReceiverValidation) {
  Cluster cl(2, Machine::unit_test());
  FaultPlan fp;
  fp.flips.push_back(
      {.src = 0, .dst = 1, .tag = 5, .nth_match = 1, .offset = 9, .mask = 0xFF});
  cl.set_fault_plan(fp);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    std::vector<double> buf(4, 1.25);
    if (c.rank() == 0) {
      c.send(buf.data(), 4, 1, 5);
    } else {
      c.recv(buf.data(), 4, 0, 5);
      for (double v : buf)
        if (v != 1.25) throw Error("corrupted payload detected");
    }
  });
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("corrupted payload"), std::string::npos) << msg;
}

TEST(ConsistencyChecker, MismatchedCollectiveOpIsReported) {
  Cluster cl(2, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 0) {
      double x = 0;
      c.bcast(&x, 1, 0);
    } else {
      c.barrier();
    }
  });
  EXPECT_NE(msg.find("mismatched collective"), std::string::npos) << msg;
}

TEST(ConsistencyChecker, BcastRootMismatchRaisesBeforeCorruption) {
  Cluster cl(4, Machine::unit_test());
  cl.set_validation(true);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    double x = c.rank();
    c.bcast(&x, 1, c.rank() == 0 ? 0 : 1);  // inconsistent root
  });
  EXPECT_NE(msg.find("bcast root mismatch"), std::string::npos) << msg;
}

TEST(ConsistencyChecker, AllgathervCountsMismatchRaisesOnEveryRank) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.set_validation(true);
  const std::string msg = run_expect_error(cl, [&](Comm& c) {
    // Rank 2 disagrees about rank 0's contribution.
    std::vector<i64> counts{8, 8, 8, 8};
    if (c.rank() == 2) counts[0] = 16;
    counts[static_cast<size_t>(c.rank())] = 8;
    double mine = c.rank();
    std::vector<double> all(static_cast<size_t>(P + 1));
    c.allgatherv_bytes(&mine, 8, all.data(), counts);
  });
  // The rendezvous fails collectively: every member raises the same error.
  EXPECT_NE(msg.find("4 ranks failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("allgatherv counts mismatch"), std::string::npos) << msg;
}

TEST(ConsistencyChecker, AllreduceDtypeMismatchDetected) {
  Cluster cl(2, Machine::unit_test());
  cl.set_validation(true);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    double s = 1, r = 0;
    c.allreduce_sum(&s, &r, 1,
                    c.rank() == 0 ? Dtype::kF64 : Dtype::kF32);
  });
  EXPECT_NE(msg.find("dtype mismatch"), std::string::npos) << msg;
}

TEST(P2PValidation, RecvSizeMismatchIsAnErrorNotAnAbort) {
  // Satellite: a posted-size mismatch is a user error that must flow
  // through the cooperative-abort path, not kill the process.
  Cluster cl(2, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    double x[2] = {1, 2};
    if (c.rank() == 0)
      c.send(x, 1, 1, 0);
    else
      c.recv(x, 2, 0, 0);
  });
  EXPECT_NE(msg.find("recv size mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
}

TEST(Watchdog, TagMismatchBecomesWaitForTable) {
  // Rank 1 sends tag 7 and finishes; rank 0 waits for tag 999 forever. The
  // watchdog must convert the hang into a diagnostic naming the stuck op.
  Cluster cl(2, Machine::unit_test());
  cl.set_watchdog_interval_ms(20);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 0) {
      double x = 0;
      c.recv(&x, 1, 1, 999);
    } else {
      double v = 1;
      c.send(&v, 1, 0, 7);
    }
  });
  EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wait-for table"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocked in recv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("tag=999"), std::string::npos) << msg;
  EXPECT_NE(msg.find("finished"), std::string::npos) << msg;
}

TEST(Watchdog, SplitCollectiveDeadlockDetected) {
  // Two ranks each wait on a collective the other will never join: rank 0
  // runs a barrier on the world communicator while rank 1 runs a barrier on
  // a subgroup... constructed here as a world barrier only rank 0 enters.
  Cluster cl(2, Machine::unit_test());
  cl.set_watchdog_interval_ms(20);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 0) {
      c.barrier();
    } else {
      double x = 0;
      c.recv(&x, 1, 0, 0);  // rank 0 never sends
    }
  });
  EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocked in barrier"), std::string::npos) << msg;
}

TEST(Watchdog, DoesNotFireOnHealthyRuns) {
  // A run with plenty of blocking communication but steady progress must
  // never trip the watchdog, even at an aggressive sampling interval.
  const int P = 8;
  Cluster cl(P, Machine::unit_test());
  cl.set_watchdog_interval_ms(1);
  cl.run([&](Comm& c) {
    for (int i = 0; i < 200; ++i) {
      const int me = c.rank();
      double v = me, got = -1;
      c.sendrecv(&v, 1, (me + P - 1) % P, &got, 1, (me + 1) % P, 0);
      c.barrier();
    }
  });
}

TEST(CoreValidation, BadPlanDimensionsRaiseError) {
  EXPECT_THROW(Ca3dmmPlan::make(0, 5, 5, 4), Error);
  EXPECT_THROW(Ca3dmmPlan::make(5, -1, 5, 4), Error);
  EXPECT_THROW(Ca3dmmPlan::make(5, 5, 5, 0), Error);
  Ca3dmmOptions opt;
  opt.min_kblk = -1;
  EXPECT_THROW(Ca3dmmPlan::make(5, 5, 5, 4, opt), Error);
}

TEST(CoreValidation, LayoutMismatchRaisesCollectivelyNotHang) {
  // Every rank passes the same bad C layout to pgemm: each raises the same
  // Error before any communication, so the run fails with all ranks
  // attributed instead of diverging into a hang.
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [&](Comm& world) {
    Ca3dmmPlan plan = Ca3dmmPlan::make(8, 8, 8, P);
    BlockLayout a = plan.a_native();
    BlockLayout b = plan.b_native();
    BlockLayout c_bad(9, 8, P);  // wrong shape on every rank
    std::vector<double> al(static_cast<size_t>(a.local_size(world.rank())));
    std::vector<double> bl(static_cast<size_t>(b.local_size(world.rank())));
    std::vector<double> cb(static_cast<size_t>(c_bad.local_size(world.rank())));
    ca3dmm_multiply<double>(world, plan, false, false, a, al.data(), b,
                            bl.data(), c_bad, cb.data());
  });
  EXPECT_NE(msg.find("4 ranks failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("C layout"), std::string::npos) << msg;
}

}  // namespace
}  // namespace ca3dmm::simmpi
