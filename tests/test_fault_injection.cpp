// Failure semantics of the simulated cluster: cooperative abort (a failing
// rank unwinds every peer in bounded time, with a rank-attributed error),
// deterministic fault injection (rank kills, node stragglers, payload
// flips), the collective-consistency checker, and the deadlock watchdog.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ca3dmm.hpp"
#include "engine/engine.hpp"
#include "linalg/matrix.hpp"
#include "resilience/recovery.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"

namespace ca3dmm::simmpi {
namespace {

/// Runs rank_main and returns the Error message the run raised.
std::string run_expect_error(Cluster& cl,
                             const std::function<void(Comm&)>& rank_main) {
  try {
    cl.run(rank_main);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "run() completed without raising an Error";
  return "";
}

TEST(CooperativeAbort, ThrowMidCollectiveUnwindsWholeCluster) {
  // Rank 3 fails before entering the barrier every other rank is blocked
  // in. Without cooperative abort this deadlocks run(); with it, every peer
  // unwinds and the error names the failing rank.
  Cluster cl(8, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 3) throw Error("boom from rank 3");
    c.barrier();
  });
  EXPECT_NE(msg.find("rank 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("boom from rank 3"), std::string::npos) << msg;
}

TEST(CooperativeAbort, ThrowMidP2pUnwindsBlockedReceiver) {
  // Rank 0 blocks in a recv whose sender dies first.
  Cluster cl(2, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 1) throw Error("sender died");
    double x = 0;
    c.recv(&x, 1, 1, 0);
  });
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
}

TEST(CooperativeAbort, AllFailedRanksAreReported) {
  // Two ranks fail independently; the aggregated error must name both, and
  // the surviving ranks' stats must still be finalized.
  Cluster cl(6, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    c.charge_compute(1e6, 0);
    if (c.rank() == 1) throw Error("first failure");
    if (c.rank() == 4) throw Error("second failure");
    c.barrier();
  });
  EXPECT_NE(msg.find("2 ranks failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1 failed: first failure"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rank 4 failed: second failure"), std::string::npos)
      << msg;
  // Satellite: stats are finalized for every rank even on a failed run.
  for (int r = 0; r < 6; ++r)
    EXPECT_GT(cl.stats(r).vtime, 0.0) << "rank " << r;
}

TEST(CooperativeAbort, SendrecvRingUnwinds) {
  // One rank of a shift ring dies; everyone else is inside sendrecv.
  const int P = 6;
  Cluster cl(P, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [&](Comm& c) {
    const int me = c.rank();
    if (me == 2) throw Error("ring rank down");
    double v = me, got = -1;
    for (int step = 0; step < P; ++step)
      c.sendrecv(&v, 1, (me + P - 1) % P, &got, 1, (me + 1) % P, 0);
  });
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
}

TEST(FaultInjection, KillRankAtNthOpIsCaught) {
  Cluster cl(4, Machine::unit_test());
  FaultPlan fp;
  fp.kills.push_back({.rank = 2, .at_op = 3});
  cl.set_fault_plan(fp);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    for (int i = 0; i < 10; ++i) c.barrier();
  });
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fault injection"), std::string::npos) << msg;
  EXPECT_NE(msg.find("comm op 3"), std::string::npos) << msg;

  // The plan is cleared by attaching an empty one.
  cl.set_fault_plan(FaultPlan{});
  cl.run([](Comm& c) { c.barrier(); });
}

TEST(FaultInjection, StragglerShiftsAggregateVtimeByModeledAmount) {
  // unit_test machine: 1 rank/node, 1e9 flop/s, zero GEMM overhead. Each
  // rank runs one local GEMM then a barrier, so the aggregate virtual time
  // is gemm_time + t_barrier. Straggling rank 1's node by 3x must shift the
  // aggregate by exactly (3-1) * gemm_time.
  const double flops = 1e6;
  const double t_gemm = flops / 1e9;
  Machine m = Machine::unit_test();
  auto body = [&](Comm& c) {
    c.charge_compute(flops, 0);
    c.barrier();
  };
  Cluster cl(2, m);
  cl.run(body);
  const double base = cl.aggregate_stats().vtime;

  FaultPlan fp;
  fp.stragglers.push_back({.node = 1, .factor = 3.0});
  cl.set_fault_plan(fp);
  cl.run(body);
  const double straggled = cl.aggregate_stats().vtime;
  EXPECT_NEAR(straggled - base, 2.0 * t_gemm, 1e-12);
  // The non-straggled rank pays the wait inside the barrier: both exit at
  // the same virtual time.
  EXPECT_DOUBLE_EQ(cl.stats(0).vtime, cl.stats(1).vtime);
}

TEST(FaultInjection, PayloadFlipIsCaughtByReceiverValidation) {
  Cluster cl(2, Machine::unit_test());
  FaultPlan fp;
  fp.flips.push_back(
      {.src = 0, .dst = 1, .tag = 5, .nth_match = 1, .offset = 9, .mask = 0xFF});
  cl.set_fault_plan(fp);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    std::vector<double> buf(4, 1.25);
    if (c.rank() == 0) {
      c.send(buf.data(), 4, 1, 5);
    } else {
      c.recv(buf.data(), 4, 0, 5);
      for (double v : buf)
        if (v != 1.25) throw Error("corrupted payload detected");
    }
  });
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("corrupted payload"), std::string::npos) << msg;
}

TEST(ConsistencyChecker, MismatchedCollectiveOpIsReported) {
  Cluster cl(2, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 0) {
      double x = 0;
      c.bcast(&x, 1, 0);
    } else {
      c.barrier();
    }
  });
  EXPECT_NE(msg.find("mismatched collective"), std::string::npos) << msg;
}

TEST(ConsistencyChecker, BcastRootMismatchRaisesBeforeCorruption) {
  Cluster cl(4, Machine::unit_test());
  cl.set_validation(true);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    double x = c.rank();
    c.bcast(&x, 1, c.rank() == 0 ? 0 : 1);  // inconsistent root
  });
  EXPECT_NE(msg.find("bcast root mismatch"), std::string::npos) << msg;
}

TEST(ConsistencyChecker, AllgathervCountsMismatchRaisesOnEveryRank) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.set_validation(true);
  const std::string msg = run_expect_error(cl, [&](Comm& c) {
    // Rank 2 disagrees about rank 0's contribution.
    std::vector<i64> counts{8, 8, 8, 8};
    if (c.rank() == 2) counts[0] = 16;
    counts[static_cast<size_t>(c.rank())] = 8;
    double mine = c.rank();
    std::vector<double> all(static_cast<size_t>(P + 1));
    c.allgatherv_bytes(&mine, 8, all.data(), counts);
  });
  // The rendezvous fails collectively: every member raises the same error.
  EXPECT_NE(msg.find("4 ranks failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("allgatherv counts mismatch"), std::string::npos) << msg;
}

TEST(ConsistencyChecker, AllreduceDtypeMismatchDetected) {
  Cluster cl(2, Machine::unit_test());
  cl.set_validation(true);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    double s = 1, r = 0;
    c.allreduce_sum(&s, &r, 1,
                    c.rank() == 0 ? Dtype::kF64 : Dtype::kF32);
  });
  EXPECT_NE(msg.find("dtype mismatch"), std::string::npos) << msg;
}

TEST(P2PValidation, RecvSizeMismatchIsAnErrorNotAnAbort) {
  // Satellite: a posted-size mismatch is a user error that must flow
  // through the cooperative-abort path, not kill the process.
  Cluster cl(2, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    double x[2] = {1, 2};
    if (c.rank() == 0)
      c.send(x, 1, 1, 0);
    else
      c.recv(x, 2, 0, 0);
  });
  EXPECT_NE(msg.find("recv size mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
}

TEST(Watchdog, TagMismatchBecomesWaitForTable) {
  // Rank 1 sends tag 7 and finishes; rank 0 waits for tag 999 forever. The
  // watchdog must convert the hang into a diagnostic naming the stuck op.
  Cluster cl(2, Machine::unit_test());
  cl.set_watchdog_interval_ms(20);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 0) {
      double x = 0;
      c.recv(&x, 1, 1, 999);
    } else {
      double v = 1;
      c.send(&v, 1, 0, 7);
    }
  });
  EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wait-for table"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocked in recv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("tag=999"), std::string::npos) << msg;
  EXPECT_NE(msg.find("finished"), std::string::npos) << msg;
}

TEST(Watchdog, SplitCollectiveDeadlockDetected) {
  // Two ranks each wait on a collective the other will never join: rank 0
  // runs a barrier on the world communicator while rank 1 runs a barrier on
  // a subgroup... constructed here as a world barrier only rank 0 enters.
  Cluster cl(2, Machine::unit_test());
  cl.set_watchdog_interval_ms(20);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 0) {
      c.barrier();
    } else {
      double x = 0;
      c.recv(&x, 1, 0, 0);  // rank 0 never sends
    }
  });
  EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocked in barrier"), std::string::npos) << msg;
}

TEST(Watchdog, DoesNotFireOnHealthyRuns) {
  // A run with plenty of blocking communication but steady progress must
  // never trip the watchdog, even at an aggressive sampling interval.
  const int P = 8;
  Cluster cl(P, Machine::unit_test());
  cl.set_watchdog_interval_ms(1);
  cl.run([&](Comm& c) {
    for (int i = 0; i < 200; ++i) {
      const int me = c.rank();
      double v = me, got = -1;
      c.sendrecv(&v, 1, (me + P - 1) % P, &got, 1, (me + 1) % P, 0);
      c.barrier();
    }
  });
}

TEST(CoreValidation, BadPlanDimensionsRaiseError) {
  EXPECT_THROW(Ca3dmmPlan::make(0, 5, 5, 4), Error);
  EXPECT_THROW(Ca3dmmPlan::make(5, -1, 5, 4), Error);
  EXPECT_THROW(Ca3dmmPlan::make(5, 5, 5, 0), Error);
  Ca3dmmOptions opt;
  opt.min_kblk = -1;
  EXPECT_THROW(Ca3dmmPlan::make(5, 5, 5, 4, opt), Error);
}

TEST(CoreValidation, LayoutMismatchRaisesCollectivelyNotHang) {
  // Every rank passes the same bad C layout to pgemm: each raises the same
  // Error before any communication, so the run fails with all ranks
  // attributed instead of diverging into a hang.
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  const std::string msg = run_expect_error(cl, [&](Comm& world) {
    Ca3dmmPlan plan = Ca3dmmPlan::make(8, 8, 8, P);
    BlockLayout a = plan.a_native();
    BlockLayout b = plan.b_native();
    BlockLayout c_bad(9, 8, P);  // wrong shape on every rank
    std::vector<double> al(static_cast<size_t>(a.local_size(world.rank())));
    std::vector<double> bl(static_cast<size_t>(b.local_size(world.rank())));
    std::vector<double> cb(static_cast<size_t>(c_bad.local_size(world.rank())));
    ca3dmm_multiply<double>(world, plan, false, false, a, al.data(), b,
                            bl.data(), c_bad, cb.data());
  });
  EXPECT_NE(msg.find("4 ranks failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("C layout"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// Shrink-and-replan recovery and ABFT correction (src/resilience).
// ---------------------------------------------------------------------------

using resilience::RecoveryReport;
using resilience::ResilientRunner;
using resilience::RetryPolicy;

constexpr std::uint64_t kSeedA = 31, kSeedB = 32;

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// A rank_main computing C = A·B that derives the plan and every layout from
/// world.size() — the contract that makes shrink-and-replan automatic: after
/// the runner shrinks the world, the same body replans at the survivor
/// count. Each rank's C block lands in (*out)[world rank].
std::function<void(Comm&)> pgemm_main(i64 m, i64 n, i64 k,
                                      std::vector<std::vector<double>>* out,
                                      Ca3dmmOptions opt = {}) {
  return [=](Comm& world) {
    const int P = world.size();
    const int me = world.rank();
    const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P, opt);
    const BlockLayout a_nat = plan.a_native();
    const BlockLayout b_nat = plan.b_native();
    const BlockLayout c_nat = plan.c_native();
    std::vector<double> a, b;
    fill_local(a_nat, me, kSeedA, a);
    fill_local(b_nat, me, kSeedB, b);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
    (*out)[static_cast<size_t>(me)] = std::move(c);
  };
}

void expect_bitwise_equal(const std::vector<std::vector<double>>& got,
                          const std::vector<std::vector<double>>& want,
                          int nranks) {
  for (int r = 0; r < nranks; ++r) {
    const auto& g = got[static_cast<size_t>(r)];
    const auto& w = want[static_cast<size_t>(r)];
    ASSERT_EQ(g.size(), w.size()) << "rank " << r;
    for (size_t i = 0; i < g.size(); ++i)
      ASSERT_EQ(g[i], w[i]) << "rank " << r << " element " << i;
  }
}

TEST(Recovery, RankKillShrinksAndReplansToBitIdenticalResult) {
  const i64 m = 48, n = 48, k = 48;
  const int P = 5;

  // Reference: a clean run at the survivor count.
  std::vector<std::vector<double>> clean(P - 1);
  Cluster ref(P - 1, Machine::unit_test());
  ref.run(pgemm_main(m, n, k, &clean));

  ResilientRunner runner(P, Machine::unit_test(),
                         RetryPolicy{.max_attempts = 3, .backoff_s = 0.5});
  FaultPlan fp;
  fp.kills.push_back({.rank = 2, .at_op = 4});
  runner.set_fault_plan(fp);
  std::vector<std::vector<double>> out(P);
  const RecoveryReport rep = runner.run(pgemm_main(m, n, k, &out));

  EXPECT_TRUE(rep.ok);
  ASSERT_EQ(rep.attempts_used(), 2);
  EXPECT_FALSE(rep.attempts[0].ok);
  EXPECT_EQ(rep.attempts[0].nranks, P);
  EXPECT_EQ(rep.attempts[0].failed_world_ranks, (std::vector<int>{2}));
  EXPECT_NE(rep.attempts[0].error.find("fault injection"), std::string::npos)
      << rep.attempts[0].error;
  EXPECT_TRUE(rep.attempts[1].ok);
  EXPECT_EQ(rep.final_nranks, P - 1);
  EXPECT_EQ(rep.surviving_world_ranks, (std::vector<int>{0, 1, 3, 4}));

  // The recovered multiply is bit-identical to a clean run at the survivor
  // count: shrink-and-replan, not a degraded answer.
  expect_bitwise_equal(out, clean, P - 1);

  // Recovery latency accounting: both attempts plus the configured backoff,
  // all in deterministic virtual time.
  EXPECT_EQ(rep.backoff_s, 0.5);
  EXPECT_GT(rep.attempts[0].vtime, 0.0);
  EXPECT_GE(rep.total_vtime(),
            rep.backoff_s + rep.attempts[1].vtime);
}

TEST(Recovery, RetryBudgetExhaustionSurfacesRankAttributedError) {
  // Two staged kills: attempt 1 loses original rank 1 (the second kill
  // never fires — its rank is still blocked at an earlier barrier), the
  // shrunk attempt 2 loses original rank 2 via the remapped kill. With
  // max_attempts = 2 the budget is now exhausted and the original
  // rank-attributed error must surface.
  ResilientRunner runner(5, Machine::unit_test(),
                         RetryPolicy{.max_attempts = 2});
  FaultPlan fp;
  fp.kills.push_back({.rank = 1, .at_op = 2});
  fp.kills.push_back({.rank = 2, .at_op = 5});
  runner.set_fault_plan(fp);
  try {
    runner.run([](Comm& c) {
      for (int i = 0; i < 10; ++i) c.barrier();
    });
    FAIL() << "retry budget should have been exhausted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("retry budget exhausted"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fault injection"), std::string::npos) << msg;
  }
  const RecoveryReport& rep = runner.report();
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.attempts_used(), 2);
  EXPECT_EQ(rep.attempts[0].nranks, 5);
  EXPECT_EQ(rep.attempts[0].failed_world_ranks, (std::vector<int>{1}));
  // The remapped kill fired on shrunk rank 1 — reported in ORIGINAL world
  // numbering as rank 2.
  EXPECT_EQ(rep.attempts[1].nranks, 4);
  EXPECT_EQ(rep.attempts[1].failed_world_ranks, (std::vector<int>{2}));
}

TEST(Recovery, StragglerReclassificationExcludesWholeNode) {
  // Node 1 runs 50x slow; the straggler policy reclassifies it as degraded
  // at the first barrier, and the runner excludes the whole node — both its
  // ranks — before the (clean) retry.
  Machine mach = Machine::unit_test();
  mach.ranks_per_node = 2;
  ResilientRunner runner(4, mach);
  FaultPlan fp;
  fp.stragglers.push_back({.node = 1, .factor = 50.0});
  runner.set_fault_plan(fp);
  StragglerPolicy sp;
  sp.enabled = true;
  sp.degrade_factor = 5.0;
  sp.min_lag_s = 1e-6;
  runner.set_straggler_policy(sp);
  const RecoveryReport rep = runner.run([](Comm& c) {
    for (int i = 0; i < 3; ++i) {
      c.charge_compute(1e6, 0);
      c.barrier();
    }
  });
  EXPECT_TRUE(rep.ok);
  ASSERT_EQ(rep.attempts_used(), 2);
  EXPECT_EQ(rep.attempts[0].degraded_nodes, (std::vector<int>{1}));
  EXPECT_EQ(rep.attempts[0].failed_world_ranks, (std::vector<int>{2, 3}));
  EXPECT_NE(rep.attempts[0].error.find("straggler policy"), std::string::npos)
      << rep.attempts[0].error;
  EXPECT_EQ(rep.final_nranks, 2);
  EXPECT_EQ(rep.surviving_world_ranks, (std::vector<int>{0, 1}));
}

TEST(Recovery, UnshrinkableFailureIsNotRetried) {
  // A deterministic input error raised collectively marks every rank failed
  // with no degraded node: shrinking cannot fix it, so the runner must give
  // up immediately instead of burning the retry budget.
  ResilientRunner runner(4, Machine::unit_test(),
                         RetryPolicy{.max_attempts = 5});
  try {
    runner.run([](Comm&) {
      throw Error("deterministic input error on every rank");
    });
    FAIL() << "run() should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("not shrinkable"), std::string::npos) << msg;
  }
  EXPECT_EQ(runner.report().attempts_used(), 1);
}

// ---------------------------------------------------------------------------
// ABFT: every single-byte corruption of Cannon skew/shift traffic must be
// neutralized, with C bit-identical to an uncorrupted run.
// ---------------------------------------------------------------------------

/// One protected multiply at P = 4 on a forced 2x2x1 grid: every Cannon
/// skew/shift tile is 24x24 doubles (4608 payload bytes + 16-byte checksum
/// trailer on the wire). Returns the aggregate number of corruptions the
/// decoders neutralized.
i64 run_abft_multiply(const FaultPlan& fp, bool abft,
                      std::vector<std::vector<double>>* out) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.set_fault_plan(fp);
  out->assign(static_cast<size_t>(P), {});
  Ca3dmmOptions opt;
  opt.abft = abft;
  opt.force_grid = ProcGrid{2, 2, 1};
  cl.run(pgemm_main(48, 48, 48, out, opt));
  return cl.aggregate_stats().abft_corrected;
}

TEST(Abft, ProtectionItselfDoesNotChangeResults) {
  std::vector<std::vector<double>> plain, protected_c;
  run_abft_multiply(FaultPlan{}, false, &plain);
  const i64 corrected = run_abft_multiply(FaultPlan{}, true, &protected_c);
  EXPECT_EQ(corrected, 0);
  expect_bitwise_equal(protected_c, plain, 4);
}

TEST(Abft, EverySingleByteFlipIsNeutralized) {
  // Enumerate every (src, dst) pair x every Cannon tag x offsets in the
  // payload head, payload middle, and the checksum trailer itself. Channels
  // that carry no traffic leave the run untouched; every channel that does
  // must be corrected (or absorbed, for trailer hits) to a C bit-identical
  // to the clean protected run.
  std::vector<std::vector<double>> clean;
  ASSERT_EQ(run_abft_multiply(FaultPlan{}, true, &clean), 0);

  const int kTags[] = {101, 201, 301, 401};  // shift A/B, skew A/B
  const i64 kOffsets[] = {0, 2047, 4615};    // head, middle, trailer byte
  i64 total_corrected = 0;
  int fired = 0;
  for (int src = 0; src < 4; ++src)
    for (int dst = 0; dst < 4; ++dst)
      for (int tag : kTags)
        for (i64 off : kOffsets) {
          SCOPED_TRACE("src=" + std::to_string(src) +
                       " dst=" + std::to_string(dst) +
                       " tag=" + std::to_string(tag) +
                       " off=" + std::to_string(off));
          FaultPlan fp;
          fp.flips.push_back({.src = src,
                              .dst = dst,
                              .tag = tag,
                              .nth_match = 1,
                              .offset = off,
                              .mask = 0x10});
          std::vector<std::vector<double>> out;
          const i64 corrected = run_abft_multiply(fp, true, &out);
          total_corrected += corrected;
          if (corrected > 0) ++fired;
          expect_bitwise_equal(out, clean, 4);
        }
  // The 2x2 Cannon step has 8 shift channels and 4 cross-rank skew
  // channels; each enumerated offset hits them all, so at least 36 of the
  // injections genuinely corrupted a message in flight.
  EXPECT_GE(fired, 36);
  EXPECT_GE(total_corrected, fired);
}

TEST(Abft, UnprotectedFlipCorruptsTheResult) {
  // Negative control: the same class of flip with protection off must
  // corrupt C — proving the enumeration above exercises real faults, not
  // channels that never exist. Flipping the top byte of the first double of
  // every A-shift message (sign/exponent bits) guarantees a visible change.
  std::vector<std::vector<double>> plain, corrupted;
  run_abft_multiply(FaultPlan{}, false, &plain);
  FaultPlan fp;
  for (int src = 0; src < 4; ++src)
    for (int dst = 0; dst < 4; ++dst)
      fp.flips.push_back({.src = src,
                          .dst = dst,
                          .tag = 101,
                          .nth_match = 1,
                          .offset = 7,
                          .mask = 0x80});
  const i64 corrected = run_abft_multiply(fp, false, &corrupted);
  EXPECT_EQ(corrected, 0);  // no decoder ran
  bool differs = false;
  for (int r = 0; r < 4 && !differs; ++r)
    differs = corrupted[static_cast<size_t>(r)] != plain[static_cast<size_t>(r)];
  EXPECT_TRUE(differs);
}

TEST(Abft, MultiByteCorruptionRaisesInsteadOfSilentlyDegrading) {
  // Two corrupted bytes in one message exceed the single-error correction
  // capability: the decoder must raise (detection never silently degrades
  // to a wrong C), and the error is rank-attributed like any other fault.
  // Offsets 0 and 5 put the errors at parity positions 1 and 6, which
  // differ in more than one bit — a pair the XOR parity provably cannot
  // mistake for a correctable single error (see docs/RESILIENCE.md).
  FaultPlan fp;
  for (int src = 0; src < 4; ++src)
    for (int dst = 0; dst < 4; ++dst)
      for (i64 off : {i64{0}, i64{5}})
        fp.flips.push_back({.src = src,
                            .dst = dst,
                            .tag = 101,
                            .nth_match = 1,
                            .offset = off,
                            .mask = 0x10});
  std::vector<std::vector<double>> out(4);
  Cluster cl(4, Machine::unit_test());
  cl.set_fault_plan(fp);
  Ca3dmmOptions opt;
  opt.abft = true;
  opt.force_grid = ProcGrid{2, 2, 1};
  const std::string msg =
      run_expect_error(cl, pgemm_main(48, 48, 48, &out, opt));
  EXPECT_NE(msg.find("abft: uncorrectable corruption"), std::string::npos)
      << msg;
}

// ---------------------------------------------------------------------------
// Engine-level recovery: a failed request must not poison the PgemmEngine.
// ---------------------------------------------------------------------------

TEST(EngineRecovery, EngineIsReusableAfterFailedRequest) {
  // A request that fails validation mid-execute (same plan key as a cached
  // good request, but an inconsistent C layout) must invalidate the
  // poisoned cache entry; the next identical good request rebuilds it and
  // produces a bit-identical result.
  const i64 m = 24;
  const int P = 4;
  const BlockLayout lay = BlockLayout::col_1d(m, m, P);
  const BlockLayout c_bad(m + 1, m, P);
  Cluster cl(P, Machine::unit_test());
  engine::EngineStats st;
  std::vector<std::vector<double>> first(P), second(P);
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a, b;
    fill_local(lay, me, kSeedA, a);
    fill_local(lay, me, kSeedB, b);
    std::vector<double> c(static_cast<size_t>(lay.local_size(me)));
    engine::PgemmEngine eng(world);
    engine::Request<double> good;
    good.m = m;
    good.n = m;
    good.k = m;
    good.a_layout = &lay;
    good.a = a.data();
    good.b_layout = &lay;
    good.b = b.data();
    good.c_layout = &lay;
    good.c = c.data();
    eng.multiply(good);
    first[static_cast<size_t>(me)] = c;

    // Same plan key, bad C layout: every rank raises the same validation
    // error before any communication, so the failure is symmetric and the
    // cluster keeps running.
    std::vector<double> cb(static_cast<size_t>(c_bad.local_size(me)));
    engine::Request<double> bad = good;
    bad.c_layout = &c_bad;
    bad.c = cb.data();
    try {
      eng.multiply(bad);
      ADD_FAILURE() << "bad request did not raise";
    } catch (const Error&) {
    }

    std::fill(c.begin(), c.end(), 0.0);
    eng.multiply(good);
    second[static_cast<size_t>(me)] = c;
    if (me == 0) st = eng.stats();
  });
  EXPECT_EQ(st.plan_misses, 2);          // first good + rebuild after poison
  EXPECT_EQ(st.plan_hits, 1);            // the bad request hit the cache
  EXPECT_EQ(st.plan_invalidations, 1);   // ... and poisoned the entry
  EXPECT_EQ(st.requests, 2);             // only successful requests count
  expect_bitwise_equal(second, first, P);
}

}  // namespace
}  // namespace ca3dmm::simmpi
