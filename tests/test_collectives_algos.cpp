// The topology-aware collective engine: every schedule (ring, recursive
// doubling, hierarchical, auto) must deliver byte-identical buffers to the
// paper-butterfly baseline under both data-movement modes — schedules change
// modeled cost and inter-node byte accounting, never data. Also covers
// algorithm resolution, per-communicator configuration and split
// inheritance, hierarchical inter-byte monotonicity, and cooperative abort
// under fault injection with tuned schedules.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "simmpi/cluster.hpp"
#include "simmpi/coll_cost.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"

namespace ca3dmm::simmpi {
namespace {

using DataMovement = CollectiveConfig::DataMovement;

struct RunResult {
  std::vector<std::vector<double>> bufs;  ///< per rank: all received data
  std::vector<double> vtimes;
  double inter_bytes = 0;  ///< aggregate inter-node bytes
};

/// Runs a mixed collective workload (bcast, allgather, uneven allgatherv,
/// uneven reduce-scatter with a zero count, non-divisible allreduce) and
/// captures every byte each rank received.
RunResult run_workload(const Machine& mach, int P,
                       const CollectiveConfig& cfg) {
  Cluster cl(P, mach);
  cl.set_collective_config(cfg);
  RunResult res;
  res.bufs.assign(static_cast<size_t>(P), {});
  res.vtimes.assign(static_cast<size_t>(P), 0.0);
  cl.run([&](Comm& c) {
    const int me = c.rank();
    std::vector<double>& out = res.bufs[static_cast<size_t>(me)];

    std::vector<double> b(7, 0.0);
    if (me == 1)
      for (int i = 0; i < 7; ++i) b[static_cast<size_t>(i)] = 3.5 * i - 1.0;
    c.bcast(b.data(), 7, 1);
    out.insert(out.end(), b.begin(), b.end());

    std::vector<double> mine{1.25 * me, me * me + 0.5,
                             static_cast<double>(-me)};
    std::vector<double> all(static_cast<size_t>(3 * P));
    c.allgather(mine.data(), 3, all.data());
    out.insert(out.end(), all.begin(), all.end());

    // Uneven allgatherv: rank r contributes (r % 3) + 1 doubles.
    const int nmine = me % 3 + 1;
    std::vector<double> vals(static_cast<size_t>(nmine));
    for (int i = 0; i < nmine; ++i)
      vals[static_cast<size_t>(i)] = 100.0 * me + i + 0.25;
    std::vector<i64> counts(static_cast<size_t>(P));
    i64 total = 0;
    for (int r = 0; r < P; ++r) {
      counts[static_cast<size_t>(r)] =
          static_cast<i64>((r % 3 + 1) * sizeof(double));
      total += r % 3 + 1;
    }
    std::vector<double> gat(static_cast<size_t>(total));
    c.allgatherv_bytes(vals.data(),
                       static_cast<i64>(nmine * sizeof(double)), gat.data(),
                       counts);
    out.insert(out.end(), gat.begin(), gat.end());

    // Reduce-scatter with uneven counts including zeros. Values are
    // irrational-ish so any reordering of the summation would show.
    std::vector<i64> rs(static_cast<size_t>(P));
    i64 rtot = 0;
    for (int r = 0; r < P; ++r) {
      rs[static_cast<size_t>(r)] = r % 4;
      rtot += r % 4;
    }
    std::vector<double> sb(static_cast<size_t>(rtot));
    for (i64 i = 0; i < rtot; ++i)
      sb[static_cast<size_t>(i)] = std::sin(0.1 * (me + 1) * (i + 1));
    std::vector<double> rb(
        static_cast<size_t>(std::max<i64>(rs[static_cast<size_t>(me)], 1)),
        -1.0);
    c.reduce_scatter(sb.data(), rb.data(), rs);
    out.insert(out.end(), rb.begin(),
               rb.begin() + rs[static_cast<size_t>(me)]);

    // Allreduce with a count not divisible by P (uneven element shards).
    const i64 ac = 2 * P + 3;
    std::vector<double> as(static_cast<size_t>(ac)),
        ar(static_cast<size_t>(ac));
    for (i64 i = 0; i < ac; ++i)
      as[static_cast<size_t>(i)] = std::cos(0.05 * (me + 2) * (i + 1));
    c.allreduce(as.data(), ar.data(), ac);
    out.insert(out.end(), ar.begin(), ar.end());
  });
  for (int r = 0; r < P; ++r)
    res.vtimes[static_cast<size_t>(r)] = cl.stats(r).vtime;
  res.inter_bytes = cl.aggregate_stats().total_inter_bytes();
  return res;
}

CollectiveConfig uniform(CollAlgo a, DataMovement dm) {
  CollectiveConfig cfg;
  cfg.allgather = cfg.reduce_scatter = cfg.bcast = cfg.allreduce = a;
  cfg.data_movement = dm;
  return cfg;
}

TEST(CollectivesAlgos, SchedulesAreByteIdentical) {
  struct Case {
    Machine mach;
    int P;
    const char* name;
  };
  // unit_test: one rank per node (hierarchy never applies); phoenix_mpi
  // with 30 ranks: two nodes of 24 + 6 (hierarchy applies). Both sizes are
  // non-powers-of-two.
  const Case cases[] = {{Machine::unit_test(), 10, "unit_test"},
                        {Machine::phoenix_mpi(), 30, "phoenix_mpi"}};
  for (const Case& cs : cases) {
    const RunResult ref = run_workload(cs.mach, cs.P, CollectiveConfig{});
    for (CollAlgo a : {CollAlgo::kRing, CollAlgo::kRecursive,
                       CollAlgo::kHierarchical, CollAlgo::kAuto}) {
      for (DataMovement dm :
           {DataMovement::kSharded, DataMovement::kLastArriver}) {
        const RunResult got =
            run_workload(cs.mach, cs.P, uniform(a, dm));
        EXPECT_EQ(got.bufs, ref.bufs)
            << cs.name << " algo=" << coll_algo_name(a)
            << " dm=" << (dm == DataMovement::kSharded ? "sharded" : "last");
      }
    }
  }
}

TEST(CollectivesAlgos, DataMovementModeNeverChangesVirtualTime) {
  // Who performs the memcpy/summation is a host wall-clock detail; virtual
  // times must be bitwise equal between the two modes, for the default and
  // the tuned schedules alike.
  for (CollAlgo a : {CollAlgo::kPaperButterfly, CollAlgo::kAuto}) {
    const RunResult sharded = run_workload(
        Machine::phoenix_mpi(), 30, uniform(a, DataMovement::kSharded));
    const RunResult last = run_workload(
        Machine::phoenix_mpi(), 30, uniform(a, DataMovement::kLastArriver));
    EXPECT_EQ(sharded.vtimes, last.vtimes) << coll_algo_name(a);
    EXPECT_EQ(sharded.bufs, last.bufs) << coll_algo_name(a);
  }
}

TEST(CollectivesAlgos, DefaultConfigMatchesExplicitButterfly) {
  // A default-constructed config and an explicitly butterfly-configured
  // one must agree exactly (the seed-compatibility guarantee).
  const RunResult def =
      run_workload(Machine::phoenix_mpi(), 12, CollectiveConfig{});
  const RunResult explicit_bf =
      run_workload(Machine::phoenix_mpi(), 12,
                   uniform(CollAlgo::kPaperButterfly, DataMovement::kSharded));
  EXPECT_EQ(def.vtimes, explicit_bf.vtimes);
  EXPECT_EQ(def.bufs, explicit_bf.bufs);
}

TEST(CollectivesAlgos, ResolveAlgoSelection) {
  GroupProfile single;
  single.size = 8;
  single.nodes = 1;
  single.max_ranks_per_node = 8;
  single.single_node = true;
  GroupProfile multi;
  multi.size = 48;
  multi.nodes = 2;
  multi.max_ranks_per_node = 24;
  multi.single_node = false;
  GroupProfile spread;  // one rank per node: no two-level structure
  spread.size = 8;
  spread.nodes = 8;
  spread.max_ranks_per_node = 1;
  spread.single_node = false;

  const i64 small = 16 * 1024;
  // kAuto: latency-bound small messages -> recursive; large -> butterfly;
  // multi-node with >1 rank/node -> hierarchical at any size.
  EXPECT_EQ(resolve_coll_algo(CollAlgo::kAuto, single, 1024.0, small),
            CollAlgo::kRecursive);
  EXPECT_EQ(resolve_coll_algo(CollAlgo::kAuto, single, 1 << 20, small),
            CollAlgo::kPaperButterfly);
  EXPECT_EQ(resolve_coll_algo(CollAlgo::kAuto, multi, 1024.0, small),
            CollAlgo::kHierarchical);
  EXPECT_EQ(resolve_coll_algo(CollAlgo::kAuto, spread, 1024.0, small),
            CollAlgo::kRecursive);
  // Explicit hierarchical downgrades when the group has no hierarchy.
  EXPECT_EQ(resolve_coll_algo(CollAlgo::kHierarchical, single, 1 << 20, small),
            CollAlgo::kPaperButterfly);
  EXPECT_EQ(resolve_coll_algo(CollAlgo::kHierarchical, spread, 1 << 20, small),
            CollAlgo::kPaperButterfly);
  // Explicit flat algorithms are honored as-is.
  EXPECT_EQ(resolve_coll_algo(CollAlgo::kRing, multi, 1024.0, small),
            CollAlgo::kRing);
  EXPECT_EQ(resolve_coll_algo(CollAlgo::kPaperButterfly, multi, 1.0, small),
            CollAlgo::kPaperButterfly);
}

TEST(CollectivesAlgos, HierarchicalCostReducesInterBytes) {
  // Two full nodes: flat butterfly puts n * (p - r) = n * 24 bytes on the
  // network, the two-level schedule n * (N - 1) = n. Applies to both the
  // allgather and the reduce-scatter formulas.
  const Machine m = Machine::phoenix_mpi();
  GroupProfile g;
  g.size = 48;
  g.nodes = 2;
  g.max_ranks_per_node = 24;
  g.single_node = false;
  const LinkParams l = group_link(m, g);
  const double bytes = 1 << 20;
  const CollCost fa =
      coll_allgather_cost(m, g, l, CollAlgo::kPaperButterfly, bytes, g.size);
  const CollCost ha =
      coll_allgather_cost(m, g, l, CollAlgo::kHierarchical, bytes, g.size);
  EXPECT_GT(fa.inter_bytes, 0.0);
  EXPECT_LT(ha.inter_bytes, fa.inter_bytes);
  const CollCost fr = coll_reduce_scatter_cost(
      m, g, l, CollAlgo::kPaperButterfly, bytes, g.size, false);
  const CollCost hr = coll_reduce_scatter_cost(
      m, g, l, CollAlgo::kHierarchical, bytes, g.size, false);
  EXPECT_GT(fr.inter_bytes, 0.0);
  EXPECT_LT(hr.inter_bytes, fr.inter_bytes);
}

TEST(CollectivesAlgos, HierarchicalReducesEngineInterBytes) {
  // End-to-end on the engine: the aggregate RankStats inter-node bytes of a
  // two-node allgather + reduce-scatter drop strictly under the
  // hierarchical schedule.
  const int P = 48;  // two full phoenix_mpi nodes
  auto run_with = [&](CollAlgo a) {
    Cluster cl(P, Machine::phoenix_mpi());
    cl.set_collective_config(uniform(a, DataMovement::kSharded));
    cl.run([&](Comm& c) {
      std::vector<double> mine(256, 1.0 + c.rank());
      std::vector<double> all(static_cast<size_t>(256 * P));
      c.allgather(mine.data(), 256, all.data());
      std::vector<i64> counts(static_cast<size_t>(P), 256);
      std::vector<double> s(static_cast<size_t>(256 * P), 0.5), r(256);
      c.reduce_scatter(s.data(), r.data(), counts);
    });
    return cl.aggregate_stats().total_inter_bytes();
  };
  const double flat = run_with(CollAlgo::kPaperButterfly);
  const double hier = run_with(CollAlgo::kHierarchical);
  EXPECT_GT(flat, 0.0);
  EXPECT_LT(hier, flat);
}

TEST(CollectivesAlgos, PerCommConfigOverridesAndSplitInherits) {
  Cluster cl(8, Machine::unit_test());
  cl.run([](Comm& c) {
    const CollectiveConfig cfg = CollectiveConfig::tuned();
    c.set_collective_config(cfg);
    EXPECT_TRUE(c.collective_config() == cfg);
    Comm sub = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_TRUE(sub.collective_config() == cfg);  // inherited by children
    double v = 1.0, s = 0.0;
    sub.allreduce(&v, &s, 1);
    EXPECT_DOUBLE_EQ(s, 4.0);
  });
}

TEST(CollectivesAlgos, FaultInjectionUnwindsUnderTunedSchedules) {
  // A rank killed mid-workload must unwind the whole cluster with a
  // rank-attributed error regardless of schedule or data-movement mode.
  for (DataMovement dm :
       {DataMovement::kSharded, DataMovement::kLastArriver}) {
    Cluster cl(30, Machine::phoenix_mpi());
    CollectiveConfig cfg = CollectiveConfig::tuned();
    cfg.data_movement = dm;
    cl.set_collective_config(cfg);
    FaultPlan fp;
    fp.kills.push_back({7, 2});
    cl.set_fault_plan(fp);
    std::string msg;
    try {
      cl.run([](Comm& c) {
        std::vector<double> mine(64, 1.0 * c.rank());
        std::vector<double> all(static_cast<size_t>(64 * c.size()));
        c.allgather(mine.data(), 64, all.data());
        double v = 1.0, s = 0.0;
        c.allreduce(&v, &s, 1);
        c.barrier();
      });
      ADD_FAILURE() << "run() completed despite the injected kill";
    } catch (const Error& e) {
      msg = e.what();
    }
    EXPECT_NE(msg.find("rank 7"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace ca3dmm::simmpi
