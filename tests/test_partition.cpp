// Unit tests for the canonical block-partition math that every distributed
// object in the library builds on.
#include <gtest/gtest.h>

#include "common/partition.hpp"

namespace ca3dmm {
namespace {

TEST(Partition, EvenSplit) {
  EXPECT_EQ(block_size(12, 4, 0), 3);
  EXPECT_EQ(block_size(12, 4, 3), 3);
  EXPECT_EQ(block_start(12, 4, 0), 0);
  EXPECT_EQ(block_start(12, 4, 2), 6);
  EXPECT_EQ(block_start(12, 4, 4), 12);  // one-past-the-end sentinel
}

TEST(Partition, UnevenSplitFirstBlocksLarger) {
  // n=10, p=4: sizes 3,3,2,2
  EXPECT_EQ(block_size(10, 4, 0), 3);
  EXPECT_EQ(block_size(10, 4, 1), 3);
  EXPECT_EQ(block_size(10, 4, 2), 2);
  EXPECT_EQ(block_size(10, 4, 3), 2);
  EXPECT_EQ(block_start(10, 4, 2), 6);
}

TEST(Partition, MoreBlocksThanElements) {
  // n=3, p=5: sizes 1,1,1,0,0
  EXPECT_EQ(block_size(3, 5, 0), 1);
  EXPECT_EQ(block_size(3, 5, 2), 1);
  EXPECT_EQ(block_size(3, 5, 3), 0);
  EXPECT_EQ(block_size(3, 5, 4), 0);
}

TEST(Partition, RangesCoverExactly) {
  for (i64 n : {1, 2, 7, 16, 100, 101}) {
    for (i64 p : {1, 2, 3, 4, 7, 16, 33}) {
      auto ranges = partition(n, p);
      ASSERT_EQ(ranges.size(), static_cast<size_t>(p));
      i64 pos = 0;
      for (i64 b = 0; b < p; ++b) {
        EXPECT_EQ(ranges[static_cast<size_t>(b)].lo, pos);
        pos = ranges[static_cast<size_t>(b)].hi;
        // Canonical size is either floor(n/p) or ceil(n/p).
        const i64 sz = ranges[static_cast<size_t>(b)].size();
        EXPECT_TRUE(sz == n / p || sz == (n + p - 1) / p)
            << "n=" << n << " p=" << p << " b=" << b;
      }
      EXPECT_EQ(pos, n);
    }
  }
}

TEST(Partition, BlockOfIndexInverse) {
  for (i64 n : {1, 5, 12, 97}) {
    for (i64 p : {1, 2, 5, 12, 30}) {
      for (i64 i = 0; i < n; ++i) {
        const i64 b = block_of_index(n, p, i);
        EXPECT_TRUE(block_range(n, p, b).contains(i))
            << "n=" << n << " p=" << p << " i=" << i;
      }
    }
  }
}

TEST(Partition, Intersect) {
  EXPECT_EQ(intersect({0, 5}, {3, 9}), (Range{3, 5}));
  EXPECT_TRUE(intersect({0, 3}, {5, 9}).empty());
  EXPECT_EQ(intersect({2, 8}, {2, 8}), (Range{2, 8}));
}

TEST(Partition, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 100), 1);
}

}  // namespace
}  // namespace ca3dmm
