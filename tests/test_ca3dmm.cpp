// End-to-end CA3DMM correctness: the full Algorithm-1 pipeline against a
// serial reference GEMM, across matrix shapes, process counts (including
// primes -> idle ranks), transposes, user layouts, and engine options.
#include <gtest/gtest.h>

#include <vector>

#include "core/ca3dmm.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

constexpr std::uint64_t kSeedA = 11, kSeedB = 22;

/// Fills this rank's local buffer under `layout` from the virtual global
/// random matrix `seed`.
void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// Serial reference: C = op(A) op(B) with the same virtual matrices.
Matrix<double> reference_product(i64 m, i64 n, i64 k, bool ta, bool tb) {
  Matrix<double> a(ta ? k : m, ta ? m : k), b(tb ? n : k, tb ? k : n);
  a.fill_random(kSeedA);
  b.fill_random(kSeedB);
  Matrix<double> c(m, n);
  gemm_ref<double>(ta, tb, m, n, k, 1.0, a.data(), b.data(), c.data());
  return c;
}

enum class UserLayout { kCol1D, kRow1D, kGrid2D };

BlockLayout make_user_layout(UserLayout kind, i64 rows, i64 cols, int P) {
  switch (kind) {
    case UserLayout::kCol1D: return BlockLayout::col_1d(rows, cols, P);
    case UserLayout::kRow1D: return BlockLayout::row_1d(rows, cols, P);
    case UserLayout::kGrid2D: {
      int pr = 1;
      for (int d = 1; d * d <= P; ++d)
        if (P % d == 0) pr = d;
      return BlockLayout::grid_2d(rows, cols, pr, P / pr);
    }
  }
  CA_ASSERT(false);
  return BlockLayout();
}

struct Cfg {
  i64 m, n, k;
  int P;
  bool ta = false, tb = false;
  UserLayout layout = UserLayout::kCol1D;
  Ca3dmmOptions opt{};
};

void run_case(const Cfg& cfg) {
  const Matrix<double> c_ref =
      reference_product(cfg.m, cfg.n, cfg.k, cfg.ta, cfg.tb);
  const BlockLayout a_layout = make_user_layout(
      cfg.layout, cfg.ta ? cfg.k : cfg.m, cfg.ta ? cfg.m : cfg.k, cfg.P);
  const BlockLayout b_layout = make_user_layout(
      cfg.layout, cfg.tb ? cfg.n : cfg.k, cfg.tb ? cfg.k : cfg.n, cfg.P);
  const BlockLayout c_layout =
      make_user_layout(cfg.layout, cfg.m, cfg.n, cfg.P);
  const Ca3dmmPlan plan =
      Ca3dmmPlan::make(cfg.m, cfg.n, cfg.k, cfg.P, cfg.opt);

  Cluster cl(cfg.P, Machine::unit_test());
  cl.run([&](Comm& world) {
    std::vector<double> a, b;
    fill_local(a_layout, world.rank(), kSeedA, a);
    fill_local(b_layout, world.rank(), kSeedB, b);
    std::vector<double> c(
        static_cast<size_t>(c_layout.local_size(world.rank())), -1.0);
    ca3dmm_multiply<double>(world, plan, cfg.ta, cfg.tb, a_layout, a.data(),
                            b_layout, b.data(), c_layout, c.data());
    // Validate my slice of C against the reference.
    i64 pos = 0;
    for (const Rect& r : c_layout.rects_of(world.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j) {
          const double got = c[static_cast<size_t>(pos++)];
          ASSERT_NEAR(got, c_ref(i, j), 1e-11 * (cfg.k + 1))
              << "rank " << world.rank() << " C(" << i << "," << j << ")"
              << " grid " << plan.grid().pm << "x" << plan.grid().pn << "x"
              << plan.grid().pk;
        }
  });
}

TEST(Ca3dmm, PaperExample1Shape) { run_case({32, 64, 16, 8}); }
TEST(Ca3dmm, PaperExample2Shape) { run_case({32, 32, 64, 16}); }
TEST(Ca3dmm, PaperExample3IdleRank) { run_case({32, 32, 64, 17}); }

TEST(Ca3dmm, SingleProcess) { run_case({20, 18, 25, 1}); }

TEST(Ca3dmm, SquareShapes) {
  run_case({33, 33, 33, 4});
  run_case({48, 48, 48, 12});
}

TEST(Ca3dmm, LargeKShape) { run_case({12, 12, 400, 8}); }
TEST(Ca3dmm, LargeMShape) { run_case({400, 12, 12, 8}); }
TEST(Ca3dmm, FlatShape) { run_case({80, 80, 9, 8}); }

TEST(Ca3dmm, PrimeProcessCounts) {
  run_case({40, 40, 40, 5});
  run_case({40, 40, 40, 7});
  run_case({60, 50, 40, 11});
  run_case({36, 36, 100, 13});
}

TEST(Ca3dmm, UnevenBlockSizes) {
  // Dimensions that do not divide the grid: ceil/floor blocks everywhere.
  run_case({37, 29, 53, 8});
  run_case({19, 23, 101, 12});
  run_case({23, 40, 41, 9});
}

TEST(Ca3dmm, Transposes) {
  run_case({30, 40, 24, 8, true, false});
  run_case({30, 40, 24, 8, false, true});
  run_case({30, 40, 24, 8, true, true});
  run_case({24, 20, 150, 6, true, true});
}

TEST(Ca3dmm, UserLayouts) {
  run_case({40, 36, 32, 8, false, false, UserLayout::kRow1D});
  run_case({40, 36, 32, 8, false, false, UserLayout::kGrid2D});
  run_case({40, 36, 32, 7, true, false, UserLayout::kGrid2D});
}

TEST(Ca3dmm, DegenerateRank1Update) { run_case({24, 24, 1, 6}); }
TEST(Ca3dmm, DegenerateMatVec) { run_case({64, 1, 64, 8}); }
TEST(Ca3dmm, DegenerateVecMat) { run_case({1, 64, 64, 8}); }
TEST(Ca3dmm, DegenerateInnerProduct) { run_case({1, 1, 500, 8}); }
TEST(Ca3dmm, DegenerateOuterProduct) { run_case({32, 48, 1, 8}); }
TEST(Ca3dmm, TinyEverything) { run_case({2, 2, 2, 16}); }

TEST(Ca3dmm, MoreRanksThanWork) { run_case({3, 3, 3, 24}); }

TEST(Ca3dmm, SummaInnerEngine) {
  Cfg cfg{32, 32, 64, 16};
  cfg.opt.use_summa = true;
  run_case(cfg);
  Cfg cfg2{37, 29, 53, 8};
  cfg2.opt.use_summa = true;
  run_case(cfg2);
}

TEST(Ca3dmm, SummaOnReplicatedGrid) {
  // SUMMA inner engine combined with c > 1 replication.
  Cfg cfg{45, 30, 60, 8};
  cfg.opt.use_summa = true;
  cfg.opt.force_grid = ProcGrid{4, 2, 1};
  run_case(cfg);
}

TEST(Ca3dmm, MultiShiftAggregation) {
  // Thin k-parts: aggregation path (min_kblk large vs disabled).
  Cfg with{24, 24, 64, 16};
  with.opt.min_kblk = 64;  // aggregate everything
  run_case(with);
  Cfg without{24, 24, 64, 16};
  without.opt.min_kblk = 0;  // one GEMM per shift
  run_case(without);
}

TEST(Ca3dmm, ForcedGridOverride) {
  Cfg cfg{40, 40, 40, 16};
  cfg.opt.force_grid = ProcGrid{4, 2, 2};  // c=2, s=2, replicates B
  run_case(cfg);
  Cfg cfg2{40, 40, 40, 16};
  cfg2.opt.force_grid = ProcGrid{2, 4, 2};  // replicates A
  run_case(cfg2);
  Cfg cfg3{40, 40, 40, 16};
  cfg3.opt.force_grid = ProcGrid{1, 4, 4};  // s=1: degenerate Cannon
  run_case(cfg3);
}

TEST(Ca3dmm, ReplicationFactorGreaterThanTwo) {
  Cfg cfg{64, 8, 32, 16};
  cfg.opt.force_grid = ProcGrid{8, 2, 1};  // c=4, s=2, replicates B
  run_case(cfg);
  Cfg cfg2{8, 64, 32, 16};
  cfg2.opt.force_grid = ProcGrid{2, 8, 1};  // c=4, s=2, replicates A
  run_case(cfg2);
}

TEST(Ca3dmm, TunedCollectiveSchedules) {
  // Ca3dmmOptions::coll overrides the replication and reduction
  // communicators' schedules; tuned (auto) selection must leave the result
  // bit-correct on a grid exercising both collectives (c=2, pk=2).
  Cfg cfg{40, 40, 40, 16};
  cfg.opt.force_grid = ProcGrid{4, 2, 2};
  cfg.opt.coll = simmpi::CollectiveConfig::tuned();
  run_case(cfg);
  Cfg cfg2{8, 64, 64, 16};
  cfg2.opt.force_grid = ProcGrid{2, 8, 1};  // c=4, replicates A
  cfg2.opt.coll = simmpi::CollectiveConfig::tuned();
  run_case(cfg2);
}

TEST(Ca3dmm, RepeatedMultiplySamePlan) {
  // Reusing one plan for several multiplications (driver-algorithm pattern,
  // e.g. density-matrix purification).
  const Cfg cfg{30, 30, 30, 8};
  const BlockLayout lay = BlockLayout::col_1d(30, 30, 8);
  const Ca3dmmPlan plan = Ca3dmmPlan::make(30, 30, 30, 8, cfg.opt);
  const Matrix<double> c_ref = reference_product(30, 30, 30, false, false);

  Cluster cl(8, Machine::unit_test());
  cl.run([&](Comm& world) {
    std::vector<double> a, b;
    fill_local(lay, world.rank(), kSeedA, a);
    fill_local(lay, world.rank(), kSeedB, b);
    std::vector<double> c(static_cast<size_t>(lay.local_size(world.rank())));
    for (int rep = 0; rep < 3; ++rep) {
      ca3dmm_multiply<double>(world, plan, false, false, lay, a.data(), lay,
                              b.data(), lay, c.data());
    }
    i64 pos = 0;
    for (const Rect& r : lay.rects_of(world.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          ASSERT_NEAR(c[static_cast<size_t>(pos++)], c_ref(i, j), 1e-10);
  });
}

TEST(Ca3dmm, BlockCyclicUserLayout) {
  // ScaLAPACK-style block-cyclic input/output distributions.
  const i64 m = 36, n = 30, k = 42;
  const int P = 6;
  const Matrix<double> c_ref = reference_product(m, n, k, false, false);
  const BlockLayout a_lay = BlockLayout::block_cyclic(m, k, 2, 3, 4, 5);
  const BlockLayout b_lay = BlockLayout::block_cyclic(k, n, 3, 2, 5, 4);
  const BlockLayout c_lay = BlockLayout::block_cyclic(m, n, 2, 3, 3, 3);
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P);
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    std::vector<double> a, b;
    fill_local(a_lay, world.rank(), kSeedA, a);
    fill_local(b_lay, world.rank(), kSeedB, b);
    std::vector<double> c(
        static_cast<size_t>(c_lay.local_size(world.rank())));
    ca3dmm_multiply<double>(world, plan, false, false, a_lay, a.data(), b_lay,
                            b.data(), c_lay, c.data());
    i64 pos = 0;
    for (const Rect& r : c_lay.rects_of(world.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          ASSERT_NEAR(c[static_cast<size_t>(pos++)], c_ref(i, j), 1e-10);
  });
}

TEST(Ca3dmm, RejectsMismatchedLayouts) {
  const Ca3dmmPlan plan = Ca3dmmPlan::make(8, 8, 8, 2);
  Cluster cl(2, Machine::unit_test());
  EXPECT_THROW(cl.run([&](Comm& world) {
                 const BlockLayout good = BlockLayout::col_1d(8, 8, 2);
                 const BlockLayout bad = BlockLayout::col_1d(9, 8, 2);
                 std::vector<double> a(32), b(32), c(36);
                 ca3dmm_multiply<double>(world, plan, false, false, bad,
                                         a.data(), good, b.data(), good,
                                         c.data());
               }),
               Error);
}

}  // namespace
}  // namespace ca3dmm
