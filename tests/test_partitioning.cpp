// Native-distribution invariants and the paper's Fig. 2 partitioning
// examples: every native layout covers its matrix exactly once over all P
// ranks; Example 2's final C distribution matches the paper's prose.
#include <gtest/gtest.h>

#include "core/plan.hpp"

namespace ca3dmm {
namespace {

void check_plan_layouts(i64 m, i64 n, i64 k, int P,
                        const Ca3dmmOptions& opt = {}) {
  const Ca3dmmPlan p = Ca3dmmPlan::make(m, n, k, P, opt);
  const BlockLayout a = p.a_native(), b = p.b_native(), c = p.c_native();
  EXPECT_TRUE(a.covers_exactly())
      << "A native, grid " << p.grid().pm << "x" << p.grid().pn << "x"
      << p.grid().pk;
  EXPECT_TRUE(b.covers_exactly());
  EXPECT_TRUE(c.covers_exactly());
  EXPECT_EQ(a.nranks(), P);
  // Idle ranks own nothing.
  for (int r = p.active(); r < P; ++r) {
    EXPECT_TRUE(a.rects_of(r).empty());
    EXPECT_TRUE(b.rects_of(r).empty());
    EXPECT_TRUE(c.rects_of(r).empty());
  }
}

TEST(Partitioning, NativeLayoutsCoverExactly) {
  check_plan_layouts(32, 64, 16, 8);    // Example 1
  check_plan_layouts(32, 32, 64, 16);   // Example 2
  check_plan_layouts(32, 32, 64, 17);   // Example 3 (idle rank)
  check_plan_layouts(37, 29, 53, 12);   // uneven blocks
  check_plan_layouts(40, 40, 40, 7);    // prime P
  check_plan_layouts(64, 8, 32, 16, {});  // high replication
  check_plan_layouts(24, 24, 1, 6);     // rank-1 update
  check_plan_layouts(1, 1, 500, 8);     // inner product
  check_plan_layouts(3, 3, 3, 24);      // more ranks than work
}

TEST(Partitioning, ForcedGridsCoverExactly) {
  for (ProcGrid g : {ProcGrid{8, 2, 1}, ProcGrid{2, 8, 1}, ProcGrid{4, 2, 2},
                     ProcGrid{2, 4, 2}, ProcGrid{1, 4, 4}, ProcGrid{4, 1, 4}}) {
    Ca3dmmOptions opt;
    opt.force_grid = g;
    check_plan_layouts(40, 36, 44, g.active(), opt);
  }
}

TEST(Partitioning, Example2KTaskGroups) {
  // m=n=32, k=64, P=16, grid 2x2x4: "Processes P1..P4 form the first k-task
  // group and compute A(:,1:16) x B(1:16,:)" (paper Example 2).
  const Ca3dmmPlan p = Ca3dmmPlan::make(32, 32, 64, 16);
  ASSERT_EQ(p.grid(), (ProcGrid{2, 2, 4}));
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(p.coord(r).gk, 0);
    EXPECT_EQ(p.k_range(p.coord(r).gk), (Range{0, 16}));
  }
  for (int r = 4; r < 8; ++r) EXPECT_EQ(p.coord(r).gk, 1);
  EXPECT_EQ(p.k_range(1), (Range{16, 32}));
}

TEST(Partitioning, Example2FinalCDistribution) {
  // "P1, P5, P9, P13 have partial results of C(1:16,1:16). After
  // reduce-scatter, P1 has the final C(1:16,1:4), P5 has C(1:16,5:8), P9 has
  // C(1:16,9:12), P13 has C(1:16,13:16)." (0-based here.)
  const Ca3dmmPlan p = Ca3dmmPlan::make(32, 32, 64, 16);
  const BlockLayout c = p.c_native();
  // Ranks 0, 4, 8, 12 share C block (rows 0..16, cols 0..16).
  for (int g = 0; g < 4; ++g) {
    const int r = 4 * g;
    const RankCoord co = p.coord(r);
    EXPECT_EQ(co.I, 0);
    EXPECT_EQ(co.J, 0);
    EXPECT_EQ(co.gk, g);
    ASSERT_EQ(c.rects_of(r).size(), 1u);
    EXPECT_EQ(c.rects_of(r)[0], (Rect{{0, 16}, {4 * g, 4 * g + 4}}));
  }
}

TEST(Partitioning, Example3IdleRankOnlyRedistributes) {
  const Ca3dmmPlan p = Ca3dmmPlan::make(32, 32, 64, 17);
  EXPECT_EQ(p.active(), 16);
  EXPECT_FALSE(p.coord(16).active);
  EXPECT_TRUE(p.a_native().rects_of(16).empty());
}

TEST(Partitioning, Example1ReplicationStructure) {
  // Example 1: grid pm=2, pk=1, pn=4 -> c=2 Cannon groups, A replicated.
  const Ca3dmmPlan p = Ca3dmmPlan::make(32, 64, 16, 8);
  ASSERT_EQ(p.grid(), (ProcGrid{2, 4, 1}));
  EXPECT_TRUE(p.replicates_a());
  EXPECT_EQ(p.c(), 2);
  EXPECT_EQ(p.s(), 2);
  // Ranks 0 and 4 are the (i=0, j=0) processes of the two Cannon groups:
  // they need the same Cannon A block and share its two k-slices initially.
  const RankCoord c0 = p.coord(0), c4 = p.coord(4);
  EXPECT_EQ(c0.i, c4.i);
  EXPECT_EQ(c0.j, c4.j);
  EXPECT_EQ(c0.gc, 0);
  EXPECT_EQ(c4.gc, 1);
  const BlockLayout a = p.a_native();
  ASSERT_EQ(a.rects_of(0).size(), 1u);
  ASSERT_EQ(a.rects_of(4).size(), 1u);
  const Rect r0 = a.rects_of(0)[0], r4 = a.rects_of(4)[0];
  EXPECT_EQ(r0.r, r4.r);            // same m rows
  EXPECT_EQ(r0.c.hi, r4.c.lo);      // adjacent k slices of one Cannon block
  EXPECT_EQ(r0.c.size() + r4.c.size(), p.kpart(0, 0).size());
  // They cover different C columns (different n blocks).
  EXPECT_NE(c0.J, c4.J);
}

TEST(Partitioning, CoordRoundTrip) {
  const Ca3dmmPlan p = Ca3dmmPlan::make(48, 24, 96, 24);
  for (int r = 0; r < p.active(); ++r) {
    const RankCoord co = p.coord(r);
    EXPECT_EQ(p.rank_of(co.gk, co.gc, co.i, co.j), r);
  }
}

TEST(Partitioning, CommVolumeAgainstLowerBound) {
  // For a cubic problem on a perfect-cube process count the plan volume hits
  // the paper's lower bound (eq. 3/9) exactly.
  const Ca3dmmPlan p = Ca3dmmPlan::make(64, 64, 64, 8);
  ASSERT_EQ(p.grid(), (ProcGrid{2, 2, 2}));
  // Per-rank volume Q = 3 (mnk/P)^(2/3) (eq. 9) = the lower bound here.
  EXPECT_NEAR(p.comm_volume_per_rank(), p.volume_lower_bound(),
              p.volume_lower_bound() * 1e-9);
  // Non-cubic plans stay above the bound.
  const Ca3dmmPlan q = Ca3dmmPlan::make(64, 64, 4096, 8);
  EXPECT_GE(q.comm_volume_per_rank(), q.volume_lower_bound() * (1 - 1e-9));
}

}  // namespace
}  // namespace ca3dmm
