#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/table.hpp"

namespace ca3dmm {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"100", "x"});
  const std::string s = t.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Format, Mb) {
  EXPECT_EQ(format_mb(1024.0 * 1024.0 * 100), "100");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(2.456), "2.46");
  EXPECT_EQ(format_seconds(12.3), "12.3");
}

}  // namespace
}  // namespace ca3dmm
