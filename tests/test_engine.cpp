// Persistent PGEMM engine: plan-cache hit/miss/eviction behavior, dtype
// sharing, communicator reuse (fewer splits, strictly lower virtual time),
// buffer-pool reuse with unchanged peak-memory accounting (Table I
// semantics), batched submit, and failure semantics under fault injection.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/fault.hpp"

namespace ca3dmm {
namespace {

using engine::EngineConfig;
using engine::EngineStats;
using engine::PgemmEngine;
using engine::Request;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

constexpr std::uint64_t kSeedA = 31, kSeedB = 32;

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

template <typename T>
Request<T> make_request(i64 m, i64 n, i64 k, const BlockLayout& a_lay,
                        const T* a, const BlockLayout& b_lay, const T* b,
                        const BlockLayout& c_lay, T* c) {
  Request<T> r;
  r.m = m;
  r.n = n;
  r.k = k;
  r.a_layout = &a_lay;
  r.a = a;
  r.b_layout = &b_lay;
  r.b = b;
  r.c_layout = &c_lay;
  r.c = c;
  return r;
}

TEST(PlanCache, HitMissEvictionCounters) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  EngineStats st;
  cl.run([&](Comm& world) {
    EngineConfig cfg;
    cfg.plan_cache_capacity = 2;
    PgemmEngine eng(world, cfg);
    // Shapes A, B fill the cache; A again hits; C evicts B (LRU); B misses.
    eng.plan_for(24, 24, 24);  // A: miss
    eng.plan_for(32, 32, 32);  // B: miss
    eng.plan_for(24, 24, 24);  // A: hit
    eng.plan_for(40, 40, 40);  // C: miss, evicts B
    eng.plan_for(24, 24, 24);  // A: hit (still cached)
    eng.plan_for(32, 32, 32);  // B: miss again
    if (world.rank() == 0) st = eng.stats();
    EXPECT_EQ(eng.cached_plans(), 2u);
  });
  EXPECT_EQ(st.plan_misses, 4);
  EXPECT_EQ(st.plan_hits, 2);
  EXPECT_EQ(st.plan_evictions, 2);
}

TEST(PlanCache, DistinctOptionsAreDistinctEntries) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    PgemmEngine eng(world);
    Ca3dmmOptions summa;
    summa.use_summa = true;
    eng.plan_for(24, 24, 24);
    eng.plan_for(24, 24, 24, summa);
    EXPECT_EQ(eng.stats().plan_misses, 2);
    EXPECT_EQ(eng.stats().plan_hits, 0);
    EXPECT_EQ(eng.cached_plans(), 2u);
  });
}

TEST(PlanCache, FloatAndDoubleShareOnePlan) {
  // The cache key has no element type: a double request and a float request
  // of the same shape share the plan and its communicators.
  const i64 m = 24, n = 24, k = 24;
  const int P = 4;
  const BlockLayout lay = BlockLayout::col_1d(m, n, P);
  Cluster cl(P, Machine::unit_test());
  EngineStats st;
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> ad, bd;
    fill_local(lay, me, kSeedA, ad);
    fill_local(lay, me, kSeedB, bd);
    std::vector<float> af(ad.begin(), ad.end()), bf(bd.begin(), bd.end());
    std::vector<double> cd(static_cast<size_t>(lay.local_size(me)));
    std::vector<float> cf(static_cast<size_t>(lay.local_size(me)));

    PgemmEngine eng(world);
    eng.multiply(make_request<double>(m, n, k, lay, ad.data(), lay, bd.data(),
                                      lay, cd.data()));
    eng.multiply(make_request<float>(m, n, k, lay, af.data(), lay, bf.data(),
                                     lay, cf.data()));
    if (me == 0) st = eng.stats();
    // Both dtypes produced real results through the shared plan.
    for (size_t i = 0; i < cf.size(); ++i)
      EXPECT_NEAR(cf[i], static_cast<float>(cd[i]),
                  1e-3f * static_cast<float>(k));
  });
  EXPECT_EQ(st.plan_misses, 1);
  EXPECT_EQ(st.plan_hits, 1);
  EXPECT_EQ(st.requests, 2);
}

/// Runs `iters` same-shape multiplies one-shot, returns per-rank C copies,
/// plus per-rank (vtime, peak_bytes, comm_splits) via out-params.
struct RunResult {
  std::vector<std::vector<double>> c;  // per rank
  std::vector<double> vtime;
  std::vector<i64> peak_bytes;
  std::vector<i64> comm_splits;
};

RunResult run_oneshot(Cluster& cl, i64 m, i64 n, i64 k, int P, int iters,
                      const BlockLayout& lay) {
  RunResult res;
  res.c.resize(static_cast<size_t>(P));
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P);
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a, b;
    fill_local(lay, me, kSeedA, a);
    fill_local(lay, me, kSeedB, b);
    std::vector<double> c(static_cast<size_t>(lay.local_size(me)));
    for (int t = 0; t < iters; ++t)
      ca3dmm_multiply<double>(world, plan, false, false, lay, a.data(), lay,
                              b.data(), lay, c.data());
    res.c[static_cast<size_t>(me)] = c;
  });
  for (int r = 0; r < P; ++r) {
    res.vtime.push_back(cl.stats(r).vtime);
    res.peak_bytes.push_back(cl.stats(r).peak_bytes);
    res.comm_splits.push_back(cl.stats(r).comm_splits);
  }
  return res;
}

RunResult run_engine(Cluster& cl, i64 m, i64 n, i64 k, int P, int iters,
                     const BlockLayout& lay, EngineStats* st_out) {
  RunResult res;
  res.c.resize(static_cast<size_t>(P));
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a, b;
    fill_local(lay, me, kSeedA, a);
    fill_local(lay, me, kSeedB, b);
    std::vector<double> c(static_cast<size_t>(lay.local_size(me)));
    PgemmEngine eng(world);
    for (int t = 0; t < iters; ++t)
      eng.multiply(make_request<double>(m, n, k, lay, a.data(), lay, b.data(),
                                        lay, c.data()));
    if (me == 0 && st_out) *st_out = eng.stats();
    res.c[static_cast<size_t>(me)] = c;
  });
  for (int r = 0; r < P; ++r) {
    res.vtime.push_back(cl.stats(r).vtime);
    res.peak_bytes.push_back(cl.stats(r).peak_bytes);
    res.comm_splits.push_back(cl.stats(r).comm_splits);
  }
  return res;
}

TEST(EngineVsOneShot, BitIdenticalLowerVtimeSamePeakMemory) {
  // The ISSUE acceptance workload: >= 10 same-shape multiplies. The engine
  // path must (a) hit the plan cache >= 90% of the time, (b) finish in
  // strictly lower simulated time (split latency amortized), (c) report
  // exactly the one-shot per-rank peak memory (Table I semantics are not
  // disturbed by pooling), and (d) produce bit-identical C.
  const i64 m = 48, n = 48, k = 48;
  const int P = 8, iters = 10;
  const BlockLayout lay = BlockLayout::col_1d(m, n, P);
  Cluster cl(P, Machine::unit_test());

  const RunResult oneshot = run_oneshot(cl, m, n, k, P, iters, lay);
  EngineStats st;
  const RunResult eng = run_engine(cl, m, n, k, P, iters, lay, &st);

  // (a) cache behavior: 1 miss, iters-1 hits.
  EXPECT_EQ(st.plan_misses, 1);
  EXPECT_EQ(st.plan_hits, iters - 1);
  EXPECT_GE(st.plan_hit_rate(), 0.9);
  EXPECT_GT(st.splits_saved, 0);
  // Buffer pool actually recycled memory after the first iteration.
  EXPECT_GT(st.pool.hits, 0);

  for (int r = 0; r < P; ++r) {
    const size_t ur = static_cast<size_t>(r);
    // (b) strictly lower simulated time on every rank.
    EXPECT_LT(eng.vtime[ur], oneshot.vtime[ur]) << "rank " << r;
    // Communicator cache: one-shot splits iters times, engine once.
    EXPECT_EQ(oneshot.comm_splits[ur], iters * eng.comm_splits[ur])
        << "rank " << r;
    // (c) identical peak tracked memory.
    EXPECT_EQ(eng.peak_bytes[ur], oneshot.peak_bytes[ur]) << "rank " << r;
    // (d) bit-identical results.
    ASSERT_EQ(eng.c[ur].size(), oneshot.c[ur].size());
    for (size_t i = 0; i < eng.c[ur].size(); ++i)
      ASSERT_EQ(eng.c[ur][i], oneshot.c[ur][i])
          << "rank " << r << " element " << i;
  }
}

TEST(BatchedSubmit, GroupsShapesAndMatchesSequential) {
  // An interleaved shape stream (A B A B A B ...) against a capacity-1
  // cache: sequential multiply() thrashes (every call misses), submit()
  // groups the batch so each shape misses once. Results must be
  // bit-identical and the batched run strictly faster.
  const int P = 4;
  const i64 mA = 24, mB = 32;
  const int pairs = 4;
  const BlockLayout layA = BlockLayout::col_1d(mA, mA, P);
  const BlockLayout layB = BlockLayout::col_1d(mB, mB, P);
  Cluster cl(P, Machine::unit_test());

  struct Out {
    std::vector<double> ca, cb;
  };
  std::vector<Out> seq(static_cast<size_t>(P)), bat(static_cast<size_t>(P));
  EngineStats st_seq, st_bat;

  auto body = [&](Comm& world, bool batched, std::vector<Out>& out,
                  EngineStats& st) {
    const int me = world.rank();
    std::vector<double> aa, ba, ab, bb;
    fill_local(layA, me, kSeedA, aa);
    fill_local(layA, me, kSeedB, ba);
    fill_local(layB, me, kSeedA, ab);
    fill_local(layB, me, kSeedB, bb);
    std::vector<double> ca(static_cast<size_t>(layA.local_size(me)));
    std::vector<double> cb(static_cast<size_t>(layB.local_size(me)));
    EngineConfig cfg;
    cfg.plan_cache_capacity = 1;
    PgemmEngine eng(world, cfg);
    std::vector<Request<double>> reqs;
    for (int p = 0; p < pairs; ++p) {
      reqs.push_back(make_request<double>(mA, mA, mA, layA, aa.data(), layA,
                                          ba.data(), layA, ca.data()));
      reqs.push_back(make_request<double>(mB, mB, mB, layB, ab.data(), layB,
                                          bb.data(), layB, cb.data()));
    }
    if (batched) {
      eng.submit(reqs);
    } else {
      for (const Request<double>& r : reqs) eng.multiply(r);
    }
    if (me == 0) st = eng.stats();
    out[static_cast<size_t>(me)].ca = ca;
    out[static_cast<size_t>(me)].cb = cb;
  };

  cl.run([&](Comm& w) { body(w, false, seq, st_seq); });
  std::vector<double> vt_seq;
  for (int r = 0; r < P; ++r) vt_seq.push_back(cl.stats(r).vtime);
  cl.run([&](Comm& w) { body(w, true, bat, st_bat); });

  // Sequential with capacity 1 thrashes: every request misses.
  EXPECT_EQ(st_seq.plan_misses, 2 * pairs);
  EXPECT_EQ(st_seq.plan_hits, 0);
  // Batched: grouped execution — one miss per shape.
  EXPECT_EQ(st_bat.batches, 1);
  EXPECT_EQ(st_bat.plan_misses, 2);
  EXPECT_EQ(st_bat.plan_hits, 2 * pairs - 2);
  EXPECT_EQ(st_bat.requests, 2 * pairs);

  for (int r = 0; r < P; ++r) {
    const size_t ur = static_cast<size_t>(r);
    // Strictly lower total virtual time for the batched run.
    EXPECT_LT(cl.stats(r).vtime, vt_seq[ur]) << "rank " << r;
    // Bit-identical results.
    ASSERT_EQ(bat[ur].ca.size(), seq[ur].ca.size());
    for (size_t i = 0; i < bat[ur].ca.size(); ++i)
      ASSERT_EQ(bat[ur].ca[i], seq[ur].ca[i]) << "rank " << r;
    ASSERT_EQ(bat[ur].cb.size(), seq[ur].cb.size());
    for (size_t i = 0; i < bat[ur].cb.size(); ++i)
      ASSERT_EQ(bat[ur].cb[i], seq[ur].cb[i]) << "rank " << r;
  }
}

TEST(EngineCorrectness, MatchesReferenceAcrossShapesAndOptions) {
  // A mixed batch (shapes, transposes, SUMMA option) through one engine,
  // validated against the serial reference.
  const int P = 8;
  struct Shape {
    i64 m, n, k;
    bool ta, tb;
    bool summa;
  };
  const std::vector<Shape> shapes = {
      {32, 24, 40, false, false, false},
      {24, 32, 40, true, false, false},
      {40, 40, 16, false, true, true},
  };
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    const int me = world.rank();
    PgemmEngine eng(world);
    for (const Shape& s : shapes) {
      const BlockLayout a_lay = BlockLayout::col_1d(s.ta ? s.k : s.m,
                                                    s.ta ? s.m : s.k, P);
      const BlockLayout b_lay = BlockLayout::col_1d(s.tb ? s.n : s.k,
                                                    s.tb ? s.k : s.n, P);
      const BlockLayout c_lay = BlockLayout::col_1d(s.m, s.n, P);
      std::vector<double> a, b;
      fill_local(a_lay, me, kSeedA, a);
      fill_local(b_lay, me, kSeedB, b);
      std::vector<double> c(static_cast<size_t>(c_lay.local_size(me)));
      Request<double> req = make_request<double>(
          s.m, s.n, s.k, a_lay, a.data(), b_lay, b.data(), c_lay, c.data());
      req.trans_a = s.ta;
      req.trans_b = s.tb;
      req.opt.use_summa = s.summa;
      eng.multiply(req);

      Matrix<double> am(s.ta ? s.k : s.m, s.ta ? s.m : s.k);
      Matrix<double> bm(s.tb ? s.n : s.k, s.tb ? s.k : s.n);
      am.fill_random(kSeedA);
      bm.fill_random(kSeedB);
      Matrix<double> c_ref(s.m, s.n);
      gemm_ref<double>(s.ta, s.tb, s.m, s.n, s.k, 1.0, am.data(), bm.data(),
                       c_ref.data());
      i64 pos = 0;
      for (const Rect& r : c_lay.rects_of(me))
        for (i64 i = r.r.lo; i < r.r.hi; ++i)
          for (i64 j = r.c.lo; j < r.c.hi; ++j)
            ASSERT_NEAR(c[static_cast<size_t>(pos++)], c_ref(i, j),
                        1e-11 * (s.k + 1));
    }
  });
}

TEST(EngineFaults, KilledRankMidBatchRaisesOneAggregatedError) {
  // PR-1 semantics through the engine: a rank killed by fault injection in
  // the middle of a batch unwinds every peer cooperatively and Cluster::run
  // raises a single ca3dmm::Error naming the failed rank.
  const i64 m = 24;
  const int P = 4;
  const BlockLayout lay = BlockLayout::col_1d(m, m, P);
  Cluster cl(P, Machine::unit_test());
  simmpi::FaultPlan fp;
  fp.kills.push_back({.rank = 1, .at_op = 40});  // inside a later request
  cl.set_fault_plan(fp);
  try {
    cl.run([&](Comm& world) {
      const int me = world.rank();
      std::vector<double> a, b;
      fill_local(lay, me, kSeedA, a);
      fill_local(lay, me, kSeedB, b);
      std::vector<double> c(static_cast<size_t>(lay.local_size(me)));
      PgemmEngine eng(world);
      std::vector<Request<double>> reqs(
          10, make_request<double>(m, m, m, lay, a.data(), lay, b.data(), lay,
                                   c.data()));
      eng.submit(reqs);
    });
    FAIL() << "run() completed despite the injected kill";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1 failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fault injection"), std::string::npos) << msg;
  }
  cl.set_fault_plan(simmpi::FaultPlan{});
}

TEST(EngineConcurrency, RacingSubmittersSingleRankMixedShapes) {
  // The service satellite: multiple caller threads race into one engine.
  // On a single-rank world the interleaving order is free (collectives are
  // trivially single-member), so each racing thread may drive its own shape.
  // Every thread's result must match the serial reference, and the counters
  // must account for every request exactly once.
  const int kThreads = 4, kReps = 6;
  Cluster cl(1, Machine::unit_test());
  cl.run([&](Comm& world) {
    PgemmEngine eng(world);
    std::vector<std::thread> threads;
    std::vector<std::vector<double>> cs(kThreads);
    std::vector<BlockLayout> lays;
    for (int t = 0; t < kThreads; ++t)
      lays.push_back(BlockLayout::col_1d(16 + 8 * t, 16 + 8 * t, 1));
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const i64 m = 16 + 8 * t;
        const BlockLayout& lay = lays[static_cast<size_t>(t)];
        std::vector<double> a, b;
        fill_local(lay, 0, kSeedA, a);
        fill_local(lay, 0, kSeedB, b);
        std::vector<double> c(static_cast<size_t>(lay.local_size(0)));
        for (int i = 0; i < kReps; ++i)
          eng.multiply(make_request<double>(m, m, m, lay, a.data(), lay,
                                           b.data(), lay, c.data()));
        cs[static_cast<size_t>(t)] = std::move(c);
      });
    }
    for (std::thread& th : threads) th.join();

    const EngineStats st = eng.stats();
    EXPECT_EQ(st.requests, kThreads * kReps);
    EXPECT_EQ(st.plan_hits + st.plan_misses, kThreads * kReps);
    EXPECT_EQ(st.plan_misses, kThreads);  // one per distinct shape

    for (int t = 0; t < kThreads; ++t) {
      const i64 m = 16 + 8 * t;
      Matrix<double> am(m, m), bm(m, m);
      am.fill_random(kSeedA);
      bm.fill_random(kSeedB);
      Matrix<double> c_ref(m, m);
      gemm_ref<double>(false, false, m, m, m, 1.0, am.data(), bm.data(),
                       c_ref.data());
      const std::vector<double>& c = cs[static_cast<size_t>(t)];
      i64 pos = 0;
      for (const Rect& r : lays[static_cast<size_t>(t)].rects_of(0))
        for (i64 i = r.r.lo; i < r.r.hi; ++i)
          for (i64 j = r.c.lo; j < r.c.hi; ++j)
            ASSERT_NEAR(c[static_cast<size_t>(pos++)], c_ref(i, j),
                        1e-11 * static_cast<double>(m + 1))
                << "thread " << t;
    }
  });
}

TEST(EngineConcurrency, RacingSubmittersMultiRankIdenticalRequests) {
  // Racing callers on a multi-rank world: each rank spawns helper threads
  // that hammer the shared engine. Because the mutex may serialize the
  // helpers in a different order on each rank, all racing requests must be
  // content-identical (the documented contract) — then any cross-rank
  // pairing of collectives computes the same, correct product. Checks the
  // engine's counters saw every request and C matches the reference.
  const i64 m = 24;
  const int P = 4, kThreads = 3, kReps = 4;
  const BlockLayout lay = BlockLayout::col_1d(m, m, P);
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a, b;
    fill_local(lay, me, kSeedA, a);
    fill_local(lay, me, kSeedB, b);
    PgemmEngine eng(world);
    std::vector<std::vector<double>> cs(
        kThreads,
        std::vector<double>(static_cast<size_t>(lay.local_size(me))));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kReps; ++i)
          eng.multiply(make_request<double>(
              m, m, m, lay, a.data(), lay, b.data(), lay,
              cs[static_cast<size_t>(t)].data()));
      });
    }
    for (std::thread& th : threads) th.join();

    const EngineStats st = eng.stats();
    EXPECT_EQ(st.requests, kThreads * kReps);
    EXPECT_EQ(st.plan_misses, 1);
    EXPECT_EQ(st.plan_hits, kThreads * kReps - 1);

    Matrix<double> am(m, m), bm(m, m);
    am.fill_random(kSeedA);
    bm.fill_random(kSeedB);
    Matrix<double> c_ref(m, m);
    gemm_ref<double>(false, false, m, m, m, 1.0, am.data(), bm.data(),
                     c_ref.data());
    for (int t = 0; t < kThreads; ++t) {
      i64 pos = 0;
      const std::vector<double>& c = cs[static_cast<size_t>(t)];
      for (const Rect& r : lay.rects_of(me))
        for (i64 i = r.r.lo; i < r.r.hi; ++i)
          for (i64 j = r.c.lo; j < r.c.hi; ++j)
            ASSERT_NEAR(c[static_cast<size_t>(pos++)], c_ref(i, j),
                        1e-11 * static_cast<double>(m + 1))
                << "rank " << me << " thread " << t;
    }
  });
}

TEST(BufferPool, ExactSizeReuseAndTrim) {
  simmpi::BufferPool pool(1 << 20);
  void* p1 = pool.acquire(1024);
  EXPECT_EQ(pool.stats().misses, 1);
  pool.give_back(p1, 1024);
  EXPECT_EQ(pool.idle_bytes(), 1024);
  void* p2 = pool.acquire(1024);
  EXPECT_EQ(p2, p1);  // exact-size free list reuse
  EXPECT_EQ(pool.stats().hits, 1);
  // Different size misses.
  void* p3 = pool.acquire(2048);
  EXPECT_EQ(pool.stats().misses, 2);
  pool.give_back(p2, 1024);
  pool.give_back(p3, 2048);
  pool.trim();
  EXPECT_EQ(pool.idle_bytes(), 0);
}

TEST(BufferPool, IdleCapEvictsLargestFirst) {
  simmpi::BufferPool pool(4096);
  void* a = pool.acquire(1024);
  void* b = pool.acquire(3072);
  void* c = pool.acquire(2048);
  pool.give_back(a, 1024);
  pool.give_back(b, 3072);  // idle: 4096 (at cap)
  pool.give_back(c, 2048);  // must evict the 3072 allocation to fit 2048
  EXPECT_LE(pool.idle_bytes(), 4096);
  EXPECT_EQ(pool.idle_bytes(), 1024 + 2048);
  EXPECT_GT(pool.stats().trims, 0);
}

TEST(BufferPool, PooledTrackedBufferKeepsAccounting) {
  // Inside a PoolScope, TrackedBuffer draws from the pool but reports the
  // same bytes to the (absent) rank tracker and returns zeroed memory.
  simmpi::BufferPool pool(1 << 20);
  {
    simmpi::PoolScope scope(&pool);
    simmpi::TrackedBuffer<double> buf(128);
    for (i64 i = 0; i < 128; ++i) EXPECT_EQ(buf[i], 0.0);
    for (i64 i = 0; i < 128; ++i) buf[i] = 1.5;
  }  // released back to the pool
  EXPECT_EQ(pool.idle_bytes(), 128 * 8);
  {
    simmpi::PoolScope scope(&pool);
    simmpi::TrackedBuffer<double> buf(128);  // reuses the dirty allocation
    EXPECT_EQ(pool.stats().hits, 1);
    for (i64 i = 0; i < 128; ++i) EXPECT_EQ(buf[i], 0.0);  // re-zeroed
  }
}

}  // namespace
}  // namespace ca3dmm
