// Standalone tests of the inner 2-D engines (Cannon / SUMMA) on s x s
// grids: correct partial products for even and uneven k-parts, aggregation
// settings, and identical results from both engines.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/engine2d.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

// One k-task-group rank-kb update distributed over an s x s grid:
// process (i, j) holds pre-skew blocks A(row i, k-part j), B(k-part i, col j)
// and accumulates C(i, j).
struct GridCase {
  int s;
  i64 m, n, kb;     // group-level dimensions
  bool use_summa;
  i64 min_kblk;
};

class Engine2dCase : public ::testing::TestWithParam<GridCase> {};

TEST_P(Engine2dCase, MatchesReference) {
  const GridCase gc = GetParam();
  const int s = gc.s;
  const int P = s * s;

  // Global operands for this group.
  Matrix<double> a(gc.m, gc.kb), b(gc.kb, gc.n), c_ref(gc.m, gc.n);
  a.fill_random(101);
  b.fill_random(102);
  gemm_ref<double>(false, false, gc.m, gc.n, gc.kb, 1.0, a.data(), b.data(),
                   c_ref.data());

  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    // world rank q = j*s + i (column-major, like the plan).
    const int q = world.rank();
    const int i = q % s, j = q / s;
    Engine2dShape sh;
    sh.s = s;
    sh.i = i;
    sh.j = j;
    const Range mr = block_range(gc.m, s, i);
    const Range nr = block_range(gc.n, s, j);
    sh.mb = mr.size();
    sh.nb = nr.size();
    for (int t = 0; t < s; ++t)
      sh.kpart_sizes.push_back(block_size(gc.kb, s, t));

    // Pre-skew blocks.
    const Range akr = block_range(gc.kb, s, j);
    Matrix<double> a_blk(sh.mb, akr.size());
    copy_block(a, mr.lo, akr.lo, a_blk, 0, 0, sh.mb, akr.size());
    const Range bkr = block_range(gc.kb, s, i);
    Matrix<double> b_blk(bkr.size(), sh.nb);
    copy_block(b, bkr.lo, nr.lo, b_blk, 0, 0, bkr.size(), sh.nb);

    Matrix<double> c_blk(sh.mb, sh.nb);
    if (gc.use_summa)
      summa_2d<double>(world, sh, a_blk.data(), b_blk.data(), c_blk.data());
    else
      cannon_2d<double>(world, sh, a_blk.data(), b_blk.data(), c_blk.data(),
                        gc.min_kblk);

    for (i64 r = 0; r < sh.mb; ++r)
      for (i64 cc = 0; cc < sh.nb; ++cc)
        ASSERT_NEAR(c_blk(r, cc), c_ref(mr.lo + r, nr.lo + cc),
                    1e-11 * gc.kb)
            << "s=" << s << " rank (" << i << "," << j << ")";
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cannon, Engine2dCase,
    ::testing::Values(GridCase{1, 8, 9, 10, false, 192},
                      GridCase{2, 16, 16, 16, false, 192},
                      GridCase{2, 17, 13, 19, false, 192},
                      GridCase{3, 24, 24, 24, false, 192},
                      GridCase{3, 25, 23, 22, false, 192},
                      GridCase{4, 32, 32, 64, false, 192},
                      GridCase{4, 37, 29, 53, false, 192},
                      // aggregation disabled vs forced
                      GridCase{4, 32, 32, 64, false, 0},
                      GridCase{4, 32, 32, 64, false, 1000},
                      // k smaller than s: zero-size k-parts in flight
                      GridCase{4, 16, 16, 3, false, 192},
                      GridCase{3, 12, 12, 2, false, 0}));

INSTANTIATE_TEST_SUITE_P(
    Summa, Engine2dCase,
    ::testing::Values(GridCase{1, 8, 9, 10, true, 0},
                      GridCase{2, 16, 16, 16, true, 0},
                      GridCase{2, 17, 13, 19, true, 0},
                      GridCase{3, 25, 23, 22, true, 0},
                      GridCase{4, 37, 29, 53, true, 0},
                      GridCase{4, 16, 16, 3, true, 0}));

TEST(Engine2d, CannonAndSummaAgreeBitwiseOnEvenBlocks) {
  // With even blocks and the same panel order both engines sum the same
  // k-parts in the same sequence; results agree to roundoff.
  const int s = 2, P = 4;
  const i64 m = 8, n = 8, kb = 8;
  Matrix<double> a(m, kb), b(kb, n);
  a.fill_random(7);
  b.fill_random(8);
  std::vector<Matrix<double>> c_cannon(4), c_summa(4);

  for (bool use_summa : {false, true}) {
    Cluster cl(P, Machine::unit_test());
    cl.run([&](Comm& world) {
      const int q = world.rank();
      const int i = q % s, j = q / s;
      Engine2dShape sh;
      sh.s = s;
      sh.i = i;
      sh.j = j;
      sh.mb = 4;
      sh.nb = 4;
      sh.kpart_sizes = {4, 4};
      Matrix<double> a_blk(4, 4), b_blk(4, 4);
      copy_block(a, 4 * i, 4 * j, a_blk, 0, 0, 4, 4);
      copy_block(b, 4 * i, 4 * j, b_blk, 0, 0, 4, 4);
      Matrix<double>& out = use_summa ? c_summa[static_cast<size_t>(q)]
                                      : c_cannon[static_cast<size_t>(q)];
      out.resize(4, 4);
      if (use_summa)
        summa_2d<double>(world, sh, a_blk.data(), b_blk.data(), out.data());
      else
        cannon_2d<double>(world, sh, a_blk.data(), b_blk.data(), out.data(),
                          0);
    });
  }
  for (int q = 0; q < 4; ++q)
    EXPECT_LT(max_abs_diff(c_cannon[static_cast<size_t>(q)],
                           c_summa[static_cast<size_t>(q)]),
              1e-12);
}

TEST(Engine2d, CannonLatencyAdvantage) {
  // §III-E: on the same grid, the SUMMA engine's communication time is at
  // least Cannon's (broadcasts vs neighbor shifts).
  const int s = 4, P = 16;
  const i64 m = 64, n = 64, kb = 64;
  double t_cannon = 0, t_summa = 0;
  for (bool use_summa : {false, true}) {
    Cluster cl(P, Machine::unit_test());
    cl.run([&](Comm& world) {
      const int q = world.rank();
      const int i = q % s, j = q / s;
      Engine2dShape sh;
      sh.s = s;
      sh.i = i;
      sh.j = j;
      sh.mb = m / s;
      sh.nb = n / s;
      for (int t = 0; t < s; ++t) sh.kpart_sizes.push_back(kb / s);
      Matrix<double> a_blk(sh.mb, kb / s), b_blk(kb / s, sh.nb),
          c_blk(sh.mb, sh.nb);
      a_blk.fill_random(1);
      b_blk.fill_random(2);
      if (use_summa)
        summa_2d<double>(world, sh, a_blk.data(), b_blk.data(), c_blk.data());
      else
        cannon_2d<double>(world, sh, a_blk.data(), b_blk.data(), c_blk.data(),
                          0);
    });
    (use_summa ? t_summa : t_cannon) = cl.aggregate_stats().vtime;
  }
  EXPECT_GT(t_summa, t_cannon);
}

}  // namespace
}  // namespace ca3dmm
