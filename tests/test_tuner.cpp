// Auto-tuner and tuning DB: deterministic serialization round trips,
// version/corruption fallback, the search's never-slower-than-heuristic
// guarantee, engine consultation of a DB snapshot, tune-on-miss and
// stale-key feedback loops, concurrent readers vs a tuner writer, and the
// CostOracle invalidation the service layer relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "costmodel/admission.hpp"
#include "engine/engine.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/fault.hpp"
#include "tuner/db.hpp"
#include "tuner/tuner.hpp"

namespace ca3dmm {
namespace {

using engine::EngineConfig;
using engine::PgemmEngine;
using engine::Request;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;
using tuner::TunedConfig;
using tuner::Tuner;
using tuner::TunerOptions;
using tuner::TuningDb;
using tuner::TuningEntry;
using tuner::TuningKey;

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// Fills `db` with two hand-built deterministic entries.
void fill_sample(TuningDb& db) {
  TuningEntry e;
  e.key = tuner::make_key(96, 96, 96, 8, Machine::unit_test());
  e.rep_m = e.rep_n = e.rep_k = 96;
  e.config.grid = find_grid(96, 96, 96, 8);
  e.config.coll.allgather = simmpi::CollAlgo::kRecursive;
  e.config.overlap = false;
  e.predicted_s = 1.25e-4;
  e.validated_s = 1.25e-4;
  e.baseline_s = 1.5e-4;
  e.candidates_pruned = 40;
  e.candidates_validated = 5;
  db.put(e);
  TuningEntry f;
  f.key = tuner::make_key(48, 48, 768, 8, Machine::unit_test());
  f.rep_m = f.rep_n = 48;
  f.rep_k = 768;
  f.config.grid = find_grid(48, 48, 768, 8);
  f.predicted_s = 3.5e-4;
  f.stale = true;
  db.put(f);
}

// ---------------------------------------------------------------------------
// Shape buckets
// ---------------------------------------------------------------------------

TEST(ShapeBucket, ConsistentAndMonotone) {
  int prev = tuner::shape_bucket(1);
  for (i64 d = 1; d <= 5000; ++d) {
    const int q = tuner::shape_bucket(d);
    EXPECT_GE(q, prev) << "bucket index must be monotone in d, d=" << d;
    EXPECT_TRUE(tuner::bucket_matches(q, d)) << "d=" << d;
    EXPECT_FALSE(tuner::bucket_matches(q + 1, d)) << "d=" << d;
    EXPECT_FALSE(tuner::bucket_matches(q - 1, d)) << "d=" << d;
    prev = q;
  }
  // Half-octave spacing: doubling a dimension moves exactly two buckets.
  for (i64 d : {i64{1}, i64{3}, i64{48}, i64{192}, i64{1000}})
    EXPECT_EQ(tuner::shape_bucket(2 * d), tuner::shape_bucket(d) + 2);
}

TEST(ShapeBucket, KeysGroupNearbyShapesAndPinTopology) {
  const Machine mpi = Machine::phoenix_mpi();
  // 190 and 192 are the same class; 192 and 400 are not.
  EXPECT_EQ(tuner::make_key(190, 190, 190, 32, mpi),
            tuner::make_key(192, 192, 192, 32, mpi));
  EXPECT_NE(tuner::make_key(192, 192, 192, 32, mpi),
            tuner::make_key(400, 192, 192, 32, mpi));
  // Same shape, different rank count or topology: different key.
  EXPECT_NE(tuner::make_key(192, 192, 192, 32, mpi),
            tuner::make_key(192, 192, 192, 64, mpi));
  EXPECT_NE(tuner::make_key(192, 192, 192, 32, mpi),
            tuner::make_key(192, 192, 192, 32, Machine::phoenix_hybrid()));
  EXPECT_NE(tuner::make_key(192, 192, 192, 32, mpi),
            tuner::make_key(192, 192, 192, 32, Machine::phoenix_gpu()));
}

// ---------------------------------------------------------------------------
// Serialization / versioning / corruption
// ---------------------------------------------------------------------------

TEST(TuningDbPersistence, RoundTripIsByteIdentical) {
  TuningDb db;
  fill_sample(db);
  const std::string blob = db.serialize();

  TuningDb copy;
  ASSERT_TRUE(copy.deserialize(blob));
  EXPECT_EQ(copy.serialize(), blob);
  EXPECT_EQ(copy.entries(), db.entries());

  // serialize() is a pure function of contents: repeated calls and an extra
  // round trip stay byte-identical (the on-disk format is diff-stable).
  TuningDb copy2;
  ASSERT_TRUE(copy2.deserialize(copy.serialize()));
  EXPECT_EQ(copy2.serialize(), blob);
}

TEST(TuningDbPersistence, SaveLoadRoundTrip) {
  const std::string path = "test_tuner_roundtrip.db";
  TuningDb db;
  fill_sample(db);
  ASSERT_TRUE(db.save(path));

  TuningDb loaded(path);
  ASSERT_TRUE(loaded.load());
  EXPECT_EQ(loaded.serialize(), db.serialize());
  EXPECT_EQ(loaded.size(), db.size());
  std::remove(path.c_str());
}

TEST(TuningDbPersistence, MissingFileIsACleanColdStart) {
  TuningDb db("definitely_missing_tuning.db");
  EXPECT_FALSE(db.load());
  EXPECT_EQ(db.size(), 0u);
}

TEST(TuningDbPersistence, SchemaVersionMismatchIsIgnored) {
  TuningDb db;
  fill_sample(db);
  std::string blob = db.serialize();
  const std::string tag = "schema " + std::to_string(TuningDb::kSchemaVersion);
  const size_t at = blob.find(tag);
  ASSERT_NE(at, std::string::npos);
  blob.replace(at, tag.size(), "schema 999");

  TuningDb victim;
  fill_sample(victim);
  const std::string before = victim.serialize();
  EXPECT_FALSE(victim.deserialize(blob, "schema-mismatch test"));
  EXPECT_EQ(victim.serialize(), before) << "a rejected blob must not mutate";
}

TEST(TuningDbPersistence, CostModelVersionMismatchIsIgnored) {
  TuningDb db;
  fill_sample(db);
  std::string blob = db.serialize();
  const std::string tag =
      "costmodel " + std::to_string(costmodel::kCostModelVersion);
  const size_t at = blob.find(tag);
  ASSERT_NE(at, std::string::npos);
  blob.replace(at, tag.size(), "costmodel 999");

  TuningDb victim;
  EXPECT_FALSE(victim.deserialize(blob, "cost-model-mismatch test"));
  EXPECT_EQ(victim.size(), 0u);
}

TEST(TuningDbPersistence, TruncatedAndCorruptBlobsAreIgnored) {
  TuningDb db;
  fill_sample(db);
  const std::string blob = db.serialize();

  TuningDb victim;
  fill_sample(victim);
  const std::string before = victim.serialize();
  // Truncations at every prefix length must be rejected without mutation.
  for (size_t len : {size_t{0}, size_t{5}, blob.size() / 2, blob.size() - 3}) {
    EXPECT_FALSE(victim.deserialize(blob.substr(0, len)));
    EXPECT_EQ(victim.serialize(), before) << "truncated at " << len;
  }
  // Garbage body under a valid-looking start.
  EXPECT_FALSE(victim.deserialize("ca3dmm-tuning-db schema 1 costmodel 1\n"
                                  "entries 1\nnot an entry line\n"));
  EXPECT_EQ(victim.serialize(), before);
  EXPECT_FALSE(victim.deserialize("complete nonsense"));
  EXPECT_EQ(victim.serialize(), before);
}

// ---------------------------------------------------------------------------
// DB semantics: staleness, pending queue, listeners
// ---------------------------------------------------------------------------

TEST(TuningDbSemantics, ObserveExecutedMarksStaleOnDrift) {
  TuningDb db;
  fill_sample(db);
  const TuningKey key = tuner::make_key(96, 96, 96, 8, Machine::unit_test());
  const double validated = db.find(key)->validated_s;

  // Inside tolerance: stays fresh.
  EXPECT_FALSE(db.observe_executed(key, validated * (1 + 1e-9), 1e-6));
  EXPECT_FALSE(db.find(key)->stale);
  // Outside tolerance: goes stale exactly once.
  EXPECT_TRUE(db.observe_executed(key, validated * 1.5, 1e-6));
  EXPECT_TRUE(db.find(key)->stale);
  EXPECT_FALSE(db.observe_executed(key, validated * 1.5, 1e-6));
}

TEST(TuningDbSemantics, PendingQueueDeduplicatesByKey) {
  TuningDb db;
  const Machine mach = Machine::unit_test();
  db.request_tune(96, 96, 96, 8, mach);
  db.request_tune(95, 95, 95, 8, mach);  // same half-octave bucket
  db.request_tune(48, 48, 768, 8, mach);
  EXPECT_EQ(db.pending(), 2u);
  EXPECT_EQ(db.take_pending().size(), 2u);
  EXPECT_EQ(db.pending(), 0u);
}

TEST(TuningDbSemantics, ListenersFireOnChange) {
  TuningDb db;
  std::vector<TuningKey> seen;
  const int id = db.add_listener(
      [&](const TuningEntry& e) { seen.push_back(e.key); });

  TuningEntry e;
  e.key = tuner::make_key(96, 96, 96, 8, Machine::unit_test());
  db.put(e);
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_TRUE(db.mark_stale(e.key));
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_FALSE(db.mark_stale(e.key)) << "already stale: no change, no event";
  EXPECT_EQ(seen.size(), 2u);

  db.remove_listener(id);
  db.put(e);
  EXPECT_EQ(seen.size(), 2u);
}

// ---------------------------------------------------------------------------
// Grid candidates and the overlap knob (the tuner's search axes)
// ---------------------------------------------------------------------------

TEST(GridCandidates, FirstIsSolverChoiceAllDistinctAndFeasible) {
  for (const auto& [m, n, k] : std::vector<std::array<i64, 3>>{
           {192, 192, 192}, {48, 48, 3072}, {384, 384, 24}}) {
    const auto cands = find_grid_candidates(m, n, k, 32, 6);
    ASSERT_FALSE(cands.empty());
    EXPECT_LE(cands.size(), 6u);
    const ProcGrid solver = find_grid(m, n, k, 32);
    EXPECT_EQ(cands[0].pm, solver.pm);
    EXPECT_EQ(cands[0].pn, solver.pn);
    EXPECT_EQ(cands[0].pk, solver.pk);
    for (size_t i = 0; i < cands.size(); ++i) {
      EXPECT_LE(cands[i].active(), 32);
      // Cannon compatibility: s divides the larger of pm, pn.
      const int s = cands[i].s(), big = std::max(cands[i].pm, cands[i].pn);
      EXPECT_EQ(big % s, 0) << "candidate " << i;
      for (size_t j = i + 1; j < cands.size(); ++j)
        EXPECT_FALSE(cands[i].pm == cands[j].pm &&
                     cands[i].pn == cands[j].pn && cands[i].pk == cands[j].pk)
            << "duplicate candidate";
    }
  }
}

TEST(OverlapKnob, DisablingOverlapNeverPredictsFasterAndExecutesClean) {
  costmodel::Workload w{192, 192, 192};
  const Machine mach = Machine::unit_test();
  w.overlap = true;
  const auto on = costmodel::predict(costmodel::Algo::kCa3dmm, w, 16, mach);
  w.overlap = false;
  const auto off = costmodel::predict(costmodel::Algo::kCa3dmm, w, 16, mach);
  EXPECT_GE(off.t_total, on.t_total);

  // The executed engine honors the flag and still matches the model.
  Cluster cl(16, mach);
  cl.set_trace(true);
  const auto rep = costmodel::check_drift(costmodel::Algo::kCa3dmm, w, cl);
  EXPECT_TRUE(rep.ok()) << rep.table();
}

// ---------------------------------------------------------------------------
// The tuner search itself
// ---------------------------------------------------------------------------

TEST(TunerSearch, WinnerNeverSlowerThanHeuristicAndDriftGated) {
  Tuner tuner(Machine::unit_test());
  const tuner::TuneResult r = tuner.tune(96, 96, 96, 8);

  ASSERT_GT(r.candidates_total, 0);
  EXPECT_EQ(r.candidates_pruned + static_cast<i64>(r.finalists.size()) - 1,
            r.candidates_total);
  EXPECT_GT(r.candidates_validated, 0);
  EXPECT_LE(r.entry.validated_s, r.heuristic_s);
  EXPECT_GT(r.entry.validated_s, 0);
  EXPECT_EQ(r.entry.baseline_s, r.heuristic_s);
  // The winner must itself have survived the drift gate.
  bool found = false;
  for (const auto& f : r.finalists)
    if (f.config == r.entry.config) {
      EXPECT_TRUE(f.validated && f.drift_ok);
      found = true;
    }
  EXPECT_TRUE(found);

  // Determinism: the search is a pure function of its inputs.
  const tuner::TuneResult r2 = tuner.tune(96, 96, 96, 8);
  EXPECT_TRUE(r2.entry == r.entry);
}

TEST(TunerSearch, PredictOnlyModeSkipsValidation) {
  TunerOptions opt;
  opt.validate = false;
  Tuner tuner(Machine::unit_test(), opt);
  const tuner::TuneResult r = tuner.tune(96, 96, 96, 8);
  EXPECT_EQ(r.entry.validated_s, 0);
  EXPECT_GT(r.entry.predicted_s, 0);
  EXPECT_LE(r.entry.predicted_s, r.heuristic_s);
}

TEST(TunerSearch, DrainProcessesPendingAndSkipsFreshKeys) {
  TunerOptions opt;
  opt.validate = false;
  const Machine mach = Machine::unit_test();
  Tuner tuner(mach, opt);
  TuningDb db;
  db.request_tune(96, 96, 96, 8, mach);
  db.request_tune(48, 48, 768, 8, mach);
  EXPECT_EQ(tuner.drain(db), 2);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.pending(), 0u);

  // Re-requesting a key that is already fresh is a no-op for drain.
  db.request_tune(96, 96, 96, 8, mach);
  EXPECT_EQ(tuner.drain(db), 0);

  // A stale key re-tunes.
  ASSERT_TRUE(db.mark_stale(tuner::make_key(96, 96, 96, 8, mach)));
  db.request_tune(96, 96, 96, 8, mach);
  EXPECT_EQ(tuner.drain(db), 1);
  EXPECT_FALSE(db.find(tuner::make_key(96, 96, 96, 8, mach))->stale);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(EngineTuning, ConsultsDbOnMissAndRespectsUserOverrides) {
  const Machine mach = Machine::unit_test();
  const int P = 8;
  // Hand the engine a DB whose entry prescribes a deliberately non-default
  // grid so adoption is observable.
  TuningDb db;
  const auto cands = find_grid_candidates(96, 96, 96, P, 2);
  ASSERT_GE(cands.size(), 2u);
  TuningEntry e;
  e.key = tuner::make_key(96, 96, 96, P, mach);
  e.rep_m = e.rep_n = e.rep_k = 96;
  e.config.grid = cands[1];
  e.config.overlap = false;
  e.validated_s = 1e-4;
  db.put(e);

  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    EngineConfig cfg;
    cfg.tuning_db = &db;
    PgemmEngine eng(world, cfg);

    // tuned_for sees the snapshot; the planned grid is the tuned one.
    const auto tuned = eng.tuned_for(96, 96, 96);
    ASSERT_TRUE(tuned.has_value());
    EXPECT_TRUE(*tuned == e.config);
    const Ca3dmmPlan& plan = eng.plan_for(96, 96, 96);
    EXPECT_EQ(plan.grid().pm, cands[1].pm);
    EXPECT_EQ(plan.grid().pn, cands[1].pn);
    EXPECT_EQ(plan.grid().pk, cands[1].pk);
    EXPECT_EQ(eng.stats().tuned_plans, 1);

    // An explicit user force_grid wins over the DB...
    Ca3dmmOptions forced;
    forced.force_grid = cands[0];
    EXPECT_FALSE(eng.tuned_for(96, 96, 96, forced).has_value());
    const Ca3dmmPlan& fplan = eng.plan_for(96, 96, 96, forced);
    EXPECT_EQ(fplan.grid().pm, cands[0].pm);
    // ...as does an explicit collective schedule.
    Ca3dmmOptions mycoll;
    mycoll.coll = simmpi::CollectiveConfig{};
    EXPECT_FALSE(eng.tuned_for(96, 96, 96, mycoll).has_value());
    EXPECT_EQ(eng.stats().tuned_plans, 1);

    // A shape with no entry falls back to the heuristic silently.
    EXPECT_FALSE(eng.tuned_for(64, 64, 64).has_value());
    const Ca3dmmPlan& hplan = eng.plan_for(64, 64, 64);
    const ProcGrid solver = find_grid(64, 64, 64, P);
    EXPECT_EQ(hplan.grid().pm, solver.pm);
    EXPECT_EQ(eng.stats().tuned_plans, 1);
  });
}

TEST(EngineTuning, NoDbAndEmptyDbFallBackToHeuristic) {
  const Machine mach = Machine::unit_test();
  const int P = 4;
  TuningDb empty;
  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    PgemmEngine plain(world);
    EXPECT_FALSE(plain.tuned_for(24, 24, 24).has_value());
    EngineConfig cfg;
    cfg.tuning_db = &empty;
    PgemmEngine eng(world, cfg);
    EXPECT_FALSE(eng.tuned_for(24, 24, 24).has_value());
    const Ca3dmmPlan& plan = eng.plan_for(24, 24, 24);
    const ProcGrid solver = find_grid(24, 24, 24, P);
    EXPECT_EQ(plan.grid().pm, solver.pm);
    EXPECT_EQ(eng.stats().tuned_plans, 0);
  });
}

TEST(EngineTuning, TuneOnMissEnqueuesAndRefreshAdoptsDrainedResult) {
  const Machine mach = Machine::unit_test();
  const int P = 8;
  TuningDb db;
  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    EngineConfig cfg;
    cfg.tuning_db = &db;
    cfg.tune_on_miss = true;
    PgemmEngine eng(world, cfg);
    eng.plan_for(96, 96, 96);  // miss: heuristic plan + pending tune request
    EXPECT_FALSE(eng.tuned_for(96, 96, 96).has_value());
    world.barrier();
    if (world.rank() == 0) {
      EXPECT_EQ(db.pending(), 1u);
    }
    world.barrier();

    // A host-side tuner would drain concurrently; here rank 0 stands in
    // (the engines only read their snapshots until refresh_tuning).
    if (world.rank() == 0) {
      TunerOptions topt;
      topt.validate = false;
      EXPECT_EQ(Tuner(mach, topt).drain(db), 1);
    }
    world.barrier();

    const auto changed = eng.refresh_tuning();
    EXPECT_EQ(changed.size(), 1u);
    EXPECT_TRUE(eng.tuned_for(96, 96, 96).has_value());
  });
}

TEST(EngineTuning, InjectedDriftMarksKeyStaleOnEveryRank) {
  const Machine mach = Machine::unit_test();
  const int P = 4;
  const i64 m = 48, n = 48, k = 48;
  // Warm a real validated entry first (no faults).
  TuningDb db;
  Tuner tuner(mach);
  tuner.tune_into(db, m, n, k, P);
  const TuningKey key = tuner::make_key(m, n, k, P, mach);
  ASSERT_TRUE(db.find(key).has_value());
  ASSERT_FALSE(db.find(key)->stale);

  const BlockLayout lay_a = BlockLayout::col_1d(m, k, P);
  const BlockLayout lay_b = BlockLayout::col_1d(k, n, P);
  const BlockLayout lay_c = BlockLayout::col_1d(m, n, P);

  // Replay the tuned multiply on a cluster where node 0 straggles 3x: the
  // executed vtime leaves the validated envelope, so every rank must mark
  // the key stale, drop the cached plan, and enqueue a re-tune.
  Cluster cl(P, mach);
  simmpi::FaultPlan faults;
  faults.stragglers.push_back({.node = 0, .factor = 3.0});
  cl.set_fault_plan(faults);
  engine::EngineStats st;
  cl.run([&](Comm& world) {
    EngineConfig cfg;
    cfg.tuning_db = &db;
    cfg.tune_on_miss = true;
    cfg.tuned_stale_rtol = 0.05;
    PgemmEngine eng(world, cfg);
    std::vector<double> a, b;
    fill_local(lay_a, world.rank(), 31, a);
    fill_local(lay_b, world.rank(), 32, b);
    std::vector<double> c(
        static_cast<size_t>(lay_c.local_size(world.rank())));
    Request<double> req;
    req.m = m;
    req.n = n;
    req.k = k;
    req.a_layout = &lay_a;
    req.a = a.data();
    req.b_layout = &lay_b;
    req.b = b.data();
    req.c_layout = &lay_c;
    req.c = c.data();
    eng.multiply(req);
    // The tuned snapshot entry is disabled on every rank.
    EXPECT_FALSE(eng.tuned_for(m, n, k).has_value());
    if (world.rank() == 0) st = eng.stats();
  });
  EXPECT_EQ(st.tuned_plans, 1);
  EXPECT_GE(st.plan_invalidations, 1);
  EXPECT_TRUE(db.find(key)->stale);
  EXPECT_GE(db.pending(), 1u);

  // The feedback loop closes: drain re-tunes the stale key fresh.
  EXPECT_GE(tuner.drain(db), 1);
  EXPECT_FALSE(db.find(key)->stale);
}

TEST(EngineTuning, HealthyTunedRunStaysFresh) {
  const Machine mach = Machine::unit_test();
  const int P = 4;
  const i64 m = 48, n = 48, k = 48;
  TuningDb db;
  Tuner(mach).tune_into(db, m, n, k, P);
  const TuningKey key = tuner::make_key(m, n, k, P, mach);

  const BlockLayout lay_a = BlockLayout::col_1d(m, k, P);
  const BlockLayout lay_b = BlockLayout::col_1d(k, n, P);
  const BlockLayout lay_c = BlockLayout::col_1d(m, n, P);
  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    EngineConfig cfg;
    cfg.tuning_db = &db;
    // Generous threshold: the engine path differs from the tuner's traced
    // validation run only by constant plan/communicator setup.
    cfg.tuned_stale_rtol = 0.5;
    PgemmEngine eng(world, cfg);
    std::vector<double> a, b;
    fill_local(lay_a, world.rank(), 31, a);
    fill_local(lay_b, world.rank(), 32, b);
    std::vector<double> c(
        static_cast<size_t>(lay_c.local_size(world.rank())));
    Request<double> req;
    req.m = m;
    req.n = n;
    req.k = k;
    req.a_layout = &lay_a;
    req.a = a.data();
    req.b_layout = &lay_b;
    req.b = b.data();
    req.c_layout = &lay_c;
    req.c = c.data();
    eng.multiply(req);
    EXPECT_TRUE(eng.tuned_for(m, n, k).has_value());
  });
  EXPECT_FALSE(db.find(key)->stale);
}

TEST(EngineTuning, ConcurrentRefreshReadersVsTunerWriter) {
  // TSan target: engines refresh their snapshots (rank 0 serializes the DB,
  // broadcasts, all ranks parse) while a host thread keeps writing fresh
  // entries through the Tuner. The engines must always see an internally
  // consistent snapshot; the DB mutex plus the collective broadcast make
  // every rank's view identical at each refresh.
  const Machine mach = Machine::unit_test();
  const int P = 4;
  TuningDb db;
  std::thread writer([&] {
    TunerOptions topt;
    topt.validate = false;
    Tuner tuner(mach, topt);
    for (int round = 0; round < 20; ++round)
      for (const i64 d : {i64{24}, i64{48}, i64{96}, i64{192}})
        tuner.tune_into(db, d, d, d, P);
  });
  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    EngineConfig cfg;
    cfg.tuning_db = &db;
    PgemmEngine eng(world, cfg);
    size_t last = 0;
    for (int i = 0; i < 50; ++i) {
      eng.refresh_tuning();
      size_t view = 0;
      for (const i64 d : {i64{24}, i64{48}, i64{96}, i64{192}})
        view += eng.tuned_for(d, d, d).has_value() ? 1u : 0u;
      // Snapshots only ever grow here (no staleness in play).
      EXPECT_GE(view, last);
      last = view;
    }
  });
  writer.join();
  EXPECT_EQ(db.size(), 4u);
}

// ---------------------------------------------------------------------------
// CostOracle invalidation (the service's side of the feedback loop)
// ---------------------------------------------------------------------------

TEST(OracleInvalidation, ShapeAndPredicateGranularity) {
  costmodel::CostOracle oracle(8, Machine::unit_test());
  costmodel::Workload w{96, 96, 96};
  oracle.quote(costmodel::Algo::kCa3dmm, w);
  costmodel::Workload w2{48, 48, 768};
  oracle.quote(costmodel::Algo::kCa3dmm, w2);
  EXPECT_EQ(oracle.evaluations(), 2);

  // Exact-shape invalidation touches only that shape.
  EXPECT_EQ(oracle.invalidate_shape(96, 96, 96), 1);
  EXPECT_EQ(oracle.invalidate_shape(96, 96, 96), 0);
  oracle.quote(costmodel::Algo::kCa3dmm, w);
  EXPECT_EQ(oracle.evaluations(), 3) << "invalidated quote re-prices";
  oracle.quote(costmodel::Algo::kCa3dmm, w2);
  EXPECT_EQ(oracle.evaluations(), 3) << "untouched quote stays memoized";

  // Key-granular predicate: every shape in the changed key's bucket goes.
  const TuningKey key = tuner::make_key(96, 96, 96, 8, Machine::unit_test());
  costmodel::Workload w3{95, 95, 95};  // same bucket as 96^3
  oracle.quote(costmodel::Algo::kCa3dmm, w3);
  const i64 erased = oracle.invalidate_if([&](i64 m, i64 n, i64 k) {
    return tuner::make_key(m, n, k, 8, Machine::unit_test()) == key;
  });
  EXPECT_EQ(erased, 2);

  // A tuned config is a distinct memoization key: the same shape priced
  // under different grids/schedules yields separate entries (the service
  // re-prices after refresh_tuning instead of reusing the heuristic quote).
  costmodel::Workload tuned = w;
  tuned.force_grid = find_grid_candidates(96, 96, 96, 8, 2).back();
  tuned.overlap = false;
  oracle.quote(costmodel::Algo::kCa3dmm, w);
  const i64 before_tuned = oracle.evaluations();
  oracle.quote(costmodel::Algo::kCa3dmm, tuned);
  EXPECT_EQ(oracle.evaluations(), before_tuned + 1)
      << "a tuned config must not reuse the heuristic quote";
  oracle.quote(costmodel::Algo::kCa3dmm, tuned);
  EXPECT_EQ(oracle.evaluations(), before_tuned + 1);
}

}  // namespace
}  // namespace ca3dmm
