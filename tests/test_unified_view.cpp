// The paper's central claim (§III-B): the unified view "can fall back to
// optimal 2D or 1D algorithms if necessary. Even for degenerate problems —
// rank-1 update (k=1), matrix-vector product (n=1 or m=1), and vector inner
// product (m=n=1) — the obtained algorithms are the same as the optimal
// algorithms."
//
// These tests check that operationally: for each degenerate shape, the
// communication phases CA3DMM actually executes are exactly the ones the
// optimal specialized algorithm would execute (and nothing else).
#include <gtest/gtest.h>

#include <vector>

#include "core/ca3dmm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;
using simmpi::Phase;
using simmpi::RankStats;

/// Runs CA3DMM on native layouts and returns aggregate phase stats.
RankStats run_phases(i64 m, i64 n, i64 k, int P) {
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P);
  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a(static_cast<size_t>(a_nat.local_size(me)), 1.0);
    std::vector<double> b(static_cast<size_t>(b_nat.local_size(me)), 1.0);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
  });
  return cl.aggregate_stats();
}

TEST(UnifiedView, InnerProductReducesToAllReduceStyle) {
  // m=n=1: optimal = partition k, local dot, reduce. CA3DMM must spend time
  // only on reduce (+ compute); no 2-D engine shifts, no replication.
  const Ca3dmmPlan plan = Ca3dmmPlan::make(1, 1, 4096, 8);
  EXPECT_EQ(plan.grid(), (ProcGrid{1, 1, 8}));
  const RankStats s = run_phases(1, 1, 4096, 8);
  EXPECT_DOUBLE_EQ(s.phase(Phase::kShift), 0.0);
  EXPECT_DOUBLE_EQ(s.phase(Phase::kReplicate), 0.0);
  EXPECT_GT(s.phase(Phase::kReduce), 0.0);
  EXPECT_GT(s.phase(Phase::kCompute), 0.0);
}

TEST(UnifiedView, Rank1UpdateHasNoReduction) {
  // k=1: optimal = outer product, no k parallelism, no reduction.
  const Ca3dmmPlan plan = Ca3dmmPlan::make(512, 512, 1, 16);
  EXPECT_EQ(plan.grid().pk, 1);
  const RankStats s = run_phases(512, 512, 1, 16);
  EXPECT_DOUBLE_EQ(s.phase(Phase::kReduce), 0.0);
}

TEST(UnifiedView, MatVecReplicatesOnlyTheVector) {
  // n=1: optimal 1-D algorithm partitions m (and possibly k) and replicates
  // only vector-sized data. The replicated operand must be B (the vector).
  const Ca3dmmPlan plan = Ca3dmmPlan::make(8192, 1, 8192, 16);
  EXPECT_EQ(plan.grid().pn, 1);
  if (plan.c() > 1) {
    EXPECT_FALSE(plan.replicates_a());  // replicating A would move matrices
  }
  // The replicated bytes are vector-scale: k/pk elements per process group,
  // not m*k-scale.
  const RankStats s = run_phases(8192, 1, 8192, 16);
  EXPECT_GT(s.phase(Phase::kCompute), 0.0);
}

TEST(UnifiedView, SquareFallsBackTo2DCannonWhenMemoryTight) {
  // pk = 1 grids are plain 2-D Cannon: no reduce phase, shifts present.
  Ca3dmmOptions opt;
  opt.force_grid = ProcGrid{4, 4, 1};
  const Ca3dmmPlan plan = Ca3dmmPlan::make(64, 64, 64, 16, opt);
  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  Cluster cl(16, Machine::unit_test());
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a(static_cast<size_t>(a_nat.local_size(me)), 1.0);
    std::vector<double> b(static_cast<size_t>(b_nat.local_size(me)), 1.0);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
  });
  const RankStats s = cl.aggregate_stats();
  EXPECT_DOUBLE_EQ(s.phase(Phase::kReduce), 0.0);
  EXPECT_GT(s.phase(Phase::kShift), 0.0);  // Cannon skew + shifts
  EXPECT_DOUBLE_EQ(s.phase(Phase::kReplicate), 0.0);  // c == 1
}

TEST(UnifiedView, Example1FallsBackTo2DWithReplication) {
  // Paper Example 1: pk=1 (pure 2-D) but c=2 — replication without
  // reduction.
  const Ca3dmmPlan plan = Ca3dmmPlan::make(32, 64, 16, 8);
  ASSERT_EQ(plan.grid(), (ProcGrid{2, 4, 1}));
  const RankStats s = run_phases(32, 64, 16, 8);
  EXPECT_GT(s.phase(Phase::kReplicate), 0.0);
  EXPECT_DOUBLE_EQ(s.phase(Phase::kReduce), 0.0);
}

TEST(UnifiedView, FlopsBalancedAcrossActiveRanks) {
  // §III-A: "to balance the flops across processes, the total volume of the
  // subdomains on each process should be mnk/P".
  const Ca3dmmPlan plan = Ca3dmmPlan::make(48, 48, 96, 12);
  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  Cluster cl(12, Machine::unit_test());
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a(static_cast<size_t>(a_nat.local_size(me)), 1.0);
    std::vector<double> b(static_cast<size_t>(b_nat.local_size(me)), 1.0);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
  });
  const double ideal = 2.0 * 48 * 48 * 96 / plan.active();
  for (int r = 0; r < plan.active(); ++r) {
    EXPECT_NEAR(cl.stats(r).flops, ideal, ideal * 0.15) << "rank " << r;
  }
}

}  // namespace
}  // namespace ca3dmm
