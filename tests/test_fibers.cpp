// Fiber scheduler backend: the determinism contract (results, per-rank
// virtual times, per-phase stats, and trace critical paths bit-identical to
// the thread backend), deadlock watchdog and fault injection on fibers,
// the zero-copy posted-receive fast path, engine helper threads racing into
// a fiber-hosted rank, and a many-rank smoke at P=512.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "costmodel/drift.hpp"
#include "engine/engine.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/trace.hpp"

namespace ca3dmm::simmpi {
namespace {

using costmodel::Algo;
using costmodel::Workload;
using engine::EngineStats;
using engine::PgemmEngine;
using engine::Request;

/// Every field of RankStats that is part of the determinism contract must
/// match bit-for-bit across backends. p2p_zero_copy is deliberately
/// excluded: it depends on send/recv arrival order, which the thread
/// backend leaves to the host scheduler (vtimes are identical either way).
void expect_stats_identical(const RankStats& a, const RankStats& b, int rank) {
  EXPECT_EQ(a.vtime, b.vtime) << "rank " << rank;
  EXPECT_EQ(a.flops, b.flops) << "rank " << rank;
  EXPECT_EQ(a.peak_bytes, b.peak_bytes) << "rank " << rank;
  EXPECT_EQ(a.comm_splits, b.comm_splits) << "rank " << rank;
  EXPECT_EQ(a.abft_corrected, b.abft_corrected) << "rank " << rank;
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    EXPECT_EQ(a.phase_s[p], b.phase_s[p]) << "rank " << rank << " phase " << p;
    EXPECT_EQ(a.inter_bytes_s[p], b.inter_bytes_s[p])
        << "rank " << rank << " phase " << p;
    EXPECT_EQ(a.bytes_sent_s[p], b.bytes_sent_s[p])
        << "rank " << rank << " phase " << p;
    EXPECT_EQ(a.bytes_recvd_s[p], b.bytes_recvd_s[p])
        << "rank " << rank << " phase " << p;
  }
}

std::string run_expect_error(Cluster& cl,
                             const std::function<void(Comm&)>& rank_main) {
  try {
    cl.run(rank_main);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "run() completed without raising an Error";
  return "";
}

TEST(FiberParity, MixedWorkloadBitIdenticalAcrossSeeds) {
  // The throughput bench's workload shape at test scale, swept over seeds
  // that perturb every value flowing through the collectives and the ring.
  // Per-rank payloads, final clocks, and full stats must be bit-identical
  // between the two backends for every seed.
  const int P = 12;
  for (const int seed : {1, 7, 1234}) {
    std::vector<std::vector<double>> payload(2);
    std::vector<std::vector<RankStats>> stats(2);
    int bi = 0;
    for (Cluster::Backend backend :
         {Cluster::Backend::kThreads, Cluster::Backend::kFibers}) {
      Machine mach = Machine::phoenix_mpi();
      mach.ranks_per_node = 4;
      Cluster cl(P, mach);
      cl.set_backend(backend);
      payload[bi].assign(static_cast<size_t>(P), 0.0);
      auto& out = payload[bi];
      cl.run([&out, seed](Comm& c) {
        const int me = c.rank(), n = c.size();
        double acc = seed * 0.5;
        double in[4], red[4];
        std::vector<double> gath(static_cast<size_t>(n));
        for (int round = 0; round < 40; ++round) {
          for (int i = 0; i < 4; ++i) in[i] = me * 1e-3 + seed + round + i;
          c.allreduce(in, red, 4);
          acc += red[0] - red[3];
          double s = acc + me, r = 0;
          c.sendrecv(&s, 1, (me + 1) % n, &r, 1, (me + n - 1) % n,
                     /*tag=*/(round + seed) & 0x3F);
          acc += 1e-9 * r;
          c.allgather(&acc, 1, gath.data());
          acc += gath[static_cast<size_t>((me + round) % n)] * 1e-6;
          c.barrier();
        }
        out[static_cast<size_t>(me)] = acc;
      });
      for (int r = 0; r < P; ++r) stats[bi].push_back(cl.stats(r));
      ++bi;
    }
    EXPECT_EQ(payload[0], payload[1]) << "seed " << seed;
    for (int r = 0; r < P; ++r)
      expect_stats_identical(stats[0][static_cast<size_t>(r)],
                             stats[1][static_cast<size_t>(r)], r);
  }
}

TEST(FiberParity, Ca3dmmExecutionStatsIdentical) {
  // The full CA3DMM pipeline (redistribute, replicate, Cannon, reduce)
  // executed on both backends: aggregate and per-rank stats bit-identical.
  const Workload w{96, 96, 96};
  Cluster th(16, Machine::unit_test());
  Cluster fi(16, Machine::unit_test());
  th.set_backend(Cluster::Backend::kThreads);
  fi.set_backend(Cluster::Backend::kFibers);
  const RankStats agg_th = costmodel::run_workload(Algo::kCa3dmm, w, th);
  const RankStats agg_fi = costmodel::run_workload(Algo::kCa3dmm, w, fi);
  expect_stats_identical(agg_th, agg_fi, -1);
  for (int r = 0; r < 16; ++r)
    expect_stats_identical(th.stats(r), fi.stats(r), r);
}

TEST(FiberParity, TraceAndCriticalPathIdentical) {
  // With tracing on, both backends must record the same per-rank timelines:
  // same record count and fields per rank, and the same critical path (the
  // formatted path string is a pure function of the trace).
  const Workload w{64, 64, 64};
  Cluster th(8, Machine::unit_test());
  Cluster fi(8, Machine::unit_test());
  th.set_backend(Cluster::Backend::kThreads);
  fi.set_backend(Cluster::Backend::kFibers);
  th.set_trace(true);
  fi.set_trace(true);
  costmodel::run_workload(Algo::kCa3dmm, w, th);
  costmodel::run_workload(Algo::kCa3dmm, w, fi);
  for (int r = 0; r < 8; ++r) {
    const auto& a = th.trace(r);
    const auto& b = fi.trace(r);
    ASSERT_EQ(a.size(), b.size()) << "rank " << r;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, b[i].kind) << "rank " << r << " rec " << i;
      EXPECT_STREQ(a[i].name, b[i].name) << "rank " << r << " rec " << i;
      EXPECT_EQ(a[i].t0, b[i].t0) << "rank " << r << " rec " << i;
      EXPECT_EQ(a[i].t1, b[i].t1) << "rank " << r << " rec " << i;
      EXPECT_EQ(a[i].dep_rank, b[i].dep_rank) << "rank " << r << " rec " << i;
      EXPECT_EQ(a[i].t_dep, b[i].t_dep) << "rank " << r << " rec " << i;
    }
  }
  EXPECT_EQ(format_critical_path(critical_path(th)),
            format_critical_path(critical_path(fi)));
  EXPECT_EQ(format_aggregate_table(aggregate_trace(th)),
            format_aggregate_table(aggregate_trace(fi)));
}

TEST(FiberWatchdog, DeadlockDetectedOnFibers) {
  // Parked fibers cannot self-resume, so "nothing runnable, nothing
  // running" is the fiber backend's deadlock criterion; the watchdog must
  // still produce the same rank-attributed wait-for diagnostic.
  Cluster cl(2, Machine::unit_test());
  cl.set_backend(Cluster::Backend::kFibers);
  cl.set_watchdog_interval_ms(20);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    if (c.rank() == 0) {
      double x = 0;
      c.recv(&x, 1, 1, 999);  // rank 1 sends tag 7, never 999
    } else {
      double v = 1;
      c.send(&v, 1, 0, 7);
    }
  });
  EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wait-for table"), std::string::npos) << msg;
  EXPECT_NE(msg.find("tag=999"), std::string::npos) << msg;
}

TEST(FiberFaults, KillRankCaughtOnFibers) {
  Cluster cl(4, Machine::unit_test());
  cl.set_backend(Cluster::Backend::kFibers);
  FaultPlan fp;
  fp.kills.push_back({.rank = 2, .at_op = 3});
  cl.set_fault_plan(fp);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    for (int i = 0; i < 10; ++i) c.barrier();
  });
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fault injection"), std::string::npos) << msg;
  ASSERT_EQ(cl.failed_ranks().size(), 1u);
  EXPECT_EQ(cl.failed_ranks()[0], 2);

  // A clean plan runs again on the same cluster (fiber pool is per-run).
  cl.set_fault_plan(FaultPlan{});
  cl.run([](Comm& c) { c.barrier(); });
}

TEST(FiberFaults, StragglerVtimesMatchThreadBackend) {
  // Fault-injected time dilation must flow through the fiber scheduler's
  // vclock ordering without disturbing determinism: both backends see the
  // same straggler-shifted clocks.
  FaultPlan fp;
  fp.stragglers.push_back({.node = 1, .factor = 3.0});
  auto body = [](Comm& c) {
    c.charge_compute(1e6, 0);
    c.barrier();
    // Trailing *local* work after the barrier: the straggled rank's clock
    // ends 3x further out, observable in its final vtime.
    c.charge_compute(1e6, 0);
  };
  std::vector<double> vt[2];
  int bi = 0;
  for (Cluster::Backend backend :
       {Cluster::Backend::kThreads, Cluster::Backend::kFibers}) {
    Cluster cl(4, Machine::unit_test());
    cl.set_backend(backend);
    cl.set_fault_plan(fp);
    cl.run(body);
    for (int r = 0; r < 4; ++r) vt[bi].push_back(cl.stats(r).vtime);
    ++bi;
  }
  EXPECT_EQ(vt[0], vt[1]);
  EXPECT_GT(vt[1][1], vt[1][0]);  // straggled rank finishes later
}

TEST(FiberFaults, PayloadFlipFiresOnZeroCopyPath) {
  // Rank 0 posts its recv first (fibers dispatch rank 0 at vclock 0 until
  // it parks), so rank 1's send takes the zero-copy path — and the flip
  // must corrupt the posted buffer exactly as it would the staged copy.
  Cluster cl(2, Machine::unit_test());
  cl.set_backend(Cluster::Backend::kFibers);
  FaultPlan fp;
  fp.flips.push_back(
      {.src = 1, .dst = 0, .tag = 5, .nth_match = 1, .offset = 0, .mask = 1});
  cl.set_fault_plan(fp);
  double got = 0;
  cl.run([&got](Comm& c) {
    if (c.rank() == 0) {
      c.recv(&got, 1, 1, 5);
    } else {
      double v = 1.0;
      c.send(&v, 1, 0, 5);
    }
  });
  double expect = 1.0;
  unsigned char b[sizeof(double)];
  std::memcpy(b, &expect, sizeof b);
  b[0] ^= 1;
  std::memcpy(&expect, b, sizeof expect);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(cl.stats(0).p2p_zero_copy, 1);  // the fast path really fired
}

TEST(ZeroCopy, PostedReceiveTakesFastPathWithIdenticalTiming) {
  // Receiver-first order (rank 0 posts, rank 1 sends) must hit the
  // zero-copy path on fibers; sender-first order (rank 0 sends into an
  // unposted channel) must not. Both orders and both backends produce the
  // same values and virtual clocks.
  auto recv_first = [](Comm& c) {
    double x = 0;
    if (c.rank() == 0) {
      c.recv(&x, 1, 1, 0);
      EXPECT_EQ(x, 41.0);
    } else {
      x = 41.0;
      c.send(&x, 1, 0, 0);
    }
  };
  auto send_first = [](Comm& c) {
    double x = 0;
    if (c.rank() == 0) {
      x = 43.0;
      c.send(&x, 1, 1, 0);
    } else {
      c.recv(&x, 1, 0, 0);
      EXPECT_EQ(x, 43.0);
    }
  };

  Cluster fi(2, Machine::unit_test());
  fi.set_backend(Cluster::Backend::kFibers);
  fi.run(recv_first);
  EXPECT_EQ(fi.stats(0).p2p_zero_copy, 1);
  const double vt_fi_recv = fi.stats(0).vtime;
  fi.run(send_first);
  EXPECT_EQ(fi.stats(1).p2p_zero_copy, 0);  // eager: nothing was posted
  const double vt_fi_send = fi.stats(1).vtime;

  Cluster th(2, Machine::unit_test());
  th.set_backend(Cluster::Backend::kThreads);
  th.run(recv_first);
  EXPECT_EQ(th.stats(0).vtime, vt_fi_recv);
  th.run(send_first);
  EXPECT_EQ(th.stats(1).vtime, vt_fi_send);
  // Delivery path never changes modeled time: receiver's cost is the same
  // whether the message was staged or delivered zero-copy.
  EXPECT_EQ(vt_fi_recv, vt_fi_send);
}

TEST(ZeroCopy, SizeMismatchStillRaisedOnReceiver) {
  // A posted-size mismatch must decline the fast path and flow through the
  // eager queue so the *receiver* raises the error, same attribution as the
  // thread backend.
  Cluster cl(2, Machine::unit_test());
  cl.set_backend(Cluster::Backend::kFibers);
  const std::string msg = run_expect_error(cl, [](Comm& c) {
    double x[2] = {1, 2};
    if (c.rank() == 0)
      c.recv(x, 2, 1, 0);  // posts 16 bytes; sender provides 8
    else
      c.send(x, 1, 0, 0);
  });
  EXPECT_NE(msg.find("recv size mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
}

TEST(FiberEngine, RacingSubmittersOnFiberRanks) {
  // Engine helper threads are real OS threads racing into a rank that is a
  // fiber: they adopt the rank context and block on the condition-variable
  // path while the fiber's worker blocks in join() — the case the pool's
  // growth monitor exists for. Results must match the serial reference.
  const i64 m = 24;
  const int P = 2, kThreads = 2, kReps = 3;
  const BlockLayout lay = BlockLayout::col_1d(m, m, P);
  constexpr std::uint64_t kSeedA = 31, kSeedB = 32;
  auto fill_local = [&](int rank, std::uint64_t seed,
                        std::vector<double>& buf) {
    buf.assign(static_cast<size_t>(lay.local_size(rank)), 0.0);
    i64 pos = 0;
    for (const Rect& r : lay.rects_of(rank))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
  };
  Cluster cl(P, Machine::unit_test());
  cl.set_backend(Cluster::Backend::kFibers);
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a, b;
    fill_local(me, kSeedA, a);
    fill_local(me, kSeedB, b);
    PgemmEngine eng(world);
    std::vector<std::vector<double>> cs(
        kThreads,
        std::vector<double>(static_cast<size_t>(lay.local_size(me))));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kReps; ++i) {
          Request<double> req;
          req.m = m;
          req.n = m;
          req.k = m;
          req.a_layout = &lay;
          req.a = a.data();
          req.b_layout = &lay;
          req.b = b.data();
          req.c_layout = &lay;
          req.c = cs[static_cast<size_t>(t)].data();
          eng.multiply(req);
        }
      });
    }
    for (std::thread& th : threads) th.join();

    const EngineStats st = eng.stats();
    EXPECT_EQ(st.requests, kThreads * kReps);

    Matrix<double> am(m, m), bm(m, m);
    am.fill_random(kSeedA);
    bm.fill_random(kSeedB);
    Matrix<double> c_ref(m, m);
    gemm_ref<double>(false, false, m, m, m, 1.0, am.data(), bm.data(),
                     c_ref.data());
    for (int t = 0; t < kThreads; ++t) {
      i64 pos = 0;
      const std::vector<double>& c = cs[static_cast<size_t>(t)];
      for (const Rect& r : lay.rects_of(me))
        for (i64 i = r.r.lo; i < r.r.hi; ++i)
          for (i64 j = r.c.lo; j < r.c.hi; ++j)
            ASSERT_NEAR(c[static_cast<size_t>(pos++)], c_ref(i, j),
                        1e-11 * static_cast<double>(m + 1))
                << "rank " << me << " thread " << t;
    }
  });
}

TEST(FiberScale, ManyRanksOnSmallStacksSmoke) {
  // 512 ranks in one address space — far past where thread-per-rank is
  // practical — on deliberately small 128 KiB stacks and a 2-worker pool.
  // All ranks leave the final barrier at the same virtual time, and the
  // allreduce result is exact.
  const int P = 512;
  Cluster cl(P, Machine::unit_test());
  cl.set_backend(Cluster::Backend::kFibers);
  cl.set_fiber_stack_bytes(128u << 10);
  cl.set_fiber_workers(2);
  std::vector<double> sums(static_cast<size_t>(P), 0.0);
  cl.run([&sums](Comm& c) {
    double acc = 0;
    for (int round = 0; round < 3; ++round) {
      double v = c.rank() + 1, s = 0;
      c.allreduce(&v, &s, 1);
      acc += s;
      c.barrier();
    }
    sums[static_cast<size_t>(c.rank())] = acc;
  });
  const double expect = 3.0 * (static_cast<double>(P) * (P + 1) / 2);
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(sums[static_cast<size_t>(r)], expect) << "rank " << r;
    EXPECT_EQ(cl.stats(r).vtime, cl.stats(0).vtime) << "rank " << r;
  }
}

}  // namespace
}  // namespace ca3dmm::simmpi
