// BlockLayout factories and ownership invariants.
#include <gtest/gtest.h>

#include "layout/block_layout.hpp"

namespace ca3dmm {
namespace {

TEST(Layout, Row1D) {
  auto l = BlockLayout::row_1d(10, 4, 3);
  EXPECT_TRUE(l.covers_exactly());
  EXPECT_EQ(l.local_size(0), 4 * 4);  // rows 0..3
  EXPECT_EQ(l.local_size(1), 3 * 4);
  EXPECT_EQ(l.local_size(2), 3 * 4);
}

TEST(Layout, Col1D) {
  auto l = BlockLayout::col_1d(4, 10, 3);
  EXPECT_TRUE(l.covers_exactly());
  EXPECT_EQ(l.local_size(0), 4 * 4);
  EXPECT_EQ(l.rects_of(1)[0].c, (Range{4, 7}));
}

TEST(Layout, Grid2DRowMajor) {
  auto l = BlockLayout::grid_2d(6, 6, 2, 3);
  EXPECT_TRUE(l.covers_exactly());
  // Rank 4 = grid (1, 1): rows 3..5, cols 2..3
  EXPECT_EQ(l.rects_of(4)[0], (Rect{{3, 6}, {2, 4}}));
}

TEST(Layout, Grid2DColMajor) {
  auto l = BlockLayout::grid_2d(6, 6, 2, 3, /*col_major_ranks=*/true);
  EXPECT_TRUE(l.covers_exactly());
  // Rank 3 = (i=1, j=1) in column-major rank order: rows 3..5, cols 2..3
  EXPECT_EQ(l.rects_of(3)[0], (Rect{{3, 6}, {2, 4}}));
}

TEST(Layout, Single) {
  auto l = BlockLayout::single(5, 5, 2, 4);
  EXPECT_TRUE(l.covers_exactly());
  EXPECT_EQ(l.local_size(2), 25);
  EXPECT_EQ(l.local_size(0), 0);
}

TEST(Layout, MoreRanksThanRows) {
  auto l = BlockLayout::row_1d(2, 3, 5);
  EXPECT_TRUE(l.covers_exactly());
  EXPECT_EQ(l.local_size(0), 3);
  EXPECT_EQ(l.local_size(2), 0);  // empty block dropped
  EXPECT_TRUE(l.rects_of(4).empty());
}

TEST(Layout, LocalOffsetWithinMultipleRects) {
  BlockLayout l(4, 4, 2);
  l.add_rect(0, {{0, 2}, {0, 4}});   // 8 elements
  l.add_rect(0, {{2, 4}, {0, 2}});   // 4 elements
  l.add_rect(1, {{2, 4}, {2, 4}});
  EXPECT_TRUE(l.covers_exactly());
  EXPECT_EQ(l.local_offset(0, 0, 1, 3), 7);
  EXPECT_EQ(l.local_offset(0, 1, 2, 0), 8);
  EXPECT_EQ(l.local_offset(0, 1, 3, 1), 11);
}

TEST(Layout, OverlapDetected) {
  BlockLayout l(2, 2, 2);
  l.add_rect(0, {{0, 2}, {0, 2}});
  l.add_rect(1, {{0, 1}, {0, 1}});
  EXPECT_FALSE(l.covers_exactly());
}

TEST(Layout, GapDetected) {
  BlockLayout l(2, 2, 2);
  l.add_rect(0, {{0, 1}, {0, 2}});
  EXPECT_FALSE(l.covers_exactly());
}

TEST(Layout, BlockCyclicCoversExactly) {
  for (auto [rows, cols, pr, pc, rb, cb] :
       {std::tuple<i64, i64, int, int, i64, i64>{16, 16, 2, 2, 4, 4},
        {17, 13, 2, 3, 4, 2},
        {8, 8, 3, 2, 2, 3},
        {5, 5, 2, 2, 8, 8},    // tiles larger than the matrix
        {12, 1, 4, 1, 1, 1}}) {
    const auto l = BlockLayout::block_cyclic(rows, cols, pr, pc, rb, cb);
    EXPECT_TRUE(l.covers_exactly())
        << rows << "x" << cols << " grid " << pr << "x" << pc << " tiles "
        << rb << "x" << cb;
    EXPECT_EQ(l.nranks(), pr * pc);
  }
}

TEST(Layout, BlockCyclicRoundRobinAssignment) {
  // 8x8, 2x2 grid, 2x2 tiles: tile (ti, tj) -> rank (ti%2)*2 + tj%2.
  const auto l = BlockLayout::block_cyclic(8, 8, 2, 2, 2, 2);
  // Rank 0 owns tiles (0,0), (0,2), (2,0), (2,2) -> 4 rects.
  EXPECT_EQ(l.rects_of(0).size(), 4u);
  EXPECT_EQ(l.rects_of(0)[0], (Rect{{0, 2}, {0, 2}}));
  EXPECT_EQ(l.local_size(0), 16);
  // Rank 3 owns the odd-odd tiles.
  EXPECT_EQ(l.rects_of(3)[0], (Rect{{2, 4}, {2, 4}}));
}

TEST(Layout, RectIntersect) {
  Rect a{{0, 4}, {0, 4}}, b{{2, 6}, {3, 8}};
  EXPECT_EQ(intersect(a, b), (Rect{{2, 4}, {3, 4}}));
  Rect c{{4, 6}, {0, 4}};
  EXPECT_TRUE(intersect(a, c).empty());
}

}  // namespace
}  // namespace ca3dmm
