// Redistribution engine: conversion between arbitrary layout pairs,
// transpose-on-the-fly, idle ranks, and volume accounting.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "layout/redistribute.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/coll_cost.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

/// Fills this rank's local buffer under `layout` from the virtual global
/// random matrix `seed` (in source orientation).
void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// Checks this rank's local buffer under `layout` against the global matrix,
/// optionally with transposed coordinates (local (i,j) == global (j,i)).
void check_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                 const std::vector<double>& buf, bool transposed) {
  ASSERT_EQ(buf.size(), static_cast<size_t>(layout.local_size(rank)));
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j) {
        const double expect = transposed ? matrix_entry<double>(seed, j, i)
                                         : matrix_entry<double>(seed, i, j);
        ASSERT_DOUBLE_EQ(buf[static_cast<size_t>(pos++)], expect)
            << "rank " << rank << " (" << i << "," << j << ")";
      }
}

void roundtrip(const BlockLayout& src, const BlockLayout& dst, int P,
               bool transpose = false) {
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    std::vector<double> in, out(static_cast<size_t>(dst.local_size(c.rank())));
    fill_local(src, c.rank(), 42, in);
    redistribute<double>(c, src, in.data(), dst, out.data(), transpose);
    check_local(dst, c.rank(), 42, out, transpose);
  });
}

TEST(Redistribute, Row1DToCol1D) {
  roundtrip(BlockLayout::row_1d(13, 9, 4), BlockLayout::col_1d(13, 9, 4), 4);
}

TEST(Redistribute, Col1DToGrid2D) {
  roundtrip(BlockLayout::col_1d(12, 10, 6), BlockLayout::grid_2d(12, 10, 2, 3),
            6);
}

TEST(Redistribute, Grid2DToGrid2DDifferentShape) {
  roundtrip(BlockLayout::grid_2d(16, 16, 4, 2),
            BlockLayout::grid_2d(16, 16, 2, 4), 8);
}

TEST(Redistribute, GatherToSingleRank) {
  roundtrip(BlockLayout::grid_2d(7, 11, 3, 2), BlockLayout::single(7, 11, 5, 6),
            6);
}

TEST(Redistribute, ScatterFromSingleRank) {
  roundtrip(BlockLayout::single(9, 9, 0, 5), BlockLayout::row_1d(9, 9, 5), 5);
}

TEST(Redistribute, IdentityLayout) {
  roundtrip(BlockLayout::row_1d(8, 8, 4), BlockLayout::row_1d(8, 8, 4), 4);
}

TEST(Redistribute, TransposeRow1DToRow1D) {
  // A (5 x 8) row-partitioned -> A^T (8 x 5) row-partitioned.
  roundtrip(BlockLayout::row_1d(5, 8, 4), BlockLayout::row_1d(8, 5, 4), 4,
            /*transpose=*/true);
}

TEST(Redistribute, TransposeGrid2D) {
  roundtrip(BlockLayout::grid_2d(6, 10, 2, 2),
            BlockLayout::grid_2d(10, 6, 2, 2), 4, /*transpose=*/true);
}

TEST(Redistribute, IdleRanksParticipate) {
  // Layouts span 6 ranks but ranks 4, 5 own nothing in either layout.
  auto src = BlockLayout::row_1d(8, 8, 6);  // blocks sized 2,2,1,1,1,1
  BlockLayout dst(8, 8, 6);
  dst.add_rect(0, {{0, 8}, {0, 4}});
  dst.add_rect(1, {{0, 8}, {4, 8}});
  ASSERT_TRUE(dst.covers_exactly());
  roundtrip(src, dst, 6);
}

TEST(Redistribute, MultiRectDestination) {
  BlockLayout dst(6, 6, 3);
  dst.add_rect(0, {{0, 3}, {0, 3}});
  dst.add_rect(0, {{3, 6}, {3, 6}});
  dst.add_rect(1, {{0, 3}, {3, 6}});
  dst.add_rect(2, {{3, 6}, {0, 3}});
  ASSERT_TRUE(dst.covers_exactly());
  roundtrip(BlockLayout::col_1d(6, 6, 3), dst, 3);
}

TEST(Redistribute, RandomizedLayoutPairsProperty) {
  // Property sweep: random grid shapes on both sides must round-trip.
  Rng rng(7);
  for (int iter = 0; iter < 12; ++iter) {
    const int P = static_cast<int>(rng.uniform(2, 8));
    const i64 m = rng.uniform(1, 20), n = rng.uniform(1, 20);
    auto pick = [&](i64 rows, i64 cols) {
      switch (rng.uniform(0, 3)) {
        case 0: return BlockLayout::row_1d(rows, cols, P);
        case 1: return BlockLayout::col_1d(rows, cols, P);
        case 2: {
          // Random divisor of P so the grid spans exactly P ranks.
          std::vector<int> divs;
          for (int d = 1; d <= P; ++d)
            if (P % d == 0) divs.push_back(d);
          const int pr = divs[static_cast<size_t>(
              rng.uniform(0, static_cast<i64>(divs.size()) - 1))];
          return BlockLayout::grid_2d(rows, cols, pr, P / pr,
                                      rng.uniform(0, 1) == 1);
        }
        default:
          return BlockLayout::single(rows, cols,
                                     static_cast<int>(rng.uniform(0, P - 1)), P);
      }
    };
    auto src = pick(m, n);
    const bool transpose = rng.uniform(0, 1) == 1;
    auto dst = transpose ? pick(n, m) : pick(m, n);
    // Grid factory may span fewer ranks than P owns; ensure full coverage.
    ASSERT_TRUE(src.covers_exactly());
    ASSERT_TRUE(dst.covers_exactly());
    roundtrip(src, dst, P, transpose);
  }
}

TEST(Redistribute, BlockCyclicToNativeStyle) {
  // ScaLAPACK block-cyclic -> contiguous 2-D grid and back (the conversion
  // path the paper's §V discusses for real applications).
  const auto bc = BlockLayout::block_cyclic(18, 14, 2, 2, 3, 2);
  const auto grid = BlockLayout::grid_2d(18, 14, 2, 2);
  roundtrip(bc, grid, 4);
  roundtrip(grid, bc, 4);
}

TEST(Redistribute, BlockCyclicTranspose) {
  const auto bc = BlockLayout::block_cyclic(10, 6, 2, 3, 2, 2);
  const auto dst = BlockLayout::block_cyclic(6, 10, 3, 2, 2, 2);
  roundtrip(bc, dst, 6, /*transpose=*/true);
}

TEST(Redistribute, VolumeExcludesSelfTraffic) {
  auto l = BlockLayout::row_1d(8, 8, 4);
  auto v = redistribution_volume(l, l, false, 8);
  EXPECT_EQ(v.max_send_bytes, 0);
  EXPECT_EQ(v.max_recv_bytes, 0);
}

TEST(Redistribute, VolumeRowToCol) {
  // 4x4 over 2 ranks: row blocks 2x4 -> col blocks 4x2. Each rank keeps a
  // 2x2 quadrant and ships a 2x2 quadrant: 4 elements * 8 bytes.
  auto v = redistribution_volume(BlockLayout::row_1d(4, 4, 2),
                                 BlockLayout::col_1d(4, 4, 2), false, 8);
  EXPECT_EQ(v.max_send_bytes, 32);
  EXPECT_EQ(v.max_recv_bytes, 32);
}

/// The executed redistribution must agree with its analytic prediction
/// *exactly*: every rank's per-phase sent/received bytes equal the
/// redistribution_volume per-rank vectors, and every rank's charged virtual
/// time equals t_alltoallv_machine of the predicted worst off-self volume
/// (all ranks enter the all-to-all at clock 0, so exit = entry + cost).
void check_volume_prediction(const BlockLayout& src, const BlockLayout& dst,
                             int P, bool transpose, const Machine& mach) {
  const RedistVolume v =
      redistribution_volume(src, dst, transpose, sizeof(double));
  ASSERT_EQ(static_cast<int>(v.send_bytes.size()), P);
  ASSERT_EQ(static_cast<int>(v.recv_bytes.size()), P);

  Cluster cl(P, mach);
  cl.run([&](Comm& c) {
    std::vector<double> in, out(static_cast<size_t>(dst.local_size(c.rank())));
    fill_local(src, c.rank(), 11, in);
    redistribute<double>(c, src, in.data(), dst, out.data(), transpose);
  });

  std::vector<int> members(static_cast<size_t>(P));
  for (int r = 0; r < P; ++r) members[static_cast<size_t>(r)] = r;
  const simmpi::GroupProfile prof =
      simmpi::GroupProfile::from_world_ranks(mach, members);
  const double expect_t = simmpi::t_alltoallv_machine(
      mach, simmpi::group_link(mach, prof),
      static_cast<double>(std::max(v.max_send_bytes, v.max_recv_bytes)), P,
      prof.single_node);

  for (int r = 0; r < P; ++r) {
    const simmpi::RankStats& s = cl.stats(r);
    EXPECT_EQ(s.bytes_sent(simmpi::Phase::kMisc),
              static_cast<double>(v.send_bytes[static_cast<size_t>(r)]))
        << "rank " << r;
    EXPECT_EQ(s.bytes_recvd(simmpi::Phase::kMisc),
              static_cast<double>(v.recv_bytes[static_cast<size_t>(r)]))
        << "rank " << r;
    EXPECT_EQ(s.vtime, expect_t) << "rank " << r;
  }
}

TEST(Redistribute, ExecutedMatchesVolumePredictionExactly) {
  check_volume_prediction(BlockLayout::grid_2d(13, 9, 3, 2),
                          BlockLayout::col_1d(13, 9, 6), 6, false,
                          Machine::unit_test());
}

TEST(Redistribute, ExecutedMatchesVolumePredictionMultiNode) {
  // Phoenix-like parameters with 4 ranks per node: P=8 spans two nodes, so
  // the all-to-all pays the congestion-adjusted multi-node rate and the
  // comparison pins that path too.
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  check_volume_prediction(BlockLayout::grid_2d(16, 16, 4, 2),
                          BlockLayout::grid_2d(16, 16, 2, 4), 8, false, mach);
}

TEST(Redistribute, ExecutedMatchesVolumePredictionTranspose) {
  check_volume_prediction(BlockLayout::grid_2d(6, 10, 2, 2),
                          BlockLayout::grid_2d(10, 6, 2, 2), 4, true,
                          Machine::unit_test());
}

}  // namespace
}  // namespace ca3dmm
