// Validation of the analytic cost model against the executable engine.
//
// This is the test that justifies evaluating the paper-scale benchmarks with
// the model: for every algorithm, the model's total virtual time and
// per-rank peak memory must match what the threaded engine actually measures
// on the same machine model. For evenly divisible configurations every rank
// is symmetric and the match must be essentially exact; for uneven
// configurations collective max-entry synchronization introduces small
// differences, so a tolerance applies. Peak memory mirrors integer buffer
// sizes, so it must match exactly in all cases.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/ctf_like.hpp"
#include "baselines/p25d.hpp"
#include "baselines/summa.hpp"
#include "core/ca3dmm.hpp"
#include "costmodel/model.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;
using simmpi::Phase;
using simmpi::RankStats;

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// Runs the real engine and returns aggregate stats + the user-visible grid.
RankStats run_engine(Algo algo, const Workload& w, int P,
                     const Machine& mach) {
  BlockLayout a_nat, b_nat, c_nat;
  Ca3dmmPlan ca_plan;
  CosmaPlan cs_plan;
  CtfPlan ctf_plan;
  SummaPlan su_plan;
  P25dPlan pd_plan;
  Ca3dmmOptions ca_opt;
  ca_opt.force_grid = w.force_grid;
  ca_opt.min_kblk = w.min_kblk;

  switch (algo) {
    case Algo::kCa3dmm:
    case Algo::kCa3dmmSumma:
      ca_opt.use_summa = (algo == Algo::kCa3dmmSumma);
      ca_plan = Ca3dmmPlan::make(w.m, w.n, w.k, P, ca_opt);
      a_nat = ca_plan.a_native();
      b_nat = ca_plan.b_native();
      c_nat = ca_plan.c_native();
      break;
    case Algo::kCosma:
      cs_plan = CosmaPlan::make(w.m, w.n, w.k, P, w.force_grid);
      a_nat = cs_plan.a_native();
      b_nat = cs_plan.b_native();
      c_nat = cs_plan.c_native();
      break;
    case Algo::kCarma:
      cs_plan = CosmaPlan::make_carma(w.m, w.n, w.k, P);
      a_nat = cs_plan.a_native();
      b_nat = cs_plan.b_native();
      c_nat = cs_plan.c_native();
      break;
    case Algo::kCtf:
      ctf_plan = CtfPlan::make(w.m, w.n, w.k, P);
      a_nat = ctf_plan.inner.a_native();
      b_nat = ctf_plan.inner.b_native();
      c_nat = ctf_plan.inner.c_native();
      break;
    case Algo::kSumma:
      su_plan = SummaPlan::make(w.m, w.n, w.k, P);
      a_nat = su_plan.a_native();
      b_nat = su_plan.b_native();
      c_nat = su_plan.c_native();
      break;
    case Algo::kP25d: {
      std::optional<std::pair<int, int>> qc;
      if (w.force_grid) qc = std::make_pair(w.force_grid->pm, w.force_grid->pk);
      pd_plan = P25dPlan::make(w.m, w.n, w.k, P, qc);
      a_nat = pd_plan.a_native();
      b_nat = pd_plan.b_native();
      c_nat = pd_plan.c_native();
      break;
    }
  }

  const BlockLayout a_lay =
      w.custom_layout ? BlockLayout::col_1d(w.m, w.k, P) : a_nat;
  const BlockLayout b_lay =
      w.custom_layout ? BlockLayout::col_1d(w.k, w.n, P) : b_nat;
  const BlockLayout c_lay =
      w.custom_layout ? BlockLayout::col_1d(w.m, w.n, P) : c_nat;

  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    std::vector<double> a, b;
    fill_local(a_lay, world.rank(), 1, a);
    fill_local(b_lay, world.rank(), 2, b);
    std::vector<double> c(
        static_cast<size_t>(c_lay.local_size(world.rank())));
    switch (algo) {
      case Algo::kCa3dmm:
      case Algo::kCa3dmmSumma:
        ca3dmm_multiply<double>(world, ca_plan, false, false, a_lay, a.data(),
                                b_lay, b.data(), c_lay, c.data());
        break;
      case Algo::kCosma:
      case Algo::kCarma:
        cosma_multiply<double>(world, cs_plan, false, false, a_lay, a.data(),
                               b_lay, b.data(), c_lay, c.data());
        break;
      case Algo::kCtf:
        ctf_multiply<double>(world, ctf_plan, false, false, a_lay, a.data(),
                             b_lay, b.data(), c_lay, c.data());
        break;
      case Algo::kSumma:
        summa_multiply<double>(world, su_plan, false, false, a_lay, a.data(),
                               b_lay, b.data(), c_lay, c.data());
        break;
      case Algo::kP25d:
        p25d_multiply<double>(world, pd_plan, false, false, a_lay, a.data(),
                              b_lay, b.data(), c_lay, c.data());
        break;
    }
  });
  return cl.aggregate_stats();
}

void compare(Algo algo, const Workload& w, int P, const Machine& mach,
             double time_rtol) {
  const RankStats engine = run_engine(algo, w, P, mach);
  const Prediction model = costmodel::predict(algo, w, P, mach);
  EXPECT_NEAR(model.t_total, engine.vtime, engine.vtime * time_rtol)
      << costmodel::algo_name(algo) << " m=" << w.m << " n=" << w.n
      << " k=" << w.k << " P=" << P << " custom=" << w.custom_layout;
  EXPECT_EQ(model.peak_bytes, engine.peak_bytes)
      << costmodel::algo_name(algo) << " m=" << w.m << " n=" << w.n
      << " k=" << w.k << " P=" << P << " custom=" << w.custom_layout;
  EXPECT_NEAR(model.flops_per_rank, engine.flops / std::max(1, model.active),
              model.flops_per_rank * 0.5);
}

Machine small_nodes() {
  // Phoenix-like parameters but 4 ranks per node, so P=16 spans 4 nodes and
  // the intra/inter link mixing paths are exercised.
  Machine m = Machine::phoenix_mpi();
  m.ranks_per_node = 4;
  m.cores_per_node = 4;
  return m;
}

// ---- exact agreement on evenly divisible, fully utilized configs ----

TEST(CostModel, Ca3dmmEvenExact) {
  compare(Algo::kCa3dmm, {32, 32, 32}, 8, Machine::unit_test(), 1e-9);
  compare(Algo::kCa3dmm, {32, 32, 64, false, 8, {}, 192}, 16,
          Machine::unit_test(), 1e-9);
  compare(Algo::kCa3dmm, {32, 32, 32}, 8, small_nodes(), 1e-9);
}

TEST(CostModel, Ca3dmmReplicatedEvenExact) {
  Workload w{32, 64, 16};
  compare(Algo::kCa3dmm, w, 8, Machine::unit_test(), 1e-9);  // Example 1
  compare(Algo::kCa3dmm, w, 8, small_nodes(), 1e-9);
}

TEST(CostModel, Ca3dmmSummaEvenExact) {
  compare(Algo::kCa3dmmSumma, {32, 32, 64}, 16, Machine::unit_test(), 1e-9);
}

TEST(CostModel, CosmaEvenExact) {
  compare(Algo::kCosma, {32, 32, 64}, 16, Machine::unit_test(), 1e-9);
  compare(Algo::kCosma, {32, 32, 64}, 16, small_nodes(), 1e-9);
}

TEST(CostModel, CarmaEvenExact) {
  compare(Algo::kCarma, {32, 32, 64}, 8, Machine::unit_test(), 1e-9);
}

TEST(CostModel, SummaEvenExact) {
  compare(Algo::kSumma, {32, 32, 32}, 4, Machine::unit_test(), 1e-9);
  compare(Algo::kSumma, {32, 32, 32}, 4, small_nodes(), 1e-9);
}

TEST(CostModel, CtfEvenExact) {
  compare(Algo::kCtf, {32, 32, 32}, 8, Machine::unit_test(), 1e-9);
}

TEST(CostModel, P25dEvenExact) {
  Workload w{32, 32, 32};
  w.force_grid = ProcGrid{2, 2, 2};  // q=2, c=2 for the 2.5D plan
  compare(Algo::kP25d, w, 8, Machine::unit_test(), 1e-9);
  compare(Algo::kP25d, w, 8, small_nodes(), 1e-9);
  Workload w2{48, 48, 48};
  w2.force_grid = ProcGrid{4, 4, 1};  // pure Cannon layer
  compare(Algo::kP25d, w2, 16, Machine::unit_test(), 1e-9);
}

TEST(CostModel, P25dUnevenWithinTolerance) {
  compare(Algo::kP25d, {37, 29, 53}, 8, Machine::unit_test(), 0.15);
}

// ---- custom (1-D column) user layouts: redistribution paths ----

TEST(CostModel, CustomLayoutExact) {
  Workload w{32, 32, 64};
  w.custom_layout = true;
  compare(Algo::kCa3dmm, w, 16, Machine::unit_test(), 1e-9);
  compare(Algo::kCosma, w, 16, Machine::unit_test(), 1e-9);
}

// ---- uneven blocks / idle ranks: synchronization skew tolerance ----

TEST(CostModel, UnevenWithinTolerance) {
  compare(Algo::kCa3dmm, {37, 29, 53}, 8, Machine::unit_test(), 0.15);
  compare(Algo::kCosma, {37, 29, 53}, 8, Machine::unit_test(), 0.15);
  compare(Algo::kSumma, {37, 29, 53}, 6, Machine::unit_test(), 0.15);
}

TEST(CostModel, IdleRanksWithinTolerance) {
  compare(Algo::kCa3dmm, {32, 32, 64}, 17, Machine::unit_test(), 0.15);
}

TEST(CostModel, GpuMachineExact) {
  Machine gpu = Machine::phoenix_gpu();
  compare(Algo::kCa3dmm, {64, 64, 64}, 8, gpu, 1e-9);
  compare(Algo::kCosma, {64, 64, 64}, 8, gpu, 1e-9);
}

TEST(CostModel, MultiShiftAggregationExact) {
  Workload w{32, 32, 64};
  w.min_kblk = 64;  // forces aggregation in 4-way k groups
  compare(Algo::kCa3dmm, w, 16, Machine::unit_test(), 1e-9);
  w.min_kblk = 0;  // one GEMM per shift
  compare(Algo::kCa3dmm, w, 16, Machine::unit_test(), 1e-9);
}

TEST(CostModel, ForcedGridExact) {
  Workload w{32, 32, 32};
  w.force_grid = ProcGrid{4, 2, 2};
  compare(Algo::kCa3dmm, w, 16, Machine::unit_test(), 1e-9);
  w.force_grid = ProcGrid{2, 4, 2};
  compare(Algo::kCa3dmm, w, 16, Machine::unit_test(), 1e-9);
}

// ---- qualitative sanity of the model at paper scale ----

TEST(CostModel, PaperScaleEvaluatesQuickly) {
  const Machine mach = Machine::phoenix_mpi();
  Workload w{50000, 50000, 50000};
  const Prediction p = costmodel::predict(Algo::kCa3dmm, w, 3072, mach);
  EXPECT_GT(p.t_total, 0.1);   // ~seconds, like the paper
  EXPECT_LT(p.t_total, 60.0);
  EXPECT_GT(p.pct_peak(w.m, w.n, w.k, 3072, mach), 5.0);
  EXPECT_LT(p.pct_peak(w.m, w.n, w.k, 3072, mach), 100.0);
}

TEST(CostModel, CommunicationLowerBoundRespected) {
  // The modelled comm volume of CA3DMM should be near the paper's Q (eq. 9)
  // for a cubic problem: check the plan-level value instead of timing.
  const Ca3dmmPlan plan = Ca3dmmPlan::make(49152, 49152, 49152, 4096);
  EXPECT_LT(plan.comm_volume_per_rank(), 1.35 * plan.volume_lower_bound());
}

}  // namespace
}  // namespace ca3dmm
