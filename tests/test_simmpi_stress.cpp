// Randomized stress tests of the simulated runtime: deep split trees,
// interleaved collectives on sibling communicators, mixed p2p/collective
// traffic, and repeated cluster reuse. These guard the rendezvous machinery
// against ordering bugs that simple unit tests cannot reach.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::simmpi {
namespace {

TEST(Stress, RandomSplitTreeWithCollectives) {
  const int P = 18;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    Comm cur = world.split(0, world.rank());
    Rng rng(1234);  // same stream on every rank: identical split decisions
    for (int level = 0; level < 6; ++level) {
      const int groups = static_cast<int>(rng.uniform(1, 4));
      const int color = cur.rank() % groups;
      Comm next = cur.split(color, cur.rank());
      ASSERT_TRUE(next.valid());
      // Group-wide allreduce must equal a locally computed oracle.
      double v = world.rank(), sum = 0;
      next.allreduce(&v, &sum, 1);
      double expect = 0;
      for (int r = 0; r < cur.size(); ++r)
        if (r % groups == color) expect += cur.world_rank_of(r);
      ASSERT_DOUBLE_EQ(sum, expect) << "level " << level;
      cur = next;
      if (cur.size() == 1) break;
    }
  });
}

TEST(Stress, SiblingGroupsInterleaveDifferentOpCounts) {
  // Odd ranks run more collectives than even ranks on their own comms; the
  // runtime must keep the rendezvous of sibling groups independent.
  const int P = 12;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    Comm g = world.split(world.rank() % 2, world.rank());
    const int reps = (world.rank() % 2 == 0) ? 3 : 11;
    double acc = 0;
    for (int i = 0; i < reps; ++i) {
      double v = 1, s = 0;
      g.allreduce(&v, &s, 1);
      acc += s;
    }
    EXPECT_DOUBLE_EQ(acc, reps * 6.0);
  });
}

TEST(Stress, MixedP2pAndCollectives) {
  const int P = 10;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    const int me = world.rank();
    // Ring p2p interleaved with world barriers; deterministic payloads.
    double acc = 0;
    for (int round = 0; round < 8; ++round) {
      const double v = me * 100.0 + round;
      double got = -1;
      world.sendrecv(&v, 1, (me + 1) % P, &got, 1, (me + P - 1) % P, round);
      ASSERT_DOUBLE_EQ(got, ((me + P - 1) % P) * 100.0 + round);
      if (round % 3 == 0) world.barrier();
      acc += got;
    }
    (void)acc;
  });
}

TEST(Stress, ManySmallMessagesFifo) {
  const int P = 2;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    const int n = 500;
    if (world.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        const double v = i;
        world.send(&v, 1, 1, i % 7);  // several interleaved tag streams
      }
    } else {
      std::vector<int> next(7, 0);
      // Drain tag streams in an order different from the send order.
      for (int tag = 6; tag >= 0; --tag) {
        for (int i = tag; i < n; i += 7) {
          double v = -1;
          world.recv(&v, 1, 0, tag);
          ASSERT_DOUBLE_EQ(v, static_cast<double>(i));
        }
      }
    }
  });
}

TEST(Stress, ClusterReuseAcrossRuns) {
  Cluster cl(8, Machine::unit_test());
  for (int run = 0; run < 5; ++run) {
    cl.run([&](Comm& world) {
      double v = world.rank() + run, s = 0;
      world.allreduce(&v, &s, 1);
      EXPECT_DOUBLE_EQ(s, 28.0 + 8.0 * run);
    });
    // Stats reset between runs.
    EXPECT_GT(cl.stats(0).vtime, 0.0);
    EXPECT_EQ(cl.stats(0).cur_bytes, 0);
  }
}

TEST(Stress, LargeRankCount) {
  // 64 rank threads on one host core: correctness only.
  const int P = 64;
  Cluster cl(P, Machine::phoenix_mpi());
  cl.run([&](Comm& world) {
    std::vector<double> all(static_cast<size_t>(P));
    const double mine = world.rank() * world.rank();
    world.allgather(&mine, 1, all.data());
    for (int r = 0; r < P; ++r)
      ASSERT_DOUBLE_EQ(all[static_cast<size_t>(r)],
                       static_cast<double>(r) * r);
    Comm g = world.split(world.rank() / 8, world.rank());
    double v = 1, s = 0;
    g.allreduce(&v, &s, 1);
    ASSERT_DOUBLE_EQ(s, 8.0);
  });
}

TEST(Stress, VirtualTimeMonotonePerRank) {
  const int P = 6;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    double last = world.now();
    for (int i = 0; i < 10; ++i) {
      world.barrier();
      EXPECT_GE(world.now(), last);
      last = world.now();
      world.charge_compute(1e3, 0);
      EXPECT_GT(world.now(), last);
      last = world.now();
    }
  });
}

}  // namespace
}  // namespace ca3dmm::simmpi
