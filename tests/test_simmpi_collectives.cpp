// Collective operations of the simulated runtime against serial oracles:
// data results for every collective, uneven counts, splits, and nesting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::simmpi {
namespace {

TEST(Collectives, Bcast) {
  Cluster cl(7, Machine::unit_test());
  cl.run([](Comm& c) {
    std::vector<double> buf(5, 0.0);
    if (c.rank() == 3)
      for (int i = 0; i < 5; ++i) buf[static_cast<size_t>(i)] = 10.0 + i;
    c.bcast(buf.data(), 5, 3);
    for (int i = 0; i < 5; ++i)
      EXPECT_DOUBLE_EQ(buf[static_cast<size_t>(i)], 10.0 + i);
  });
}

TEST(Collectives, Allgather) {
  const int P = 6;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    const double mine[2] = {static_cast<double>(c.rank()),
                            static_cast<double>(c.rank() * 10)};
    std::vector<double> all(static_cast<size_t>(2 * P));
    c.allgather(mine, 2, all.data());
    for (int r = 0; r < P; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<size_t>(2 * r)], r);
      EXPECT_DOUBLE_EQ(all[static_cast<size_t>(2 * r + 1)], r * 10);
    }
  });
}

TEST(Collectives, AllgathervUnevenCounts) {
  const int P = 5;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    // Rank r contributes r+1 doubles valued 100*r + i.
    const int me = c.rank();
    std::vector<double> mine(static_cast<size_t>(me + 1));
    for (int i = 0; i <= me; ++i)
      mine[static_cast<size_t>(i)] = 100.0 * me + i;
    std::vector<i64> counts;
    i64 total = 0;
    for (int r = 0; r < P; ++r) {
      counts.push_back(static_cast<i64>((r + 1) * sizeof(double)));
      total += r + 1;
    }
    std::vector<double> all(static_cast<size_t>(total));
    c.allgatherv_bytes(mine.data(),
                       static_cast<i64>((me + 1) * sizeof(double)), all.data(),
                       counts);
    i64 off = 0;
    for (int r = 0; r < P; ++r)
      for (int i = 0; i <= r; ++i)
        EXPECT_DOUBLE_EQ(all[static_cast<size_t>(off++)], 100.0 * r + i);
  });
}

TEST(Collectives, ReduceScatterSum) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    // Segment r has r+1 elements; every rank contributes value (rank+1) to
    // every element, so each reduced element equals P(P+1)/2 = 10.
    std::vector<i64> counts;
    i64 total = 0;
    for (int r = 0; r < P; ++r) {
      counts.push_back(r + 1);
      total += r + 1;
    }
    std::vector<double> sbuf(static_cast<size_t>(total),
                             static_cast<double>(c.rank() + 1));
    std::vector<double> rbuf(static_cast<size_t>(c.rank() + 1), -1.0);
    c.reduce_scatter(sbuf.data(), rbuf.data(), counts);
    for (double v : rbuf) EXPECT_DOUBLE_EQ(v, 10.0);
  });
}

TEST(Collectives, ReduceScatterZeroCount) {
  // A rank may receive nothing (count 0) — used by idle-ish ranks.
  const int P = 3;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    std::vector<i64> counts{2, 0, 1};
    std::vector<double> sbuf{1, 2, 3};
    std::vector<double> rbuf(3, -1);
    c.reduce_scatter(sbuf.data(), rbuf.data(), counts);
    if (c.rank() == 0) {
      EXPECT_DOUBLE_EQ(rbuf[0], 3.0);
      EXPECT_DOUBLE_EQ(rbuf[1], 6.0);
    } else if (c.rank() == 2) {
      EXPECT_DOUBLE_EQ(rbuf[0], 9.0);
    }
  });
}

TEST(Collectives, AllreduceSum) {
  const int P = 9;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    std::vector<float> s{static_cast<float>(c.rank()), 1.0f};
    std::vector<float> r(2);
    c.allreduce(s.data(), r.data(), 2);
    EXPECT_FLOAT_EQ(r[0], static_cast<float>(P * (P - 1) / 2));
    EXPECT_FLOAT_EQ(r[1], static_cast<float>(P));
  });
}

TEST(Collectives, Alltoallv) {
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    // Rank r sends one double (value 100*r + d) to every rank d.
    const int me = c.rank();
    std::vector<double> sbuf(static_cast<size_t>(P));
    std::vector<i64> scounts(static_cast<size_t>(P)), sdispls(static_cast<size_t>(P));
    std::vector<i64> rcounts(static_cast<size_t>(P)), rdispls(static_cast<size_t>(P));
    for (int d = 0; d < P; ++d) {
      sbuf[static_cast<size_t>(d)] = 100.0 * me + d;
      scounts[static_cast<size_t>(d)] = sizeof(double);
      sdispls[static_cast<size_t>(d)] = static_cast<i64>(d * sizeof(double));
      rcounts[static_cast<size_t>(d)] = sizeof(double);
      rdispls[static_cast<size_t>(d)] = static_cast<i64>(d * sizeof(double));
    }
    std::vector<double> rbuf(static_cast<size_t>(P), -1);
    c.alltoallv_bytes(sbuf.data(), scounts, sdispls, rbuf.data(), rcounts,
                      rdispls);
    for (int s = 0; s < P; ++s)
      EXPECT_DOUBLE_EQ(rbuf[static_cast<size_t>(s)], 100.0 * s + me);
  });
}

TEST(Collectives, SplitColorsAndKeys) {
  const int P = 8;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    // Even/odd split with reversed key ordering: the even group is ordered
    // {6,4,2,0} and the odd group {7,5,3,1}.
    Comm sub = c.split(c.rank() % 2, -c.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 4);
    const int top = (c.rank() % 2 == 0) ? 6 : 7;  // world rank of sub rank 0
    EXPECT_EQ(sub.rank(), (top - c.rank()) / 2);
    // A collective on the sub-communicator only involves the subgroup.
    std::vector<double> all(4);
    const double mine = c.rank();
    sub.allgather(&mine, 1, all.data());
    for (int j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(all[static_cast<size_t>(j)],
                       static_cast<double>(top - 2 * j))
          << "j=" << j;
  });
}

TEST(Collectives, SplitUndefinedColor) {
  const int P = 5;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    Comm sub = c.split(c.rank() < 3 ? 0 : -1, c.rank());
    if (c.rank() < 3) {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
      EXPECT_EQ(sub.rank(), c.rank());
    } else {
      EXPECT_FALSE(sub.valid());
    }
  });
}

TEST(Collectives, NestedSplits) {
  // Split a 12-rank world into 2 groups of 6, then each into 3 pairs, and
  // run an allreduce at the innermost level.
  const int P = 12;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    Comm half = c.split(c.rank() / 6, c.rank());
    Comm pair = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(pair.size(), 2);
    double v = 1.0, r = 0.0;
    pair.allreduce(&v, &r, 1);
    EXPECT_DOUBLE_EQ(r, 2.0);
  });
}

TEST(Collectives, ConcurrentSubgroupCollectives) {
  // Different subgroups run independent collectives "simultaneously".
  const int P = 9;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    Comm g = c.split(c.rank() % 3, c.rank());
    double v = c.rank(), sum = 0;
    g.allreduce(&v, &sum, 1);
    double expect = 0;
    for (int r = c.rank() % 3; r < P; r += 3) expect += r;
    EXPECT_DOUBLE_EQ(sum, expect);
  });
}

TEST(Collectives, BarrierCompletes) {
  Cluster cl(16, Machine::unit_test());
  cl.run([](Comm& c) {
    for (int i = 0; i < 5; ++i) c.barrier();
  });
}

// ---- edge cases: empty payloads, degenerate splits, singleton groups ----

TEST(CollectivesEdge, ZeroByteBcast) {
  Cluster cl(4, Machine::unit_test());
  cl.run([](Comm& c) {
    c.bcast_bytes(nullptr, 0, 2);
    EXPECT_GE(c.last_op_cost(), 0.0);
  });
}

TEST(CollectivesEdge, ZeroByteAllgather) {
  Cluster cl(4, Machine::unit_test());
  cl.run([](Comm& c) { c.allgather_bytes(nullptr, 0, nullptr); });
}

TEST(CollectivesEdge, ZeroCountAllreduce) {
  Cluster cl(3, Machine::unit_test());
  cl.run([](Comm& c) {
    c.allreduce_sum(nullptr, nullptr, 0, Dtype::kF64);
  });
}

TEST(CollectivesEdge, AlltoallvZeroCountsForSomePeers) {
  // Rank r sends one double to rank 0 only; everyone else's exchange with r
  // is empty. Rank 0 must receive P values, the others nothing.
  const int P = 4;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    const int me = c.rank();
    const double mine = 100.0 + me;
    std::vector<i64> scounts(static_cast<size_t>(P), 0);
    std::vector<i64> sdispls(static_cast<size_t>(P), 0);
    std::vector<i64> rcounts(static_cast<size_t>(P), 0);
    std::vector<i64> rdispls(static_cast<size_t>(P), 0);
    scounts[0] = sizeof(double);
    if (me == 0)
      for (int s = 0; s < P; ++s) {
        rcounts[static_cast<size_t>(s)] = sizeof(double);
        rdispls[static_cast<size_t>(s)] = static_cast<i64>(s * sizeof(double));
      }
    std::vector<double> rbuf(static_cast<size_t>(P), -1.0);
    c.alltoallv_bytes(&mine, scounts, sdispls, rbuf.data(), rcounts, rdispls);
    if (me == 0)
      for (int s = 0; s < P; ++s)
        EXPECT_DOUBLE_EQ(rbuf[static_cast<size_t>(s)], 100.0 + s);
    else
      for (double v : rbuf) EXPECT_DOUBLE_EQ(v, -1.0);
  });
}

TEST(CollectivesEdge, SplitAllNegativeColors) {
  // Every rank passes MPI_UNDEFINED: all get an invalid communicator and
  // the world communicator stays usable.
  const int P = 5;
  Cluster cl(P, Machine::unit_test());
  cl.run([](Comm& c) {
    Comm sub = c.split(-1, c.rank());
    EXPECT_FALSE(sub.valid());
    c.barrier();
  });
}

TEST(CollectivesEdge, SingleRankCommunicatorAllCollectives) {
  // Each rank splits into its own singleton group and runs every collective
  // on it; all must complete and behave as identities.
  const int P = 3;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& c) {
    Comm solo = c.split(c.rank(), 0);
    ASSERT_TRUE(solo.valid());
    ASSERT_EQ(solo.size(), 1);
    solo.barrier();
    double x = 7.5;
    solo.bcast(&x, 1, 0);
    EXPECT_DOUBLE_EQ(x, 7.5);
    double g = -1;
    solo.allgather(&x, 1, &g);
    EXPECT_DOUBLE_EQ(g, 7.5);
    const std::vector<i64> counts{static_cast<i64>(sizeof(double))};
    double gv = -1;
    solo.allgatherv_bytes(&x, static_cast<i64>(sizeof(double)), &gv, counts);
    EXPECT_DOUBLE_EQ(gv, 7.5);
    const std::vector<i64> rs_counts{2};
    const double sb[2] = {1.5, 2.5};
    double rb[2] = {-1, -1};
    solo.reduce_scatter(sb, rb, rs_counts);
    EXPECT_DOUBLE_EQ(rb[0], 1.5);
    EXPECT_DOUBLE_EQ(rb[1], 2.5);
    double ar = -1;
    solo.allreduce(&x, &ar, 1);
    EXPECT_DOUBLE_EQ(ar, 7.5);
    const std::vector<i64> one{static_cast<i64>(sizeof(double))};
    const std::vector<i64> zero_d{0};
    double a2a = -1;
    solo.alltoallv_bytes(&x, one, zero_d, &a2a, one, zero_d);
    EXPECT_DOUBLE_EQ(a2a, 7.5);
    Comm sub = solo.split(0, 0);
    EXPECT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 1);
  });
}

TEST(CollectivesEdge, SingleRankCluster) {
  Cluster cl(1, Machine::unit_test());
  cl.run([](Comm& c) {
    c.barrier();
    double x = 3.0, r = 0.0;
    c.allreduce(&x, &r, 1);
    EXPECT_DOUBLE_EQ(r, 3.0);
  });
}

}  // namespace
}  // namespace ca3dmm::simmpi
