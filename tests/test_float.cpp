// Single-precision path through the full stack: collectives, redistribution,
// the 2-D engines, and both the CA3DMM and COSMA-like drivers are templated
// on the element type; exercise the float instantiations end to end.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/cosma_like.hpp"
#include "core/ca3dmm.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

void fill_local_f(const BlockLayout& layout, int rank, std::uint64_t seed,
                  std::vector<float>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0f);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<float>(seed, i, j);
}

TEST(Float, Ca3dmmEndToEnd) {
  const i64 m = 36, n = 28, k = 44;
  const int P = 9;
  Matrix<float> a(m, k), b(k, n), c_ref(m, n);
  a.fill_random(3);
  b.fill_random(4);
  gemm_ref<float>(false, false, m, n, k, 1.0f, a.data(), b.data(),
                  c_ref.data());
  const BlockLayout lay_a = BlockLayout::col_1d(m, k, P);
  const BlockLayout lay_b = BlockLayout::row_1d(k, n, P);
  const BlockLayout lay_c = BlockLayout::col_1d(m, n, P);
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P);
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    std::vector<float> al, bl;
    fill_local_f(lay_a, world.rank(), 3, al);
    fill_local_f(lay_b, world.rank(), 4, bl);
    std::vector<float> cb(
        static_cast<size_t>(lay_c.local_size(world.rank())));
    ca3dmm_multiply<float>(world, plan, false, false, lay_a, al.data(), lay_b,
                           bl.data(), lay_c, cb.data());
    i64 pos = 0;
    for (const Rect& r : lay_c.rects_of(world.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          ASSERT_NEAR(cb[static_cast<size_t>(pos++)], c_ref(i, j),
                      1e-4f * static_cast<float>(k));
  });
}

TEST(Float, CosmaEndToEnd) {
  const i64 m = 24, n = 24, k = 48;
  const int P = 8;
  Matrix<float> a(m, k), b(k, n), c_ref(m, n);
  a.fill_random(5);
  b.fill_random(6);
  gemm_ref<float>(false, false, m, n, k, 1.0f, a.data(), b.data(),
                  c_ref.data());
  const BlockLayout lay_a = BlockLayout::col_1d(m, k, P);
  const BlockLayout lay_b = BlockLayout::col_1d(k, n, P);
  const BlockLayout lay_c = BlockLayout::col_1d(m, n, P);
  const CosmaPlan plan = CosmaPlan::make(m, n, k, P);
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    std::vector<float> al, bl;
    fill_local_f(lay_a, world.rank(), 5, al);
    fill_local_f(lay_b, world.rank(), 6, bl);
    std::vector<float> cb(
        static_cast<size_t>(lay_c.local_size(world.rank())));
    cosma_multiply<float>(world, plan, false, false, lay_a, al.data(), lay_b,
                          bl.data(), lay_c, cb.data());
    i64 pos = 0;
    for (const Rect& r : lay_c.rects_of(world.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          ASSERT_NEAR(cb[static_cast<size_t>(pos++)], c_ref(i, j),
                      1e-4f * static_cast<float>(k));
  });
}

TEST(Float, ReductionUsesFloatArithmetic) {
  // The typed reduce path must sum floats (dtype plumbed through correctly).
  Cluster cl(4, Machine::unit_test());
  cl.run([](Comm& c) {
    std::vector<i64> counts{1, 1, 1, 1};
    const float s[4] = {0.25f, 0.25f, 0.25f, 0.25f};
    float r = 0;
    c.reduce_scatter(s, &r, counts);
    EXPECT_FLOAT_EQ(r, 1.0f);
  });
}

TEST(Float, RedistributeFloat) {
  const BlockLayout src = BlockLayout::row_1d(10, 6, 4);
  const BlockLayout dst = BlockLayout::col_1d(10, 6, 4);
  Cluster cl(4, Machine::unit_test());
  cl.run([&](Comm& c) {
    std::vector<float> in, out(static_cast<size_t>(dst.local_size(c.rank())));
    fill_local_f(src, c.rank(), 9, in);
    redistribute<float>(c, src, in.data(), dst, out.data());
    i64 pos = 0;
    for (const Rect& r : dst.rects_of(c.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          ASSERT_EQ(out[static_cast<size_t>(pos++)],
                    matrix_entry<float>(9, i, j));
  });
}

}  // namespace
}  // namespace ca3dmm
