// Multi-tenant service layer: WFQ fairness invariants, quota and
// backpressure semantics, admission isolation (a rejected request must
// leave the engine and pool untouched), cost-model exactness of the SLA
// drift metrics, and fault isolation through the ServiceDriver journal.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "service/driver.hpp"
#include "service/loadgen.hpp"
#include "service/service.hpp"
#include "service/wfq.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/fault.hpp"

namespace ca3dmm {
namespace {

using service::GeneratedLoad;
using service::LoadSpec;
using service::PgemmService;
using service::ServiceConfig;
using service::ServiceDriver;
using service::ServiceReport;
using service::ServiceRequest;
using service::ShapeMix;
using service::TenantConfig;
using service::TenantProfile;
using service::Verdict;
using service::WfqScheduler;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

// ---------------------------------------------------------------------------
// WfqScheduler unit behavior (no cluster).
// ---------------------------------------------------------------------------

TEST(Wfq, EqualWeightsAlternateAndShareEvenly) {
  WfqScheduler wfq;
  wfq.add_tenant(0, 1.0);
  wfq.add_tenant(1, 1.0);
  for (int i = 0; i < 20; ++i) {
    wfq.enqueue(0, 100 + i, 1.0, 0);
    wfq.enqueue(1, 200 + i, 1.0, 0);
  }
  int count[2] = {0, 0};
  while (wfq.all_backlogged()) {
    const auto p = wfq.pick(0);
    ASSERT_TRUE(p.has_value());
    ++count[p->tenant];
    wfq.on_served(p->tenant, p->cost);
  }
  // Uniform costs, equal weights: strict alternation, so the backlogged
  // window splits dead even (up to the one item that drains a queue).
  EXPECT_LE(std::abs(count[0] - count[1]), 1);
  const double s0 = wfq.served(0), s1 = wfq.served(1);
  EXPECT_NEAR(s0 / (s0 + s1), 0.5, 0.05);
}

TEST(Wfq, DoubleWeightGetsDoubleThroughput) {
  WfqScheduler wfq;
  wfq.add_tenant(0, 1.0);
  wfq.add_tenant(1, 2.0);
  for (int i = 0; i < 16; ++i) wfq.enqueue(0, 100 + i, 1.0, 0);
  for (int i = 0; i < 32; ++i) wfq.enqueue(1, 200 + i, 1.0, 0);
  int count[2] = {0, 0};
  while (wfq.all_backlogged()) {
    const auto p = wfq.pick(0);
    ASSERT_TRUE(p.has_value());
    ++count[p->tenant];
    wfq.on_served(p->tenant, p->cost);
  }
  ASSERT_GT(count[0], 4);
  const double ratio = static_cast<double>(count[1]) / count[0];
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(Wfq, WeightsShapeServedVtimeWithUnevenCosts) {
  // Fairness is over served *vtime*, not item counts: tenant 1 has items
  // 4x the cost but the same weight, so it gets ~1/4 the item throughput.
  WfqScheduler wfq;
  wfq.add_tenant(0, 1.0);
  wfq.add_tenant(1, 1.0);
  for (int i = 0; i < 64; ++i) wfq.enqueue(0, 100 + i, 1.0, 0);
  for (int i = 0; i < 16; ++i) wfq.enqueue(1, 200 + i, 4.0, 0);
  double served[2] = {0, 0};
  while (wfq.all_backlogged()) {
    const auto p = wfq.pick(0);
    ASSERT_TRUE(p.has_value());
    served[p->tenant] += p->cost;
    wfq.on_served(p->tenant, p->cost);
  }
  const double share = served[0] / (served[0] + served[1]);
  EXPECT_NEAR(share, 0.5, 0.05);
}

TEST(Wfq, PriorityClassesAreStrictWithoutAging) {
  WfqScheduler wfq(/*starvation_bound_s=*/0);
  wfq.add_tenant(0, 1.0, /*priority_class=*/1);
  wfq.add_tenant(1, 1.0, /*priority_class=*/0);
  wfq.enqueue(0, 100, 1.0, 0);
  wfq.enqueue(1, 200, 1.0, 0);
  wfq.enqueue(1, 201, 1.0, 0);
  EXPECT_EQ(wfq.pick(0)->tenant, 1);
  EXPECT_EQ(wfq.pick(0)->tenant, 1);
  EXPECT_EQ(wfq.pick(0)->tenant, 0);
}

TEST(Wfq, StarvationBoundPromotesAgedItems) {
  WfqScheduler wfq(/*starvation_bound_s=*/5.0);
  wfq.add_tenant(0, 1.0, /*priority_class=*/1);  // batch class
  wfq.add_tenant(1, 1.0, /*priority_class=*/0);  // interactive class
  wfq.enqueue(0, 100, 1.0, /*now_s=*/0);
  for (int i = 0; i < 8; ++i) wfq.enqueue(1, 200 + i, 1.0, 0);
  // While the batch item is fresh, the interactive class wins...
  EXPECT_EQ(wfq.pick(4.0)->tenant, 1);
  // ...but past the bound it is promoted and competes on finish tags, where
  // its early enqueue wins against the re-chained interactive backlog.
  EXPECT_EQ(wfq.pick(6.0)->tenant, 0);
}

// ---------------------------------------------------------------------------
// Executed service behavior on a small cluster.
// ---------------------------------------------------------------------------

constexpr i64 kDim = 32;  ///< tiny uniform multiply for behavior tests

ServiceRequest tiny_request(int tenant, i64 id, double arrival = 0) {
  ServiceRequest r;
  r.tenant = tenant;
  r.id = id;
  r.arrival_s = arrival;
  r.m = r.n = r.k = kDim;
  return r;
}

ServiceReport run_on_cluster(int P, const ServiceConfig& cfg,
                             const std::vector<ServiceRequest>& load) {
  ServiceReport report;
  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    PgemmService svc(world, cfg);
    ServiceReport r = svc.serve(load);
    if (world.rank() == 0) report = r;
  });
  return report;
}

i64 count_verdict(const ServiceReport& rep, Verdict v) {
  return std::count_if(rep.records.begin(), rep.records.end(),
                       [v](const service::RequestRecord& r) {
                         return r.verdict == static_cast<int>(v);
                       });
}

TEST(Service, EqualWeightTenantsShareWithinFivePercent) {
  ServiceConfig cfg;
  cfg.tenants = {TenantConfig{.name = "a"}, TenantConfig{.name = "b"}};
  std::vector<ServiceRequest> load;
  for (int i = 0; i < 24; ++i) {
    load.push_back(tiny_request(0, 100 + i));
    load.push_back(tiny_request(1, 200 + i));
  }
  const ServiceReport rep = run_on_cluster(4, cfg, load);
  ASSERT_EQ(rep.tenants[0].completed, 24);
  ASSERT_EQ(rep.tenants[1].completed, 24);
  const double total =
      rep.fair_window_served[0] + rep.fair_window_served[1];
  ASSERT_GT(total, 0);
  EXPECT_NEAR(rep.fair_window_served[0] / total, 0.5, 0.05);
  EXPECT_NEAR(rep.fair_window_served[1] / total, 0.5, 0.05);
}

TEST(Service, DoubleWeightDoublesServedShare) {
  ServiceConfig cfg;
  cfg.tenants = {TenantConfig{.name = "light", .weight = 1.0},
                 TenantConfig{.name = "heavy", .weight = 2.0}};
  std::vector<ServiceRequest> load;
  for (int i = 0; i < 12; ++i) load.push_back(tiny_request(0, 100 + i));
  for (int i = 0; i < 24; ++i) load.push_back(tiny_request(1, 200 + i));
  const ServiceReport rep = run_on_cluster(4, cfg, load);
  const double total =
      rep.fair_window_served[0] + rep.fair_window_served[1];
  ASSERT_GT(total, 0);
  // Weight 2 of total weight 3 => 2/3 of the served vtime, within 5%.
  EXPECT_NEAR(rep.fair_window_served[1] / total, 2.0 / 3.0,
              0.05 * (2.0 / 3.0));
}

TEST(Service, MemQuotaBackpressureRejectsInsteadOfExceeding) {
  // Quota fits ~2 outstanding requests; 8 arrive at once. The overflow must
  // be rejected with a retry-after — never queued past the quota.
  ServiceConfig cfg;
  TenantConfig tc;
  tc.name = "capped";
  cfg.tenants = {tc};
  std::vector<ServiceRequest> probe_load = {tiny_request(0, 1)};
  const ServiceReport probe = run_on_cluster(4, cfg, probe_load);
  ASSERT_EQ(probe.tenants[0].completed, 1);
  const i64 peak = probe.records[0].peak_bytes;
  ASSERT_GT(peak, 0);

  cfg.tenants[0].mem_quota_bytes = 2 * peak + peak / 2;
  std::vector<ServiceRequest> load;
  for (int i = 0; i < 8; ++i) load.push_back(tiny_request(0, 100 + i));
  const ServiceReport rep = run_on_cluster(4, cfg, load);

  EXPECT_GT(rep.tenants[0].rejected_mem, 0);
  EXPECT_EQ(rep.tenants[0].completed + rep.tenants[0].rejected_mem, 8);
  // The admission gauge never exceeded the contract.
  EXPECT_LE(rep.tenants[0].peak_outstanding_bytes,
            cfg.tenants[0].mem_quota_bytes);
  for (const service::RequestRecord& r : rep.records)
    if (r.verdict == static_cast<int>(Verdict::kRejectedMemQuota))
      EXPECT_GT(r.retry_after_s, 0);
}

TEST(Service, QueueBoundSheds) {
  ServiceConfig cfg;
  TenantConfig tc;
  tc.name = "flood";
  tc.max_queue = 3;
  cfg.tenants = {tc};
  std::vector<ServiceRequest> load;
  for (int i = 0; i < 10; ++i) load.push_back(tiny_request(0, 100 + i));
  const ServiceReport rep = run_on_cluster(4, cfg, load);
  EXPECT_GT(rep.tenants[0].rejected_queue, 0);
  EXPECT_EQ(rep.tenants[0].completed + rep.tenants[0].rejected_queue, 10);
  EXPECT_EQ(rep.tenants[0].failed, 0);
}

TEST(Service, VtimeQuotaThrottles) {
  ServiceConfig cfg;
  TenantConfig tc;
  tc.name = "metered";
  cfg.tenants = {tc};
  std::vector<ServiceRequest> probe_load = {tiny_request(0, 1)};
  const ServiceReport probe = run_on_cluster(4, cfg, probe_load);
  const double warm = probe.records[0].predicted_s;
  ASSERT_GT(warm, 0);

  // Burst admits ~3 requests; the refill is far too slow for the rest of a
  // burst of 8 arriving at once.
  cfg.tenants[0].vtime_burst = 3.5 * warm;
  cfg.tenants[0].vtime_rate = warm * 1e-3;
  std::vector<ServiceRequest> load;
  for (int i = 0; i < 8; ++i) load.push_back(tiny_request(0, 100 + i));
  const ServiceReport rep = run_on_cluster(4, cfg, load);
  EXPECT_GT(rep.tenants[0].rejected_vtime, 0);
  EXPECT_GT(rep.tenants[0].completed, 0);
  EXPECT_EQ(rep.tenants[0].completed + rep.tenants[0].rejected_vtime, 8);
}

TEST(Service, AdmissionRejectionLeavesEngineAndPoolUntouched) {
  // Every request is priced above the tenant's whole quota: all are shed at
  // admission, so the engine must never plan, execute, or touch the pool.
  ServiceConfig cfg;
  TenantConfig tc;
  tc.name = "starved";
  tc.mem_quota_bytes = 1;  // nothing fits
  cfg.tenants = {tc};
  std::vector<ServiceRequest> load;
  for (int i = 0; i < 4; ++i) load.push_back(tiny_request(0, 100 + i));
  const ServiceReport rep = run_on_cluster(4, cfg, load);
  EXPECT_EQ(rep.tenants[0].rejected_too_large, 4);
  EXPECT_EQ(rep.tenants[0].completed, 0);
  EXPECT_EQ(rep.engine.requests, 0);
  EXPECT_EQ(rep.engine.plan_misses, 0);
  EXPECT_EQ(rep.engine.pool.hits + rep.engine.pool.misses, 0);
  EXPECT_EQ(rep.pool_high_water_bytes, 0);
}

TEST(Service, PoolBudgetBoundsFootprint) {
  // Mixed shapes so idle buffers of one shape press against the budget of
  // the next; the pool's high-water mark must stay under the budget.
  LoadSpec spec;
  TenantProfile p;
  p.name = "mixed";
  p.mix = ShapeMix::kTallSkinny;
  p.requests = 8;
  spec.tenants = {p};
  const GeneratedLoad load = generate_load(spec, /*nranks=*/4);

  ServiceConfig probe_cfg;
  probe_cfg.tenants = load.tenants;
  const ServiceReport probe = run_on_cluster(4, probe_cfg, load.requests);
  i64 max_peak = 0;
  for (const service::RequestRecord& r : probe.records)
    max_peak = std::max(max_peak, r.peak_bytes);
  ASSERT_GT(max_peak, 0);

  ServiceConfig cfg;
  cfg.tenants = load.tenants;
  cfg.memory_budget_bytes = 2 * max_peak;
  const ServiceReport rep = run_on_cluster(4, cfg, load.requests);
  EXPECT_EQ(rep.tenants[0].completed, 8);
  EXPECT_LE(rep.pool_high_water_bytes, cfg.memory_budget_bytes);
  // An unbudgeted run of the same load keeps more parked.
  EXPECT_GE(probe.pool_high_water_bytes, rep.pool_high_water_bytes);
}

TEST(Service, DriftStaysInsideGateOnExactnessDomain) {
  // P = 16 over 4 simulated nodes with drift-gated grids: every request's
  // predicted latency must match its executed vtime to the CI gate's 1e-6.
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  LoadSpec spec;
  spec.tenants = service::default_profiles(2, /*requests_each=*/3);
  const GeneratedLoad load = generate_load(spec, 16);
  ServiceConfig cfg;
  cfg.tenants = load.tenants;
  ServiceReport rep;
  Cluster cl(16, mach);
  cl.run([&](Comm& world) {
    PgemmService svc(world, cfg);
    ServiceReport r = svc.serve(load.requests);
    if (world.rank() == 0) rep = r;
  });
  for (const service::TenantMetrics& m : rep.tenants) {
    EXPECT_EQ(m.completed, 3);
    EXPECT_LE(m.max_drift, 1e-6) << m.name;
  }
}

// ---------------------------------------------------------------------------
// Fault isolation through the driver journal.
// ---------------------------------------------------------------------------

TEST(ServiceDriverTest, FaultCostsOnlyTheInFlightRequest) {
  ServiceConfig cfg;
  cfg.tenants = {TenantConfig{.name = "victim"},
                 TenantConfig{.name = "bystander"}};
  std::vector<ServiceRequest> load;
  for (int i = 0; i < 6; ++i) {
    load.push_back(tiny_request(0, 100 + i));
    load.push_back(tiny_request(1, 200 + i));
  }

  ServiceDriver driver(4, Machine::unit_test(), cfg);
  simmpi::FaultPlan fp;
  fp.kills.push_back({.rank = 2, .at_op = 40});  // mid-serving
  driver.set_fault_plan(fp);
  const ServiceReport rep = driver.run(load);

  // Shrink-and-replan recovered on the survivors.
  EXPECT_EQ(driver.recovery().attempts_used(), 2);
  EXPECT_EQ(driver.recovery().final_nranks, 3);

  // Exactly the in-flight request died; everything else completed — the
  // completed requests of attempt 1 were replayed from the journal, not
  // re-executed (their records carry the original latencies).
  const i64 failed = rep.tenants[0].failed + rep.tenants[1].failed;
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(rep.tenants[0].completed + rep.tenants[1].completed,
            static_cast<i64>(load.size()) - failed);
  EXPECT_EQ(rep.tenants[0].rejected_queue + rep.tenants[1].rejected_queue, 0);

  // The journal holds the complete decision record, with one failure.
  i64 journal_failed = 0, journal_done = 0;
  for (const service::RequestRecord& r : driver.journal()) {
    EXPECT_TRUE(r.done);
    if (r.verdict == static_cast<int>(Verdict::kFailed)) ++journal_failed;
    if (r.verdict == static_cast<int>(Verdict::kCompleted)) ++journal_done;
  }
  EXPECT_EQ(journal_failed, 1);
  EXPECT_EQ(journal_done, static_cast<i64>(load.size()) - 1);
}

TEST(ServiceDriverTest, FaultFreeRunMatchesPlainService) {
  ServiceConfig cfg;
  cfg.tenants = {TenantConfig{.name = "a"}, TenantConfig{.name = "b"}};
  std::vector<ServiceRequest> load;
  for (int i = 0; i < 4; ++i) {
    load.push_back(tiny_request(0, 100 + i));
    load.push_back(tiny_request(1, 200 + i));
  }
  ServiceDriver driver(4, Machine::unit_test(), cfg);
  const ServiceReport via_driver = driver.run(load);
  const ServiceReport plain = run_on_cluster(4, cfg, load);

  EXPECT_EQ(driver.recovery().attempts_used(), 1);
  ASSERT_EQ(via_driver.records.size(), plain.records.size());
  for (size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_EQ(via_driver.records[i].id, plain.records[i].id);
    EXPECT_DOUBLE_EQ(via_driver.records[i].executed_s,
                     plain.records[i].executed_s);
    EXPECT_DOUBLE_EQ(via_driver.records[i].finish_s,
                     plain.records[i].finish_s);
  }
  EXPECT_DOUBLE_EQ(via_driver.vtime_end, plain.vtime_end);
}

}  // namespace
}  // namespace ca3dmm
