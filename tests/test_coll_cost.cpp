// Unit tests of the collective cost formulas (paper §III-D) and the link
// mixing rules — these functions are the contract shared by the engine and
// the cost model, so they get their own direct coverage.
#include <gtest/gtest.h>

#include "simmpi/coll_cost.hpp"

namespace ca3dmm::simmpi {
namespace {

constexpr double kA = 2e-6, kB = 5e-10;

TEST(CollCost, PaperFormulas) {
  const LinkParams l{kA, kB};
  const double n = 1e6;  // bytes
  // T_allgather = alpha log2 P + beta n (P-1)/P
  EXPECT_DOUBLE_EQ(t_allgather(l, n, 8), kA * 3 + kB * n * 7 / 8);
  // T_broadcast = alpha (log2 P + P - 1) + 2 beta n (P-1)/P
  EXPECT_DOUBLE_EQ(t_broadcast(l, n, 8), kA * (3 + 7) + 2 * kB * n * 7 / 8);
  // T_reduce_scatter = alpha (P-1) + beta n (P-1)/P
  EXPECT_DOUBLE_EQ(t_reduce_scatter(l, n, 8), kA * 7 + kB * n * 7 / 8);
  // Allreduce = reduce-scatter + allgather.
  EXPECT_DOUBLE_EQ(t_allreduce(l, n, 8),
                   t_reduce_scatter(l, n, 8) + t_allgather(l, n, 8));
}

TEST(CollCost, TrivialGroups) {
  const LinkParams l{kA, kB};
  EXPECT_DOUBLE_EQ(t_allgather(l, 1e6, 1), 0.0);
  EXPECT_DOUBLE_EQ(t_broadcast(l, 1e6, 1), 0.0);
  EXPECT_DOUBLE_EQ(t_reduce_scatter(l, 1e6, 1), 0.0);
  EXPECT_DOUBLE_EQ(t_alltoallv(l, 1e6, 1), 0.0);
}

TEST(CollCost, NonPowerOfTwoLog) {
  // log2d rounds up to whole butterfly rounds.
  EXPECT_DOUBLE_EQ(log2d(1), 0.0);
  EXPECT_DOUBLE_EQ(log2d(2), 1.0);
  EXPECT_DOUBLE_EQ(log2d(3), 2.0);
  EXPECT_DOUBLE_EQ(log2d(341), 9.0);
  EXPECT_DOUBLE_EQ(log2d(512), 9.0);
}

TEST(CollCost, GroupLinkSingleNodeUsesIntraParams) {
  Machine m = Machine::phoenix_mpi();  // 24 ranks/node
  GroupProfile g;
  g.size = 8;
  g.nodes = 1;
  g.max_ranks_per_node = 8;
  g.single_node = true;
  const LinkParams l = group_link(m, g);
  EXPECT_DOUBLE_EQ(l.alpha, m.alpha_intra);
  EXPECT_DOUBLE_EQ(l.beta, 1.0 / m.intra_rank_bandwidth());
}

TEST(CollCost, GroupLinkAllRemoteUsesInterParams) {
  Machine m = Machine::phoenix_mpi();
  GroupProfile g;
  g.size = 16;
  g.nodes = 16;
  g.max_ranks_per_node = 1;
  g.single_node = false;
  const LinkParams l = group_link(m, g);
  EXPECT_DOUBLE_EQ(l.alpha, m.alpha_inter);
  EXPECT_DOUBLE_EQ(l.beta, 1.0 / m.inter_rank_bandwidth());
}

TEST(CollCost, GroupLinkMixesByIntraByteFraction) {
  Machine m = Machine::phoenix_mpi();
  GroupProfile g;
  g.size = 48;  // two full nodes
  g.nodes = 2;
  g.max_ranks_per_node = 24;
  g.single_node = false;
  const LinkParams l = group_link(m, g);
  const double frac = 23.0 / 47.0;  // (r-1)/(p-1)
  const double beta_intra = 1.0 / m.intra_rank_bandwidth();
  const double beta_inter = 1.0 / m.inter_rank_bandwidth();
  EXPECT_NEAR(l.beta, frac * beta_intra + (1 - frac) * beta_inter, 1e-18);
  EXPECT_NEAR(l.alpha, frac * m.alpha_intra + (1 - frac) * m.alpha_inter,
              1e-12);
}

TEST(CollCost, P2pIntraVsInter) {
  Machine m = Machine::phoenix_mpi();
  EXPECT_LT(t_p2p(m, 1e6, true), t_p2p(m, 1e6, false));
  EXPECT_DOUBLE_EQ(t_p2p(m, 0, false), m.alpha_inter);
}

TEST(CollCost, ReduceScatterPenaltyThreshold) {
  Machine m = Machine::phoenix_gpu();
  const LinkParams l{kA, kB};
  const int p = 8;
  const double just_below = m.rs_penalty_threshold_bytes * p * 0.99;
  const double just_above = m.rs_penalty_threshold_bytes * p * 1.01;
  EXPECT_DOUBLE_EQ(t_reduce_scatter_machine(m, l, just_below, p),
                   t_reduce_scatter(l, just_below, p));
  EXPECT_GT(t_reduce_scatter_machine(m, l, just_above, p),
            t_reduce_scatter(l, just_above, p) * 1.5);
}

TEST(CollCost, HybridSingleRankNicFraction) {
  Machine hyb = Machine::phoenix_hybrid();
  // One rank per node: NIC share limited to single_rank_nic_fraction.
  EXPECT_NEAR(hyb.inter_rank_bandwidth(),
              hyb.nic_bandwidth * hyb.single_rank_nic_fraction, 1e-3);
  // 24-thread GEMM rate with the OpenMP efficiency factor.
  EXPECT_NEAR(hyb.rank_flops(),
              hyb.flops_per_core * 24 * hyb.omp_gemm_efficiency, 1.0);
}

TEST(CollCost, GpuMachineGemmTime) {
  Machine gpu = Machine::phoenix_gpu();
  const double flops = 1e12, bytes = 1e9;
  EXPECT_NEAR(gpu.gemm_time(flops, bytes),
              gpu.gpu_gemm_overhead + flops / gpu.gpu_flops +
                  bytes / gpu.pcie_bandwidth,
              1e-12);
  // CTF's contraction derate is configured and sits well below 1.
  EXPECT_LT(gpu.ctf_gemm_fraction(), 0.5);
  Machine cpu = Machine::phoenix_mpi();
  EXPECT_GT(cpu.ctf_gemm_fraction(), gpu.ctf_gemm_fraction());
}

}  // namespace
}  // namespace ca3dmm::simmpi
