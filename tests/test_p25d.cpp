// The 2.5D algorithm baseline: plan geometry and end-to-end correctness
// against the serial reference, across replication depths, uneven blocks,
// transposes, and idle ranks.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/p25d.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

void run_p25d(i64 m, i64 n, i64 k, int P, bool ta, bool tb,
              std::optional<std::pair<int, int>> qc = {}) {
  const P25dPlan plan = P25dPlan::make(m, n, k, P, qc);
  SCOPED_TRACE(strprintf("m=%lld n=%lld k=%lld P=%d q=%d c=%d",
                         static_cast<long long>(m), static_cast<long long>(n),
                         static_cast<long long>(k), P, plan.q(), plan.c()));
  Matrix<double> a(ta ? k : m, ta ? m : k), b(tb ? n : k, tb ? k : n);
  a.fill_random(51);
  b.fill_random(52);
  Matrix<double> c_ref(m, n);
  gemm_ref<double>(ta, tb, m, n, k, 1.0, a.data(), b.data(), c_ref.data());

  const BlockLayout a_lay = BlockLayout::col_1d(a.rows(), a.cols(), P);
  const BlockLayout b_lay = BlockLayout::col_1d(b.rows(), b.cols(), P);
  const BlockLayout c_lay = BlockLayout::col_1d(m, n, P);

  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    std::vector<double> al, bl;
    fill_local(a_lay, world.rank(), 51, al);
    fill_local(b_lay, world.rank(), 52, bl);
    std::vector<double> cb(
        static_cast<size_t>(c_lay.local_size(world.rank())));
    p25d_multiply<double>(world, plan, ta, tb, a_lay, al.data(), b_lay,
                          bl.data(), c_lay, cb.data());
    i64 pos = 0;
    for (const Rect& r : c_lay.rects_of(world.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          ASSERT_NEAR(cb[static_cast<size_t>(pos++)], c_ref(i, j),
                      1e-11 * (k + 1));
  });
}

TEST(P25d, PlanGeometry) {
  // P = 32: q=2..., best utilization; c <= q always.
  const P25dPlan p = P25dPlan::make(1000, 1000, 1000, 32);
  EXPECT_LE(p.c(), p.q());
  EXPECT_LE(p.active(), 32);
  EXPECT_GE(p.active(), 16);
  EXPECT_TRUE(p.a_native().covers_exactly());
  EXPECT_TRUE(p.b_native().covers_exactly());
  EXPECT_TRUE(p.c_native().covers_exactly());
}

TEST(P25d, ReducesToCannonWhenC1) {
  const P25dPlan p = P25dPlan::make(100, 100, 8, 4);
  EXPECT_EQ(p.c(), 1);
  EXPECT_EQ(p.q(), 2);
}

TEST(P25d, SquareEven) { run_p25d(32, 32, 32, 8, false, false); }

TEST(P25d, ForcedDepths) {
  run_p25d(24, 24, 24, 4, false, false, std::make_pair(2, 1));   // pure 2D
  run_p25d(24, 24, 24, 8, false, false, std::make_pair(2, 2));   // 2.5D
  run_p25d(48, 48, 48, 27, false, false, std::make_pair(3, 3));  // full 3D
  run_p25d(36, 36, 36, 32, false, false, std::make_pair(4, 2));
}

TEST(P25d, UnevenBlocks) {
  run_p25d(37, 29, 53, 8, false, false, std::make_pair(2, 2));
  run_p25d(23, 31, 17, 18, false, false, std::make_pair(3, 2));
}

TEST(P25d, Transposes) {
  run_p25d(30, 40, 24, 8, true, false, std::make_pair(2, 2));
  run_p25d(30, 40, 24, 8, false, true, std::make_pair(2, 2));
  run_p25d(30, 40, 24, 8, true, true, std::make_pair(2, 2));
}

TEST(P25d, IdleRanks) {
  run_p25d(24, 24, 24, 11, false, false);  // 11 ranks: some idle
}

TEST(P25d, SingleProcess) { run_p25d(9, 7, 11, 1, false, false); }

TEST(P25d, DepthLargerThanStepsIsStillCorrect) {
  // Forced c > q: extra layers get zero Cannon steps but still participate
  // in replication and reduction.
  run_p25d(20, 20, 20, 16, false, false, std::make_pair(2, 4));
}

TEST(P25d, ExtraMemoryComparedTo2D) {
  // The 2.5D trade-off: deeper replication uses more per-rank memory.
  auto peak_for = [&](int q, int c, int P) {
    const P25dPlan plan = P25dPlan::make(48, 48, 48, P, std::make_pair(q, c));
    const BlockLayout a_lay = plan.a_native();
    const BlockLayout b_lay = plan.b_native();
    const BlockLayout c_lay = plan.c_native();
    Cluster cl(P, Machine::unit_test());
    cl.run([&](Comm& world) {
      std::vector<double> al, bl;
      fill_local(a_lay, world.rank(), 1, al);
      fill_local(b_lay, world.rank(), 2, bl);
      std::vector<double> cb(
          static_cast<size_t>(c_lay.local_size(world.rank())));
      p25d_multiply<double>(world, plan, false, false, a_lay, al.data(),
                            b_lay, bl.data(), c_lay, cb.data());
    });
    return cl.aggregate_stats().peak_bytes;
  };
  // Same process count: the 3-D end of the spectrum (q=2, c=4) holds larger
  // blocks per rank than the 2-D end (q=4, c=1) — the classic 2.5D
  // memory-for-communication trade.
  EXPECT_GT(peak_for(2, 4, 16), peak_for(4, 1, 16));
}

}  // namespace
}  // namespace ca3dmm
