// Randomized property sweep over the baseline algorithms: for sampled
// (shape, P, transposes), every baseline must agree with the serial
// reference — and with CA3DMM itself (all algorithms compute the same
// product, so cross-checking them catches oracle bugs too).
#include <gtest/gtest.h>

#include <vector>

#include "baselines/cosma_like.hpp"
#include "baselines/ctf_like.hpp"
#include "baselines/p25d.hpp"
#include "baselines/summa.hpp"
#include "common/rng.hpp"
#include "core/ca3dmm.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

struct Sample {
  i64 m, n, k;
  int P;
  bool ta, tb;
};

std::vector<Sample> samples() {
  Rng rng(777);
  std::vector<Sample> out;
  for (int i = 0; i < 14; ++i) {
    Sample s;
    s.m = rng.uniform(2, 60);
    s.n = rng.uniform(2, 60);
    s.k = rng.uniform(2, 90);
    s.P = static_cast<int>(rng.uniform(2, 14));
    s.ta = rng.uniform(0, 1) == 1;
    s.tb = rng.uniform(0, 1) == 1;
    out.push_back(s);
  }
  return out;
}

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

class BaselineProperty : public ::testing::TestWithParam<int> {};

TEST_P(BaselineProperty, AllAlgorithmsAgreeWithReference) {
  const Sample s = samples()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(strprintf("m=%lld n=%lld k=%lld P=%d ta=%d tb=%d",
                         static_cast<long long>(s.m),
                         static_cast<long long>(s.n),
                         static_cast<long long>(s.k), s.P, s.ta, s.tb));

  Matrix<double> a(s.ta ? s.k : s.m, s.ta ? s.m : s.k),
      b(s.tb ? s.n : s.k, s.tb ? s.k : s.n);
  a.fill_random(61);
  b.fill_random(62);
  Matrix<double> c_ref(s.m, s.n);
  gemm_ref<double>(s.ta, s.tb, s.m, s.n, s.k, 1.0, a.data(), b.data(),
                   c_ref.data());

  const BlockLayout a_lay = BlockLayout::col_1d(a.rows(), a.cols(), s.P);
  const BlockLayout b_lay = BlockLayout::col_1d(b.rows(), b.cols(), s.P);
  const BlockLayout c_lay = BlockLayout::col_1d(s.m, s.n, s.P);

  const Ca3dmmPlan ca_plan = Ca3dmmPlan::make(s.m, s.n, s.k, s.P);
  const CosmaPlan cs_plan = CosmaPlan::make(s.m, s.n, s.k, s.P);
  const CtfPlan ctf_plan = CtfPlan::make(s.m, s.n, s.k, s.P);
  const SummaPlan su_plan = SummaPlan::make(s.m, s.n, s.k, s.P);
  const P25dPlan pd_plan = P25dPlan::make(s.m, s.n, s.k, s.P);

  for (int algo = 0; algo < 5; ++algo) {
    Cluster cl(s.P, Machine::unit_test());
    cl.run([&](Comm& world) {
      std::vector<double> al, bl;
      fill_local(a_lay, world.rank(), 61, al);
      fill_local(b_lay, world.rank(), 62, bl);
      std::vector<double> cb(
          static_cast<size_t>(c_lay.local_size(world.rank())));
      switch (algo) {
        case 0:
          ca3dmm_multiply<double>(world, ca_plan, s.ta, s.tb, a_lay, al.data(),
                                  b_lay, bl.data(), c_lay, cb.data());
          break;
        case 1:
          cosma_multiply<double>(world, cs_plan, s.ta, s.tb, a_lay, al.data(),
                                 b_lay, bl.data(), c_lay, cb.data());
          break;
        case 2:
          ctf_multiply<double>(world, ctf_plan, s.ta, s.tb, a_lay, al.data(),
                               b_lay, bl.data(), c_lay, cb.data());
          break;
        case 3:
          summa_multiply<double>(world, su_plan, s.ta, s.tb, a_lay, al.data(),
                                 b_lay, bl.data(), c_lay, cb.data());
          break;
        default:
          p25d_multiply<double>(world, pd_plan, s.ta, s.tb, a_lay, al.data(),
                                b_lay, bl.data(), c_lay, cb.data());
          break;
      }
      i64 pos = 0;
      for (const Rect& r : c_lay.rects_of(world.rank()))
        for (i64 i = r.r.lo; i < r.r.hi; ++i)
          for (i64 j = r.c.lo; j < r.c.hi; ++j)
            ASSERT_NEAR(cb[static_cast<size_t>(pos++)], c_ref(i, j),
                        1e-11 * (s.k + 1))
                << "algo " << algo;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, BaselineProperty,
                         ::testing::Range(0, 14));

}  // namespace
}  // namespace ca3dmm
