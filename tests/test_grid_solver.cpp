// Process-grid solver: paper constraints, optimality against brute force,
// and the grids the paper reports for its worked examples.
//
// Note: for several Table II configurations the grid reported by the
// authors' implementation is NOT optimal under the paper's own stated
// objective (eq. 4) — e.g. 2x2x512 for the large-K problem at 2048 cores is
// dominated by 2x2x487 under (4)+(5). For those cases we assert that our
// solver's objective value is at least as good as the paper-reported grid's;
// exact grid equality is asserted only where the paper grid is genuinely
// optimal (the §III-B examples and several Table III rows).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "core/ca3dmm.hpp"
#include "core/grid_solver.hpp"
#include "core/plan.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm {
namespace {

void check_constraints(const ProcGrid& g, int P, i64 m, i64 n, i64 k,
                       double l, bool cannon_compatible) {
  // Utilization bound (5), capped by the dimension clamps.
  const i64 max_possible = std::min<i64>(
      P, std::min<i64>(m, P) * std::min<i64>(n, P) * std::min<i64>(k, P));
  const int min_active =
      static_cast<int>(std::min<i64>(static_cast<i64>(l * P), max_possible));
  EXPECT_GE(g.active(), min_active - 1);
  EXPECT_LE(g.active(), P);
  EXPECT_LE(g.pm, std::max<i64>(m, 1));
  EXPECT_LE(g.pn, std::max<i64>(n, 1));
  EXPECT_LE(g.pk, std::max<i64>(k, 1));
  if (cannon_compatible) {
    const int lo = g.s(), hi = std::max(g.pm, g.pn);
    EXPECT_EQ(hi % lo, 0) << "grid " << g.pm << "x" << g.pn << "x" << g.pk;
  }
}

TEST(GridSolver, PaperExample1) {
  // m=32, k=16, n=64, P=8 -> pm=2, pk=1, pn=4 (paper §III-B Example 1).
  const ProcGrid g = find_grid(32, 64, 16, 8);
  EXPECT_EQ(g.pm, 2);
  EXPECT_EQ(g.pk, 1);
  EXPECT_EQ(g.pn, 4);
  EXPECT_EQ(g.c(), 2);
  EXPECT_EQ(g.s(), 2);
  EXPECT_TRUE(g.replicates_a());
}

TEST(GridSolver, PaperExample2) {
  // m=n=32, k=64, P=16 -> pm=pn=2, pk=4 (paper Example 2).
  const ProcGrid g = find_grid(32, 32, 64, 16);
  EXPECT_EQ(g.pm, 2);
  EXPECT_EQ(g.pn, 2);
  EXPECT_EQ(g.pk, 4);
  EXPECT_EQ(g.c(), 1);
}

TEST(GridSolver, PaperExample3PrimeProcessCount) {
  // m=n=32, k=64, P=17 -> same grid as P=16; one idle process.
  const ProcGrid g = find_grid(32, 32, 64, 17);
  EXPECT_EQ(g.pm, 2);
  EXPECT_EQ(g.pn, 2);
  EXPECT_EQ(g.pk, 4);
  EXPECT_EQ(g.active(), 16);
}

TEST(GridSolver, AtLeastAsGoodAsPaperReportedGrids) {
  // Our solver's objective value must never exceed the value of the grid the
  // paper's implementation reports for the same configuration (Tables II/III).
  struct Case {
    i64 m, n, k;
    int P;
    ProcGrid paper;  // {pm, pn, pk}
  };
  const Case cases[] = {
      {50000, 50000, 50000, 2048, {8, 16, 16}},
      {50000, 50000, 50000, 3072, {16, 16, 12}},
      {6000, 6000, 1200000, 2048, {2, 2, 512}},
      {6000, 6000, 1200000, 3072, {3, 3, 341}},
      {1200000, 6000, 6000, 2048, {512, 2, 2}},
      {100000, 100000, 5000, 2048, {32, 32, 2}},
      {100000, 100000, 5000, 3072, {32, 32, 3}},
      {50000, 50000, 50000, 16, {2, 2, 4}},
      {10000, 10000, 300000, 16, {1, 1, 16}},
      {300000, 10000, 10000, 32, {32, 1, 1}},
      {50000, 50000, 10000, 32, {8, 4, 1}},
  };
  for (const Case& cs : cases) {
    const ProcGrid g = find_grid(cs.m, cs.n, cs.k, cs.P);
    EXPECT_LE(grid_objective(cs.m, cs.n, cs.k, g),
              grid_objective(cs.m, cs.n, cs.k, cs.paper) * (1 + 1e-12))
        << "P=" << cs.P << " got " << g.pm << "x" << g.pn << "x" << g.pk;
    check_constraints(g, cs.P, cs.m, cs.n, cs.k, 0.95, true);
  }
}

TEST(GridSolver, SomePaperGridsAreExactlyReproduced) {
  // Rows of Tables II/III where the paper's grid is the optimum of the
  // composite objective.
  ProcGrid g = find_grid(10000, 10000, 300000, 16);  // large-K, 16 GPUs
  EXPECT_EQ(g.pm, 1);
  EXPECT_EQ(g.pn, 1);
  EXPECT_EQ(g.pk, 16);
  g = find_grid(300000, 10000, 10000, 32);  // large-M, 32 GPUs
  EXPECT_EQ(g.pm, 32);
  EXPECT_EQ(g.pn, 1);
  EXPECT_EQ(g.pk, 1);
  g = find_grid(6000, 6000, 1200000, 2048);  // large-K, Table II
  EXPECT_EQ(g.pm, 2);
  EXPECT_EQ(g.pn, 2);
  EXPECT_EQ(g.pk, 512);
  g = find_grid(6000, 6000, 1200000, 3072);  // 99.9% utilization case
  EXPECT_EQ(g.pm, 3);
  EXPECT_EQ(g.pn, 3);
  EXPECT_EQ(g.pk, 341);
  g = find_grid(100000, 100000, 5000, 3072);  // flat, Table II
  EXPECT_EQ(g.pm, 32);
  EXPECT_EQ(g.pn, 32);
  EXPECT_EQ(g.pk, 3);
}

TEST(GridSolver, ConstraintsHoldAcrossSweep) {
  for (int P : {1, 2, 3, 5, 7, 12, 17, 24, 48, 96, 97, 192}) {
    for (auto [m, n, k] : {std::tuple<i64, i64, i64>{512, 512, 512},
                           {64, 64, 8192},
                           {8192, 64, 64},
                           {4096, 4096, 128},
                           {1, 1000, 1000},
                           {1000, 1, 1},
                           {1, 1, 1}}) {
      const ProcGrid g = find_grid(m, n, k, P);
      check_constraints(g, P, m, n, k, 0.95, true);
      if (m == 1) {
        EXPECT_EQ(g.pm, 1);
      }
      if (n == 1) {
        EXPECT_EQ(g.pn, 1);
      }
      if (k == 1) {
        EXPECT_EQ(g.pk, 1);
      }
    }
  }
}

TEST(GridSolver, DegenerateShapesMatchOptimal1DAlgorithms) {
  // Rank-1 update (k=1): no k parallelism.
  EXPECT_EQ(find_grid(1024, 1024, 1, 16).pk, 1);
  // Matrix-vector product (n=1): pure m partitioning (paper §III-B).
  const ProcGrid mv = find_grid(8192, 1, 8192, 16);
  EXPECT_EQ(mv.pn, 1);
  // Inner product (m=n=1): pure k partitioning.
  const ProcGrid ip = find_grid(1, 1, 100000, 16);
  EXPECT_EQ(ip.pm, 1);
  EXPECT_EQ(ip.pn, 1);
  EXPECT_EQ(ip.pk, 16);
  // Tiny problem: never more grid slots than elements.
  const ProcGrid tiny = find_grid(1, 1, 1, 17);
  EXPECT_EQ(tiny.active(), 1);
}

TEST(GridSolver, BruteForceAgreement) {
  // Exhaustive cross-check of the enumeration on small P.
  for (int P : {4, 6, 9, 12, 17}) {
    const i64 m = 48, n = 24, k = 96;
    const ProcGrid g = find_grid(m, n, k, P);
    double best = 1e300;
    for (int pm = 1; pm <= P && pm <= m; ++pm)
      for (int pn = 1; pn * pm <= P && pn <= n; ++pn)
        for (int pk = 1; pk * pn * pm <= P && pk <= k; ++pk) {
          ProcGrid x{pm, pn, pk};
          if (x.active() < static_cast<int>(0.95 * P)) continue;
          if (std::max(pm, pn) % std::min(pm, pn) != 0) continue;
          best = std::min(best, grid_objective(m, n, k, x));
        }
    EXPECT_DOUBLE_EQ(grid_objective(m, n, k, g), best) << "P=" << P;
  }
}

TEST(GridSolver, LooserUtilizationNeverHurtsObjective) {
  double prev = 1e300;
  for (double l : {0.99, 0.95, 0.90, 0.85}) {
    GridOptions o;
    o.l = l;
    const ProcGrid g = find_grid(50000, 50000, 50000, 192, o);
    const double s = grid_objective(50000, 50000, 50000, g);
    EXPECT_LE(s, prev * (1 + 1e-12));  // smaller l = larger feasible set
    prev = s;
    check_constraints(g, 192, 50000, 50000, 50000, l, true);
  }
}

TEST(GridSolver, PaperLParameterStudy) {
  // §IV-A: "using other l values gives the same 3D process grid as using
  // l = 0.95 in almost all cases". Check it for the paper's problem classes.
  int same = 0, total = 0;
  for (auto [m, n, k] : {std::tuple<i64, i64, i64>{50000, 50000, 50000},
                         {6000, 6000, 1200000},
                         {1200000, 6000, 6000},
                         {100000, 100000, 5000}}) {
    for (int P : {192, 384, 768, 1536, 3072}) {
      GridOptions base;
      const ProcGrid g95 = find_grid(m, n, k, P, base);
      for (double l : {0.85, 0.90, 0.99}) {
        GridOptions o;
        o.l = l;
        total++;
        if (find_grid(m, n, k, P, o) == g95) same++;
      }
    }
  }
  EXPECT_GE(same, total * 9 / 10) << same << "/" << total;
}

TEST(GridSolver, CosmaVariantIgnoresCannonConstraint) {
  const ProcGrid g = find_grid_cosma(1000, 1000, 1000, 36);
  EXPECT_GE(g.active(), 34);
  const ProcGrid gc = find_grid(1000, 1000, 1000, 36);
  EXPECT_LE(grid_objective(1000, 1000, 1000, g),
            grid_objective(1000, 1000, 1000, gc) * (1 + 1e-12));
}

TEST(GridSolver, CtfVariantPicksFoldedGrids) {
  const ProcGrid g = find_grid_ctf(10000, 10000, 300000, 16);
  EXPECT_GE(g.active(), 8);
  EXPECT_LE(g.active(), 16);
  // CTF ignores the matrix shape: same grid for the transposed problem.
  const ProcGrid g2 = find_grid_ctf(300000, 10000, 10000, 16);
  EXPECT_EQ(g.pm, g2.pm);
  EXPECT_EQ(g.pn, g2.pn);
  EXPECT_EQ(g.pk, g2.pk);
}

TEST(GridSolver, SurfaceFormulaSanity) {
  // Perfect cube on 8 processes: the total surface is
  // 6 (mnk)^(2/3) P^(1/3) (paper eq. 3).
  const ProcGrid g{2, 2, 2};
  const double s = grid_surface(64, 64, 64, g);
  EXPECT_NEAR(s, 6.0 * std::pow(64.0 * 64 * 64, 2.0 / 3.0) * 2.0, 1e-9);
}

TEST(GridSolver, ForceGridRejectionPaths) {
  EXPECT_THROW(find_grid(0, 1, 1, 4), Error);
  EXPECT_THROW(find_grid(1, 1, 1, 0), Error);
}

TEST(GridSolver, MemoryBudgetPushesTowards2D) {
  // §V first open problem: shrinking the memory budget must reduce the
  // eq.-(11) working set, moving the grid toward 2-D (smaller pk / c) at the
  // cost of a worse communication objective.
  const i64 m = 50000, n = 50000, k = 50000;
  const int P = 1536;
  GridOptions unlimited;
  const ProcGrid g0 = find_grid(m, n, k, P, unlimited);
  const double mem0 = grid_memory_elems(m, n, k, g0);

  GridOptions tight;
  tight.max_memory_elems = static_cast<i64>(mem0 * 0.6);
  const ProcGrid g1 = find_grid(m, n, k, P, tight);
  EXPECT_LE(grid_memory_elems(m, n, k, g1),
            static_cast<double>(tight.max_memory_elems) * (1 + 1e-12));
  EXPECT_GE(grid_objective(m, n, k, g1), grid_objective(m, n, k, g0));

  // Very tight budget: essentially a 2-D algorithm (pk collapses).
  GridOptions very_tight;
  very_tight.max_memory_elems =
      static_cast<i64>(grid_memory_elems(m, n, k, ProcGrid{48, 32, 1}) * 1.05);
  const ProcGrid g2 = find_grid(m, n, k, P, very_tight);
  EXPECT_LE(g2.pk, 2);
}

TEST(GridSolver, MemoryBudgetInfeasibleFallsBackGracefully) {
  // An unsatisfiable budget relaxes utilization rather than crashing: the
  // pre-pass lowers min_active to whatever remains feasible.
  GridOptions impossible;
  impossible.max_memory_elems = 1;
  EXPECT_THROW(find_grid(1000, 1000, 1000, 8, impossible), Error);
}

/// Runs plan's grid on a simulated cluster with native layouts and returns
/// the measured per-rank peak (max over ranks), in bytes.
i64 measured_peak_bytes(i64 m, i64 n, i64 k, int P, const ProcGrid& g) {
  simmpi::Cluster cl(P, simmpi::Machine::unit_test());
  Ca3dmmOptions opt;
  opt.force_grid = g;
  // No k-block aggregation scratch: eq. (11) describes the bare working set
  // (dual-buffered A/B blocks + C partial), which min_kblk would add to.
  opt.min_kblk = 0;
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P, opt);
  const BlockLayout la = plan.a_native(), lb = plan.b_native(),
                    lc = plan.c_native();
  cl.run([&](simmpi::Comm& c) {
    const int r = c.rank();
    std::vector<double> a(static_cast<size_t>(la.local_size(r)), 1.0);
    std::vector<double> b(static_cast<size_t>(lb.local_size(r)), 2.0);
    std::vector<double> cbuf(static_cast<size_t>(lc.local_size(r)), 0.0);
    ca3dmm_multiply<double>(c, plan, false, false, la, a.data(), lb, b.data(),
                            lc, cbuf.data());
  });
  return cl.aggregate_stats().peak_bytes;
}

TEST(GridSolver, MemoryBudgetRespectedForNonDivisibleShapes) {
  // Regression: the eq.-(11) feasibility check used nominal (average)
  // per-rank sizes, underestimating the worst rank for non-divisible
  // shapes. With m = n = 96, k = 97, P = 16 the best grid under the nominal
  // estimate is 4x4x1 at 2904 elements — within a 2950-element budget —
  // but the widest rank actually holds 2 * 25 * (24 + 24) + 24 * 24 = 2976
  // elements, and the executed plan's measured peak breaks the budget.
  const i64 m = 96, n = 96, k = 97;
  const int P = 16;
  GridOptions tight;
  tight.max_memory_elems = 2950;
  bool feasible = true;
  ProcGrid g{};
  try {
    g = find_grid(m, n, k, P, tight);
  } catch (const Error&) {
    feasible = false;  // honestly refusing the budget respects it
  }
  if (feasible) {
    EXPECT_LE(grid_memory_elems(m, n, k, g),
              static_cast<double>(tight.max_memory_elems));
    EXPECT_LE(measured_peak_bytes(m, n, k, P, g),
              tight.max_memory_elems * static_cast<i64>(sizeof(double)))
        << "grid " << g.pm << "x" << g.pn << "x" << g.pk
        << " violates the memory budget it was selected under";
  }

  // A budget that admits 4x4x1 under the ceil-based estimate must be
  // respected by the executed plan exactly: the estimate IS the peak.
  GridOptions fits;
  fits.max_memory_elems = 2976;
  const ProcGrid g2 = find_grid(m, n, k, P, fits);
  EXPECT_LE(measured_peak_bytes(m, n, k, P, g2),
            fits.max_memory_elems * static_cast<i64>(sizeof(double)));
}

TEST(GridSolver, MemoryFormulaMatchesEq11Cases) {
  // Cube on a cubic grid: S = 4 m^2/P + m^2/P^(2/3) (paper §III-D).
  const ProcGrid g{4, 4, 4};
  const double m = 1024;
  EXPECT_NEAR(grid_memory_elems(1024, 1024, 1024, g),
              4.0 * m * m / 64.0 + m * m / 16.0, 1e-6);
}

}  // namespace
}  // namespace ca3dmm
