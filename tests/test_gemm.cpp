// Blocked GEMM kernel vs the triple-loop reference, across odd shapes,
// transposes, alpha values, and accumulation.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"

namespace ca3dmm {
namespace {

template <typename T>
void fill(std::vector<T>& v, std::uint64_t seed) {
  for (size_t i = 0; i < v.size(); ++i)
    v[i] = matrix_entry<T>(seed, static_cast<i64>(i), 7);
}

using Shape = std::tuple<int, int, int, bool, bool>;

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, BlockedMatchesReference) {
  const auto [m, n, k, ta, tb] = GetParam();
  std::vector<double> a(static_cast<size_t>(m * k)), b(static_cast<size_t>(k * n));
  fill(a, 1);
  fill(b, 2);
  std::vector<double> c_ref(static_cast<size_t>(m * n)),
      c_blk(static_cast<size_t>(m * n));
  fill(c_ref, 3);
  c_blk = c_ref;  // same initial accumulator
  gemm_ref<double>(ta, tb, m, n, k, 1.5, a.data(), b.data(), c_ref.data());
  gemm_blocked<double>(ta, tb, m, n, k, 1.5, a.data(), b.data(), c_blk.data());
  double md = 0;
  for (size_t i = 0; i < c_ref.size(); ++i)
    md = std::max(md, std::fabs(c_ref[i] - c_blk[i]));
  EXPECT_LT(md, 1e-12 * k) << "m=" << m << " n=" << n << " k=" << k
                           << " ta=" << ta << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapes,
    ::testing::Combine(::testing::Values(1, 3, 17, 64, 130),
                       ::testing::Values(1, 5, 33, 129),
                       ::testing::Values(1, 7, 64, 260),
                       ::testing::Bool(), ::testing::Bool()));

TEST(Gemm, FloatKernel) {
  const int m = 31, n = 29, k = 41;
  std::vector<float> a(static_cast<size_t>(m * k)), b(static_cast<size_t>(k * n));
  fill(a, 4);
  fill(b, 5);
  std::vector<float> c1(static_cast<size_t>(m * n), 0.0f),
      c2(static_cast<size_t>(m * n), 0.0f);
  gemm_ref<float>(false, false, m, n, k, 1.0f, a.data(), b.data(), c1.data());
  gemm_blocked<float>(false, false, m, n, k, 1.0f, a.data(), b.data(),
                      c2.data());
  for (size_t i = 0; i < c1.size(); ++i) ASSERT_NEAR(c1[i], c2[i], 1e-4f);
}

TEST(Gemm, ZeroDimensionsAreNoOps) {
  double a = 1, b = 1, c = 5;
  gemm_blocked<double>(false, false, 0, 1, 1, 1.0, &a, &b, &c);
  gemm_blocked<double>(false, false, 1, 1, 0, 1.0, &a, &b, &c);
  EXPECT_DOUBLE_EQ(c, 5.0);
}

TEST(Gemm, AccumulatesIntoC) {
  const int m = 8, n = 8, k = 8;
  std::vector<double> a(64, 1.0), b(64, 1.0), c(64, 10.0);
  gemm_blocked<double>(false, false, m, n, k, 1.0, a.data(), b.data(),
                       c.data());
  for (double v : c) EXPECT_DOUBLE_EQ(v, 18.0);
}

TEST(Gemm, MatrixHelper) {
  Matrix<double> a(5, 7), b(7, 3), c(5, 3), c_ref(5, 3);
  a.fill_random(11);
  b.fill_random(12);
  gemm_acc(a, b, c);
  gemm_ref<double>(false, false, 5, 3, 7, 1.0, a.data(), b.data(),
                   c_ref.data());
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-13);
}

TEST(Gemm, FlopAndByteCounts) {
  EXPECT_DOUBLE_EQ(gemm_flops(10, 20, 30), 12000.0);
  EXPECT_DOUBLE_EQ(gemm_bytes(10, 20, 30, 8),
                   8.0 * (300 + 600 + 2 * 200));
}

TEST(MatrixTest, RandomFillConsistentAcrossBlocks) {
  // A block filled with global offsets matches the corresponding region of a
  // globally filled matrix — the property distributed tests rely on.
  Matrix<double> global(10, 10);
  global.fill_random(99);
  Matrix<double> block(4, 3);
  block.fill_random(99, 5, 6);
  for (i64 i = 0; i < 4; ++i)
    for (i64 j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(block(i, j), global(5 + i, 6 + j));
}

TEST(MatrixTest, CopyBlock) {
  Matrix<double> src(6, 6), dst(4, 4);
  src.fill_random(1);
  copy_block(src, 1, 2, dst, 0, 0, 3, 3);
  for (i64 i = 0; i < 3; ++i)
    for (i64 j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(dst(i, j), src(1 + i, 2 + j));
}

}  // namespace
}  // namespace ca3dmm
