// ABFT checksum codec (src/resilience/abft) and its cost-model pricing:
// exhaustive single-byte correction, documented double-corruption behavior,
// trailer-size monotonicity, the drift gate on protected runs (predicted
// virtual time and peak memory must stay EXACT with abft on), and the
// overhead bound — checksums must cost < 10% of the unprotected virtual
// time at a Fig. 3-scale shape.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "costmodel/drift.hpp"
#include "costmodel/model.hpp"
#include "resilience/abft.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm::resilience {
namespace {

using costmodel::Algo;
using costmodel::Workload;
using costmodel::check_drift;
using costmodel::predict;
using simmpi::Cluster;
using simmpi::Machine;

std::vector<unsigned char> pattern_payload(i64 bytes) {
  std::vector<unsigned char> p(static_cast<size_t>(bytes));
  for (i64 i = 0; i < bytes; ++i)
    p[static_cast<size_t>(i)] =
        static_cast<unsigned char>((i * 131 + 17) & 0xFF);
  return p;
}

TEST(AbftCodec, CleanRoundTrip) {
  for (i64 bytes : {i64{1}, i64{2}, i64{7}, i64{64}, i64{1000}, i64{4608}}) {
    std::vector<unsigned char> payload = pattern_payload(bytes);
    std::vector<unsigned char> trailer(
        static_cast<size_t>(abft_trailer_bytes(bytes)));
    abft_encode(payload.data(), bytes, trailer.data());
    const AbftDecodeResult res =
        abft_decode(payload.data(), bytes, trailer.data());
    EXPECT_EQ(res.outcome, AbftOutcome::kClean) << "bytes=" << bytes;
    EXPECT_EQ(payload, pattern_payload(bytes));
  }
}

TEST(AbftCodec, EverySingleByteFlipIsCorrectedOrAbsorbed) {
  // Exhaustive: every payload byte and every trailer byte, two masks each.
  // Payload hits must be corrected in place with the exact location and
  // delta reported; trailer hits must be absorbed with the payload intact.
  for (i64 bytes : {i64{1}, i64{5}, i64{64}, i64{1000}}) {
    const std::vector<unsigned char> ref = pattern_payload(bytes);
    const i64 tb = abft_trailer_bytes(bytes);
    std::vector<unsigned char> ref_trailer(static_cast<size_t>(tb));
    abft_encode(ref.data(), bytes, ref_trailer.data());

    for (unsigned char mask : {static_cast<unsigned char>(0x01),
                               static_cast<unsigned char>(0x80)}) {
      for (i64 pos = 0; pos < bytes + tb; ++pos) {
        SCOPED_TRACE("bytes=" + std::to_string(bytes) +
                     " pos=" + std::to_string(pos) +
                     " mask=" + std::to_string(mask));
        std::vector<unsigned char> payload = ref;
        std::vector<unsigned char> trailer = ref_trailer;
        if (pos < bytes)
          payload[static_cast<size_t>(pos)] ^= mask;
        else
          trailer[static_cast<size_t>(pos - bytes)] ^= mask;
        const AbftDecodeResult res =
            abft_decode(payload.data(), bytes, trailer.data());
        if (pos < bytes) {
          ASSERT_EQ(res.outcome, AbftOutcome::kCorrected);
          EXPECT_EQ(res.offset, pos);
          EXPECT_EQ(res.delta, mask);
        } else {
          ASSERT_EQ(res.outcome, AbftOutcome::kTrailerHit);
        }
        EXPECT_EQ(payload, ref);  // payload restored (or never corrupted)
      }
    }
  }
}

TEST(AbftCodec, DoubleCorruptionIsDetectedNotMiscorrected) {
  // Two corrupted payload bytes whose 1-based parity positions differ in
  // more than one bit can never alias to a clean, single-error, or
  // trailer-hit syndrome: the decoder must report kUncorrectable and leave
  // the payload bytes untouched beyond the injected corruption.
  const i64 bytes = 64;
  const std::vector<unsigned char> ref = pattern_payload(bytes);
  std::vector<unsigned char> trailer(
      static_cast<size_t>(abft_trailer_bytes(bytes)));
  abft_encode(ref.data(), bytes, trailer.data());

  // Positions 1 and 6 (offsets 0 and 5): three differing bits.
  {
    std::vector<unsigned char> payload = ref;
    payload[0] ^= 0x10;
    payload[5] ^= 0x10;
    const AbftDecodeResult res =
        abft_decode(payload.data(), bytes, trailer.data());
    EXPECT_EQ(res.outcome, AbftOutcome::kUncorrectable);
  }
  // Different masks at positions 1 and 9: S_all matches neither nonzero
  // positional syndrome uniformly.
  {
    std::vector<unsigned char> payload = ref;
    payload[0] ^= 0x10;
    payload[8] ^= 0x20;
    const AbftDecodeResult res =
        abft_decode(payload.data(), bytes, trailer.data());
    EXPECT_EQ(res.outcome, AbftOutcome::kUncorrectable);
  }
  // Payload byte + the X_all trailer byte: the nonzero positional
  // syndromes locate the payload byte but S_all disagrees.
  {
    std::vector<unsigned char> payload = ref;
    std::vector<unsigned char> tr = trailer;
    payload[2] ^= 0x10;
    tr[0] ^= 0x20;
    const AbftDecodeResult res = abft_decode(payload.data(), bytes, tr.data());
    EXPECT_EQ(res.outcome, AbftOutcome::kUncorrectable);
  }
}

TEST(AbftCodec, TrailerSizeIsMonotonicAndSmall) {
  EXPECT_EQ(abft_trailer_bytes(0), 0);
  i64 prev = 0;
  for (i64 bytes = 1; bytes <= (1 << 20); bytes *= 2) {
    const i64 tb = abft_trailer_bytes(bytes);
    EXPECT_GE(tb, prev);  // monotonic: max(send, recv) mirrors correctly
    prev = tb;
  }
  EXPECT_EQ(abft_trailer_bytes(4608), 14);  // the 24x24 double tile
  EXPECT_EQ(abft_trailer_elems(576, 8), 2);
  EXPECT_EQ(abft_msg_elems<double>(576), 578);
}

TEST(AbftCodec, ZeroAndEmptyPayloads) {
  // Zero-length payloads encode to an empty trailer and decode clean.
  std::vector<unsigned char> trailer(8, 0xAB);
  abft_encode(nullptr, 0, trailer.data());
  const AbftDecodeResult res = abft_decode(nullptr, 0, trailer.data());
  EXPECT_EQ(res.outcome, AbftOutcome::kClean);
  double buf[4] = {1.0, 2.0, 3.0, 4.0};
  abft_encode_msg<double>(buf, 0);  // no-op
  EXPECT_EQ(abft_decode_msg<double>(buf, 0).outcome, AbftOutcome::kClean);
}

// ---------------------------------------------------------------------------
// Cost-model integration: the drift gate must stay exact with abft on, and
// the modeled overhead must stay under 10% at paper-scale shapes.
// ---------------------------------------------------------------------------

TEST(AbftCostModel, DriftGateStaysExactWithProtectionOn) {
  // The model mirrors the enlarged messages, the staging buffers, and the
  // encode/decode scans at the engine's program points; predicted time and
  // peak memory must match the protected execution exactly.
  {
    Workload w;
    w.m = w.n = w.k = 48;
    w.force_grid = ProcGrid{2, 2, 1};
    w.abft = true;
    Cluster cl(4, Machine::unit_test());
    const auto rep = check_drift(Algo::kCa3dmm, w, cl);
    EXPECT_TRUE(rep.ok()) << rep.table();
  }
  {
    // Unforced grid with replication and k-parallelism in play.
    Workload w;
    w.m = w.n = w.k = 48;
    w.abft = true;
    Cluster cl(8, Machine::unit_test());
    const auto rep = check_drift(Algo::kCa3dmm, w, cl);
    EXPECT_TRUE(rep.ok()) << rep.table();
  }
}

TEST(AbftCostModel, OverheadUnderTenPercentAtPaperScale) {
  // Fig. 3-scale square case: checksum trailers and scans must price in at
  // under 10% of the unprotected predicted virtual time.
  Workload w;
  w.m = w.n = w.k = 50000;
  const int P = 1024;
  const Machine mach = Machine::unit_test();
  const double t_off = predict(Algo::kCa3dmm, w, P, mach).t_total;
  w.abft = true;
  const double t_on = predict(Algo::kCa3dmm, w, P, mach).t_total;
  EXPECT_GE(t_on, t_off);  // protection is never free
  EXPECT_LT(t_on, 1.10 * t_off) << "abft overhead " << (t_on / t_off - 1.0);
}

}  // namespace
}  // namespace ca3dmm::resilience
