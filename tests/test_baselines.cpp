// Baseline PGEMM implementations vs the serial reference: SUMMA, the
// COSMA-like schedule, CARMA, the CTF-like 2.5D, and the 1-D algorithms.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "baselines/cosma_like.hpp"
#include "baselines/ctf_like.hpp"
#include "baselines/oned.hpp"
#include "baselines/summa.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

constexpr std::uint64_t kSeedA = 31, kSeedB = 32;

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

using MultiplyFn = std::function<void(
    Comm&, bool, bool, const BlockLayout&, const double*, const BlockLayout&,
    const double*, const BlockLayout&, double*)>;

void run_baseline(i64 m, i64 n, i64 k, int P, bool ta, bool tb,
                  const MultiplyFn& fn) {
  Matrix<double> a(ta ? k : m, ta ? m : k), b(tb ? n : k, tb ? k : n);
  a.fill_random(kSeedA);
  b.fill_random(kSeedB);
  Matrix<double> c_ref(m, n);
  gemm_ref<double>(ta, tb, m, n, k, 1.0, a.data(), b.data(), c_ref.data());

  const BlockLayout a_lay = BlockLayout::col_1d(a.rows(), a.cols(), P);
  const BlockLayout b_lay = BlockLayout::col_1d(b.rows(), b.cols(), P);
  const BlockLayout c_lay = BlockLayout::col_1d(m, n, P);

  Cluster cl(P, Machine::unit_test());
  cl.run([&](Comm& world) {
    std::vector<double> al, bl;
    fill_local(a_lay, world.rank(), kSeedA, al);
    fill_local(b_lay, world.rank(), kSeedB, bl);
    std::vector<double> cl_buf(
        static_cast<size_t>(c_lay.local_size(world.rank())), -7.0);
    fn(world, ta, tb, a_lay, al.data(), b_lay, bl.data(), c_lay,
       cl_buf.data());
    i64 pos = 0;
    for (const Rect& r : c_lay.rects_of(world.rank()))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          ASSERT_NEAR(cl_buf[static_cast<size_t>(pos++)], c_ref(i, j),
                      1e-11 * (k + 1))
              << "(" << i << "," << j << ")";
  });
}

MultiplyFn summa_fn(i64 m, i64 n, i64 k, int P, i64 panel_kb = 0) {
  const SummaPlan plan = SummaPlan::make(m, n, k, P);
  return [plan, panel_kb](Comm& w, bool ta, bool tb, const BlockLayout& la,
                          const double* a, const BlockLayout& lb,
                          const double* b, const BlockLayout& lc, double* c) {
    summa_multiply<double>(w, plan, ta, tb, la, a, lb, b, lc, c, panel_kb);
  };
}

MultiplyFn cosma_fn(const CosmaPlan& plan) {
  return [plan](Comm& w, bool ta, bool tb, const BlockLayout& la,
                const double* a, const BlockLayout& lb, const double* b,
                const BlockLayout& lc, double* c) {
    cosma_multiply<double>(w, plan, ta, tb, la, a, lb, b, lc, c);
  };
}

// ---------------- SUMMA ----------------

TEST(Summa, Square) { run_baseline(24, 24, 24, 4, false, false, summa_fn(24, 24, 24, 4)); }

TEST(Summa, RectangularGridUnalignedPanels) {
  // pr=3, pc=2-ish grids: A and B k-partitions differ -> interval walking.
  run_baseline(30, 20, 50, 6, false, false, summa_fn(30, 20, 50, 6));
}

TEST(Summa, UnevenBlocks) {
  run_baseline(37, 29, 53, 6, false, false, summa_fn(37, 29, 53, 6));
}

TEST(Summa, Transposes) {
  run_baseline(30, 40, 24, 4, true, false, summa_fn(30, 40, 24, 4));
  run_baseline(30, 40, 24, 4, false, true, summa_fn(30, 40, 24, 4));
  run_baseline(30, 40, 24, 4, true, true, summa_fn(30, 40, 24, 4));
}

TEST(Summa, PanelBlocking) {
  run_baseline(24, 24, 64, 4, false, false, summa_fn(24, 24, 64, 4, 8));
}

TEST(Summa, IdleRanksWithPrimeP) {
  run_baseline(24, 24, 24, 5, false, false, summa_fn(24, 24, 24, 5));
}

TEST(Summa, SingleProcess) {
  run_baseline(9, 7, 11, 1, false, false, summa_fn(9, 7, 11, 1));
}

TEST(Summa, PlanHasNoKParallelism) {
  const SummaPlan p = SummaPlan::make(100, 100, 100000, 16);
  EXPECT_EQ(p.active(), 16);  // still a 2-D grid, k never partitioned
  EXPECT_TRUE(p.a_native().covers_exactly());
  EXPECT_TRUE(p.b_native().covers_exactly());
  EXPECT_TRUE(p.c_native().covers_exactly());
}

// ---------------- COSMA-like ----------------

TEST(CosmaLike, StrategyExample2) {
  // Paper §III-C: m=n=32, k=64, grid 2x2x4 -> steps k/4, m/2, n/2.
  const CosmaPlan p = CosmaPlan::make(32, 32, 64, 16);
  ASSERT_EQ(p.grid(), (ProcGrid{2, 2, 4}));
  ASSERT_EQ(p.steps().size(), 3u);
  EXPECT_EQ(p.steps()[0].dim, 'k');
  EXPECT_EQ(p.steps()[0].ways, 4);
  EXPECT_EQ(p.steps()[1].dim, 'm');
  EXPECT_EQ(p.steps()[2].dim, 'n');
}

TEST(CosmaLike, LayoutsCoverExactly) {
  for (auto [m, n, k, P] : {std::tuple<i64, i64, i64, int>{32, 32, 64, 16},
                            {37, 29, 53, 12},
                            {12, 12, 400, 8},
                            {400, 12, 12, 8},
                            {40, 40, 40, 7}}) {
    const CosmaPlan p = CosmaPlan::make(m, n, k, P);
    EXPECT_TRUE(p.a_native().covers_exactly()) << m << "," << n << "," << k;
    EXPECT_TRUE(p.b_native().covers_exactly());
    EXPECT_TRUE(p.c_native().covers_exactly());
  }
}

TEST(CosmaLike, CorrectAcrossShapes) {
  for (auto [m, n, k, P] : {std::tuple<i64, i64, i64, int>{32, 32, 64, 16},
                            {37, 29, 53, 12},
                            {12, 12, 200, 8},
                            {200, 12, 12, 8},
                            {80, 80, 9, 8},
                            {40, 40, 40, 7}}) {
    run_baseline(m, n, k, P, false, false,
                 cosma_fn(CosmaPlan::make(m, n, k, P)));
  }
}

TEST(CosmaLike, Transposes) {
  run_baseline(30, 40, 24, 8, true, true,
               cosma_fn(CosmaPlan::make(30, 40, 24, 8)));
}

// ---------------- CARMA ----------------

TEST(Carma, RequiresPowerOfTwo) {
  EXPECT_THROW(CosmaPlan::make_carma(10, 10, 10, 12), Error);
}

TEST(Carma, BisectsLargestDimension) {
  const CosmaPlan p = CosmaPlan::make_carma(32, 32, 256, 8);
  // k is largest: first (and likely all) bisections split k.
  EXPECT_EQ(p.steps()[0].dim, 'k');
  EXPECT_EQ(p.grid().pk, 8);
}

TEST(Carma, CorrectAcrossShapes) {
  for (auto [m, n, k, P] : {std::tuple<i64, i64, i64, int>{32, 32, 64, 8},
                            {37, 29, 53, 16},
                            {12, 12, 200, 8},
                            {100, 30, 14, 4}}) {
    run_baseline(m, n, k, P, false, false,
                 cosma_fn(CosmaPlan::make_carma(m, n, k, P)));
  }
}

// ---------------- CTF-like ----------------

TEST(CtfLike, Correct) {
  const CtfPlan plan = CtfPlan::make(30, 30, 60, 8);
  run_baseline(30, 30, 60, 8, false, false,
               [&](Comm& w, bool ta, bool tb, const BlockLayout& la,
                   const double* a, const BlockLayout& lb, const double* b,
                   const BlockLayout& lc, double* c) {
                 ctf_multiply<double>(w, plan, ta, tb, la, a, lb, b, lc, c);
               });
}

TEST(CtfLike, GridIsShapeOblivious) {
  const CtfPlan a = CtfPlan::make(10000, 10000, 300000, 16);
  const CtfPlan b = CtfPlan::make(300000, 10000, 10000, 16);
  EXPECT_EQ(a.inner.grid(), b.inner.grid());
}

// ---------------- 1-D algorithms ----------------

TEST(OneD, MPartitioned) {
  const CosmaPlan p = oned_m_plan(64, 12, 12, 8);
  EXPECT_EQ(p.grid(), (ProcGrid{8, 1, 1}));
  run_baseline(64, 12, 12, 8, false, false, cosma_fn(p));
}

TEST(OneD, NPartitioned) {
  const CosmaPlan p = oned_n_plan(12, 64, 12, 8);
  EXPECT_EQ(p.grid(), (ProcGrid{1, 8, 1}));
  run_baseline(12, 64, 12, 8, false, false, cosma_fn(p));
}

TEST(OneD, KPartitioned) {
  const CosmaPlan p = oned_k_plan(12, 12, 256, 8);
  EXPECT_EQ(p.grid(), (ProcGrid{1, 1, 8}));
  run_baseline(12, 12, 256, 8, false, false, cosma_fn(p));
}

TEST(OneD, ClampsToDimension) {
  EXPECT_EQ(oned_m_plan(3, 100, 100, 8).grid().pm, 3);
}

}  // namespace
}  // namespace ca3dmm
