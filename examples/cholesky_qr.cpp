// CholeskyQR of a tall-and-skinny matrix — the paper's large-K use case.
//
// CholeskyQR factorizes a tall matrix A (m >> n) as A = Q R via
//
//     G = A^T A          (an n x n Gram matrix: the "large-K" PGEMM class,
//                         k = m >> n; §IV-A cites CholeskyQR and
//                         Rayleigh-Ritz projection as the source of these
//                         shapes)
//     G = R^T R          (Cholesky, tiny and local)
//     Q = A R^{-1}       (triangular solve applied to the local row panel)
//
// The A^T A product exercises CA3DMM's transpose-on-redistribution path and
// a grid with deep k-parallelism. Orthogonality ||Q^T Q - I||_F validates
// the whole pipeline end to end.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ca3dmm.hpp"
#include "engine/engine.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

using namespace ca3dmm;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

namespace {

/// Dense Cholesky G = R^T R (upper R), in place on a row-major n x n matrix.
/// Returns false if G is not positive definite.
bool cholesky_upper(std::vector<double>& g, i64 n) {
  for (i64 i = 0; i < n; ++i) {
    for (i64 j = 0; j < i; ++j) g[static_cast<size_t>(i * n + j)] = 0.0;
    double d = g[static_cast<size_t>(i * n + i)];
    for (i64 p = 0; p < i; ++p) {
      const double r = g[static_cast<size_t>(p * n + i)];
      d -= r * r;
    }
    if (d <= 0) return false;
    const double rii = std::sqrt(d);
    g[static_cast<size_t>(i * n + i)] = rii;
    for (i64 j = i + 1; j < n; ++j) {
      double v = g[static_cast<size_t>(i * n + j)];
      for (i64 p = 0; p < i; ++p)
        v -= g[static_cast<size_t>(p * n + i)] * g[static_cast<size_t>(p * n + j)];
      g[static_cast<size_t>(i * n + j)] = v / rii;
    }
  }
  return true;
}

/// Solves x R = b for one row (row-major upper triangular R), i.e. applies
/// R^{-1} from the right.
void trsm_row(const std::vector<double>& r, i64 n, double* row) {
  for (i64 j = 0; j < n; ++j) {
    double v = row[j];
    for (i64 p = 0; p < j; ++p) v -= row[p] * r[static_cast<size_t>(p * n + j)];
    row[j] = v / r[static_cast<size_t>(j * n + j)];
  }
}

}  // namespace

int main() {
  const i64 m = 6000, n = 24;  // tall and skinny
  const int P = 16;

  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;

  // A is stored row-partitioned (each rank owns a panel of rows), the
  // natural layout for tall matrices.
  const BlockLayout a_layout = BlockLayout::row_1d(m, n, P);
  // G = A^T x A: logical dimensions (n x n) with k = m.
  const BlockLayout g_layout = BlockLayout::single(n, n, 0, P);

  const Ca3dmmPlan plan = Ca3dmmPlan::make(n, n, m, P);
  std::printf("CholeskyQR: A is %lld x %lld, P=%d\n",
              static_cast<long long>(m), static_cast<long long>(n), P);
  std::printf("Gram-matrix PGEMM grid pm x pn x pk = %d x %d x %d "
              "(deep k-parallelism, as expected for large-K)\n",
              plan.grid().pm, plan.grid().pn, plan.grid().pk);

  double orth_err = -1, repr_err = -1;
  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    const int me = world.rank();
    // Local row panel of A.
    const Range rows = a_layout.rects_of(me).empty()
                           ? Range{0, 0}
                           : a_layout.rects_of(me)[0].r;
    std::vector<double> a(static_cast<size_t>(rows.size() * n));
    for (i64 i = rows.lo; i < rows.hi; ++i)
      for (i64 j = 0; j < n; ++j)
        a[static_cast<size_t>((i - rows.lo) * n + j)] =
            matrix_entry<double>(9, i, j) + (j == i % n ? 2.0 : 0.0);

    // Both Gram-type products (G = A^T A here, Q^T Q below) share one shape,
    // so the second engine request reuses the first one's plan and
    // communicators.
    engine::PgemmEngine eng(world);
    engine::Request<double> gram;
    gram.m = n;
    gram.n = n;
    gram.k = m;
    gram.trans_a = true;
    gram.a_layout = &a_layout;
    gram.a = a.data();
    gram.b_layout = &a_layout;
    gram.b = a.data();
    gram.c_layout = &g_layout;

    // G = A^T * A, gathered to rank 0 then broadcast (G is tiny).
    std::vector<double> g(static_cast<size_t>(g_layout.local_size(me)));
    gram.c = g.data();
    eng.multiply(gram);
    std::vector<double> r(static_cast<size_t>(n * n));
    if (me == 0) r = g;
    world.bcast(r.data(), n * n, 0);

    // Cholesky + triangular solve are local (G is n x n).
    const bool ok = cholesky_upper(r, n);
    CA_REQUIRE(ok, "Gram matrix not positive definite");
    for (i64 i = 0; i < rows.size(); ++i)
      trsm_row(r, n, a.data() + i * n);

    // Verify: Q^T Q = I via a second large-K PGEMM — a plan-cache hit.
    std::vector<double> qtq(static_cast<size_t>(g_layout.local_size(me)));
    gram.c = qtq.data();
    eng.multiply(gram);
    if (me == 0) {
      double e2 = 0;
      for (i64 i = 0; i < n; ++i)
        for (i64 j = 0; j < n; ++j) {
          const double d =
              qtq[static_cast<size_t>(i * n + j)] - (i == j ? 1.0 : 0.0);
          e2 += d * d;
        }
      orth_err = std::sqrt(e2);
      // Representation error: ||R|| sanity (diagonal positive).
      repr_err = 0;
      for (i64 i = 0; i < n; ++i)
        repr_err = std::max(repr_err, -r[static_cast<size_t>(i * n + i)]);
    }
  });

  const auto agg = cl.aggregate_stats();
  std::printf("||Q^T Q - I||_F = %.3e\n", orth_err);
  std::printf("simulated time for both PGEMMs: %.3f ms\n", agg.vtime * 1e3);
  const bool pass = orth_err >= 0 && orth_err < 1e-10 && repr_err <= 0;
  std::printf("CholeskyQR %s\n", pass ? "PASSED" : "FAILED");
  return pass ? 0 : 1;
}
