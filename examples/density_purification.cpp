// Density-matrix purification with repeated square PGEMMs.
//
// The paper's original motivation is the SPARC density functional theory
// code, where CA3DMM serves "repeated matrix multiplications in density
// matrix purification" (§V, citing Palser & Manolopoulos). This example runs
// McWeeny purification,
//
//     X_{t+1} = 3 X_t^2 - 2 X_t^3,
//
// on a distributed symmetric trial density matrix whose eigenvalues lie in
// (0, 1). Each iteration uses two CA3DMM multiplications (X^2 = X*X, then
// X^3 = X^2 * X) — the square problem class of the paper's evaluation, and
// exactly the iterative workload the persistent PgemmEngine exists for: the
// 24 multiplies share one shape, so after the first call every request hits
// the plan cache and reuses its communicators and pooled work buffers. The
// iteration drives every eigenvalue to 0 or 1, so idempotency error
// ||X^2 - X||_F -> 0 and trace(X) -> the number of "occupied states".
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ca3dmm.hpp"
#include "engine/engine.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

using namespace ca3dmm;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

namespace {

/// Builds the trial density matrix: diagonal values cluster half the
/// spectrum near 0.85 ("occupied") and half near 0.15 ("virtual"), plus
/// small symmetric noise; Gershgorin keeps all eigenvalues inside (0, 1) and
/// away from McWeeny's unstable fixed point at 1/2, so purification drives
/// them quadratically to 1 and 0. trace(X) converges to n/2 occupied states.
double x0_entry(i64 i, i64 j, i64 n) {
  const double noise = 0.2 / static_cast<double>(n);
  const double sym = matrix_entry<double>(77, std::min(i, j), std::max(i, j));
  const double diag = (i < n / 2) ? 0.85 : 0.15;
  return (i == j ? diag : 0.0) + noise * sym;
}

}  // namespace

int main() {
  const i64 n = 160;
  const int P = 12;
  const int iterations = 12;

  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;  // three simulated nodes
  mach.cores_per_node = 4;

  // The application's layout: 2-D grid blocks, as a DFT code would use.
  const BlockLayout lay = BlockLayout::grid_2d(n, n, 3, 4);
  const Ca3dmmPlan plan = Ca3dmmPlan::make(n, n, n, P);
  std::printf("McWeeny purification, n=%lld, P=%d, grid %d x %d x %d\n",
              static_cast<long long>(n), P, plan.grid().pm, plan.grid().pn,
              plan.grid().pk);

  Cluster cl(P, mach);
  std::vector<double> history_idem(static_cast<size_t>(iterations), 0.0);
  std::vector<double> history_trace(static_cast<size_t>(iterations), 0.0);
  engine::EngineStats engine_stats;

  cl.run([&](Comm& world) {
    const int me = world.rank();
    const i64 local = lay.local_size(me);
    std::vector<double> x(static_cast<size_t>(local));
    {
      i64 pos = 0;
      for (const Rect& r : lay.rects_of(me))
        for (i64 i = r.r.lo; i < r.r.hi; ++i)
          for (i64 j = r.c.lo; j < r.c.hi; ++j)
            x[static_cast<size_t>(pos++)] = x0_entry(i, j, n);
    }
    std::vector<double> x2(static_cast<size_t>(local)),
        x3(static_cast<size_t>(local));

    // One persistent engine serves the whole purification loop: the plan
    // and its communicators are built once, every later multiply hits the
    // cache, and work buffers are recycled through the pool.
    engine::PgemmEngine eng(world);
    engine::Request<double> sq;  // X2 = X * X
    sq.m = sq.n = sq.k = n;
    sq.a_layout = sq.b_layout = sq.c_layout = &lay;
    sq.a = x.data();
    sq.b = x.data();
    sq.c = x2.data();
    engine::Request<double> cube = sq;  // X3 = X2 * X
    cube.a = x2.data();
    cube.c = x3.data();

    for (int t = 0; t < iterations; ++t) {
      eng.multiply(sq);
      eng.multiply(cube);

      // Local diagnostics, combined with a small allreduce.
      double loc[2] = {0.0, 0.0};  // ||X^2-X||_F^2 contribution, trace(Xnew)
      i64 pos = 0;
      for (const Rect& r : lay.rects_of(me))
        for (i64 i = r.r.lo; i < r.r.hi; ++i)
          for (i64 j = r.c.lo; j < r.c.hi; ++j, ++pos) {
            const double d = x2[static_cast<size_t>(pos)] -
                             x[static_cast<size_t>(pos)];
            loc[0] += d * d;
            const double xnew = 3.0 * x2[static_cast<size_t>(pos)] -
                                2.0 * x3[static_cast<size_t>(pos)];
            x[static_cast<size_t>(pos)] = xnew;
            if (i == j) loc[1] += xnew;
          }
      double glob[2] = {0.0, 0.0};
      world.allreduce(loc, glob, 2);
      if (me == 0) {
        history_idem[static_cast<size_t>(t)] = std::sqrt(glob[0]);
        history_trace[static_cast<size_t>(t)] = glob[1];
      }
    }
    if (me == 0) engine_stats = eng.stats();
  });

  std::printf("\n iter   ||X^2 - X||_F      trace(X)\n");
  for (int t = 0; t < iterations; ++t)
    std::printf("  %2d    %12.6e   %10.4f\n", t,
                history_idem[static_cast<size_t>(t)],
                history_trace[static_cast<size_t>(t)]);

  const auto agg = cl.aggregate_stats();
  std::printf("\nsimulated time for %d purification iterations: %.3f ms\n",
              iterations, agg.vtime * 1e3);
  std::printf(
      "engine: %lld multiplies, plan-cache hit rate %.0f%%, pool hit rate "
      "%.0f%%\n",
      static_cast<long long>(engine_stats.requests),
      engine_stats.plan_hit_rate() * 100, engine_stats.pool.hit_rate() * 100);

  const bool converged = history_idem.back() < 1e-8;
  std::printf("purification %s (idempotency residual %.2e)\n",
              converged ? "converged" : "DID NOT converge",
              history_idem.back());
  return converged ? 0 : 1;
}
