// Partition gallery: prints the library-native matrix distributions for the
// paper's Fig. 2 examples (and a replicated-grid case) as ASCII ownership
// maps, so the initial/final partitionings can be inspected visually.
//
// Each cell of a map shows the rank (1-based, like the paper's P1..P16) that
// owns the corresponding matrix block region.
#include <cstdio>
#include <string>
#include <vector>

#include "core/plan.hpp"

using namespace ca3dmm;

namespace {

/// Renders ownership of an (rows x cols) layout as a character grid sampled
/// at block resolution `cell` (each map cell covers cell x cell elements).
void print_map(const char* title, const BlockLayout& lay, i64 cell) {
  std::printf("%s (%lld x %lld)\n", title, static_cast<long long>(lay.rows()),
              static_cast<long long>(lay.cols()));
  // Element -> owner lookup.
  std::vector<int> owner(static_cast<size_t>(lay.rows() * lay.cols()), -1);
  for (int r = 0; r < lay.nranks(); ++r)
    for (const Rect& rect : lay.rects_of(r))
      for (i64 i = rect.r.lo; i < rect.r.hi; ++i)
        for (i64 j = rect.c.lo; j < rect.c.hi; ++j)
          owner[static_cast<size_t>(i * lay.cols() + j)] = r;
  for (i64 i = 0; i < lay.rows(); i += cell) {
    std::printf("  ");
    for (i64 j = 0; j < lay.cols(); j += cell) {
      const int o = owner[static_cast<size_t>(i * lay.cols() + j)];
      if (o < 0)
        std::printf("  . ");
      else
        std::printf(" P%-2d", o + 1);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void show_example(const char* name, i64 m, i64 n, i64 k, int P, i64 cell) {
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P);
  std::printf("=== %s: m=%lld k=%lld n=%lld, P=%d -> grid pm=%d pk=%d pn=%d "
              "(c=%d, s=%d%s) ===\n\n",
              name, static_cast<long long>(m), static_cast<long long>(k),
              static_cast<long long>(n), P, plan.grid().pm, plan.grid().pk,
              plan.grid().pn, plan.c(), plan.s(),
              plan.c() > 1
                  ? (plan.replicates_a() ? ", A replicated" : ", B replicated")
                  : "");
  print_map("initial A distribution", plan.a_native(), cell);
  print_map("initial B distribution", plan.b_native(), cell);
  print_map("final C distribution", plan.c_native(), cell);
}

}  // namespace

int main() {
  // Paper Fig. 2a: the 2D fallback with A replication.
  show_example("Example 1 (Fig. 2a)", 32, 64, 16, 8, 4);
  // Paper Fig. 2b: 2x2x4 grid, reduce-scatter column split of C.
  show_example("Example 2 (Fig. 2b)", 32, 32, 64, 16, 4);
  // Paper Example 3: prime P, one idle process.
  show_example("Example 3 (prime P)", 32, 32, 64, 17, 4);
  // A deeper-replication case not shown in the paper.
  show_example("High replication (forced by shape)", 8, 64, 32, 16, 4);
  return 0;
}
