// Quickstart: multiply two distributed matrices with CA3DMM.
//
// Mirrors the paper artifact's example_AB driver: builds a simulated
// cluster, distributes A and B in 1-D column layout (a typical application
// layout), runs C = A x B, validates the result against a serial reference,
// and prints the partition info and per-phase timing summary the paper's
// example program emits.
#include <cstdio>
#include <vector>

#include "core/ca3dmm.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

using namespace ca3dmm;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;
using simmpi::Phase;

int main() {
  const i64 m = 240, n = 200, k = 280;
  const int P = 24;  // simulated MPI ranks (one core each)

  // A machine resembling one PACE-Phoenix node (24 cores).
  Machine mach = Machine::phoenix_mpi();

  // The caller's distributions: 1-D column partitions, like the paper's
  // example program.
  const BlockLayout a_layout = BlockLayout::col_1d(m, k, P);
  const BlockLayout b_layout = BlockLayout::col_1d(k, n, P);
  const BlockLayout c_layout = BlockLayout::col_1d(m, n, P);

  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P);
  std::printf("Test problem size m * n * k : %lld * %lld * %lld\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(k));
  std::printf("Process grid  pm * pn * pk  : %d * %d * %d\n", plan.grid().pm,
              plan.grid().pn, plan.grid().pk);
  std::printf("Process utilization         : %.2f %%\n",
              100.0 * plan.active() / P);
  std::printf("Comm. volume / lower bound  : %.2f\n",
              plan.comm_volume_per_rank() / plan.volume_lower_bound());

  // Serial reference for validation.
  Matrix<double> a_ref(m, k), b_ref(k, n), c_ref(m, n);
  a_ref.fill_random(1);
  b_ref.fill_random(2);
  gemm_ref<double>(false, false, m, n, k, 1.0, a_ref.data(), b_ref.data(),
                   c_ref.data());

  Cluster cl(P, mach);
  int errors = 0;
  cl.run([&](Comm& world) {
    const int me = world.rank();
    // Each rank fills only the part it owns.
    auto fill = [&](const BlockLayout& lay, const Matrix<double>& src,
                    std::vector<double>& buf) {
      buf.assign(static_cast<size_t>(lay.local_size(me)), 0.0);
      i64 pos = 0;
      for (const Rect& r : lay.rects_of(me))
        for (i64 i = r.r.lo; i < r.r.hi; ++i)
          for (i64 j = r.c.lo; j < r.c.hi; ++j)
            buf[static_cast<size_t>(pos++)] = src(i, j);
    };
    std::vector<double> a, b;
    fill(a_layout, a_ref, a);
    fill(b_layout, b_ref, b);
    std::vector<double> c(static_cast<size_t>(c_layout.local_size(me)));

    ca3dmm_multiply<double>(world, plan, false, false, a_layout, a.data(),
                            b_layout, b.data(), c_layout, c.data());

    // Validate my C slice.
    i64 pos = 0;
    int my_errors = 0;
    for (const Rect& r : c_layout.rects_of(me))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          if (std::abs(c[static_cast<size_t>(pos++)] - c_ref(i, j)) >
              1e-10 * k)
            my_errors++;
    if (my_errors) {
      std::fprintf(stderr, "rank %d: %d errors\n", me, my_errors);
    }
    errors += my_errors;  // ranks share the address space; benign here
  });

  const auto agg = cl.aggregate_stats();
  std::printf("\n---- simulated timing (max over ranks) ----\n");
  std::printf("* Execution time      : %8.3f ms\n", agg.vtime * 1e3);
  std::printf("* Redistribute A,B,C  : %8.3f ms\n",
              agg.phase(Phase::kRedistribute) * 1e3);
  std::printf("* Allgather A or B    : %8.3f ms\n",
              agg.phase(Phase::kReplicate) * 1e3);
  std::printf("* 2D Cannon execution : %8.3f ms\n",
              agg.phase(Phase::kShift) * 1e3);
  std::printf("* Local GEMM          : %8.3f ms\n",
              agg.phase(Phase::kCompute) * 1e3);
  std::printf("* Reduce-scatter C    : %8.3f ms\n",
              agg.phase(Phase::kReduce) * 1e3);
  std::printf("\nCA3DMM output : %d error(s)\n", errors);
  return errors == 0 ? 0 : 1;
}
