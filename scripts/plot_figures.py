#!/usr/bin/env python3
"""Render the figure CSVs emitted by the bench binaries as ASCII charts.

Dependency-free (stdlib only), so it runs on the same offline box that
builds the library:

    ./build/bench/bench_fig3_strong_scaling   # writes fig3_*.csv
    ./build/bench/bench_fig4_hybrid           # writes fig4_hybrid.csv
    python3 scripts/plot_figures.py

For publication-quality plots, load the same CSVs in matplotlib/gnuplot —
columns are (class, P, algo, pct_peak, seconds) for Fig. 3 and
(class, cores, ca3dmm_pure_s, ca3dmm_hybrid_s, cosma_pure_s, cosma_hybrid_s)
for Fig. 4.
"""

import csv
import os
import sys
from collections import defaultdict

WIDTH = 60
HEIGHT = 14
MARKS = {"CA3DMM": "*", "COSMA": "o", "CTF": "x"}


def ascii_chart(title, series, ylabel, ymax=None):
    """series: {label: [(x, y), ...]} with shared x values."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    ys = [y for pts in series.values() for _, y in pts]
    if not ys:
        return
    top = ymax if ymax else max(ys) * 1.05
    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    # Draw CA3DMM last so its marker wins where series overlap.
    for label in sorted(series, key=lambda l: l == "CA3DMM"):
        pts = series[label]
        mark = MARKS.get(label, "+")
        for x, y in pts:
            col = int((xs.index(x) / max(1, len(xs) - 1)) * (WIDTH - 1))
            row = HEIGHT - 1 - int(min(y / top, 1.0) * (HEIGHT - 1))
            grid[row][col] = mark
    print(f"\n{title}")
    print(f"  {ylabel} (top = {top:.1f})")
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * WIDTH)
    labels = "  P: " + "  ".join(str(x) for x in xs)
    print(labels)
    print("  " + "  ".join(f"{m}={l}" for l, m in MARKS.items()
                           if l in series))


def plot_fig3(path, title):
    if not os.path.exists(path):
        print(f"({path} not found — run bench_fig3_strong_scaling first)")
        return
    data = defaultdict(lambda: defaultdict(list))  # class -> algo -> pts
    with open(path) as f:
        for row in csv.DictReader(f):
            data[row["class"]][row["algo"]].append(
                (int(row["P"]), float(row["pct_peak"])))
    for cls, series in data.items():
        ascii_chart(f"{title} — {cls.strip()}", series, "% of peak",
                    ymax=80.0)


def plot_fig4(path):
    if not os.path.exists(path):
        print(f"({path} not found — run bench_fig4_hybrid first)")
        return
    data = defaultdict(lambda: defaultdict(list))
    with open(path) as f:
        for row in csv.DictReader(f):
            cores = int(row["cores"])
            data[row["class"]]["CA3DMM"].append(
                (cores, float(row["ca3dmm_hybrid_s"]) /
                 float(row["ca3dmm_pure_s"])))
            data[row["class"]]["COSMA"].append(
                (cores, float(row["cosma_hybrid_s"]) /
                 float(row["cosma_pure_s"])))
    for cls, series in data.items():
        ascii_chart(f"Fig. 4 — {cls.strip()} (hybrid/pure runtime ratio; "
                    "<1 means hybrid wins)", series, "ratio", ymax=1.3)


def main():
    base = sys.argv[1] if len(sys.argv) > 1 else "."
    plot_fig3(os.path.join(base, "fig3_native_layout.csv"),
              "Fig. 3 (native layout)")
    plot_fig3(os.path.join(base, "fig3_custom_layout.csv"),
              "Fig. 3 (custom 1-D layout)")
    plot_fig4(os.path.join(base, "fig4_hybrid.csv"))


if __name__ == "__main__":
    main()
