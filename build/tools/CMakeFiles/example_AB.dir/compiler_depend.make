# Empty compiler generated dependencies file for example_AB.
# This may be replaced when dependencies are built.
