file(REMOVE_RECURSE
  "CMakeFiles/example_AB.dir/example_AB.cpp.o"
  "CMakeFiles/example_AB.dir/example_AB.cpp.o.d"
  "example_AB"
  "example_AB.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_AB.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
