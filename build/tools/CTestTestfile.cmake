# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_example_AB "/root/repo/build/tools/example_AB" "8" "96" "80" "112" "0" "1" "1" "2" "0")
set_tests_properties(tool_example_AB PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
