file(REMOVE_RECURSE
  "CMakeFiles/ca_core.dir/ca3dmm.cpp.o"
  "CMakeFiles/ca_core.dir/ca3dmm.cpp.o.d"
  "CMakeFiles/ca_core.dir/engine2d.cpp.o"
  "CMakeFiles/ca_core.dir/engine2d.cpp.o.d"
  "CMakeFiles/ca_core.dir/grid_solver.cpp.o"
  "CMakeFiles/ca_core.dir/grid_solver.cpp.o.d"
  "CMakeFiles/ca_core.dir/plan.cpp.o"
  "CMakeFiles/ca_core.dir/plan.cpp.o.d"
  "libca_core.a"
  "libca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
