
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ca3dmm.cpp" "src/core/CMakeFiles/ca_core.dir/ca3dmm.cpp.o" "gcc" "src/core/CMakeFiles/ca_core.dir/ca3dmm.cpp.o.d"
  "/root/repo/src/core/engine2d.cpp" "src/core/CMakeFiles/ca_core.dir/engine2d.cpp.o" "gcc" "src/core/CMakeFiles/ca_core.dir/engine2d.cpp.o.d"
  "/root/repo/src/core/grid_solver.cpp" "src/core/CMakeFiles/ca_core.dir/grid_solver.cpp.o" "gcc" "src/core/CMakeFiles/ca_core.dir/grid_solver.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/ca_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/ca_core.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/ca_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ca_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ca_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
