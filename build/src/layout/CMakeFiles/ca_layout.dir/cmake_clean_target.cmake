file(REMOVE_RECURSE
  "libca_layout.a"
)
