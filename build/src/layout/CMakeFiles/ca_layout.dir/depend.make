# Empty dependencies file for ca_layout.
# This may be replaced when dependencies are built.
