file(REMOVE_RECURSE
  "CMakeFiles/ca_layout.dir/block_layout.cpp.o"
  "CMakeFiles/ca_layout.dir/block_layout.cpp.o.d"
  "CMakeFiles/ca_layout.dir/redistribute.cpp.o"
  "CMakeFiles/ca_layout.dir/redistribute.cpp.o.d"
  "libca_layout.a"
  "libca_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
