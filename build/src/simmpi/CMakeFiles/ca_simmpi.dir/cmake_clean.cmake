file(REMOVE_RECURSE
  "CMakeFiles/ca_simmpi.dir/cluster.cpp.o"
  "CMakeFiles/ca_simmpi.dir/cluster.cpp.o.d"
  "CMakeFiles/ca_simmpi.dir/coll_cost.cpp.o"
  "CMakeFiles/ca_simmpi.dir/coll_cost.cpp.o.d"
  "CMakeFiles/ca_simmpi.dir/comm.cpp.o"
  "CMakeFiles/ca_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/ca_simmpi.dir/machine.cpp.o"
  "CMakeFiles/ca_simmpi.dir/machine.cpp.o.d"
  "libca_simmpi.a"
  "libca_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
