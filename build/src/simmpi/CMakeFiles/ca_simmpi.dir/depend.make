# Empty dependencies file for ca_simmpi.
# This may be replaced when dependencies are built.
