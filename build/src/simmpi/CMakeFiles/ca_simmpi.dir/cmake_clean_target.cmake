file(REMOVE_RECURSE
  "libca_simmpi.a"
)
