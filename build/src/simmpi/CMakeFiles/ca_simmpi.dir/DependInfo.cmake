
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/cluster.cpp" "src/simmpi/CMakeFiles/ca_simmpi.dir/cluster.cpp.o" "gcc" "src/simmpi/CMakeFiles/ca_simmpi.dir/cluster.cpp.o.d"
  "/root/repo/src/simmpi/coll_cost.cpp" "src/simmpi/CMakeFiles/ca_simmpi.dir/coll_cost.cpp.o" "gcc" "src/simmpi/CMakeFiles/ca_simmpi.dir/coll_cost.cpp.o.d"
  "/root/repo/src/simmpi/comm.cpp" "src/simmpi/CMakeFiles/ca_simmpi.dir/comm.cpp.o" "gcc" "src/simmpi/CMakeFiles/ca_simmpi.dir/comm.cpp.o.d"
  "/root/repo/src/simmpi/machine.cpp" "src/simmpi/CMakeFiles/ca_simmpi.dir/machine.cpp.o" "gcc" "src/simmpi/CMakeFiles/ca_simmpi.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
