file(REMOVE_RECURSE
  "libca_common.a"
)
