file(REMOVE_RECURSE
  "CMakeFiles/ca_common.dir/partition.cpp.o"
  "CMakeFiles/ca_common.dir/partition.cpp.o.d"
  "CMakeFiles/ca_common.dir/table.cpp.o"
  "CMakeFiles/ca_common.dir/table.cpp.o.d"
  "libca_common.a"
  "libca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
