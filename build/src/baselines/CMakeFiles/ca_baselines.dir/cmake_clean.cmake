file(REMOVE_RECURSE
  "CMakeFiles/ca_baselines.dir/cosma_like.cpp.o"
  "CMakeFiles/ca_baselines.dir/cosma_like.cpp.o.d"
  "CMakeFiles/ca_baselines.dir/ctf_like.cpp.o"
  "CMakeFiles/ca_baselines.dir/ctf_like.cpp.o.d"
  "CMakeFiles/ca_baselines.dir/p25d.cpp.o"
  "CMakeFiles/ca_baselines.dir/p25d.cpp.o.d"
  "CMakeFiles/ca_baselines.dir/summa.cpp.o"
  "CMakeFiles/ca_baselines.dir/summa.cpp.o.d"
  "libca_baselines.a"
  "libca_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
