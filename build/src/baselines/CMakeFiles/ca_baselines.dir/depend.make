# Empty dependencies file for ca_baselines.
# This may be replaced when dependencies are built.
