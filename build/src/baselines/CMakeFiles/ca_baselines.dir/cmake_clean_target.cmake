file(REMOVE_RECURSE
  "libca_baselines.a"
)
