
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cosma_like.cpp" "src/baselines/CMakeFiles/ca_baselines.dir/cosma_like.cpp.o" "gcc" "src/baselines/CMakeFiles/ca_baselines.dir/cosma_like.cpp.o.d"
  "/root/repo/src/baselines/ctf_like.cpp" "src/baselines/CMakeFiles/ca_baselines.dir/ctf_like.cpp.o" "gcc" "src/baselines/CMakeFiles/ca_baselines.dir/ctf_like.cpp.o.d"
  "/root/repo/src/baselines/p25d.cpp" "src/baselines/CMakeFiles/ca_baselines.dir/p25d.cpp.o" "gcc" "src/baselines/CMakeFiles/ca_baselines.dir/p25d.cpp.o.d"
  "/root/repo/src/baselines/summa.cpp" "src/baselines/CMakeFiles/ca_baselines.dir/summa.cpp.o" "gcc" "src/baselines/CMakeFiles/ca_baselines.dir/summa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ca_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ca_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/ca_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
