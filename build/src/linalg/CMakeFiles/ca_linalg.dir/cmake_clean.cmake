file(REMOVE_RECURSE
  "CMakeFiles/ca_linalg.dir/gemm.cpp.o"
  "CMakeFiles/ca_linalg.dir/gemm.cpp.o.d"
  "libca_linalg.a"
  "libca_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
