file(REMOVE_RECURSE
  "libca_linalg.a"
)
