# Empty compiler generated dependencies file for ca_linalg.
# This may be replaced when dependencies are built.
