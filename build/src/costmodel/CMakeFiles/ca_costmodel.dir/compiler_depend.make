# Empty compiler generated dependencies file for ca_costmodel.
# This may be replaced when dependencies are built.
