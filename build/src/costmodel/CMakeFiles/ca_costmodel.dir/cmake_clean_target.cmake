file(REMOVE_RECURSE
  "libca_costmodel.a"
)
