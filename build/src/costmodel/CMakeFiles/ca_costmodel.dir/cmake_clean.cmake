file(REMOVE_RECURSE
  "CMakeFiles/ca_costmodel.dir/model.cpp.o"
  "CMakeFiles/ca_costmodel.dir/model.cpp.o.d"
  "libca_costmodel.a"
  "libca_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
