# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;ca_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_density_purification "/root/repo/build/examples/density_purification")
set_tests_properties(example_density_purification PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;ca_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cholesky_qr "/root/repo/build/examples/cholesky_qr")
set_tests_properties(example_cholesky_qr PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;ca_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partition_gallery "/root/repo/build/examples/partition_gallery")
set_tests_properties(example_partition_gallery PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;ca_add_example;/root/repo/examples/CMakeLists.txt;0;")
