# Empty dependencies file for partition_gallery.
# This may be replaced when dependencies are built.
