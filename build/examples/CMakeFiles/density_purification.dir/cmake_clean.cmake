file(REMOVE_RECURSE
  "CMakeFiles/density_purification.dir/density_purification.cpp.o"
  "CMakeFiles/density_purification.dir/density_purification.cpp.o.d"
  "density_purification"
  "density_purification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_purification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
