# Empty dependencies file for density_purification.
# This may be replaced when dependencies are built.
