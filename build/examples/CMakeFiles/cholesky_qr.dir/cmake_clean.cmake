file(REMOVE_RECURSE
  "CMakeFiles/cholesky_qr.dir/cholesky_qr.cpp.o"
  "CMakeFiles/cholesky_qr.dir/cholesky_qr.cpp.o.d"
  "cholesky_qr"
  "cholesky_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
