file(REMOVE_RECURSE
  "CMakeFiles/bench_algorithm_zoo.dir/bench_algorithm_zoo.cpp.o"
  "CMakeFiles/bench_algorithm_zoo.dir/bench_algorithm_zoo.cpp.o.d"
  "bench_algorithm_zoo"
  "bench_algorithm_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithm_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
