file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_smallscale.dir/bench_engine_smallscale.cpp.o"
  "CMakeFiles/bench_engine_smallscale.dir/bench_engine_smallscale.cpp.o.d"
  "bench_engine_smallscale"
  "bench_engine_smallscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_smallscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
