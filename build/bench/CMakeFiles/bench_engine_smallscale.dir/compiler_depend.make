# Empty compiler generated dependencies file for bench_engine_smallscale.
# This may be replaced when dependencies are built.
