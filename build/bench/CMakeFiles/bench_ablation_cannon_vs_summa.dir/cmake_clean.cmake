file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cannon_vs_summa.dir/bench_ablation_cannon_vs_summa.cpp.o"
  "CMakeFiles/bench_ablation_cannon_vs_summa.dir/bench_ablation_cannon_vs_summa.cpp.o.d"
  "bench_ablation_cannon_vs_summa"
  "bench_ablation_cannon_vs_summa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cannon_vs_summa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
