# Empty compiler generated dependencies file for bench_ablation_cannon_vs_summa.
# This may be replaced when dependencies are built.
