file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_l_param.dir/bench_ablation_l_param.cpp.o"
  "CMakeFiles/bench_ablation_l_param.dir/bench_ablation_l_param.cpp.o.d"
  "bench_ablation_l_param"
  "bench_ablation_l_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_l_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
