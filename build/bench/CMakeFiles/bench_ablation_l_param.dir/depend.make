# Empty dependencies file for bench_ablation_l_param.
# This may be replaced when dependencies are built.
