file(REMOVE_RECURSE
  "CMakeFiles/test_engine2d.dir/test_engine2d.cpp.o"
  "CMakeFiles/test_engine2d.dir/test_engine2d.cpp.o.d"
  "test_engine2d"
  "test_engine2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
