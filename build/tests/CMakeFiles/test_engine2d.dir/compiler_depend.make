# Empty compiler generated dependencies file for test_engine2d.
# This may be replaced when dependencies are built.
