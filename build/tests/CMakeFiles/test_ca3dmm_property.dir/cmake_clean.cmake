file(REMOVE_RECURSE
  "CMakeFiles/test_ca3dmm_property.dir/test_ca3dmm_property.cpp.o"
  "CMakeFiles/test_ca3dmm_property.dir/test_ca3dmm_property.cpp.o.d"
  "test_ca3dmm_property"
  "test_ca3dmm_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ca3dmm_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
