# Empty dependencies file for test_ca3dmm_property.
# This may be replaced when dependencies are built.
