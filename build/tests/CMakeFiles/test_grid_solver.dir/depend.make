# Empty dependencies file for test_grid_solver.
# This may be replaced when dependencies are built.
