file(REMOVE_RECURSE
  "CMakeFiles/test_grid_solver.dir/test_grid_solver.cpp.o"
  "CMakeFiles/test_grid_solver.dir/test_grid_solver.cpp.o.d"
  "test_grid_solver"
  "test_grid_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
