file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_property.dir/test_baselines_property.cpp.o"
  "CMakeFiles/test_baselines_property.dir/test_baselines_property.cpp.o.d"
  "test_baselines_property"
  "test_baselines_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
