# Empty dependencies file for test_baselines_property.
# This may be replaced when dependencies are built.
