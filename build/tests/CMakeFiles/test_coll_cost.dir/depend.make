# Empty dependencies file for test_coll_cost.
# This may be replaced when dependencies are built.
