file(REMOVE_RECURSE
  "CMakeFiles/test_coll_cost.dir/test_coll_cost.cpp.o"
  "CMakeFiles/test_coll_cost.dir/test_coll_cost.cpp.o.d"
  "test_coll_cost"
  "test_coll_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
