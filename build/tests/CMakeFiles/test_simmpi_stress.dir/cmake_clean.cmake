file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_stress.dir/test_simmpi_stress.cpp.o"
  "CMakeFiles/test_simmpi_stress.dir/test_simmpi_stress.cpp.o.d"
  "test_simmpi_stress"
  "test_simmpi_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
