# Empty compiler generated dependencies file for test_unified_view.
# This may be replaced when dependencies are built.
