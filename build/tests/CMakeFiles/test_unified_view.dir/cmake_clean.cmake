file(REMOVE_RECURSE
  "CMakeFiles/test_unified_view.dir/test_unified_view.cpp.o"
  "CMakeFiles/test_unified_view.dir/test_unified_view.cpp.o.d"
  "test_unified_view"
  "test_unified_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unified_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
