# Empty compiler generated dependencies file for test_redistribute.
# This may be replaced when dependencies are built.
