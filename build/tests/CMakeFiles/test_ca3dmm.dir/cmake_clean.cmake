file(REMOVE_RECURSE
  "CMakeFiles/test_ca3dmm.dir/test_ca3dmm.cpp.o"
  "CMakeFiles/test_ca3dmm.dir/test_ca3dmm.cpp.o.d"
  "test_ca3dmm"
  "test_ca3dmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ca3dmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
