# Empty dependencies file for test_ca3dmm.
# This may be replaced when dependencies are built.
