# Empty dependencies file for test_simmpi_p2p.
# This may be replaced when dependencies are built.
