# Empty compiler generated dependencies file for test_partitioning.
# This may be replaced when dependencies are built.
