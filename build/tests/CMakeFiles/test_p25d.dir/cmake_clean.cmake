file(REMOVE_RECURSE
  "CMakeFiles/test_p25d.dir/test_p25d.cpp.o"
  "CMakeFiles/test_p25d.dir/test_p25d.cpp.o.d"
  "test_p25d"
  "test_p25d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p25d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
