# Empty dependencies file for test_p25d.
# This may be replaced when dependencies are built.
