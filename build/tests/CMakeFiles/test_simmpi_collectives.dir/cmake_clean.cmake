file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_collectives.dir/test_simmpi_collectives.cpp.o"
  "CMakeFiles/test_simmpi_collectives.dir/test_simmpi_collectives.cpp.o.d"
  "test_simmpi_collectives"
  "test_simmpi_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
