file(REMOVE_RECURSE
  "CMakeFiles/test_vclock.dir/test_vclock.cpp.o"
  "CMakeFiles/test_vclock.dir/test_vclock.cpp.o.d"
  "test_vclock"
  "test_vclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
