// Shared helpers for the benchmark binaries.
//
// Every bench binary reproduces one table or figure of the paper's
// evaluation (§IV). Timings come from the validated cost model (see
// tests/test_costmodel.cpp) evaluated at the paper's scale on the
// PACE-Phoenix-like machine model; each binary also registers its
// measurements with google-benchmark (manual time = simulated seconds) so
// the standard tooling can consume them, and prints a paper-style table for
// eyeballing against the publication.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/table.hpp"
#include "costmodel/model.hpp"
#include "layout/block_layout.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/machine.hpp"

namespace ca3dmm::bench {

/// Fills this rank's local buffer under `layout` from the virtual global
/// random matrix `seed` (the same generator the tests validate against).
inline void fill_local(const BlockLayout& layout, int rank,
                       std::uint64_t seed, std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// The four problem classes of §IV-A (dimensions in elements).
struct ProblemClass {
  const char* name;
  i64 m, n, k;
};

inline std::vector<ProblemClass> paper_classes() {
  return {
      {"square  (50k,50k,50k)", 50000, 50000, 50000},
      {"large-K (6k,6k,1.2M)", 6000, 6000, 1200000},
      {"large-M (1.2M,6k,6k)", 1200000, 6000, 6000},
      {"flat    (100k,100k,5k)", 100000, 100000, 5000},
  };
}

/// Table III's GPU problem set.
inline std::vector<ProblemClass> gpu_classes() {
  return {
      {"square  (50k,50k,50k)", 50000, 50000, 50000},
      {"large-K (10k,10k,300k)", 10000, 10000, 300000},
      {"large-M (300k,10k,10k)", 300000, 10000, 10000},
      {"flat    (50k,50k,10k)", 50000, 50000, 10000},
  };
}

inline std::vector<int> paper_process_counts() {
  return {192, 384, 768, 1536, 3072};
}

inline std::string grid_str(const ProcGrid& g) {
  return strprintf("%d x %d x %d", g.pm, g.pn, g.pk);
}

/// Registers a pre-computed simulated time with google-benchmark so the
/// binary reports it through the standard reporter.
inline void register_sim_time(const std::string& name, double seconds) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [seconds](benchmark::State& st) {
                                 for (auto _ : st) {
                                   st.SetIterationTime(seconds);
                                 }
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Standard main body: run the registered benchmarks, then the paper table.
inline int run_bench_main(int argc, char** argv,
                          const std::function<void()>& print_tables) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}

}  // namespace ca3dmm::bench
