// Shared helpers for the benchmark binaries.
//
// Every bench binary reproduces one table or figure of the paper's
// evaluation (§IV). Timings come from the validated cost model (see
// tests/test_costmodel.cpp) evaluated at the paper's scale on the
// PACE-Phoenix-like machine model; each binary also registers its
// measurements with google-benchmark (manual time = simulated seconds) so
// the standard tooling can consume them, and prints a paper-style table for
// eyeballing against the publication.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "costmodel/model.hpp"
#include "layout/block_layout.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/topology.hpp"

namespace ca3dmm::bench {

/// Fills this rank's local buffer under `layout` from the virtual global
/// random matrix `seed` (the same generator the tests validate against).
inline void fill_local(const BlockLayout& layout, int rank,
                       std::uint64_t seed, std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// The four problem classes of §IV-A (dimensions in elements).
struct ProblemClass {
  const char* name;
  i64 m, n, k;
};

inline std::vector<ProblemClass> paper_classes() {
  return {
      {"square  (50k,50k,50k)", 50000, 50000, 50000},
      {"large-K (6k,6k,1.2M)", 6000, 6000, 1200000},
      {"large-M (1.2M,6k,6k)", 1200000, 6000, 6000},
      {"flat    (100k,100k,5k)", 100000, 100000, 5000},
  };
}

/// Table III's GPU problem set.
inline std::vector<ProblemClass> gpu_classes() {
  return {
      {"square  (50k,50k,50k)", 50000, 50000, 50000},
      {"large-K (10k,10k,300k)", 10000, 10000, 300000},
      {"large-M (300k,10k,10k)", 300000, 10000, 10000},
      {"flat    (50k,50k,10k)", 50000, 50000, 10000},
  };
}

inline std::vector<int> paper_process_counts() {
  return {192, 384, 768, 1536, 3072};
}

inline std::string grid_str(const ProcGrid& g) {
  return strprintf("%d x %d x %d", g.pm, g.pn, g.pk);
}

/// Registers a pre-computed simulated time with google-benchmark so the
/// binary reports it through the standard reporter.
inline void register_sim_time(const std::string& name, double seconds) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [seconds](benchmark::State& st) {
                                 for (auto _ : st) {
                                   st.SetIterationTime(seconds);
                                 }
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Fault plan assembled from --fault command-line flags. Empty unless the
/// user passed --fault specs; benches that execute on a threaded Cluster
/// attach it via cluster.set_fault_plan(bench_fault_plan()) so any bench run
/// can be replayed under a deterministic fault scenario.
inline simmpi::FaultPlan& bench_fault_plan() {
  static simmpi::FaultPlan plan;
  return plan;
}

/// Parses and strips repeated `--fault <spec>` (or `--fault=<spec>`)
/// arguments before google-benchmark sees argv. Specs:
///
///   rank_kill=R@OP       kill world rank R at its OP-th communication op
///   straggle=NODE@F      scale all local time on node NODE by factor F
///   flip=SRC,DST,TAG[,NTH[,OFF[,MASK]]]
///                        XOR MASK (default 0x01) into byte OFF (default 0)
///                        of the NTH (default 1st) message received on the
///                        p2p channel SRC -> DST with tag TAG
///
/// Unknown specs abort with a usage message — a silently ignored fault flag
/// would make a "survived faults" bench result meaningless.
inline void parse_fault_flags(int* argc, char** argv) {
  simmpi::FaultPlan& plan = bench_fault_plan();
  const auto parse_spec = [&plan](const char* spec) {
    int a = 0, b = 0, c = 0, nth = 1;
    long long op = 0, off = 0;
    unsigned mask = 0x01;
    double factor = 0;
    if (std::sscanf(spec, "rank_kill=%d@%lld", &a, &op) == 2) {
      plan.kills.push_back({.rank = a, .at_op = op});
      return;
    }
    if (std::sscanf(spec, "straggle=%d@%lf", &a, &factor) == 2) {
      plan.stragglers.push_back({.node = a, .factor = factor});
      return;
    }
    const int n =
        std::sscanf(spec, "flip=%d,%d,%d,%d,%lld,%x", &a, &b, &c, &nth, &off,
                    &mask);
    if (n >= 3) {
      plan.flips.push_back({.src = a,
                            .dst = b,
                            .tag = c,
                            .nth_match = nth,
                            .offset = off,
                            .mask = static_cast<unsigned char>(mask)});
      return;
    }
    std::fprintf(stderr,
                 "unrecognized --fault spec '%s'\n"
                 "expected rank_kill=R@OP | straggle=NODE@FACTOR | "
                 "flip=SRC,DST,TAG[,NTH[,OFF[,MASK]]]\n",
                 spec);
    std::exit(2);
  };

  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < *argc) {
      parse_spec(argv[++i]);
    } else if (std::strncmp(argv[i], "--fault=", 8) == 0) {
      parse_spec(argv[i] + 8);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Scheduler backend selected by `--backend threads|fibers`. Defaults to
/// Cluster::default_backend() (the CA3DMM_SIMMPI_BACKEND environment
/// variable), so CI's fiber lanes cover the benches without per-binary
/// flags. Benches that execute on a real Cluster apply it via
/// cluster.set_backend(bench_backend()).
inline simmpi::Cluster::Backend& bench_backend() {
  static simmpi::Cluster::Backend b = simmpi::Cluster::default_backend();
  return b;
}

/// Parses and strips `--backend threads|fibers` (space- or =-separated)
/// before google-benchmark sees argv.
inline void parse_backend_flags(int* argc, char** argv) {
  const auto parse = [](const char* v) {
    if (std::strcmp(v, "fibers") == 0) {
      bench_backend() = simmpi::Cluster::Backend::kFibers;
    } else if (std::strcmp(v, "threads") == 0) {
      bench_backend() = simmpi::Cluster::Backend::kThreads;
    } else {
      std::fprintf(stderr,
                   "unrecognized --backend '%s' (expected threads|fibers)\n",
                   v);
      std::exit(2);
    }
  };
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < *argc) {
      parse(argv[++i]);
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      parse(argv[i] + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Multi-tenant service knobs shared by bench_service and the service
/// smoke tooling. Zero / empty means "use the scenario's default".
struct ServiceFlags {
  int tenants = 0;              ///< --tenants N
  std::vector<double> weights;  ///< --weights a,b,c,... (cycled over tenants)
  i64 quota_mb = 0;             ///< --quota-mb N, per-tenant memory quota
};

inline ServiceFlags& bench_service_flags() {
  static ServiceFlags flags;
  return flags;
}

/// Parses and strips `--tenants N`, `--weights a,b,...` and `--quota-mb N`
/// (space- or =-separated) before google-benchmark sees argv.
inline void parse_service_flags(int* argc, char** argv) {
  ServiceFlags& flags = bench_service_flags();
  const auto parse_weights = [&flags](const char* s) {
    flags.weights.clear();
    while (*s != '\0') {
      char* end = nullptr;
      const double w = std::strtod(s, &end);
      if (end == s || w <= 0) {
        std::fprintf(stderr, "bad --weights list (positive numbers, "
                             "comma-separated)\n");
        std::exit(2);
      }
      flags.weights.push_back(w);
      s = *end == ',' ? end + 1 : end;
    }
  };
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const auto value = [&](const char* name, const char* eq) -> const char* {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < *argc)
        return argv[++i];
      if (std::strncmp(argv[i], eq, std::strlen(eq)) == 0)
        return argv[i] + std::strlen(eq);
      return nullptr;
    };
    if (const char* v = value("--tenants", "--tenants=")) {
      flags.tenants = std::atoi(v);
    } else if (const char* v = value("--weights", "--weights=")) {
      parse_weights(v);
    } else if (const char* v = value("--quota-mb", "--quota-mb=")) {
      flags.quota_mb = std::atoll(v);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Topology selected by `--topology <spec>`; nullopt = the bench's default
/// (usually homogeneous). Benches that execute on a Cluster construct it
/// from this when set, so any bench can be replayed on a heterogeneous
/// multi-cluster machine model.
inline std::optional<simmpi::Topology>& bench_topology() {
  static std::optional<simmpi::Topology> topo;
  return topo;
}

/// Parses a topology spec into a Topology. Grammar:
///
///   spec     :=  cluster(+cluster)*[@alpha,bandwidth]
///   cluster  :=  preset:nranks
///   preset   :=  mpi | hybrid | gpu | unit      (Machine presets)
///
/// e.g. `mpi:192+gpu:16@5e-6,5e9` — 192 phoenix_mpi ranks and 16
/// phoenix_gpu ranks joined by a 5 us / 5 GB/s inter-cluster link. Aborts
/// with a usage message on malformed specs (a silently ignored topology
/// flag would make a "heterogeneous" bench result meaningless).
inline simmpi::Topology parse_topology_spec(const char* spec) {
  const auto die = [spec]() {
    std::fprintf(stderr,
                 "unrecognized --topology '%s'\n"
                 "expected PRESET:NRANKS[+PRESET:NRANKS...][@ALPHA,BANDWIDTH] "
                 "with preset mpi|hybrid|gpu|unit\n",
                 spec);
    std::exit(2);
  };
  std::vector<simmpi::ClusterSpec> clusters;
  simmpi::InterClusterLink link;
  std::string s(spec);
  const size_t at = s.find('@');
  if (at != std::string::npos) {
    if (std::sscanf(s.c_str() + at + 1, "%lf,%lf", &link.alpha,
                    &link.bandwidth) != 2 ||
        link.alpha < 0 || link.bandwidth <= 0)
      die();
    s.resize(at);
  }
  size_t pos = 0;
  while (pos < s.size()) {
    size_t end = s.find('+', pos);
    if (end == std::string::npos) end = s.size();
    const std::string part = s.substr(pos, end - pos);
    const size_t colon = part.find(':');
    if (colon == std::string::npos) die();
    const std::string preset = part.substr(0, colon);
    const int nranks = std::atoi(part.c_str() + colon + 1);
    if (nranks <= 0) die();
    simmpi::Machine mach;
    if (preset == "mpi") mach = simmpi::Machine::phoenix_mpi();
    else if (preset == "hybrid") mach = simmpi::Machine::phoenix_hybrid();
    else if (preset == "gpu") mach = simmpi::Machine::phoenix_gpu();
    else if (preset == "unit") mach = simmpi::Machine::unit_test();
    else die();
    clusters.push_back(simmpi::ClusterSpec{preset, mach, nranks});
    pos = end + 1;
  }
  if (clusters.empty()) die();
  return simmpi::Topology::make(std::move(clusters), link);
}

/// Parses and strips `--topology SPEC` (space- or =-separated) before
/// google-benchmark sees argv.
inline void parse_topology_flags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--topology") == 0 && i + 1 < *argc) {
      bench_topology() = parse_topology_spec(argv[++i]);
    } else if (std::strncmp(argv[i], "--topology=", 11) == 0) {
      bench_topology() = parse_topology_spec(argv[i] + 11);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Path of the tuning DB selected by `--tuning-db <path>`; empty = no DB.
/// Benches that construct a PgemmEngine load it and pass it through
/// EngineConfig::tuning_db so bench runs exercise tuned plans the same way
/// production would.
inline std::string& bench_tuning_db_path() {
  static std::string path;
  return path;
}

/// Parses and strips `--tuning-db PATH` (space- or =-separated) before
/// google-benchmark sees argv.
inline void parse_tuning_db_flags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--tuning-db") == 0 && i + 1 < *argc) {
      bench_tuning_db_path() = argv[++i];
    } else if (std::strncmp(argv[i], "--tuning-db=", 12) == 0) {
      bench_tuning_db_path() = argv[i] + 12;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Standard main body: run the registered benchmarks, then the paper table.
inline int run_bench_main(int argc, char** argv,
                          const std::function<void()>& print_tables) {
  parse_fault_flags(&argc, argv);
  parse_service_flags(&argc, argv);
  parse_backend_flags(&argc, argv);
  parse_tuning_db_flags(&argc, argv);
  parse_topology_flags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}

}  // namespace ca3dmm::bench
