// Multi-tenant service benchmark: prices what fairness, quotas, and
// backpressure cost — and proves they hold — on an executed overload.
//
// Two executed scenarios on the cost model's exactness domain (P = 16 over
// 4 simulated nodes, the fig5 drift-gate machine), all deterministic
// virtual time:
//
//   1. WFQ shares under overload — four tenants with weights (default
//      1:1:2:4) flood the service at t = 0 with identically shaped work.
//      Over the window where every tenant stays backlogged, each tenant's
//      served virtual time must land within 5% of its weight share.
//   2. Mixed overload with quotas — the four loadgen shape mixes at once,
//      with a flood tenant capped by a short queue, a memory-quota tenant,
//      and a token-bucket tenant. Gates: no tenant's outstanding predicted
//      peak ever exceeds its quota, shedding produces rejections (never
//      engine aborts — zero failures, zero plan invalidations), the
//      engine pool's high-water footprint stays under the configured
//      budget (zero OOM), and every tenant's p50/p99 predicted-vs-executed
//      drift stays inside the 1e-6 rtol CI gate.
//
// Emits BENCH_service.json; any gate failure exits nonzero so CI rejects
// the regression. Tenant count / weights / quotas can be overridden with
// --tenants / --weights / --quota-mb (bench_common.hpp).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "costmodel/admission.hpp"
#include "service/loadgen.hpp"
#include "service/service.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::CostOracle;
using costmodel::Workload;
using service::GeneratedLoad;
using service::LoadSpec;
using service::PgemmService;
using service::ServiceConfig;
using service::ServiceReport;
using service::ServiceRequest;
using service::ShapeMix;
using service::TenantProfile;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

constexpr double kShareTolerance = 0.05;  ///< WFQ share gate, relative
constexpr double kDriftRtol = 1e-6;       ///< same rtol as the CI drift gate

bool g_gate_failed = false;

void fail_gate(const char* what) {
  std::printf("SERVICE GATE FAILED: %s\n", what);
  g_gate_failed = true;
}

/// The fig5 executed-drift machine: P = 16 as 4 nodes x 4 ranks.
Machine exact_machine() {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  return mach;
}

constexpr int kRanks = 16;

/// Runs the load through a PgemmService on a fresh cluster; every rank
/// computes the identical report, rank 0's copy is returned.
ServiceReport run_service(const ServiceConfig& cfg,
                          const std::vector<ServiceRequest>& load) {
  ServiceReport report;
  Cluster cl(kRanks, exact_machine());
  cl.run([&](Comm& world) {
    PgemmService svc(world, cfg);
    ServiceReport r = svc.serve(load);
    if (world.rank() == 0) report = r;
  });
  return report;
}

/// Weights for `n` tenants: --weights if given (cycled), else 1,1,2,4,...
std::vector<double> scenario_weights(int n) {
  const ServiceFlags& flags = bench_service_flags();
  std::vector<double> w(static_cast<size_t>(n), 1.0);
  const double defaults[] = {1, 1, 2, 4};
  for (int t = 0; t < n; ++t)
    w[static_cast<size_t>(t)] =
        flags.weights.empty()
            ? defaults[t % 4]
            : flags.weights[static_cast<size_t>(t) % flags.weights.size()];
  return w;
}

// ---------------------------------------------------------------------------
// Part 1: WFQ shares under overload.
// ---------------------------------------------------------------------------

struct ShareRow {
  std::string name;
  double weight = 0, expected = 0, share = 0;
  double err() const { return std::abs(share - expected) / expected; }
};

struct WfqResult {
  std::vector<ShareRow> rows;
  double window_end_s = 0;
  i64 requests = 0;
};

WfqResult run_wfq_scenario() {
  const ServiceFlags& flags = bench_service_flags();
  const int nt = flags.tenants > 0 ? flags.tenants : 4;
  const std::vector<double> weights = scenario_weights(nt);

  // Identical (uniform-cost) work so served vtime is the clean fairness
  // signal; request counts scale with weight so all queues drain together
  // and the all-backlogged window spans nearly the whole run.
  LoadSpec spec;
  for (int t = 0; t < nt; ++t) {
    TenantProfile p;
    p.name = "tenant-" + std::to_string(t);
    p.weight = weights[static_cast<size_t>(t)];
    p.mix = ShapeMix::kIterative;
    p.requests = static_cast<int>(24 * p.weight);
    p.mean_gap_s = 0;  // everyone floods at t = 0
    spec.tenants.push_back(p);
  }
  const GeneratedLoad load = generate_load(spec, kRanks);

  ServiceConfig cfg;
  cfg.tenants = load.tenants;
  const ServiceReport rep = run_service(cfg, load.requests);

  WfqResult out;
  out.window_end_s = rep.fair_window_end_s;
  out.requests = static_cast<i64>(load.requests.size());
  double total = 0, wsum = 0;
  for (int t = 0; t < nt; ++t) {
    total += rep.fair_window_served[static_cast<size_t>(t)];
    wsum += weights[static_cast<size_t>(t)];
  }
  for (int t = 0; t < nt; ++t) {
    ShareRow row;
    row.name = cfg.tenants[static_cast<size_t>(t)].name;
    row.weight = weights[static_cast<size_t>(t)];
    row.expected = row.weight / wsum;
    row.share =
        total == 0 ? 0 : rep.fair_window_served[static_cast<size_t>(t)] / total;
    out.rows.push_back(row);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Part 2: mixed overload with quotas, backpressure, pool budget, drift.
// ---------------------------------------------------------------------------

struct OverloadResult {
  ServiceReport report;
  std::vector<std::string> tenant_names;
  i64 budget_bytes = 0;
  i64 mem_quota_bytes = 0;
};

OverloadResult run_overload_scenario() {
  const ServiceFlags& flags = bench_service_flags();
  const std::vector<double> weights = scenario_weights(4);

  LoadSpec spec;
  const ShapeMix mixes[] = {ShapeMix::kIterative, ShapeMix::kSquare,
                            ShapeMix::kTallSkinny, ShapeMix::kBatchedSmall};
  for (int t = 0; t < 4; ++t) {
    TenantProfile p;
    p.mix = mixes[t];
    p.name = service::shape_mix_name(p.mix);
    p.weight = weights[static_cast<size_t>(t)];
    p.requests = 16;
    p.mean_gap_s = 0;
    spec.tenants.push_back(p);
  }

  // Price the load up front (the same oracle the service admits with) to
  // size the quotas so each pressure mechanism actually fires.
  CostOracle oracle(kRanks, exact_machine());
  GeneratedLoad probe = generate_load(spec, kRanks);
  i64 max_peak = 0;
  double warm_iterative = 0;
  for (const ServiceRequest& r : probe.requests) {
    Workload w{r.m, r.n, r.k};
    w.force_grid = r.opt.force_grid;
    const costmodel::Quote& q = oracle.quote(Algo::kCa3dmm, w);
    max_peak = std::max(max_peak, q.peak_bytes);
    if (r.tenant == 0) warm_iterative = q.warm_s;
  }

  // The memory-quota tenant (tall-skinny) may hold ~3 requests outstanding;
  // the flood tenant (batched-small) gets a 4-deep queue; the iterative
  // tenant gets a token bucket that admits only part of its burst.
  OverloadResult out;
  out.mem_quota_bytes = flags.quota_mb > 0 ? flags.quota_mb << 20
                                           : 3 * max_peak + max_peak / 2;
  spec.tenants[2].mem_quota_bytes = out.mem_quota_bytes;
  spec.tenants[3].max_queue = 4;
  spec.tenants[0].vtime_rate = warm_iterative / 4;  // slow refill
  spec.tenants[0].vtime_burst = 10 * warm_iterative;

  const GeneratedLoad load = generate_load(spec, kRanks);
  for (const auto& tc : load.tenants) out.tenant_names.push_back(tc.name);

  ServiceConfig cfg;
  cfg.tenants = load.tenants;
  // Pool budget: double the largest single-request predicted peak — tight
  // enough that idle buffers from other shapes must be trimmed, generous
  // enough that every request fits. The high-water gate proves zero OOM.
  out.budget_bytes = 2 * max_peak;
  cfg.memory_budget_bytes = out.budget_bytes;
  out.report = run_service(cfg, load.requests);
  return out;
}

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------

void write_json(const WfqResult& wfq, const OverloadResult& ov) {
  const char* path = "BENCH_service.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"service\",\n  \"ranks\": %d,\n", kRanks);
  std::fprintf(f, "  \"wfq_overload\": {\n    \"requests\": %lld,\n"
               "    \"window_end_s\": %.9f,\n    \"tenants\": [\n",
               (long long)wfq.requests, wfq.window_end_s);
  for (size_t i = 0; i < wfq.rows.size(); ++i) {
    const ShareRow& r = wfq.rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"weight\": %g, \"expected_share\":"
                 " %.6f, \"served_share\": %.6f, \"rel_err\": %.6f}%s\n",
                 r.name.c_str(), r.weight, r.expected, r.share, r.err(),
                 i + 1 < wfq.rows.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n    \"share_tolerance\": %.3f\n  },\n",
               kShareTolerance);

  const ServiceReport& rep = ov.report;
  std::fprintf(f, "  \"mixed_overload\": {\n    \"tenants\": [\n");
  for (size_t t = 0; t < rep.tenants.size(); ++t) {
    const service::TenantMetrics& m = rep.tenants[t];
    std::fprintf(
        f,
        "      {\"name\": \"%s\", \"weight\": %g, \"completed\": %lld, "
        "\"failed\": %lld,\n       \"rejected_queue\": %lld, "
        "\"rejected_mem\": %lld, \"rejected_vtime\": %lld,\n"
        "       \"peak_outstanding_bytes\": %lld,\n"
        "       \"p50_latency_s\": %.9f, \"p99_latency_s\": %.9f,\n"
        "       \"p50_drift\": %.3e, \"p99_drift\": %.3e, "
        "\"max_drift\": %.3e}%s\n",
        m.name.c_str(), m.weight, (long long)m.completed, (long long)m.failed,
        (long long)m.rejected_queue, (long long)m.rejected_mem,
        (long long)m.rejected_vtime, (long long)m.peak_outstanding_bytes,
        m.p50_latency_s, m.p99_latency_s, m.p50_drift, m.p99_drift,
        m.max_drift, t + 1 < rep.tenants.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n    \"pool\": {\"budget_bytes\": %lld, "
               "\"high_water_bytes\": %lld, \"pressure_trims\": %lld},\n",
               (long long)ov.budget_bytes, (long long)rep.pool_high_water_bytes,
               (long long)rep.pool_trims);
  std::fprintf(f,
               "    \"engine\": {\"requests\": %lld, \"plan_hits\": %lld, "
               "\"plan_misses\": %lld, \"plan_invalidations\": %lld},\n",
               (long long)rep.engine.requests, (long long)rep.engine.plan_hits,
               (long long)rep.engine.plan_misses,
               (long long)rep.engine.plan_invalidations);
  std::fprintf(f, "    \"vtime_end_s\": %.9f\n  },\n", rep.vtime_end);
  std::fprintf(f, "  \"drift_rtol_gate\": %.1e,\n  \"gates_ok\": %s\n}\n",
               kDriftRtol, g_gate_failed ? "false" : "true");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_tables() {
  // ---- part 1: WFQ shares ----
  const WfqResult wfq = run_wfq_scenario();
  std::printf("\n=== WFQ shares under overload (P=%d, uniform work, "
              "all-backlogged window %.3f ms) ===\n",
              kRanks, wfq.window_end_s * 1e3);
  TextTable wt({"tenant", "weight", "expected", "served share", "rel err",
                "gate 5%"});
  for (const ShareRow& r : wfq.rows) {
    const bool ok = r.err() <= kShareTolerance;
    wt.add_row({r.name, strprintf("%g", r.weight),
                strprintf("%.4f", r.expected), strprintf("%.4f", r.share),
                strprintf("%.2f%%", r.err() * 100), ok ? "ok" : "FAIL"});
    if (!ok) fail_gate("WFQ share outside 5% of weight");
  }
  wt.print();

  // ---- part 2: mixed overload ----
  const OverloadResult ov = run_overload_scenario();
  const ServiceReport& rep = ov.report;
  std::printf("\n=== Mixed overload: quotas, backpressure, pool budget "
              "(P=%d) ===\n", kRanks);
  TextTable ot({"tenant", "done", "fail", "rej q", "rej mem", "rej vt",
                "p99 lat ms", "p99 drift"});
  i64 total_rejected = 0;
  for (const service::TenantMetrics& m : rep.tenants) {
    ot.add_row({m.name, strprintf("%lld", (long long)m.completed),
                strprintf("%lld", (long long)m.failed),
                strprintf("%lld", (long long)m.rejected_queue),
                strprintf("%lld", (long long)m.rejected_mem),
                strprintf("%lld", (long long)m.rejected_vtime),
                strprintf("%.3f", m.p99_latency_s * 1e3),
                strprintf("%.2e", m.p99_drift)});
    total_rejected += m.rejected_queue + m.rejected_mem + m.rejected_vtime;
    if (m.completed <= 0) fail_gate("tenant starved (zero completions)");
    if (m.failed != 0) fail_gate("engine abort leaked into a tenant");
    if (m.p99_drift > kDriftRtol || m.p50_drift > kDriftRtol)
      fail_gate("predicted-vs-executed drift outside the 1e-6 gate");
  }
  ot.print();
  // Quota safety: the admission gauge never exceeded the contract.
  for (size_t t = 0; t < rep.tenants.size(); ++t) {
    // (load.tenants quota == cfg quota; tall-skinny carries the tight one)
    if (rep.tenants[t].name == "tall-skinny" &&
        rep.tenants[t].peak_outstanding_bytes > ov.mem_quota_bytes)
      fail_gate("memory quota violated");
  }
  if (total_rejected <= 0)
    fail_gate("overload produced no backpressure rejections");
  if (rep.engine.plan_invalidations != 0)
    fail_gate("plan invalidations during load shedding");
  if (rep.pool_high_water_bytes > ov.budget_bytes)
    fail_gate("pool footprint exceeded the memory budget (OOM)");
  std::printf("pool: high water %lld B <= budget %lld B, pressure trims "
              "%lld; rejections %lld; engine %lld reqs (%.0f%% plan hits)\n",
              (long long)rep.pool_high_water_bytes, (long long)ov.budget_bytes,
              (long long)rep.pool_trims, (long long)total_rejected,
              (long long)rep.engine.requests,
              rep.engine.plan_hit_rate() * 100);

  write_json(wfq, ov);
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  const int rc =
      ca3dmm::bench::run_bench_main(argc, argv, ca3dmm::bench::print_tables);
  return rc != 0 ? rc : (ca3dmm::bench::g_gate_failed ? 1 : 0);
}
