// Ablation (§III-E): CA3DMM with Cannon's algorithm vs CA3DMM with SUMMA as
// the inner 2-D engine, on the same process grids.
//
// The paper proves L_SUMMA - L_Cannon >= 0 for any grid with p_m >= 2 and
// concludes Cannon is the right default. This bench quantifies the gap on
// the Fig. 3 problem set and also reports the latency counts of eq. (10)
// versus SUMMA's p_m(log2(p_m)+p_m-1)+(p_k-1).
#include <cmath>

#include "bench_common.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;

double cannon_latency(const ProcGrid& g) {
  // Eq. (10): L = log2(c) + p_s + p_k - 1.
  const double c = g.c();
  return std::log2(std::max(1.0, c)) + g.s() + g.pk - 1;
}

double summa_latency(const ProcGrid& g) {
  // §III-E with largest panels: p_m (log2(p_m) + p_m - 1) + (p_k - 1),
  // evaluated on the same s x s Cannon-group topology.
  const double pm = g.s();
  if (pm <= 1) return g.pk - 1;
  return pm * (std::log2(pm) + pm - 1) + (g.pk - 1);
}

void print_tables() {
  const Machine mach = Machine::phoenix_mpi();
  std::printf(
      "\n=== Ablation: inner 2-D engine, Cannon (CA3DMM-C) vs SUMMA "
      "(CA3DMM-S) ===\n");
  TextTable t({"class", "P", "grid", "L_Cannon", "L_SUMMA", "Cannon s",
               "SUMMA s", "SUMMA/Cannon"});
  for (const ProblemClass& pc : paper_classes()) {
    for (int P : {384, 1536, 3072}) {
      Workload w{pc.m, pc.n, pc.k};
      const Prediction c = costmodel::predict(Algo::kCa3dmm, w, P, mach);
      const Prediction s = costmodel::predict(Algo::kCa3dmmSumma, w, P, mach);
      t.add_row({pc.name, strprintf("%d", P), grid_str(c.grid),
                 strprintf("%.0f", cannon_latency(c.grid)),
                 strprintf("%.0f", summa_latency(c.grid)),
                 format_seconds(c.t_total), format_seconds(s.t_total),
                 strprintf("%.2f", s.t_total / c.t_total)});
    }
  }
  t.print();
  std::printf(
      "\npaper (§III-E): L_SUMMA >= L_Cannon on every grid, so Cannon is the\n"
      "right default. With the bandwidth-dominated Fig. 3 workloads and\n"
      "overlapped panel movement the measured gap is small (a few percent,\n"
      "favouring Cannon on most classes); the latency advantage of eq. (10)\n"
      "is what matters for latency-bound configurations.\n");
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  for (const ProblemClass& pc : paper_classes())
    for (Algo algo : {Algo::kCa3dmm, Algo::kCa3dmmSumma}) {
      Workload w{pc.m, pc.n, pc.k};
      const Prediction p = costmodel::predict(algo, w, 1536, mach);
      register_sim_time(strprintf("ablation2d/%s/%s/P=1536",
                                  costmodel::algo_name(algo), pc.name),
                        p.t_total);
    }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
