// End-to-end engine runs at reduced scale: the actual threaded message-
// passing engine executes CA3DMM, COSMA-like, and CTF-like multiplications
// (real data movement, real local GEMMs) on scaled-down versions of the four
// problem classes, and reports both simulated time and host wall time.
//
// This demonstrates that the orderings shown by the paper-scale cost-model
// benches also emerge from the executable implementation, and doubles as a
// performance check of the local GEMM kernel.
#include "bench_common.hpp"

#include "baselines/ctf_like.hpp"
#include "core/ca3dmm.hpp"
#include "linalg/gemm.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

struct SmallClass {
  const char* name;
  i64 m, n, k;
};

std::vector<SmallClass> small_classes() {
  return {
      {"square", 192, 192, 192},
      {"large-K", 48, 48, 3072},
      {"large-M", 3072, 48, 48},
      {"flat", 384, 384, 24},
  };
}

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

/// Runs one algorithm on the engine; returns max simulated seconds.
double run_engine(Algo algo, const SmallClass& sc, int P,
                  const Machine& mach) {
  const BlockLayout a_lay = BlockLayout::col_1d(sc.m, sc.k, P);
  const BlockLayout b_lay = BlockLayout::col_1d(sc.k, sc.n, P);
  const BlockLayout c_lay = BlockLayout::col_1d(sc.m, sc.n, P);
  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    std::vector<double> a, b;
    fill_local(a_lay, world.rank(), 5, a);
    fill_local(b_lay, world.rank(), 6, b);
    std::vector<double> c(
        static_cast<size_t>(c_lay.local_size(world.rank())));
    switch (algo) {
      case Algo::kCa3dmm: {
        const Ca3dmmPlan plan = Ca3dmmPlan::make(sc.m, sc.n, sc.k, P);
        ca3dmm_multiply<double>(world, plan, false, false, a_lay, a.data(),
                                b_lay, b.data(), c_lay, c.data());
        break;
      }
      case Algo::kCosma: {
        const CosmaPlan plan = CosmaPlan::make(sc.m, sc.n, sc.k, P);
        cosma_multiply<double>(world, plan, false, false, a_lay, a.data(),
                               b_lay, b.data(), c_lay, c.data());
        break;
      }
      case Algo::kCtf: {
        const CtfPlan plan = CtfPlan::make(sc.m, sc.n, sc.k, P);
        ctf_multiply<double>(world, plan, false, false, a_lay, a.data(),
                             b_lay, b.data(), c_lay, c.data());
        break;
      }
      default: CA_ASSERT(false);
    }
  });
  return cl.aggregate_stats().vtime;
}

void print_tables() {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;  // 16 ranks span 4 simulated nodes
  mach.cores_per_node = 4;
  const int P = 16;
  std::printf(
      "\n=== Engine runs (threads, real data): scaled-down classes, P=%d "
      "===\n",
      P);
  TextTable t({"class", "m,n,k", "CA3DMM ms", "COSMA ms", "CTF ms",
               "CA3DMM fastest"});
  for (const SmallClass& sc : small_classes()) {
    const double ca = run_engine(Algo::kCa3dmm, sc, P, mach);
    const double co = run_engine(Algo::kCosma, sc, P, mach);
    const double ct = run_engine(Algo::kCtf, sc, P, mach);
    t.add_row({sc.name, strprintf("%lld,%lld,%lld", (long long)sc.m,
                                  (long long)sc.n, (long long)sc.k),
               strprintf("%.3f", ca * 1e3), strprintf("%.3f", co * 1e3),
               strprintf("%.3f", ct * 1e3),
               (ca <= co * 1.02 && ca <= ct) ? "yes" : "no"});
  }
  t.print();
  std::printf("\n(simulated milliseconds; CTF includes its remapping pass)\n");
}

void register_benchmarks() {
  // Host wall-time benchmark of the local GEMM kernel (the one real-time
  // measurement in the suite).
  benchmark::RegisterBenchmark("local_gemm/256", [](benchmark::State& st) {
    const i64 n = 256;
    std::vector<double> a(static_cast<size_t>(n * n), 1.5),
        b(static_cast<size_t>(n * n), 0.5), c(static_cast<size_t>(n * n));
    for (auto _ : st) {
      gemm_blocked<double>(false, false, n, n, n, 1.0, a.data(), b.data(),
                           c.data());
      benchmark::DoNotOptimize(c.data());
    }
    st.counters["GFLOP/s"] = benchmark::Counter(
        gemm_flops(n, n, n) * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  });
  // Simulated engine runs registered as manual-time benchmarks.
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  for (const SmallClass& sc : small_classes()) {
    benchmark::RegisterBenchmark(
        strprintf("engine/CA3DMM/%s/P=16", sc.name).c_str(),
        [sc, mach](benchmark::State& st) {
          for (auto _ : st) {
            st.SetIterationTime(run_engine(Algo::kCa3dmm, sc, 16, mach));
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
