// End-to-end engine runs at reduced scale: the actual threaded message-
// passing engine executes CA3DMM, COSMA-like, and CTF-like multiplications
// (real data movement, real local GEMMs) on scaled-down versions of the four
// problem classes, and reports both simulated time and host wall time.
//
// This demonstrates that the orderings shown by the paper-scale cost-model
// benches also emerge from the executable implementation, and doubles as a
// performance check of the local GEMM kernel.
#include "bench_common.hpp"

#include <cstdio>

#include "baselines/ctf_like.hpp"
#include "core/ca3dmm.hpp"
#include "engine/engine.hpp"
#include "linalg/gemm.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

struct SmallClass {
  const char* name;
  i64 m, n, k;
};

std::vector<SmallClass> small_classes() {
  return {
      {"square", 192, 192, 192},
      {"large-K", 48, 48, 3072},
      {"large-M", 3072, 48, 48},
      {"flat", 384, 384, 24},
  };
}

/// Runs one algorithm on the engine; returns max simulated seconds.
double run_engine(Algo algo, const SmallClass& sc, int P,
                  const Machine& mach) {
  const BlockLayout a_lay = BlockLayout::col_1d(sc.m, sc.k, P);
  const BlockLayout b_lay = BlockLayout::col_1d(sc.k, sc.n, P);
  const BlockLayout c_lay = BlockLayout::col_1d(sc.m, sc.n, P);
  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    std::vector<double> a, b;
    fill_local(a_lay, world.rank(), 5, a);
    fill_local(b_lay, world.rank(), 6, b);
    std::vector<double> c(
        static_cast<size_t>(c_lay.local_size(world.rank())));
    switch (algo) {
      case Algo::kCa3dmm: {
        const Ca3dmmPlan plan = Ca3dmmPlan::make(sc.m, sc.n, sc.k, P);
        ca3dmm_multiply<double>(world, plan, false, false, a_lay, a.data(),
                                b_lay, b.data(), c_lay, c.data());
        break;
      }
      case Algo::kCosma: {
        const CosmaPlan plan = CosmaPlan::make(sc.m, sc.n, sc.k, P);
        cosma_multiply<double>(world, plan, false, false, a_lay, a.data(),
                               b_lay, b.data(), c_lay, c.data());
        break;
      }
      case Algo::kCtf: {
        const CtfPlan plan = CtfPlan::make(sc.m, sc.n, sc.k, P);
        ctf_multiply<double>(world, plan, false, false, a_lay, a.data(),
                             b_lay, b.data(), c_lay, c.data());
        break;
      }
      default: CA_ASSERT(false);
    }
  });
  return cl.aggregate_stats().vtime;
}

/// One row of the iterative engine-vs-one-shot comparison (ISSUE acceptance
/// workload: `iters` same-shape multiplies per problem class).
struct EngineRow {
  const char* name;
  i64 m, n, k;
  double oneshot_s = 0;   ///< total simulated seconds, one-shot loop
  double engine_s = 0;    ///< total simulated seconds, engine loop
  double hit_rate = 0;    ///< plan-cache hit rate of the engine run
  i64 splits_saved = 0;   ///< rank-0 communicator splits avoided
  i64 peak_bytes = 0;     ///< max per-rank peak tracked bytes (engine run)
  i64 peak_bytes_oneshot = 0;
  double pool_hit_rate = 0;
};

/// Runs `iters` identical multiplies through the one-shot path and through
/// a persistent engine; fills the comparison row.
EngineRow run_iterative(const SmallClass& sc, int P, int iters,
                        const Machine& mach) {
  EngineRow row{sc.name, sc.m, sc.n, sc.k};
  const BlockLayout a_lay = BlockLayout::col_1d(sc.m, sc.k, P);
  const BlockLayout b_lay = BlockLayout::col_1d(sc.k, sc.n, P);
  const BlockLayout c_lay = BlockLayout::col_1d(sc.m, sc.n, P);

  {
    Cluster cl(P, mach);
    const Ca3dmmPlan plan = Ca3dmmPlan::make(sc.m, sc.n, sc.k, P);
    cl.run([&](Comm& world) {
      std::vector<double> a, b;
      fill_local(a_lay, world.rank(), 5, a);
      fill_local(b_lay, world.rank(), 6, b);
      std::vector<double> c(
          static_cast<size_t>(c_lay.local_size(world.rank())));
      for (int t = 0; t < iters; ++t)
        ca3dmm_multiply<double>(world, plan, false, false, a_lay, a.data(),
                                b_lay, b.data(), c_lay, c.data());
    });
    row.oneshot_s = cl.aggregate_stats().vtime;
    row.peak_bytes_oneshot = cl.aggregate_stats().peak_bytes;
  }
  {
    Cluster cl(P, mach);
    engine::EngineStats st;
    cl.run([&](Comm& world) {
      std::vector<double> a, b;
      fill_local(a_lay, world.rank(), 5, a);
      fill_local(b_lay, world.rank(), 6, b);
      std::vector<double> c(
          static_cast<size_t>(c_lay.local_size(world.rank())));
      engine::EngineConfig ecfg;
      // --tuning-db: serve tuned plans the way a warmed production engine
      // would. The DB is loaded once and shared across all rank bodies.
      static tuner::TuningDb* tuning_db = [] {
        if (bench_tuning_db_path().empty()) return (tuner::TuningDb*)nullptr;
        auto* db = new tuner::TuningDb(bench_tuning_db_path());
        db->load();
        return db;
      }();
      ecfg.tuning_db = tuning_db;
      engine::PgemmEngine eng(world, ecfg);
      engine::Request<double> req;
      req.m = sc.m;
      req.n = sc.n;
      req.k = sc.k;
      req.a_layout = &a_lay;
      req.a = a.data();
      req.b_layout = &b_lay;
      req.b = b.data();
      req.c_layout = &c_lay;
      req.c = c.data();
      std::vector<engine::Request<double>> batch(
          static_cast<size_t>(iters), req);
      eng.submit(batch);
      if (world.rank() == 0) st = eng.stats();
    });
    row.engine_s = cl.aggregate_stats().vtime;
    row.peak_bytes = cl.aggregate_stats().peak_bytes;
    row.hit_rate = st.plan_hit_rate();
    row.splits_saved = st.splits_saved;
    row.pool_hit_rate = st.pool.hit_rate();
  }
  return row;
}

/// Emits the machine-readable summary consumed by CI and the paper harness.
void write_engine_json(const std::vector<EngineRow>& rows, int P, int iters,
                       const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_iterative\",\n");
  std::fprintf(f, "  \"P\": %d,\n  \"iters\": %d,\n  \"classes\": [\n", P,
               iters);
  for (size_t i = 0; i < rows.size(); ++i) {
    const EngineRow& r = rows[i];
    std::fprintf(f,
                 "    {\"class\": \"%s\", \"m\": %lld, \"n\": %lld, "
                 "\"k\": %lld,\n"
                 "     \"oneshot_sim_s\": %.9f, \"engine_sim_s\": %.9f,\n"
                 "     \"plan_cache_hit_rate\": %.4f, "
                 "\"splits_saved_rank0\": %lld,\n"
                 "     \"peak_bytes\": %lld, \"peak_bytes_oneshot\": %lld,\n"
                 "     \"pool_hit_rate\": %.4f}%s\n",
                 r.name, (long long)r.m, (long long)r.n, (long long)r.k,
                 r.oneshot_s, r.engine_s, r.hit_rate,
                 (long long)r.splits_saved, (long long)r.peak_bytes,
                 (long long)r.peak_bytes_oneshot, r.pool_hit_rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_engine_iterative() {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  const int P = 16, iters = 10;
  std::printf(
      "\n=== Persistent engine vs one-shot: %d same-shape multiplies, P=%d "
      "===\n",
      iters, P);
  TextTable t({"class", "one-shot ms", "engine ms", "saved", "plan hits",
               "peak MiB (engine/one-shot)"});
  std::vector<EngineRow> rows;
  for (const SmallClass& sc : small_classes()) {
    EngineRow r = run_iterative(sc, P, iters, mach);
    t.add_row({r.name, strprintf("%.3f", r.oneshot_s * 1e3),
               strprintf("%.3f", r.engine_s * 1e3),
               strprintf("%.1f%%", (1 - r.engine_s / r.oneshot_s) * 100),
               strprintf("%.0f%%", r.hit_rate * 100),
               strprintf("%.2f / %.2f", r.peak_bytes / 1048576.0,
                         r.peak_bytes_oneshot / 1048576.0)});
    rows.push_back(r);
  }
  t.print();
  std::printf(
      "(plan + communicator splits amortized over the batch; peak memory "
      "unchanged)\n");
  write_engine_json(rows, P, iters, "BENCH_engine.json");
}

void print_tables() {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;  // 16 ranks span 4 simulated nodes
  mach.cores_per_node = 4;
  const int P = 16;
  std::printf(
      "\n=== Engine runs (threads, real data): scaled-down classes, P=%d "
      "===\n",
      P);
  TextTable t({"class", "m,n,k", "CA3DMM ms", "COSMA ms", "CTF ms",
               "CA3DMM fastest"});
  for (const SmallClass& sc : small_classes()) {
    const double ca = run_engine(Algo::kCa3dmm, sc, P, mach);
    const double co = run_engine(Algo::kCosma, sc, P, mach);
    const double ct = run_engine(Algo::kCtf, sc, P, mach);
    t.add_row({sc.name, strprintf("%lld,%lld,%lld", (long long)sc.m,
                                  (long long)sc.n, (long long)sc.k),
               strprintf("%.3f", ca * 1e3), strprintf("%.3f", co * 1e3),
               strprintf("%.3f", ct * 1e3),
               (ca <= co * 1.02 && ca <= ct) ? "yes" : "no"});
  }
  t.print();
  std::printf("\n(simulated milliseconds; CTF includes its remapping pass)\n");
  print_engine_iterative();
}

void register_benchmarks() {
  // Host wall-time benchmark of the local GEMM kernel (the one real-time
  // measurement in the suite).
  benchmark::RegisterBenchmark("local_gemm/256", [](benchmark::State& st) {
    const i64 n = 256;
    std::vector<double> a(static_cast<size_t>(n * n), 1.5),
        b(static_cast<size_t>(n * n), 0.5), c(static_cast<size_t>(n * n));
    for (auto _ : st) {
      gemm_blocked<double>(false, false, n, n, n, 1.0, a.data(), b.data(),
                           c.data());
      benchmark::DoNotOptimize(c.data());
    }
    st.counters["GFLOP/s"] = benchmark::Counter(
        gemm_flops(n, n, n) * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  });
  // Simulated engine runs registered as manual-time benchmarks.
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  for (const SmallClass& sc : small_classes()) {
    benchmark::RegisterBenchmark(
        strprintf("engine/CA3DMM/%s/P=16", sc.name).c_str(),
        [sc, mach](benchmark::State& st) {
          for (auto _ : st) {
            st.SetIterationTime(run_engine(Algo::kCa3dmm, sc, 16, mach));
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
