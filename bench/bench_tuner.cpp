// Auto-tuner gate bench: warms a tuning database over the four scaled
// problem classes at P = 32 and checks the claims docs/TUNING.md makes.
//
// Gates (exit nonzero on any failure):
//   1. tuned <= auto on every key: the validated winner is never slower
//      than the engine's heuristic config (solver grid + tuned collectives),
//      and at least one class is strictly faster.
//   2. every winner passed the executed-vs-predicted drift gate (1e-6).
//   3. persistence: save -> reload -> find() hits every key with a
//      byte-identical entry and no re-search, and a PgemmEngine handed the
//      reloaded DB consults it (tuned_for returns the winner config).
//
// Also reports the search cost per class: candidates pruned by the cost
// model vs validated with traced simulator runs. Emits BENCH_tuner.json.
#include "bench_common.hpp"

#include <cstdio>

#include "engine/engine.hpp"
#include "tuner/db.hpp"
#include "tuner/tuner.hpp"

namespace ca3dmm::bench {
namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

constexpr int kP = 32;

struct TunerRow {
  const char* name;
  i64 m, n, k;
  tuner::TuneResult result;
  bool winner_drift_ok = false;
};

/// The winner's drift verdict: locate it among the validated finalists.
bool winner_drift_ok(const tuner::TuneResult& r) {
  for (const tuner::CandidateReport& f : r.finalists)
    if (f.config == r.entry.config) return f.validated && f.drift_ok;
  return false;
}

void write_tuner_json(const std::vector<TunerRow>& rows, bool reload_ok,
                      bool engine_ok, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"tuner\",\n  \"P\": %d,\n", kP);
  std::fprintf(f, "  \"schema_version\": %d,\n  \"cost_model_version\": %d,\n",
               tuner::TuningDb::kSchemaVersion, costmodel::kCostModelVersion);
  std::fprintf(f, "  \"reload_hits_without_research\": %s,\n",
               reload_ok ? "true" : "false");
  std::fprintf(f, "  \"engine_consults_db\": %s,\n",
               engine_ok ? "true" : "false");
  std::fprintf(f, "  \"classes\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const TunerRow& r = rows[i];
    const tuner::TuningEntry& e = r.result.entry;
    std::fprintf(
        f,
        "    {\"class\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld,\n"
        "     \"auto_sim_s\": %.9f, \"tuned_sim_s\": %.9f,\n"
        "     \"speedup\": %.4f, \"winner_is_heuristic\": %s,\n"
        "     \"grid\": \"%dx%dx%d\", \"overlap\": %s,\n"
        "     \"candidates_total\": %lld, \"candidates_pruned\": %lld,\n"
        "     \"candidates_validated\": %lld, \"drift_ok\": %s}%s\n",
        r.name, static_cast<long long>(r.m), static_cast<long long>(r.n),
        static_cast<long long>(r.k), r.result.heuristic_s, e.validated_s,
        e.validated_s > 0 ? r.result.heuristic_s / e.validated_s : 0.0,
        r.result.winner_is_heuristic ? "true" : "false", e.config.grid.pm,
        e.config.grid.pn, e.config.grid.pk,
        e.config.overlap ? "true" : "false",
        static_cast<long long>(r.result.candidates_total),
        static_cast<long long>(r.result.candidates_pruned),
        static_cast<long long>(r.result.candidates_validated),
        r.winner_drift_ok ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int run_gates() {
  const Machine mach = Machine::phoenix_mpi();
  tuner::TunerOptions topt;
  topt.backend = bench_backend();
  tuner::Tuner tuner(mach, topt);
  tuner::TuningDb db("BENCH_tuner.db");

  std::vector<TunerRow> rows = {
      {"square", 192, 192, 192, {}, false},
      {"large-K", 48, 48, 3072, {}, false},
      {"large-M", 3072, 48, 48, {}, false},
      {"flat", 384, 384, 24, {}, false},
  };

  TextTable t({"class", "auto sim(s)", "tuned sim(s)", "speedup", "grid",
               "pruned", "validated", "drift"});
  bool all_le = true, drift_all_ok = true;
  int strict = 0;
  for (TunerRow& r : rows) {
    r.result = tuner.tune_into(db, r.m, r.n, r.k, kP);
    r.winner_drift_ok = winner_drift_ok(r.result);
    const tuner::TuningEntry& e = r.result.entry;
    if (e.validated_s > r.result.heuristic_s) all_le = false;
    if (e.validated_s < r.result.heuristic_s) ++strict;
    if (!r.winner_drift_ok) drift_all_ok = false;
    t.add_row({r.name, strprintf("%.6g", r.result.heuristic_s),
           strprintf("%.6g", e.validated_s),
           strprintf("%.3fx", r.result.heuristic_s / e.validated_s),
           grid_str(e.config.grid),
           strprintf("%lld", static_cast<long long>(r.result.candidates_pruned)),
           strprintf("%lld",
                     static_cast<long long>(r.result.candidates_validated)),
           r.winner_drift_ok ? "ok" : "FLAGGED"});
    register_sim_time(strprintf("tuner/%s/auto", r.name),
                      r.result.heuristic_s);
    register_sim_time(strprintf("tuner/%s/tuned", r.name), e.validated_s);
  }
  std::printf("== auto-tuner, four classes, P=%d ==\n%s\n", kP,
              t.str().c_str());

  // --- persistence: save -> reload -> O(1) hits, byte-identical entries ---
  bool reload_ok = db.save();
  tuner::TuningDb reloaded("BENCH_tuner.db");
  reload_ok = reload_ok && reloaded.load();
  reload_ok = reload_ok && reloaded.serialize() == db.serialize();
  for (const TunerRow& r : rows) {
    const auto hit =
        reloaded.find(tuner::make_key(r.m, r.n, r.k, kP, mach));
    if (!hit || !(*hit == r.result.entry)) reload_ok = false;
  }

  // --- the engine consults the reloaded DB on a plan-cache miss ---
  bool engine_ok = true;
  {
    Cluster cl(kP, mach);
    cl.set_backend(bench_backend());
    cl.run([&](Comm& world) {
      engine::EngineConfig ecfg;
      ecfg.tuning_db = &reloaded;
      engine::PgemmEngine eng(world, ecfg);
      for (const TunerRow& r : rows) {
        const auto cfg = eng.tuned_for(r.m, r.n, r.k);
        if (world.rank() == 0 && (!cfg || !(*cfg == r.result.entry.config)))
          engine_ok = false;
      }
    });
  }

  write_tuner_json(rows, reload_ok, engine_ok, "BENCH_tuner.json");

  int rc = 0;
  if (!all_le) {
    std::fprintf(stderr, "TUNER GATE FAILED: tuned slower than auto\n");
    rc = 1;
  }
  if (strict < 1) {
    std::fprintf(stderr,
                 "TUNER GATE FAILED: no class strictly faster than auto\n");
    rc = 1;
  }
  if (!drift_all_ok) {
    std::fprintf(stderr,
                 "TUNER GATE FAILED: a winner drifted beyond tolerance\n");
    rc = 1;
  }
  if (!reload_ok) {
    std::fprintf(stderr, "TUNER GATE FAILED: save/reload round trip\n");
    rc = 1;
  }
  if (!engine_ok) {
    std::fprintf(stderr,
                 "TUNER GATE FAILED: engine did not adopt the DB config\n");
    rc = 1;
  }
  if (rc == 0)
    std::printf("tuner gates OK: tuned <= auto on all %zu keys "
                "(%d strictly faster), drift within 1e-6, reload O(1)\n",
                rows.size(), strict);
  return rc;
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  const int rc = ca3dmm::bench::run_gates();
  ca3dmm::bench::run_bench_main(argc, argv, [] {});
  return rc;
}
