// Figure 5: relative runtime breakdowns of COSMA and CA3DMM for the
// 2048-core Table II configurations. For each class, timings are normalized
// so COSMA's total equals 1. CA3DMM's "replicate A,B" includes the
// all-gather (Alg. 1 step 5) and the Cannon shift traffic, matching the
// paper's grouping.
//
// Paper shape to reproduce: similar local-computation and total
// communication (replicate + reduce) costs for both libraries in every
// class; the split between "replicate" and "reduce" shifts with the class
// (reduce-heavy for large-K, replicate-heavy for large-M/flat).
#include "bench_common.hpp"
#include "costmodel/drift.hpp"
#include "simmpi/trace.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;
using simmpi::Phase;

/// Set when the executed drift gate fails; main() turns it into a nonzero
/// exit so CI rejects a cost model that drifted away from the engine.
bool g_drift_failed = false;

struct Case {
  const char* cls;
  i64 m, n, k;
  ProcGrid grid;
};

std::vector<Case> cases() {
  return {
      {"square", 50000, 50000, 50000, ProcGrid{8, 16, 16}},
      {"large-K", 6000, 6000, 1200000, ProcGrid{2, 2, 512}},
      {"large-M", 1200000, 6000, 6000, ProcGrid{512, 2, 2}},
      {"flat", 100000, 100000, 5000, ProcGrid{32, 32, 2}},
  };
}

/// CA3DMM per-phase time under each collective backend: the paper's
/// butterfly schedules vs the tuned (auto) selection of the topology-aware
/// engine. The butterfly rows equal the main table's CA3DMM numbers; the
/// tuned rows show where hierarchical replication/reduction moves the
/// breakdown, together with the modeled inter-node traffic.
void print_backend_breakdown() {
  const Machine mach = Machine::phoenix_mpi();
  std::printf(
      "\n=== CA3DMM phase breakdown by collective backend, 2048 cores ===\n");
  TextTable t({"class", "backend", "replicate ms", "reduce ms", "shift ms",
               "compute ms", "total ms", "inter GB"});
  struct Backend {
    const char* name;
    simmpi::CollectiveConfig cfg;
  };
  const Backend backends[] = {{"butterfly", simmpi::CollectiveConfig{}},
                              {"tuned", simmpi::CollectiveConfig::tuned()}};
  for (const Case& cs : cases()) {
    for (const Backend& b : backends) {
      Workload w{cs.m, cs.n, cs.k};
      w.force_grid = cs.grid;
      w.coll = b.cfg;
      const Prediction p = costmodel::predict(Algo::kCa3dmm, w, 2048, mach);
      t.add_row({cs.cls, b.name,
                 strprintf("%.2f", p.phase(Phase::kReplicate) * 1e3),
                 strprintf("%.2f", p.phase(Phase::kReduce) * 1e3),
                 strprintf("%.2f", p.phase(Phase::kShift) * 1e3),
                 strprintf("%.2f", p.phase(Phase::kCompute) * 1e3),
                 strprintf("%.2f", p.t_total * 1e3),
                 strprintf("%.3f", p.total_inter_bytes() / 1e9)});
    }
  }
  t.print();
  std::printf(
      "\n(butterfly rows match the main table; inter GB counts the modeled\n"
      " inter-node bytes of the replication and reduction collectives)\n");
}

/// Executed drift gate: miniature, evenly divisible analogues of the four
/// Fig. 5 classes actually run on the threaded engine (P=16 over 4 simulated
/// nodes) with tracing on, and the per-phase virtual times are joined
/// against the cost model. Even shapes make every rank symmetric, so the
/// model must match to rounding (the same 1e-9-rtol regime
/// tests/test_costmodel.cpp pins); any phase outside the tight tolerance
/// fails the binary. The last case's trace is exported as Chrome trace-event
/// JSON for the CI artifact.
void print_executed_drift() {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  const int P = 16;
  struct MiniCase {
    const char* cls;
    i64 m, n, k;
    ProcGrid grid;
  };
  const MiniCase minis[] = {
      {"square", 96, 96, 96, ProcGrid{2, 4, 2}},
      {"large-K", 32, 32, 512, ProcGrid{2, 2, 4}},
      {"large-M", 512, 32, 32, ProcGrid{4, 2, 2}},
      {"flat", 96, 96, 32, ProcGrid{4, 4, 1}},
  };
  std::printf(
      "\n=== executed drift gate: engine vs model, miniature classes, "
      "P=%d ===\n",
      P);
  bool wrote_trace = false;
  for (const MiniCase& cs : minis) {
    Workload w{cs.m, cs.n, cs.k};
    w.force_grid = cs.grid;
    simmpi::Cluster cl(P, mach);
    cl.set_trace(true);
    const costmodel::DriftReport rep =
        costmodel::check_drift(Algo::kCa3dmm, w, cl);
    std::printf("\n-- %s  m=%lld n=%lld k=%lld  grid %s --\n%s", cs.cls,
                static_cast<long long>(cs.m), static_cast<long long>(cs.n),
                static_cast<long long>(cs.k), grid_str(cs.grid).c_str(),
                rep.table().c_str());
    if (!rep.ok()) {
      g_drift_failed = true;
      std::printf("^^ DRIFT GATE FAILED for class %s\n", cs.cls);
    }
    if (!wrote_trace) {
      // One representative Perfetto-loadable trace for the CI artifact.
      simmpi::write_chrome_trace_file(cl, "bench_fig5_trace.json");
      std::printf("(trace written to bench_fig5_trace.json)\n");
      wrote_trace = true;
    }
  }
  std::printf("\nexecuted drift gate: %s (rtol %.1e)\n",
              g_drift_failed ? "FAIL" : "ok",
              costmodel::DriftOptions{}.rtol);
}

void print_tables() {
  const Machine mach = Machine::phoenix_mpi();
  std::printf(
      "\n=== Fig. 5: relative runtime breakdown, 2048 cores "
      "(COSMA total = 1) ===\n");
  TextTable t({"class", "lib", "local compute", "replicate A,B", "reduce C",
               "other", "total"});
  for (const Case& cs : cases()) {
    Workload w{cs.m, cs.n, cs.k};
    w.force_grid = cs.grid;
    const Prediction co = costmodel::predict(Algo::kCosma, w, 2048, mach);
    const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, 2048, mach);
    const double norm = co.t_total;
    auto add = [&](const char* lib, const Prediction& p) {
      // "replicate A,B" for CA3DMM = all-gather + Cannon shifts (paper's
      // grouping); compute is capped by total-minus-comm because overlap
      // hides part of it.
      const double repl = p.phase(Phase::kReplicate) + p.phase(Phase::kShift);
      const double red = p.phase(Phase::kReduce);
      const double comp =
          std::min(p.phase(Phase::kCompute), p.t_total - repl - red);
      const double other = std::max(0.0, p.t_total - repl - red - comp);
      t.add_row({cs.cls, lib, strprintf("%.2f", comp / norm),
                 strprintf("%.2f", repl / norm), strprintf("%.2f", red / norm),
                 strprintf("%.2f", other / norm),
                 strprintf("%.2f", p.t_total / norm)});
    };
    add("COSMA", co);
    add("CA3DMM", ca);
  }
  t.print();
  std::printf(
      "\npaper: both libraries show similar compute and similar total\n"
      "       communication (replicate+reduce) in every class.\n");
  print_backend_breakdown();
  print_executed_drift();
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  for (const Case& cs : cases()) {
    Workload w{cs.m, cs.n, cs.k};
    w.force_grid = cs.grid;
    for (Algo algo : {Algo::kCa3dmm, Algo::kCosma}) {
      const Prediction p = costmodel::predict(algo, w, 2048, mach);
      register_sim_time(
          strprintf("fig5/%s/%s/total", costmodel::algo_name(algo), cs.cls),
          p.t_total);
    }
    Workload wt = w;
    wt.coll = simmpi::CollectiveConfig::tuned();
    register_sim_time(
        strprintf("fig5/CA3DMM-tuned/%s/total", cs.cls),
        costmodel::predict(Algo::kCa3dmm, wt, 2048, mach).t_total);
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  const int rc = ca3dmm::bench::run_bench_main(argc, argv,
                                               ca3dmm::bench::print_tables);
  if (rc != 0) return rc;
  return ca3dmm::bench::g_drift_failed ? 3 : 0;
}
