// Figure 5: relative runtime breakdowns of COSMA and CA3DMM for the
// 2048-core Table II configurations. For each class, timings are normalized
// so COSMA's total equals 1. CA3DMM's "replicate A,B" includes the
// all-gather (Alg. 1 step 5) and the Cannon shift traffic, matching the
// paper's grouping.
//
// Paper shape to reproduce: similar local-computation and total
// communication (replicate + reduce) costs for both libraries in every
// class; the split between "replicate" and "reduce" shifts with the class
// (reduce-heavy for large-K, replicate-heavy for large-M/flat).
#include "bench_common.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;
using simmpi::Phase;

struct Case {
  const char* cls;
  i64 m, n, k;
  ProcGrid grid;
};

std::vector<Case> cases() {
  return {
      {"square", 50000, 50000, 50000, ProcGrid{8, 16, 16}},
      {"large-K", 6000, 6000, 1200000, ProcGrid{2, 2, 512}},
      {"large-M", 1200000, 6000, 6000, ProcGrid{512, 2, 2}},
      {"flat", 100000, 100000, 5000, ProcGrid{32, 32, 2}},
  };
}

/// CA3DMM per-phase time under each collective backend: the paper's
/// butterfly schedules vs the tuned (auto) selection of the topology-aware
/// engine. The butterfly rows equal the main table's CA3DMM numbers; the
/// tuned rows show where hierarchical replication/reduction moves the
/// breakdown, together with the modeled inter-node traffic.
void print_backend_breakdown() {
  const Machine mach = Machine::phoenix_mpi();
  std::printf(
      "\n=== CA3DMM phase breakdown by collective backend, 2048 cores ===\n");
  TextTable t({"class", "backend", "replicate ms", "reduce ms", "shift ms",
               "compute ms", "total ms", "inter GB"});
  struct Backend {
    const char* name;
    simmpi::CollectiveConfig cfg;
  };
  const Backend backends[] = {{"butterfly", simmpi::CollectiveConfig{}},
                              {"tuned", simmpi::CollectiveConfig::tuned()}};
  for (const Case& cs : cases()) {
    for (const Backend& b : backends) {
      Workload w{cs.m, cs.n, cs.k};
      w.force_grid = cs.grid;
      w.coll = b.cfg;
      const Prediction p = costmodel::predict(Algo::kCa3dmm, w, 2048, mach);
      t.add_row({cs.cls, b.name,
                 strprintf("%.2f", p.phase(Phase::kReplicate) * 1e3),
                 strprintf("%.2f", p.phase(Phase::kReduce) * 1e3),
                 strprintf("%.2f", p.phase(Phase::kShift) * 1e3),
                 strprintf("%.2f", p.phase(Phase::kCompute) * 1e3),
                 strprintf("%.2f", p.t_total * 1e3),
                 strprintf("%.3f", p.total_inter_bytes() / 1e9)});
    }
  }
  t.print();
  std::printf(
      "\n(butterfly rows match the main table; inter GB counts the modeled\n"
      " inter-node bytes of the replication and reduction collectives)\n");
}

void print_tables() {
  const Machine mach = Machine::phoenix_mpi();
  std::printf(
      "\n=== Fig. 5: relative runtime breakdown, 2048 cores "
      "(COSMA total = 1) ===\n");
  TextTable t({"class", "lib", "local compute", "replicate A,B", "reduce C",
               "other", "total"});
  for (const Case& cs : cases()) {
    Workload w{cs.m, cs.n, cs.k};
    w.force_grid = cs.grid;
    const Prediction co = costmodel::predict(Algo::kCosma, w, 2048, mach);
    const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, 2048, mach);
    const double norm = co.t_total;
    auto add = [&](const char* lib, const Prediction& p) {
      // "replicate A,B" for CA3DMM = all-gather + Cannon shifts (paper's
      // grouping); compute is capped by total-minus-comm because overlap
      // hides part of it.
      const double repl = p.phase(Phase::kReplicate) + p.phase(Phase::kShift);
      const double red = p.phase(Phase::kReduce);
      const double comp =
          std::min(p.phase(Phase::kCompute), p.t_total - repl - red);
      const double other = std::max(0.0, p.t_total - repl - red - comp);
      t.add_row({cs.cls, lib, strprintf("%.2f", comp / norm),
                 strprintf("%.2f", repl / norm), strprintf("%.2f", red / norm),
                 strprintf("%.2f", other / norm),
                 strprintf("%.2f", p.t_total / norm)});
    };
    add("COSMA", co);
    add("CA3DMM", ca);
  }
  t.print();
  std::printf(
      "\npaper: both libraries show similar compute and similar total\n"
      "       communication (replicate+reduce) in every class.\n");
  print_backend_breakdown();
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  for (const Case& cs : cases()) {
    Workload w{cs.m, cs.n, cs.k};
    w.force_grid = cs.grid;
    for (Algo algo : {Algo::kCa3dmm, Algo::kCosma}) {
      const Prediction p = costmodel::predict(algo, w, 2048, mach);
      register_sim_time(
          strprintf("fig5/%s/%s/total", costmodel::algo_name(algo), cs.cls),
          p.t_total);
    }
    Workload wt = w;
    wt.coll = simmpi::CollectiveConfig::tuned();
    register_sim_time(
        strprintf("fig5/CA3DMM-tuned/%s/total", cs.cls),
        costmodel::predict(Algo::kCa3dmm, wt, 2048, mach).t_total);
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
