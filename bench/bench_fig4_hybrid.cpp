// Figure 4: pure MPI (24 x 1-thread ranks per node) vs MPI+OpenMP hybrid
// (1 x 24-thread rank per node) for the four problem classes, library-native
// layouts, same total core counts as Fig. 3.
//
// Paper shape to reproduce:
//   * square: pure MPI is faster for CA3DMM and COSMA (the hybrid mode has
//     larger communication cost: a lone rank cannot saturate the NIC, and
//     pure-MPI neighbor traffic partially stays inside nodes);
//   * large-K and large-M: hybrid is clearly faster (one type of collective
//     in a much smaller process group -> much lower latency cost);
//   * flat: hybrid somewhat faster.
#include "bench_common.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;

struct Row {
  const char* cls;
  int cores;
  double ca_pure, ca_hyb, co_pure, co_hyb;
};

std::vector<Row> compute_rows() {
  std::vector<Row> rows;
  const Machine pure = Machine::phoenix_mpi();
  const Machine hyb = Machine::phoenix_hybrid();
  for (const ProblemClass& pc : paper_classes()) {
    for (int cores : paper_process_counts()) {
      Workload w{pc.m, pc.n, pc.k};
      const int nodes = cores / pure.cores_per_node;
      Row r{pc.name, cores, 0, 0, 0, 0};
      r.ca_pure = costmodel::predict(Algo::kCa3dmm, w, cores, pure).t_total;
      r.ca_hyb = costmodel::predict(Algo::kCa3dmm, w, nodes, hyb).t_total;
      r.co_pure = costmodel::predict(Algo::kCosma, w, cores, pure).t_total;
      r.co_hyb = costmodel::predict(Algo::kCosma, w, nodes, hyb).t_total;
      rows.push_back(r);
    }
  }
  return rows;
}

void print_tables() {
  std::printf(
      "\n=== Fig. 4: pure MPI vs MPI+OpenMP (seconds; same core count) ===\n");
  TextTable t({"class", "cores", "CA3DMM pure", "CA3DMM hybrid", "COSMA pure",
               "COSMA hybrid", "hybrid wins (CA3DMM)"});
  for (const Row& r : compute_rows()) {
    t.add_row({r.cls, strprintf("%d", r.cores), format_seconds(r.ca_pure),
               format_seconds(r.ca_hyb), format_seconds(r.co_pure),
               format_seconds(r.co_hyb), r.ca_hyb < r.ca_pure ? "yes" : "no"});
  }
  t.print();
  TextTable csv({"class", "cores", "ca3dmm_pure_s", "ca3dmm_hybrid_s",
                 "cosma_pure_s", "cosma_hybrid_s"});
  for (const Row& r : compute_rows())
    csv.add_row({r.cls, strprintf("%d", r.cores),
                 strprintf("%.4f", r.ca_pure), strprintf("%.4f", r.ca_hyb),
                 strprintf("%.4f", r.co_pure), strprintf("%.4f", r.co_hyb)});
  csv.write_csv("fig4_hybrid.csv");
  std::printf(
      "\nwrote fig4_hybrid.csv\n"
      "paper: square -> pure MPI faster; large-K/large-M -> hybrid faster;\n"
      "       flat -> hybrid faster.\n");
}

void register_benchmarks() {
  for (const Row& r : compute_rows()) {
    register_sim_time(strprintf("fig4/CA3DMM/pure/%s/cores=%d", r.cls, r.cores),
                      r.ca_pure);
    register_sim_time(strprintf("fig4/CA3DMM/hybrid/%s/cores=%d", r.cls,
                                r.cores),
                      r.ca_hyb);
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
