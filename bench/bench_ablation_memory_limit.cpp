// Ablation (§V, first open problem): trading memory for communication.
//
// The paper's conclusion discusses "controlling the usage of extra memory in
// CA3DMM while minimizing communication costs" and proposes reducing the
// number of k-task groups (moving toward 2-D algorithms, increasing Q).
// This bench sweeps a per-process memory budget and shows the frontier: as
// the budget tightens, p_k and c shrink, eq.-(11) memory drops, and the
// simulated runtime rises toward the 2-D (SUMMA-like) regime.
#include "bench_common.hpp"

#include "core/grid_solver.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;

void print_tables() {
  const Machine mach = Machine::phoenix_mpi();
  const i64 m = 50000, n = 50000, k = 50000;
  const int P = 1536;
  const double mem_full =
      grid_memory_elems(m, n, k, find_grid(m, n, k, P)) * 8.0;

  std::printf(
      "\n=== Ablation: memory budget vs runtime (square, P=%d) ===\n", P);
  TextTable t({"budget (x unconstrained)", "grid", "eq.11 MB/proc",
               "modelled MB/proc", "time s", "slowdown"});
  double t0 = 0;
  for (double frac : {1.0, 0.8, 0.6, 0.45, 0.35, 0.25}) {
    GridOptions go;
    go.max_memory_elems = static_cast<i64>(mem_full / 8.0 * frac);
    ProcGrid g;
    try {
      g = find_grid(m, n, k, P, go);
    } catch (const Error&) {
      t.add_row({strprintf("%.2f", frac), "infeasible", "-", "-", "-", "-"});
      continue;
    }
    Workload w{m, n, k};
    w.force_grid = g;
    const Prediction p = costmodel::predict(Algo::kCa3dmm, w, P, mach);
    if (t0 == 0) t0 = p.t_total;
    t.add_row({strprintf("%.2f", frac), grid_str(g),
               format_mb(grid_memory_elems(m, n, k, g) * 8.0),
               format_mb(static_cast<double>(p.peak_bytes)),
               format_seconds(p.t_total),
               strprintf("%.2fx", p.t_total / t0)});
  }
  t.print();
  std::printf(
      "\npaper (§V): reducing the number of k-task groups moves CA3DMM\n"
      "toward 2D algorithms and increases the communication size Q.\n");
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  const i64 m = 50000, n = 50000, k = 50000;
  const int P = 1536;
  const double mem_full =
      grid_memory_elems(m, n, k, find_grid(m, n, k, P));
  for (double frac : {1.0, 0.5, 0.3}) {
    GridOptions go;
    go.max_memory_elems = static_cast<i64>(mem_full * frac);
    ProcGrid g;
    try {
      g = find_grid(m, n, k, P, go);
    } catch (const Error&) {
      continue;
    }
    Workload w{m, n, k};
    w.force_grid = g;
    const Prediction p = costmodel::predict(Algo::kCa3dmm, w, P, mach);
    register_sim_time(strprintf("ablation_mem/budget=%.1f", frac), p.t_total);
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
