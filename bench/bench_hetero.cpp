// Heterogeneous multi-cluster benchmark: prices what topology awareness buys.
//
// Three parts, all deterministic virtual time:
//
//   1. Weighted vs equal k split — an executed run on a two-cluster topology
//      whose clusters differ 4x in GEMM rate. The hetero-aware plan
//      (core/hetero.hpp: cluster-aligned grid + rate-proportional k slices)
//      must strictly beat the equal split's executed vtime, and its compute
//      load balance must be tighter (gates; nonzero exit on failure).
//   2. Drift gate on cross-cluster schedules — two symmetric clusters joined
//      by a slow inter-cluster link, forcing the two-level kCrossCluster
//      collectives. costmodel::predict must match the engine inside the
//      1e-6 gate (nonzero exit on failure).
//   3. Modeled speedup sweep — predicted equal-vs-weighted time across rate
//      ratios, showing where topology awareness starts to pay.
//
// Emits BENCH_hetero.json. The executed topology can be overridden with
// --topology (see bench_common.hpp), e.g. --topology mpi:8+gpu:8@5e-6,5e9;
// the vtime gate then applies only when the override is rate-heterogeneous.
#include <cstdio>

#include "bench_common.hpp"
#include "core/ca3dmm.hpp"
#include "core/hetero.hpp"
#include "costmodel/drift.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Workload;
using simmpi::Cluster;
using simmpi::ClusterSpec;
using simmpi::CollAlgo;
using simmpi::Comm;
using simmpi::InterClusterLink;
using simmpi::Machine;
using simmpi::RankStats;
using simmpi::Topology;

bool g_gate_failed = false;

/// Default executed topology: two 8-rank clusters, identical fabric, 4x
/// apart in GEMM rate. Compute-dominant rates so the k-split choice is what
/// the vtime measures.
Topology default_topology() {
  Machine slow = Machine::unit_test();
  slow.ranks_per_node = 2;
  slow.flops_per_core = 2e7;
  Machine fast = slow;
  fast.flops_per_core = 8e7;
  return Topology::make(
      {ClusterSpec{"slow", slow, 8}, ClusterSpec{"fast", fast, 8}},
      InterClusterLink{5e-6, 5e8});
}

struct SplitResult {
  i64 m = 0, n = 0, k = 0;
  int P = 0;
  ProcGrid grid{};
  std::vector<double> weights;
  double vtime_equal_s = 0, vtime_weighted_s = 0;
  double lb_equal = 0, lb_weighted = 0;
  bool rate_heterogeneous = false;
  double speedup() const { return vtime_equal_s / vtime_weighted_s; }
};

RankStats run_split(const Topology& topo, i64 m, i64 n, i64 k,
                    const Ca3dmmOptions& opt) {
  const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, topo.nranks(), opt);
  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  Cluster cl(topo);
  cl.set_backend(bench_backend());
  cl.run([&](Comm& world) {
    const int me = world.rank();
    std::vector<double> a, b;
    fill_local(a_nat, me, 1, a);
    fill_local(b_nat, me, 2, b);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
  });
  return cl.aggregate_stats();
}

SplitResult run_split_comparison(const Topology& topo) {
  SplitResult r;
  r.m = r.n = 48;
  r.k = 160;
  r.P = topo.nranks();
  const Ca3dmmOptions het = make_hetero_options(topo, r.m, r.n, r.k, r.P);
  Ca3dmmOptions hom;
  hom.force_grid = het.force_grid;  // same grid, equal k split
  r.grid = het.force_grid ? *het.force_grid
                          : Ca3dmmPlan::make(r.m, r.n, r.k, r.P, hom).grid();
  r.weights = het.k_weights;
  for (const double w : r.weights)
    if (w != r.weights.front()) r.rate_heterogeneous = true;

  const RankStats st_hom = run_split(topo, r.m, r.n, r.k, hom);
  const RankStats st_het = run_split(topo, r.m, r.n, r.k, het);
  r.vtime_equal_s = st_hom.vtime;
  r.vtime_weighted_s = st_het.vtime;
  r.lb_equal = st_hom.load_balance;
  r.lb_weighted = st_het.load_balance;
  return r;
}

struct DriftRow {
  const char* name;
  bool ok;
};

/// Cross-cluster collective drift: symmetric clusters + distinct link, so
/// the two-level schedules fire while per-rank timing stays symmetric.
std::vector<DriftRow> run_drift_gates() {
  Machine mach = Machine::unit_test();
  mach.ranks_per_node = 2;
  const Topology topo =
      Topology::make({ClusterSpec{"left", mach, 8}, ClusterSpec{"right", mach, 8}},
                     InterClusterLink{5e-5, 2e8});
  std::vector<DriftRow> rows;
  const auto gate = [&](const char* name, const Workload& w, Algo algo) {
    Cluster cl(topo);
    cl.set_backend(bench_backend());
    const costmodel::DriftReport rep = costmodel::check_drift(algo, w, cl);
    if (!rep.ok()) {
      std::printf("DRIFT GATE FAILED: %s\n%s", name, rep.table().c_str());
      g_gate_failed = true;
    }
    rows.push_back({name, rep.ok()});
  };

  Workload rs;
  rs.m = rs.n = 48;
  rs.k = 64;
  rs.force_grid = ProcGrid{2, 2, 4};
  rs.coll.reduce_scatter = CollAlgo::kCrossCluster;
  gate("xc reduce-scatter (cannon)", rs, Algo::kCa3dmm);
  gate("xc reduce-scatter (summa)", rs, Algo::kCa3dmmSumma);

  Workload ag;
  ag.m = 128;
  ag.n = 32;
  ag.k = 32;
  ag.force_grid = ProcGrid{8, 2, 1};
  ag.coll.allgather = CollAlgo::kCrossCluster;
  gate("xc allgather (cannon)", ag, Algo::kCa3dmm);

  Workload au = rs;
  au.coll = simmpi::CollectiveConfig::tuned();
  gate("auto -> cross-cluster", au, Algo::kCa3dmm);
  return rows;
}

struct SweepRow {
  double ratio;
  double t_equal_s, t_weighted_s;
  double speedup() const { return t_equal_s / t_weighted_s; }
};

/// Modeled equal-vs-weighted time as the fast cluster's rate grows.
std::vector<SweepRow> modeled_ratio_sweep() {
  std::vector<SweepRow> rows;
  for (const double ratio : {1.0, 2.0, 4.0, 8.0}) {
    Machine slow = Machine::unit_test();
    slow.ranks_per_node = 2;
    slow.flops_per_core = 2e7;
    Machine fast = slow;
    fast.flops_per_core = 2e7 * ratio;
    const Topology topo = Topology::make(
        {ClusterSpec{"slow", slow, 8}, ClusterSpec{"fast", fast, 8}},
        InterClusterLink{5e-6, 5e8});
    Workload w;
    w.m = w.n = 48;
    w.k = 160;
    w.force_grid = ProcGrid{2, 2, 4};
    SweepRow row;
    row.ratio = ratio;
    row.t_equal_s = costmodel::predict(Algo::kCa3dmm, w, 16, topo).t_total;
    w.k_weights = k_group_weights(topo, *w.force_grid);
    row.t_weighted_s = costmodel::predict(Algo::kCa3dmm, w, 16, topo).t_total;
    rows.push_back(row);
  }
  return rows;
}

void write_json(const SplitResult& sp, const std::vector<DriftRow>& drift,
                const std::vector<SweepRow>& sweep) {
  const char* path = "BENCH_hetero.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"hetero\",\n");
  std::fprintf(
      f,
      "  \"split\": {\"m\": %lld, \"n\": %lld, \"k\": %lld, \"P\": %d,\n"
      "    \"grid\": \"%s\", \"rate_heterogeneous\": %s,\n"
      "    \"vtime_equal_s\": %.9f, \"vtime_weighted_s\": %.9f,\n"
      "    \"speedup\": %.4f, \"load_balance_equal\": %.4f, "
      "\"load_balance_weighted\": %.4f},\n",
      (long long)sp.m, (long long)sp.n, (long long)sp.k, sp.P,
      grid_str(sp.grid).c_str(), sp.rate_heterogeneous ? "true" : "false",
      sp.vtime_equal_s, sp.vtime_weighted_s, sp.speedup(), sp.lb_equal,
      sp.lb_weighted);
  std::fprintf(f, "  \"drift_gates\": [\n");
  for (size_t i = 0; i < drift.size(); ++i)
    std::fprintf(f, "    {\"name\": \"%s\", \"ok\": %s}%s\n", drift[i].name,
                 drift[i].ok ? "true" : "false",
                 i + 1 < drift.size() ? "," : "");
  std::fprintf(f, "  ],\n  \"ratio_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i)
    std::fprintf(f,
                 "    {\"ratio\": %.1f, \"t_equal_s\": %.9f, "
                 "\"t_weighted_s\": %.9f, \"speedup\": %.4f}%s\n",
                 sweep[i].ratio, sweep[i].t_equal_s, sweep[i].t_weighted_s,
                 sweep[i].speedup(), i + 1 < sweep.size() ? "," : "");
  std::fprintf(f, "  ],\n  \"gates_ok\": %s\n}\n",
               g_gate_failed ? "false" : "true");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_tables() {
  const Topology topo =
      bench_topology() ? *bench_topology() : default_topology();
  const bool default_topo = !bench_topology().has_value();

  // ---- part 1: weighted vs equal k split, executed ----
  const SplitResult sp = run_split_comparison(topo);
  std::printf("\n=== Weighted vs equal k split (executed, %lldx%lldx%lld, "
              "P=%d, grid %s) ===\n",
              (long long)sp.m, (long long)sp.n, (long long)sp.k, sp.P,
              grid_str(sp.grid).c_str());
  TextTable st({"k split", "vtime ms", "load balance"});
  st.add_row({"equal", strprintf("%.4f", sp.vtime_equal_s * 1e3),
              strprintf("%.3f", sp.lb_equal)});
  st.add_row({"weighted", strprintf("%.4f", sp.vtime_weighted_s * 1e3),
              strprintf("%.3f", sp.lb_weighted)});
  st.print();
  std::printf("speedup: %.3fx\n", sp.speedup());
  if ((default_topo || sp.rate_heterogeneous) &&
      !(sp.vtime_weighted_s < sp.vtime_equal_s &&
        sp.lb_weighted < sp.lb_equal)) {
    std::printf("HETERO SPLIT GATE FAILED: weighted split must beat equal\n");
    g_gate_failed = true;
  }

  // ---- part 2: cross-cluster drift gates ----
  const std::vector<DriftRow> drift = run_drift_gates();
  std::printf("\n=== Cross-cluster collective drift gates (1e-6) ===\n");
  TextTable dt({"schedule", "gate"});
  for (const DriftRow& d : drift) dt.add_row({d.name, d.ok ? "ok" : "FAIL"});
  dt.print();

  // ---- part 3: modeled rate-ratio sweep ----
  const std::vector<SweepRow> sweep = modeled_ratio_sweep();
  std::printf("\n=== Modeled equal vs weighted split by rate ratio ===\n");
  TextTable wt({"rate ratio", "equal ms", "weighted ms", "speedup"});
  for (const SweepRow& r : sweep)
    wt.add_row({strprintf("%.0fx", r.ratio),
                strprintf("%.4f", r.t_equal_s * 1e3),
                strprintf("%.4f", r.t_weighted_s * 1e3),
                strprintf("%.3fx", r.speedup())});
  wt.print();

  write_json(sp, drift, sweep);
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  const int rc =
      ca3dmm::bench::run_bench_main(argc, argv, ca3dmm::bench::print_tables);
  return rc != 0 ? rc : (ca3dmm::bench::g_gate_failed ? 1 : 0);
}
