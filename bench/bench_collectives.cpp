// Topology-aware collective engine benchmarks.
//
// Two parts:
//  1. Modeled sweep — allgather / reduce-scatter costs of every schedule on
//     multi-node Fig.-4-style groups (phoenix machine, 2 and 8 full nodes)
//     across message sizes. The hierarchical schedule must strictly reduce
//     both the modeled inter-node bytes and the virtual time against the
//     flat paper butterfly for large messages.
//  2. Engine wall-clock — a 64-rank allgather + reduce-scatter sweep run
//     twice, with rank-sharded vs last-arriver data movement. Virtual times
//     are identical by construction; the comparison measures host wall
//     clock only (on a single-core host the sharded mode cannot win — the
//     numbers report whatever the hardware gives).
//
// Emits BENCH_collectives.json with both parts.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/coll_cost.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::bench {
namespace {

using simmpi::CollAlgo;
using simmpi::CollCost;
using simmpi::CollectiveConfig;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::GroupProfile;
using simmpi::LinkParams;
using simmpi::Machine;

const CollAlgo kAlgos[] = {CollAlgo::kPaperButterfly, CollAlgo::kRing,
                           CollAlgo::kRecursive, CollAlgo::kHierarchical};

struct ModelRow {
  int p = 0;
  int nodes = 0;
  const char* op = "";
  double mib = 0;
  const char* algo = "";
  double sim_s = 0;
  double inter_mib = 0;
};

/// A group of `nodes` full phoenix nodes (24 ranks each).
GroupProfile full_nodes(const Machine& m, int nodes) {
  GroupProfile g;
  g.size = nodes * m.ranks_per_node;
  g.nodes = nodes;
  g.max_ranks_per_node = m.ranks_per_node;
  g.single_node = nodes == 1;
  return g;
}

std::vector<ModelRow> modeled_sweep() {
  const Machine mach = Machine::phoenix_mpi();
  std::vector<ModelRow> rows;
  for (int nodes : {2, 8}) {
    const GroupProfile g = full_nodes(mach, nodes);
    const LinkParams l = group_link(mach, g);
    for (double mib : {1.0, 16.0, 256.0}) {
      const double bytes = mib * 1048576.0;
      for (CollAlgo a : kAlgos) {
        const CollCost ag =
            coll_allgather_cost(mach, g, l, a, bytes, g.size);
        rows.push_back({g.size, nodes, "allgather", mib, coll_algo_name(a),
                        ag.t, ag.inter_bytes / 1048576.0});
        const CollCost rs = coll_reduce_scatter_cost(mach, g, l, a, bytes,
                                                     g.size, false);
        rows.push_back({g.size, nodes, "reduce_scatter", mib,
                        coll_algo_name(a), rs.t, rs.inter_bytes / 1048576.0});
      }
    }
  }
  return rows;
}

struct WallClock {
  int P = 0;
  int iters = 0;
  double sharded_s = 0;
  double last_arriver_s = 0;
  double sharded_vtime = 0;
  double last_arriver_vtime = 0;
};

double run_sweep(int P, int iters, CollectiveConfig::DataMovement dm,
                 double* vtime_out) {
  Cluster cl(P, Machine::phoenix_mpi());
  CollectiveConfig cfg;
  cfg.data_movement = dm;
  cl.set_collective_config(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  cl.run([&](Comm& c) {
    const i64 n = 4096;  // 32 KiB per rank
    std::vector<double> mine(static_cast<size_t>(n), 1.0 + c.rank());
    std::vector<double> all(static_cast<size_t>(n * P));
    std::vector<i64> counts(static_cast<size_t>(P), n);
    std::vector<double> sb(static_cast<size_t>(n * P), 0.5);
    std::vector<double> rb(static_cast<size_t>(n));
    for (int it = 0; it < iters; ++it) {
      c.allgather(mine.data(), n, all.data());
      c.reduce_scatter(sb.data(), rb.data(), counts);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  *vtime_out = cl.aggregate_stats().vtime;
  return std::chrono::duration<double>(t1 - t0).count();
}

WallClock wallclock_sweep() {
  WallClock w;
  w.P = 64;
  w.iters = 5;
  w.sharded_s = run_sweep(w.P, w.iters, CollectiveConfig::DataMovement::kSharded,
                          &w.sharded_vtime);
  w.last_arriver_s =
      run_sweep(w.P, w.iters, CollectiveConfig::DataMovement::kLastArriver,
                &w.last_arriver_vtime);
  return w;
}

void write_json(const std::vector<ModelRow>& rows, const WallClock& w) {
  const char* path = "BENCH_collectives.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"collectives\",\n  \"modeled\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ModelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"p\": %d, \"nodes\": %d, \"op\": \"%s\", "
                 "\"mib\": %.0f, \"algo\": \"%s\", \"sim_s\": %.9f, "
                 "\"inter_mib\": %.3f}%s\n",
                 r.p, r.nodes, r.op, r.mib, r.algo, r.sim_s, r.inter_mib,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"wallclock\": {\"P\": %d, \"iters\": %d,\n"
               "    \"sharded_s\": %.6f, \"last_arriver_s\": %.6f,\n"
               "    \"sharded_vtime\": %.9f, \"last_arriver_vtime\": %.9f,\n"
               "    \"vtime_identical\": %s}\n}\n",
               w.P, w.iters, w.sharded_s, w.last_arriver_s, w.sharded_vtime,
               w.last_arriver_vtime,
               w.sharded_vtime == w.last_arriver_vtime ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_tables() {
  const std::vector<ModelRow> rows = modeled_sweep();
  std::printf(
      "\n=== Modeled collective schedules on full phoenix nodes "
      "(24 ranks/node) ===\n");
  TextTable t({"group", "op", "msg MiB", "schedule", "sim ms", "inter MiB"});
  for (const ModelRow& r : rows)
    t.add_row({strprintf("%d ranks / %d nodes", r.p, r.nodes), r.op,
               strprintf("%.0f", r.mib), r.algo,
               strprintf("%.3f", r.sim_s * 1e3),
               strprintf("%.1f", r.inter_mib)});
  t.print();
  std::printf(
      "\n(hierarchical sends each node's bytes over its NIC once: inter\n"
      " bytes drop from n*(p - r) to n*(N - 1) vs the flat butterfly)\n");

  const WallClock w = wallclock_sweep();
  std::printf(
      "\n=== Engine data movement, %d ranks, %d x (allgather + "
      "reduce-scatter) ===\n",
      w.P, w.iters);
  TextTable wt({"movement", "wall s", "virtual ms"});
  wt.add_row({"sharded", strprintf("%.3f", w.sharded_s),
              strprintf("%.3f", w.sharded_vtime * 1e3)});
  wt.add_row({"last-arriver", strprintf("%.3f", w.last_arriver_s),
              strprintf("%.3f", w.last_arriver_vtime * 1e3)});
  wt.print();
  std::printf(
      "(virtual times are identical by construction; wall clock depends on\n"
      " host core count — sharding only helps with real parallelism)\n");
  write_json(rows, w);
}

void register_benchmarks() {
  for (const ModelRow& r : modeled_sweep())
    register_sim_time(strprintf("coll/%s/p%d/%.0fMiB/%s", r.op, r.p, r.mib,
                                r.algo),
                      r.sim_s);
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
