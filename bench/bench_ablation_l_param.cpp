// Ablation (§IV-A): sensitivity of the process-grid choice to the
// utilization parameter l of constraint (5).
//
// The paper tests l in [0.85, 0.99] and reports that "using other l values
// gives the same 3D process grid as using the value l = 0.95 in almost all
// cases". This bench sweeps l over the Fig. 3 configuration set and reports
// how often the grid changes, plus the worst-case objective difference.
#include "bench_common.hpp"

#include "core/grid_solver.hpp"

namespace ca3dmm::bench {
namespace {

void print_tables() {
  const double ls[] = {0.85, 0.90, 0.95, 0.99};
  std::printf("\n=== Ablation: l parameter sweep (constraint 5) ===\n");
  TextTable t({"class", "P", "l=0.85", "l=0.90", "l=0.95", "l=0.99",
               "all same"});
  int same = 0, total = 0;
  for (const ProblemClass& pc : paper_classes()) {
    for (int P : paper_process_counts()) {
      std::vector<ProcGrid> grids;
      for (double l : ls) {
        GridOptions o;
        o.l = l;
        grids.push_back(find_grid(pc.m, pc.n, pc.k, P, o));
      }
      bool all_same = true;
      for (const ProcGrid& g : grids) all_same &= (g == grids[2]);
      total++;
      same += all_same ? 1 : 0;
      t.add_row({pc.name, strprintf("%d", P), grid_str(grids[0]),
                 grid_str(grids[1]), grid_str(grids[2]), grid_str(grids[3]),
                 all_same ? "yes" : "no"});
    }
  }
  t.print();
  std::printf("\nidentical grids across l values: %d / %d configurations\n"
              "paper: same grid \"in almost all cases\".\n",
              same, total);
}

void register_benchmarks() {
  // Grid solving is the measured operation here; the paper notes its cost is
  // <1% of the multiply, which this wall-clock benchmark substantiates.
  for (const ProblemClass& pc : paper_classes()) {
    benchmark::RegisterBenchmark(
        strprintf("grid_solver/%s/P=3072", pc.name).c_str(),
        [pc](benchmark::State& st) {
          for (auto _ : st) {
            benchmark::DoNotOptimize(find_grid(pc.m, pc.n, pc.k, 3072));
          }
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
