// Table III: GPU runtimes of COSMA, CA3DMM, and CTF on 16 and 32 simulated
// V100 GPUs (one GPU per rank, two per node), library-native layouts.
//
// Paper shape to reproduce:
//   * COSMA beats CA3DMM on square and large-K — the classes that need the
//     k-dimension reduction, where MVAPICH2's reduce-scatter degrades for
//     partial-C blocks above a message-size threshold (modelled by the
//     machine's rs penalty);
//   * large-M and flat: effectively identical;
//   * CTF is several times slower everywhere.
#include "bench_common.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;

// Paper-reported seconds for eyeball comparison: {COSMA, CA3DMM, CTF}.
struct PaperRow {
  double v16[3];
  double v32[3];
};
constexpr PaperRow kPaper[] = {
    {{5.45, 6.44, 15.46}, {4.70, 5.39, 15.20}},   // square
    {{0.91, 0.94, 4.64}, {0.70, 0.78, 3.70}},     // large-K
    {{0.90, 0.89, 13.77}, {0.64, 0.65, 14.82}},   // large-M
    {{1.22, 1.23, 11.61}, {0.82, 0.84, 12.46}},   // flat
};

void print_tables() {
  const Machine mach = Machine::phoenix_gpu();
  std::printf("\n=== Table III: GPU runtime (s), native layouts ===\n");
  TextTable t({"GPUs", "class", "CA3DMM grid", "COSMA s", "paper", "CA3DMM s",
               "paper", "CTF s", "paper"});
  int row = 0;
  for (const ProblemClass& pc : gpu_classes()) {
    for (int P : {16, 32}) {
      Workload w{pc.m, pc.n, pc.k};
      const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, P, mach);
      const Prediction co = costmodel::predict(Algo::kCosma, w, P, mach);
      const Prediction ct = costmodel::predict(Algo::kCtf, w, P, mach);
      const double* paper = P == 16 ? kPaper[row].v16 : kPaper[row].v32;
      t.add_row({strprintf("%d", P), pc.name, grid_str(ca.grid),
                 format_seconds(co.t_total), strprintf("%.2f", paper[0]),
                 format_seconds(ca.t_total), strprintf("%.2f", paper[1]),
                 format_seconds(ct.t_total), strprintf("%.2f", paper[2])});
    }
    row++;
  }
  t.print();
  std::printf(
      "\npaper: COSMA < CA3DMM on square/large-K (reduce-scatter penalty);\n"
      "       ~equal on large-M/flat; CTF several times slower.\n");
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_gpu();
  for (const ProblemClass& pc : gpu_classes())
    for (int P : {16, 32})
      for (Algo algo : {Algo::kCa3dmm, Algo::kCosma, Algo::kCtf}) {
        Workload w{pc.m, pc.n, pc.k};
        const Prediction p = costmodel::predict(algo, w, P, mach);
        register_sim_time(strprintf("table3/%s/%s/GPUs=%d",
                                    costmodel::algo_name(algo), pc.name, P),
                          p.t_total);
      }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
