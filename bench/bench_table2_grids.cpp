// Table II: COSMA and CA3DMM runtime for different problem dimensions with
// default-optimal and specified (sub-optimal) process grids, 2048 and 3072
// cores, library-native layouts, pure MPI.
//
// Paper shape to reproduce:
//   * with the same grid, CA3DMM is as fast as or faster than COSMA (up to
//     ~21% on square) — communication pattern, not grid, makes the
//     difference;
//   * a sub-optimal grid can beat the theoretically optimal one: for the
//     large-K problem at 3072 cores, 4x2x384 beats 3x3x341 because p_k=341
//     is unfavourable for the reduce-scatter collective.
#include "bench_common.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;

struct Case {
  const char* cls;
  i64 m, n, k;
  int P;
  std::optional<ProcGrid> grid;  // nullopt = library default
  const char* note;
};

std::vector<Case> cases() {
  return {
      // --- 2048 cores: paper's default grids ---
      {"square", 50000, 50000, 50000, 2048, ProcGrid{8, 16, 16}, "paper grid"},
      {"square", 50000, 50000, 50000, 2048, std::nullopt, "default"},
      {"large-K", 6000, 6000, 1200000, 2048, ProcGrid{2, 2, 512}, "paper grid"},
      {"large-M", 1200000, 6000, 6000, 2048, ProcGrid{512, 2, 2}, "paper grid"},
      {"flat", 100000, 100000, 5000, 2048, ProcGrid{32, 32, 2}, "paper grid"},
      // --- 3072 cores: optimal vs specified sub-optimal ---
      {"square", 50000, 50000, 50000, 3072, ProcGrid{16, 16, 12}, "paper grid"},
      {"large-K", 6000, 6000, 1200000, 3072, ProcGrid{3, 3, 341},
       "theoretical optimum"},
      {"large-K", 6000, 6000, 1200000, 3072, ProcGrid{4, 2, 384},
       "sub-optimal (pk=384)"},
      {"large-M", 1200000, 6000, 6000, 3072, std::nullopt, "default optimum"},
      {"large-M", 1200000, 6000, 6000, 3072, ProcGrid{384, 2, 4},
       "sub-optimal"},
      {"flat", 100000, 100000, 5000, 3072, ProcGrid{32, 32, 3}, "paper grid"},
      {"flat", 100000, 100000, 5000, 3072, ProcGrid{39, 39, 2},
       "specified (paper: faster)"},
  };
}

void print_tables() {
  const Machine mach = Machine::phoenix_mpi();
  std::printf(
      "\n=== Table II: runtime (s) per grid, native layouts, pure MPI ===\n");
  TextTable t({"P", "class", "grid", "note", "CA3DMM s", "COSMA s",
               "CA3DMM/COSMA"});
  for (const Case& cs : cases()) {
    Workload w{cs.m, cs.n, cs.k};
    w.force_grid = cs.grid;
    const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, cs.P, mach);
    const Prediction co = costmodel::predict(Algo::kCosma, w, cs.P, mach);
    t.add_row({strprintf("%d", cs.P), cs.cls, grid_str(ca.grid), cs.note,
               format_seconds(ca.t_total), format_seconds(co.t_total),
               strprintf("%.2f", ca.t_total / co.t_total)});
  }
  t.print();
  std::printf(
      "\npaper: same-grid CA3DMM <= COSMA (up to 21%% faster on square);\n"
      "       large-K @3072: 4x2x384 beats the 3x3x341 optimum.\n");
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  for (const Case& cs : cases()) {
    Workload w{cs.m, cs.n, cs.k};
    w.force_grid = cs.grid;
    const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, cs.P, mach);
    register_sim_time(strprintf("table2/CA3DMM/%s/P=%d/%s", cs.cls, cs.P,
                                grid_str(ca.grid).c_str()),
                      ca.t_total);
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
