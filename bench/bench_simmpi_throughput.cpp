// simmpi scheduler-backend throughput: the same collective-heavy workload
// executed once per backend (threads, fibers), measuring how fast the host
// can push *simulated* communication through the runtime.
//
// The workload is deliberately scheduling-bound: 32 ranks, tiny messages,
// thousands of collectives — per-op host cost is rendezvous wake-ups, not
// memcpy. The thread backend pays one kernel context switch per blocked
// rank per op; the fiber backend swaps ucontexts in user space and wakes
// exactly the keyed waiters, which is where the headline speedup comes
// from (docs/SIMMPI.md).
//
// Reported per backend, and written to BENCH_simmpi.json for CI:
//   * simulated collectives per wall-clock second (throughput)
//   * wall-clock seconds per simulated second (slowdown factor)
//
// Gates (nonzero exit on violation):
//   * fibers must execute >= 3x the thread backend's collectives/sec;
//   * both backends must produce bit-identical payload results and
//     per-rank virtual times (the determinism contract, spot-checked here
//     and pinned exhaustively by tests/test_fibers.cpp).
#include <chrono>
#include <cmath>

#include "bench_common.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::bench {
namespace {

using simmpi::Cluster;
using simmpi::Machine;

bool g_gate_failed = false;

constexpr int kRanks = 32;
constexpr int kRounds = 800;
/// Collectives per round: one allreduce + one allgather + one barrier.
constexpr int kCollPerRound = 3;

struct BackendResult {
  const char* name = "";
  double wall_s = 0;          ///< host seconds for the whole run()
  double sim_s = 0;           ///< max final virtual clock
  i64 collectives = 0;        ///< simulated collectives executed (all ranks)
  std::vector<double> payload;  ///< per-rank result value (bit-compared)
  std::vector<double> vtimes;   ///< per-rank final clocks (bit-compared)

  double coll_per_wall_s() const {
    return wall_s > 0 ? static_cast<double>(collectives) / wall_s : 0;
  }
  double wall_per_sim_s() const { return sim_s > 0 ? wall_s / sim_s : 0; }
};

/// Collective-heavy rank body; also shifts one double around the ring every
/// round so the p2p path (including the zero-copy posted-receive fast path)
/// is part of the measured mix.
BackendResult run_backend(Cluster::Backend backend, const char* name) {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 8;
  Cluster cl(kRanks, mach);
  cl.set_backend(backend);

  std::vector<double> payload(kRanks, 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  cl.run([&payload](simmpi::Comm& c) {
    const int P = c.size();
    const int rank = c.rank();
    double acc = 0;
    double in[8], out[8];
    std::vector<double> gathered(static_cast<size_t>(P));
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < 8; ++i) in[i] = rank * 1e-3 + round + i;
      c.allreduce(in, out, 8);
      acc += out[0] + out[7];
      double s = acc + rank;
      double r = 0;
      c.sendrecv(&s, 1, (rank + 1) % P, &r, 1, (rank + P - 1) % P,
                 /*tag=*/round & 0xFF);
      acc = std::fma(1e-9, r, acc);
      c.allgather(&acc, 1, gathered.data());
      acc += gathered[static_cast<size_t>((rank + round) % P)] * 1e-6;
      c.barrier();
    }
    payload[static_cast<size_t>(rank)] = acc;
  });
  const auto t1 = std::chrono::steady_clock::now();

  BackendResult res;
  res.name = name;
  res.wall_s = std::chrono::duration<double>(t1 - t0).count();
  res.collectives = static_cast<i64>(kRanks) * kRounds * kCollPerRound;
  res.payload = std::move(payload);
  for (int r = 0; r < kRanks; ++r) {
    res.vtimes.push_back(cl.stats(r).vtime);
    res.sim_s = std::max(res.sim_s, cl.stats(r).vtime);
  }
  return res;
}

void write_json(const BackendResult& th, const BackendResult& fi,
                double speedup, bool identical) {
  std::FILE* f = std::fopen("BENCH_simmpi.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_simmpi.json\n");
    g_gate_failed = true;
    return;
  }
  std::fprintf(f, "{\n  \"ranks\": %d,\n  \"rounds\": %d,\n", kRanks, kRounds);
  const auto one = [f](const char* key, const BackendResult& r) {
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"wall_s\": %.6f,\n"
                 "    \"sim_s\": %.6f,\n"
                 "    \"collectives\": %lld,\n"
                 "    \"coll_per_wall_s\": %.1f,\n"
                 "    \"wall_per_sim_s\": %.4f\n"
                 "  },\n",
                 key, r.wall_s, r.sim_s, static_cast<long long>(r.collectives),
                 r.coll_per_wall_s(), r.wall_per_sim_s());
  };
  one("threads", th);
  one("fibers", fi);
  std::fprintf(f,
               "  \"fiber_speedup\": %.2f,\n"
               "  \"bit_identical\": %s,\n"
               "  \"gate_min_speedup\": 3.0,\n"
               "  \"gate_ok\": %s\n}\n",
               speedup, identical ? "true" : "false",
               g_gate_failed ? "false" : "true");
  std::fclose(f);
  std::printf("wrote BENCH_simmpi.json\n");
}

void print_tables() {
  std::printf(
      "\n=== simmpi backend throughput: %d ranks, %d rounds x %d "
      "collectives ===\n",
      kRanks, kRounds, kCollPerRound);
  const BackendResult th = run_backend(Cluster::Backend::kThreads, "threads");
  const BackendResult fi = run_backend(Cluster::Backend::kFibers, "fibers");

  TextTable t({"backend", "wall s", "sim s", "collectives", "coll/s (wall)",
               "wall s / sim s"});
  for (const BackendResult* r : {&th, &fi})
    t.add_row({r->name, strprintf("%.3f", r->wall_s),
               strprintf("%.4f", r->sim_s),
               strprintf("%lld", static_cast<long long>(r->collectives)),
               strprintf("%.0f", r->coll_per_wall_s()),
               strprintf("%.4f", r->wall_per_sim_s())});
  t.print();

  const bool identical = th.payload == fi.payload && th.vtimes == fi.vtimes;
  const double speedup =
      th.coll_per_wall_s() > 0 ? fi.coll_per_wall_s() / th.coll_per_wall_s()
                               : 0;
  std::printf("\nfiber speedup: %.2fx (gate: >= 3x)   backends %s\n", speedup,
              identical ? "bit-identical" : "DIVERGED");
  if (!identical) {
    std::printf("^^ BACKEND DIVERGENCE: payloads or vtimes differ\n");
    g_gate_failed = true;
  }
  if (speedup < 3.0) {
    std::printf("^^ THROUGHPUT GATE FAILED: %.2fx < 3x\n", speedup);
    g_gate_failed = true;
  }
  write_json(th, fi, speedup, identical);
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  const int rc = ca3dmm::bench::run_bench_main(argc, argv,
                                               ca3dmm::bench::print_tables);
  if (rc != 0) return rc;
  return ca3dmm::bench::g_gate_failed ? 3 : 0;
}
