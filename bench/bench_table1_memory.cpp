// Table I: per-process memory usage (MB) of COSMA and CA3DMM for the four
// problem classes, P = 192..3072, library-native layouts.
//
// Paper shape to reproduce:
//   * square: CA3DMM always uses less memory than COSMA;
//   * other classes: CA3DMM uses more memory at small P (replication +
//     Cannon dual buffers) but its usage falls faster with P and drops below
//     COSMA's by the largest process counts;
//   * CA3DMM shows big drops where the process grid changes shape.
#include "bench_common.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;

// Paper-reported values (MB) for eyeball comparison.
struct PaperRow {
  const char* cls;
  double cosma[5];
  double ca3dmm[5];
};
constexpr PaperRow kPaper[] = {
    {"square  (50k,50k,50k)", {2086, 1242, 770, 484, 292}, {1490, 696, 398, 137, 106}},
    {"large-K (6k,6k,1.2M)", {848, 561, 424, 283, 171}, {1987, 1397, 497, 284, 125}},
    {"large-M (1.2M,6k,6k)", {848, 561, 424, 283, 171}, {1428, 851, 710, 213, 102}},
    {"flat    (100k,100k,5k)", {993, 616, 387, 293, 176}, {1797, 855, 433, 206, 128}},
};

void print_tables() {
  const Machine mach = Machine::phoenix_mpi();
  std::printf(
      "\n=== Table I: memory per process (MB), native layouts ===\n"
      "(\"paper\" columns are the published measurements for shape "
      "comparison)\n\n");
  TextTable t({"class", "P", "CA3DMM grid", "CA3DMM MB", "paper", "COSMA MB",
               "paper", "CA3DMM<COSMA"});
  const auto ps = paper_process_counts();
  int row = 0;
  for (const ProblemClass& pc : paper_classes()) {
    for (size_t i = 0; i < ps.size(); ++i) {
      const int P = ps[i];
      Workload w{pc.m, pc.n, pc.k};
      const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, P, mach);
      const Prediction co = costmodel::predict(Algo::kCosma, w, P, mach);
      t.add_row({pc.name, strprintf("%d", P), grid_str(ca.grid),
                 format_mb(static_cast<double>(ca.peak_bytes)),
                 strprintf("%.0f", kPaper[row].ca3dmm[i]),
                 format_mb(static_cast<double>(co.peak_bytes)),
                 strprintf("%.0f", kPaper[row].cosma[i]),
                 ca.peak_bytes < co.peak_bytes ? "yes" : "no"});
    }
    row++;
  }
  t.print();
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  for (const ProblemClass& pc : paper_classes())
    for (int P : paper_process_counts()) {
      Workload w{pc.m, pc.n, pc.k};
      const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, P, mach);
      // Report memory as a counter on a zero-time benchmark.
      benchmark::RegisterBenchmark(
          strprintf("table1/CA3DMM/%s/P=%d", pc.name, P).c_str(),
          [bytes = ca.peak_bytes](benchmark::State& st) {
            for (auto _ : st) {
            }
            st.counters["peak_MB"] =
                static_cast<double>(bytes) / (1024.0 * 1024.0);
          })
          ->Iterations(1);
    }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
