// Resilience benchmark: prices what surviving faults costs.
//
// Three parts, all deterministic virtual time:
//
//   1. Shrink-and-replan recovery latency — a threaded run with an injected
//      rank kill, recovered by ResilientRunner. Reports the failed attempt,
//      the replanned survivor run, and the end-to-end recovery latency
//      against a clean run of the same workload.
//   2. ABFT checksum overhead — modeled at the paper's Fig. 3 scale for
//      every §IV-A problem class (gate: < 10% of the unprotected time) plus
//      an executed small-scale run with an injected payload flip, corrected
//      in flight.
//   3. Drift gate on recovered runs — after shrinking, prediction at the
//      survivor count (with ABFT priced in) must still match the engine
//      exactly; a cost model that loses the engine after recovery exits
//      nonzero so CI rejects it.
//
// Emits BENCH_resilience.json. Extra faults can be layered onto part 1 with
// --fault flags (see bench_common.hpp).
#include <cstdio>

#include "bench_common.hpp"
#include "core/ca3dmm.hpp"
#include "costmodel/drift.hpp"
#include "resilience/recovery.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Workload;
using resilience::RecoveryReport;
using resilience::ResilientRunner;
using resilience::RetryPolicy;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

bool g_gate_failed = false;

/// rank_main that replans C = A·B from world.size() — the shrinkable form.
std::function<void(Comm&)> pgemm_main(i64 m, i64 n, i64 k, bool abft) {
  return [=](Comm& world) {
    const int P = world.size();
    const int me = world.rank();
    Ca3dmmOptions opt;
    opt.abft = abft;
    const Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, P, opt);
    const BlockLayout a_nat = plan.a_native();
    const BlockLayout b_nat = plan.b_native();
    const BlockLayout c_nat = plan.c_native();
    std::vector<double> a, b;
    fill_local(a_nat, me, 1, a);
    fill_local(b_nat, me, 2, b);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
  };
}

struct RecoveryResult {
  int P = 0;
  i64 m = 0, n = 0, k = 0;
  double clean_vtime_s = 0;      ///< fault-free run at the full P
  double survivor_vtime_s = 0;   ///< fault-free run at the survivor count
  RecoveryReport report;
};

RecoveryResult run_recovery_scenario() {
  RecoveryResult r;
  r.P = 9;
  r.m = r.n = r.k = 96;
  const Machine mach = Machine::unit_test();

  {
    Cluster cl(r.P, mach);
    cl.run(pgemm_main(r.m, r.n, r.k, false));
    r.clean_vtime_s = cl.aggregate_stats().vtime;
  }
  {
    Cluster cl(r.P - 1, mach);
    cl.run(pgemm_main(r.m, r.n, r.k, false));
    r.survivor_vtime_s = cl.aggregate_stats().vtime;
  }

  ResilientRunner runner(r.P, mach, RetryPolicy{.max_attempts = 3});
  simmpi::FaultPlan fp = bench_fault_plan();  // user-specified extras
  fp.kills.push_back({.rank = 4, .at_op = 4});
  runner.set_fault_plan(fp);
  r.report = runner.run(pgemm_main(r.m, r.n, r.k, false));
  return r;
}

struct OverheadRow {
  const char* cls;
  int P;
  double t_off_s, t_on_s;
  double overhead() const { return t_on_s / t_off_s - 1.0; }
};

std::vector<OverheadRow> modeled_abft_overhead() {
  const Machine mach = Machine::phoenix_mpi();
  std::vector<OverheadRow> rows;
  for (const ProblemClass& pc : paper_classes()) {
    OverheadRow row;
    row.cls = pc.name;
    row.P = 1536;
    Workload w;
    w.m = pc.m;
    w.n = pc.n;
    w.k = pc.k;
    row.t_off_s = costmodel::predict(Algo::kCa3dmm, w, row.P, mach).t_total;
    w.abft = true;
    row.t_on_s = costmodel::predict(Algo::kCa3dmm, w, row.P, mach).t_total;
    rows.push_back(row);
  }
  return rows;
}

struct ExecutedAbft {
  double vtime_off_s = 0;
  double vtime_on_s = 0;
  i64 corrected = 0;  ///< corruptions neutralized in the flip run
};

/// Executes the small protected multiply with a payload flip injected into
/// a Cannon shift message: completes (instead of aborting) with the
/// corruption corrected in flight.
ExecutedAbft run_executed_abft() {
  ExecutedAbft e;
  const Machine mach = Machine::unit_test();
  const auto run = [&](bool abft, bool flip) {
    Cluster cl(4, mach);
    if (flip) {
      simmpi::FaultPlan fp;
      for (int src = 0; src < 4; ++src)
        for (int dst = 0; dst < 4; ++dst)
          fp.flips.push_back({.src = src,
                              .dst = dst,
                              .tag = 101,
                              .nth_match = 1,
                              .offset = 0,
                              .mask = 0x40});
      cl.set_fault_plan(fp);
    }
    cl.run(pgemm_main(96, 96, 96, abft));
    if (flip) e.corrected = cl.aggregate_stats().abft_corrected;
    return cl.aggregate_stats().vtime;
  };
  e.vtime_off_s = run(false, false);
  e.vtime_on_s = run(true, false);
  run(true, true);  // corrected count from the flip run
  return e;
}

void write_json(const RecoveryResult& rec, const std::vector<OverheadRow>& ov,
                const ExecutedAbft& ex, bool drift_ok) {
  const char* path = "BENCH_resilience.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"resilience\",\n");
  std::fprintf(
      f,
      "  \"recovery\": {\"P\": %d, \"m\": %lld, \"n\": %lld, \"k\": %lld,\n"
      "    \"attempts\": %d, \"final_nranks\": %d,\n"
      "    \"clean_vtime_s\": %.9f, \"survivor_vtime_s\": %.9f,\n"
      "    \"recovered_total_vtime_s\": %.9f,\n"
      "    \"recovery_latency_s\": %.9f},\n",
      rec.P, (long long)rec.m, (long long)rec.n, (long long)rec.k,
      rec.report.attempts_used(), rec.report.final_nranks, rec.clean_vtime_s,
      rec.survivor_vtime_s, rec.report.total_vtime(),
      rec.report.total_vtime() - rec.survivor_vtime_s);
  std::fprintf(f, "  \"abft_modeled_fig3\": [\n");
  for (size_t i = 0; i < ov.size(); ++i)
    std::fprintf(f,
                 "    {\"class\": \"%s\", \"P\": %d, \"t_off_s\": %.6f, "
                 "\"t_on_s\": %.6f, \"overhead\": %.6f}%s\n",
                 ov[i].cls, ov[i].P, ov[i].t_off_s, ov[i].t_on_s,
                 ov[i].overhead(), i + 1 < ov.size() ? "," : "");
  std::fprintf(f,
               "  ],\n  \"abft_executed\": {\"vtime_off_s\": %.9f, "
               "\"vtime_on_s\": %.9f,\n    \"overhead\": %.6f, "
               "\"corrected_under_flip\": %lld},\n",
               ex.vtime_off_s, ex.vtime_on_s,
               ex.vtime_on_s / ex.vtime_off_s - 1.0, (long long)ex.corrected);
  std::fprintf(f, "  \"drift_gate_recovered_ok\": %s\n}\n",
               drift_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void print_tables() {
  // ---- part 1: recovery latency ----
  const RecoveryResult rec = run_recovery_scenario();
  std::printf("\n=== Shrink-and-replan recovery (kill rank 4, %lld^3, P=%d) "
              "===\n",
              (long long)rec.m, rec.P);
  TextTable rt({"attempt", "ranks", "outcome", "vtime ms"});
  for (const auto& a : rec.report.attempts)
    rt.add_row({strprintf("%d", a.attempt), strprintf("%d", a.nranks),
                a.ok ? "ok" : "failed", strprintf("%.3f", a.vtime * 1e3)});
  rt.print();
  std::printf("clean vtime at P=%d:        %.3f ms\n", rec.P,
              rec.clean_vtime_s * 1e3);
  std::printf("clean vtime at survivors:  %.3f ms\n",
              rec.survivor_vtime_s * 1e3);
  std::printf("recovered total vtime:     %.3f ms  (latency over survivor "
              "run: %.3f ms)\n",
              rec.report.total_vtime() * 1e3,
              (rec.report.total_vtime() - rec.survivor_vtime_s) * 1e3);
  if (!rec.report.ok || rec.report.final_nranks != rec.P - 1) {
    std::printf("RECOVERY GATE FAILED\n");
    g_gate_failed = true;
  }

  // ---- part 2: ABFT overhead ----
  const std::vector<OverheadRow> ov = modeled_abft_overhead();
  std::printf("\n=== ABFT checksum overhead, modeled at Fig. 3 scale "
              "(P=1536) ===\n");
  TextTable ot({"class", "t off (s)", "t on (s)", "overhead", "gate <10%"});
  for (const OverheadRow& r : ov) {
    const bool ok = r.overhead() < 0.10;
    ot.add_row({r.cls, strprintf("%.4f", r.t_off_s),
                strprintf("%.4f", r.t_on_s),
                strprintf("%.3f%%", r.overhead() * 100), ok ? "ok" : "FAIL"});
    if (!ok) g_gate_failed = true;
  }
  ot.print();

  const ExecutedAbft ex = run_executed_abft();
  std::printf("executed 96^3 P=4: vtime off %.3f ms, on %.3f ms "
              "(+%.3f%%); corruptions corrected under injected flips: %lld\n",
              ex.vtime_off_s * 1e3, ex.vtime_on_s * 1e3,
              (ex.vtime_on_s / ex.vtime_off_s - 1.0) * 100,
              (long long)ex.corrected);
  if (ex.corrected <= 0) {
    std::printf("ABFT GATE FAILED: injected flips were not corrected\n");
    g_gate_failed = true;
  }

  // ---- part 3: drift gate at the survivor count, protection on ----
  Workload w;
  w.m = w.n = w.k = rec.m;
  w.abft = true;
  Cluster cl(rec.report.final_nranks, Machine::unit_test());
  const auto drift = costmodel::check_drift(Algo::kCa3dmm, w, cl);
  std::printf("\n=== Drift gate at the survivor count (P=%d, abft on) ===\n%s",
              rec.report.final_nranks, drift.table().c_str());
  if (!drift.ok()) {
    std::printf("DRIFT GATE FAILED\n");
    g_gate_failed = true;
  }

  write_json(rec, ov, ex, drift.ok());
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  const int rc =
      ca3dmm::bench::run_bench_main(argc, argv, ca3dmm::bench::print_tables);
  return rc != 0 ? rc : (ca3dmm::bench::g_gate_failed ? 1 : 0);
}
