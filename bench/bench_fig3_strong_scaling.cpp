// Figure 3: strong scaling of COSMA, CA3DMM, and CTF for the four problem
// classes, in percent of machine peak, with library-native and 1-D column
// ("custom") matrix layouts, P = 192..3072 cores (pure MPI, 1 core/rank).
//
// Paper shape to reproduce:
//   * CA3DMM and COSMA scale well with native layouts on all classes;
//   * CA3DMM >= COSMA on square and flat, ~equal on large-K and large-M;
//   * CTF is far below both;
//   * custom (1-D column) layouts collapse efficiency for the
//     tall-and-skinny classes (large-K, large-M) due to conversion cost.
#include <chrono>

#include "bench_common.hpp"
#include "costmodel/drift.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;

/// Set when the real-execution drift gate fails; main() turns it into a
/// nonzero exit.
bool g_drift_failed = false;

/// Real execution at the figure's two largest process counts, on the fiber
/// backend — the whole point of fibers is that P=3072 ranks fit in one
/// address space on one box, so the strong-scaling figure's upper end can be
/// *executed*, not just predicted. Shapes are miniature (960^3, evenly
/// divisible by the paper's P=1536/3072 grids) so every rank is symmetric
/// and the executed virtual times must match the model to rounding; drift
/// beyond the 1e-6 gate fails the binary, same regime as
/// bench_fig5_breakdown's P=16 gate but at 200x the rank count.
///
/// ranks_per_node is 16 here (not Phoenix's 24) so node boundaries align
/// with the 256-rank Cannon groups. A group that straddles a node boundary
/// makes ranks asymmetric — early arrivers charge their barrier wait to
/// misc — which breaks only the per-phase *attribution* (totals stay
/// exact), but this gate pins every phase.
void print_real_execution() {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 16;
  mach.cores_per_node = 16;
  struct RealCase {
    int P;
    ProcGrid grid;
  };
  const RealCase reals[] = {
      {1536, ProcGrid{16, 16, 6}},
      {3072, ProcGrid{16, 16, 12}},
  };
  std::printf(
      "\n=== real execution on fibers: executed vs predicted, "
      "m=n=k=960 ===\n");
  for (const RealCase& rc : reals) {
    Workload w{960, 960, 960};
    w.force_grid = rc.grid;
    simmpi::Cluster cl(rc.P, mach);
    cl.set_backend(simmpi::Cluster::Backend::kFibers);
    const auto t0 = std::chrono::steady_clock::now();
    const costmodel::DriftReport rep =
        costmodel::check_drift(Algo::kCa3dmm, w, cl);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("\n-- P=%d  grid %s  (host wall %.2f s) --\n%s", rc.P,
                grid_str(rc.grid).c_str(), wall, rep.table().c_str());
    if (!rep.ok()) {
      g_drift_failed = true;
      std::printf("^^ DRIFT GATE FAILED at P=%d\n", rc.P);
    }
  }
  std::printf("\nreal-execution drift gate: %s (rtol %.1e)\n",
              g_drift_failed ? "FAIL" : "ok",
              costmodel::DriftOptions{}.rtol);
}

void print_tables() {
  const Machine mach = Machine::phoenix_mpi();
  for (bool custom : {false, true}) {
    std::printf("\n=== Fig. 3 (%s layout): %% of peak vs processes ===\n",
                custom ? "custom 1-D column" : "library-native");
    for (const ProblemClass& pc : paper_classes()) {
      TextTable t({"class", "P", "CA3DMM grid", "CA3DMM %pk", "COSMA %pk",
                   "CTF %pk", "CA3DMM s", "COSMA s", "CTF s"});
      for (int P : paper_process_counts()) {
        Workload w{pc.m, pc.n, pc.k};
        w.custom_layout = custom;
        const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, P, mach);
        const Prediction co = costmodel::predict(Algo::kCosma, w, P, mach);
        const Prediction ct = costmodel::predict(Algo::kCtf, w, P, mach);
        t.add_row({pc.name, strprintf("%d", P), grid_str(ca.grid),
                   strprintf("%.1f", ca.pct_peak(pc.m, pc.n, pc.k, P, mach)),
                   strprintf("%.1f", co.pct_peak(pc.m, pc.n, pc.k, P, mach)),
                   strprintf("%.1f", ct.pct_peak(pc.m, pc.n, pc.k, P, mach)),
                   format_seconds(ca.t_total), format_seconds(co.t_total),
                   format_seconds(ct.t_total)});
      }
      t.print();
      std::printf("\n");
    }
  }
  // Plot-ready data: one CSV per layout mode covering all classes.
  for (bool custom : {false, true}) {
    TextTable csv({"class", "P", "algo", "pct_peak", "seconds"});
    for (const ProblemClass& pc : paper_classes())
      for (int P : paper_process_counts())
        for (Algo algo : {Algo::kCa3dmm, Algo::kCosma, Algo::kCtf}) {
          Workload w{pc.m, pc.n, pc.k};
          w.custom_layout = custom;
          const Prediction p = costmodel::predict(algo, w, P, mach);
          csv.add_row({pc.name, strprintf("%d", P),
                       costmodel::algo_name(algo),
                       strprintf("%.2f", p.pct_peak(pc.m, pc.n, pc.k, P, mach)),
                       strprintf("%.4f", p.t_total)});
        }
    csv.write_csv(custom ? "fig3_custom_layout.csv" : "fig3_native_layout.csv");
  }
  std::printf("wrote fig3_native_layout.csv and fig3_custom_layout.csv\n");
  print_real_execution();
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  for (const ProblemClass& pc : paper_classes()) {
    for (int P : paper_process_counts()) {
      for (Algo algo : {Algo::kCa3dmm, Algo::kCosma, Algo::kCtf}) {
        Workload w{pc.m, pc.n, pc.k};
        const Prediction p = costmodel::predict(algo, w, P, mach);
        register_sim_time(strprintf("fig3/%s/%s/P=%d",
                                    costmodel::algo_name(algo), pc.name, P),
                          p.t_total);
      }
    }
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  const int rc = ca3dmm::bench::run_bench_main(argc, argv,
                                               ca3dmm::bench::print_tables);
  if (rc != 0) return rc;
  return ca3dmm::bench::g_drift_failed ? 3 : 0;
}
