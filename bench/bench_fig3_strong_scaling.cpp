// Figure 3: strong scaling of COSMA, CA3DMM, and CTF for the four problem
// classes, in percent of machine peak, with library-native and 1-D column
// ("custom") matrix layouts, P = 192..3072 cores (pure MPI, 1 core/rank).
//
// Paper shape to reproduce:
//   * CA3DMM and COSMA scale well with native layouts on all classes;
//   * CA3DMM >= COSMA on square and flat, ~equal on large-K and large-M;
//   * CTF is far below both;
//   * custom (1-D column) layouts collapse efficiency for the
//     tall-and-skinny classes (large-K, large-M) due to conversion cost.
#include "bench_common.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Machine;

void print_tables() {
  const Machine mach = Machine::phoenix_mpi();
  for (bool custom : {false, true}) {
    std::printf("\n=== Fig. 3 (%s layout): %% of peak vs processes ===\n",
                custom ? "custom 1-D column" : "library-native");
    for (const ProblemClass& pc : paper_classes()) {
      TextTable t({"class", "P", "CA3DMM grid", "CA3DMM %pk", "COSMA %pk",
                   "CTF %pk", "CA3DMM s", "COSMA s", "CTF s"});
      for (int P : paper_process_counts()) {
        Workload w{pc.m, pc.n, pc.k};
        w.custom_layout = custom;
        const Prediction ca = costmodel::predict(Algo::kCa3dmm, w, P, mach);
        const Prediction co = costmodel::predict(Algo::kCosma, w, P, mach);
        const Prediction ct = costmodel::predict(Algo::kCtf, w, P, mach);
        t.add_row({pc.name, strprintf("%d", P), grid_str(ca.grid),
                   strprintf("%.1f", ca.pct_peak(pc.m, pc.n, pc.k, P, mach)),
                   strprintf("%.1f", co.pct_peak(pc.m, pc.n, pc.k, P, mach)),
                   strprintf("%.1f", ct.pct_peak(pc.m, pc.n, pc.k, P, mach)),
                   format_seconds(ca.t_total), format_seconds(co.t_total),
                   format_seconds(ct.t_total)});
      }
      t.print();
      std::printf("\n");
    }
  }
  // Plot-ready data: one CSV per layout mode covering all classes.
  for (bool custom : {false, true}) {
    TextTable csv({"class", "P", "algo", "pct_peak", "seconds"});
    for (const ProblemClass& pc : paper_classes())
      for (int P : paper_process_counts())
        for (Algo algo : {Algo::kCa3dmm, Algo::kCosma, Algo::kCtf}) {
          Workload w{pc.m, pc.n, pc.k};
          w.custom_layout = custom;
          const Prediction p = costmodel::predict(algo, w, P, mach);
          csv.add_row({pc.name, strprintf("%d", P),
                       costmodel::algo_name(algo),
                       strprintf("%.2f", p.pct_peak(pc.m, pc.n, pc.k, P, mach)),
                       strprintf("%.4f", p.t_total)});
        }
    csv.write_csv(custom ? "fig3_custom_layout.csv" : "fig3_native_layout.csv");
  }
  std::printf("wrote fig3_native_layout.csv and fig3_custom_layout.csv\n");
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  for (const ProblemClass& pc : paper_classes()) {
    for (int P : paper_process_counts()) {
      for (Algo algo : {Algo::kCa3dmm, Algo::kCosma, Algo::kCtf}) {
        Workload w{pc.m, pc.n, pc.k};
        const Prediction p = costmodel::predict(algo, w, P, mach);
        register_sim_time(strprintf("fig3/%s/%s/P=%d",
                                    costmodel::algo_name(algo), pc.name, P),
                          p.t_total);
      }
    }
  }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv,
                                       ca3dmm::bench::print_tables);
}
