// Algorithm zoo: every PGEMM implementation in this repository side by side.
//
// Part 1 (cost model, paper scale): CA3DMM, CA3DMM-S, COSMA, CARMA, CTF and
// plain 2-D SUMMA on the Fig. 3 problem classes. This makes the paper's
// core premise visible: SUMMA has no k-parallelism, so for the large-K
// class it must move k-tall panels and collapses, while the 3-D algorithms
// stay near peak — the gap CA3DMM's unified view exists to close.
//
// Part 2 (real engine, reduced scale): all seven implementations — adding
// the true 2.5D algorithm and the three 1-D algorithms — run end to end on
// threads with real data, P = 16.
#include "bench_common.hpp"

#include "baselines/ctf_like.hpp"
#include "baselines/oned.hpp"
#include "baselines/p25d.hpp"
#include "baselines/summa.hpp"
#include "core/ca3dmm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm::bench {
namespace {

using costmodel::Algo;
using costmodel::Prediction;
using costmodel::Workload;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

void print_paper_scale() {
  const Machine mach = Machine::phoenix_mpi();
  const int P = 1536;
  std::printf(
      "\n=== Algorithm zoo (cost model, P=%d, native layouts, seconds) ===\n",
      P);
  TextTable t({"class", "CA3DMM", "CA3DMM-S", "COSMA", "CARMA(P=1024)",
               "CTF", "SUMMA(2D)", "2.5D"});
  for (const ProblemClass& pc : paper_classes()) {
    Workload w{pc.m, pc.n, pc.k};
    auto tt = [&](Algo a, int procs) {
      return format_seconds(costmodel::predict(a, w, procs, mach).t_total);
    };
    t.add_row({pc.name, tt(Algo::kCa3dmm, P), tt(Algo::kCa3dmmSumma, P),
               tt(Algo::kCosma, P), tt(Algo::kCarma, 1024), tt(Algo::kCtf, P),
               tt(Algo::kSumma, P), tt(Algo::kP25d, P)});
  }
  t.print();
  std::printf(
      "\nSUMMA's missing k-parallelism makes it collapse on large-K (it must\n"
      "stream k-tall panels); the 3-D algorithms stay close to each other —\n"
      "the unified-view premise of the paper.\n");
}

/// Runs one algorithm end to end on the engine; returns simulated seconds.
template <typename Fn>
double run_engine(i64 m, i64 n, i64 k, int P, const Machine& mach, Fn&& fn) {
  const BlockLayout a_lay = BlockLayout::col_1d(m, k, P);
  const BlockLayout b_lay = BlockLayout::col_1d(k, n, P);
  const BlockLayout c_lay = BlockLayout::col_1d(m, n, P);
  Cluster cl(P, mach);
  cl.run([&](Comm& world) {
    std::vector<double> a, b;
    fill_local(a_lay, world.rank(), 5, a);
    fill_local(b_lay, world.rank(), 6, b);
    std::vector<double> c(
        static_cast<size_t>(c_lay.local_size(world.rank())));
    fn(world, a_lay, a.data(), b_lay, b.data(), c_lay, c.data());
  });
  return cl.aggregate_stats().vtime;
}

void print_engine_zoo() {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  const int P = 16;
  std::printf(
      "\n=== Algorithm zoo (real engine, P=%d, simulated ms) ===\n", P);
  TextTable t({"class", "m,n,k", "CA3DMM", "COSMA", "CTF", "2.5D", "SUMMA",
               "1D-m", "1D-n", "1D-k"});
  struct SmallClass {
    const char* name;
    i64 m, n, k;
  };
  for (const SmallClass sc : {SmallClass{"square", 192, 192, 192},
                              {"large-K", 48, 48, 3072},
                              {"large-M", 3072, 48, 48},
                              {"flat", 384, 384, 24}}) {
    auto ms = [&](double s) { return strprintf("%.2f", s * 1e3); };
    const Ca3dmmPlan ca = Ca3dmmPlan::make(sc.m, sc.n, sc.k, P);
    const CosmaPlan cs = CosmaPlan::make(sc.m, sc.n, sc.k, P);
    const CtfPlan ct = CtfPlan::make(sc.m, sc.n, sc.k, P);
    const P25dPlan pd = P25dPlan::make(sc.m, sc.n, sc.k, P);
    const SummaPlan su = SummaPlan::make(sc.m, sc.n, sc.k, P);
    const CosmaPlan o_m = oned_m_plan(sc.m, sc.n, sc.k, P);
    const CosmaPlan o_n = oned_n_plan(sc.m, sc.n, sc.k, P);
    const CosmaPlan o_k = oned_k_plan(sc.m, sc.n, sc.k, P);
    t.add_row(
        {sc.name,
         strprintf("%lld,%lld,%lld", (long long)sc.m, (long long)sc.n,
                   (long long)sc.k),
         ms(run_engine(sc.m, sc.n, sc.k, P, mach,
                       [&](Comm& w, const BlockLayout& la, const double* a,
                           const BlockLayout& lb, const double* b,
                           const BlockLayout& lc, double* c) {
                         ca3dmm_multiply<double>(w, ca, false, false, la, a,
                                                 lb, b, lc, c);
                       })),
         ms(run_engine(sc.m, sc.n, sc.k, P, mach,
                       [&](Comm& w, const BlockLayout& la, const double* a,
                           const BlockLayout& lb, const double* b,
                           const BlockLayout& lc, double* c) {
                         cosma_multiply<double>(w, cs, false, false, la, a, lb,
                                                b, lc, c);
                       })),
         ms(run_engine(sc.m, sc.n, sc.k, P, mach,
                       [&](Comm& w, const BlockLayout& la, const double* a,
                           const BlockLayout& lb, const double* b,
                           const BlockLayout& lc, double* c) {
                         ctf_multiply<double>(w, ct, false, false, la, a, lb,
                                              b, lc, c);
                       })),
         ms(run_engine(sc.m, sc.n, sc.k, P, mach,
                       [&](Comm& w, const BlockLayout& la, const double* a,
                           const BlockLayout& lb, const double* b,
                           const BlockLayout& lc, double* c) {
                         p25d_multiply<double>(w, pd, false, false, la, a, lb,
                                               b, lc, c);
                       })),
         ms(run_engine(sc.m, sc.n, sc.k, P, mach,
                       [&](Comm& w, const BlockLayout& la, const double* a,
                           const BlockLayout& lb, const double* b,
                           const BlockLayout& lc, double* c) {
                         summa_multiply<double>(w, su, false, false, la, a, lb,
                                                b, lc, c);
                       })),
         ms(run_engine(sc.m, sc.n, sc.k, P, mach,
                       [&](Comm& w, const BlockLayout& la, const double* a,
                           const BlockLayout& lb, const double* b,
                           const BlockLayout& lc, double* c) {
                         cosma_multiply<double>(w, o_m, false, false, la, a,
                                                lb, b, lc, c);
                       })),
         ms(run_engine(sc.m, sc.n, sc.k, P, mach,
                       [&](Comm& w, const BlockLayout& la, const double* a,
                           const BlockLayout& lb, const double* b,
                           const BlockLayout& lc, double* c) {
                         cosma_multiply<double>(w, o_n, false, false, la, a,
                                                lb, b, lc, c);
                       })),
         ms(run_engine(sc.m, sc.n, sc.k, P, mach,
                       [&](Comm& w, const BlockLayout& la, const double* a,
                           const BlockLayout& lb, const double* b,
                           const BlockLayout& lc, double* c) {
                         cosma_multiply<double>(w, o_k, false, false, la, a,
                                                lb, b, lc, c);
                       }))});
  }
  t.print();
  std::printf(
      "\n(1-D algorithms shine only on their matching degenerate shape;\n"
      "CA3DMM's unified view matches the best specialist per class.)\n");
}

void register_benchmarks() {
  const Machine mach = Machine::phoenix_mpi();
  for (const ProblemClass& pc : paper_classes())
    for (Algo algo : {Algo::kCa3dmm, Algo::kSumma}) {
      Workload w{pc.m, pc.n, pc.k};
      const Prediction p = costmodel::predict(algo, w, 1536, mach);
      register_sim_time(strprintf("zoo/%s/%s/P=1536",
                                  costmodel::algo_name(algo), pc.name),
                        p.t_total);
    }
}

}  // namespace
}  // namespace ca3dmm::bench

int main(int argc, char** argv) {
  ca3dmm::bench::register_benchmarks();
  return ca3dmm::bench::run_bench_main(argc, argv, [] {
    ca3dmm::bench::print_paper_scale();
    ca3dmm::bench::print_engine_zoo();
  });
}
