// Generic distributed-matrix redistribution (paper Algorithm 1, steps 4/8).
//
// Converts a matrix from one BlockLayout to another over the same
// communicator with a single personalized all-to-all, optionally applying a
// transpose on the fly. CA3DMM uses this to convert user distributions to
// its library-native initial A/B distributions and to return C in the user's
// distribution; the transpose path is how `op(A) x op(B)` is supported "for
// free" during redistribution (paper §III-B).
//
// Both sides of every message derive the segment order from the same global
// layout information, so no plan metadata is exchanged: for source rank s and
// destination rank d, segments are ordered by (source rect index, destination
// rect index) and elements row-major in *source* coordinates.
#pragma once

#include <vector>

#include "layout/block_layout.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm {

/// Redistributes `src_local` (this rank's data under `src`) into `dst_local`
/// (sized dst.local_size(rank)) under `dst`.
///
/// If `transpose`, the destination layout describes the transposed index
/// space: dst.rows() == src.cols() and dst.cols() == src.rows(), and global
/// source element (i, j) lands at destination element (j, i).
///
/// Collective over `comm`; src and dst must both span comm.size() ranks.
template <typename T>
void redistribute(simmpi::Comm& comm, const BlockLayout& src,
                  const T* src_local, const BlockLayout& dst, T* dst_local,
                  bool transpose = false);

/// Byte volumes a redistribution would move. `max_*` exclude data that stays
/// on its rank (no network traffic — matches the engine's all-to-all time
/// charge); the per-rank staging sizes include it (the engine packs self
/// segments through the same buffers — matters for memory accounting).
struct RedistVolume {
  i64 max_send_bytes = 0;  ///< max over ranks, self excluded
  i64 max_recv_bytes = 0;  ///< max over ranks, self excluded
  std::vector<i64> send_bytes;  ///< per rank, self excluded (wire traffic)
  std::vector<i64> recv_bytes;  ///< per rank, self excluded (wire traffic)
  std::vector<i64> send_staging_bytes;  ///< per rank, self included
  std::vector<i64> recv_staging_bytes;  ///< per rank, self included
};
RedistVolume redistribution_volume(const BlockLayout& src,
                                   const BlockLayout& dst, bool transpose,
                                   i64 esize);

}  // namespace ca3dmm
