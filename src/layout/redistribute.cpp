#include "layout/redistribute.hpp"

#include <cstring>
#include <numeric>

namespace ca3dmm {

namespace {

/// Local-buffer base offset of each rect of `rank` under `layout`.
std::vector<i64> rect_bases(const BlockLayout& layout, int rank) {
  const auto& rs = layout.rects_of(rank);
  std::vector<i64> base(rs.size() + 1, 0);
  for (size_t t = 0; t < rs.size(); ++t) base[t + 1] = base[t] + rs[t].size();
  return base;
}

/// Maps a destination rect into source coordinates.
Rect dst_rect_in_src(const Rect& d, bool transpose) {
  return transpose ? Rect{d.c, d.r} : d;
}

/// Invokes fn(intersection_in_src_coords, s_idx, d_idx) for every overlapping
/// (source rect of src_rank, destination rect of dst_rank) pair, in the
/// canonical order both sides agree on.
template <typename Fn>
void for_each_segment(const BlockLayout& src, int src_rank,
                      const BlockLayout& dst, int dst_rank, bool transpose,
                      Fn&& fn) {
  const auto& srects = src.rects_of(src_rank);
  const auto& drects = dst.rects_of(dst_rank);
  for (size_t si = 0; si < srects.size(); ++si)
    for (size_t di = 0; di < drects.size(); ++di) {
      const Rect inter =
          intersect(srects[si], dst_rect_in_src(drects[di], transpose));
      if (!inter.empty()) fn(inter, si, di);
    }
}

}  // namespace

template <typename T>
void redistribute(simmpi::Comm& comm, const BlockLayout& src,
                  const T* src_local, const BlockLayout& dst, T* dst_local,
                  bool transpose) {
  const int P = comm.size();
  const int me = comm.rank();
  CA_REQUIRE(src.nranks() == P && dst.nranks() == P,
             "layouts span %d/%d ranks but communicator has %d", src.nranks(),
             dst.nranks(), P);
  if (transpose)
    CA_REQUIRE(dst.rows() == src.cols() && dst.cols() == src.rows(),
               "transpose redistribution needs swapped dimensions");
  else
    CA_REQUIRE(dst.rows() == src.rows() && dst.cols() == src.cols(),
               "redistribution needs matching dimensions");

  const i64 esize = static_cast<i64>(sizeof(T));
  const auto src_base = rect_bases(src, me);
  const auto dst_base = rect_bases(dst, me);
  const auto& my_srects = src.rects_of(me);
  const auto& my_drects = dst.rects_of(me);

  // --- counts ---
  std::vector<i64> scounts(static_cast<size_t>(P), 0),
      rcounts(static_cast<size_t>(P), 0);
  for (int d = 0; d < P; ++d)
    for_each_segment(src, me, dst, d, transpose,
                     [&](const Rect& r, size_t, size_t) {
                       scounts[static_cast<size_t>(d)] += r.size() * esize;
                     });
  for (int s = 0; s < P; ++s)
    for_each_segment(src, s, dst, me, transpose,
                     [&](const Rect& r, size_t, size_t) {
                       rcounts[static_cast<size_t>(s)] += r.size() * esize;
                     });

  std::vector<i64> sdispls(static_cast<size_t>(P), 0),
      rdispls(static_cast<size_t>(P), 0);
  for (int r = 1; r < P; ++r) {
    sdispls[static_cast<size_t>(r)] =
        sdispls[static_cast<size_t>(r - 1)] + scounts[static_cast<size_t>(r - 1)];
    rdispls[static_cast<size_t>(r)] =
        rdispls[static_cast<size_t>(r - 1)] + rcounts[static_cast<size_t>(r - 1)];
  }
  const i64 send_total =
      (sdispls.back() + scounts.back()) / esize;
  const i64 recv_total =
      (rdispls.back() + rcounts.back()) / esize;

  // --- pack: row-major in source coordinates, canonical segment order ---
  // Tracked: redistribution staging is part of the per-rank memory footprint
  // the paper's Table I measures.
  simmpi::TrackedBuffer<T> sendbuf(send_total);
  simmpi::trace_marker("redistribute:pack",
                       static_cast<double>(send_total * esize));
  {
    i64 pos = 0;
    for (int d = 0; d < P; ++d)
      for_each_segment(
          src, me, dst, d, transpose, [&](const Rect& r, size_t si, size_t) {
            const Rect& srect = my_srects[si];
            const i64 ld = srect.c.size();
            const T* base = src_local + src_base[si];
            for (i64 i = r.r.lo; i < r.r.hi; ++i) {
              const T* row =
                  base + (i - srect.r.lo) * ld + (r.c.lo - srect.c.lo);
              std::memcpy(&sendbuf[static_cast<size_t>(pos)], row,
                          static_cast<size_t>(r.c.size()) * sizeof(T));
              pos += r.c.size();
            }
          });
    CA_ASSERT(pos == send_total);
  }

  simmpi::TrackedBuffer<T> recvbuf(recv_total);
  comm.alltoallv_bytes(sendbuf.data(), scounts, sdispls, recvbuf.data(),
                       rcounts, rdispls);

  // --- unpack: same canonical order; apply transpose when writing ---
  simmpi::trace_marker("redistribute:unpack",
                       static_cast<double>(recv_total * esize));
  {
    i64 pos = 0;
    for (int s = 0; s < P; ++s)
      for_each_segment(
          src, s, dst, me, transpose, [&](const Rect& r, size_t, size_t di) {
            const Rect& drect = my_drects[di];
            const i64 ld = drect.c.size();
            T* base = dst_local + dst_base[di];
            if (!transpose) {
              for (i64 i = r.r.lo; i < r.r.hi; ++i) {
                T* row = base + (i - drect.r.lo) * ld + (r.c.lo - drect.c.lo);
                std::memcpy(row, &recvbuf[static_cast<size_t>(pos)],
                            static_cast<size_t>(r.c.size()) * sizeof(T));
                pos += r.c.size();
              }
            } else {
              // Source element (i, j) lands at destination (j, i).
              for (i64 i = r.r.lo; i < r.r.hi; ++i)
                for (i64 j = r.c.lo; j < r.c.hi; ++j)
                  base[(j - drect.r.lo) * ld + (i - drect.c.lo)] =
                      recvbuf[static_cast<size_t>(pos++)];
            }
          });
    CA_ASSERT(pos == recv_total);
  }
}

RedistVolume redistribution_volume(const BlockLayout& src,
                                   const BlockLayout& dst, bool transpose,
                                   i64 esize) {
  const int P = src.nranks();
  RedistVolume v;
  v.send_bytes.assign(static_cast<size_t>(P), 0);
  v.recv_bytes.assign(static_cast<size_t>(P), 0);
  v.send_staging_bytes.assign(static_cast<size_t>(P), 0);
  v.recv_staging_bytes.assign(static_cast<size_t>(P), 0);
  if (!transpose && src == dst) {
    // Identity conversion: everything stays local.
    for (int r = 0; r < P; ++r) {
      v.send_staging_bytes[static_cast<size_t>(r)] = src.local_size(r) * esize;
      v.recv_staging_bytes[static_cast<size_t>(r)] = src.local_size(r) * esize;
    }
    return v;
  }
  for (int s = 0; s < P; ++s)
    for (int d = 0; d < P; ++d) {
      i64 bytes = 0;
      for_each_segment(src, s, dst, d, transpose,
                       [&](const Rect& r, size_t, size_t) {
                         bytes += r.size() * esize;
                       });
      v.send_staging_bytes[static_cast<size_t>(s)] += bytes;
      v.recv_staging_bytes[static_cast<size_t>(d)] += bytes;
      if (s == d) continue;  // local copies are not network traffic
      v.send_bytes[static_cast<size_t>(s)] += bytes;
      v.recv_bytes[static_cast<size_t>(d)] += bytes;
    }
  for (int r = 0; r < P; ++r) {
    v.max_send_bytes = std::max(v.max_send_bytes, v.send_bytes[static_cast<size_t>(r)]);
    v.max_recv_bytes = std::max(v.max_recv_bytes, v.recv_bytes[static_cast<size_t>(r)]);
  }
  return v;
}

template void redistribute<float>(simmpi::Comm&, const BlockLayout&,
                                  const float*, const BlockLayout&, float*,
                                  bool);
template void redistribute<double>(simmpi::Comm&, const BlockLayout&,
                                   const double*, const BlockLayout&, double*,
                                   bool);

}  // namespace ca3dmm
