#include "layout/block_layout.hpp"

#include <algorithm>
#include <vector>

namespace ca3dmm {

BlockLayout BlockLayout::row_1d(i64 rows, i64 cols, int p) {
  BlockLayout l(rows, cols, p);
  for (int r = 0; r < p; ++r) {
    Rect rect{block_range(rows, p, r), Range{0, cols}};
    if (!rect.empty()) l.add_rect(r, rect);
  }
  return l;
}

BlockLayout BlockLayout::col_1d(i64 rows, i64 cols, int p) {
  BlockLayout l(rows, cols, p);
  for (int r = 0; r < p; ++r) {
    Rect rect{Range{0, rows}, block_range(cols, p, r)};
    if (!rect.empty()) l.add_rect(r, rect);
  }
  return l;
}

BlockLayout BlockLayout::grid_2d(i64 rows, i64 cols, int pr, int pc,
                                 bool col_major_ranks) {
  BlockLayout l(rows, cols, pr * pc);
  for (int i = 0; i < pr; ++i)
    for (int j = 0; j < pc; ++j) {
      const int rank = col_major_ranks ? j * pr + i : i * pc + j;
      Rect rect{block_range(rows, pr, i), block_range(cols, pc, j)};
      if (!rect.empty()) l.add_rect(rank, rect);
    }
  return l;
}

BlockLayout BlockLayout::single(i64 rows, i64 cols, int owner, int nranks) {
  BlockLayout l(rows, cols, nranks);
  l.add_rect(owner, Rect{Range{0, rows}, Range{0, cols}});
  return l;
}

BlockLayout BlockLayout::block_cyclic(i64 rows, i64 cols, int pr, int pc,
                                      i64 rb, i64 cb) {
  CA_REQUIRE(pr >= 1 && pc >= 1 && rb >= 1 && cb >= 1,
             "bad block-cyclic parameters");
  BlockLayout l(rows, cols, pr * pc);
  for (i64 r0 = 0; r0 < rows; r0 += rb) {
    const i64 tile_i = r0 / rb;
    const Range rr{r0, std::min(rows, r0 + rb)};
    for (i64 c0 = 0; c0 < cols; c0 += cb) {
      const i64 tile_j = c0 / cb;
      const Range cc{c0, std::min(cols, c0 + cb)};
      const int rank = static_cast<int>(tile_i % pr) * pc +
                       static_cast<int>(tile_j % pc);
      l.add_rect(rank, Rect{rr, cc});
    }
  }
  return l;
}

void BlockLayout::add_rect(int rank, const Rect& rect) {
  CA_ASSERT(rank >= 0 && rank < nranks());
  CA_ASSERT(rect.r.lo >= 0 && rect.r.hi <= rows_ && rect.c.lo >= 0 &&
            rect.c.hi <= cols_);
  rects_[static_cast<size_t>(rank)].push_back(rect);
}

i64 BlockLayout::local_size(int rank) const {
  i64 s = 0;
  for (const Rect& r : rects_of(rank)) s += r.size();
  return s;
}

i64 BlockLayout::local_offset(int rank, size_t rect_idx, i64 i, i64 j) const {
  const auto& rs = rects_of(rank);
  CA_ASSERT(rect_idx < rs.size());
  i64 off = 0;
  for (size_t t = 0; t < rect_idx; ++t) off += rs[t].size();
  const Rect& r = rs[rect_idx];
  CA_ASSERT(r.r.contains(i) && r.c.contains(j));
  return off + (i - r.r.lo) * r.c.size() + (j - r.c.lo);
}

bool BlockLayout::covers_exactly() const {
  std::vector<int> cnt(static_cast<size_t>(rows_ * cols_), 0);
  for (int rank = 0; rank < nranks(); ++rank)
    for (const Rect& r : rects_of(rank))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          cnt[static_cast<size_t>(i * cols_ + j)]++;
  for (int v : cnt)
    if (v != 1) return false;
  return true;
}

}  // namespace ca3dmm
