// Distributed matrix layouts.
//
// A BlockLayout assigns every element of a global (rows x cols) index space
// to exactly one rank of a communicator; each rank owns an ordered list of
// disjoint rectangles. A rank's local buffer is the concatenation of its
// rectangles, each packed row-major, in list order.
//
// The library-native CA3DMM distributions (paper Fig. 2) and the user-facing
// distributions (1-D row/column, 2-D grid, single-owner) are all instances,
// which lets one generic redistribution routine (paper Algorithm 1 steps 4
// and 8) convert between any pair.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/partition.hpp"

namespace ca3dmm {

/// Axis-aligned rectangle of a global index space: rows `r`, columns `c`,
/// both half-open.
struct Rect {
  Range r;
  Range c;

  i64 size() const { return r.size() * c.size(); }
  bool empty() const { return r.empty() || c.empty(); }

  friend bool operator==(const Rect&, const Rect&) = default;
};

inline Rect intersect(const Rect& a, const Rect& b) {
  return Rect{intersect(a.r, b.r), intersect(a.c, b.c)};
}

/// Ownership map of a (rows x cols) global matrix over `nranks` ranks.
class BlockLayout {
 public:
  BlockLayout() = default;
  BlockLayout(i64 rows, i64 cols, int nranks)
      : rows_(rows), cols_(cols), rects_(static_cast<size_t>(nranks)) {}

  // ---- factories ----
  /// 1-D row partition: rank r owns the canonical row block r.
  static BlockLayout row_1d(i64 rows, i64 cols, int p);
  /// 1-D column partition.
  static BlockLayout col_1d(i64 rows, i64 cols, int p);
  /// 2-D grid: rank = pr_index * pc + pc_index (row-major rank order) or
  /// pc_index * pr + pr_index (column-major) over a pr x pc grid.
  static BlockLayout grid_2d(i64 rows, i64 cols, int pr, int pc,
                             bool col_major_ranks = false);
  /// Everything on one rank.
  static BlockLayout single(i64 rows, i64 cols, int owner, int nranks);
  /// ScaLAPACK-style 2-D block-cyclic distribution: tiles of rb x cb
  /// elements dealt round-robin onto a pr x pc process grid (row-major rank
  /// order). The paper highlights block-cyclic conversion as the layout
  /// real applications need (§V); COSMA ships a redistribution library for
  /// exactly this, and our generic redistribute() covers it because a rank
  /// may own many rectangles.
  static BlockLayout block_cyclic(i64 rows, i64 cols, int pr, int pc, i64 rb,
                                  i64 cb);

  i64 rows() const { return rows_; }
  i64 cols() const { return cols_; }
  int nranks() const { return static_cast<int>(rects_.size()); }

  /// Appends a rectangle to `rank`'s ownership list.
  void add_rect(int rank, const Rect& rect);

  const std::vector<Rect>& rects_of(int rank) const {
    return rects_[static_cast<size_t>(rank)];
  }

  /// Number of elements rank owns (= its local buffer length).
  i64 local_size(int rank) const;

  /// Offset in `rank`'s local buffer of global element (i, j), which must lie
  /// inside the rank's rect with index `rect_idx`.
  i64 local_offset(int rank, size_t rect_idx, i64 i, i64 j) const;

  /// True iff every global element is owned by exactly one rank. O(total
  /// rect area) — meant for tests and debug assertions.
  bool covers_exactly() const;

  friend bool operator==(const BlockLayout&, const BlockLayout&) = default;

 private:
  i64 rows_ = 0, cols_ = 0;
  std::vector<std::vector<Rect>> rects_;  ///< per-rank ownership
};

}  // namespace ca3dmm
