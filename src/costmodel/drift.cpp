#include "costmodel/drift.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/ctf_like.hpp"
#include "baselines/p25d.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/ca3dmm.hpp"

namespace ca3dmm::costmodel {

namespace {

using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Phase;
using simmpi::RankStats;

void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

PhaseDrift join(const char* name, double pred, double exec,
                const DriftOptions& o) {
  PhaseDrift d;
  d.name = name;
  d.predicted_s = pred;
  d.executed_s = exec;
  const double scale = std::max(std::abs(pred), std::abs(exec));
  const double diff = std::abs(exec - pred);
  d.rel = scale > 0 ? diff / scale : 0.0;
  d.flagged = diff > o.atol_seconds + o.rtol * scale;
  return d;
}

}  // namespace

bool DriftReport::ok() const {
  if (total.flagged || peak_bytes_flagged) return false;
  for (const PhaseDrift& d : phases)
    if (d.flagged) return false;
  return true;
}

std::string DriftReport::table() const {
  std::string out =
      strprintf("%-14s %14s %14s %10s  %s\n", "phase", "predicted ms",
                "executed ms", "drift", "gate");
  const auto row = [&](const PhaseDrift& d) {
    if (d.predicted_s == 0 && d.executed_s == 0) return;
    out += strprintf("%-14s %14.6f %14.6f %9.4f%%  %s\n", d.name,
                     d.predicted_s * 1e3, d.executed_s * 1e3, d.rel * 100.0,
                     d.flagged ? "FAIL" : "ok");
  };
  for (const PhaseDrift& d : phases) row(d);
  row(total);
  out += strprintf("%-14s %14lld %14lld %10s  %s\n", "peak bytes",
                   static_cast<long long>(peak_bytes_predicted),
                   static_cast<long long>(peak_bytes_executed), "",
                   peak_bytes_flagged ? "FAIL" : "ok");
  return out;
}

DriftReport drift_report(const Prediction& pred, const RankStats& executed,
                         const DriftOptions& opts) {
  DriftReport rep;
  rep.opts = opts;
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p)
    rep.phases.push_back(join(simmpi::phase_name(static_cast<Phase>(p)),
                              pred.phase_s[p], executed.phase_s[p], opts));
  rep.total = join("total", pred.t_total, executed.vtime, opts);
  rep.peak_bytes_predicted = pred.peak_bytes;
  rep.peak_bytes_executed = executed.peak_bytes;
  rep.peak_bytes_flagged = pred.peak_bytes != executed.peak_bytes;
  return rep;
}

RankStats run_workload(Algo algo, const Workload& w, Cluster& cl) {
  const int P = cl.nranks();
  BlockLayout a_nat, b_nat, c_nat;
  Ca3dmmPlan ca_plan;
  CosmaPlan cs_plan;
  CtfPlan ctf_plan;
  SummaPlan su_plan;
  P25dPlan pd_plan;
  Ca3dmmOptions ca_opt;
  ca_opt.force_grid = w.force_grid;
  ca_opt.min_kblk = w.min_kblk;
  ca_opt.coll = w.coll;
  ca_opt.abft = w.abft;
  ca_opt.overlap = w.overlap;
  ca_opt.k_weights = w.k_weights;

  switch (algo) {
    case Algo::kCa3dmm:
    case Algo::kCa3dmmSumma:
      ca_opt.use_summa = (algo == Algo::kCa3dmmSumma);
      ca_plan = Ca3dmmPlan::make(w.m, w.n, w.k, P, ca_opt);
      a_nat = ca_plan.a_native();
      b_nat = ca_plan.b_native();
      c_nat = ca_plan.c_native();
      break;
    case Algo::kCosma:
      cs_plan = CosmaPlan::make(w.m, w.n, w.k, P, w.force_grid);
      a_nat = cs_plan.a_native();
      b_nat = cs_plan.b_native();
      c_nat = cs_plan.c_native();
      break;
    case Algo::kCarma:
      cs_plan = CosmaPlan::make_carma(w.m, w.n, w.k, P);
      a_nat = cs_plan.a_native();
      b_nat = cs_plan.b_native();
      c_nat = cs_plan.c_native();
      break;
    case Algo::kCtf:
      ctf_plan = CtfPlan::make(w.m, w.n, w.k, P);
      a_nat = ctf_plan.inner.a_native();
      b_nat = ctf_plan.inner.b_native();
      c_nat = ctf_plan.inner.c_native();
      break;
    case Algo::kSumma:
      su_plan = SummaPlan::make(w.m, w.n, w.k, P);
      a_nat = su_plan.a_native();
      b_nat = su_plan.b_native();
      c_nat = su_plan.c_native();
      break;
    case Algo::kP25d: {
      std::optional<std::pair<int, int>> qc;
      if (w.force_grid)
        qc = std::make_pair(w.force_grid->pm, w.force_grid->pk);
      pd_plan = P25dPlan::make(w.m, w.n, w.k, P, qc);
      a_nat = pd_plan.a_native();
      b_nat = pd_plan.b_native();
      c_nat = pd_plan.c_native();
      break;
    }
  }

  const BlockLayout a_lay =
      w.custom_layout ? BlockLayout::col_1d(w.m, w.k, P) : a_nat;
  const BlockLayout b_lay =
      w.custom_layout ? BlockLayout::col_1d(w.k, w.n, P) : b_nat;
  const BlockLayout c_lay =
      w.custom_layout ? BlockLayout::col_1d(w.m, w.n, P) : c_nat;

  cl.run([&](Comm& world) {
    std::vector<double> a, b;
    fill_local(a_lay, world.rank(), 1, a);
    fill_local(b_lay, world.rank(), 2, b);
    std::vector<double> c(static_cast<size_t>(c_lay.local_size(world.rank())));
    switch (algo) {
      case Algo::kCa3dmm:
      case Algo::kCa3dmmSumma:
        ca3dmm_multiply<double>(world, ca_plan, false, false, a_lay, a.data(),
                                b_lay, b.data(), c_lay, c.data());
        break;
      case Algo::kCosma:
      case Algo::kCarma:
        cosma_multiply<double>(world, cs_plan, false, false, a_lay, a.data(),
                               b_lay, b.data(), c_lay, c.data());
        break;
      case Algo::kCtf:
        ctf_multiply<double>(world, ctf_plan, false, false, a_lay, a.data(),
                             b_lay, b.data(), c_lay, c.data());
        break;
      case Algo::kSumma:
        summa_multiply<double>(world, su_plan, false, false, a_lay, a.data(),
                               b_lay, b.data(), c_lay, c.data());
        break;
      case Algo::kP25d:
        p25d_multiply<double>(world, pd_plan, false, false, a_lay, a.data(),
                              b_lay, b.data(), c_lay, c.data());
        break;
    }
  });
  return cl.aggregate_stats();
}

DriftReport check_drift(Algo algo, const Workload& w, Cluster& cl,
                        const DriftOptions& opts) {
  const RankStats executed = run_workload(algo, w, cl);
  const Prediction pred = predict(algo, w, cl.nranks(), cl.topology());
  return drift_report(pred, executed, opts);
}

}  // namespace ca3dmm::costmodel
