// Prediction-drift gate: joins the analytic cost model against the executed
// engine's virtual-time measurements.
//
// The model (model.hpp) is trusted to evaluate paper-scale benchmarks only
// because tests pin it to the engine at small scale. This header turns that
// pinning into a reusable runtime check: execute a workload on a Cluster the
// caller configured (machine model, TraceConfig, fault plan), aggregate the
// per-phase virtual times, and compare them phase by phase against
// costmodel::predict for the same workload. Phases outside tolerance are
// flagged; bench_fig5_breakdown and CI use ok() as a hard gate so the model
// cannot silently drift away from the engine it claims to describe.
#pragma once

#include <string>
#include <vector>

#include "costmodel/model.hpp"

namespace ca3dmm::costmodel {

struct DriftOptions {
  /// Relative tolerance on per-phase and total virtual time. Evenly
  /// divisible configurations are exact to rounding (every rank is
  /// symmetric), so gates built on them can afford a tight default; uneven
  /// shapes need the documented 15% of test_costmodel.
  double rtol = 1e-6;
  /// Absolute floor in seconds, so empty or near-empty phases (predicted and
  /// executed both ~0) never flag on rounding noise.
  double atol_seconds = 1e-12;
};

struct PhaseDrift {
  const char* name = "";    ///< phase_name() or "total"
  double predicted_s = 0;   ///< model phase time (max over ranks)
  double executed_s = 0;    ///< engine phase time (max over ranks)
  double rel = 0;           ///< |executed - predicted| / max(executed, predicted)
  bool flagged = false;     ///< outside rtol/atol tolerance
};

struct DriftReport {
  std::vector<PhaseDrift> phases;  ///< one row per simmpi::Phase
  PhaseDrift total;                ///< t_total vs final vtime
  i64 peak_bytes_predicted = 0;
  i64 peak_bytes_executed = 0;
  bool peak_bytes_flagged = false;  ///< model promises exact peak memory
  DriftOptions opts;

  /// True when no phase, the total, nor peak memory drifted out of
  /// tolerance.
  bool ok() const;
  /// Fixed-width human-readable join table (one row per non-empty phase).
  std::string table() const;
};

/// Joins a prediction against executed aggregate stats
/// (Cluster::aggregate_stats() after the run).
DriftReport drift_report(const Prediction& pred,
                         const simmpi::RankStats& executed,
                         const DriftOptions& opts = {});

/// Executes one multiply of `w` by `algo` on the caller's Cluster and
/// returns the aggregate stats. The Cluster is caller-owned so tracing can
/// be enabled beforehand and the trace exported afterwards; operands are
/// deterministic matrix_entry values, so repeated runs are bit-identical.
simmpi::RankStats run_workload(Algo algo, const Workload& w,
                               simmpi::Cluster& cl);

/// predict + run_workload + drift_report in one call.
DriftReport check_drift(Algo algo, const Workload& w, simmpi::Cluster& cl,
                        const DriftOptions& opts = {});

}  // namespace ca3dmm::costmodel
