// Admission-control pricing on top of the analytic cost model.
//
// CA3DMM's unified cost view means a request's latency and peak memory are
// known *before* it runs: costmodel::predict mirrors the executable
// operation by operation, and the drift gate (drift.hpp) holds it to the
// engine's executed virtual time within 1e-6 relative. A serving layer can
// therefore price every incoming request exactly at admission time — no
// profiling, no feedback warm-up — and make quota, scheduling, and
// load-shedding decisions that are correct by construction.
//
// A Quote prices one multiply both ways the persistent engine can run it:
//   cold_s — plan + communicator splits included (the engine's cache-miss
//            path; first request of a shape);
//   warm_s — the four cached PlanComms splits elided (every subsequent
//            request; Workload::warm_comms semantics).
// peak_bytes is identical on both paths: buffer lifetimes don't depend on
// communicator caching.
//
// CostOracle memoizes quotes by workload shape. A multi-tenant service
// prices thousands of requests drawn from a few shape classes; memoization
// makes admission O(1) per request after the first sighting of a shape,
// and — crucially for the deterministic service loop — guarantees every
// rank computes bit-identical prices from its own oracle.
#pragma once

#include <functional>
#include <map>
#include <tuple>

#include "costmodel/model.hpp"

namespace ca3dmm::costmodel {

/// Price of one multiply on P ranks, both engine paths.
struct Quote {
  double cold_s = 0;       ///< cache-miss latency (plan + comm splits)
  double warm_s = 0;       ///< cache-hit latency (PlanComms splits elided)
  i64 peak_bytes = 0;      ///< per-rank peak tracked memory (either path)
  double flops_per_rank = 0;
  ProcGrid grid{};

  /// Price of a run of `n` same-shape requests against a cache state:
  /// cold + (n-1) warm on a miss, n * warm on a hit.
  double batch_s(i64 n, bool cached) const {
    if (n <= 0) return 0;
    return cached ? static_cast<double>(n) * warm_s
                  : cold_s + static_cast<double>(n - 1) * warm_s;
  }
};

/// Memoizing front-end over costmodel::predict for one (P, machine)
/// configuration. Not thread-safe; one oracle per serving rank.
class CostOracle {
 public:
  CostOracle(int P, const simmpi::Machine& mach) : P_(P), mach_(mach) {}

  /// Quotes `w` under `algo`, memoized by the workload's cost-relevant
  /// fields (m, n, k, esize, layout, min_kblk, abft, force_grid, the
  /// collective schedule, and the overlap flag — the last three vary per
  /// shape once a tuning DB feeds the service, see tuner/db.hpp).
  /// `w.warm_comms` is ignored: a quote always carries both paths.
  const Quote& quote(Algo algo, const Workload& w);

  /// Drops every memoized quote for the exact shape (m, n, k), any algo /
  /// config. Call when the configuration the engine would run that shape
  /// with changes — e.g. the tuning DB updated its entry — so the next
  /// quote re-prices under the new config. Returns entries erased.
  i64 invalidate_shape(i64 m, i64 n, i64 k);

  /// Drops every memoized quote whose (m, n, k) satisfies `pred`. Used for
  /// tuning-key granularity (a key covers a bucket of shapes, not one
  /// exact shape). Returns entries erased. Like quote(), not thread-safe.
  i64 invalidate_if(const std::function<bool(i64 m, i64 n, i64 k)>& pred);

  int P() const { return P_; }
  const simmpi::Machine& machine() const { return mach_; }
  i64 lookups() const { return lookups_; }
  i64 evaluations() const { return evaluations_; }

 private:
  using Key =
      std::tuple<int, i64, i64, i64, i64, bool, i64, bool, int, int, int, int,
                 int, int, int, i64, bool>;
  // algo, m, n, k, esize, layout, kblk, abft, force pm/pn/pk (0,0,0 = none),
  // coll allgather/reduce_scatter/bcast/allreduce, small_message_bytes,
  // overlap

  int P_;
  simmpi::Machine mach_;
  std::map<Key, Quote> cache_;
  i64 lookups_ = 0;
  i64 evaluations_ = 0;
};

}  // namespace ca3dmm::costmodel
