#include "costmodel/admission.hpp"

namespace ca3dmm::costmodel {

const Quote& CostOracle::quote(Algo algo, const Workload& w) {
  ++lookups_;
  const ProcGrid fg = w.force_grid.value_or(ProcGrid{0, 0, 0});
  const Key key{static_cast<int>(algo),
                w.m,
                w.n,
                w.k,
                w.esize,
                w.custom_layout,
                w.min_kblk,
                w.abft,
                fg.pm,
                fg.pn,
                fg.pk,
                static_cast<int>(w.coll.allgather),
                static_cast<int>(w.coll.reduce_scatter),
                static_cast<int>(w.coll.bcast),
                static_cast<int>(w.coll.allreduce),
                w.coll.small_message_bytes,
                w.overlap};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  ++evaluations_;
  Workload cold = w;
  cold.warm_comms = false;
  Workload warm = w;
  warm.warm_comms = true;
  const Prediction pc = predict(algo, cold, P_, mach_);
  const Prediction pw = predict(algo, warm, P_, mach_);
  Quote q;
  q.cold_s = pc.t_total;
  q.warm_s = pw.t_total;
  q.peak_bytes = pc.peak_bytes;
  q.flops_per_rank = pc.flops_per_rank;
  q.grid = pc.grid;
  CA_ASSERT(pw.peak_bytes == pc.peak_bytes);  // caching never moves memory
  return cache_.emplace(key, q).first->second;
}

i64 CostOracle::invalidate_shape(i64 m, i64 n, i64 k) {
  return invalidate_if(
      [&](i64 em, i64 en, i64 ek) { return em == m && en == n && ek == k; });
}

i64 CostOracle::invalidate_if(
    const std::function<bool(i64 m, i64 n, i64 k)>& pred) {
  i64 erased = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (pred(std::get<1>(it->first), std::get<2>(it->first),
             std::get<3>(it->first))) {
      it = cache_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

}  // namespace ca3dmm::costmodel
