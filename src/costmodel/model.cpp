#include "costmodel/model.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "baselines/p25d.hpp"
#include "layout/redistribute.hpp"
#include "linalg/gemm.hpp"
#include "resilience/abft.hpp"
#include "simmpi/coll_cost.hpp"

namespace ca3dmm::costmodel {

using simmpi::GroupProfile;
using simmpi::LinkParams;
using simmpi::Machine;
using simmpi::Phase;
using simmpi::Topology;

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kCa3dmm: return "CA3DMM";
    case Algo::kCa3dmmSumma: return "CA3DMM-S";
    case Algo::kCosma: return "COSMA";
    case Algo::kCarma: return "CARMA";
    case Algo::kCtf: return "CTF";
    case Algo::kSumma: return "SUMMA";
    case Algo::kP25d: return "2.5D";
  }
  return "?";
}

namespace {

constexpr int kPhases = static_cast<int>(Phase::kCount);

/// Per-rank dry-run accumulator mirroring RankCtx + TrackedBuffer.
struct RankSim {
  double clock = 0;
  double phase[kPhases] = {};
  double inter[kPhases] = {};
  Phase cur = Phase::kMisc;
  i64 cur_bytes = 0;
  i64 peak_bytes = 0;
  double flops = 0;

  void charge(double s) {
    clock += s;
    phase[static_cast<int>(cur)] += s;
  }
  /// Charges a schedule-aware collective: virtual time plus this rank's 1/p
  /// share of the group's aggregate inter-node bytes (the engine's
  /// RankStats convention, so summing over ranks recovers the aggregate).
  void charge_coll(const simmpi::CollCost& c, int p) {
    charge(c.t);
    inter[static_cast<int>(cur)] += c.inter_bytes / p;
  }
  void alloc(i64 b) {
    cur_bytes += b;
    peak_bytes = std::max(peak_bytes, cur_bytes);
  }
  void free(i64 b) { cur_bytes -= b; }
  /// GEMM with dual-buffer overlap against `budget` seconds of comm (the
  /// GPU prototype does not pipeline, and CPU overlap is partial — mirrors
  /// the engine).
  void compute(const Machine& mach, double f, double bytes, double budget) {
    budget = mach.use_gpu ? 0.0 : budget * mach.overlap_efficiency;
    const double t = mach.gemm_time(f, bytes);
    flops += f;
    phase[static_cast<int>(Phase::kCompute)] += t;
    clock += std::max(0.0, t - budget);
  }
};

LinkParams link_of(const Machine& mach, const std::vector<int>& ranks) {
  return group_link(mach, GroupProfile::from_world_ranks(mach, ranks));
}

/// Profile + link of a group, kept together where the schedule-aware cost
/// functions need the composition (hierarchical schedules, inter-node byte
/// accounting), not just the mixed link parameters.
struct GroupInfo {
  GroupProfile prof;
  LinkParams link;
};

/// Topology-aware: exact node multiset, per-cluster parts,
/// inter-cluster link — what the engine's CommState::create builds, so the
/// schedule-aware costs below price exactly what the engine charges.
GroupInfo info_of(const Topology& topo, const std::vector<int>& ranks) {
  GroupInfo gi;
  gi.prof = GroupProfile::from_topology(topo, ranks);
  gi.link = group_link(topo.machine(), gi.prof);
  return gi;
}

GroupInfo info_range(const Topology& topo, int lo, int count) {
  std::vector<int> r(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) r[static_cast<size_t>(i)] = lo + i;
  return info_of(topo, r);
}

LinkParams link_range(const Machine& mach, int lo, int count) {
  std::vector<int> r(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) r[static_cast<size_t>(i)] = lo + i;
  return link_of(mach, r);
}

bool same_node(const Machine& mach, int a, int b) {
  return mach.node_of_rank(a) == mach.node_of_rank(b);
}

/// The engine's sendrecv exchange of `bytes` between rank r and its two ring
/// peers (receive from src, send to dst): with equal entry clocks every rank
/// advances by the slower of the two channel costs. Reduces to the old
/// single t_p2p charge when both channels share a link class (homogeneous
/// contiguous groups), and prices cross-node / cross-cluster channels
/// individually otherwise.
double t_exchange(const Topology& topo, int r, int src, int dst,
                  double bytes) {
  return std::max(simmpi::t_p2p_ranks(topo, src, r, bytes),
                  simmpi::t_p2p_ranks(topo, r, dst, bytes));
}

int wrap(int v, int s) { return ((v % s) + s) % s; }

/// Folds one finished rank simulation into the prediction maxima.
void fold(Prediction& p, const RankSim& sim) {
  p.t_total = std::max(p.t_total, sim.clock);
  for (int i = 0; i < kPhases; ++i) {
    p.phase_s[i] = std::max(p.phase_s[i], sim.phase[i]);
    p.inter_bytes_s[i] += sim.inter[i];  // sum: per-rank 1/p shares
  }
  p.peak_bytes = std::max(p.peak_bytes, sim.peak_bytes);
  p.flops_per_rank = std::max(p.flops_per_rank, sim.flops);
}

/// Identity or 1-D column user layouts for the three matrices.
struct UserLayouts {
  BlockLayout a, b, c;
};

UserLayouts user_layouts(const Workload& w, int P, const BlockLayout& a_nat,
                         const BlockLayout& b_nat, const BlockLayout& c_nat) {
  if (!w.custom_layout) return UserLayouts{a_nat, b_nat, c_nat};
  return UserLayouts{BlockLayout::col_1d(w.m, w.k, P),
                     BlockLayout::col_1d(w.k, w.n, P),
                     BlockLayout::col_1d(w.m, w.n, P)};
}

struct RedistCost {
  double t = 0;
  RedistVolume vol;
};

RedistCost redist_cost(const Machine& mach, const LinkParams& world_link,
                       int P, const BlockLayout& src, const BlockLayout& dst) {
  RedistCost rc;
  rc.vol = redistribution_volume(src, dst, false, 8);
  const double mx = static_cast<double>(
      std::max(rc.vol.max_send_bytes, rc.vol.max_recv_bytes));
  const bool single_node = P <= mach.ranks_per_node;
  rc.t = t_alltoallv_machine(mach, world_link, mx, P, single_node);
  return rc;
}

/// Topology-aware variant: anchor machine + the world group's exact profile
/// (mirrors the engine's alltoallv cost call on the world communicator).
RedistCost redist_cost(const Topology& topo, const GroupInfo& world, int P,
                       const BlockLayout& src, const BlockLayout& dst) {
  RedistCost rc;
  rc.vol = redistribution_volume(src, dst, false, 8);
  const double mx = static_cast<double>(
      std::max(rc.vol.max_send_bytes, rc.vol.max_recv_bytes));
  rc.t = t_alltoallv_machine(topo.machine(), world.link, mx, P,
                             world.prof.single_node);
  return rc;
}

/// Runs the staging-buffer + alltoallv pattern of redistribute<T>().
void sim_redistribute(RankSim& sim, const RedistCost& rc, int r) {
  sim.alloc(rc.vol.send_staging_bytes[static_cast<size_t>(r)]);
  sim.alloc(rc.vol.recv_staging_bytes[static_cast<size_t>(r)]);
  sim.charge(rc.t);
  sim.free(rc.vol.send_staging_bytes[static_cast<size_t>(r)]);
  sim.free(rc.vol.recv_staging_bytes[static_cast<size_t>(r)]);
}

double split_cost(const LinkParams& l, int p) {
  return t_allgather(l, 8.0 * p, p);
}

// ------------------------------------------------------------------
// CA3DMM
// ------------------------------------------------------------------

Prediction predict_ca3dmm(const Workload& w, int P, const Topology& topo,
                          bool use_summa) {
  // The anchor machine: what the engine passes to every coll_*_cost call
  // (cluster 0 of the topology). Per-rank compute rates come from
  // topo.machine_of_rank below, exactly like Comm::my_machine().
  const Machine& mach = topo.machine();
  Ca3dmmOptions opt;
  opt.force_grid = w.force_grid;
  opt.min_kblk = w.min_kblk;
  opt.use_summa = use_summa;
  opt.abft = w.abft;
  opt.k_weights = w.k_weights;
  const Ca3dmmPlan plan = Ca3dmmPlan::make(w.m, w.n, w.k, P, opt);
  const int s = plan.s(), c = plan.c(), pk = plan.grid().pk;
  const int active = plan.active();
  const i64 esize = w.esize;

  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  const UserLayouts ul = user_layouts(w, P, a_nat, b_nat, c_nat);

  const GroupInfo world_info = info_range(topo, 0, P);
  const GroupInfo active_info = info_range(topo, 0, active);
  const LinkParams& world_link = world_info.link;
  const RedistCost rA = redist_cost(topo, world_info, P, ul.a, a_nat);
  const RedistCost rB = redist_cost(topo, world_info, P, ul.b, b_nat);
  const RedistCost rC = redist_cost(topo, world_info, P, c_nat, ul.c);
  // Warm engine path: the four PlanComms splits are cached, so their
  // latency vanishes from the prediction (the SUMMA row/col splits below
  // are per-call in the executable too and keep charging).
  const double t_split_world =
      w.warm_comms ? 0.0 : split_cost(world_link, P);
  const double t_split_active =
      w.warm_comms ? 0.0 : split_cost(active_info.link, active);

  // Pre-compute group links (shared by all members of a group). The repl
  // and reduce groups keep their GroupProfile: the schedule-aware costs
  // need the node composition, not just the mixed link.
  std::map<int, GroupInfo> repl_infos, reduce_infos;
  std::map<int, LinkParams> cannon_links, row_links, col_links;
  for (int r = 0; r < active; ++r) {
    const RankCoord co = plan.coord(r);
    if (c > 1) {
      const int key = (co.gk * s + co.j) * s + co.i;
      if (!repl_infos.count(key)) {
        std::vector<int> mem;
        for (int g = 0; g < c; ++g) mem.push_back(plan.rank_of(co.gk, g, co.i, co.j));
        repl_infos[key] = info_of(topo, mem);
      }
    }
    if (pk > 1) {
      const int key = (co.gc * s + co.j) * s + co.i;
      if (!reduce_infos.count(key)) {
        std::vector<int> mem;
        for (int g = 0; g < pk; ++g) mem.push_back(plan.rank_of(g, co.gc, co.i, co.j));
        reduce_infos[key] = info_of(topo, mem);
      }
    }
    const int ckey = co.gk * c + co.gc;
    if (!cannon_links.count(ckey))
      cannon_links[ckey] =
          info_range(topo, plan.rank_of(co.gk, co.gc, 0, 0), s * s).link;
    if (use_summa) {
      const int rkey = (co.gk * c + co.gc) * s + co.i;  // row: fixed i
      if (!row_links.count(rkey)) {
        std::vector<int> mem;
        for (int j = 0; j < s; ++j) mem.push_back(plan.rank_of(co.gk, co.gc, co.i, j));
        row_links[rkey] = info_of(topo, mem).link;
      }
      const int lkey = (co.gk * c + co.gc) * s + co.j;  // col: fixed j
      if (!col_links.count(lkey)) {
        std::vector<int> mem;
        for (int i = 0; i < s; ++i) mem.push_back(plan.rank_of(co.gk, co.gc, i, co.j));
        col_links[lkey] = info_of(topo, mem).link;
      }
    }
  }

  Prediction p;
  p.grid = plan.grid();
  p.active = active;
  double lb_max = 0, lb_sum = 0;
  int lb_n = 0;

  for (int r = 0; r < P; ++r) {
    RankSim sim;
    const RankCoord co = plan.coord(r);
    // Per-rank machine: compute (and local memory scans) are priced at the
    // rank's own cluster rate; collective formulas keep the anchor machine,
    // mirroring the engine's anchor convention.
    const Machine& rm = topo.machine_of_rank(r);

    // ---- redistribution of A and B (all ranks) ----
    sim.cur = Phase::kRedistribute;
    const i64 a_init_bytes = a_nat.local_size(r) * esize;
    const i64 b_init_bytes = b_nat.local_size(r) * esize;
    // Engine order: both init buffers are constructed before the first
    // redistribution runs.
    sim.alloc(a_init_bytes);
    sim.alloc(b_init_bytes);
    sim_redistribute(sim, rA, r);
    sim_redistribute(sim, rB, r);

    sim.cur = Phase::kMisc;
    sim.charge(t_split_world);

    i64 a_live = a_init_bytes, b_live = b_init_bytes;
    i64 c_result_bytes = 0;
    if (co.active) {
      const i64 mb = plan.m_range(co.I).size();
      const i64 nb = plan.n_range(co.J).size();
      std::vector<i64> kparts(static_cast<size_t>(s));
      i64 kb_max = 0, kb_total = 0;
      for (int t = 0; t < s; ++t) {
        kparts[static_cast<size_t>(t)] = plan.kpart(co.gk, t).size();
        kb_max = std::max(kb_max, kparts[static_cast<size_t>(t)]);
        kb_total += kparts[static_cast<size_t>(t)];
      }
      sim.charge(t_split_active);  // cannon split

      // ---- replication ----
      if (c > 1) {
        sim.charge(t_split_active);  // repl split
        sim.cur = Phase::kReplicate;
        const GroupInfo& rg = repl_infos[(co.gk * s + co.j) * s + co.i];
        auto ag_cost = [&](i64 blk) {
          const double bytes = static_cast<double>(blk);
          const simmpi::CollAlgo alg = resolve_coll_algo(
              w.coll.allgather, rg.prof, bytes, w.coll.small_message_bytes);
          return coll_allgather_cost(mach, rg.prof, rg.link, alg, bytes, c);
        };
        if (plan.replicates_a()) {
          const i64 blk = plan.kpart(co.gk, co.j).size() * mb * esize;
          sim.alloc(blk);  // gathered
          sim.alloc(blk);  // a_blk
          sim.charge_coll(ag_cost(blk), c);
          sim.free(a_live);  // a_init released
          a_live = blk;
          sim.free(blk);  // gathered (scope end)
        } else {
          const i64 blk = plan.kpart(co.gk, co.i).size() * nb * esize;
          sim.alloc(blk);  // b_blk
          sim.charge_coll(ag_cost(blk), c);
          sim.free(b_live);
          b_live = blk;
        }
        sim.cur = Phase::kMisc;
      }

      // ---- 2-D engine ----
      const i64 c_partial_bytes = mb * nb * esize;
      sim.alloc(c_partial_bytes);
      auto kpart_of = [&](int t) {
        return kparts[static_cast<size_t>(wrap(t, s))];
      };
      if (s == 1) {
        sim.compute(rm, gemm_flops(mb, nb, kpart_of(0)),
                    gemm_bytes(mb, nb, kpart_of(0), esize), 0.0);
        sim.free(a_live);
        sim.free(b_live);
        a_live = b_live = 0;
      } else if (!use_summa) {
        // Cannon: current buffers, skew, source release, dual buffers, then
        // s steps with aggregation (mirrors engine allocation order).
        // ABFT (when on) enlarges every message by its checksum trailer and
        // adds one encode scan before each send plus one decode scan after
        // each receive, at exactly the engine's program points.
        auto tre = [&](i64 payload_elems) {
          return w.abft
                     ? resilience::abft_trailer_elems(payload_elems, esize)
                     : static_cast<i64>(0);
        };
        auto scan_t = [&](i64 payload_elems) {
          return static_cast<double>(payload_elems * esize) /
                 rm.intra_rank_bandwidth();
        };
        const i64 bufs = 2 * (mb * kb_max + tre(mb * kb_max)) * esize +
                         2 * (kb_max * nb + tre(kb_max * nb)) * esize;
        sim.alloc(bufs / 2);
        sim.cur = Phase::kShift;
        {
          // Skew A: recv from (i, j+i); B: recv from (i+j, j). With ABFT the
          // outgoing message is staged (the input block is const), encoded,
          // and decoded on arrival.
          const int srcA = plan.rank_of(co.gk, co.gc, co.i, wrap(co.j + co.i, s));
          const int dstA = plan.rank_of(co.gk, co.gc, co.i, wrap(co.j - co.i, s));
          const i64 paS = kpart_of(co.j) * mb;
          const i64 paR = kpart_of(co.j + co.i) * mb;
          const i64 bA = std::max(paS, paR);
          if (w.abft) {
            sim.alloc((paS + tre(paS)) * esize);  // staging
            sim.charge(scan_t(paS));              // encode
          }
          sim.charge(t_exchange(topo, r, srcA, dstA,
                                static_cast<double>((bA + tre(bA)) * esize)));
          if (w.abft) {
            sim.charge(scan_t(paR));              // decode
            sim.free((paS + tre(paS)) * esize);
          }
          const int srcB = plan.rank_of(co.gk, co.gc, wrap(co.i + co.j, s), co.j);
          const int dstB = plan.rank_of(co.gk, co.gc, wrap(co.i - co.j, s), co.j);
          const i64 pbS = kpart_of(co.i) * nb;
          const i64 pbR = kpart_of(co.i + co.j) * nb;
          const i64 bB = std::max(pbS, pbR);
          if (w.abft) {
            sim.alloc((pbS + tre(pbS)) * esize);
            sim.charge(scan_t(pbS));
          }
          sim.charge(t_exchange(topo, r, srcB, dstB,
                                static_cast<double>((bB + tre(bB)) * esize)));
          if (w.abft) {
            sim.charge(scan_t(pbR));
            sim.free((pbS + tre(pbS)) * esize);
          }
        }
        // Engine releases the source blocks right after the skew, then
        // allocates the second buffer pair.
        sim.free(a_live);
        sim.free(b_live);
        a_live = b_live = 0;
        sim.alloc(bufs / 2);
        const bool aggregate = w.min_kblk > 0 && kb_max < w.min_kblk && s > 1;
        const i64 agg_cap =
            aggregate ? std::min(kb_total, w.min_kblk + kb_max) : 0;
        if (aggregate) sim.alloc(mb * agg_cap * esize + agg_cap * nb * esize);
        const int right = plan.rank_of(co.gk, co.gc, co.i, wrap(co.j + 1, s));
        const int left = plan.rank_of(co.gk, co.gc, co.i, wrap(co.j - 1, s));
        const int down = plan.rank_of(co.gk, co.gc, wrap(co.i + 1, s), co.j);
        const int up = plan.rank_of(co.gk, co.gc, wrap(co.i - 1, s), co.j);
        i64 agg_k = 0;
        double budget = 0;  // accumulates across shifts until the next flush
        bool c_staged = false;  // C stays resident on the device
        auto step_bytes = [&](i64 kw) {
          const double b =
              gemm_operand_bytes(mb, nb, kw, esize) +
              (c_staged ? 0.0 : gemm_result_bytes(mb, nb, esize));
          c_staged = true;
          return b;
        };
        for (int t = 0; t < s; ++t) {
          const i64 kb = kpart_of(co.i + co.j + t);
          const i64 kb_next = kpart_of(co.i + co.j + t + 1);
          if (t < s - 1) {
            sim.cur = Phase::kShift;
            const i64 mxA = std::max(kb, kb_next) * mb;
            const i64 mxB = std::max(kb, kb_next) * nb;
            const double tA = t_exchange(
                topo, r, right, left,
                static_cast<double>((mxA + tre(mxA)) * esize));
            const double tB = t_exchange(
                topo, r, down, up,
                static_cast<double>((mxB + tre(mxB)) * esize));
            if (w.abft)
              sim.charge(scan_t(kb * mb) + scan_t(kb_next * mb) +
                         scan_t(kb * nb) + scan_t(kb_next * nb));
            sim.charge(tA + tB);
            if (w.overlap) budget += tA + tB;
          }
          if (aggregate) {
            agg_k += kb;
            if (agg_k >= w.min_kblk || t == s - 1) {
              sim.compute(rm, gemm_flops(mb, nb, agg_k),
                          step_bytes(agg_k), budget);
              budget = 0;
              agg_k = 0;
            }
          } else {
            sim.compute(rm, gemm_flops(mb, nb, kb), step_bytes(kb), budget);
            budget = 0;
          }
        }
        if (aggregate) sim.free(mb * agg_cap * esize + agg_cap * nb * esize);
        sim.free(bufs);
      } else {
        // SUMMA inner engine: two splits, then panel broadcasts.
        const LinkParams& cl = cannon_links[co.gk * c + co.gc];
        sim.cur = Phase::kMisc;
        sim.charge(2.0 * split_cost(cl, s * s));
        const i64 panels = mb * kb_max * esize + kb_max * nb * esize;
        sim.alloc(panels);
        const LinkParams& rl = row_links[(co.gk * c + co.gc) * s + co.i];
        const LinkParams& ll = col_links[(co.gk * c + co.gc) * s + co.j];
        bool c_staged = false;
        auto step_bytes = [&](i64 kw) {
          const double b =
              gemm_operand_bytes(mb, nb, kw, esize) +
              (c_staged ? 0.0 : gemm_result_bytes(mb, nb, esize));
          c_staged = true;
          return b;
        };
        for (int t = 0; t < s; ++t) {
          const i64 kb = kparts[static_cast<size_t>(t)];
          sim.cur = Phase::kShift;
          const double tA =
              t_broadcast(rl, static_cast<double>(mb * kb * esize), s);
          const double tB =
              t_broadcast(ll, static_cast<double>(kb * nb * esize), s);
          sim.charge(tA + tB);
          sim.compute(rm, gemm_flops(mb, nb, kb), step_bytes(kb),
                      w.overlap ? tA + tB : 0.0);
        }
        sim.free(panels);
      }
      sim.free(a_live);
      a_live = 0;
      sim.free(b_live);
      b_live = 0;

      // ---- reduce-scatter ----
      if (pk > 1) {
        sim.cur = Phase::kMisc;
        sim.charge(t_split_active);  // reduce split
        sim.cur = Phase::kReduce;
        const GroupInfo& rg = reduce_infos[(co.gc * s + co.j) * s + co.i];
        sim.alloc(c_partial_bytes);  // packed
        sim.free(c_partial_bytes);   // c_partial released after packing
        c_result_bytes = mb * plan.c_sub_cols(co.J, co.gk).size() * esize;
        sim.alloc(c_result_bytes);
        const double rs_bytes = static_cast<double>(c_partial_bytes);
        const simmpi::CollAlgo alg = resolve_coll_algo(
            w.coll.reduce_scatter, rg.prof, rs_bytes,
            w.coll.small_message_bytes);
        sim.charge_coll(coll_reduce_scatter_cost(mach, rg.prof, rg.link, alg,
                                                 rs_bytes, pk,
                                                 /*custom_tree=*/false),
                        pk);
        sim.free(c_partial_bytes);  // packed
      } else {
        c_result_bytes = c_partial_bytes;  // moved, stays allocated
      }
    } else {
      sim.free(a_live);
      sim.free(b_live);
      a_live = b_live = 0;
    }

    // ---- redistribution of C (all ranks) ----
    sim.cur = Phase::kRedistribute;
    sim_redistribute(sim, rC, r);
    sim.free(c_result_bytes);
    if (co.active && a_live) sim.free(a_live);
    if (co.active && b_live) sim.free(b_live);
    if (!co.active) {
      // idle ranks also release their (empty) init buffers
    }
    {
      // Mirrors RankStats::load_balance: max compute time over the mean of
      // ranks that computed anything.
      const double ct = sim.phase[static_cast<int>(Phase::kCompute)];
      if (ct > 0) {
        lb_max = std::max(lb_max, ct);
        lb_sum += ct;
        lb_n++;
      }
    }
    fold(p, sim);
  }
  if (lb_n > 0 && lb_sum > 0) p.load_balance = lb_max * lb_n / lb_sum;
  return p;
}

// ------------------------------------------------------------------
// COSMA-like / CARMA / CTF share one executor model
// ------------------------------------------------------------------

Prediction predict_cosma_family(const Workload& w, int P, const Machine& mach,
                                Algo algo) {
  CosmaPlan plan;
  if (algo == Algo::kCarma)
    plan = CosmaPlan::make_carma(w.m, w.n, w.k, P);
  else if (algo == Algo::kCtf)
    plan = CosmaPlan::make(w.m, w.n, w.k, P, find_grid_ctf(w.m, w.n, w.k, P));
  else
    plan = CosmaPlan::make(w.m, w.n, w.k, P, w.force_grid);
  const ProcGrid& g = plan.grid();
  const int active = plan.active();
  const i64 esize = w.esize;

  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  UserLayouts ul = user_layouts(w, P, a_nat, b_nat, c_nat);

  const LinkParams world_link = link_range(mach, 0, P);
  const LinkParams active_link = link_range(mach, 0, active);

  // CTF's internal remapping: operands are first shuffled into the
  // framework's own layout, then into the contraction layout. The temporary
  // copies live until the end of the whole multiply (engine scope).
  const bool is_ctf = algo == Algo::kCtf;
  RedistCost ctf_r1, ctf_r2;
  std::vector<i64> ctf_tmp(static_cast<size_t>(P), 0);
  if (is_ctf) {
    const BlockLayout a_cyc = BlockLayout::col_1d(w.m, w.k, P);
    const BlockLayout b_cyc = BlockLayout::col_1d(w.k, w.n, P);
    ctf_r1 = redist_cost(mach, world_link, P, ul.a, a_cyc);
    ctf_r2 = redist_cost(mach, world_link, P, ul.b, b_cyc);
    for (int r = 0; r < P; ++r)
      ctf_tmp[static_cast<size_t>(r)] =
          (a_cyc.local_size(r) + b_cyc.local_size(r)) * esize;
    ul.a = a_cyc;
    ul.b = b_cyc;
  }

  const RedistCost rA = redist_cost(mach, world_link, P, ul.a, a_nat);
  const RedistCost rB = redist_cost(mach, world_link, P, ul.b, b_nat);
  const RedistCost rC = redist_cost(mach, world_link, P, c_nat, ul.c);
  const double t_split_world = split_cost(world_link, P);
  const double t_split_active = split_cost(active_link, active);

  // Bucket group links.
  std::vector<CosmaPlan::Codes> codes(static_cast<size_t>(active));
  std::map<int, std::vector<int>> ga_groups, gb_groups, gc_groups;
  for (int r = 0; r < active; ++r) {
    codes[static_cast<size_t>(r)] = plan.codes(r);
    const auto& co = codes[static_cast<size_t>(r)];
    ga_groups[co.mi * g.pk + co.ki].push_back(r);
    gb_groups[co.ki * g.pn + co.ni].push_back(r);
    gc_groups[co.mi * g.pn + co.ni].push_back(r);
  }
  std::map<int, LinkParams> ga_links, gb_links, gc_links;
  for (const auto& [key, mem] : ga_groups) ga_links[key] = link_of(mach, mem);
  for (const auto& [key, mem] : gb_groups) gb_links[key] = link_of(mach, mem);
  for (const auto& [key, mem] : gc_groups) gc_links[key] = link_of(mach, mem);

  Prediction p;
  p.grid = g;
  p.active = active;

  for (int r = 0; r < P; ++r) {
    RankSim sim;
    sim.cur = Phase::kRedistribute;
    if (is_ctf) {
      sim.alloc(ctf_tmp[static_cast<size_t>(r)]);
      sim_redistribute(sim, ctf_r1, r);
      sim_redistribute(sim, ctf_r2, r);
    }
    const i64 a_init_bytes = a_nat.local_size(r) * esize;
    const i64 b_init_bytes = b_nat.local_size(r) * esize;
    // Engine order: both init buffers are constructed before the first
    // redistribution runs.
    sim.alloc(a_init_bytes);
    sim.alloc(b_init_bytes);
    sim_redistribute(sim, rA, r);
    sim_redistribute(sim, rB, r);
    sim.cur = Phase::kMisc;
    sim.charge(t_split_world);

    i64 c_result_bytes = 0;
    if (r < active) {
      const auto& co = codes[static_cast<size_t>(r)];
      const i64 mb = plan.m_leaf(co.mi).size();
      const i64 nb = plan.n_leaf(co.ni).size();
      const i64 kb = plan.k_leaf(co.ki).size();
      i64 a_live = a_init_bytes, b_live = b_init_bytes;
      if (g.pn > 1) {
        sim.charge(t_split_active);
        sim.cur = Phase::kReplicate;
        const i64 blk = mb * kb * esize;
        sim.alloc(blk);
        sim.charge(t_allgather(ga_links[co.mi * g.pk + co.ki],
                               static_cast<double>(blk), g.pn));
        sim.free(a_live);
        a_live = blk;
        sim.cur = Phase::kMisc;
      }
      if (g.pm > 1) {
        sim.charge(t_split_active);
        sim.cur = Phase::kReplicate;
        const i64 blk = kb * nb * esize;
        sim.alloc(blk);
        sim.charge(t_allgather(gb_links[co.ki * g.pn + co.ni],
                               static_cast<double>(blk), g.pm));
        sim.free(b_live);
        b_live = blk;
        sim.cur = Phase::kMisc;
      }
      const i64 c_partial_bytes = mb * nb * esize;
      sim.alloc(c_partial_bytes);
      // CTF mode: derated local contraction rate (see Machine).
      const double frac = is_ctf ? mach.ctf_gemm_fraction() : 1.0;
      sim.compute(mach, gemm_flops(mb, nb, kb) / frac,
                  gemm_bytes(mb, nb, kb, esize), 0.0);
      sim.free(a_live);
      sim.free(b_live);
      if (g.pk > 1) {
        sim.charge(t_split_active);
        sim.cur = Phase::kReduce;
        c_result_bytes = block_size(mb, g.pk, co.ki) * nb * esize;
        sim.alloc(c_result_bytes);
        // COSMA-family reductions use an application-level tree: no MPI
        // large-message degradation (mirrors the engine's custom_tree flag).
        sim.charge(t_reduce_scatter(gc_links[co.mi * g.pn + co.ni],
                                    static_cast<double>(c_partial_bytes),
                                    g.pk));
        sim.free(c_partial_bytes);
      } else {
        c_result_bytes = c_partial_bytes;
      }
    }
    sim.cur = Phase::kRedistribute;
    sim_redistribute(sim, rC, r);
    sim.free(c_result_bytes);
    if (is_ctf) sim.free(ctf_tmp[static_cast<size_t>(r)]);
    fold(p, sim);
  }
  return p;
}

// ------------------------------------------------------------------
// Plain SUMMA
// ------------------------------------------------------------------

Prediction predict_summa(const Workload& w, int P, const Machine& mach) {
  std::optional<std::pair<int, int>> force;
  if (w.force_grid) force = std::make_pair(w.force_grid->pm, w.force_grid->pn);
  const SummaPlan plan = SummaPlan::make(w.m, w.n, w.k, P, force);
  const int pr = plan.pr(), pc = plan.pc(), active = plan.active();
  const i64 esize = w.esize;

  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  const UserLayouts ul = user_layouts(w, P, a_nat, b_nat, c_nat);

  const LinkParams world_link = link_range(mach, 0, P);
  const LinkParams active_link = link_range(mach, 0, active);
  const RedistCost rA = redist_cost(mach, world_link, P, ul.a, a_nat);
  const RedistCost rB = redist_cost(mach, world_link, P, ul.b, b_nat);
  const RedistCost rC = redist_cost(mach, world_link, P, c_nat, ul.c);

  std::map<int, LinkParams> row_links, col_links;
  for (int gi = 0; gi < pr; ++gi)
    row_links[gi] = link_range(mach, gi * pc, pc);
  for (int gj = 0; gj < pc; ++gj) {
    std::vector<int> mem;
    for (int gi = 0; gi < pr; ++gi) mem.push_back(gi * pc + gj);
    col_links[gj] = link_of(mach, mem);
  }

  Prediction p;
  p.grid = ProcGrid{pr, pc, 1};
  p.active = active;

  for (int r = 0; r < P; ++r) {
    RankSim sim;
    sim.cur = Phase::kRedistribute;
    const i64 a_init_bytes = a_nat.local_size(r) * esize;
    const i64 b_init_bytes = b_nat.local_size(r) * esize;
    // Engine order: both init buffers are constructed before the first
    // redistribution runs.
    sim.alloc(a_init_bytes);
    sim.alloc(b_init_bytes);
    sim_redistribute(sim, rA, r);
    sim_redistribute(sim, rB, r);
    sim.cur = Phase::kMisc;
    sim.charge(split_cost(world_link, P));

    i64 c_bytes = 0;
    if (r < active) {
      const int gi = r / pc, gj = r % pc;
      const i64 mb = block_size(w.m, pr, gi);
      const i64 nb = block_size(w.n, pc, gj);
      sim.charge(2.0 * split_cost(active_link, active));  // row + col splits
      c_bytes = mb * nb * esize;
      sim.alloc(c_bytes);
      // Panel walk (same boundaries as the executor).
      i64 kb_max = 0;
      {
        i64 k0 = 0;
        while (k0 < w.k) {
          const i64 k1 =
              std::min(block_range(w.k, pc, block_of_index(w.k, pc, k0)).hi,
                       block_range(w.k, pr, block_of_index(w.k, pr, k0)).hi);
          kb_max = std::max(kb_max, k1 - k0);
          k0 = k1;
        }
      }
      sim.alloc(mb * kb_max * esize + kb_max * nb * esize);
      i64 k0 = 0;
      while (k0 < w.k) {
        const i64 k1 =
            std::min(block_range(w.k, pc, block_of_index(w.k, pc, k0)).hi,
                     block_range(w.k, pr, block_of_index(w.k, pr, k0)).hi);
        const i64 wd = k1 - k0;
        sim.cur = Phase::kShift;
        const double tA =
            t_broadcast(row_links[gi], static_cast<double>(mb * wd * esize), pc);
        const double tB =
            t_broadcast(col_links[gj], static_cast<double>(wd * nb * esize), pr);
        sim.charge(tA + tB);
        const double bytes =
            gemm_operand_bytes(mb, nb, wd, esize) +
            (k0 == 0 ? gemm_result_bytes(mb, nb, esize) : 0.0);
        sim.compute(mach, gemm_flops(mb, nb, wd), bytes, tA + tB);
        k0 = k1;
      }
      sim.free(mb * kb_max * esize + kb_max * nb * esize);
      sim.free(a_init_bytes);
      sim.free(b_init_bytes);
    } else {
      sim.free(a_init_bytes);
      sim.free(b_init_bytes);
    }
    sim.cur = Phase::kRedistribute;
    sim_redistribute(sim, rC, r);
    sim.free(c_bytes);
    fold(p, sim);
  }
  return p;
}

// ------------------------------------------------------------------
// The 2.5D algorithm (layered Cannon)
// ------------------------------------------------------------------

Prediction predict_p25d(const Workload& w, int P, const Machine& mach) {
  std::optional<std::pair<int, int>> force;
  if (w.force_grid) force = std::make_pair(w.force_grid->pm, w.force_grid->pk);
  const P25dPlan plan = P25dPlan::make(w.m, w.n, w.k, P, force);
  const int q = plan.q(), c = plan.c(), active = plan.active();
  const i64 esize = w.esize;

  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  const UserLayouts ul = user_layouts(w, P, a_nat, b_nat, c_nat);

  const LinkParams world_link = link_range(mach, 0, P);
  const LinkParams active_link = link_range(mach, 0, active);
  const RedistCost rA = redist_cost(mach, world_link, P, ul.a, a_nat);
  const RedistCost rB = redist_cost(mach, world_link, P, ul.b, b_nat);
  const RedistCost rC = redist_cost(mach, world_link, P, c_nat, ul.c);

  // Depth (layer) group links, keyed by grid position.
  std::map<int, LinkParams> depth_links;
  for (int idx = 0; idx < q * q; ++idx) {
    std::vector<int> mem;
    for (int l2 = 0; l2 < c; ++l2) mem.push_back(l2 * q * q + idx);
    depth_links[idx] = link_of(mach, mem);
  }

  Prediction p;
  p.grid = ProcGrid{q, q, c};
  p.active = active;

  auto wrp = [&](int v) { return wrap(v, q); };
  auto kpart = [&](int t) { return block_size(w.k, q, wrp(t)); };

  for (int r = 0; r < P; ++r) {
    RankSim sim;
    sim.cur = Phase::kRedistribute;
    const i64 a_init_bytes = a_nat.local_size(r) * esize;
    const i64 b_init_bytes = b_nat.local_size(r) * esize;
    sim.alloc(a_init_bytes);
    sim.alloc(b_init_bytes);
    sim_redistribute(sim, rA, r);
    sim_redistribute(sim, rB, r);
    sim.cur = Phase::kMisc;
    sim.charge(split_cost(world_link, P));

    i64 c_result_bytes = 0;
    if (r < active) {
      const int layer = r / (q * q);
      const int idx = r % (q * q);
      const int i = idx % q, j = idx / q;
      const i64 mb = block_size(w.m, q, i), nb = block_size(w.n, q, j);
      const i64 kb_max = ceil_div(w.k, q);
      sim.charge(2.0 * split_cost(active_link, active));  // grid + depth

      // Replicate layer 0's blocks down the depth dimension.
      sim.cur = Phase::kReplicate;
      const LinkParams& dl = depth_links[idx];
      sim.alloc(mb * kb_max * esize + kb_max * nb * esize);  // a_cur + b_cur
      sim.charge(t_broadcast(dl, static_cast<double>(mb * kpart(j) * esize), c));
      sim.charge(t_broadcast(dl, static_cast<double>(kpart(i) * nb * esize), c));
      sim.free(a_init_bytes);
      sim.free(b_init_bytes);

      // Alignment shifts for this layer's window of Cannon steps.
      const int off = static_cast<int>(block_start(q, c, layer));
      const int steps = static_cast<int>(block_size(q, c, layer));
      sim.alloc(mb * kb_max * esize + kb_max * nb * esize);  // a_nxt + b_nxt
      sim.cur = Phase::kShift;
      {
        const int base = layer * q * q;
        const int dstA = base + wrp(j - i - off) * q + i;
        const int srcA = base + wrp(j + i + off) * q + i;
        sim.charge(t_p2p(mach,
                         static_cast<double>(
                             std::max(kpart(j), kpart(i + j + off)) * mb * esize),
                         same_node(mach, r, srcA) && same_node(mach, r, dstA)));
        const int dstB = base + j * q + wrp(i - j - off);
        const int srcB = base + j * q + wrp(i + j + off);
        sim.charge(t_p2p(mach,
                         static_cast<double>(
                             std::max(kpart(i), kpart(i + j + off)) * nb * esize),
                         same_node(mach, r, srcB) && same_node(mach, r, dstB)));
      }

      const i64 c_partial_bytes = mb * nb * esize;
      sim.alloc(c_partial_bytes);
      const int base = layer * q * q;
      const int left = base + wrp(j - 1) * q + i;
      const int right = base + wrp(j + 1) * q + i;
      const int up = base + j * q + wrp(i - 1);
      const int down = base + j * q + wrp(i + 1);
      bool c_staged = false;
      for (int t = 0; t < steps; ++t) {
        const i64 kb = kpart(i + j + off + t);
        const i64 kb_next = kpart(i + j + off + t + 1);
        double budget = 0;
        if (t < steps - 1) {
          sim.cur = Phase::kShift;
          const double tA = t_p2p(
              mach, static_cast<double>(std::max(kb, kb_next) * mb * esize),
              same_node(mach, r, left) && same_node(mach, r, right));
          const double tB = t_p2p(
              mach, static_cast<double>(std::max(kb, kb_next) * nb * esize),
              same_node(mach, r, up) && same_node(mach, r, down));
          sim.charge(tA + tB);
          budget = tA + tB;
        }
        const double bytes =
            gemm_operand_bytes(mb, nb, kb, esize) +
            (c_staged ? 0.0 : gemm_result_bytes(mb, nb, esize));
        c_staged = true;
        sim.compute(mach, gemm_flops(mb, nb, kb), bytes, budget);
      }
      sim.free(2 * (mb * kb_max * esize + kb_max * nb * esize));

      if (c > 1) {
        sim.cur = Phase::kReduce;
        c_result_bytes = block_size(mb, c, layer) * nb * esize;
        sim.alloc(c_result_bytes);
        sim.charge(t_reduce_scatter_machine(
            mach, dl, static_cast<double>(c_partial_bytes), c));
        sim.free(c_partial_bytes);
      } else {
        c_result_bytes = c_partial_bytes;
      }
    } else {
      sim.free(a_init_bytes);
      sim.free(b_init_bytes);
    }
    sim.cur = Phase::kRedistribute;
    sim_redistribute(sim, rC, r);
    sim.free(c_result_bytes);
    fold(p, sim);
  }
  return p;
}

}  // namespace

Prediction predict(Algo algo, const Workload& w, int P, const Machine& mach) {
  return predict(algo, w, P, Topology::homogeneous(std::max(P, 1), mach));
}

Prediction predict(Algo algo, const Workload& w, int P, const Topology& topo) {
  CA_REQUIRE(P >= 1 && P <= topo.nranks(),
             "predict: P=%d outside [1, %d]", P, topo.nranks());
  switch (algo) {
    case Algo::kCa3dmm: return predict_ca3dmm(w, P, topo, false);
    case Algo::kCa3dmmSumma: return predict_ca3dmm(w, P, topo, true);
    // The baselines stay single-machine models: priced at the anchor machine,
    // exact for homogeneous topologies (the only ones they execute under).
    case Algo::kCosma:
    case Algo::kCarma:
    case Algo::kCtf: return predict_cosma_family(w, P, topo.machine(), algo);
    case Algo::kSumma: return predict_summa(w, P, topo.machine());
    case Algo::kP25d: return predict_p25d(w, P, topo.machine());
  }
  CA_ASSERT(false);
  return Prediction{};
}

}  // namespace ca3dmm::costmodel
