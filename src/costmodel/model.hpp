// Analytic cost and memory model.
//
// Mirrors the executable algorithms operation by operation: the same grid
// solvers, the same message sizes, the same §III-D collective cost formulas,
// and the same TrackedBuffer lifetimes — but without threads or data, so it
// evaluates in microseconds for configurations of any scale (the paper's
// 192..3072-process runs with matrices up to 1.2M on a side).
//
// Validation: tests/test_costmodel.cpp asserts that, for small
// configurations where the threaded engine actually runs, the model's time
// per phase and peak memory match the engine's measured virtual values
// (exactly for evenly divisible configurations — every rank is then
// symmetric — and within a small tolerance otherwise, because the model
// accumulates each rank independently while the engine synchronizes
// collectives at max entry time).
#pragma once

#include <optional>

#include "baselines/cosma_like.hpp"
#include "baselines/summa.hpp"
#include "core/plan.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm::costmodel {

enum class Algo {
  kCa3dmm,       ///< this paper's algorithm, Cannon inner engine
  kCa3dmmSumma,  ///< CA3DMM-S ablation (§III-E)
  kCosma,        ///< COSMA-like baseline
  kCarma,        ///< CARMA (power-of-two bisection)
  kCtf,          ///< CTF-like wrapper (shape-oblivious grid + remap)
  kSumma,        ///< plain 2-D SUMMA
  kP25d,         ///< the true 2.5D algorithm (layered Cannon)
};

const char* algo_name(Algo a);

/// Version of the analytic cost model. Bump whenever a change alters the
/// numbers predict() produces (new cost term, changed formula, new machine
/// parameter): the tuning database (tuner/db.hpp) stamps this into its file
/// header and discards entries tuned under a different model, since their
/// predicted/validated vtimes are no longer comparable.
// Version 2: exact node-multiset intra-node byte fraction (strided and
// unevenly placed groups no longer priced by the contiguous (r-1)/(p-1)
// shortcut), heterogeneous multi-cluster topologies, cross-cluster
// two-level schedules, weighted k partitioning.
inline constexpr int kCostModelVersion = 2;

struct Workload {
  i64 m = 0, n = 0, k = 0;
  /// false = library-native input/output layouts (Fig. 3 "native layout");
  /// true = 1-D column layouts for A, B, C (Fig. 3 "custom layout").
  bool custom_layout = false;
  i64 esize = 8;  ///< element size (double)
  std::optional<ProcGrid> force_grid{};  ///< Table II grid overrides
  i64 min_kblk = 192;  ///< CA3DMM multi-shift aggregation threshold
  /// Collective schedules for the replication all-gather and the partial-C
  /// reduce-scatter (mirrors Ca3dmmOptions::coll, so prediction and
  /// execution select the same schedule for the same call). The default —
  /// paper butterfly — reproduces the seeded predictions exactly.
  simmpi::CollectiveConfig coll{};
  /// Mirrors Ca3dmmOptions::abft: enlarges every Cannon skew/shift message
  /// by its checksum trailer and charges the encode/decode scans at the same
  /// program points as the engine, so predictions (and the drift gate) stay
  /// exact for protected runs. Ignored by the other algorithms.
  bool abft = false;
  /// Mirrors Ca3dmmOptions::overlap: when false, the 2-D engine does not
  /// pipeline shift/broadcast transfers behind the local GEMM and the model
  /// drops the corresponding overlap budgets. kCa3dmm/kCa3dmmSumma only.
  bool overlap = true;
  /// Plan and split communicators already cached — the persistent engine's
  /// hit path (engine/engine.hpp). Zeroes the four per-plan communicator
  /// splits (world/cannon/replication/reduction) that PlanComms caches;
  /// SUMMA's per-call row/col splits still charge, exactly like the
  /// executable hit path. kCa3dmm/kCa3dmmSumma only: the other algorithms
  /// have no communicator cache to be warm in.
  bool warm_comms = false;
  /// Mirrors Ca3dmmOptions::k_weights: per-k-task-group k-split weights for
  /// heterogeneous topologies. Empty = equal split. kCa3dmm/kCa3dmmSumma
  /// only.
  std::vector<double> k_weights{};
};

struct Prediction {
  ProcGrid grid{};
  int active = 0;
  double t_total = 0;  ///< max over ranks, seconds
  double phase_s[static_cast<int>(simmpi::Phase::kCount)] = {};
  i64 peak_bytes = 0;  ///< max over ranks
  double flops_per_rank = 0;
  /// Compute-phase load balance: max over ranks of compute time divided by
  /// the mean over ranks that computed anything. 1.0 = perfectly even.
  /// Mirrors RankStats::load_balance, so hetero-aware plans can be judged
  /// before running them.
  double load_balance = 1.0;

  /// Modeled inter-node traffic of the schedule-aware collectives
  /// (replication all-gather + partial-C reduce-scatter), bytes per phase.
  /// Unlike phase_s (max over ranks) these are totals SUMMED over ranks:
  /// each rank accounts 1/p of its group's aggregate, the same convention
  /// as the engine's RankStats::inter_bytes.
  double inter_bytes_s[static_cast<int>(simmpi::Phase::kCount)] = {};

  double phase(simmpi::Phase p) const {
    return phase_s[static_cast<int>(p)];
  }
  double inter_bytes(simmpi::Phase p) const {
    return inter_bytes_s[static_cast<int>(p)];
  }
  double total_inter_bytes() const {
    double t = 0;
    for (double b : inter_bytes_s) t += b;
    return t;
  }
  /// Percentage of machine peak (Fig. 3/4 y-axis): useful flops over
  /// aggregate nominal peak of all P ranks.
  double pct_peak(i64 m, i64 n, i64 k, int P,
                  const simmpi::Machine& mach) const {
    const double flops = 2.0 * static_cast<double>(m) * n * k;
    return 100.0 * flops / (t_total * P * mach.rank_peak_flops());
  }
};

/// Predicts one multiply of `w` by `algo` on P ranks of `mach`
/// (homogeneous: wraps Topology::homogeneous).
Prediction predict(Algo algo, const Workload& w, int P,
                   const simmpi::Machine& mach);

/// Topology-aware prediction: per-rank machines, exact node-multiset group
/// profiles, cross-cluster schedules — the formulas the heterogeneous
/// engine charges, so the 1e-6 drift gate holds for multi-cluster runs too.
/// P must not exceed topo.nranks().
Prediction predict(Algo algo, const Workload& w, int P,
                   const simmpi::Topology& topo);

}  // namespace ca3dmm::costmodel
