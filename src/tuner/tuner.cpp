#include "tuner/tuner.hpp"

#include <algorithm>
#include <tuple>

namespace ca3dmm::tuner {

using costmodel::Algo;
using costmodel::DriftOptions;
using costmodel::DriftReport;
using costmodel::Workload;
using simmpi::CollAlgo;
using simmpi::CollectiveConfig;
using simmpi::Cluster;

costmodel::Workload tuned_workload(i64 m, i64 n, i64 k,
                                   const TunedConfig& cfg, i64 min_kblk) {
  Workload w;
  w.m = m;
  w.n = n;
  w.k = k;
  w.force_grid = cfg.grid;
  w.coll = cfg.coll;
  w.overlap = cfg.overlap;
  w.min_kblk = min_kblk;
  return w;
}

namespace {

/// Deterministic candidate ordering beyond predicted time, so equal
/// predictions never make the search depend on enumeration order.
auto config_order(const TunedConfig& c) {
  return std::make_tuple(c.grid.pm, c.grid.pn, c.grid.pk,
                         static_cast<int>(c.coll.allgather),
                         static_cast<int>(c.coll.reduce_scatter),
                         !c.overlap);
}

bool report_less(const CandidateReport& a, const CandidateReport& b) {
  return std::make_tuple(a.predicted_s, config_order(a.config)) <
         std::make_tuple(b.predicted_s, config_order(b.config));
}

}  // namespace

TuneResult Tuner::tune(i64 m, i64 n, i64 k, int nranks) const {
  TuneResult res;
  const TuningKey key = make_key(m, n, k, nranks, mach_);

  const std::vector<ProcGrid> grids = find_grid_candidates(
      m, n, k, nranks, std::max(1, opt_.grid_candidates), GridOptions{});
  CA_ASSERT(!grids.empty());

  // The auto heuristic the engine runs without a DB: eq.-solver grid, the
  // collective engine's kAuto schedule picker, overlap on. It is both the
  // baseline to beat and the unconditional fallback.
  TunedConfig heuristic;
  heuristic.grid = grids.front();
  heuristic.coll = CollectiveConfig::tuned();
  heuristic.overlap = true;

  // ---- enumerate + prune on predictions ----
  // The allgather schedule only matters when the grid replicates (c > 1)
  // and the reduce-scatter one only when pk > 1; degenerate axes stay on
  // kAuto so the candidate set has no cost-identical duplicates.
  const CollAlgo algos[] = {CollAlgo::kAuto, CollAlgo::kPaperButterfly,
                            CollAlgo::kRing, CollAlgo::kRecursive,
                            CollAlgo::kHierarchical};
  std::vector<CandidateReport> cands;
  for (const ProcGrid& g : grids) {
    for (CollAlgo ag : algos) {
      if (g.c() == 1 && ag != CollAlgo::kAuto) continue;
      for (CollAlgo rs : algos) {
        if (g.pk == 1 && rs != CollAlgo::kAuto) continue;
        for (bool ov : {true, false}) {
          CandidateReport r;
          r.config.grid = g;
          r.config.coll = CollectiveConfig::tuned();
          r.config.coll.allgather = ag;
          r.config.coll.reduce_scatter = rs;
          r.config.overlap = ov;
          r.predicted_s =
              costmodel::predict(Algo::kCa3dmm,
                                 tuned_workload(m, n, k, r.config, opt_.min_kblk),
                                 nranks, mach_)
                  .t_total;
          cands.push_back(r);
        }
      }
    }
  }
  std::sort(cands.begin(), cands.end(), report_less);
  res.candidates_total = static_cast<i64>(cands.size());

  // ---- finalists: the heuristic plus the top-K predictions ----
  std::vector<CandidateReport> finalists;
  CandidateReport heur_report;
  heur_report.config = heuristic;
  heur_report.predicted_s =
      costmodel::predict(Algo::kCa3dmm,
                         tuned_workload(m, n, k, heuristic, opt_.min_kblk),
                         nranks, mach_)
          .t_total;
  finalists.push_back(heur_report);
  for (const CandidateReport& c : cands) {
    if (static_cast<int>(finalists.size()) > opt_.top_k) break;
    if (c.config == heuristic) continue;
    finalists.push_back(c);
  }

  // ---- validate with real traced runs under the drift gate ----
  for (CandidateReport& f : finalists) {
    if (!opt_.validate) {
      f.validated_s = 0;
      f.drift_ok = true;
      continue;
    }
    Cluster cl(nranks, mach_);
    cl.set_backend(opt_.backend);
    cl.set_trace(true);
    const DriftReport rep = costmodel::check_drift(
        Algo::kCa3dmm, tuned_workload(m, n, k, f.config, opt_.min_kblk), cl,
        DriftOptions{opt_.drift_rtol, 1e-12});
    f.validated = true;
    f.validated_s = rep.total.executed_s;
    f.drift_ok = rep.ok();
  }
  res.candidates_validated =
      opt_.validate ? static_cast<i64>(finalists.size()) : 0;
  // Everything enumerated but not promoted to finalist was pruned on its
  // prediction alone (the heuristic finalist is not drawn from cands).
  res.candidates_pruned =
      res.candidates_total - static_cast<i64>(finalists.size()) + 1;
  res.heuristic_s =
      opt_.validate ? finalists[0].validated_s : finalists[0].predicted_s;

  // ---- winner: smallest measured vtime among drift-clean finalists; the
  // heuristic wins ties, so a DB hit is never slower than no DB ----
  const auto measure = [&](const CandidateReport& f) {
    return opt_.validate ? f.validated_s : f.predicted_s;
  };
  size_t win = 0;  // the heuristic
  for (size_t idx = 1; idx < finalists.size(); ++idx) {
    if (opt_.validate && !finalists[idx].drift_ok) continue;
    if (measure(finalists[idx]) < measure(finalists[win])) win = idx;
  }
  res.winner_is_heuristic = win == 0;

  res.entry.key = key;
  res.entry.rep_m = m;
  res.entry.rep_n = n;
  res.entry.rep_k = k;
  res.entry.config = finalists[win].config;
  res.entry.predicted_s = finalists[win].predicted_s;
  res.entry.validated_s = finalists[win].validated_s;
  res.entry.baseline_s = res.heuristic_s;
  res.entry.candidates_pruned = res.candidates_pruned;
  res.entry.candidates_validated = res.candidates_validated;
  res.entry.stale = false;
  res.finalists = std::move(finalists);
  return res;
}

TuneResult Tuner::tune_into(TuningDb& db, i64 m, i64 n, i64 k,
                            int nranks) const {
  TuneResult res = tune(m, n, k, nranks);
  db.put(res.entry);
  return res;
}

int Tuner::drain(TuningDb& db) const {
  int tuned = 0;
  for (const PendingTune& p : db.take_pending()) {
    const TuningKey key = make_key(p.m, p.n, p.k, p.nranks, mach_);
    const std::optional<TuningEntry> existing = db.find(key);
    if (existing && !existing->stale) continue;  // tuned since the request
    tune_into(db, p.m, p.n, p.k, p.nranks);
    ++tuned;
  }
  return tuned;
}

}  // namespace ca3dmm::tuner
