// Persisted, versioned tuning database.
//
// The Tuner (tuner.hpp) searches configurations per (shape-class, topology)
// key and records the winner here; PgemmEngine consults a snapshot of this
// DB on plan-cache miss (engine/engine.hpp). The DB is the only component
// that outlives a process: it serializes deterministically to a small text
// file, so a DB warmed once (CI, a tools/tune run, a shipped artifact) keeps
// paying off across runs — the NCCL-tuner model (SNIPPETS.md snippet 2).
//
// Keys quantize (m, n, k) into half-octave (sqrt-2-spaced) buckets and pin
// the rank count and machine topology (ranks per node, GPU offload): a
// tuned decision transfers to shapes of the same class on the same
// topology, but never across topologies. Element size is not part of the
// key; entries are tuned at esize 8 and the config transfers (grid and
// schedule choices scale with bytes, which scale linearly in esize).
//
// Versioning: the file header carries a schema version and the cost-model
// version (costmodel::kCostModelVersion). A file written by a different
// schema, a different cost model, or corrupted/truncated on disk is
// *ignored with a warning* — the engine then falls back to its heuristic
// and the tuner re-tunes from scratch. A tuning DB is a cache; it must
// never be able to break a run.
//
// Thread-safety: all methods are safe to call concurrently (one internal
// mutex). Update listeners fire on the mutating thread after the lock is
// released. The engine never reads the DB on its hot path — it works from
// a per-engine snapshot refreshed collectively (PgemmEngine::refresh_tuning)
// — so a background tuner thread can write while engines execute.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/grid_solver.hpp"
#include "simmpi/coll_cost.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/topology.hpp"

namespace ca3dmm::tuner {

/// The configuration a tuning entry prescribes: everything the tuner
/// searches over. c (replication) and s follow from the grid.
struct TunedConfig {
  ProcGrid grid{};
  simmpi::CollectiveConfig coll = simmpi::CollectiveConfig::tuned();
  bool overlap = true;

  friend bool operator==(const TunedConfig&, const TunedConfig&) = default;
};

/// (shape-class, topology) key. Shapes are quantized per dimension into
/// half-octave buckets: bucket q covers [2^(q/2), 2^((q+1)/2)).
struct TuningKey {
  int qm = 0;  ///< shape_bucket(m)
  int qn = 0;  ///< shape_bucket(n)
  int qk = 0;  ///< shape_bucket(k)
  int nranks = 0;
  int ranks_per_node = 0;
  bool gpu = false;
  /// Topology::signature() of the multi-cluster layout; 0 for any topology
  /// indistinguishable from the legacy single-machine model, so v1-era keys
  /// and homogeneous runs keep colliding (sharing entries) as before.
  std::uint64_t topo = 0;

  auto tie() const {
    return std::tie(qm, qn, qk, nranks, ranks_per_node, gpu, topo);
  }
  friend bool operator<(const TuningKey& a, const TuningKey& b) {
    return a.tie() < b.tie();
  }
  friend bool operator==(const TuningKey& a, const TuningKey& b) {
    return a.tie() == b.tie();
  }
};

/// Half-octave bucket index of a dimension extent (d >= 1).
int shape_bucket(i64 d);
/// True iff extent d falls in bucket q (for oracle invalidation predicates).
bool bucket_matches(int q, i64 d);

TuningKey make_key(i64 m, i64 n, i64 k, int nranks,
                   const simmpi::Machine& mach);
/// Topology-aware key: same shape buckets, anchor-machine node fields, plus
/// the topology signature so decisions never transfer across cluster
/// layouts (a grid tuned for 8 CPU + 8 GPU is wrong for 16 CPU).
TuningKey make_key(i64 m, i64 n, i64 k, int nranks,
                   const simmpi::Topology& topo);

/// One tuned decision plus the evidence behind it.
struct TuningEntry {
  TuningKey key{};
  /// The representative shape the search actually ran on (the first shape
  /// of the class the tuner saw).
  i64 rep_m = 0, rep_n = 0, rep_k = 0;
  TunedConfig config{};
  double predicted_s = 0;  ///< costmodel::predict of the winner
  /// Executed virtual time of the winner's traced validation run; 0 when
  /// the tuner ran in predict-only mode (TunerOptions::validate = false).
  double validated_s = 0;
  /// Executed (or, in predict-only mode, predicted) vtime of the auto
  /// heuristic baseline the winner was required to beat-or-match.
  double baseline_s = 0;
  i64 candidates_pruned = 0;     ///< rejected on predictions alone
  i64 candidates_validated = 0;  ///< finalists run for real
  /// Set when executed-vtime feedback drifted past the staleness threshold
  /// (observe_executed); a stale entry is ignored by the engine and
  /// re-tuned on the next Tuner::drain.
  bool stale = false;

  friend bool operator==(const TuningEntry&, const TuningEntry&) = default;
};

/// A shape whose tuning was requested (engine miss with tune_on_miss, or a
/// stale entry) but not performed yet.
struct PendingTune {
  i64 m = 0, n = 0, k = 0;
  int nranks = 0;
};

class TuningDb {
 public:
  /// `path` is the backing file for load()/save() without arguments; empty
  /// = in-memory only. Construction does NOT load — call load() so the
  /// caller sees whether the file was usable.
  explicit TuningDb(std::string path = "") : path_(std::move(path)) {}

  // ---- lookups / mutation (thread-safe) ----
  std::optional<TuningEntry> find(const TuningKey& key) const;
  /// Inserts or replaces the entry for entry.key and fires listeners.
  void put(const TuningEntry& entry);
  /// Marks the key stale (no-op if absent or already stale); fires
  /// listeners when the entry actually changed. Returns true iff changed.
  bool mark_stale(const TuningKey& key);
  /// Drift feedback: compares an executed vtime against the entry's
  /// validated (or predicted) vtime and marks the entry stale when the
  /// relative difference exceeds rtol. Returns true iff it went stale.
  bool observe_executed(const TuningKey& key, double executed_s, double rtol);
  std::vector<TuningEntry> entries() const;  ///< sorted by key
  size_t size() const;
  void clear();

  // ---- pending-tune queue (tune_on_miss) ----
  /// Enqueues a shape for background tuning; deduplicated by tuning key.
  void request_tune(i64 m, i64 n, i64 k, int nranks,
                    const simmpi::Machine& mach);
  /// Drains the queue (Tuner::drain's input). Deterministic order.
  std::vector<PendingTune> take_pending();
  size_t pending() const;

  // ---- update listeners ----
  /// Registers a callback fired after every put()/mark_stale() that changed
  /// an entry (the service uses this to invalidate CostOracle quotes).
  /// Returns an id for remove_listener.
  int add_listener(std::function<void(const TuningEntry&)> fn);
  void remove_listener(int id);

  // ---- persistence ----
  /// Deterministic text serialization: versioned header + one line per
  /// entry, sorted by key. Byte-identical for equal contents.
  std::string serialize() const;
  /// Parses `blob`, replacing the current contents on success. On any
  /// mismatch (schema version, cost-model version, malformed or truncated
  /// input) leaves the DB unchanged, emits one warning on stderr when
  /// `warn` names the source, and returns false.
  bool deserialize(const std::string& blob, const char* warn = nullptr);
  bool load() { return load(path_); }
  bool load(const std::string& path);
  bool save() const { return save(path_); }
  bool save(const std::string& path) const;
  const std::string& path() const { return path_; }

  // Version 2: TuningKey carries the topology signature.
  static constexpr int kSchemaVersion = 2;

 private:
  void fire(const TuningEntry& entry);  ///< call without holding mu_

  std::string path_;
  mutable std::mutex mu_;
  std::map<TuningKey, TuningEntry> entries_;
  std::vector<PendingTune> pending_;
  std::map<int, std::function<void(const TuningEntry&)>> listeners_;
  int next_listener_ = 0;
};

const char* coll_algo_token(simmpi::CollAlgo a);  ///< stable short name

}  // namespace ca3dmm::tuner
