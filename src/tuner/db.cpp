#include "tuner/db.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "costmodel/model.hpp"

namespace ca3dmm::tuner {

using simmpi::CollAlgo;

int shape_bucket(i64 d) {
  CA_REQUIRE(d >= 1, "shape_bucket needs a positive extent, got %lld",
             static_cast<long long>(d));
  // Octave e = floor(log2 d) by bit position, then the half-octave split at
  // sqrt(2) * 2^e, decided exactly as d^2 >= 2^(2e+1) in 128-bit integers.
  int e = 0;
  for (i64 v = d; v > 1; v >>= 1) ++e;
  const unsigned __int128 d2 =
      static_cast<unsigned __int128>(d) * static_cast<unsigned __int128>(d);
  const unsigned __int128 split = static_cast<unsigned __int128>(1)
                                  << (2 * e + 1);
  return 2 * e + (d2 >= split ? 1 : 0);
}

bool bucket_matches(int q, i64 d) { return d >= 1 && shape_bucket(d) == q; }

TuningKey make_key(i64 m, i64 n, i64 k, int nranks,
                   const simmpi::Machine& mach) {
  TuningKey key;
  key.qm = shape_bucket(m);
  key.qn = shape_bucket(n);
  key.qk = shape_bucket(k);
  key.nranks = nranks;
  key.ranks_per_node = mach.ranks_per_node;
  key.gpu = mach.use_gpu;
  return key;
}

TuningKey make_key(i64 m, i64 n, i64 k, int nranks,
                   const simmpi::Topology& topo) {
  TuningKey key = make_key(m, n, k, nranks, topo.machine());
  key.topo = topo.signature();
  return key;
}

const char* coll_algo_token(CollAlgo a) {
  switch (a) {
    case CollAlgo::kPaperButterfly: return "bf";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kRecursive: return "rec";
    case CollAlgo::kHierarchical: return "hier";
    case CollAlgo::kCrossCluster: return "xc";
    case CollAlgo::kAuto: return "auto";
  }
  return "?";
}

namespace {

bool parse_coll_algo(const char* tok, CollAlgo* out) {
  for (CollAlgo a :
       {CollAlgo::kPaperButterfly, CollAlgo::kRing, CollAlgo::kRecursive,
        CollAlgo::kHierarchical, CollAlgo::kCrossCluster, CollAlgo::kAuto}) {
    if (std::strcmp(tok, coll_algo_token(a)) == 0) {
      *out = a;
      return true;
    }
  }
  return false;
}

void warn_ignored(const char* source, const std::string& why) {
  if (source)
    std::fprintf(stderr, "ca3dmm tuner: ignoring tuning DB %s: %s\n", source,
                 why.c_str());
}

}  // namespace

std::optional<TuningEntry> TuningDb::find(const TuningKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningDb::put(const TuningEntry& entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[entry.key] = entry;
  }
  fire(entry);
}

bool TuningDb::mark_stale(const TuningKey& key) {
  TuningEntry changed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.stale) return false;
    it->second.stale = true;
    changed = it->second;
  }
  fire(changed);
  return true;
}

bool TuningDb::observe_executed(const TuningKey& key, double executed_s,
                                double rtol) {
  if (rtol <= 0) return false;
  double ref = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.stale) return false;
    ref = it->second.validated_s > 0 ? it->second.validated_s
                                     : it->second.predicted_s;
  }
  if (ref <= 0) return false;
  const double rel = std::abs(executed_s - ref) / ref;
  if (rel <= rtol) return false;
  return mark_stale(key);
}

std::vector<TuningEntry> TuningDb::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TuningEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  return out;
}

size_t TuningDb::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void TuningDb::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  pending_.clear();
}

void TuningDb::request_tune(i64 m, i64 n, i64 k, int nranks,
                            const simmpi::Machine& mach) {
  const TuningKey key = make_key(m, n, k, nranks, mach);
  std::lock_guard<std::mutex> lock(mu_);
  for (const PendingTune& p : pending_)
    if (make_key(p.m, p.n, p.k, p.nranks, mach) == key) return;
  pending_.push_back(PendingTune{m, n, k, nranks});
}

std::vector<PendingTune> TuningDb::take_pending() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingTune> out;
  out.swap(pending_);
  return out;
}

size_t TuningDb::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

int TuningDb::add_listener(std::function<void(const TuningEntry&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_listener_++;
  listeners_[id] = std::move(fn);
  return id;
}

void TuningDb::remove_listener(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(id);
}

void TuningDb::fire(const TuningEntry& entry) {
  std::vector<std::function<void(const TuningEntry&)>> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, fn] : listeners_) fns.push_back(fn);
  }
  for (const auto& fn : fns) fn(entry);
}

std::string TuningDb::serialize() const {
  const std::vector<TuningEntry> es = entries();
  std::string out = strprintf("ca3dmm-tuning-db schema %d costmodel %d\n",
                              kSchemaVersion, costmodel::kCostModelVersion);
  out += strprintf("entries %zu\n", es.size());
  for (const TuningEntry& e : es) {
    out += strprintf(
        "%d %d %d %d %d %d topo %llu rep %lld %lld %lld grid %d %d %d "
        "coll %s %s %s %s %lld ov %d pred %.17g valid %.17g base %.17g "
        "pruned %lld validated %lld stale %d\n",
        e.key.qm, e.key.qn, e.key.qk, e.key.nranks, e.key.ranks_per_node,
        e.key.gpu ? 1 : 0, static_cast<unsigned long long>(e.key.topo),
        static_cast<long long>(e.rep_m),
        static_cast<long long>(e.rep_n), static_cast<long long>(e.rep_k),
        e.config.grid.pm, e.config.grid.pn, e.config.grid.pk,
        coll_algo_token(e.config.coll.allgather),
        coll_algo_token(e.config.coll.reduce_scatter),
        coll_algo_token(e.config.coll.bcast),
        coll_algo_token(e.config.coll.allreduce),
        static_cast<long long>(e.config.coll.small_message_bytes),
        e.config.overlap ? 1 : 0, e.predicted_s, e.validated_s, e.baseline_s,
        static_cast<long long>(e.candidates_pruned),
        static_cast<long long>(e.candidates_validated), e.stale ? 1 : 0);
  }
  return out;
}

bool TuningDb::deserialize(const std::string& blob, const char* warn) {
  std::istringstream in(blob);
  std::string line;
  if (!std::getline(in, line)) {
    warn_ignored(warn, "empty file");
    return false;
  }
  int schema = -1, model = -1;
  if (std::sscanf(line.c_str(), "ca3dmm-tuning-db schema %d costmodel %d",
                  &schema, &model) != 2) {
    warn_ignored(warn, "unrecognized header \"" + line + "\"");
    return false;
  }
  if (schema != kSchemaVersion) {
    warn_ignored(warn, strprintf("schema version %d (this build writes %d)",
                                 schema, kSchemaVersion));
    return false;
  }
  if (model != costmodel::kCostModelVersion) {
    warn_ignored(warn,
                 strprintf("cost-model version %d (this build uses %d); "
                           "entries would not be comparable — re-tune",
                           model, costmodel::kCostModelVersion));
    return false;
  }
  size_t count = 0;
  if (!std::getline(in, line) ||
      std::sscanf(line.c_str(), "entries %zu", &count) != 1) {
    warn_ignored(warn, "missing entry count");
    return false;
  }
  std::map<TuningKey, TuningEntry> parsed;
  for (size_t idx = 0; idx < count; ++idx) {
    if (!std::getline(in, line)) {
      warn_ignored(warn, strprintf("truncated: %zu of %zu entries", idx, count));
      return false;
    }
    TuningEntry e;
    char ag[16], rs[16], bc[16], ar[16];
    long long rm, rn, rk, smb, pruned, validated;
    unsigned long long topo;
    int gpu, ov, stale;
    const int got = std::sscanf(
        line.c_str(),
        "%d %d %d %d %d %d topo %llu rep %lld %lld %lld grid %d %d %d "
        "coll %15s %15s %15s %15s %lld ov %d pred %lg valid %lg base %lg "
        "pruned %lld validated %lld stale %d",
        &e.key.qm, &e.key.qn, &e.key.qk, &e.key.nranks, &e.key.ranks_per_node,
        &gpu, &topo, &rm, &rn, &rk, &e.config.grid.pm, &e.config.grid.pn,
        &e.config.grid.pk, ag, rs, bc, ar, &smb, &ov, &e.predicted_s,
        &e.validated_s, &e.baseline_s, &pruned, &validated, &stale);
    if (got != 25 || !parse_coll_algo(ag, &e.config.coll.allgather) ||
        !parse_coll_algo(rs, &e.config.coll.reduce_scatter) ||
        !parse_coll_algo(bc, &e.config.coll.bcast) ||
        !parse_coll_algo(ar, &e.config.coll.allreduce)) {
      warn_ignored(warn, strprintf("malformed entry %zu: \"%s\"", idx,
                                   line.c_str()));
      return false;
    }
    e.key.gpu = gpu != 0;
    e.key.topo = topo;
    e.rep_m = rm;
    e.rep_n = rn;
    e.rep_k = rk;
    e.config.coll.small_message_bytes = smb;
    e.config.overlap = ov != 0;
    e.candidates_pruned = pruned;
    e.candidates_validated = validated;
    e.stale = stale != 0;
    parsed[e.key] = e;
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(parsed);
  return true;
}

bool TuningDb::load(const std::string& path) {
  if (path.empty()) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;  // a missing DB is the normal cold start, no warning
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str(), path.c_str());
}

bool TuningDb::save(const std::string& path) const {
  if (path.empty()) return false;
  const std::string blob = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << blob;
  return out.good();
}

}  // namespace ca3dmm::tuner
