// Profile-guided auto-tuner.
//
// The paper fixes its configuration analytically: the eq.-solver grid, the
// butterfly collective schedule, overlap always on. PR 3 made the schedule
// pluggable and PR 5 pinned the cost model to executed virtual time within
// 1e-6 — together those turn configuration selection into a search problem
// with a trustworthy objective. The Tuner searches, per (shape-class,
// topology) key, the cross-product
//
//     process grid (candidates around the eq.-solver optimum, which
//                   subsumes the replication factor c = max(pm,pn)/min)
//   x collective schedule for the replication all-gather and the partial-C
//     reduce-scatter (the two §III-D collectives that dominate)
//   x communication/computation overlap on/off
//
// prunes the bulk of it with costmodel::predict, then validates the top-K
// finalists (always including the auto heuristic the engine would use
// without a DB) with real traced simmpi runs under the drift gate. The
// winner is the finalist with the smallest *executed* vtime whose
// prediction stayed inside the gate — so a tuned config is never slower
// than the heuristic by construction, and its recorded vtime is evidence,
// not an estimate. Results persist in a TuningDb (db.hpp).
#pragma once

#include "costmodel/drift.hpp"
#include "simmpi/cluster.hpp"
#include "tuner/db.hpp"

namespace ca3dmm::tuner {

struct TunerOptions {
  /// Process-grid candidates taken from find_grid_candidates (the solver's
  /// top-ranked feasible grids; index 0 is find_grid's own choice).
  int grid_candidates = 6;
  /// Finalists validated with real runs, beyond the always-validated auto
  /// heuristic baseline.
  int top_k = 4;
  /// Drift gate on every validation run: a finalist whose executed vtime
  /// disagrees with its prediction by more than this is disqualified (the
  /// model evidently does not describe it, so its numbers cannot be
  /// compared). DriftOptions semantics.
  double drift_rtol = 1e-6;
  /// false = trust predictions, skip the validation runs entirely
  /// (validated_s stays 0). For tests and very cheap warming; the
  /// never-slower guarantee then rests on the model alone.
  bool validate = true;
  /// Scheduler backend for validation clusters (fibers recommended at
  /// P >= 32; threads is the conservative default via default_backend()).
  simmpi::Cluster::Backend backend = simmpi::Cluster::default_backend();
  i64 min_kblk = 192;  ///< passed through to every candidate
};

/// One searched candidate with its outcome, for --dump style reporting.
struct CandidateReport {
  TunedConfig config{};
  double predicted_s = 0;
  double validated_s = 0;  ///< 0 = pruned before validation
  bool validated = false;
  bool drift_ok = true;    ///< meaningful only when validated
};

struct TuneResult {
  TuningEntry entry;  ///< the winner, as stored in the DB
  i64 candidates_total = 0;
  i64 candidates_pruned = 0;     ///< rejected on predictions alone
  i64 candidates_validated = 0;  ///< includes the heuristic baseline
  /// Executed (or predicted, when validate = false) vtime of the auto
  /// heuristic: solver grid + kAuto schedules + overlap on.
  double heuristic_s = 0;
  bool winner_is_heuristic = false;
  std::vector<CandidateReport> finalists;  ///< validation detail
};

class Tuner {
 public:
  Tuner(const simmpi::Machine& mach, TunerOptions opt = {})
      : mach_(mach), opt_(opt) {}

  /// Searches and validates one shape on `nranks` ranks. Pure function of
  /// (shape, nranks, machine, options) — deterministic.
  TuneResult tune(i64 m, i64 n, i64 k, int nranks) const;

  /// tune() + db.put() of the winner.
  TuneResult tune_into(TuningDb& db, i64 m, i64 n, i64 k, int nranks) const;

  /// Processes the DB's pending-tune queue (shapes enqueued by engines on
  /// plan-cache miss with EngineConfig::tune_on_miss, or re-tune requests
  /// for stale keys). Returns the number of keys tuned. Safe to run on a
  /// host thread while engines execute: they read snapshots, not the DB.
  int drain(TuningDb& db) const;

  const TunerOptions& options() const { return opt_; }
  const simmpi::Machine& machine() const { return mach_; }

 private:
  simmpi::Machine mach_;
  TunerOptions opt_;
};

/// The workload a TunedConfig prescribes for (m, n, k) — shared by the
/// tuner's search, the engine's application of a DB hit, and the service's
/// quoting, so all three price and run the exact same thing.
costmodel::Workload tuned_workload(i64 m, i64 n, i64 k,
                                   const TunedConfig& cfg, i64 min_kblk);

}  // namespace ca3dmm::tuner
