// Standalone SUMMA baseline (van de Geijn & Watts 1997; paper §II).
//
// The classic 2-D algorithm: A, B, C block-distributed on a pr x pc process
// grid; for each k panel, the owning process column broadcasts its A panel
// along its process row and the owning process row broadcasts its B panel
// down its process column, followed by a local rank-kb update. SUMMA cannot
// exploit extra memory (no k-dimension parallelism), which is exactly the
// limitation CA3DMM's 3-D organization removes.
//
// This implementation handles rectangular process grids with unaligned A/B
// k-partitions by walking the union of both partitions' panel boundaries.
#pragma once

#include <optional>

#include "core/grid_solver.hpp"
#include "layout/block_layout.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm {

class SummaPlan {
 public:
  i64 m() const { return m_; }
  i64 n() const { return n_; }
  i64 k() const { return k_; }
  int nranks() const { return nranks_; }
  int pr() const { return pr_; }
  int pc() const { return pc_; }
  int active() const { return pr_ * pc_; }

  BlockLayout a_native() const;
  BlockLayout b_native() const;
  BlockLayout c_native() const;

  /// Near-optimal 2-D grid (k never partitioned — SUMMA's limitation).
  static SummaPlan make(i64 m, i64 n, i64 k, int nranks,
                        std::optional<std::pair<int, int>> force_grid = {});

 private:
  i64 m_ = 0, n_ = 0, k_ = 0;
  int nranks_ = 0;
  int pr_ = 1, pc_ = 1;
};

/// C = op(A) x op(B) with SUMMA; same calling convention as ca3dmm_multiply.
/// `panel_kb` caps the broadcast panel width (0 = largest possible panels,
/// the setting the paper's §III-E latency analysis assumes).
template <typename T>
void summa_multiply(simmpi::Comm& world, const SummaPlan& plan, bool trans_a,
                    bool trans_b, const BlockLayout& a_layout, const T* a_local,
                    const BlockLayout& b_layout, const T* b_local,
                    const BlockLayout& c_layout, T* c_local, i64 panel_kb = 0);

}  // namespace ca3dmm
