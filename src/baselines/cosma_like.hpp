// COSMA-like PGEMM baseline (paper §III-C).
//
// The CA3DMM paper analyzes what the COSMA *source code* actually does:
//
//   "The COSMA source code first finds an optimal or near-optimal 3D process
//    grid p_m x p_k x p_n s.t. m/p_m ~ k/p_k ~ n/p_n by enumerating all
//    possible solutions. ... Then, the COSMA source code factorizes p_m,
//    p_n, and p_k to obtain its parallel strategy containing one or multiple
//    steps. ... In general, COSMA first replicates A and/or B in one or
//    multiple steps using all-gather operations, then calculates one local
//    matrix multiplication to obtain a partial C result block on each
//    process, and finally reduces the partial C results to get the final C
//    matrix."
//
// That is exactly what this baseline implements: an unconstrained 3-D grid,
// a largest-dimension-first multi-way splitting strategy, full all-gather
// replication of A (across the p_n groups) and B (across the p_m groups),
// one local GEMM, and a reduce-scatter across the p_k groups. The butterfly
// collective cost model equals the cost of COSMA's stepped binary trees, so
// the virtual timings represent COSMA's communication faithfully.
//
// Unlike CA3DMM, all replication completes before any computation (no
// pipelining), and there is no Cannon-compatibility constraint on the grid.
#pragma once

#include <vector>

#include "core/grid_solver.hpp"
#include "layout/block_layout.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm {

/// One strategy step: dimension 'm' / 'n' / 'k' split `ways` ways.
struct CosmaStep {
  char dim;
  int ways;
};

class CosmaPlan {
 public:
  i64 m() const { return m_; }
  i64 n() const { return n_; }
  i64 k() const { return k_; }
  int nranks() const { return nranks_; }
  const ProcGrid& grid() const { return grid_; }
  int active() const { return grid_.active(); }
  const std::vector<CosmaStep>& steps() const { return steps_; }

  /// Grid-block indices of an active world rank (mi in [0, pm), etc.); the
  /// assignment follows the hierarchical strategy, so ranks that share late
  /// splits are close in rank space (and therefore in node space).
  struct Codes {
    bool active = false;
    int mi = 0, ni = 0, ki = 0;
  };
  Codes codes(int world_rank) const;

  Range m_leaf(int mi) const { return block_range(m_, grid_.pm, mi); }
  Range n_leaf(int ni) const { return block_range(n_, grid_.pn, ni); }
  Range k_leaf(int ki) const { return block_range(k_, grid_.pk, ki); }

  /// Initial distributions: each rank owns a 1/p_n row slice of its A leaf
  /// block and a 1/p_m row slice of its B leaf block; final C is the 1/p_k
  /// row slice of the leaf C block.
  BlockLayout a_native() const;
  BlockLayout b_native() const;
  BlockLayout c_native() const;

  /// Builds grid + strategy. `force_grid` mirrors Table II experiments.
  static CosmaPlan make(i64 m, i64 n, i64 k, int nranks,
                        std::optional<ProcGrid> force_grid = {});

  /// CTF mode: local GEMMs are derated by the machine's ctf_gemm_fraction
  /// (set by CtfPlan::make).
  bool ctf_mode() const { return ctf_mode_; }
  void set_ctf_mode(bool v) { ctf_mode_ = v; }

  /// CARMA variant (paper §II): the number of processes must be a power of
  /// two; the strategy is a sequence of bisections of the currently largest
  /// dimension, and the 3-D grid is whatever those bisections produce. With
  /// power-of-two P this matches COSMA's grid for most shapes, which is the
  /// comparison the COSMA paper (and §I here) discusses.
  static CosmaPlan make_carma(i64 m, i64 n, i64 k, int nranks);

 private:
  i64 m_ = 0, n_ = 0, k_ = 0;
  int nranks_ = 0;
  ProcGrid grid_;
  std::vector<CosmaStep> steps_;
  bool ctf_mode_ = false;
};

/// C = op(A) x op(B) with COSMA-like scheduling; same calling convention as
/// ca3dmm_multiply (user layouts in/out, redistribution included).
template <typename T>
void cosma_multiply(simmpi::Comm& world, const CosmaPlan& plan, bool trans_a,
                    bool trans_b, const BlockLayout& a_layout, const T* a_local,
                    const BlockLayout& b_layout, const T* b_local,
                    const BlockLayout& c_layout, T* c_local);

}  // namespace ca3dmm
