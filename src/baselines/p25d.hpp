// The 2.5D matrix multiplication algorithm (Solomonik & Demmel, Euro-Par'11;
// paper §II) — the algorithm CTF implements.
//
// P = q x q x c processes: c replication layers over a square q x q grid.
// A and B live on layer 0 in q x q blocks ("the matrices are only stored on
// a subset of processes", as the CA3DMM paper notes); they are broadcast
// down the layer dimension, each layer performs its 1/c share of the Cannon
// shift sequence starting from a layer-specific alignment, and the partial C
// results are reduce-scattered across layers.
//
// With c = 1 this is exactly Cannon's 2-D algorithm; with c = P^(1/3) it is
// the original 3-D algorithm — the trade-off curve the CA3DMM paper's §II
// describes. Unlike CA3DMM it requires a *square* grid and keeps whole
// C blocks per process, which is why it degrades for strongly rectangular
// problems (paper §II, citing Demmel et al.).
#pragma once

#include <optional>

#include "core/grid_solver.hpp"
#include "layout/block_layout.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm {

class P25dPlan {
 public:
  i64 m() const { return m_; }
  i64 n() const { return n_; }
  i64 k() const { return k_; }
  int nranks() const { return nranks_; }
  int q() const { return q_; }    ///< square grid side
  int c() const { return c_; }    ///< replication depth
  int active() const { return q_ * q_ * c_; }

  /// A and B initial distributions: q x q blocks on layer 0 only.
  BlockLayout a_native() const;
  BlockLayout b_native() const;
  /// Final C: each (i, j) block row-split across the c layers.
  BlockLayout c_native() const;

  /// Chooses (q, c): maximize utilization with c <= q (the classic 2.5D
  /// feasibility bound), then minimize the composite grid objective.
  static P25dPlan make(i64 m, i64 n, i64 k, int nranks,
                       std::optional<std::pair<int, int>> force_qc = {});

 private:
  i64 m_ = 0, n_ = 0, k_ = 0;
  int nranks_ = 0;
  int q_ = 1, c_ = 1;
};

/// C = op(A) x op(B) with the 2.5D algorithm; same calling convention as
/// ca3dmm_multiply.
template <typename T>
void p25d_multiply(simmpi::Comm& world, const P25dPlan& plan, bool trans_a,
                   bool trans_b, const BlockLayout& a_layout, const T* a_local,
                   const BlockLayout& b_layout, const T* b_local,
                   const BlockLayout& c_layout, T* c_local);

}  // namespace ca3dmm
