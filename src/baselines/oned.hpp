// 1-D PGEMM algorithms (paper §II).
//
// The three classic 1-D schemes, expressed as degenerate grids of the
// replicate/GEMM/reduce executor:
//
//   * m-partitioned (grid P x 1 x 1): every process owns a row panel of A
//     and C; B is replicated (all-gather).
//   * n-partitioned (grid 1 x P x 1): column panels of B and C; A is
//     replicated.
//   * k-partitioned (grid 1 x 1 x P): panels of A and B along k; partial C
//     results are reduce-scattered.
//
// The paper's unified view contains these as special cases; the grid solver
// genuinely produces them for tall-and-skinny shapes, and these helpers make
// the correspondence explicit for tests, examples, and benchmarks.
#pragma once

#include "baselines/cosma_like.hpp"

namespace ca3dmm {

/// 1-D algorithm that partitions the m dimension (replicates B).
inline CosmaPlan oned_m_plan(i64 m, i64 n, i64 k, int nranks) {
  return CosmaPlan::make(m, n, k, nranks,
                         ProcGrid{static_cast<int>(std::min<i64>(m, nranks)),
                                  1, 1});
}

/// 1-D algorithm that partitions the n dimension (replicates A).
inline CosmaPlan oned_n_plan(i64 m, i64 n, i64 k, int nranks) {
  return CosmaPlan::make(m, n, k, nranks,
                         ProcGrid{1,
                                  static_cast<int>(std::min<i64>(n, nranks)),
                                  1});
}

/// 1-D algorithm that partitions the k dimension (reduces C).
inline CosmaPlan oned_k_plan(i64 m, i64 n, i64 k, int nranks) {
  return CosmaPlan::make(m, n, k, nranks,
                         ProcGrid{1, 1,
                                  static_cast<int>(std::min<i64>(k, nranks))});
}

}  // namespace ca3dmm
