#include "baselines/cosma_like.hpp"

#include <algorithm>

#include "layout/redistribute.hpp"
#include "linalg/gemm.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {

using simmpi::Comm;
using simmpi::Phase;
using simmpi::PhaseScope;
using simmpi::TrackedBuffer;

CosmaPlan CosmaPlan::make(i64 m, i64 n, i64 k, int nranks,
                          std::optional<ProcGrid> force_grid) {
  CA_REQUIRE(m > 0 && n > 0 && k > 0 && nranks > 0,
             "COSMA baseline needs positive dimensions");
  CosmaPlan p;
  p.m_ = m;
  p.n_ = n;
  p.k_ = k;
  p.nranks_ = nranks;
  p.grid_ = force_grid.value_or(find_grid_cosma(m, n, k, nranks));
  CA_REQUIRE(p.grid_.active() <= nranks, "forced grid exceeds rank count");

  // Strategy: repeatedly split the largest not-yet-split dimension by its
  // whole grid factor (the multi-way generalization of CARMA's bisection the
  // paper describes; e.g. 32x32x64 on 2x2x4 -> k/4, then m/2, then n/2).
  double em = static_cast<double>(m), en = static_cast<double>(n),
         ek = static_cast<double>(k);
  bool left_m = p.grid_.pm > 1, left_n = p.grid_.pn > 1,
       left_k = p.grid_.pk > 1;
  while (left_m || left_n || left_k) {
    char pick = 0;
    double best = -1;
    if (left_k && ek > best) {
      pick = 'k';
      best = ek;
    }
    if (left_m && em > best) {
      pick = 'm';
      best = em;
    }
    if (left_n && en > best) {
      pick = 'n';
      best = en;
    }
    switch (pick) {
      case 'k':
        p.steps_.push_back({'k', p.grid_.pk});
        ek /= p.grid_.pk;
        left_k = false;
        break;
      case 'm':
        p.steps_.push_back({'m', p.grid_.pm});
        em /= p.grid_.pm;
        left_m = false;
        break;
      default:
        p.steps_.push_back({'n', p.grid_.pn});
        en /= p.grid_.pn;
        left_n = false;
        break;
    }
  }
  return p;
}

CosmaPlan CosmaPlan::make_carma(i64 m, i64 n, i64 k, int nranks) {
  CA_REQUIRE(nranks > 0 && (nranks & (nranks - 1)) == 0,
             "CARMA requires a power-of-two process count, got %d", nranks);
  CosmaPlan p;
  p.m_ = m;
  p.n_ = n;
  p.k_ = k;
  p.nranks_ = nranks;
  // Recursive bisection of the largest current dimension (Demmel et al.).
  double em = static_cast<double>(m), en = static_cast<double>(n),
         ek = static_cast<double>(k);
  int pm = 1, pn = 1, pk = 1;
  for (int P = nranks; P > 1; P /= 2) {
    if (ek >= em && ek >= en) {
      p.steps_.push_back({'k', 2});
      ek /= 2;
      pk *= 2;
    } else if (em >= en) {
      p.steps_.push_back({'m', 2});
      em /= 2;
      pm *= 2;
    } else {
      p.steps_.push_back({'n', 2});
      en /= 2;
      pn *= 2;
    }
  }
  p.grid_ = ProcGrid{pm, pn, pk};
  return p;
}

CosmaPlan::Codes CosmaPlan::codes(int world_rank) const {
  Codes c;
  if (world_rank >= active()) return c;
  c.active = true;
  int g = active();
  int q = world_rank;
  for (const CosmaStep& st : steps_) {
    const int sub_sz = g / st.ways;
    const int sub = q / sub_sz;
    q %= sub_sz;
    g = sub_sz;
    switch (st.dim) {
      case 'm': c.mi = c.mi * st.ways + sub; break;
      case 'n': c.ni = c.ni * st.ways + sub; break;
      case 'k': c.ki = c.ki * st.ways + sub; break;
      default: CA_ASSERT(false);
    }
  }
  return c;
}

namespace {

/// Row slice `idx` of `parts` of a leaf rect.
Rect row_slice(const Rect& leaf, int parts, int idx) {
  const Range rows = block_range(leaf.r.size(), parts, idx);
  return Rect{Range{leaf.r.lo + rows.lo, leaf.r.lo + rows.hi}, leaf.c};
}

}  // namespace

BlockLayout CosmaPlan::a_native() const {
  BlockLayout l(m_, k_, nranks_);
  for (int r = 0; r < active(); ++r) {
    const Codes c = codes(r);
    const Rect leaf{m_leaf(c.mi), k_leaf(c.ki)};
    const Rect mine = row_slice(leaf, grid_.pn, c.ni);
    if (!mine.empty()) l.add_rect(r, mine);
  }
  return l;
}

BlockLayout CosmaPlan::b_native() const {
  BlockLayout l(k_, n_, nranks_);
  for (int r = 0; r < active(); ++r) {
    const Codes c = codes(r);
    const Rect leaf{k_leaf(c.ki), n_leaf(c.ni)};
    const Rect mine = row_slice(leaf, grid_.pm, c.mi);
    if (!mine.empty()) l.add_rect(r, mine);
  }
  return l;
}

BlockLayout CosmaPlan::c_native() const {
  BlockLayout l(m_, n_, nranks_);
  for (int r = 0; r < active(); ++r) {
    const Codes c = codes(r);
    const Rect leaf{m_leaf(c.mi), n_leaf(c.ni)};
    const Rect mine = row_slice(leaf, grid_.pk, c.ki);
    if (!mine.empty()) l.add_rect(r, mine);
  }
  return l;
}

template <typename T>
void cosma_multiply(Comm& world, const CosmaPlan& plan, bool trans_a,
                    bool trans_b, const BlockLayout& a_layout, const T* a_local,
                    const BlockLayout& b_layout, const T* b_local,
                    const BlockLayout& c_layout, T* c_local) {
  CA_REQUIRE(world.size() == plan.nranks(), "plan is for %d ranks, comm has %d",
             plan.nranks(), world.size());
  const int me = world.rank();
  const CosmaPlan::Codes co = plan.codes(me);
  const ProcGrid& g = plan.grid();

  const BlockLayout a_native = plan.a_native();
  const BlockLayout b_native = plan.b_native();
  const BlockLayout c_native = plan.c_native();

  TrackedBuffer<T> a_init(a_native.local_size(me));
  TrackedBuffer<T> b_init(b_native.local_size(me));
  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, a_layout, a_local, a_native, a_init.data(),
                    trans_a);
    redistribute<T>(world, b_layout, b_local, b_native, b_init.data(),
                    trans_b);
  }

  Comm active = world.split(co.active ? 0 : -1, me);
  TrackedBuffer<T> c_result;

  if (co.active) {
    const Range mr = plan.m_leaf(co.mi), nr = plan.n_leaf(co.ni),
                kr = plan.k_leaf(co.ki);
    const i64 mb = mr.size(), nb = nr.size(), kb = kr.size();

    // ---- replicate A across the p_n group sharing (mi, ki) ----
    TrackedBuffer<T> a_blk, b_blk;
    const T* a_ptr = a_init.data();
    const T* b_ptr = b_init.data();
    if (g.pn > 1) {
      Comm ga = active.split(co.mi * g.pk + co.ki, co.ni);
      CA_ASSERT(ga.size() == g.pn);
      PhaseScope ps(world, Phase::kReplicate);
      std::vector<i64> counts(static_cast<size_t>(g.pn));
      for (int t = 0; t < g.pn; ++t)
        counts[static_cast<size_t>(t)] =
            block_size(mb, g.pn, t) * kb * static_cast<i64>(sizeof(T));
      a_blk.resize(mb * kb);
      ga.allgatherv_bytes(a_init.data(), counts[static_cast<size_t>(co.ni)],
                          a_blk.data(), counts);
      a_ptr = a_blk.data();
      a_init.release();
    }
    // ---- replicate B across the p_m group sharing (ki, ni) ----
    if (g.pm > 1) {
      Comm gb = active.split(g.pm * g.pk /*disjoint color space*/ +
                                 co.ki * g.pn + co.ni,
                             co.mi);
      CA_ASSERT(gb.size() == g.pm);
      PhaseScope ps(world, Phase::kReplicate);
      std::vector<i64> counts(static_cast<size_t>(g.pm));
      for (int t = 0; t < g.pm; ++t)
        counts[static_cast<size_t>(t)] =
            block_size(kb, g.pm, t) * nb * static_cast<i64>(sizeof(T));
      b_blk.resize(kb * nb);
      gb.allgatherv_bytes(b_init.data(), counts[static_cast<size_t>(co.mi)],
                          b_blk.data(), counts);
      b_ptr = b_blk.data();
      b_init.release();
    }

    // ---- one local GEMM ----
    TrackedBuffer<T> c_partial(mb * nb);
    {
      PhaseScope ps(world, Phase::kCompute);
      gemm_blocked<T>(false, false, mb, nb, kb, T{1}, a_ptr, kb, b_ptr, nb,
                      c_partial.data(), nb);
      // CTF mode: charge the derated contraction rate.
      const double frac =
          plan.ctf_mode() ? world.machine().ctf_gemm_fraction() : 1.0;
      world.charge_compute(gemm_flops(mb, nb, kb) / frac,
                           gemm_bytes(mb, nb, kb, sizeof(T)));
    }
    a_blk.release();
    b_blk.release();
    a_init.release();
    b_init.release();

    // ---- reduce partial C across the p_k group sharing (mi, ni) ----
    if (g.pk > 1) {
      Comm gc = active.split(co.mi * g.pn + co.ni, co.ki);
      CA_ASSERT(gc.size() == g.pk);
      PhaseScope ps(world, Phase::kReduce);
      std::vector<i64> counts(static_cast<size_t>(g.pk));
      for (int t = 0; t < g.pk; ++t)
        counts[static_cast<size_t>(t)] = block_size(mb, g.pk, t) * nb;
      c_result.resize(counts[static_cast<size_t>(co.ki)]);
      // Row slices: the partial C buffer is already segment-ordered. COSMA
      // "crafts the binary reduction tree" itself (paper §IV-B), so it does
      // not hit the MPI library's large-message reduce-scatter degradation.
      gc.reduce_scatter(c_partial.data(), c_result.data(), counts,
                        /*custom_tree=*/true);
    } else {
      c_result = std::move(c_partial);
    }
  }

  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, c_native, c_result.data(), c_layout, c_local,
                    false);
  }
}

template void cosma_multiply<float>(Comm&, const CosmaPlan&, bool, bool,
                                    const BlockLayout&, const float*,
                                    const BlockLayout&, const float*,
                                    const BlockLayout&, float*);
template void cosma_multiply<double>(Comm&, const CosmaPlan&, bool, bool,
                                     const BlockLayout&, const double*,
                                     const BlockLayout&, const double*,
                                     const BlockLayout&, double*);

}  // namespace ca3dmm
