#include "baselines/ctf_like.hpp"

#include "layout/redistribute.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {

using simmpi::Comm;
using simmpi::Phase;
using simmpi::PhaseScope;
using simmpi::TrackedBuffer;

template <typename T>
void ctf_multiply(Comm& world, const CtfPlan& plan, bool trans_a, bool trans_b,
                  const BlockLayout& a_layout, const T* a_local,
                  const BlockLayout& b_layout, const T* b_local,
                  const BlockLayout& c_layout, T* c_local) {
  const CosmaPlan& p = plan.inner;
  const int me = world.rank();
  // CTF's internal mapping stage: operands are shuffled into the framework's
  // own (cyclic) distribution before the contraction kernel sees them. We
  // model that as one extra full redistribution hop per operand.
  const BlockLayout a_cyc = BlockLayout::col_1d(trans_a ? p.k() : p.m(),
                                                trans_a ? p.m() : p.k(),
                                                world.size());
  const BlockLayout b_cyc = BlockLayout::col_1d(trans_b ? p.n() : p.k(),
                                                trans_b ? p.k() : p.n(),
                                                world.size());
  TrackedBuffer<T> a_tmp(a_cyc.local_size(me));
  TrackedBuffer<T> b_tmp(b_cyc.local_size(me));
  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, a_layout, a_local, a_cyc, a_tmp.data(), false);
    redistribute<T>(world, b_layout, b_local, b_cyc, b_tmp.data(), false);
  }
  cosma_multiply<T>(world, p, trans_a, trans_b, a_cyc, a_tmp.data(), b_cyc,
                    b_tmp.data(), c_layout, c_local);
}

template void ctf_multiply<float>(Comm&, const CtfPlan&, bool, bool,
                                  const BlockLayout&, const float*,
                                  const BlockLayout&, const float*,
                                  const BlockLayout&, float*);
template void ctf_multiply<double>(Comm&, const CtfPlan&, bool, bool,
                                   const BlockLayout&, const double*,
                                   const BlockLayout&, const double*,
                                   const BlockLayout&, double*);

}  // namespace ca3dmm
