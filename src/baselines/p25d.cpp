#include "baselines/p25d.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "layout/redistribute.hpp"
#include "linalg/gemm.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {

using simmpi::Comm;
using simmpi::Phase;
using simmpi::PhaseScope;
using simmpi::TrackedBuffer;

namespace {

constexpr int kTagAlignA = 501;
constexpr int kTagAlignB = 502;
constexpr int kTagShiftA = 503;
constexpr int kTagShiftB = 504;

inline int wrap(int v, int q) { return ((v % q) + q) % q; }

}  // namespace

P25dPlan P25dPlan::make(i64 m, i64 n, i64 k, int nranks,
                        std::optional<std::pair<int, int>> force_qc) {
  CA_REQUIRE(m > 0 && n > 0 && k > 0 && nranks > 0,
             "2.5D needs positive dimensions");
  P25dPlan p;
  p.m_ = m;
  p.n_ = n;
  p.k_ = k;
  p.nranks_ = nranks;
  if (force_qc) {
    p.q_ = force_qc->first;
    p.c_ = force_qc->second;
    CA_REQUIRE(p.q_ >= 1 && p.c_ >= 1 && p.active() <= nranks,
               "bad forced 2.5D grid %d^2 x %d", p.q_, p.c_);
    return p;
  }
  // Choose (q, c): c <= q (classic feasibility), maximize utilization, then
  // minimize the composite objective of the equivalent q x q x c grid.
  int best_active = 0;
  double best_cost = 1e300;
  for (int c = 1; c * c * c <= nranks; ++c) {
    const int q = static_cast<int>(std::sqrt(static_cast<double>(nranks / c)));
    for (int qq = std::max(1, q - 1); qq <= q + 1; ++qq) {
      if (qq * qq * c > nranks || c > qq) continue;
      const int active = qq * qq * c;
      const double cost = grid_objective(m, n, k, ProcGrid{qq, qq, c});
      if (active > best_active ||
          (active == best_active && cost < best_cost)) {
        best_active = active;
        best_cost = cost;
        p.q_ = qq;
        p.c_ = c;
      }
    }
  }
  return p;
}

BlockLayout P25dPlan::a_native() const {
  // Layer 0 only: rank (i, j, 0) = j*q + i owns A(i-block, j-block).
  BlockLayout l(m_, k_, nranks_);
  for (int i = 0; i < q_; ++i)
    for (int j = 0; j < q_; ++j) {
      const Rect r{block_range(m_, q_, i), block_range(k_, q_, j)};
      if (!r.empty()) l.add_rect(j * q_ + i, r);
    }
  return l;
}

BlockLayout P25dPlan::b_native() const {
  BlockLayout l(k_, n_, nranks_);
  for (int i = 0; i < q_; ++i)
    for (int j = 0; j < q_; ++j) {
      const Rect r{block_range(k_, q_, i), block_range(n_, q_, j)};
      if (!r.empty()) l.add_rect(j * q_ + i, r);
    }
  return l;
}

BlockLayout P25dPlan::c_native() const {
  // Each C(i, j) block is row-split across the c layers after the
  // reduce-scatter.
  BlockLayout l(m_, n_, nranks_);
  for (int layer = 0; layer < c_; ++layer)
    for (int i = 0; i < q_; ++i)
      for (int j = 0; j < q_; ++j) {
        const Range rows = block_range(m_, q_, i);
        const Range sub = block_range(rows.size(), c_, layer);
        const Rect r{Range{rows.lo + sub.lo, rows.lo + sub.hi},
                     block_range(n_, q_, j)};
        if (!r.empty()) l.add_rect(layer * q_ * q_ + j * q_ + i, r);
      }
  return l;
}

template <typename T>
void p25d_multiply(Comm& world, const P25dPlan& plan, bool trans_a,
                   bool trans_b, const BlockLayout& a_layout, const T* a_local,
                   const BlockLayout& b_layout, const T* b_local,
                   const BlockLayout& c_layout, T* c_local) {
  CA_REQUIRE(world.size() == plan.nranks(), "plan is for %d ranks, comm has %d",
             plan.nranks(), world.size());
  const int me = world.rank();
  const int q = plan.q(), c = plan.c();
  const bool is_active = me < plan.active();
  const int layer = me / (q * q);
  const int idx = me % (q * q);
  const int i = idx % q, j = idx / q;
  const i64 m = plan.m(), n = plan.n(), k = plan.k();

  const BlockLayout a_native = plan.a_native();
  const BlockLayout b_native = plan.b_native();
  const BlockLayout c_native = plan.c_native();

  // A and B blocks live on layer 0 initially; every active rank still sizes
  // its (replicated) block buffers (the 2.5D extra-memory cost).
  const i64 mb = block_size(m, q, i), nb = block_size(n, q, j);
  const i64 kb_max = ceil_div(k, q);
  auto kpart = [&](int t) { return block_size(k, q, wrap(t, q)); };

  TrackedBuffer<T> a_init(a_native.local_size(me));
  TrackedBuffer<T> b_init(b_native.local_size(me));
  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, a_layout, a_local, a_native, a_init.data(),
                    trans_a);
    redistribute<T>(world, b_layout, b_local, b_native, b_init.data(),
                    trans_b);
  }

  Comm active = world.split(is_active ? 0 : -1, me);
  TrackedBuffer<T> c_result;

  if (is_active) {
    Comm grid = active.split(layer, idx);         // my layer's q x q grid
    Comm depth = active.split(c /*offset*/ + idx, layer);  // fixed (i, j)
    CA_ASSERT(grid.size() == q * q && depth.size() == c);

    // ---- replicate layer 0's blocks down the layer dimension ----
    TrackedBuffer<T> a_cur(mb * kb_max), b_cur(kb_max * nb);
    {
      PhaseScope ps(world, Phase::kReplicate);
      if (layer == 0 && a_init.size() > 0)
        std::memcpy(a_cur.data(), a_init.data(),
                    static_cast<size_t>(a_init.size()) * sizeof(T));
      depth.bcast(a_cur.data(), mb * kpart(j), 0);
      if (layer == 0 && b_init.size() > 0)
        std::memcpy(b_cur.data(), b_init.data(),
                    static_cast<size_t>(b_init.size()) * sizeof(T));
      depth.bcast(b_cur.data(), kpart(i) * nb, 0);
    }
    a_init.release();
    b_init.release();

    // ---- layer-specific Cannon alignment ----
    // Layer `layer` executes global shift steps [off, off + steps): align so
    // that this rank holds A(i, i+j+off) and B(i+j+off, j).
    const i64 off64 = block_start(q, c, layer);
    const int off = static_cast<int>(off64);
    const int steps = static_cast<int>(block_size(q, c, layer));
    TrackedBuffer<T> a_nxt(mb * kb_max), b_nxt(kb_max * nb);
    {
      PhaseScope ps(world, Phase::kShift);
      // A: I hold (i, j); the rank needing mine has j' with
      // wrap(j' + i + off) == j.
      const int dstA = wrap(j - i - off, q) * q + i;
      grid.sendrecv(a_cur.data(), mb * kpart(j), dstA, a_nxt.data(),
                    mb * kpart(i + j + off), wrap(j + i + off, q) * q + i,
                    kTagAlignA);
      a_cur.swap(a_nxt);
      // B: the rank needing mine has i' with wrap(i' + j + off) == i.
      const int dstB = j * q + wrap(i - j - off, q);
      grid.sendrecv(b_cur.data(), kpart(i) * nb, dstB, b_nxt.data(),
                    kpart(i + j + off) * nb, j * q + wrap(i + j + off, q),
                    kTagAlignB);
      b_cur.swap(b_nxt);
    }

    // ---- my share of the Cannon steps ----
    TrackedBuffer<T> c_partial(mb * nb);
    const int left = wrap(j - 1, q) * q + i;
    const int right = wrap(j + 1, q) * q + i;
    const int up = j * q + wrap(i - 1, q);
    const int down = j * q + wrap(i + 1, q);
    for (int t = 0; t < steps; ++t) {
      const i64 kb = kpart(i + j + off + t);
      const i64 kb_next = kpart(i + j + off + t + 1);
      double budget = 0;
      if (t < steps - 1) {
        PhaseScope ps(world, Phase::kShift);
        grid.sendrecv(a_cur.data(), mb * kb, left, a_nxt.data(), mb * kb_next,
                      right, kTagShiftA);
        budget = grid.last_op_cost();
        grid.sendrecv(b_cur.data(), kb * nb, up, b_nxt.data(), kb_next * nb,
                      down, kTagShiftB);
        budget += grid.last_op_cost();
      }
      {
        PhaseScope ps(world, Phase::kCompute);
        gemm_blocked<T>(false, false, mb, nb, kb, T{1}, a_cur.data(), kb,
                        b_cur.data(), nb, c_partial.data(), nb);
        world.charge_compute_overlap_budget(
            gemm_flops(mb, nb, kb),
            gemm_operand_bytes(mb, nb, kb, sizeof(T)) +
                (t == 0 ? gemm_result_bytes(mb, nb, sizeof(T)) : 0.0),
            budget);
      }
      a_cur.swap(a_nxt);
      b_cur.swap(b_nxt);
    }
    a_cur.release();
    a_nxt.release();
    b_cur.release();
    b_nxt.release();

    // ---- reduce partial C across layers (row split) ----
    if (c > 1) {
      PhaseScope ps(world, Phase::kReduce);
      std::vector<i64> counts(static_cast<size_t>(c));
      for (int l2 = 0; l2 < c; ++l2)
        counts[static_cast<size_t>(l2)] = block_size(mb, c, l2) * nb;
      c_result.resize(counts[static_cast<size_t>(layer)]);
      depth.reduce_scatter(c_partial.data(), c_result.data(), counts);
    } else {
      c_result = std::move(c_partial);
    }
  }

  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, c_native, c_result.data(), c_layout, c_local,
                    false);
  }
}

template void p25d_multiply<float>(Comm&, const P25dPlan&, bool, bool,
                                   const BlockLayout&, const float*,
                                   const BlockLayout&, const float*,
                                   const BlockLayout&, float*);
template void p25d_multiply<double>(Comm&, const P25dPlan&, bool, bool,
                                    const BlockLayout&, const double*,
                                    const BlockLayout&, const double*,
                                    const BlockLayout&, double*);

}  // namespace ca3dmm
