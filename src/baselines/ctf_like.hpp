// CTF-like 2.5D baseline (paper §II, §IV-A).
//
// The Cyclops Tensor Framework implements the 2.5D algorithm for any number
// of processes, but "is not fine tuned for matrix multiplication" and "its
// process grid and matrix decomposition may be far from optimal" (paper
// §IV-A, citing [18]). This baseline reproduces those two properties:
//
//  * the grid comes from find_grid_ctf — a shape-oblivious folded processor
//    grid (near-square 2-D grid x replication depth), not the
//    surface-minimizing grid;
//  * each multiply pays an extra internal remapping pass: CTF redistributes
//    operands into its internal cyclic layout before computing, on top of
//    any user-layout conversion.
//
// The execution core is the same replicate/GEMM/reduce pipeline as the
// COSMA-like baseline, so the comparison isolates grid choice + remapping
// overhead — which is what Fig. 3's CTF curves show.
#pragma once

#include "baselines/cosma_like.hpp"

namespace ca3dmm {

struct CtfPlan {
  CosmaPlan inner;
  static CtfPlan make(i64 m, i64 n, i64 k, int nranks) {
    CtfPlan p{CosmaPlan::make(m, n, k, nranks, find_grid_ctf(m, n, k, nranks))};
    p.inner.set_ctf_mode(true);  // derated local GEMM (see Machine)
    return p;
  }
};

template <typename T>
void ctf_multiply(simmpi::Comm& world, const CtfPlan& plan, bool trans_a,
                  bool trans_b, const BlockLayout& a_layout, const T* a_local,
                  const BlockLayout& b_layout, const T* b_local,
                  const BlockLayout& c_layout, T* c_local);

}  // namespace ca3dmm
