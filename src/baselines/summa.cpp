#include "baselines/summa.hpp"

#include <algorithm>
#include <cstring>

#include "layout/redistribute.hpp"
#include "linalg/gemm.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {

using simmpi::Comm;
using simmpi::Phase;
using simmpi::PhaseScope;
using simmpi::TrackedBuffer;

SummaPlan SummaPlan::make(i64 m, i64 n, i64 k, int nranks,
                          std::optional<std::pair<int, int>> force_grid) {
  CA_REQUIRE(m > 0 && n > 0 && k > 0 && nranks > 0,
             "SUMMA needs positive dimensions");
  SummaPlan p;
  p.m_ = m;
  p.n_ = n;
  p.k_ = k;
  p.nranks_ = nranks;
  if (force_grid) {
    p.pr_ = force_grid->first;
    p.pc_ = force_grid->second;
    CA_REQUIRE(p.pr_ * p.pc_ <= nranks, "forced SUMMA grid exceeds ranks");
    return p;
  }
  // Best 2-D factorization under the same composite objective as CA3DMM's
  // solver, with pk pinned to 1 (SUMMA has no k parallelism).
  int max_active = 1;
  for (int pr = 1; pr <= nranks && pr <= m; ++pr)
    max_active = std::max(
        max_active, pr * static_cast<int>(std::min<i64>(n, nranks / pr)));
  const int min_active =
      std::min(static_cast<int>(0.95 * nranks), max_active);
  double best = 1e300;
  for (int pr = 1; pr <= nranks && pr <= m; ++pr) {
    const int pc_lim = static_cast<int>(std::min<i64>(n, nranks / pr));
    for (int pc = 1; pc <= pc_lim; ++pc) {
      if (pr * pc < min_active) continue;
      const double cost = grid_objective(m, n, k, ProcGrid{pr, pc, 1});
      if (cost < best) {
        best = cost;
        p.pr_ = pr;
        p.pc_ = pc;
      }
    }
  }
  return p;
}

BlockLayout SummaPlan::a_native() const {
  // Grid ranks are row-major over (pr, pc); idle ranks own nothing.
  BlockLayout l(m_, k_, nranks_);
  for (int i = 0; i < pr_; ++i)
    for (int j = 0; j < pc_; ++j) {
      const Rect r{block_range(m_, pr_, i), block_range(k_, pc_, j)};
      if (!r.empty()) l.add_rect(i * pc_ + j, r);
    }
  return l;
}

BlockLayout SummaPlan::b_native() const {
  BlockLayout l(k_, n_, nranks_);
  for (int i = 0; i < pr_; ++i)
    for (int j = 0; j < pc_; ++j) {
      const Rect r{block_range(k_, pr_, i), block_range(n_, pc_, j)};
      if (!r.empty()) l.add_rect(i * pc_ + j, r);
    }
  return l;
}

BlockLayout SummaPlan::c_native() const {
  BlockLayout l(m_, n_, nranks_);
  for (int i = 0; i < pr_; ++i)
    for (int j = 0; j < pc_; ++j) {
      const Rect r{block_range(m_, pr_, i), block_range(n_, pc_, j)};
      if (!r.empty()) l.add_rect(i * pc_ + j, r);
    }
  return l;
}

template <typename T>
void summa_multiply(Comm& world, const SummaPlan& plan, bool trans_a,
                    bool trans_b, const BlockLayout& a_layout, const T* a_local,
                    const BlockLayout& b_layout, const T* b_local,
                    const BlockLayout& c_layout, T* c_local, i64 panel_kb) {
  CA_REQUIRE(world.size() == plan.nranks(), "plan is for %d ranks, comm has %d",
             plan.nranks(), world.size());
  const int me = world.rank();
  const int pr = plan.pr(), pc = plan.pc();
  const bool is_active = me < plan.active();
  const int gi = me / pc, gj = me % pc;
  const i64 m = plan.m(), n = plan.n(), k = plan.k();

  const BlockLayout a_native = plan.a_native();
  const BlockLayout b_native = plan.b_native();
  const BlockLayout c_native = plan.c_native();

  TrackedBuffer<T> a_init(a_native.local_size(me));
  TrackedBuffer<T> b_init(b_native.local_size(me));
  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, a_layout, a_local, a_native, a_init.data(),
                    trans_a);
    redistribute<T>(world, b_layout, b_local, b_native, b_init.data(),
                    trans_b);
  }

  Comm active = world.split(is_active ? 0 : -1, me);
  TrackedBuffer<T> c_blk;

  if (is_active) {
    Comm row = active.split(gi, gj);
    Comm col = active.split(pr + gj, gi);
    const Range mr = block_range(m, pr, gi);
    const Range nc = block_range(n, pc, gj);
    const Range a_kr = block_range(k, pc, gj);  // my A block's k columns
    const Range b_kr = block_range(k, pr, gi);  // my B block's k rows
    const i64 mb = mr.size(), nb = nc.size();
    c_blk.resize(mb * nb);

    // Panel walk: intervals never straddle an A column-block or B row-block
    // boundary; panel_kb further caps the width.
    i64 kb_max = 0;
    {
      i64 k0 = 0;
      while (k0 < k) {
        i64 k1 = std::min(block_range(k, pc, block_of_index(k, pc, k0)).hi,
                          block_range(k, pr, block_of_index(k, pr, k0)).hi);
        if (panel_kb > 0) k1 = std::min(k1, k0 + panel_kb);
        kb_max = std::max(kb_max, k1 - k0);
        k0 = k1;
      }
    }
    TrackedBuffer<T> a_panel(mb * kb_max), b_panel(kb_max * nb);

    i64 k0 = 0;
    while (k0 < k) {
      const int a_owner_col = static_cast<int>(block_of_index(k, pc, k0));
      const int b_owner_row = static_cast<int>(block_of_index(k, pr, k0));
      i64 k1 = std::min(block_range(k, pc, a_owner_col).hi,
                        block_range(k, pr, b_owner_row).hi);
      if (panel_kb > 0) k1 = std::min(k1, k0 + panel_kb);
      const i64 w = k1 - k0;
      double overlap_budget = 0;
      {
        PhaseScope ps(world, Phase::kShift);
        if (gj == a_owner_col) {
          // Pack my columns [k0, k1) into the panel.
          const i64 off = k0 - a_kr.lo;
          for (i64 r = 0; r < mb; ++r)
            std::memcpy(a_panel.data() + r * w,
                        a_init.data() + r * a_kr.size() + off,
                        static_cast<size_t>(w) * sizeof(T));
        }
        row.bcast(a_panel.data(), mb * w, a_owner_col);
        overlap_budget = world.last_op_cost();
        if (gi == b_owner_row)
          std::memcpy(b_panel.data(), b_init.data() + (k0 - b_kr.lo) * nb,
                      static_cast<size_t>(w * nb) * sizeof(T));
        col.bcast(b_panel.data(), w * nb, b_owner_row);
        overlap_budget += world.last_op_cost();
      }
      {
        PhaseScope ps(world, Phase::kCompute);
        gemm_blocked<T>(false, false, mb, nb, w, T{1}, a_panel.data(), w,
                        b_panel.data(), nb, c_blk.data(), nb);
        const double bytes =
            gemm_operand_bytes(mb, nb, w, sizeof(T)) +
            (k0 == 0 ? gemm_result_bytes(mb, nb, sizeof(T)) : 0.0);
        world.charge_compute_overlap_budget(gemm_flops(mb, nb, w), bytes,
                                            overlap_budget);
      }
      k0 = k1;
    }
  }

  // The initial operand buffers are dead once the panel loop finishes.
  a_init.release();
  b_init.release();

  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, c_native, c_blk.data(), c_layout, c_local, false);
  }
}

template void summa_multiply<float>(Comm&, const SummaPlan&, bool, bool,
                                    const BlockLayout&, const float*,
                                    const BlockLayout&, const float*,
                                    const BlockLayout&, float*, i64);
template void summa_multiply<double>(Comm&, const SummaPlan&, bool, bool,
                                     const BlockLayout&, const double*,
                                     const BlockLayout&, const double*,
                                     const BlockLayout&, double*, i64);

}  // namespace ca3dmm
