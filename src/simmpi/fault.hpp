// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is attached to a Cluster before run() and fires at exact
// points in each rank's own program order, so a given plan reproduces the
// same failure on every run — the property that makes failure-path tests
// (cooperative abort, watchdog, consistency checks) non-flaky.
#pragma once

#include <vector>

#include "common/partition.hpp"

namespace ca3dmm::simmpi {

struct FaultPlan {
  /// Throw a ca3dmm::Error inside world rank `rank` when it issues its
  /// `at_op`-th communication operation (1-based; every collective, send,
  /// recv, and sendrecv counts as one op on the calling rank).
  struct KillRank {
    int rank = -1;
    i64 at_op = 1;
  };

  /// Scale all locally charged time of every rank on node `node` by
  /// `factor` (>= 1): local GEMMs and the rank's own point-to-point costs.
  /// Collectives observe the straggler through its late arrival, which is
  /// exactly how a slow node delays a bulk-synchronous phase.
  struct StraggleNode {
    int node = -1;
    double factor = 1.0;
  };

  /// XOR `mask` into byte `offset` of the `nth_match`-th message received on
  /// the point-to-point channel (src, dst, tag) — world ranks, 1-based match
  /// count, across all communicators.
  struct FlipPayload {
    int src = -1;
    int dst = -1;
    int tag = 0;
    int nth_match = 1;
    i64 offset = 0;
    unsigned char mask = 0x01;
  };

  std::vector<KillRank> kills;
  std::vector<StraggleNode> stragglers;
  std::vector<FlipPayload> flips;

  bool empty() const {
    return kills.empty() && stragglers.empty() && flips.empty();
  }
};

/// Straggler-mitigation policy, checked at every collective rendezvous on
/// top of the PR 1 deadlock watchdog (which only catches total stalls, not
/// slow nodes). When the last arriver's entry time exceeds
/// `degrade_factor` times the latest entry time of any rank on a *different*
/// node — comparing against other nodes, not other ranks, so a whole slow
/// node cannot mask itself — and the absolute lag is at least `min_lag_s`
/// of virtual time, the late rank's node is recorded as degraded
/// (Cluster::degraded_nodes) and the collective raises a ca3dmm::Error on
/// every member, triggering the same shrink path as a rank kill.
/// All thresholds are virtual time, so detection is deterministic.
struct StragglerPolicy {
  bool enabled = false;
  double degrade_factor = 3.0;  ///< last arrival vs other nodes' latest
  double min_lag_s = 0.0;       ///< absolute virtual-time lag floor (s)
};

}  // namespace ca3dmm::simmpi
