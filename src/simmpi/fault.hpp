// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is attached to a Cluster before run() and fires at exact
// points in each rank's own program order, so a given plan reproduces the
// same failure on every run — the property that makes failure-path tests
// (cooperative abort, watchdog, consistency checks) non-flaky.
#pragma once

#include <vector>

#include "common/partition.hpp"

namespace ca3dmm::simmpi {

struct FaultPlan {
  /// Throw a ca3dmm::Error inside world rank `rank` when it issues its
  /// `at_op`-th communication operation (1-based; every collective, send,
  /// recv, and sendrecv counts as one op on the calling rank).
  struct KillRank {
    int rank = -1;
    i64 at_op = 1;
  };

  /// Scale all locally charged time of every rank on node `node` by
  /// `factor` (>= 1): local GEMMs and the rank's own point-to-point costs.
  /// Collectives observe the straggler through its late arrival, which is
  /// exactly how a slow node delays a bulk-synchronous phase.
  struct StraggleNode {
    int node = -1;
    double factor = 1.0;
  };

  /// XOR `mask` into byte `offset` of the `nth_match`-th message received on
  /// the point-to-point channel (src, dst, tag) — world ranks, 1-based match
  /// count, across all communicators.
  struct FlipPayload {
    int src = -1;
    int dst = -1;
    int tag = 0;
    int nth_match = 1;
    i64 offset = 0;
    unsigned char mask = 0x01;
  };

  std::vector<KillRank> kills;
  std::vector<StraggleNode> stragglers;
  std::vector<FlipPayload> flips;

  bool empty() const {
    return kills.empty() && stragglers.empty() && flips.empty();
  }
};

}  // namespace ca3dmm::simmpi
