// Heterogeneous multi-cluster machine topology.
//
// The original machine model assumed one homogeneous Machine for every node
// and derived a rank's node by integer division (Machine::node_of_rank).
// That breaks down in two ways the simulator now has to handle:
//
//  * Mixed clusters: FlagCX-style deployments join a CPU cluster and a GPU
//    cluster (different GEMM rates, NIC bandwidths, ranks per node) through
//    an inter-cluster link that is slower than either cluster's fabric. A
//    collective spanning both must be priced as intra-cluster phases plus an
//    inter-cluster exchange, not with one blended alpha/beta.
//  * Shrink-and-replan: after ResilientRunner removes failed ranks, the
//    survivors are renumbered contiguously, so `rank / ranks_per_node` no
//    longer names the *physical* node a rank runs on. Straggler attribution
//    and trace pids must follow the physical placement, which only an
//    explicit rank -> (cluster, node) map can provide.
//
// A Topology is that map: an ordered list of clusters (each with its own
// Machine and contiguous world-rank range), an inter-cluster link, and
// per-rank cluster/node vectors with globally unique physical node ids.
// Topology::homogeneous wraps the legacy single-Machine model so every
// existing call site keeps its exact semantics; restricted_to() builds the
// survivor topology of a shrink while *pinning* physical node ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simmpi/machine.hpp"

namespace ca3dmm::simmpi {

/// One homogeneous cluster inside a Topology: `nranks` contiguous world
/// ranks on nodes described by `machine` (ranks_per_node ranks per node).
struct ClusterSpec {
  std::string name;  ///< for traces and tables ("cpu", "gpu", ...)
  Machine machine{};
  int nranks = 0;

  friend bool operator==(const ClusterSpec&, const ClusterSpec&) = default;
};

/// Alpha-beta parameters of the link joining any two clusters (one shared
/// inter-cluster fabric, the FlagCX hybrid-runner model: every cross-cluster
/// exchange pays this link regardless of which pair of clusters it joins).
struct InterClusterLink {
  double alpha = 5e-6;       ///< per-message latency (s)
  double bandwidth = 5e9;    ///< per-rank bandwidth (B/s)

  double beta() const { return 1.0 / bandwidth; }

  friend bool operator==(const InterClusterLink&,
                         const InterClusterLink&) = default;
};

class Topology {
 public:
  /// Default: empty (0 ranks). Use homogeneous() or make().
  Topology() = default;

  /// The legacy model: one cluster of `nranks` ranks of `machine`, node ids
  /// `rank / ranks_per_node`. Bit-compatible with the pre-Topology code.
  static Topology homogeneous(int nranks, Machine machine);

  /// Joins `clusters` (world ranks assigned contiguously, cluster 0 first)
  /// through `link`. Node ids are globally unique across clusters.
  static Topology make(std::vector<ClusterSpec> clusters,
                       InterClusterLink link = {});

  int nranks() const { return static_cast<int>(cluster_of_.size()); }
  int nclusters() const { return static_cast<int>(clusters_.size()); }
  const ClusterSpec& cluster(int c) const { return clusters_.at(c); }
  const InterClusterLink& link() const { return link_; }
  bool single_cluster() const { return nclusters() <= 1; }

  /// Anchor machine: cluster 0's Machine. Legacy call sites that need "the"
  /// machine of a cluster-wide object (e.g. alltoallv derating factors of a
  /// world communicator) use this; it is what `Cluster::machine()` returns.
  const Machine& machine() const;
  const Machine& machine_of_cluster(int c) const {
    return clusters_.at(c).machine;
  }
  const Machine& machine_of_rank(int world_rank) const {
    return clusters_[cluster_of_rank(world_rank)].machine;
  }

  int cluster_of_rank(int world_rank) const {
    return cluster_of_.at(world_rank);
  }
  /// Globally unique *physical* node id of a world rank. Unlike
  /// Machine::node_of_rank this survives restricted_to(): a survivor keeps
  /// the node id it had before the shrink.
  int node_of_rank(int world_rank) const { return node_of_.at(world_rank); }
  /// Number of distinct physical node ids present (nodes that lost all
  /// their ranks to a shrink are not counted).
  int nnodes() const;
  /// Sorted distinct physical node ids (trace process enumeration).
  std::vector<int> node_ids() const;
  /// Cluster owning physical node `node` (-1 if no rank lives there).
  int cluster_of_node(int node) const;

  /// Survivor topology after a shrink: new world rank r maps to old world
  /// rank `survivors[r]` and inherits its *physical* cluster and node ids.
  /// `survivors` must be sorted ascending and name valid old ranks.
  Topology restricted_to(const std::vector<int>& survivors) const;

  /// Deterministic hash of everything that changes collective/GEMM pricing:
  /// cluster count and sizes, each cluster's machine parameters that feed
  /// the cost model, and the inter-cluster link. Returns 0 for a topology
  /// indistinguishable from Topology::homogeneous of its cluster-0 machine,
  /// so legacy tuner keys (which carried no topology hash) stay valid.
  std::uint64_t signature() const;

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  std::vector<ClusterSpec> clusters_;
  InterClusterLink link_{};
  std::vector<int> cluster_of_;  ///< per world rank
  std::vector<int> node_of_;     ///< per world rank, physical id
};

/// Point-to-point time between two world ranks of `topo` for `bytes` bytes:
/// shared memory on the same node, the cluster's NIC across nodes of one
/// cluster, the inter-cluster link across clusters. This is the single p2p
/// pricing rule shared by the engine (send/recv/sendrecv) and the cost
/// model, so their times agree by construction.
double t_p2p_ranks(const Topology& topo, int a, int b, double bytes);

}  // namespace ca3dmm::simmpi
