// Per-rank buffer pool backing TrackedBuffer allocations.
//
// The persistent PGEMM engine (src/engine) executes many multiplications on
// one long-lived context; without pooling, every call re-allocates the same
// work buffers (initial operand blocks, shift buffers, partial C, packing
// scratch). A BufferPool keeps released allocations on exact-size free lists
// and hands them back on the next request of the same size, so a steady
// stream of same-shape requests performs zero heap allocations after the
// first call.
//
// Accounting contract (Table I semantics): pooled memory is reported to the
// rank's memory tracker only while it is checked out. A TrackedBuffer served
// from the pool tracks exactly the same byte count at exactly the same
// program points as a heap-backed one, and pooled memory is returned zeroed
// (like `new T[n]()`), so peak-memory numbers and computed results are
// bit-identical with and without a pool. Idle pooled bytes are deliberately
// NOT charged: they model a reusable arena owned by the engine, and
// `idle_bytes()` exposes them separately.
//
// Exact size classes (not power-of-two buckets) are intentional: the engine
// serves repeated identical shapes, where exact matching gives a 100% reuse
// rate, and it keeps the tracked footprint identical to the unpooled path
// instead of inflating it by round-up slack.
//
// A pool is owned by one rank (thread) and is not thread-safe. Activate it
// with PoolScope; TrackedBuffer::resize picks up the scope's pool through a
// thread-local, so the whole CA3DMM call tree (driver, 2-D engines,
// redistribution) becomes pool-backed without signature changes.
#pragma once

#include <map>
#include <vector>

#include "common/partition.hpp"

namespace ca3dmm::simmpi {

/// Reuse statistics of one pool. The counters are monotonic over the pool's
/// lifetime; the gauges track the pool's current and historical footprint —
/// what a serving layer consults to enforce memory budgets (live + idle must
/// stay under budget, high_water_bytes proves it never did not).
struct PoolStats {
  i64 hits = 0;            ///< acquires served from a free list
  i64 misses = 0;          ///< acquires that hit the heap
  i64 bytes_reused = 0;    ///< total bytes served from free lists
  i64 trims = 0;           ///< allocations freed to respect max_idle_bytes

  // --- gauges ---
  i64 live_bytes = 0;       ///< bytes currently checked out of the pool
  i64 idle_bytes = 0;       ///< bytes currently parked on free lists
  /// Maximum of live_bytes + idle_bytes ever reached (the pool's total
  /// memory footprint high-water mark).
  i64 high_water_bytes = 0;

  double hit_rate() const {
    const i64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BufferPool {
 public:
  /// `max_idle_bytes` caps the memory parked on free lists; give_back frees
  /// (instead of pooling) once the cap would be exceeded, largest idle
  /// allocations first.
  explicit BufferPool(i64 max_idle_bytes = 256ll << 20)
      : max_idle_bytes_(max_idle_bytes) {}
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a zeroed allocation of exactly `bytes` bytes (aligned for any
  /// scalar type). The caller must return it via give_back with the same
  /// size.
  void* acquire(i64 bytes);
  void give_back(void* p, i64 bytes);

  /// Frees idle allocations (largest first) until at most
  /// `target_idle_bytes` remain parked. trim() with no argument frees every
  /// idle allocation. This is the reclamation hook a serving layer calls
  /// under memory pressure: live (checked-out) allocations are untouched, so
  /// trimming is always safe mid-stream. Returns the bytes freed.
  i64 trim(i64 target_idle_bytes = 0);

  /// Hard cap on the pool's total footprint (live + idle bytes); 0 = off.
  /// Enforced at the only point the footprint can grow — a fresh heap
  /// allocation on an acquire miss — by evicting idle allocations (largest
  /// first) until the new allocation fits. Live allocations are never
  /// denied, so with a budget set, high_water_bytes <= max(budget, peak
  /// live bytes): a serving layer that admits only requests whose predicted
  /// peak fits the budget gets a provable zero-OOM bound.
  void set_footprint_budget(i64 bytes) { footprint_budget_bytes_ = bytes; }
  i64 footprint_budget() const { return footprint_budget_bytes_; }

  i64 idle_bytes() const { return idle_bytes_; }
  i64 live_bytes() const { return stats_.live_bytes; }
  const PoolStats& stats() const { return stats_; }

 private:
  /// Folds the current footprint into the high-water gauge.
  void note_footprint();

  std::map<i64, std::vector<void*>> free_;  ///< size in bytes -> free list
  i64 idle_bytes_ = 0;
  i64 max_idle_bytes_;
  i64 footprint_budget_bytes_ = 0;
  PoolStats stats_;
};

/// The pool new TrackedBuffers of the calling thread draw from (null when no
/// PoolScope is active).
BufferPool* current_buffer_pool();

namespace detail {
/// Installs `next` as the calling thread's active pool and returns the
/// previous one. The fiber scheduler saves/restores each fiber's pool view
/// around context switches so PoolScope keeps working when fibers share
/// (and migrate between) worker threads.
BufferPool* swap_tls_pool(BufferPool* next);
}  // namespace detail

/// RAII activation of a pool for the calling rank thread; nests (the
/// previous pool is restored on destruction).
class PoolScope {
 public:
  explicit PoolScope(BufferPool* pool);
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  BufferPool* saved_;
};

}  // namespace ca3dmm::simmpi
