// Per-rank buffer pool backing TrackedBuffer allocations.
//
// The persistent PGEMM engine (src/engine) executes many multiplications on
// one long-lived context; without pooling, every call re-allocates the same
// work buffers (initial operand blocks, shift buffers, partial C, packing
// scratch). A BufferPool keeps released allocations on exact-size free lists
// and hands them back on the next request of the same size, so a steady
// stream of same-shape requests performs zero heap allocations after the
// first call.
//
// Accounting contract (Table I semantics): pooled memory is reported to the
// rank's memory tracker only while it is checked out. A TrackedBuffer served
// from the pool tracks exactly the same byte count at exactly the same
// program points as a heap-backed one, and pooled memory is returned zeroed
// (like `new T[n]()`), so peak-memory numbers and computed results are
// bit-identical with and without a pool. Idle pooled bytes are deliberately
// NOT charged: they model a reusable arena owned by the engine, and
// `idle_bytes()` exposes them separately.
//
// Exact size classes (not power-of-two buckets) are intentional: the engine
// serves repeated identical shapes, where exact matching gives a 100% reuse
// rate, and it keeps the tracked footprint identical to the unpooled path
// instead of inflating it by round-up slack.
//
// A pool is owned by one rank (thread) and is not thread-safe. Activate it
// with PoolScope; TrackedBuffer::resize picks up the scope's pool through a
// thread-local, so the whole CA3DMM call tree (driver, 2-D engines,
// redistribution) becomes pool-backed without signature changes.
#pragma once

#include <map>
#include <vector>

#include "common/partition.hpp"

namespace ca3dmm::simmpi {

/// Reuse statistics of one pool (monotonic over the pool's lifetime).
struct PoolStats {
  i64 hits = 0;            ///< acquires served from a free list
  i64 misses = 0;          ///< acquires that hit the heap
  i64 bytes_reused = 0;    ///< total bytes served from free lists
  i64 trims = 0;           ///< allocations freed to respect max_idle_bytes

  double hit_rate() const {
    const i64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BufferPool {
 public:
  /// `max_idle_bytes` caps the memory parked on free lists; give_back frees
  /// (instead of pooling) once the cap would be exceeded, largest idle
  /// allocations first.
  explicit BufferPool(i64 max_idle_bytes = 256ll << 20)
      : max_idle_bytes_(max_idle_bytes) {}
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a zeroed allocation of exactly `bytes` bytes (aligned for any
  /// scalar type). The caller must return it via give_back with the same
  /// size.
  void* acquire(i64 bytes);
  void give_back(void* p, i64 bytes);

  /// Frees every idle allocation.
  void trim();

  i64 idle_bytes() const { return idle_bytes_; }
  const PoolStats& stats() const { return stats_; }

 private:
  std::map<i64, std::vector<void*>> free_;  ///< size in bytes -> free list
  i64 idle_bytes_ = 0;
  i64 max_idle_bytes_;
  PoolStats stats_;
};

/// The pool new TrackedBuffers of the calling thread draw from (null when no
/// PoolScope is active).
BufferPool* current_buffer_pool();

/// RAII activation of a pool for the calling rank thread; nests (the
/// previous pool is restored on destruction).
class PoolScope {
 public:
  explicit PoolScope(BufferPool* pool);
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  BufferPool* saved_;
};

}  // namespace ca3dmm::simmpi
