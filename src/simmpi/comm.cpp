#include "simmpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "simmpi/detail_state.hpp"

namespace ca3dmm::simmpi {

using detail::ChannelKey;
using detail::ClusterAborted;
using detail::coll_op_name;
using detail::CommState;
using detail::SendRec;

namespace {

/// Marks the calling rank blocked for the deadlock watchdog for the lifetime
/// of the scope. Constructed and destroyed with the cluster rendezvous lock
/// held (the condition_variable wait releases it in between, which is
/// exactly the window in which the watchdog may inspect the fields).
class BlockedScope {
 public:
  BlockedScope(int* counter, RankCtx* ctx, const char* op, std::uint64_t comm,
               int peer, int tag)
      : counter_(counter), ctx_(ctx) {
    ctx_->blocked_op = op;
    ctx_->blocked_comm = comm;
    ctx_->blocked_peer = peer;
    ctx_->blocked_tag = tag;
    ++*counter_;
  }
  ~BlockedScope() {
    ctx_->blocked_op = nullptr;
    --*counter_;
  }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  int* counter_;
  RankCtx* ctx_;
};

/// Debug-validation pass over a complete rendezvous: cross-checks every
/// member's arguments before any data movement. Returns an error message, or
/// "" when the collective is consistent. Runs on the last arriver with the
/// rendezvous lock held.
std::string validate_collective(const CommState& st, CommState::Op op) {
  const int p = static_cast<int>(st.members.size());
  const CommState::Slot& s0 = st.slots[0];
  switch (op) {
    case CommState::Op::kBcast:
      if (s0.i0 < 0 || s0.i0 >= p)
        return strprintf("bcast root %d out of range [0,%d)", s0.i0, p);
      for (int j = 1; j < p; ++j) {
        const auto& sj = st.slots[static_cast<size_t>(j)];
        if (sj.i0 != s0.i0)
          return strprintf("bcast root mismatch: rank 0 posted root %d, "
                           "rank %d posted root %d", s0.i0, j, sj.i0);
        if (sj.n0 != s0.n0)
          return strprintf("bcast size mismatch: rank 0 posted %lld bytes, "
                           "rank %d posted %lld",
                           static_cast<long long>(s0.n0), j,
                           static_cast<long long>(sj.n0));
      }
      break;
    case CommState::Op::kAllgather:
      for (int j = 1; j < p; ++j)
        if (st.slots[static_cast<size_t>(j)].n0 != s0.n0)
          return strprintf("allgather size mismatch: rank 0 posted %lld "
                           "bytes, rank %d posted %lld",
                           static_cast<long long>(s0.n0), j,
                           static_cast<long long>(
                               st.slots[static_cast<size_t>(j)].n0));
      break;
    case CommState::Op::kAllgatherv:
    case CommState::Op::kReduceScatter: {
      const char* name = coll_op_name(op);
      for (int j = 0; j < p; ++j) {
        const auto& sj = st.slots[static_cast<size_t>(j)];
        if (sj.v0 == nullptr || static_cast<int>(sj.v0->size()) != p)
          return strprintf("%s: rank %d passed a counts vector of size %d, "
                           "expected %d", name, j,
                           sj.v0 ? static_cast<int>(sj.v0->size()) : 0, p);
        if (*sj.v0 != *s0.v0)
          return strprintf("%s counts mismatch between rank 0 and rank %d",
                           name, j);
        if (op == CommState::Op::kAllgatherv &&
            (*sj.v0)[static_cast<size_t>(j)] != sj.n0)
          return strprintf("allgatherv: rank %d passed my_bytes=%lld but "
                           "counts[%d]=%lld", j,
                           static_cast<long long>(sj.n0), j,
                           static_cast<long long>(
                               (*sj.v0)[static_cast<size_t>(j)]));
        if (op == CommState::Op::kReduceScatter && sj.dt != s0.dt)
          return strprintf("reduce_scatter dtype mismatch between rank 0 and "
                           "rank %d", j);
      }
      break;
    }
    case CommState::Op::kAllreduce:
      for (int j = 1; j < p; ++j) {
        const auto& sj = st.slots[static_cast<size_t>(j)];
        if (sj.n0 != s0.n0)
          return strprintf("allreduce count mismatch: rank 0 posted %lld, "
                           "rank %d posted %lld",
                           static_cast<long long>(s0.n0), j,
                           static_cast<long long>(sj.n0));
        if (sj.dt != s0.dt)
          return strprintf("allreduce dtype mismatch between rank 0 and "
                           "rank %d", j);
      }
      break;
    case CommState::Op::kAlltoallv:
      for (int j = 0; j < p; ++j) {
        const auto& sj = st.slots[static_cast<size_t>(j)];
        for (const std::vector<i64>* v : {sj.v0, sj.v1, sj.v2, sj.v3})
          if (v == nullptr || static_cast<int>(v->size()) != p)
            return strprintf("alltoallv: rank %d passed a counts/displs "
                             "vector of the wrong size", j);
      }
      for (int src = 0; src < p; ++src)
        for (int dst = 0; dst < p; ++dst) {
          const i64 sent = (*st.slots[static_cast<size_t>(src)].v0)
              [static_cast<size_t>(dst)];
          const i64 expected = (*st.slots[static_cast<size_t>(dst)].v2)
              [static_cast<size_t>(src)];
          if (sent != expected)
            return strprintf("alltoallv count mismatch: rank %d sends %lld "
                             "bytes to rank %d, which expects %lld", src,
                             static_cast<long long>(sent), dst,
                             static_cast<long long>(expected));
        }
      break;
    case CommState::Op::kBarrier:
    case CommState::Op::kSplit:
    case CommState::Op::kNone:
      break;
  }
  return "";
}

/// Generic collective rendezvous, in three phases.
///
/// Phase A (rendezvous, under the cluster lock): every member stores its
/// arguments into its slot; the last rank to arrive cross-checks them, runs
/// `perform` (argument validation + cost/inter-byte computation via the
/// schedule selected by st.cfg — **no** bulk data movement), and releases
/// the group. Exit clock for everyone is max(entry clocks) + cost.
///
/// Phase B (data movement, no lock): the bulk memcpy/summation runs outside
/// the lock so other communicators are never blocked behind it. `shard(st,
/// d)` moves the data owned by destination/shard index d, touching only
/// buffers no other shard writes; with cfg kSharded every member executes
/// its own shard in parallel, with kLastArriver the last arriver executes
/// all of them (the seed's serial behaviour). Results are byte-identical
/// either way: the shards partition the same writes and reductions always
/// sum in member order.
///
/// Phase C (completion barrier, under the lock): no member may return — and
/// possibly free its buffers — before every shard finished. The wait is
/// guaranteed finite (all p members passed phase A and shard work cannot
/// block or throw), so it does not register with the deadlock watchdog.
/// `finish` then runs for every rank, under the lock (used by split to
/// fetch its result).
///
/// Failure handling: an in-flight cluster abort unwinds the phase-A wait
/// via ClusterAborted; a mismatched op raises Error on the offending rank
/// (peers unwind through the abort the failure triggers); a consistency-
/// check or perform failure is stored in st.coll_error — tagged with the
/// generation so no cross-rendezvous read is possible — data movement is
/// skipped, and every member raises the same Error.
/// Logical payload bytes one member of a collective contributes / receives
/// (its own block vs. everyone else's blocks — schedule-independent, unlike
/// the bytes a particular algorithm moves). Accounted into RankStats per
/// phase and carried into trace records.
struct CollIo {
  double out = 0;
  double in = 0;
};

template <class Fill, class Perform, class Shard, class Finish>
void run_collective(CommState& st, int me, CommState::Op op, CollIo io,
                    Fill&& fill, Perform&& perform, Shard&& shard,
                    Finish&& finish) {
  RankCtx* ctx = current_ctx();
  CA_ASSERT(ctx != nullptr);
  const int p = static_cast<int>(st.members.size());
  if (p <= 1) io = CollIo{};  // single-member groups move nothing

  bool was_last = false;
  bool movement_ok = false;
  bool sharded = true;
  double exit_time = 0;
  double inter_per_rank = 0;
  CollCost coll_cost;
  double coll_t0 = 0;
  int crit_world = -1;
  std::string err;
  {
    std::unique_lock<std::mutex> lk(st.mu());
    if (st.aborted()) throw ClusterAborted{};
    st.fault_point(ctx);  // deterministic rank-kill injection point
    CommState::Slot& slot = st.slots[static_cast<size_t>(me)];
    slot = CommState::Slot{};
    fill(slot);
    slot.t_entry = ctx->clock;
    if (st.arrived == 0) {
      st.op = op;
    } else if (st.op != op) {
      throw Error(strprintf(
          "mismatched collective on comm %llu: rank %d (world %d) posted %s "
          "while the in-flight operation is %s",
          static_cast<unsigned long long>(st.id), me,
          st.members[static_cast<size_t>(me)], coll_op_name(op),
          coll_op_name(st.op)));
    }
    const std::uint64_t gen = st.generation;
    st.arrived++;
    if (st.arrived == p) {
      was_last = true;
      double t0 = 0;
      int crit = 0;  // last arriver by virtual time; ties -> lowest index
      for (int j = 0; j < p; ++j) {
        const double te = st.slots[static_cast<size_t>(j)].t_entry;
        if (te > t0) {
          t0 = te;
          crit = j;
        }
      }
      CollCost cost;
      std::string e;
      // Straggler reclassification (see StragglerPolicy): compare the last
      // arriver against the latest rank of any *other* node, so a whole
      // slow node cannot mask itself behind a same-node peer. Runs before
      // validation/perform so a degraded node aborts the rendezvous the
      // same way a validation failure would — raised on every member.
      const StragglerPolicy& sp = st.straggler_policy();
      if (sp.enabled && p >= 2) {
        const Topology& topo = st.topology();
        const int crit_world = st.members[static_cast<size_t>(crit)];
        const int crit_node = topo.node_of_rank(crit_world);
        double t_other = -1.0;
        for (int j = 0; j < p; ++j) {
          if (topo.node_of_rank(st.members[static_cast<size_t>(j)]) ==
              crit_node)
            continue;
          t_other =
              std::max(t_other, st.slots[static_cast<size_t>(j)].t_entry);
        }
        if (t_other >= 0 && t0 - t_other >= sp.min_lag_s &&
            t0 > sp.degrade_factor * t_other) {
          st.note_degraded(crit_node);
          e = strprintf(
              "straggler policy: rank %d (node %d) reached the %s on comm "
              "%llu at t=%.9g s while the latest rank of any other node "
              "arrived at t=%.9g s (degrade factor %.3g, min lag %.3g s); "
              "node %d reclassified as degraded",
              crit_world, crit_node, coll_op_name(op),
              static_cast<unsigned long long>(st.id), t0, t_other,
              sp.degrade_factor, sp.min_lag_s, crit_node);
        }
      }
      if (e.empty() && st.validation()) e = validate_collective(st, op);
      if (e.empty()) {
        try {
          cost = perform(st);
        } catch (const Error& ex) {
          e = ex.what();
        }
      }
      st.coll_error = e;
      st.coll_error_gen = gen;
      st.exit_time = t0 + cost.t;
      st.coll_inter = cost.inter_bytes / p;
      st.coll_cost = cost;
      st.coll_t0 = t0;
      st.coll_crit_world = st.members[static_cast<size_t>(crit)];
      st.dm_ok = e.empty();
      st.dm_sharded = st.cfg.data_movement ==
                      CollectiveConfig::DataMovement::kSharded;
      st.dm_remaining = p;
      st.arrived = 0;
      st.op = CommState::Op::kNone;
      st.generation++;
      st.bump_progress();
      st.cv().notify_all();
      st.wake_coll();
    } else {
      BlockedScope bs(st.blocked_counter(), ctx, coll_op_name(op), st.id,
                      st.arrived, -1);
      st.coll_wait(lk, [&] {
        st.note_check(ctx);
        return st.generation != gen || st.aborted();
      });
      if (st.generation == gen) throw ClusterAborted{};
    }
    // Snapshot the completion state before releasing the lock. The fields
    // stay valid until the next rendezvous on this comm (which cannot start
    // before every member checks out of phase C below), but locals keep
    // this code independent of that.
    movement_ok = st.dm_ok;
    sharded = st.dm_sharded;
    exit_time = st.exit_time;
    inter_per_rank = st.coll_inter;
    coll_cost = st.coll_cost;
    coll_t0 = st.coll_t0;
    crit_world = st.coll_crit_world;
    if (st.coll_error_gen == gen && !st.coll_error.empty())
      err = st.coll_error;
  }

  // Phase B: bulk data movement, outside the lock.
  if (movement_ok) {
    if (sharded)
      shard(st, me);
    else if (was_last)
      for (int d = 0; d < p; ++d) shard(st, d);
  }

  // Phase C: completion barrier.
  {
    std::unique_lock<std::mutex> lk(st.mu());
    if (--st.dm_remaining == 0) {
      st.bump_progress();
      st.cv().notify_all();
      st.wake_coll();
    } else {
      st.coll_wait(lk, [&] {
        st.note_check(ctx);
        return st.dm_remaining == 0;
      });
    }
    if (err.empty()) finish(st);
  }

  if (!err.empty()) throw Error(err);
  const double delta = exit_time - ctx->clock;
  CA_ASSERT(delta >= -1e-12);
  const double adv = std::max(0.0, delta);
  ctx->last_op_cost = adv;
  if (ctx->trace_enabled) {
    TraceRecord r;
    r.kind = TraceKind::kCollective;
    r.phase = ctx->cur_phase;
    r.t0 = ctx->clock;
    r.t1 = ctx->clock + adv;
    r.name = coll_op_name(op);
    r.algo = coll_cost.algo;
    r.bytes_out = io.out;
    r.bytes_in = io.in;
    r.inter_bytes = inter_per_rank;
    r.comm_id = st.id;
    r.comm_size = p;
    if (crit_world != ctx->world_rank) {
      r.dep_rank = crit_world;
      r.t_dep = coll_t0;
    }
    ctx->trace.push_back(r);
  }
  ctx->charge(adv);
  const int ph = static_cast<int>(ctx->cur_phase);
  ctx->stats.inter_bytes_s[ph] += inter_per_rank;
  ctx->stats.bytes_sent_s[ph] += io.out;
  ctx->stats.bytes_recvd_s[ph] += io.in;
}

struct NoFinish {
  void operator()(CommState&) const {}
};

struct NoShard {
  void operator()(CommState&, int) const {}
};

/// Resolves the schedule a collective call uses from the communicator's
/// configuration. Runs under the rendezvous lock on the last arriver.
CollAlgo pick_algo(const CommState& st, CollAlgo configured, double bytes) {
  return resolve_coll_algo(configured, st.prof, bytes,
                           st.cfg.small_message_bytes);
}

/// Element-wise sum of `n` elements from `src` into `dst`.
void reduce_sum_into(void* dst, const void* src, i64 n, Dtype d) {
  if (d == Dtype::kF64) {
    double* a = static_cast<double*>(dst);
    const double* b = static_cast<const double*>(src);
    for (i64 i = 0; i < n; ++i) a[i] += b[i];
  } else {
    float* a = static_cast<float*>(dst);
    const float* b = static_cast<const float*>(src);
    for (i64 i = 0; i < n; ++i) a[i] += b[i];
  }
}

}  // namespace

int Comm::rank() const { return my_index_; }

std::uint64_t Comm::id() const { return state_ ? state_->id : 0; }

int Comm::size() const {
  return static_cast<int>(state_->members.size());
}

int Comm::world_rank_of(int r) const {
  CA_ASSERT(r >= 0 && r < size());
  return state_->members[static_cast<size_t>(r)];
}

bool Comm::same_node(int other) const {
  const Topology& t = state_->topology();
  return t.node_of_rank(world_rank()) == t.node_of_rank(world_rank_of(other));
}

const Machine& Comm::machine() const { return state_->cluster->machine_; }

const Machine& Comm::my_machine() const {
  if (RankCtx* ctx = current_ctx(); ctx != nullptr && ctx->machine != nullptr)
    return *ctx->machine;
  return machine();
}

const Topology& Comm::topology() const { return state_->topology(); }

Cluster* Comm::cluster() const { return state_ ? state_->cluster : nullptr; }

const GroupProfile& Comm::profile() const { return state_->prof; }

double Comm::now() const { return current_ctx()->clock; }

double Comm::last_op_cost() const { return current_ctx()->last_op_cost; }

void Comm::set_phase(Phase p) { current_ctx()->cur_phase = p; }

Phase Comm::phase() const { return current_ctx()->cur_phase; }

namespace {

/// Trace one local-GEMM clock advance [t0, t0 + adv] on `ctx`.
void trace_compute(RankCtx* ctx, double adv, double flops) {
  if (!ctx->trace_enabled) return;
  TraceRecord r;
  r.kind = TraceKind::kCompute;
  r.phase = Phase::kCompute;
  r.t0 = ctx->clock;
  r.t1 = ctx->clock + adv;
  r.name = "gemm";
  r.flops = flops;
  ctx->trace.push_back(r);
}

}  // namespace

void Comm::charge_compute(double flops, double bytes) {
  RankCtx* ctx = current_ctx();
  const double t = my_machine().gemm_time(flops, bytes) * ctx->slowdown;
  ctx->stats.flops += flops;
  ctx->stats.phase_s[static_cast<int>(Phase::kCompute)] += t;
  trace_compute(ctx, t, flops);
  ctx->clock += t;
}

void Comm::charge_overlapped_compute(double flops, double bytes) {
  charge_compute_overlap_budget(flops, bytes, current_ctx()->last_op_cost);
}

void Comm::charge_compute_overlap_budget(double flops, double bytes,
                                         double budget) {
  RankCtx* ctx = current_ctx();
  // The paper's GPU implementation is a prototype that "simply offloads
  // local matrix multiplications" (§IV-C) — no communication/computation
  // pipelining on the device path. On CPU, only a fraction of the in-flight
  // communication actually hides behind the GEMM.
  const Machine& mach = my_machine();
  budget = mach.use_gpu ? 0.0 : budget * mach.overlap_efficiency;
  const double t = mach.gemm_time(flops, bytes) * ctx->slowdown;
  ctx->stats.flops += flops;
  // The full GEMM time is reported in the compute phase; the clock only
  // advances by the part that does not hide behind the in-flight
  // communication (dual-buffer overlap).
  ctx->stats.phase_s[static_cast<int>(Phase::kCompute)] += t;
  const double adv = std::max(0.0, t - budget);
  trace_compute(ctx, adv, flops);
  ctx->clock += adv;
}

void Comm::charge_local_work(double bytes) {
  if (bytes <= 0) return;
  RankCtx* ctx = current_ctx();
  const double t =
      bytes / my_machine().intra_rank_bandwidth() * ctx->slowdown;
  if (ctx->trace_enabled) {
    TraceRecord r;
    r.kind = TraceKind::kCompute;
    r.phase = ctx->cur_phase;
    r.t0 = ctx->clock;
    r.t1 = ctx->clock + t;
    r.name = "local-scan";
    ctx->trace.push_back(r);
  }
  ctx->charge(t);
}

// ---------------- collectives ----------------

void Comm::set_collective_config(const CollectiveConfig& cfg) {
  std::lock_guard<std::mutex> lk(state_->mu());
  state_->cfg = cfg;
}

CollectiveConfig Comm::collective_config() const {
  std::lock_guard<std::mutex> lk(state_->mu());
  return state_->cfg;
}

void Comm::barrier() {
  run_collective(
      *state_, my_index_, CommState::Op::kBarrier, CollIo{},
      [](CommState::Slot&) {},
      [](CommState& st) {
        CollCost c;
        c.t = st.link.alpha * log2d(static_cast<int>(st.members.size()));
        return c;
      },
      NoShard{}, NoFinish{});
}

void Comm::bcast_bytes(void* buf, i64 bytes, int root) {
  CA_REQUIRE(root >= 0 && root < size(), "bcast root %d out of range [0,%d)",
             root, size());
  CA_REQUIRE(bytes >= 0, "bcast of negative size %lld",
             static_cast<long long>(bytes));
  CollIo io;
  if (my_index_ == root)
    io.out = static_cast<double>(bytes);
  else
    io.in = static_cast<double>(bytes);
  run_collective(
      *state_, my_index_, CommState::Op::kBcast, io,
      [&](CommState::Slot& s) {
        s.rbuf = buf;
        s.n0 = bytes;
        s.i0 = root;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        // Validate every member's arguments before any data movement runs
        // so a posting error never corrupts peer buffers.
        for (int j = 0; j < p; ++j) {
          const auto& sj = st.slots[static_cast<size_t>(j)];
          CA_REQUIRE(sj.i0 == root, "bcast root mismatch on comm %llu",
                     static_cast<unsigned long long>(st.id));
          CA_REQUIRE(sj.n0 == bytes, "bcast size mismatch on comm %llu",
                     static_cast<unsigned long long>(st.id));
        }
        return coll_bcast_cost(
            st.cluster->machine_, st.prof, st.link,
            pick_algo(st, st.cfg.bcast, static_cast<double>(bytes)),
            static_cast<double>(bytes), p);
      },
      // Each shard copies the root's buffer into one destination; the root
      // buffer itself is only read.
      [&](CommState& st, int d) {
        if (d == root || bytes <= 0) return;
        std::memcpy(st.slots[static_cast<size_t>(d)].rbuf,
                    st.slots[static_cast<size_t>(root)].rbuf,
                    static_cast<size_t>(bytes));
      },
      NoFinish{});
}

void Comm::allgather_bytes(const void* sbuf, i64 bytes_each, void* rbuf) {
  CA_REQUIRE(bytes_each >= 0, "allgather of negative size %lld",
             static_cast<long long>(bytes_each));
  run_collective(
      *state_, my_index_, CommState::Op::kAllgather,
      CollIo{static_cast<double>(bytes_each),
             static_cast<double>(bytes_each) * (size() - 1)},
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.n0 = bytes_each;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        for (int j = 0; j < p; ++j)
          CA_REQUIRE(st.slots[static_cast<size_t>(j)].n0 == bytes_each,
                     "allgather size mismatch on comm %llu",
                     static_cast<unsigned long long>(st.id));
        const double total = static_cast<double>(bytes_each) * p;
        return coll_allgather_cost(st.cluster->machine_, st.prof, st.link,
                                   pick_algo(st, st.cfg.allgather, total),
                                   total, p);
      },
      // Shard d assembles destination d's result buffer from every member's
      // contribution; no other shard writes it.
      [&](CommState& st, int d) {
        if (bytes_each <= 0) return;
        const int p = static_cast<int>(st.members.size());
        auto& sd = st.slots[static_cast<size_t>(d)];
        for (int j = 0; j < p; ++j)
          std::memcpy(static_cast<char*>(sd.rbuf) + j * bytes_each,
                      st.slots[static_cast<size_t>(j)].sbuf,
                      static_cast<size_t>(bytes_each));
      },
      NoFinish{});
}

void Comm::allgatherv_bytes(const void* sbuf, i64 my_bytes, void* rbuf,
                            const std::vector<i64>& counts) {
  CA_REQUIRE(static_cast<int>(counts.size()) == size(),
             "allgatherv counts vector has %d entries, comm has %d ranks",
             static_cast<int>(counts.size()), size());
  CA_REQUIRE(counts[static_cast<size_t>(my_index_)] == my_bytes,
             "allgatherv: my_bytes=%lld but counts[%d]=%lld",
             static_cast<long long>(my_bytes), my_index_,
             static_cast<long long>(counts[static_cast<size_t>(my_index_)]));
  CollIo io;
  io.out = static_cast<double>(my_bytes);
  for (i64 c : counts) io.in += static_cast<double>(c);
  io.in -= static_cast<double>(my_bytes);
  run_collective(
      *state_, my_index_, CommState::Op::kAllgatherv, io,
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.n0 = my_bytes;
        s.v0 = &counts;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        i64 total = 0;
        for (int j = 0; j < p; ++j) total += counts[static_cast<size_t>(j)];
        return coll_allgather_cost(
            st.cluster->machine_, st.prof, st.link,
            pick_algo(st, st.cfg.allgather, static_cast<double>(total)),
            static_cast<double>(total), p);
      },
      // Shard d assembles destination d's result buffer. The counts vector
      // is identical on every member (MPI contract), so capturing this
      // rank's copy is valid for any destination.
      [&](CommState& st, int d) {
        const int p = static_cast<int>(st.members.size());
        auto& sd = st.slots[static_cast<size_t>(d)];
        i64 off = 0;
        for (int j = 0; j < p; ++j) {
          const i64 nj = counts[static_cast<size_t>(j)];
          if (nj > 0)
            std::memcpy(static_cast<char*>(sd.rbuf) + off,
                        st.slots[static_cast<size_t>(j)].sbuf,
                        static_cast<size_t>(nj));
          off += nj;
        }
      },
      NoFinish{});
}

void Comm::reduce_scatter_sum(const void* sbuf, void* rbuf,
                              const std::vector<i64>& counts, Dtype dtype,
                              bool custom_tree) {
  CA_REQUIRE(static_cast<int>(counts.size()) == size(),
             "reduce_scatter counts vector has %d entries, comm has %d ranks",
             static_cast<int>(counts.size()), size());
  CollIo io;
  {
    const double esize = static_cast<double>(dtype_size(dtype));
    for (i64 c : counts) io.out += static_cast<double>(c) * esize;
    io.in = static_cast<double>(counts[static_cast<size_t>(my_index_)]) * esize;
    io.out -= io.in;  // own segment never leaves this rank
  }
  run_collective(
      *state_, my_index_, CommState::Op::kReduceScatter, io,
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.v0 = &counts;
        s.dt = dtype;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        const i64 esize = dtype_size(dtype);
        i64 total = 0;
        for (i64 c : counts) total += c;
        const double bytes = static_cast<double>(total * esize);
        return coll_reduce_scatter_cost(
            st.cluster->machine_, st.prof, st.link,
            pick_algo(st, st.cfg.reduce_scatter, bytes), bytes, p,
            custom_tree);
      },
      // Shard d reduces segment d into destination d's buffer, always
      // accumulating in member order (0, 1, ..., p-1) so the result is
      // byte-identical no matter which thread runs the shard.
      [&](CommState& st, int d) {
        const int p = static_cast<int>(st.members.size());
        const i64 esize = dtype_size(dtype);
        const i64 nd = counts[static_cast<size_t>(d)];
        if (nd <= 0) return;
        i64 off = 0;  // element offset of destination segment
        for (int j = 0; j < d; ++j) off += counts[static_cast<size_t>(j)];
        auto& sd = st.slots[static_cast<size_t>(d)];
        std::memcpy(sd.rbuf,
                    static_cast<const char*>(st.slots[0].sbuf) + off * esize,
                    static_cast<size_t>(nd * esize));
        for (int j = 1; j < p; ++j)
          reduce_sum_into(sd.rbuf,
                          static_cast<const char*>(
                              st.slots[static_cast<size_t>(j)].sbuf) +
                              off * esize,
                          nd, dtype);
      },
      NoFinish{});
}

void Comm::allreduce_sum(const void* sbuf, void* rbuf, i64 count, Dtype dtype) {
  CA_REQUIRE(count >= 0, "allreduce of negative count %lld",
             static_cast<long long>(count));
  const double ar_bytes =
      static_cast<double>(count) * static_cast<double>(dtype_size(dtype));
  run_collective(
      *state_, my_index_, CommState::Op::kAllreduce,
      CollIo{ar_bytes, ar_bytes},
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.n0 = count;
        s.dt = dtype;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        const i64 esize = dtype_size(dtype);
        for (int j = 0; j < p; ++j)
          CA_REQUIRE(st.slots[static_cast<size_t>(j)].n0 == count,
                     "allreduce count mismatch on comm %llu",
                     static_cast<unsigned long long>(st.id));
        const double bytes = static_cast<double>(count * esize);
        return coll_allreduce_cost(st.cluster->machine_, st.prof, st.link,
                                   pick_algo(st, st.cfg.allreduce, bytes),
                                   bytes, p);
      },
      // Allreduce shards by element range, not by destination: shard d sums
      // elements [d*count/p, (d+1)*count/p) over every member (in member
      // order, into member 0's buffer, exactly like the serial path) and
      // fans the result out to all destinations. Total work stays equal to
      // the serial path's, and the ranges are disjoint so no two shards
      // touch the same elements of any buffer.
      [&](CommState& st, int d) {
        if (count <= 0) return;
        const int p = static_cast<int>(st.members.size());
        const i64 esize = dtype_size(dtype);
        const i64 lo = count * d / p;
        const i64 hi = count * (d + 1) / p;
        const i64 n = hi - lo;
        if (n <= 0) return;
        auto& s0 = st.slots[0];
        char* acc = static_cast<char*>(s0.rbuf) + lo * esize;
        std::memcpy(acc, static_cast<const char*>(s0.sbuf) + lo * esize,
                    static_cast<size_t>(n * esize));
        for (int j = 1; j < p; ++j)
          reduce_sum_into(acc,
                          static_cast<const char*>(
                              st.slots[static_cast<size_t>(j)].sbuf) +
                              lo * esize,
                          n, dtype);
        for (int j = 1; j < p; ++j)
          std::memcpy(static_cast<char*>(
                          st.slots[static_cast<size_t>(j)].rbuf) +
                          lo * esize,
                      acc, static_cast<size_t>(n * esize));
      },
      NoFinish{});
}

void Comm::alltoallv_bytes(const void* sbuf, const std::vector<i64>& scounts,
                           const std::vector<i64>& sdispls, void* rbuf,
                           const std::vector<i64>& rcounts,
                           const std::vector<i64>& rdispls) {
  const int p = size();
  CA_REQUIRE(static_cast<int>(scounts.size()) == p &&
                 static_cast<int>(sdispls.size()) == p &&
                 static_cast<int>(rcounts.size()) == p &&
                 static_cast<int>(rdispls.size()) == p,
             "alltoallv counts/displs vectors must have %d entries", p);
  CollIo io;
  for (int j = 0; j < p; ++j) {
    if (j == my_index_) continue;  // self-copies are not network traffic
    io.out += static_cast<double>(scounts[static_cast<size_t>(j)]);
    io.in += static_cast<double>(rcounts[static_cast<size_t>(j)]);
  }
  run_collective(
      *state_, my_index_, CommState::Op::kAlltoallv, io,
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.v0 = &scounts;
        s.v1 = &sdispls;
        s.v2 = &rcounts;
        s.v3 = &rdispls;
      },
      [&](CommState& st) {
        // Cross-check the full exchange matrix before any data movement so
        // a count mismatch never corrupts peer buffers.
        for (int src = 0; src < p; ++src) {
          const auto& ss = st.slots[static_cast<size_t>(src)];
          for (int dst = 0; dst < p; ++dst) {
            const auto& sd = st.slots[static_cast<size_t>(dst)];
            CA_REQUIRE((*ss.v0)[static_cast<size_t>(dst)] ==
                           (*sd.v2)[static_cast<size_t>(src)],
                       "alltoallv count mismatch %d->%d", src, dst);
          }
        }
        double max_bytes = 0;
        double off_self = 0;  // aggregate bytes that leave their source rank
        for (int src = 0; src < p; ++src) {
          const auto& ss = st.slots[static_cast<size_t>(src)];
          i64 sent = 0, recvd = 0;
          for (int dst = 0; dst < p; ++dst) {
            if (dst != src) {  // self-copies are not network traffic
              sent += (*ss.v0)[static_cast<size_t>(dst)];
              recvd += (*ss.v2)[static_cast<size_t>(dst)];
            }
          }
          off_self += static_cast<double>(sent);
          max_bytes = std::max(max_bytes,
                               static_cast<double>(std::max(sent, recvd)));
        }
        CollCost c;
        c.t = t_alltoallv_machine(st.cluster->machine_, st.link, max_bytes,
                                  p, st.prof.single_node);
        c.inter_bytes = off_self * group_inter_frac(st.prof);
        return c;
      },
      // Shard d fills destination d's receive buffer from every source.
      [&](CommState& st, int d) {
        auto& sd = st.slots[static_cast<size_t>(d)];
        for (int src = 0; src < p; ++src) {
          const auto& ss = st.slots[static_cast<size_t>(src)];
          const i64 n = (*ss.v0)[static_cast<size_t>(d)];
          if (n > 0)
            std::memcpy(static_cast<char*>(sd.rbuf) +
                            (*sd.v3)[static_cast<size_t>(src)],
                        static_cast<const char*>(ss.sbuf) +
                            (*ss.v1)[static_cast<size_t>(d)],
                        static_cast<size_t>(n));
        }
      },
      NoFinish{});
}

Comm Comm::split(int color, int key) const {
  std::pair<std::shared_ptr<CommState>, int> result{nullptr, -1};
  run_collective(
      *state_, my_index_, CommState::Op::kSplit, CollIo{},
      [&](CommState::Slot& s) {
        s.i0 = color;
        s.i1 = key;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        st.split_out.assign(static_cast<size_t>(p), {nullptr, -1});
        // Collect colors in ascending order; negative color = undefined.
        std::map<int, std::vector<int>> groups;  // color -> member indices
        for (int j = 0; j < p; ++j)
          if (st.slots[static_cast<size_t>(j)].i0 >= 0)
            groups[st.slots[static_cast<size_t>(j)].i0].push_back(j);
        for (auto& [c, idxs] : groups) {
          std::stable_sort(idxs.begin(), idxs.end(), [&](int a, int b) {
            return st.slots[static_cast<size_t>(a)].i1 <
                   st.slots[static_cast<size_t>(b)].i1;
          });
          std::vector<int> members;
          members.reserve(idxs.size());
          for (int j : idxs)
            members.push_back(st.members[static_cast<size_t>(j)]);
          auto ns = CommState::create(st.cluster, std::move(members));
          ns->cfg = st.cfg;  // children inherit the parent's configuration
          for (size_t i = 0; i < idxs.size(); ++i)
            st.split_out[static_cast<size_t>(idxs[i])] = {ns,
                                                          static_cast<int>(i)};
        }
        // Modelled as an allgather of one small word per rank; always the
        // butterfly schedule (setup metadata, never worth tuning).
        return coll_allgather_cost(st.cluster->machine_, st.prof, st.link,
                                   CollAlgo::kPaperButterfly, 8.0 * p, p);
      },
      NoShard{},
      [&](CommState& st) {
        result = st.split_out[static_cast<size_t>(my_index_)];
      });
  if (RankCtx* ctx = current_ctx()) ctx->stats.comm_splits++;
  if (!result.first) return Comm();
  return Comm(std::move(result.first), result.second);
}

// ---------------- point-to-point ----------------

bool Cluster::try_deliver_posted_locked(const detail::ChannelKey& key,
                                        const void* buf, i64 bytes,
                                        double t_entry,
                                        detail::SendRec* sender_rec) {
  auto it = posted_recvs_.find(key);
  if (it == posted_recvs_.end()) return false;
  // FIFO: a queued message (e.g. an earlier eager fallback on this channel)
  // must be matched before this one may jump the queue.
  auto ch = channels_.find(key);
  if (ch != channels_.end() && !ch->second.empty()) return false;
  detail::RecvRec* rec = it->second;
  // Size mismatch: fall back to the eager queue so the *receiver* raises
  // the posting error — attribution identical to the staged path.
  if (rec->bytes != bytes) return false;
  posted_recvs_.erase(it);
  if (bytes > 0) std::memcpy(rec->buf, buf, static_cast<size_t>(bytes));
  maybe_flip_payload_locked(key, rec->buf, bytes);
  // The receiver's exit time, computed exactly as its staged path would:
  // its own slowdown, max of the two entry clocks plus the p2p cost.
  const double t =
      t_p2p_ranks(topo_, key.src, key.dst, static_cast<double>(bytes)) *
      rec->slowdown;
  rec->t_exit = std::max(rec->t_entry, t_entry) + t;
  rec->sender_entry = t_entry;
  rec->filled = true;
  // The receiver is parked on this channel (it only posts while blocked),
  // so touching its stats under mu_ cannot race with its own writes.
  ctx_[static_cast<size_t>(key.dst)].stats.p2p_zero_copy++;
  if (sender_rec != nullptr) {
    sender_rec->consumed = true;
    sender_rec->t_exit = rec->t_exit;
    sender_rec->t_consumer_entry = rec->t_entry;
  }
  progress_gen_++;
  cv_.notify_all();
  wake_key_locked(detail::WaitKey::chan(key));
  return true;
}

void Comm::send_bytes(const void* buf, i64 bytes, int dst, int tag) {
  CA_REQUIRE(bytes >= 0, "send of negative size %lld",
             static_cast<long long>(bytes));
  CA_REQUIRE(dst >= 0 && dst < size(),
             "send destination %d out of range [0,%d)", dst, size());
  Cluster* cl = state_->cluster;
  RankCtx* ctx = current_ctx();
  cl->fault_point(ctx);
  const double entry = ctx->clock;
  const int dst_w = world_rank_of(dst);
  const ChannelKey key{state_->id, world_rank(), dst_w, tag};
  {
    std::unique_lock<std::mutex> lk(cl->mu_);
    cl->check_abort_locked();
    // Zero-copy fast path: a matching recv is already posted, so deliver
    // straight into its destination buffer — no eager staging copy. Falls
    // back to the eager queue when nothing is posted, the channel has
    // queued messages (FIFO), or sizes mismatch (the receiver must raise
    // that error).
    if (!cl->try_deliver_posted_locked(key, buf, bytes, entry, nullptr)) {
      auto rec = std::make_unique<SendRec>();
      rec->bytes = bytes;
      rec->t_entry = entry;
      rec->eager = true;
      if (bytes > 0) {
        rec->owned = std::make_unique<char[]>(static_cast<size_t>(bytes));
        std::memcpy(rec->owned.get(), buf, static_cast<size_t>(bytes));
        rec->buf = rec->owned.get();
      }
      cl->channels_[key].push_back(rec.release());  // receiver deletes
      cl->progress_gen_++;
      cl->cv_.notify_all();
      cl->wake_key_locked(detail::WaitKey::chan(key));
    }
  }
  const double t = t_p2p_ranks(state_->topology(), world_rank(), dst_w,
                               static_cast<double>(bytes)) *
                   ctx->slowdown;
  ctx->last_op_cost = t;
  if (ctx->trace_enabled) {
    TraceRecord r;
    r.kind = TraceKind::kP2pSend;
    r.phase = ctx->cur_phase;
    r.t0 = entry;
    r.t1 = entry + t;
    r.name = "send";
    r.bytes_out = static_cast<double>(bytes);
    r.peer = dst_w;
    r.tag = tag;
    r.comm_id = state_->id;
    ctx->trace.push_back(r);
  }
  ctx->charge(t);
  ctx->stats.bytes_sent_s[static_cast<int>(ctx->cur_phase)] +=
      static_cast<double>(bytes);
}

void Comm::recv_bytes(void* buf, i64 bytes, int src, int tag) {
  CA_REQUIRE(bytes >= 0, "recv of negative size %lld",
             static_cast<long long>(bytes));
  CA_REQUIRE(src >= 0 && src < size(), "recv source %d out of range [0,%d)",
             src, size());
  state_->cluster->fault_point(current_ctx());
  recv_impl(buf, bytes, src, tag);
}

void Comm::recv_impl(void* buf, i64 bytes, int src, int tag) {
  Cluster* cl = state_->cluster;
  RankCtx* ctx = current_ctx();
  const double entry = ctx->clock;
  const ChannelKey key{state_->id, world_rank_of(src), world_rank(), tag};
  double exit = 0;
  double sender_entry = 0;
  {
    std::unique_lock<std::mutex> lk(cl->mu_);
    SendRec* rec = nullptr;
    // Posted-receive record for the zero-copy fast path: registered (on
    // this stack frame) once the wait finds the channel empty, so a later
    // sender can deliver straight into `buf` instead of staging an eager
    // copy. Unregistered on every exit path of the wait.
    detail::RecvRec posted;
    posted.buf = buf;
    posted.bytes = bytes;
    posted.t_entry = entry;
    posted.slowdown = ctx->slowdown;
    bool registered = false;
    {
      BlockedScope bs(&cl->blocked_count_, ctx, "recv", state_->id, src, tag);
      cl->rank_wait(lk, detail::WaitKey::chan(key), [&] {
        ctx->checked_gen = cl->progress_gen_;
        // A delivered zero-copy recv completes even when an abort raced in:
        // the payload is already in place and the exit time computed.
        if (posted.filled) return true;
        if (cl->abort_requested_) return true;
        auto it = cl->channels_.find(key);
        if (it != cl->channels_.end() && !it->second.empty()) {
          rec = it->second.front();
          return true;
        }
        if (!registered) {
          cl->posted_recvs_[key] = &posted;
          registered = true;
        }
        return false;
      });
    }
    if (registered && !posted.filled) {
      auto it = cl->posted_recvs_.find(key);
      if (it != cl->posted_recvs_.end() && it->second == &posted)
        cl->posted_recvs_.erase(it);
    }
    if (posted.filled) {
      // The sender already copied the payload, applied any fault-plan flip,
      // and computed this receiver's exit time with its slowdown — the
      // clock arithmetic below is shared with the staged path.
      exit = posted.t_exit;
      sender_entry = posted.sender_entry;
    } else if (rec == nullptr) {
      throw detail::ClusterAborted{};
    } else {
      // A size mismatch is a user-facing posting error: leave the record in
      // the channel (the sender's cleanup owns it) and let the Error flow
      // through the cooperative-abort path.
      CA_REQUIRE(rec->bytes == bytes,
                 "recv size mismatch on comm %llu (world %d -> %d, tag %d): "
                 "receiver posted %lld bytes, sender sent %lld",
                 static_cast<unsigned long long>(state_->id), key.src, key.dst,
                 tag, static_cast<long long>(bytes),
                 static_cast<long long>(rec->bytes));
      cl->channels_[key].pop_front();
      if (bytes > 0) std::memmove(buf, rec->buf, static_cast<size_t>(bytes));
      cl->maybe_flip_payload_locked(key, buf, bytes);
      const double t = t_p2p_ranks(state_->topology(), key.src, key.dst,
                                   static_cast<double>(bytes)) *
                       ctx->slowdown;
      exit = std::max(entry, rec->t_entry) + t;
      sender_entry = rec->t_entry;
      if (rec->eager) {
        delete rec;
      } else {
        rec->t_exit = exit;
        rec->t_consumer_entry = entry;
        rec->consumed = true;
        cl->progress_gen_++;
        cl->cv_.notify_all();
        cl->wake_key_locked(detail::WaitKey::chan(key));
      }
    }
  }
  ctx->last_op_cost = exit - entry;
  if (ctx->trace_enabled) {
    TraceRecord r;
    r.kind = TraceKind::kP2pRecv;
    r.phase = ctx->cur_phase;
    r.t0 = entry;
    r.t1 = exit;
    r.name = "recv";
    r.bytes_in = static_cast<double>(bytes);
    r.peer = key.src;
    r.tag = tag;
    r.comm_id = state_->id;
    if (sender_entry > entry) {  // the sender's arrival bounded this recv
      r.dep_rank = key.src;
      r.t_dep = sender_entry;
    }
    ctx->trace.push_back(r);
  }
  ctx->charge(exit - ctx->clock);
  ctx->stats.bytes_recvd_s[static_cast<int>(ctx->cur_phase)] +=
      static_cast<double>(bytes);
}

void Comm::sendrecv_bytes(const void* sbuf, i64 sbytes, int dst, void* rbuf,
                          i64 rbytes, int src, int tag) {
  CA_REQUIRE(sbytes >= 0 && rbytes >= 0, "sendrecv of negative size");
  CA_REQUIRE(dst >= 0 && dst < size() && src >= 0 && src < size(),
             "sendrecv peer out of range [0,%d)", size());
  Cluster* cl = state_->cluster;
  RankCtx* ctx = current_ctx();
  cl->fault_point(ctx);
  const double entry = ctx->clock;
  SendRec rec;
  rec.buf = sbuf;
  rec.bytes = sbytes;
  rec.t_entry = entry;
  const ChannelKey skey{state_->id, world_rank(), world_rank_of(dst), tag};
  {
    std::unique_lock<std::mutex> lk(cl->mu_);
    cl->check_abort_locked();
    // Zero-copy fast path: the peer's recv is already posted, so deliver in
    // place — rec's completion fields are filled as if the peer consumed
    // the queued record, and the wait below returns immediately.
    if (!cl->try_deliver_posted_locked(skey, sbuf, sbytes, entry, &rec)) {
      cl->channels_[skey].push_back(&rec);
      cl->progress_gen_++;
      cl->cv_.notify_all();
      cl->wake_key_locked(detail::WaitKey::chan(skey));
    }
  }
  try {
    recv_impl(rbuf, rbytes, src, tag);
    std::unique_lock<std::mutex> lk(cl->mu_);
    {
      BlockedScope bs(&cl->blocked_count_, ctx, "sendrecv-wait", state_->id,
                      dst, tag);
      cl->rank_wait(lk, detail::WaitKey::chan(skey), [&] {
        ctx->checked_gen = cl->progress_gen_;
        return rec.consumed || cl->abort_requested_;
      });
    }
    if (!rec.consumed) throw detail::ClusterAborted{};
  } catch (...) {
    // The zero-copy send record points into this stack frame: unregister it
    // before unwinding so no peer can touch a dangling pointer.
    std::lock_guard<std::mutex> lk(cl->mu_);
    auto it = cl->channels_.find(skey);
    if (it != cl->channels_.end()) {
      auto pos = std::find(it->second.begin(), it->second.end(), &rec);
      if (pos != it->second.end()) it->second.erase(pos);
    }
    throw;
  }
  if (rec.t_exit > ctx->clock) {
    if (ctx->trace_enabled) {
      // The recv half is already on the timeline; this extra interval is
      // the wait for the peer to consume our (zero-copy) send.
      TraceRecord r;
      r.kind = TraceKind::kP2pWait;
      r.phase = ctx->cur_phase;
      r.t0 = ctx->clock;
      r.t1 = rec.t_exit;
      r.name = "sendrecv-wait";
      r.bytes_out = static_cast<double>(sbytes);
      r.peer = world_rank_of(dst);
      r.tag = tag;
      r.comm_id = state_->id;
      r.dep_rank = world_rank_of(dst);
      r.t_dep = rec.t_consumer_entry;
      ctx->trace.push_back(r);
    }
    ctx->charge(rec.t_exit - ctx->clock);
  }
  ctx->stats.bytes_sent_s[static_cast<int>(ctx->cur_phase)] +=
      static_cast<double>(sbytes);
  ctx->last_op_cost = ctx->clock - entry;
}

}  // namespace ca3dmm::simmpi
