#include "simmpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "simmpi/detail_state.hpp"

namespace ca3dmm::simmpi {

using detail::ChannelKey;
using detail::CommState;
using detail::SendRec;

namespace {

/// Generic collective rendezvous. Every member stores its arguments into its
/// slot; the last rank to arrive performs the data movement (all buffers are
/// reachable in the shared address space), computes the virtual cost with
/// `perform`, and releases the group. Exit clock for everyone is
/// max(entry clocks) + cost. `finish` runs for every rank, under the lock,
/// after completion (used by split to fetch its result).
template <class Fill, class Perform, class Finish>
void run_collective(CommState& st, int me, CommState::Op op, Fill&& fill,
                    Perform&& perform, Finish&& finish) {
  RankCtx* ctx = current_ctx();
  CA_ASSERT(ctx != nullptr);
  const int p = static_cast<int>(st.members.size());

  std::unique_lock<std::mutex> lk(st.mu());
  CommState::Slot& slot = st.slots[static_cast<size_t>(me)];
  slot = CommState::Slot{};
  fill(slot);
  slot.t_entry = ctx->clock;
  if (st.arrived == 0)
    st.op = op;
  else
    CA_ASSERT_MSG(st.op == op, "mismatched collective on comm %llu",
                  static_cast<unsigned long long>(st.id));
  const std::uint64_t gen = st.generation;
  st.arrived++;
  if (st.arrived == p) {
    double t0 = 0;
    for (const auto& s : st.slots) t0 = std::max(t0, s.t_entry);
    const double cost = perform(st);
    st.exit_time = t0 + cost;
    st.arrived = 0;
    st.op = CommState::Op::kNone;
    st.generation++;
    st.cv().notify_all();
  } else {
    st.cv().wait(lk, [&] { return st.generation != gen; });
  }
  const double delta = st.exit_time - ctx->clock;
  CA_ASSERT(delta >= -1e-12);
  ctx->last_op_cost = std::max(0.0, delta);
  ctx->charge(std::max(0.0, delta));
  finish(st);
}

struct NoFinish {
  void operator()(CommState&) const {}
};

/// Element-wise sum of `n` elements from `src` into `dst`.
void reduce_sum_into(void* dst, const void* src, i64 n, Dtype d) {
  if (d == Dtype::kF64) {
    double* a = static_cast<double*>(dst);
    const double* b = static_cast<const double*>(src);
    for (i64 i = 0; i < n; ++i) a[i] += b[i];
  } else {
    float* a = static_cast<float*>(dst);
    const float* b = static_cast<const float*>(src);
    for (i64 i = 0; i < n; ++i) a[i] += b[i];
  }
}

}  // namespace

int Comm::rank() const { return my_index_; }

int Comm::size() const {
  return static_cast<int>(state_->members.size());
}

int Comm::world_rank_of(int r) const {
  CA_ASSERT(r >= 0 && r < size());
  return state_->members[static_cast<size_t>(r)];
}

bool Comm::same_node(int other) const {
  const Machine& m = machine();
  return m.node_of_rank(world_rank()) == m.node_of_rank(world_rank_of(other));
}

const Machine& Comm::machine() const { return state_->cluster->machine_; }

const GroupProfile& Comm::profile() const { return state_->prof; }

double Comm::now() const { return current_ctx()->clock; }

double Comm::last_op_cost() const { return current_ctx()->last_op_cost; }

void Comm::set_phase(Phase p) { current_ctx()->cur_phase = p; }

Phase Comm::phase() const { return current_ctx()->cur_phase; }

void Comm::charge_compute(double flops, double bytes) {
  RankCtx* ctx = current_ctx();
  const double t = machine().gemm_time(flops, bytes);
  ctx->stats.flops += flops;
  ctx->stats.phase_s[static_cast<int>(Phase::kCompute)] += t;
  ctx->record(Phase::kCompute, ctx->clock, ctx->clock + t);
  ctx->clock += t;
}

void Comm::charge_overlapped_compute(double flops, double bytes) {
  charge_compute_overlap_budget(flops, bytes, current_ctx()->last_op_cost);
}

void Comm::charge_compute_overlap_budget(double flops, double bytes,
                                         double budget) {
  RankCtx* ctx = current_ctx();
  // The paper's GPU implementation is a prototype that "simply offloads
  // local matrix multiplications" (§IV-C) — no communication/computation
  // pipelining on the device path. On CPU, only a fraction of the in-flight
  // communication actually hides behind the GEMM.
  budget = machine().use_gpu ? 0.0 : budget * machine().overlap_efficiency;
  const double t = machine().gemm_time(flops, bytes);
  ctx->stats.flops += flops;
  // The full GEMM time is reported in the compute phase; the clock only
  // advances by the part that does not hide behind the in-flight
  // communication (dual-buffer overlap).
  ctx->stats.phase_s[static_cast<int>(Phase::kCompute)] += t;
  const double adv = std::max(0.0, t - budget);
  ctx->record(Phase::kCompute, ctx->clock, ctx->clock + adv);
  ctx->clock += adv;
}

// ---------------- collectives ----------------

void Comm::barrier() {
  run_collective(
      *state_, my_index_, CommState::Op::kBarrier, [](CommState::Slot&) {},
      [](CommState& st) {
        return st.link.alpha * log2d(static_cast<int>(st.members.size()));
      },
      NoFinish{});
}

void Comm::bcast_bytes(void* buf, i64 bytes, int root) {
  CA_ASSERT(root >= 0 && root < size());
  run_collective(
      *state_, my_index_, CommState::Op::kBcast,
      [&](CommState::Slot& s) {
        s.rbuf = buf;
        s.n0 = bytes;
        s.i0 = root;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        const void* src = st.slots[static_cast<size_t>(root)].rbuf;
        for (int j = 0; j < p; ++j) {
          CA_ASSERT(st.slots[static_cast<size_t>(j)].i0 == root);
          CA_ASSERT(st.slots[static_cast<size_t>(j)].n0 == bytes);
          if (j != root)
            std::memcpy(st.slots[static_cast<size_t>(j)].rbuf, src,
                        static_cast<size_t>(bytes));
        }
        return t_broadcast(st.link, static_cast<double>(bytes), p);
      },
      NoFinish{});
}

void Comm::allgather_bytes(const void* sbuf, i64 bytes_each, void* rbuf) {
  run_collective(
      *state_, my_index_, CommState::Op::kAllgather,
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.n0 = bytes_each;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        for (int j = 0; j < p; ++j) {
          const auto& sj = st.slots[static_cast<size_t>(j)];
          CA_ASSERT(sj.n0 == bytes_each);
          for (int d = 0; d < p; ++d) {
            auto& sd = st.slots[static_cast<size_t>(d)];
            std::memcpy(static_cast<char*>(sd.rbuf) + j * bytes_each, sj.sbuf,
                        static_cast<size_t>(bytes_each));
          }
        }
        return t_allgather(st.link, static_cast<double>(bytes_each) * p, p);
      },
      NoFinish{});
}

void Comm::allgatherv_bytes(const void* sbuf, i64 my_bytes, void* rbuf,
                            const std::vector<i64>& counts) {
  CA_ASSERT(static_cast<int>(counts.size()) == size());
  CA_ASSERT(counts[static_cast<size_t>(my_index_)] == my_bytes);
  run_collective(
      *state_, my_index_, CommState::Op::kAllgatherv,
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.n0 = my_bytes;
        s.v0 = &counts;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        i64 total = 0;
        for (int j = 0; j < p; ++j) total += counts[static_cast<size_t>(j)];
        i64 off = 0;
        for (int j = 0; j < p; ++j) {
          const auto& sj = st.slots[static_cast<size_t>(j)];
          const i64 nj = counts[static_cast<size_t>(j)];
          for (int d = 0; d < p; ++d) {
            auto& sd = st.slots[static_cast<size_t>(d)];
            if (nj > 0)
              std::memcpy(static_cast<char*>(sd.rbuf) + off, sj.sbuf,
                          static_cast<size_t>(nj));
          }
          off += nj;
        }
        return t_allgather(st.link, static_cast<double>(total), p);
      },
      NoFinish{});
}

void Comm::reduce_scatter_sum(const void* sbuf, void* rbuf,
                              const std::vector<i64>& counts, Dtype dtype,
                              bool custom_tree) {
  CA_ASSERT(static_cast<int>(counts.size()) == size());
  run_collective(
      *state_, my_index_, CommState::Op::kReduceScatter,
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.v0 = &counts;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        const i64 esize = dtype_size(dtype);
        i64 total = 0;
        for (i64 c : counts) total += c;
        i64 off = 0;  // element offset of destination segment
        for (int d = 0; d < p; ++d) {
          const i64 nd = counts[static_cast<size_t>(d)];
          auto& sd = st.slots[static_cast<size_t>(d)];
          if (nd > 0) {
            // Start from member 0's segment, then accumulate the rest.
            std::memcpy(sd.rbuf,
                        static_cast<const char*>(st.slots[0].sbuf) + off * esize,
                        static_cast<size_t>(nd * esize));
            for (int j = 1; j < p; ++j)
              reduce_sum_into(sd.rbuf,
                              static_cast<const char*>(
                                  st.slots[static_cast<size_t>(j)].sbuf) +
                                  off * esize,
                              nd, dtype);
          }
          off += nd;
        }
        if (custom_tree)
          return t_reduce_scatter(st.link, static_cast<double>(total * esize),
                                  p);
        return t_reduce_scatter_machine(st.cluster->machine_, st.link,
                                        static_cast<double>(total * esize), p);
      },
      NoFinish{});
}

void Comm::allreduce_sum(const void* sbuf, void* rbuf, i64 count, Dtype dtype) {
  run_collective(
      *state_, my_index_, CommState::Op::kAllreduce,
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.n0 = count;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        const i64 esize = dtype_size(dtype);
        // Sum into member 0's rbuf, then copy to all.
        auto& s0 = st.slots[0];
        std::memcpy(s0.rbuf, s0.sbuf, static_cast<size_t>(count * esize));
        for (int j = 1; j < p; ++j)
          reduce_sum_into(s0.rbuf, st.slots[static_cast<size_t>(j)].sbuf,
                          count, dtype);
        for (int j = 1; j < p; ++j)
          std::memcpy(st.slots[static_cast<size_t>(j)].rbuf, s0.rbuf,
                      static_cast<size_t>(count * esize));
        return t_allreduce(st.link, static_cast<double>(count * esize), p);
      },
      NoFinish{});
}

void Comm::alltoallv_bytes(const void* sbuf, const std::vector<i64>& scounts,
                           const std::vector<i64>& sdispls, void* rbuf,
                           const std::vector<i64>& rcounts,
                           const std::vector<i64>& rdispls) {
  const int p = size();
  CA_ASSERT(static_cast<int>(scounts.size()) == p &&
            static_cast<int>(rcounts.size()) == p);
  run_collective(
      *state_, my_index_, CommState::Op::kAlltoallv,
      [&](CommState::Slot& s) {
        s.sbuf = sbuf;
        s.rbuf = rbuf;
        s.v0 = &scounts;
        s.v1 = &sdispls;
        s.v2 = &rcounts;
        s.v3 = &rdispls;
      },
      [&](CommState& st) {
        double max_bytes = 0;
        for (int src = 0; src < p; ++src) {
          const auto& ss = st.slots[static_cast<size_t>(src)];
          i64 sent = 0, recvd = 0;
          for (int dst = 0; dst < p; ++dst) {
            const auto& sd = st.slots[static_cast<size_t>(dst)];
            const i64 n = (*ss.v0)[static_cast<size_t>(dst)];
            CA_ASSERT_MSG(n == (*sd.v2)[static_cast<size_t>(src)],
                          "alltoallv count mismatch %d->%d", src, dst);
            if (n > 0)
              std::memcpy(static_cast<char*>(sd.rbuf) +
                              (*sd.v3)[static_cast<size_t>(src)],
                          static_cast<const char*>(ss.sbuf) +
                              (*ss.v1)[static_cast<size_t>(dst)],
                          static_cast<size_t>(n));
            if (dst != src) {  // self-copies are not network traffic
              sent += n;
              recvd += (*ss.v2)[static_cast<size_t>(dst)];
            }
          }
          max_bytes = std::max(max_bytes,
                               static_cast<double>(std::max(sent, recvd)));
        }
        return t_alltoallv_machine(st.cluster->machine_, st.link, max_bytes,
                                   p, st.prof.single_node);
      },
      NoFinish{});
}

Comm Comm::split(int color, int key) const {
  std::pair<std::shared_ptr<CommState>, int> result{nullptr, -1};
  run_collective(
      *state_, my_index_, CommState::Op::kSplit,
      [&](CommState::Slot& s) {
        s.i0 = color;
        s.i1 = key;
      },
      [&](CommState& st) {
        const int p = static_cast<int>(st.members.size());
        st.split_out.assign(static_cast<size_t>(p), {nullptr, -1});
        // Collect colors in ascending order; negative color = undefined.
        std::map<int, std::vector<int>> groups;  // color -> member indices
        for (int j = 0; j < p; ++j)
          if (st.slots[static_cast<size_t>(j)].i0 >= 0)
            groups[st.slots[static_cast<size_t>(j)].i0].push_back(j);
        for (auto& [c, idxs] : groups) {
          std::stable_sort(idxs.begin(), idxs.end(), [&](int a, int b) {
            return st.slots[static_cast<size_t>(a)].i1 <
                   st.slots[static_cast<size_t>(b)].i1;
          });
          std::vector<int> members;
          members.reserve(idxs.size());
          for (int j : idxs)
            members.push_back(st.members[static_cast<size_t>(j)]);
          auto ns = CommState::create(st.cluster, std::move(members));
          for (size_t i = 0; i < idxs.size(); ++i)
            st.split_out[static_cast<size_t>(idxs[i])] = {ns,
                                                          static_cast<int>(i)};
        }
        // Modelled as an allgather of one small word per rank.
        return t_allgather(st.link, 8.0 * p, p);
      },
      [&](CommState& st) {
        result = st.split_out[static_cast<size_t>(my_index_)];
      });
  if (!result.first) return Comm();
  return Comm(std::move(result.first), result.second);
}

// ---------------- point-to-point ----------------

void Comm::send_bytes(const void* buf, i64 bytes, int dst, int tag) {
  Cluster* cl = state_->cluster;
  RankCtx* ctx = current_ctx();
  const double entry = ctx->clock;
  const int dst_w = world_rank_of(dst);
  auto rec = std::make_unique<SendRec>();
  rec->bytes = bytes;
  rec->t_entry = entry;
  rec->eager = true;
  if (bytes > 0) {
    rec->owned = std::make_unique<char[]>(static_cast<size_t>(bytes));
    std::memcpy(rec->owned.get(), buf, static_cast<size_t>(bytes));
    rec->buf = rec->owned.get();
  }
  const ChannelKey key{state_->id, world_rank(), dst_w, tag};
  {
    std::unique_lock<std::mutex> lk(cl->mu_);
    cl->channels_[key].push_back(rec.release());  // receiver deletes
    cl->cv_.notify_all();
  }
  const bool same =
      machine().node_of_rank(world_rank()) == machine().node_of_rank(dst_w);
  const double t = t_p2p(machine(), static_cast<double>(bytes), same);
  ctx->last_op_cost = t;
  ctx->charge(t);
}

void Comm::recv_bytes(void* buf, i64 bytes, int src, int tag) {
  Cluster* cl = state_->cluster;
  RankCtx* ctx = current_ctx();
  const double entry = ctx->clock;
  const ChannelKey key{state_->id, world_rank_of(src), world_rank(), tag};
  double exit = 0;
  {
    std::unique_lock<std::mutex> lk(cl->mu_);
    SendRec* rec = nullptr;
    cl->cv_.wait(lk, [&] {
      auto it = cl->channels_.find(key);
      if (it == cl->channels_.end() || it->second.empty()) return false;
      rec = it->second.front();
      return true;
    });
    cl->channels_[key].pop_front();
    CA_ASSERT_MSG(rec->bytes == bytes, "recv size mismatch: posted %lld, got %lld",
                  static_cast<long long>(bytes),
                  static_cast<long long>(rec->bytes));
    if (bytes > 0) std::memmove(buf, rec->buf, static_cast<size_t>(bytes));
    const bool same =
        machine().node_of_rank(key.src) == machine().node_of_rank(key.dst);
    const double t = t_p2p(machine(), static_cast<double>(bytes), same);
    exit = std::max(entry, rec->t_entry) + t;
    if (rec->eager) {
      delete rec;
    } else {
      rec->t_exit = exit;
      rec->consumed = true;
      cl->cv_.notify_all();
    }
  }
  ctx->last_op_cost = exit - entry;
  ctx->charge(exit - ctx->clock);
}

void Comm::sendrecv_bytes(const void* sbuf, i64 sbytes, int dst, void* rbuf,
                          i64 rbytes, int src, int tag) {
  Cluster* cl = state_->cluster;
  RankCtx* ctx = current_ctx();
  const double entry = ctx->clock;
  SendRec rec;
  rec.buf = sbuf;
  rec.bytes = sbytes;
  rec.t_entry = entry;
  const ChannelKey skey{state_->id, world_rank(), world_rank_of(dst), tag};
  {
    std::unique_lock<std::mutex> lk(cl->mu_);
    cl->channels_[skey].push_back(&rec);
    cl->cv_.notify_all();
  }
  recv_bytes(rbuf, rbytes, src, tag);
  {
    std::unique_lock<std::mutex> lk(cl->mu_);
    cl->cv_.wait(lk, [&] { return rec.consumed; });
  }
  if (rec.t_exit > ctx->clock) ctx->charge(rec.t_exit - ctx->clock);
  ctx->last_op_cost = ctx->clock - entry;
}

}  // namespace ca3dmm::simmpi
