// Internal rendezvous state shared by Cluster and Comm. Not part of the
// public API.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simmpi/cluster.hpp"
#include "simmpi/coll_cost.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::simmpi::detail {

/// A pending send. Plain send() is eager (MPI standard-mode style): the
/// payload is copied into `owned` and the sender proceeds, so send/recv
/// ordering across communicators cannot deadlock. sendrecv() deposits the
/// caller's buffer zero-copy and rendezvous-waits, which is safe because
/// both directions are posted before either blocks.
struct SendRec {
  const void* buf = nullptr;
  i64 bytes = 0;
  double t_entry = 0;
  bool consumed = false;
  double t_exit = 0;
  /// Receiver's entry clock, written (under the cluster lock) when the
  /// record is consumed; lets a rendezvous sender trace which side bounded
  /// its completion wait.
  double t_consumer_entry = 0;
  std::unique_ptr<char[]> owned;  ///< non-null for eager sends
  bool eager = false;
};

/// A posted receive, registered in Cluster::posted_recvs_ while the receiver
/// is parked in recv with an empty channel. A sender that finds it (and an
/// empty channel — FIFO) delivers zero-copy: memcpy straight into `buf`,
/// payload flip applied in place, and the receiver's exit time computed on
/// the spot from its own slowdown, skipping the eager staging copy entirely.
/// Lives on the receiver's stack; the receiver unregisters it on every exit
/// path of its wait. All fields are guarded by the cluster lock.
struct RecvRec {
  void* buf = nullptr;
  i64 bytes = 0;
  double t_entry = 0;    ///< receiver's entry clock
  double slowdown = 1;   ///< receiver's straggler factor for the t_p2p charge
  bool filled = false;   ///< a sender delivered; t_exit/sender_entry valid
  double sender_entry = 0;
  double t_exit = 0;
};

/// Shared state of one communicator: membership plus a single in-flight
/// collective rendezvous. MPI semantics guarantee all members call the same
/// collective in the same order, so one slot set per communicator suffices.
struct CommState {
  enum class Op {
    kNone,
    kBarrier,
    kBcast,
    kAllgather,
    kAllgatherv,
    kReduceScatter,
    kAllreduce,
    kAlltoallv,
    kSplit,
  };

  Cluster* cluster = nullptr;
  std::uint64_t id = 0;
  std::vector<int> members;  ///< world rank of each group rank
  GroupProfile prof;
  LinkParams link;
  /// Collective configuration: copied from the cluster default at creation,
  /// overridable per communicator via Comm::set_collective_config. Guarded
  /// by the rendezvous lock.
  CollectiveConfig cfg;

  // --- rendezvous ---
  Op op = Op::kNone;
  int arrived = 0;
  std::uint64_t generation = 0;
  double exit_time = 0;
  /// Per-member share of the completed collective's modeled inter-node
  /// bytes (aggregate / p), accounted into RankStats by every member.
  double coll_inter = 0;
  /// Trace metadata of the completed rendezvous, written by the last
  /// arriver under mu_ and snapshotted by every member before leaving:
  /// the full modeled cost (schedule name, total bytes), the rendezvous
  /// start (= the last arriver's entry clock), and the world rank whose
  /// late arrival set that start time (the collective's critical-path
  /// predecessor; ties resolve to the lowest member index).
  CollCost coll_cost;
  double coll_t0 = 0;
  int coll_crit_world = -1;
  /// Non-empty when the in-flight rendezvous failed a consistency check (or
  /// its cost/validation step threw): every member throws this as a
  /// ca3dmm::Error, so collective argument errors are raised collectively.
  /// Tagged with the generation it belongs to so a slow waiter of an old
  /// rendezvous can never observe a newer rendezvous's error (or vice
  /// versa).
  std::string coll_error;
  std::uint64_t coll_error_gen = 0;

  // --- data-movement completion barrier ---
  // The bulk memcpy/summation of a collective runs *outside* the rendezvous
  // lock, sharded across the participating rank threads; these fields make
  // every member wait until all shards finished before returning (a member
  // that returned early could free buffers a peer's shard still touches).
  bool dm_ok = false;       ///< movement may run (no validation error)
  bool dm_sharded = true;   ///< snapshot of cfg.data_movement at completion
  int dm_remaining = 0;     ///< members yet to check out of the barrier

  struct Slot {
    const void* sbuf = nullptr;
    void* rbuf = nullptr;
    i64 n0 = 0;
    int i0 = 0, i1 = 0;
    const std::vector<i64>* v0 = nullptr;
    const std::vector<i64>* v1 = nullptr;
    const std::vector<i64>* v2 = nullptr;
    const std::vector<i64>* v3 = nullptr;
    double t_entry = 0;
    Dtype dt = Dtype::kF64;
  };
  std::vector<Slot> slots;
  Dtype dtype = Dtype::kF64;
  int root = 0;

  /// Per-member results of a split (new state + index within it).
  std::vector<std::pair<std::shared_ptr<CommState>, int>> split_out;

  // CommState is a friend of Cluster; these let the collective runner reach
  // the cluster-wide rendezvous lock and failure-handling state.
  std::mutex& mu() const { return cluster->mu_; }
  std::condition_variable& cv() const { return cluster->cv_; }
  /// Blocks the calling rank on this communicator's rendezvous until `pred`
  /// holds: condition variable for plain threads, keyed park for fibers.
  template <typename Pred>
  void coll_wait(std::unique_lock<std::mutex>& lk, Pred&& pred) const {
    cluster->rank_wait(lk, WaitKey::coll(id), std::forward<Pred>(pred));
  }
  /// Wakes fibers parked in coll_wait (pair with cv().notify_all()).
  void wake_coll() const { cluster->wake_key_locked(WaitKey::coll(id)); }
  bool aborted() const { return cluster->abort_requested_; }
  void bump_progress() const { ++cluster->progress_gen_; }
  void note_check(RankCtx* ctx) const {
    ctx->checked_gen = cluster->progress_gen_;
  }
  int* blocked_counter() const { return &cluster->blocked_count_; }
  bool validation() const { return cluster->validate_; }
  void fault_point(RankCtx* ctx) const { cluster->fault_point(ctx); }
  const StragglerPolicy& straggler_policy() const {
    return cluster->straggler_policy_;
  }
  void note_degraded(int node) const { cluster->note_degraded_locked(node); }
  const Machine& machine() const { return cluster->machine_; }
  const Topology& topology() const { return cluster->topo_; }

  static std::shared_ptr<CommState> create(Cluster* cl,
                                           std::vector<int> members);
};

inline const char* coll_op_name(CommState::Op op) {
  switch (op) {
    case CommState::Op::kNone: return "none";
    case CommState::Op::kBarrier: return "barrier";
    case CommState::Op::kBcast: return "bcast";
    case CommState::Op::kAllgather: return "allgather";
    case CommState::Op::kAllgatherv: return "allgatherv";
    case CommState::Op::kReduceScatter: return "reduce_scatter";
    case CommState::Op::kAllreduce: return "allreduce";
    case CommState::Op::kAlltoallv: return "alltoallv";
    case CommState::Op::kSplit: return "split";
  }
  return "?";
}

}  // namespace ca3dmm::simmpi::detail
