// Machine model for the simulated cluster.
//
// The paper evaluates CA3DMM on the Georgia Tech PACE-Phoenix cluster (dual
// 12-core Xeon Gold 6226 per node, 100 Gbps InfiniBand, optional 2x V100 per
// node). This struct captures that machine as an alpha-beta model plus a few
// node-level effects the paper's analysis depends on:
//
//  * NIC sharing: ranks on the same node share the node's network bandwidth.
//    A single rank per node (MPI+OpenMP mode) drives only a fraction of the
//    NIC (message-rate bound); two or more concurrent ranks saturate it.
//    This is the mechanism the paper cites for the Fig. 4 pure-MPI vs hybrid
//    differences ("communication operations from different MPI processes in
//    the same node can overlap with each other and better utilize inter-node
//    network bandwidth").
//  * Intra-node messages move through shared memory at memory bandwidth,
//    which is why contiguous ("column-major") rank placement makes Cannon's
//    neighbor shifts partially free of network traffic.
//  * A GPU device model (used by Table III): local GEMM runs at V100-like
//    rate with PCIe staging, and reduce-scatter suffers a penalty above a
//    message-size threshold, reproducing the MVAPICH2 behaviour the paper
//    reports for the GPU square / large-K cases.
//
// All simulated time in seconds, sizes in bytes, rates in bytes/s or flop/s.
#pragma once

#include <cstdint>

namespace ca3dmm::simmpi {

struct Machine {
  // --- network ---
  double alpha_inter = 1.5e-6;   ///< inter-node latency per message (s)
  double alpha_intra = 0.3e-6;   ///< intra-node latency per message (s)
  double nic_bandwidth = 12.5e9; ///< node NIC bandwidth (B/s), 100 Gbps IB
  double mem_bandwidth = 80e9;   ///< node memory bandwidth for intra-node copies (B/s)
  /// Fraction of NIC bandwidth a single communicating rank per node achieves.
  double single_rank_nic_fraction = 0.55;

  // --- node composition ---
  int cores_per_node = 24;
  int ranks_per_node = 24;   ///< 24 = pure MPI, 1 = MPI+OpenMP hybrid, 2 = GPU runs
  int threads_per_rank = 1;  ///< OpenMP threads used by the local GEMM

  // --- compute ---
  double flops_per_core = 60e9;       ///< sustained local DGEMM rate per core
  double peak_flops_per_core = 86.4e9;///< nominal peak (for %-of-peak plots)
  double omp_gemm_efficiency = 0.90;  ///< multi-thread GEMM parallel efficiency
  double gemm_call_overhead = 3e-6;   ///< fixed cost per local GEMM invocation (s)
  /// Fraction of in-flight communication a dual-buffered GEMM can actually
  /// hide. Overlap is never perfect on real systems (MPI progress needs CPU
  /// cycles; transfers contend with the GEMM for memory bandwidth), and
  /// assuming it is would make plain 2-D grids — whose shifts hide entirely
  /// behind large local GEMMs — look better than the 3-D grids the paper
  /// demonstrates are superior.
  double overlap_efficiency = 0.75;

  // --- all-to-all (redistribution) behaviour ---
  /// Personalized all-to-alls at scale run far from the alpha-beta optimum:
  /// each rank exchanges P-1 small pieces (message-rate bound, incast
  /// congestion), and the paper's redistribution subroutine "does not have
  /// other optimizations" (§III-F). These factors inflate the latency and
  /// bandwidth terms of t_alltoallv for multi-node groups; they are what
  /// make the Fig. 3b/3c "custom layout" conversion cost visible.
  double alltoallv_alpha_factor = 8.0;
  double alltoallv_beta_factor = 4.0;

  // --- CTF baseline behaviour ---
  /// Fraction of the local GEMM rate the CTF baseline achieves. The paper:
  /// "CTF is not fine tuned for matrix multiplication" (§IV-A) and "the GPU
  /// acceleration of CTF is still in development" (§IV-C) — its cyclic
  /// tensor layouts and immature device path keep local contractions far
  /// from vendor-BLAS speed.
  double ctf_gemm_fraction_cpu = 0.55;
  double ctf_gemm_fraction_gpu = 0.12;

  double ctf_gemm_fraction() const {
    return use_gpu ? ctf_gemm_fraction_gpu : ctf_gemm_fraction_cpu;
  }

  // --- GPU device (Table III) ---
  bool use_gpu = false;
  double gpu_flops = 6.2e12;        ///< sustained V100 DGEMM rate
  double gpu_peak_flops = 7.8e12;   ///< V100 FP64 peak
  double pcie_bandwidth = 11e9;     ///< host<->device staging bandwidth
  double gpu_gemm_overhead = 15e-6; ///< kernel-launch + cuBLAS setup cost per call
  /// MVAPICH2-like reduce-scatter degradation for large per-message blocks
  /// (paper §IV-C: "the partial C result block is larger than a threshold in
  /// MVAPICH2, which degrades the performance of reduce-scatter").
  double rs_penalty_threshold_bytes = 48.0 * 1024 * 1024;
  double rs_penalty_factor = 1.8;

  /// Simulated node id of a world rank (contiguous rank placement, matching
  /// the paper's "column-major" process organization). Only valid for the
  /// homogeneous, never-shrunk model: heterogeneous clusters and
  /// shrink-and-replan survivors need the explicit rank -> (cluster, node)
  /// map of Topology (topology.hpp), which is what the engine threads
  /// through Cluster/Comm/GroupProfile. This stays as the seed of
  /// Topology::homogeneous and for hand-built unit-test profiles.
  int node_of_rank(int world_rank) const { return world_rank / ranks_per_node; }

  /// Time for one local GEMM of `flops` floating point operations that
  /// touches `bytes` of operand/result data (bytes only matters for the GPU
  /// device, which stages operands over PCIe).
  double gemm_time(double flops, double bytes) const {
    if (use_gpu)
      return gpu_gemm_overhead + flops / gpu_flops + bytes / pcie_bandwidth;
    double rate = flops_per_core;
    if (threads_per_rank > 1)
      rate = flops_per_core * threads_per_rank * omp_gemm_efficiency;
    return gemm_call_overhead + flops / rate;
  }

  /// Aggregate sustained compute rate of one rank (flop/s).
  double rank_flops() const {
    if (use_gpu) return gpu_flops;
    if (threads_per_rank > 1)
      return flops_per_core * threads_per_rank * omp_gemm_efficiency;
    return flops_per_core;
  }

  /// Nominal peak flop/s of one rank, used for %-of-peak reporting.
  double rank_peak_flops() const {
    if (use_gpu) return gpu_peak_flops;
    return peak_flops_per_core * threads_per_rank;
  }

  /// Effective per-rank inter-node bandwidth (B/s) under the bulk-synchronous
  /// assumption that all `ranks_per_node` ranks of a node communicate
  /// concurrently and share the NIC.
  double inter_rank_bandwidth() const {
    const int r = ranks_per_node;
    const double share = (r == 1) ? single_rank_nic_fraction : 1.0;
    return nic_bandwidth * share / r;
  }

  /// Effective per-rank intra-node bandwidth (B/s); node memory bandwidth is
  /// shared by all ranks of the node.
  double intra_rank_bandwidth() const {
    return mem_bandwidth / ranks_per_node;
  }

  // ---- presets ----

  /// PACE-Phoenix-like CPU node, pure MPI (one rank per core).
  static Machine phoenix_mpi();
  /// PACE-Phoenix-like CPU node, MPI+OpenMP (one rank per node, 24 threads).
  static Machine phoenix_hybrid();
  /// PACE-Phoenix-like GPU node (two V100 per node, one rank per GPU).
  static Machine phoenix_gpu();
  /// Trivial parameters (alpha/beta/rate all simple powers of ten) used by
  /// unit tests that assert exact virtual-time values.
  static Machine unit_test();
};

}  // namespace ca3dmm::simmpi
