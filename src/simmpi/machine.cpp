#include "simmpi/machine.hpp"

namespace ca3dmm::simmpi {

Machine Machine::phoenix_mpi() {
  Machine m;
  m.ranks_per_node = 24;
  m.threads_per_rank = 1;
  return m;
}

Machine Machine::phoenix_hybrid() {
  Machine m;
  m.ranks_per_node = 1;
  m.threads_per_rank = 24;
  return m;
}

Machine Machine::phoenix_gpu() {
  Machine m;
  m.use_gpu = true;
  m.ranks_per_node = 2;   // two V100 per node, one rank per GPU
  m.threads_per_rank = 1;
  return m;
}

Machine Machine::unit_test() {
  Machine m;
  m.alpha_inter = 1e-6;
  m.alpha_intra = 1e-6;
  m.nic_bandwidth = 1e9;
  m.mem_bandwidth = 1e9;
  m.single_rank_nic_fraction = 1.0;
  m.cores_per_node = 1;
  m.ranks_per_node = 1;  // every rank on its own node: uniform network
  m.threads_per_rank = 1;
  m.flops_per_core = 1e9;
  m.peak_flops_per_core = 1e9;
  m.gemm_call_overhead = 0.0;
  m.overlap_efficiency = 1.0;  // exact-value tests assume ideal overlap
  return m;
}

}  // namespace ca3dmm::simmpi
