// Structured virtual-time tracing for the simulated cluster.
//
// When enabled via TraceConfig, every rank records one TraceRecord per
// operation that advances its virtual clock — point-to-point sends/receives,
// collectives (with the resolved schedule, payload bytes and modeled
// inter-node bytes), local GEMMs — plus zero-duration markers for events
// that charge no time (plan builds, engine cache hits, redistribution
// pack/unpack). Records carry enough dependency information (dep_rank,
// t_dep) to reconstruct the critical path through the rank timelines.
//
// Everything here is off by default and guarded by a per-rank boolean, so a
// run with tracing disabled executes exactly the pre-trace code path:
// virtual clocks, statistics and results are bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/partition.hpp"

namespace ca3dmm::simmpi {

class Cluster;
enum class Phase;

/// What a TraceRecord describes.
enum class TraceKind : std::uint8_t {
  kCollective,  ///< one collective call (barrier/bcast/.../alltoallv/split)
  kP2pSend,     ///< eager send (cost charged at the sender)
  kP2pRecv,     ///< receive (recv half of sendrecv included)
  kP2pWait,     ///< sendrecv completion wait beyond the recv half
  kCompute,     ///< local GEMM (duration = non-overlapped clock advance)
  kMarker,      ///< zero-duration annotation (plan build, cache event, ...)
};

/// One per-rank trace entry. Durations are virtual seconds; [t0, t1] tiles
/// the rank's clock timeline for non-marker records. `name`/`algo` point to
/// static strings.
struct TraceRecord {
  TraceKind kind = TraceKind::kMarker;
  Phase phase{};             ///< phase the time was charged to
  double t0 = 0, t1 = 0;     ///< virtual interval (t0 == t1 for markers)
  const char* name = "";     ///< operation name ("allgather", "send", ...)
  const char* algo = nullptr;  ///< resolved collective schedule, if any
  double bytes_out = 0;      ///< logical payload bytes sent by this rank
  double bytes_in = 0;       ///< logical payload bytes received by this rank
  double inter_bytes = 0;    ///< this rank's share of modeled inter-node bytes
  double flops = 0;          ///< local flops (kCompute)
  int peer = -1;             ///< p2p peer world rank
  int tag = -1;              ///< p2p tag
  std::uint64_t comm_id = 0;  ///< communicator of a collective
  int comm_size = 0;
  /// Dependency edge for critical-path extraction: the operation could not
  /// complete before world rank `dep_rank` reached time `t_dep` (the last
  /// arriver of a collective, the sender of a receive). dep_rank < 0 means
  /// the operation was bounded by this rank alone.
  int dep_rank = -1;
  double t_dep = 0;
};

/// Tracing configuration, set on the Cluster before run().
struct TraceConfig {
  bool enabled = false;
  /// Also record zero-duration markers (plan build, cache events,
  /// redistribution pack/unpack). Only consulted when `enabled`.
  bool markers = true;
};

// ------------------------------------------------------------------
// Post-run analysis (all functions read the last run() of the cluster and
// require tracing to have been enabled)
// ------------------------------------------------------------------

/// Per-phase aggregate over all ranks of one traced run.
struct PhaseAggregate {
  i64 count = 0;          ///< trace records charged to this phase
  double vtime_max = 0;   ///< max over ranks of time spent in the phase
  double vtime_avg = 0;   ///< average over ranks
  double skew_max = 0;    ///< max - min over ranks
  double skew_avg = 0;    ///< max - avg over ranks
  double bytes = 0;       ///< summed logical payload bytes sent
  double inter_bytes = 0; ///< summed modeled inter-node bytes
  double flops = 0;       ///< summed local flops
};

struct TraceAggregate {
  std::vector<PhaseAggregate> phases;  ///< one entry per Phase
  double vtime_max = 0;
  int nranks = 0;
};

/// One hop of the critical path: the part of a record that bounds the run.
struct CritSegment {
  int rank = -1;
  Phase phase{};
  const char* name = "";
  double t0 = 0, t1 = 0;
};

TraceAggregate aggregate_trace(const Cluster& cl);
std::string format_aggregate_table(const TraceAggregate& agg);

/// Walks dependency edges backwards from the rank that finishes last and
/// returns the chain in increasing time order. Segments are contiguous:
/// each starts where the previous one ends (possibly on another rank).
std::vector<CritSegment> critical_path(const Cluster& cl);
std::string format_critical_path(const std::vector<CritSegment>& path,
                                 size_t max_rows = 40);

/// Chrome trace-event JSON exporter (chrome://tracing, ui.perfetto.dev):
/// one pid per simulated node, one tid per rank, 1 trace microsecond = 1
/// simulated microsecond. Output is a pure function of the recorded trace,
/// so identical runs export byte-identical files.
void write_chrome_trace_file(const Cluster& cl, const std::string& path);

}  // namespace ca3dmm::simmpi
