// Fiber backend of the simulated cluster: ranks as stackful coroutines.
//
// The thread backend maps each rank to a std::thread, which caps real runs
// at a few hundred ranks per box. Here a rank is a stackful fiber with its
// own small guard-paged stack, multiplexed over a worker pool of about
// hardware_concurrency OS threads. Runnable fibers are dispatched lowest
// virtual clock first, so the execution order tracks simulated time; the
// cluster's state transitions are order-independent by construction, which
// is what makes results, vtimes, and traces bit-identical to the thread
// backend (docs/SIMMPI.md documents the determinism contract).
//
// Blocking: a fiber that would wait on the cluster condition variable
// instead parks — it registers under a WaitKey, unlocks the cluster mutex,
// and switches back to its worker's scheduler context. Wake-ups are keyed
// (per communicator, per p2p channel, per cooperative mutex), so completing
// one rendezvous never touches the thousands of fibers parked on unrelated
// state. Real OS threads (e.g. PgemmEngine helper threads that adopted a
// rank context) keep using the condition-variable path; every wake site
// signals both.
//
// The parking handshake is the eventcount pattern: the fiber announces
// kParking under the cluster lock, unlocks, and switches out; its worker
// completes kParking -> kParked after the switch. A waker that catches the
// fiber mid-switch CASes kParking -> kNotified instead, and the worker
// re-enqueues the fiber on seeing it — so a wake-up between "unlock" and
// "switched out" is never lost, and a fiber is never enqueued while a
// worker is still on its stack.
//
// Workers never hold the cluster mutex across a context switch, and a
// fiber's TLS view (current rank context, active buffer pool) is saved and
// restored around every switch, so fibers migrate freely between workers.
// A monitor thread grows the pool when every worker is stuck inside a
// fiber that blocked in the OS (e.g. rank code join()ing helper threads)
// while runnable fibers starve.
#pragma once

#include <ucontext.h>

// Context-switch mechanism. On x86-64 Linux the scheduler uses a hand-rolled
// switch (save/restore the SysV callee-saved registers + FP control words,
// swap %rsp): glibc's swapcontext issues an rt_sigprocmask syscall on every
// switch, which on a mitigation-heavy kernel costs as much as the thread
// context switch fibers exist to avoid. Other architectures (and
// -DCA_SIMMPI_FORCE_UCONTEXT builds) fall back to ucontext.
#if defined(__x86_64__) && defined(__linux__) && \
    !defined(CA_SIMMPI_FORCE_UCONTEXT)
#define CA_SIMMPI_FAST_SWITCH 1
#endif

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace ca3dmm::simmpi {

struct RankCtx;
class BufferPool;

namespace detail {

class FiberScheduler;

/// One rank coroutine. All fields except `state` are owned by whichever
/// worker is (or last was) running the fiber; `state` is the cross-thread
/// handshake.
struct Fiber {
  enum State {
    kRunnable,  ///< in the scheduler's runnable set
    kRunning,   ///< a worker is on this fiber's stack
    kParking,   ///< announced a park; not yet switched out
    kParked,    ///< fully switched out, waiting for a wake
    kNotified,  ///< woken while still kParking; worker re-enqueues
    kFinished,  ///< body returned; stack is dead
  };

#if defined(CA_SIMMPI_FAST_SWITCH)
  void* sp = nullptr;            ///< saved stack pointer while switched out
#else
  ucontext_t uctx{};
#endif
  char* stack_lo = nullptr;      ///< usable stack (above the guard page)
  std::size_t stack_bytes = 0;   ///< usable size
  char* map_base = nullptr;      ///< mmap base (guard page + stack)
  std::size_t map_bytes = 0;
  int rank = -1;
  std::atomic<int> state{kRunnable};
  /// Virtual clock at the last park; dispatch priority (lowest first).
  double vclock = 0;
  std::function<void()> body;
  FiberScheduler* sched = nullptr;

  // Fiber-virtualized thread-locals, live while the fiber is switched out.
  // PoolScope / RankCtxScope mutate real TLS; saving both around every
  // switch keeps one fiber's pool or adopted context from leaking into
  // another fiber sharing the worker.
  RankCtx* tls_ctx = nullptr;
  BufferPool* tls_pool = nullptr;

  void* asan_fake_stack = nullptr;  ///< __sanitizer_*_switch_fiber handle
  void* tsan_fiber = nullptr;       ///< __tsan fiber handle
};

/// The fiber the calling OS thread is currently running, or nullptr when
/// called from a plain thread (thread backend, engine helper threads, the
/// watchdog). This is what routes Cluster::rank_wait to park vs cv-wait.
Fiber* current_fiber();

/// Worker pool + runnable set. Wake-side bookkeeping (the WaitKey -> fiber
/// lists) lives in the Cluster under its mutex; the scheduler only owns
/// dispatch.
class FiberScheduler {
 public:
  /// `workers` = 0 picks min(hardware_concurrency, nranks). `stack_bytes`
  /// is the usable per-fiber stack (a guard page is added below it).
  FiberScheduler(int nranks, int workers, std::size_t stack_bytes);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Creates the fiber for `rank` and enqueues it runnable. Call before
  /// start() (fibers all start at virtual time 0, dispatched in rank
  /// order).
  void spawn(int rank, std::function<void()> body);

  /// Launches the worker pool and the growth monitor.
  void start();

  /// Blocks until every spawned fiber reached kFinished.
  void wait_all_finished();

  /// Stops and joins workers + monitor. All fibers must be finished.
  void shutdown();

  /// Parks the current fiber. Caller holds the cluster mutex via `lk` and
  /// has already registered the fiber in the cluster's wait table; the
  /// mutex is released before the switch and re-acquired after resume
  /// (possibly on a different worker thread).
  void park_current(std::unique_lock<std::mutex>& lk);

  /// Makes a fiber runnable again (or flags it kNotified if it is still
  /// switching out). The caller must have removed it from the wait table;
  /// callable from fibers and plain threads alike.
  void wake(Fiber* f);

  /// True when no fiber is runnable or running — with every live rank
  /// blocked and no progress, that is the fiber backend's deadlock
  /// criterion (parked fibers cannot self-resume).
  bool idle() const;

  int nranks() const { return nranks_; }

 private:
  void worker_main();
  void monitor_main();
  void switch_into(Fiber* f);
  void spawn_worker_locked();
  Fiber* pop_runnable_locked();

  int nranks_;
  int initial_workers_;
  int max_workers_;
  std::size_t stack_bytes_;
  std::vector<std::unique_ptr<Fiber>> fibers_;  ///< indexed by rank

  mutable std::mutex mu_;  ///< guards everything below
  std::set<std::pair<double, int>> runnable_;  ///< (vclock, rank)
  int running_ = 0;        ///< fibers currently on a worker stack
  int finished_ = 0;
  std::uint64_t dispatches_ = 0;  ///< growth monitor's progress signal
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::thread monitor_;
  std::condition_variable work_cv_;   ///< runnable pushed / stop
  std::condition_variable done_cv_;   ///< finished_ == nranks_
  /// The monitor sleeps on its own condition variable, never on work_cv_:
  /// a wake() notification would end its wait_for early, and two
  /// back-to-back notifications would look like two 10 ms samples with no
  /// dispatch in between — growing the pool on a phantom stall.
  std::condition_variable monitor_cv_;
};

}  // namespace detail
}  // namespace ca3dmm::simmpi
