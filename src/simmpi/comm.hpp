// Communicator for the simulated cluster — the MPI subset every PGEMM
// algorithm in this repository needs.
//
// Semantics follow MPI: collectives are called by every member of the
// communicator with matching operation and sizes; point-to-point send/recv
// use (source, destination, tag) matching with rendezvous (synchronous-send)
// semantics. Each operation moves real data between rank buffers AND charges
// virtual time to every participant: exit clock = max(entry clocks) + cost,
// where cost comes from the butterfly-collective formulas of paper §III-D
// (coll_cost.hpp) evaluated with the communicator's node-placement profile.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/partition.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/coll_cost.hpp"

namespace ca3dmm::simmpi {

/// Element type tag for reduction operations.
enum class Dtype { kF32, kF64 };

inline i64 dtype_size(Dtype d) { return d == Dtype::kF64 ? 8 : 4; }

template <typename T>
constexpr Dtype dtype_of();
template <>
constexpr Dtype dtype_of<float>() { return Dtype::kF32; }
template <>
constexpr Dtype dtype_of<double>() { return Dtype::kF64; }

class Comm {
 public:
  Comm() = default;

  int rank() const;
  int size() const;
  /// World rank of group member `r`.
  int world_rank_of(int r) const;
  int world_rank() const { return world_rank_of(rank()); }
  bool same_node(int other) const;
  /// The cluster's anchor machine (cluster 0 of the topology). Collective
  /// formulas key off this plus the group profile; per-rank compute rates
  /// come from my_machine().
  const Machine& machine() const;
  /// The machine of the *calling rank's* node — differs from machine() on a
  /// heterogeneous Topology. Only meaningful from within rank code.
  const Machine& my_machine() const;
  /// The topology of the underlying cluster (rank -> cluster/node map).
  const Topology& topology() const;
  const GroupProfile& profile() const;
  /// The cluster this communicator belongs to (null for invalid comms).
  /// Long-lived components that rank code constructs — e.g. the engine's
  /// CoopMutex — bind to it so their blocking works under both backends.
  Cluster* cluster() const;
  bool valid() const { return state_ != nullptr; }

  /// MPI_Comm_split: ranks with equal `color` form a new communicator,
  /// ordered by (key, current rank). color < 0 returns an invalid Comm
  /// (MPI_UNDEFINED). Collective; charges one small-word allgather of setup
  /// latency to every member (which is what the engine's communicator cache
  /// amortizes across calls).
  Comm split(int color, int key) const;

  /// Cheap local handle duplication (NOT MPI_Comm_dup): the copy shares the
  /// rendezvous state and charges no virtual time. This is the hook the
  /// persistent engine uses to retain split communicators across calls.
  Comm dup() const { return *this; }

  /// Stable identifier of the underlying communicator (0 for invalid
  /// comms); dup()ed handles share the id, split always mints a new one.
  std::uint64_t id() const;

  /// Overrides the collective configuration of this communicator (shared
  /// with every dup() of it). Charges no virtual time. Like an MPI info
  /// hint, it must be set consistently on all members, and only while no
  /// collective is in flight on the communicator (e.g. right after split).
  void set_collective_config(const CollectiveConfig& cfg);
  CollectiveConfig collective_config() const;

  // ---- point-to-point (rendezvous semantics) ----
  void send_bytes(const void* buf, i64 bytes, int dst, int tag);
  void recv_bytes(void* buf, i64 bytes, int src, int tag);
  /// Simultaneous send+receive (deadlock-free on shift rings).
  void sendrecv_bytes(const void* sbuf, i64 sbytes, int dst, void* rbuf,
                      i64 rbytes, int src, int tag);

  // ---- collectives ----
  void barrier();
  void bcast_bytes(void* buf, i64 bytes, int root);
  /// Every rank contributes `bytes_each`; result (size * bytes_each) lands in
  /// rank order in rbuf on every rank.
  void allgather_bytes(const void* sbuf, i64 bytes_each, void* rbuf);
  /// Variable-size allgather; counts[r] = bytes contributed by rank r.
  void allgatherv_bytes(const void* sbuf, i64 my_bytes, void* rbuf,
                        const std::vector<i64>& counts);
  /// Reduce-scatter with sum: sbuf holds sum(counts) elements on every rank;
  /// rank r receives the element-wise sum of segment r (counts[r] elements).
  /// `custom_tree` models an application-implemented reduction tree (what
  /// COSMA does) instead of the MPI library's MPI_Reduce_scatter: it skips
  /// the machine's large-message degradation (paper §IV-C).
  void reduce_scatter_sum(const void* sbuf, void* rbuf,
                          const std::vector<i64>& counts, Dtype dtype,
                          bool custom_tree = false);
  void allreduce_sum(const void* sbuf, void* rbuf, i64 count, Dtype dtype);
  /// Personalized all-to-all, byte counts/displacements per peer.
  void alltoallv_bytes(const void* sbuf, const std::vector<i64>& scounts,
                       const std::vector<i64>& sdispls, void* rbuf,
                       const std::vector<i64>& rcounts,
                       const std::vector<i64>& rdispls);

  // ---- typed convenience wrappers ----
  template <typename T>
  void send(const T* buf, i64 n, int dst, int tag) {
    send_bytes(buf, n * static_cast<i64>(sizeof(T)), dst, tag);
  }
  template <typename T>
  void recv(T* buf, i64 n, int src, int tag) {
    recv_bytes(buf, n * static_cast<i64>(sizeof(T)), src, tag);
  }
  template <typename T>
  void sendrecv(const T* sbuf, i64 sn, int dst, T* rbuf, i64 rn, int src,
                int tag) {
    sendrecv_bytes(sbuf, sn * static_cast<i64>(sizeof(T)), dst, rbuf,
                   rn * static_cast<i64>(sizeof(T)), src, tag);
  }
  template <typename T>
  void bcast(T* buf, i64 n, int root) {
    bcast_bytes(buf, n * static_cast<i64>(sizeof(T)), root);
  }
  template <typename T>
  void allgather(const T* sbuf, i64 n_each, T* rbuf) {
    allgather_bytes(sbuf, n_each * static_cast<i64>(sizeof(T)), rbuf);
  }
  template <typename T>
  void reduce_scatter(const T* sbuf, T* rbuf, const std::vector<i64>& counts,
                      bool custom_tree = false) {
    reduce_scatter_sum(sbuf, rbuf, counts, dtype_of<T>(), custom_tree);
  }
  template <typename T>
  void allreduce(const T* sbuf, T* rbuf, i64 n) {
    allreduce_sum(sbuf, rbuf, n, dtype_of<T>());
  }

  // ---- virtual clock ----
  double now() const;
  /// Charges a local GEMM of `flops` touching `bytes` to the compute phase.
  void charge_compute(double flops, double bytes);
  /// Charges a local GEMM that is overlapped with the immediately preceding
  /// communication op: only max(0, t_gemm - t_comm) is added to the clock,
  /// modelling perfect overlap.
  void charge_overlapped_compute(double flops, double bytes);
  /// Charges a local GEMM overlapped with `budget` seconds of already-charged
  /// communication (dual-buffer Cannon posts two shifts per step; the GEMM
  /// hides behind their combined cost). Clock advances by
  /// max(0, t_gemm - budget); the full GEMM time is still reported in the
  /// compute phase.
  void charge_compute_overlap_budget(double flops, double bytes,
                                     double budget);
  /// Charges memory-bandwidth-bound local processing of `bytes` bytes (one
  /// linear scan at the machine's per-rank intra-node bandwidth) to the
  /// current phase. Used for work that is neither a GEMM nor communication
  /// — e.g. ABFT checksum encode/decode scans. The cost model mirrors this
  /// charge at the same program points.
  void charge_local_work(double bytes);
  /// Virtual cost of this rank's most recent communication operation.
  double last_op_cost() const;
  /// Selects the phase subsequent charges accumulate to.
  void set_phase(Phase p);
  Phase phase() const;

 private:
  friend class Cluster;
  explicit Comm(std::shared_ptr<detail::CommState> s, int my_index)
      : state_(std::move(s)), my_index_(my_index) {}

  /// recv_bytes without the fault-injection op count (sendrecv counts as one
  /// op and reuses this for its receive half).
  void recv_impl(void* buf, i64 bytes, int src, int tag);

  std::shared_ptr<detail::CommState> state_;
  int my_index_ = -1;
};

/// RAII helper: sets the phase on construction, restores on destruction.
class PhaseScope {
 public:
  PhaseScope(Comm& c, Phase p) : c_(c), saved_(c.phase()) { c_.set_phase(p); }
  ~PhaseScope() { c_.set_phase(saved_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Comm& c_;
  Phase saved_;
};

}  // namespace ca3dmm::simmpi
