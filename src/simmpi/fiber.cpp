#include "simmpi/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/pool.hpp"

// ---- sanitizer fiber annotations ----
// ASan tracks a fake stack per context; without start/finish_switch_fiber
// around every swapcontext it reports wild stack-use-after-return on the
// first switch. TSan needs to be told a fiber is a distinct logical thread.
// Both interfaces are declared manually: the prototypes are stable, and not
// every toolchain ships the sanitizer headers.
#if defined(__SANITIZE_ADDRESS__)
#define CA_FIBER_ASAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CA_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define CA_FIBER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define CA_FIBER_TSAN 1
#endif

#if defined(CA_FIBER_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}
#endif
#if defined(CA_FIBER_TSAN)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

#if defined(CA_SIMMPI_FAST_SWITCH)
// ---- hand-rolled x86-64 context switch ----
// Saves the SysV callee-saved state (rbp, rbx, r12-r15, mxcsr, x87 control
// word) on the current stack, stores the resulting %rsp through save_sp,
// installs next_sp, restores the same state from it, and returns there.
// `arg` rides through in %rax: for a suspended context it becomes
// ca_ctx_switch's return value; for a fresh context ca_ctx_entry moves it
// into %rdi and calls ca_fiber_entry with it. No syscalls — this is the
// whole point (swapcontext does rt_sigprocmask every time).
extern "C" void* ca_ctx_switch(void** save_sp, void* next_sp, void* arg);
extern "C" void ca_ctx_entry();

asm(R"(
    .pushsection .text
    .globl ca_ctx_switch
    .type ca_ctx_switch, @function
    .align 16
ca_ctx_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $8, %rsp
    stmxcsr (%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    ldmxcsr (%rsp)
    fldcw 4(%rsp)
    addq $8, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    movq %rdx, %rax
    retq
    .size ca_ctx_switch, .-ca_ctx_switch

    .globl ca_ctx_entry
    .type ca_ctx_entry, @function
    .align 16
ca_ctx_entry:
    movq %rax, %rdi
    pushq $0
    callq ca_fiber_entry
    ud2
    .size ca_ctx_entry, .-ca_ctx_entry
    .popsection
)");
#endif  // CA_SIMMPI_FAST_SWITCH

namespace ca3dmm::simmpi::detail {

namespace {

/// Scheduler-side context of one worker thread (lives on the worker's own
/// stack for its whole life).
struct WorkerFrame {
#if defined(CA_SIMMPI_FAST_SWITCH)
  void* sched_sp = nullptr;  ///< saved stack pointer of the dispatch loop
#else
  ucontext_t sched_ctx{};
#endif
  const void* stack_lo = nullptr;  ///< worker thread stack, for ASan
  std::size_t stack_bytes = 0;
  void* asan_fake_stack = nullptr;
  void* tsan_fiber = nullptr;  ///< the worker thread's own TSan context
};

thread_local WorkerFrame* g_worker = nullptr;
thread_local Fiber* g_fiber = nullptr;

void asan_start_switch(void** save, const void* bottom, std::size_t size) {
#if defined(CA_FIBER_ASAN)
  __sanitizer_start_switch_fiber(save, bottom, size);
#else
  (void)save;
  (void)bottom;
  (void)size;
#endif
}

void asan_finish_switch(void* save) {
#if defined(CA_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(save, nullptr, nullptr);
#else
  (void)save;
#endif
}

void tsan_switch_to(void* fiber) {
#if defined(CA_FIBER_TSAN)
  __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

/// Bounds of the calling thread's stack (glibc). ASan needs the target
/// stack's extent when switching back from a fiber to the worker.
void query_thread_stack(const void** lo, std::size_t* bytes) {
#if defined(__GLIBC__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    pthread_attr_getstack(&attr, &addr, &size);
    pthread_attr_destroy(&attr);
    *lo = addr;
    *bytes = size;
    return;
  }
#endif
  *lo = nullptr;
  *bytes = 0;
}

/// Body shared by both switch mechanisms: first entry onto a fresh fiber
/// stack, run the rank, switch out for good.
void fiber_main(Fiber* f) {
  // First entry onto this stack: complete the ASan switch the worker began.
  asan_finish_switch(f->asan_fake_stack);
  f->body();
  f->state.store(Fiber::kFinished, std::memory_order_release);
  // Final departure: a null save tells ASan to drop this stack's fake
  // frames — the stack is dead after this switch.
  WorkerFrame& w = *g_worker;
  asan_start_switch(nullptr, w.stack_lo, w.stack_bytes);
  tsan_switch_to(w.tsan_fiber);
#if defined(CA_SIMMPI_FAST_SWITCH)
  void* dead_sp = nullptr;
  ca_ctx_switch(&dead_sp, w.sched_sp, nullptr);
#else
  swapcontext(&f->uctx, &w.sched_ctx);
#endif
  // Unreachable: a kFinished fiber is never dispatched again.
  std::abort();
}

#if !defined(CA_SIMMPI_FAST_SWITCH)
/// makecontext only passes ints; the fiber pointer rides in two halves.
void fiber_trampoline(unsigned hi, unsigned lo) {
  fiber_main(reinterpret_cast<Fiber*>((static_cast<std::uintptr_t>(hi) << 32) |
                                      static_cast<std::uintptr_t>(lo)));
}
#endif

#if defined(CA_SIMMPI_FAST_SWITCH)
/// Builds the initial saved context on a fresh fiber stack: the register
/// frame ca_ctx_switch restores, returning into ca_ctx_entry, which hands
/// the switch's `arg` (the Fiber*) to ca_fiber_entry. The control-word slot
/// is seeded from the caller so fibers inherit the process FP environment.
void* ctx_make(void* stack_top) {
  auto* sp = reinterpret_cast<std::uint64_t*>(
      reinterpret_cast<std::uintptr_t>(stack_top) & ~std::uintptr_t{15});
  *--sp = 0;  // fake return address below ca_ctx_entry: stops unwinders
  *--sp = reinterpret_cast<std::uint64_t>(&ca_ctx_entry);
  for (int i = 0; i < 6; ++i) *--sp = 0;  // rbp, rbx, r12-r15
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  *--sp = static_cast<std::uint64_t>(mxcsr) |
          (static_cast<std::uint64_t>(fcw) << 32);
  return sp;
}
#endif

}  // namespace

#if defined(CA_SIMMPI_FAST_SWITCH)
/// First-entry target of ca_ctx_entry (C linkage: called from the asm
/// thunk). Never returns.
extern "C" void ca_fiber_entry(void* arg) {
  fiber_main(static_cast<Fiber*>(arg));
}
#endif

Fiber* current_fiber() { return g_fiber; }

FiberScheduler::FiberScheduler(int nranks, int workers,
                               std::size_t stack_bytes)
    : nranks_(nranks), stack_bytes_(stack_bytes) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  initial_workers_ = workers > 0 ? workers : std::min(nranks, std::max(1, hw));
  initial_workers_ = std::max(1, std::min(initial_workers_, nranks));
  // Growth cap: in the worst case every rank fiber blocks in the OS at once
  // (rank code join()ing real helper threads), and each needs its own
  // worker for the rest to keep running.
  max_workers_ = nranks;
  fibers_.resize(static_cast<size_t>(nranks));
}

FiberScheduler::~FiberScheduler() {
  for (auto& f : fibers_) {
    if (!f) continue;
#if defined(CA_FIBER_TSAN)
    if (f->tsan_fiber) __tsan_destroy_fiber(f->tsan_fiber);
#endif
    if (f->map_base) munmap(f->map_base, f->map_bytes);
  }
}

void FiberScheduler::spawn(int rank, std::function<void()> body) {
  auto f = std::make_unique<Fiber>();
  f->rank = rank;
  f->sched = this;
  f->body = std::move(body);

  // Guard page below the stack: an overflow faults instead of silently
  // corrupting the neighbouring fiber. MAP_NORESERVE keeps thousands of
  // ranks cheap — physical pages are only committed where the stack is
  // actually touched.
  const long page = sysconf(_SC_PAGESIZE);
  const std::size_t ps = page > 0 ? static_cast<std::size_t>(page) : 4096;
  const std::size_t usable = ((stack_bytes_ + ps - 1) / ps) * ps;
  f->map_bytes = usable + ps;
  void* base = mmap(nullptr, f->map_bytes, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  CA_REQUIRE(base != MAP_FAILED,
             "fiber stack mmap of %zu bytes failed for rank %d", f->map_bytes,
             rank);
  f->map_base = static_cast<char*>(base);
  mprotect(f->map_base, ps, PROT_NONE);
  f->stack_lo = f->map_base + ps;
  f->stack_bytes = usable;

#if defined(CA_SIMMPI_FAST_SWITCH)
  f->sp = ctx_make(f->stack_lo + f->stack_bytes);
#else
  CA_REQUIRE(getcontext(&f->uctx) == 0, "getcontext failed");
  f->uctx.uc_stack.ss_sp = f->stack_lo;
  f->uctx.uc_stack.ss_size = f->stack_bytes;
  f->uctx.uc_link = nullptr;
  const std::uintptr_t p = reinterpret_cast<std::uintptr_t>(f.get());
  makecontext(&f->uctx, reinterpret_cast<void (*)()>(fiber_trampoline), 2,
              static_cast<unsigned>(p >> 32),
              static_cast<unsigned>(p & 0xffffffffu));
#endif
#if defined(CA_FIBER_TSAN)
  f->tsan_fiber = __tsan_create_fiber(0);
#endif

  std::lock_guard<std::mutex> lk(mu_);
  runnable_.insert({0.0, rank});
  fibers_[static_cast<size_t>(rank)] = std::move(f);
}

void FiberScheduler::start() {
  std::lock_guard<std::mutex> lk(mu_);
  for (int i = 0; i < initial_workers_; ++i) spawn_worker_locked();
  monitor_ = std::thread([this] { monitor_main(); });
}

void FiberScheduler::spawn_worker_locked() {
  workers_.emplace_back([this] { worker_main(); });
}

Fiber* FiberScheduler::pop_runnable_locked() {
  auto it = runnable_.begin();
  Fiber* f = fibers_[static_cast<size_t>(it->second)].get();
  runnable_.erase(it);
  return f;
}

void FiberScheduler::worker_main() {
  WorkerFrame frame;
  query_thread_stack(&frame.stack_lo, &frame.stack_bytes);
#if defined(CA_FIBER_TSAN)
  frame.tsan_fiber = __tsan_get_current_fiber();
#endif
  g_worker = &frame;
  for (;;) {
    Fiber* f = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !runnable_.empty(); });
      if (runnable_.empty()) return;  // stop_ set and nothing left to run
      f = pop_runnable_locked();
      ++running_;
      ++dispatches_;
    }
    f->state.store(Fiber::kRunning, std::memory_order_relaxed);
    switch_into(f);
    // The fiber switched back: it either finished or is parking.
    if (f->state.load(std::memory_order_acquire) == Fiber::kFinished) {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (++finished_ == nranks_) done_cv_.notify_all();
    } else {
      int expected = Fiber::kParking;
      const bool parked = f->state.compare_exchange_strong(
          expected, Fiber::kParked, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (!parked) {
        // A waker caught the fiber mid-switch (kNotified): it is in no wait
        // list and no one else owns it, so this worker re-enqueues it.
        f->state.store(Fiber::kRunnable, std::memory_order_relaxed);
        runnable_.insert({f->vclock, f->rank});
        work_cv_.notify_one();
      }
    }
  }
}

void FiberScheduler::switch_into(Fiber* f) {
  WorkerFrame& w = *g_worker;
  g_fiber = f;
  // Install the fiber's TLS view; the worker's own view (always null rank
  // context / null pool) is restored on the way out.
  RankCtx* prev_ctx = swap_rank_tls(f->tls_ctx);
  BufferPool* prev_pool = swap_tls_pool(f->tls_pool);
  asan_start_switch(&w.asan_fake_stack, f->stack_lo, f->stack_bytes);
  tsan_switch_to(f->tsan_fiber);
#if defined(CA_SIMMPI_FAST_SWITCH)
  ca_ctx_switch(&w.sched_sp, f->sp, f);
#else
  swapcontext(&w.sched_ctx, &f->uctx);
#endif
  asan_finish_switch(w.asan_fake_stack);
  f->tls_pool = swap_tls_pool(prev_pool);
  f->tls_ctx = swap_rank_tls(prev_ctx);
  g_fiber = nullptr;
}

void FiberScheduler::park_current(std::unique_lock<std::mutex>& lk) {
  Fiber* f = g_fiber;
  CA_ASSERT(f != nullptr);
  f->vclock = current_ctx() ? current_ctx()->clock : f->vclock;
  f->state.store(Fiber::kParking, std::memory_order_release);
  lk.unlock();
  WorkerFrame& w = *g_worker;
  asan_start_switch(&f->asan_fake_stack, w.stack_lo, w.stack_bytes);
  tsan_switch_to(w.tsan_fiber);
#if defined(CA_SIMMPI_FAST_SWITCH)
  ca_ctx_switch(&f->sp, w.sched_sp, nullptr);
#else
  swapcontext(&f->uctx, &w.sched_ctx);
#endif
  // Resumed — possibly on a different worker thread, so the worker frame
  // TLS must not be cached across the switch.
  asan_finish_switch(f->asan_fake_stack);
  lk.lock();
}

void FiberScheduler::wake(Fiber* f) {
  int expected = Fiber::kParking;
  if (f->state.compare_exchange_strong(expected, Fiber::kNotified,
                                       std::memory_order_acq_rel))
    return;  // still switching out; its worker re-enqueues it
  CA_ASSERT(expected == Fiber::kParked);
  f->state.store(Fiber::kRunnable, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  runnable_.insert({f->vclock, f->rank});
  work_cv_.notify_one();
}

bool FiberScheduler::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return runnable_.empty() && running_ == 0;
}

void FiberScheduler::monitor_main() {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t last_dispatches = dispatches_;
  bool prev_stuck = false;
  while (!stop_) {
    monitor_cv_.wait_for(lk, std::chrono::milliseconds(10));
    if (stop_) break;
    // Runnable fibers with no dispatch across two samples means every
    // worker is wedged inside a fiber that blocked in the OS (mutex, join,
    // sleep). Grow the pool so the runnable fibers make progress; idle
    // extra workers are harmless and die at shutdown.
    const bool stuck = !runnable_.empty() && dispatches_ == last_dispatches &&
                       static_cast<int>(workers_.size()) >= running_;
    if (stuck && prev_stuck &&
        static_cast<int>(workers_.size()) < max_workers_)
      spawn_worker_locked();
    prev_stuck = stuck;
    last_dispatches = dispatches_;
  }
}

void FiberScheduler::wait_all_finished() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return finished_ == nranks_; });
}

void FiberScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  monitor_cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (monitor_.joinable()) monitor_.join();
}

}  // namespace ca3dmm::simmpi::detail
