#include "simmpi/pool.hpp"

#include <cstring>
#include <new>

namespace ca3dmm::simmpi {

namespace {
thread_local BufferPool* tls_pool = nullptr;
}  // namespace

BufferPool::~BufferPool() { trim(); }

void* BufferPool::acquire(i64 bytes) {
  CA_ASSERT(bytes > 0);
  auto it = free_.find(bytes);
  if (it != free_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) free_.erase(it);
    idle_bytes_ -= bytes;
    ++stats_.hits;
    stats_.bytes_reused += bytes;
    // Pooled memory must look like a fresh `new T[n]()` allocation.
    std::memset(p, 0, static_cast<size_t>(bytes));
    return p;
  }
  ++stats_.misses;
  void* p = ::operator new(static_cast<size_t>(bytes));
  std::memset(p, 0, static_cast<size_t>(bytes));
  return p;
}

void BufferPool::give_back(void* p, i64 bytes) {
  if (p == nullptr) return;
  CA_ASSERT(bytes > 0);
  // Make room by dropping the largest idle allocations first; if the
  // incoming buffer alone busts the cap, free it instead of pooling it.
  while (idle_bytes_ + bytes > max_idle_bytes_ && !free_.empty()) {
    auto it = std::prev(free_.end());
    ::operator delete(it->second.back());
    it->second.pop_back();
    idle_bytes_ -= it->first;
    ++stats_.trims;
    if (it->second.empty()) free_.erase(it);
  }
  if (idle_bytes_ + bytes > max_idle_bytes_) {
    ::operator delete(p);
    ++stats_.trims;
    return;
  }
  free_[bytes].push_back(p);
  idle_bytes_ += bytes;
}

void BufferPool::trim() {
  for (auto& [bytes, list] : free_) {
    for (void* p : list) ::operator delete(p);
    (void)bytes;
  }
  free_.clear();
  idle_bytes_ = 0;
}

BufferPool* current_buffer_pool() { return tls_pool; }

PoolScope::PoolScope(BufferPool* pool) : saved_(tls_pool) { tls_pool = pool; }

PoolScope::~PoolScope() { tls_pool = saved_; }

}  // namespace ca3dmm::simmpi
