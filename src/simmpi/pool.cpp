#include "simmpi/pool.hpp"

#include <cstring>
#include <new>

namespace ca3dmm::simmpi {

namespace {
thread_local BufferPool* tls_pool = nullptr;
}  // namespace

BufferPool::~BufferPool() { trim(); }

void BufferPool::note_footprint() {
  stats_.idle_bytes = idle_bytes_;
  const i64 footprint = stats_.live_bytes + idle_bytes_;
  if (footprint > stats_.high_water_bytes) stats_.high_water_bytes = footprint;
}

void* BufferPool::acquire(i64 bytes) {
  CA_ASSERT(bytes > 0);
  auto it = free_.find(bytes);
  if (it != free_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) free_.erase(it);
    idle_bytes_ -= bytes;
    ++stats_.hits;
    stats_.bytes_reused += bytes;
    stats_.live_bytes += bytes;
    note_footprint();
    // Pooled memory must look like a fresh `new T[n]()` allocation.
    std::memset(p, 0, static_cast<size_t>(bytes));
    return p;
  }
  ++stats_.misses;
  // A fresh allocation is the only way the footprint grows: under a budget,
  // make room for it by evicting idle allocations before touching the heap.
  if (footprint_budget_bytes_ > 0) {
    while (!free_.empty() &&
           stats_.live_bytes + bytes + idle_bytes_ > footprint_budget_bytes_) {
      auto bi = std::prev(free_.end());
      ::operator delete(bi->second.back());
      bi->second.pop_back();
      idle_bytes_ -= bi->first;
      ++stats_.trims;
      if (bi->second.empty()) free_.erase(bi);
    }
  }
  void* p = ::operator new(static_cast<size_t>(bytes));
  std::memset(p, 0, static_cast<size_t>(bytes));
  stats_.live_bytes += bytes;
  note_footprint();
  return p;
}

void BufferPool::give_back(void* p, i64 bytes) {
  if (p == nullptr) return;
  CA_ASSERT(bytes > 0);
  stats_.live_bytes -= bytes;
  // Make room by dropping the largest idle allocations first; if the
  // incoming buffer alone busts the cap, free it instead of pooling it.
  while (idle_bytes_ + bytes > max_idle_bytes_ && !free_.empty()) {
    auto it = std::prev(free_.end());
    ::operator delete(it->second.back());
    it->second.pop_back();
    idle_bytes_ -= it->first;
    ++stats_.trims;
    if (it->second.empty()) free_.erase(it);
  }
  if (idle_bytes_ + bytes > max_idle_bytes_) {
    ::operator delete(p);
    ++stats_.trims;
    note_footprint();
    return;
  }
  free_[bytes].push_back(p);
  idle_bytes_ += bytes;
  note_footprint();
}

i64 BufferPool::trim(i64 target_idle_bytes) {
  if (target_idle_bytes < 0) target_idle_bytes = 0;
  const i64 before = idle_bytes_;
  // Largest idle allocations go first: they reclaim the most bytes per
  // freed buffer, and small same-shape scratch (the common steady-state
  // reuse) survives the longest.
  while (idle_bytes_ > target_idle_bytes && !free_.empty()) {
    auto it = std::prev(free_.end());
    ::operator delete(it->second.back());
    it->second.pop_back();
    idle_bytes_ -= it->first;
    ++stats_.trims;
    if (it->second.empty()) free_.erase(it);
  }
  note_footprint();
  return before - idle_bytes_;
}

BufferPool* current_buffer_pool() { return tls_pool; }

namespace detail {

BufferPool* swap_tls_pool(BufferPool* next) {
  BufferPool* prev = tls_pool;
  tls_pool = next;
  return prev;
}

}  // namespace detail

PoolScope::PoolScope(BufferPool* pool) : saved_(tls_pool) { tls_pool = pool; }

PoolScope::~PoolScope() { tls_pool = saved_; }

}  // namespace ca3dmm::simmpi
