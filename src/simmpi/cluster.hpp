// Simulated-cluster runtime.
//
// A Cluster runs P ranks as threads in one address space. Every rank owns a
// virtual clock; communication and compute operations advance it using the
// Machine model, so "runtime" reported by benchmarks is deterministic
// simulated time, independent of host scheduling and host core count. Data
// movement is real (ranks exchange actual buffers), so algorithm correctness
// is exercised end to end.
//
// Per-rank bookkeeping (virtual time per phase, peak tracked memory) is what
// the benchmark harness reads to reproduce the paper's tables and figures.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/partition.hpp"
#include "simmpi/machine.hpp"

namespace ca3dmm::simmpi {

class Comm;

/// Phases every PGEMM algorithm in this repository charges its time to.
/// These match the categories of the paper's Fig. 5 runtime breakdown
/// ("replicate A,B" there is kReplicate + kShift here).
enum class Phase {
  kRedistribute,  ///< user layout <-> library-native layout conversion
  kReplicate,     ///< A/B replication (all-gather / broadcast)
  kShift,         ///< 2-D engine communication (Cannon shifts, SUMMA bcasts)
  kCompute,       ///< local GEMM
  kReduce,        ///< partial-C reduction (reduce-scatter / allreduce)
  kMisc,          ///< everything else (barriers, setup)
  kCount
};

const char* phase_name(Phase p);

/// Per-rank results of a simulated run.
struct RankStats {
  double vtime = 0;                                  ///< final virtual clock
  double phase_s[static_cast<int>(Phase::kCount)] = {};  ///< time per phase
  double flops = 0;                                  ///< local flops executed
  i64 peak_bytes = 0;                                ///< peak tracked memory
  i64 cur_bytes = 0;

  double phase(Phase p) const { return phase_s[static_cast<int>(p)]; }
};

/// One virtual-time interval of a rank spent in a phase (trace recording).
struct TraceEvent {
  Phase phase;
  double t0, t1;  ///< virtual seconds
};

/// Mutable per-rank context; owned by Cluster, one per rank thread.
struct RankCtx {
  int world_rank = 0;
  double clock = 0;          ///< virtual time (s)
  double last_op_cost = 0;   ///< virtual cost of the most recent comm op
  Phase cur_phase = Phase::kMisc;
  RankStats stats;
  const Machine* machine = nullptr;
  bool trace_enabled = false;
  std::vector<TraceEvent> trace;

  void record(Phase p, double t0, double t1) {
    if (trace_enabled && t1 > t0) trace.push_back(TraceEvent{p, t0, t1});
  }
  void charge(double seconds) {
    record(cur_phase, clock, clock + seconds);
    clock += seconds;
    stats.phase_s[static_cast<int>(cur_phase)] += seconds;
  }
  void track_alloc(i64 bytes) {
    stats.cur_bytes += bytes;
    if (stats.cur_bytes > stats.peak_bytes) stats.peak_bytes = stats.cur_bytes;
  }
  void track_free(i64 bytes) { stats.cur_bytes -= bytes; }
};

/// Context of the calling rank thread; null outside Cluster::run.
RankCtx* current_ctx();

namespace detail {
struct CommState;
struct SendRec;
/// Key identifying a point-to-point channel.
struct ChannelKey {
  std::uint64_t comm_id;
  int src, dst, tag;
  auto operator<=>(const ChannelKey&) const = default;
};
}  // namespace detail

/// A simulated cluster of `nranks` ranks with a fixed machine model.
class Cluster {
 public:
  Cluster(int nranks, Machine machine);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs `rank_main` on every rank (each on its own thread) with a world
  /// communicator, and waits for all ranks to finish. Statistics are reset at
  /// entry and readable afterwards. Rethrows the first rank exception.
  void run(const std::function<void(Comm&)>& rank_main);

  int nranks() const { return nranks_; }
  const Machine& machine() const { return machine_; }

  /// Stats of one rank after run().
  const RankStats& stats(int rank) const;

  /// Aggregate across ranks: max vtime, max per-phase time, max peak memory,
  /// summed flops.
  RankStats aggregate_stats() const;

  /// Enables per-rank timeline recording for subsequent run() calls.
  void set_trace(bool enabled) { trace_enabled_ = enabled; }

  /// Writes the recorded timelines of the last run() in Chrome trace-event
  /// JSON (open in chrome://tracing or https://ui.perfetto.dev): one track
  /// per rank, one slice per phase interval, microsecond = simulated
  /// microsecond. Requires set_trace(true) before run().
  void write_chrome_trace(const std::string& path) const;

 private:
  friend class Comm;
  friend struct detail::CommState;

  int nranks_;
  Machine machine_;
  std::vector<RankCtx> ctx_;

  // One lock for all rendezvous state; the simulator targets correctness and
  // deterministic virtual time, not host-parallel throughput.
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<detail::ChannelKey, std::deque<detail::SendRec*>> channels_;
  std::uint64_t next_comm_id_ = 1;
  bool trace_enabled_ = false;
};

/// RAII owning buffer whose size is reported to the rank's memory tracker.
/// All work buffers inside the PGEMM algorithms use this, which is how the
/// Table I per-process memory numbers are measured.
template <typename T>
class TrackedBuffer {
 public:
  TrackedBuffer() = default;
  explicit TrackedBuffer(i64 n) { resize(n); }
  ~TrackedBuffer() { release(); }

  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;
  TrackedBuffer(TrackedBuffer&& o) noexcept { swap(o); }
  TrackedBuffer& operator=(TrackedBuffer&& o) noexcept {
    release();
    swap(o);
    return *this;
  }

  void resize(i64 n) {
    release();
    CA_ASSERT(n >= 0);
    if (n == 0) return;
    data_ = new T[static_cast<size_t>(n)]();
    n_ = n;
    ctx_ = current_ctx();
    if (ctx_) ctx_->track_alloc(bytes());
  }

  void release() {
    if (data_) {
      if (ctx_) ctx_->track_free(bytes());
      delete[] data_;
    }
    data_ = nullptr;
    n_ = 0;
    ctx_ = nullptr;
  }

  void swap(TrackedBuffer& o) noexcept {
    std::swap(data_, o.data_);
    std::swap(n_, o.n_);
    std::swap(ctx_, o.ctx_);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  i64 size() const { return n_; }
  i64 bytes() const { return n_ * static_cast<i64>(sizeof(T)); }
  T& operator[](i64 i) { return data_[i]; }
  const T& operator[](i64 i) const { return data_[i]; }

 private:
  T* data_ = nullptr;
  i64 n_ = 0;
  RankCtx* ctx_ = nullptr;
};

}  // namespace ca3dmm::simmpi
