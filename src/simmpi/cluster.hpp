// Simulated-cluster runtime.
//
// A Cluster runs P ranks as threads in one address space. Every rank owns a
// virtual clock; communication and compute operations advance it using the
// Machine model, so "runtime" reported by benchmarks is deterministic
// simulated time, independent of host scheduling and host core count. Data
// movement is real (ranks exchange actual buffers), so algorithm correctness
// is exercised end to end.
//
// Per-rank bookkeeping (virtual time per phase, peak tracked memory) is what
// the benchmark harness reads to reproduce the paper's tables and figures.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <type_traits>

#include "common/error.hpp"
#include "common/partition.hpp"
#include "simmpi/coll_cost.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/pool.hpp"
#include "simmpi/trace.hpp"

namespace ca3dmm::simmpi {

class Comm;

/// Phases every PGEMM algorithm in this repository charges its time to.
/// These match the categories of the paper's Fig. 5 runtime breakdown
/// ("replicate A,B" there is kReplicate + kShift here).
enum class Phase {
  kRedistribute,  ///< user layout <-> library-native layout conversion
  kReplicate,     ///< A/B replication (all-gather / broadcast)
  kShift,         ///< 2-D engine communication (Cannon shifts, SUMMA bcasts)
  kCompute,       ///< local GEMM
  kReduce,        ///< partial-C reduction (reduce-scatter / allreduce)
  kMisc,          ///< everything else (barriers, setup)
  kCount
};

const char* phase_name(Phase p);

/// Per-rank results of a simulated run.
struct RankStats {
  double vtime = 0;                                  ///< final virtual clock
  double phase_s[static_cast<int>(Phase::kCount)] = {};  ///< time per phase
  /// Modeled inter-node traffic of the collectives this rank took part in,
  /// per phase. Each member of a collective accounts 1/p of the schedule's
  /// aggregate inter-node bytes, so summing over ranks recovers the total
  /// bytes the schedule puts on the network (that sum is what
  /// aggregate_stats reports).
  double inter_bytes_s[static_cast<int>(Phase::kCount)] = {};
  /// Logical payload bytes this rank sent / received per phase: p2p message
  /// sizes, and for collectives the rank's own contribution / share of the
  /// delivered data (e.g. allgather: send my block, receive everyone
  /// else's). Schedule-independent by construction — redistribution sends
  /// must match redistribution_volume's per-rank prediction exactly.
  double bytes_sent_s[static_cast<int>(Phase::kCount)] = {};
  double bytes_recvd_s[static_cast<int>(Phase::kCount)] = {};
  double flops = 0;                                  ///< local flops executed
  i64 peak_bytes = 0;                                ///< peak tracked memory
  i64 cur_bytes = 0;
  /// Compute-phase load balance: max over ranks of compute time divided by
  /// the mean over ranks that computed anything. 1.0 = perfectly even; the
  /// heterogeneity-aware planner's uneven k partitioning drives this toward
  /// 1 on asymmetric topologies. Filled by aggregate_stats() only (1.0 on
  /// per-rank stats).
  double load_balance = 1.0;
  /// Communicator splits this rank took part in. Splits are the setup cost
  /// the engine's communicator cache amortizes, so the engine tests assert
  /// on this counter directly.
  i64 comm_splits = 0;
  /// P2p messages delivered into this rank's *posted* receive buffer by the
  /// rendezvous fast path (no eager staging copy). Purely observational: on
  /// the thread backend the send/recv arrival order is host-scheduling
  /// dependent, so this counter is NOT part of the determinism contract
  /// (vtimes and payloads are identical either way). On the fiber backend
  /// dispatch order is deterministic, so tests can pin it exactly.
  i64 p2p_zero_copy = 0;
  /// Corruptions neutralized by ABFT decode on this rank: payload bytes
  /// corrected in place plus trailer hits absorbed. Fault-injection tests
  /// assert on this to prove an injected flip actually fired and was caught
  /// (a run that dodged the fault would pass the bit-identity check too).
  i64 abft_corrected = 0;

  double phase(Phase p) const { return phase_s[static_cast<int>(p)]; }
  double inter_bytes(Phase p) const {
    return inter_bytes_s[static_cast<int>(p)];
  }
  double total_inter_bytes() const {
    double s = 0;
    for (double b : inter_bytes_s) s += b;
    return s;
  }
  double bytes_sent(Phase p) const { return bytes_sent_s[static_cast<int>(p)]; }
  double bytes_recvd(Phase p) const {
    return bytes_recvd_s[static_cast<int>(p)];
  }
  double total_bytes_sent() const {
    double s = 0;
    for (double b : bytes_sent_s) s += b;
    return s;
  }
};

/// Mutable per-rank context; owned by Cluster, one per rank thread.
struct RankCtx {
  int world_rank = 0;
  double clock = 0;          ///< virtual time (s)
  double last_op_cost = 0;   ///< virtual cost of the most recent comm op
  Phase cur_phase = Phase::kMisc;
  RankStats stats;
  const Machine* machine = nullptr;
  bool trace_enabled = false;   ///< TraceConfig::enabled for this run
  bool trace_markers = false;   ///< TraceConfig::markers && enabled
  std::vector<TraceRecord> trace;
  double slowdown = 1.0;  ///< fault-injected straggler factor (>= 1)
  i64 comm_ops = 0;       ///< communication ops issued (fault-kill counter)

  // --- blocked-state, read by the deadlock watchdog ---
  // All fields below are written and read only under Cluster::mu_.
  const char* blocked_op = nullptr;  ///< non-null while parked in a wait
  std::uint64_t blocked_comm = 0;    ///< communicator id of the wait
  int blocked_peer = -1;  ///< p2p peer (group rank) or #arrived for collectives
  int blocked_tag = -1;   ///< p2p tag; -1 for collectives
  /// Cluster::progress_gen_ at this rank's most recent wait-predicate
  /// evaluation. checked_gen == progress_gen_ means the rank re-examined the
  /// *current* rendezvous state and found it still has nothing to do; a rank
  /// that was notified but not yet scheduled has checked_gen < progress_gen_,
  /// which is how the watchdog tells scheduler lag from a true deadlock.
  std::uint64_t checked_gen = 0;
  bool finished = false;  ///< rank thread has returned

  // Tracing never enters here: clock arithmetic is identical with tracing
  // on or off (call sites emit their own TraceRecords when enabled).
  void charge(double seconds) {
    clock += seconds;
    stats.phase_s[static_cast<int>(cur_phase)] += seconds;
  }
  void add_record(const TraceRecord& r) {
    if (trace_enabled) trace.push_back(r);
  }
  void track_alloc(i64 bytes) {
    stats.cur_bytes += bytes;
    if (stats.cur_bytes > stats.peak_bytes) stats.peak_bytes = stats.cur_bytes;
  }
  void track_free(i64 bytes) { stats.cur_bytes -= bytes; }
};

/// Context of the calling rank thread; null outside Cluster::run.
RankCtx* current_ctx();

/// RAII adoption of a rank context by the calling thread (nests; the
/// previous context is restored on destruction). Rank threads get their
/// context installed by Cluster::run; this scope lets a *helper* thread a
/// rank spawned (e.g. concurrent callers racing into PgemmEngine::submit)
/// act as that rank — charging virtual time, tracking memory, and driving
/// collectives on its behalf. The adopting threads must hand the context
/// around with mutual exclusion (one thread inside the scope's rank at a
/// time); RankCtx itself is not thread-safe.
class RankCtxScope {
 public:
  explicit RankCtxScope(RankCtx* ctx);
  ~RankCtxScope();
  RankCtxScope(const RankCtxScope&) = delete;
  RankCtxScope& operator=(const RankCtxScope&) = delete;

 private:
  RankCtx* saved_;
};

/// Records a zero-duration trace marker on the calling rank's timeline at
/// its current virtual time (plan build, engine cache event, redistribution
/// pack/unpack, ...). `name` must be a static string. No-op outside a rank
/// thread or when markers are not being recorded, so instrumented library
/// code pays one branch when tracing is off.
inline void trace_marker(const char* name, double bytes = 0) {
  RankCtx* ctx = current_ctx();
  if (!ctx || !ctx->trace_markers) return;
  TraceRecord r;
  r.kind = TraceKind::kMarker;
  r.phase = ctx->cur_phase;
  r.t0 = r.t1 = ctx->clock;
  r.name = name;
  r.bytes_out = bytes;
  ctx->trace.push_back(r);
}

namespace detail {
struct CommState;
struct SendRec;
struct RecvRec;
struct Fiber;
class FiberScheduler;
/// The fiber the calling OS thread is running, or nullptr on plain threads.
/// (Defined in fiber.cpp; re-declared here so cluster code can route waits
/// without pulling in ucontext.)
Fiber* current_fiber();

/// Installs `next` as the calling thread's rank context and returns the
/// previous one. The fiber scheduler uses this to save/restore each fiber's
/// TLS view around context switches, so RankCtxScope keeps working when
/// fibers share (and migrate between) worker threads.
RankCtx* swap_rank_tls(RankCtx* next);

/// Key identifying a point-to-point channel.
struct ChannelKey {
  std::uint64_t comm_id;
  int src, dst, tag;
  auto operator<=>(const ChannelKey&) const = default;
};

/// What a parked fiber is waiting on. Wake-ups are keyed so completing one
/// rendezvous never touches fibers parked on unrelated state (waking all of
/// P=3072 parked fibers per event would be O(P^2) switches per collective).
/// The packing may alias two distinct p2p channels with huge tags; a
/// collision only causes a spurious wake (predicates are always re-checked),
/// never a lost one.
struct WaitKey {
  std::uint64_t k0 = 0, k1 = 0;
  auto operator<=>(const WaitKey&) const = default;

  static WaitKey coll(std::uint64_t comm_id) {
    return WaitKey{1u | (comm_id << 3), 0};
  }
  static WaitKey chan(const ChannelKey& c) {
    return WaitKey{2u | (c.comm_id << 3),
                   (static_cast<std::uint64_t>(c.src) << 40) |
                       (static_cast<std::uint64_t>(c.dst) << 20) |
                       (static_cast<std::uint64_t>(c.tag) & 0xFFFFFu)};
  }
  static WaitKey mutex(const void* m) {
    return WaitKey{3u, reinterpret_cast<std::uintptr_t>(m)};
  }
};

/// Thrown by blocking primitives when the cluster is unwinding after a peer
/// failure (cooperative abort). Deliberately not derived from std::exception
/// so rank code catching std::exception does not swallow the unwind; caught
/// only by Cluster::run's per-rank wrapper.
struct ClusterAborted {};
}  // namespace detail

/// A simulated cluster of `nranks` ranks with a fixed machine model.
class Cluster {
 public:
  /// Homogeneous convenience: wraps Topology::homogeneous(nranks, machine).
  Cluster(int nranks, Machine machine);
  /// Heterogeneous multi-cluster model (or a shrunk survivor topology with
  /// pinned physical node ids): ranks, machines and the rank -> (cluster,
  /// node) map all come from `topo`.
  explicit Cluster(Topology topo);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs `rank_main` on every rank (each on its own thread) with a world
  /// communicator, and waits for all ranks to finish. Statistics are reset at
  /// entry, finalized for every rank (failed or not), and readable
  /// afterwards.
  ///
  /// Failure semantics: a rank exception triggers a cooperative abort — all
  /// peers blocked in communication unwind, run() always joins, and a single
  /// ca3dmm::Error listing *every* failed rank is thrown. A deadlock (all
  /// live ranks blocked with no progress) is detected by the watchdog and
  /// reported as an Error carrying the full wait-for table instead of
  /// hanging.
  void run(const std::function<void(Comm&)>& rank_main);

  int nranks() const { return nranks_; }
  /// Anchor machine (cluster 0 of the topology) — the legacy single-machine
  /// view. Per-rank machines and node placement live in topology().
  const Machine& machine() const { return machine_; }
  const Topology& topology() const { return topo_; }

  /// Scheduler backend for run(): one std::thread per rank (the original
  /// model; caps real runs at a few hundred ranks per box), or rank fibers
  /// multiplexed over a small worker pool (thousands of ranks per box).
  /// Results, vtimes, traces, and fault behavior are bit-identical across
  /// backends — see docs/SIMMPI.md for the determinism contract.
  enum class Backend { kThreads, kFibers };

  /// Process-wide default, read once per Cluster at construction: the
  /// CA3DMM_SIMMPI_BACKEND environment variable ("fibers" selects fibers,
  /// anything else threads).
  static Backend default_backend();

  void set_backend(Backend b) { backend_ = b; }
  Backend backend() const { return backend_; }

  /// Usable stack per fiber (a guard page is added below). Default 1 MiB,
  /// overridable with CA3DMM_SIMMPI_STACK_KB. Rank bodies that recurse
  /// deeply or place large arrays on the stack need more; an overflow hits
  /// the guard page and faults instead of corrupting a neighbour.
  void set_fiber_stack_bytes(std::size_t bytes) { fiber_stack_bytes_ = bytes; }

  /// Worker threads for the fiber backend; 0 (default) picks
  /// min(hardware_concurrency, nranks). The pool can still grow at runtime
  /// when workers get stuck in fibers that block in the OS.
  void set_fiber_workers(int n) { fiber_workers_ = n; }

  /// Stats of one rank after run().
  const RankStats& stats(int rank) const;

  /// Aggregate across ranks: max vtime, max per-phase time, max peak memory,
  /// summed flops, summed inter-node bytes (see RankStats::inter_bytes_s).
  RankStats aggregate_stats() const;

  /// Enables per-rank structured trace recording for subsequent run()
  /// calls. Zero overhead when off: the cost/clock arithmetic is shared
  /// with the untraced path, so vtimes and results are bit-identical.
  void set_trace(bool enabled) { trace_cfg_.enabled = enabled; }
  void set_trace(const TraceConfig& cfg) { trace_cfg_ = cfg; }
  const TraceConfig& trace_config() const { return trace_cfg_; }

  /// Trace records of one rank after a traced run(), in clock order.
  const std::vector<TraceRecord>& trace(int rank) const;

  /// Debug-validation mode: every collective rendezvous cross-checks all
  /// members' arguments (op, sizes, root, dtype, counts vectors) and raises
  /// a ca3dmm::Error on every member before any data movement. Off by
  /// default; the always-on checks still catch mismatched ops and sizes.
  void set_validation(bool on) { validate_ = on; }

  /// Attaches a deterministic fault-injection plan to subsequent run()
  /// calls; pass a default-constructed FaultPlan to clear.
  void set_fault_plan(FaultPlan plan) { faults_ = std::move(plan); }
  const FaultPlan& fault_plan() const { return faults_; }

  /// Straggler reclassification policy for subsequent run() calls (see
  /// StragglerPolicy). Disabled by default.
  void set_straggler_policy(StragglerPolicy p) { straggler_policy_ = p; }
  const StragglerPolicy& straggler_policy() const { return straggler_policy_; }

  // ---- post-run failure attribution (read after run() threw) ----
  /// Ranks recorded as failed by the last run(), ascending. A rank that
  /// threw its own error is recorded; peers that merely unwound through the
  /// cooperative abort are not — so kill-style faults attribute to exactly
  /// the killed ranks. Collectively-raised errors (argument validation,
  /// straggler reclassification) are thrown by every member and list them
  /// all; consult degraded_nodes() first to tell the two apart.
  std::vector<int> failed_ranks() const;
  /// First recorded error of one rank ("" if it did not fail).
  const std::string& rank_error(int rank) const;
  /// Nodes reclassified as degraded by the straggler policy during the last
  /// run(), ascending. Non-empty means the failure is node-level: shrink
  /// recovery should drop every rank of these nodes rather than the (all-
  /// member) failed_ranks() set.
  std::vector<int> degraded_nodes() const;

  /// Default collective configuration for communicators created afterwards
  /// (the world comm of the next run(), and splits of comms that inherited
  /// it). Call between runs; Comm::set_collective_config overrides per
  /// communicator. The default reproduces the paper's butterfly costs.
  void set_collective_config(const CollectiveConfig& c) { coll_config_ = c; }
  const CollectiveConfig& collective_config() const { return coll_config_; }

  /// Deadlock watchdog (on by default): a background thread that aborts the
  /// run with a wait-for-table diagnostic when every live rank is blocked
  /// and no progress occurs across two sampling intervals.
  void set_watchdog(bool enabled) { watchdog_enabled_ = enabled; }
  void set_watchdog_interval_ms(int ms) {
    CA_REQUIRE(ms >= 1, "watchdog interval must be >= 1 ms, got %d", ms);
    watchdog_interval_ms_ = ms;
  }

  /// Writes the recorded timelines of the last run() in Chrome trace-event
  /// JSON (open in chrome://tracing or https://ui.perfetto.dev): one pid
  /// per simulated node, one tid per rank, one slice per operation,
  /// microsecond = simulated microsecond. Requires set_trace before run().
  /// (Delegates to write_chrome_trace_file in trace.hpp.)
  void write_chrome_trace(const std::string& path) const;

 private:
  friend class Comm;
  friend class CoopMutex;
  friend struct detail::CommState;

  // --- backend-split run loop ---
  /// Per-rank body shared by both backends: installs the rank context,
  /// runs rank_main under the abort/error wrappers, and does the finish
  /// bookkeeping. TLS installation differs per backend, so the caller
  /// passes a scope-managed context pointer.
  void rank_body(int rank, const std::function<void(Comm&)>& rank_main,
                 const std::shared_ptr<detail::CommState>& world);
  void run_threads(const std::function<void(Comm&)>& rank_main,
                   const std::shared_ptr<detail::CommState>& world);
  void run_fibers(const std::function<void(Comm&)>& rank_main,
                  const std::shared_ptr<detail::CommState>& world);

  // --- fiber parking / keyed wake-ups (all under mu_) ---
  /// Blocks the calling rank until `pred` holds. Plain threads wait on the
  /// cluster condition variable; fibers park under `key` and are woken by
  /// wake_key_locked / wake_all_fibers_locked. Predicates may have
  /// side-effects (watchdog note_check) — they are re-evaluated on every
  /// wake either way.
  template <typename Pred>
  void rank_wait(std::unique_lock<std::mutex>& lk, const detail::WaitKey& key,
                 Pred&& pred) {
    if (detail::current_fiber() == nullptr) {
      cv_.wait(lk, std::forward<Pred>(pred));
      return;
    }
    while (!pred()) fiber_park_locked(lk, key);
  }
  void fiber_park_locked(std::unique_lock<std::mutex>& lk,
                         const detail::WaitKey& key);
  void wake_key_locked(const detail::WaitKey& key);
  void wake_all_fibers_locked();

  // --- zero-copy p2p rendezvous (mu_ held) ---
  /// Delivers `bytes` from `buf` straight into a posted matching recv, if
  /// one exists and the channel is empty (FIFO: a queued eager message must
  /// be consumed first). Computes the receiver's exit time, applies payload
  /// flips, and wakes the receiver. When `sender_rec` is non-null (the
  /// sendrecv path) its completion fields are filled in as if the receiver
  /// had consumed it. Returns false when the sender must fall back to the
  /// eager queue (no posted recv, occupied channel, or size mismatch — the
  /// mismatch must queue so the *receiver* raises the size error).
  bool try_deliver_posted_locked(const detail::ChannelKey& key,
                                 const void* buf, i64 bytes, double t_entry,
                                 detail::SendRec* sender_rec);

  // --- cooperative abort (all under mu_ unless noted) ---
  /// Records `what` as rank `world_rank`'s failure (first error per rank
  /// wins; world_rank < 0 records no rank), sets the abort flag, and wakes
  /// every blocked rank so it unwinds via detail::ClusterAborted.
  void request_abort_locked(int world_rank, const std::string& what);
  /// Throws detail::ClusterAborted if an abort is in flight.
  void check_abort_locked() const {
    if (abort_requested_) throw detail::ClusterAborted{};
  }

  // --- fault injection ---
  /// Counts one communication op on `ctx` and throws ca3dmm::Error if the
  /// fault plan kills this rank at this op. No lock needed: the plan is
  /// immutable during run() and the counter is rank-private.
  void fault_point(RankCtx* ctx);
  /// Applies any matching payload flip to a just-received message. mu_ held.
  void maybe_flip_payload_locked(const detail::ChannelKey& key, void* buf,
                                 i64 bytes);
  /// Records a node the straggler policy reclassified as degraded. mu_ held.
  void note_degraded_locked(int node);

  // --- deadlock watchdog ---
  void watchdog_main();
  std::string wait_for_table_locked() const;

  int nranks_;
  Topology topo_;
  Machine machine_;  ///< anchor copy: topo_.machine() (cluster 0)
  std::vector<RankCtx> ctx_;

  // One lock for all rendezvous state; the simulator targets correctness and
  // deterministic virtual time, not host-parallel throughput.
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<detail::ChannelKey, std::deque<detail::SendRec*>> channels_;
  std::uint64_t next_comm_id_ = 1;
  TraceConfig trace_cfg_;
  bool validate_ = false;
  FaultPlan faults_;
  StragglerPolicy straggler_policy_;
  CollectiveConfig coll_config_;  ///< default for new communicators

  // --- run-scoped failure state (guarded by mu_) ---
  bool abort_requested_ = false;
  std::uint64_t progress_gen_ = 0;  ///< bumped on every rendezvous event
  int blocked_count_ = 0;           ///< ranks parked in a wait
  int finished_count_ = 0;          ///< rank threads that returned
  bool run_active_ = false;         ///< watchdog lifetime
  std::condition_variable watchdog_cv_;
  bool watchdog_enabled_ = true;
  int watchdog_interval_ms_ = 100;
  std::vector<std::string> rank_errors_;
  std::vector<std::uint8_t> rank_failed_;
  /// Nodes the straggler policy reclassified as degraded (sorted, unique).
  std::vector<int> degraded_nodes_;
  std::string watchdog_report_;
  /// Per-(src,dst,tag) received-message counter for payload flips.
  std::map<std::tuple<int, int, int>, int> recv_match_count_;

  // --- fiber backend state ---
  Backend backend_;
  std::size_t fiber_stack_bytes_ = 0;  ///< 0 = default (1 MiB or env)
  int fiber_workers_ = 0;              ///< 0 = auto
  /// Live scheduler while a fiber run() is in flight, else null. Read by
  /// wakers and the watchdog under mu_ (set before the watchdog starts,
  /// cleared after it is joined).
  detail::FiberScheduler* fiber_sched_ = nullptr;
  /// Parked fibers by wait key (guarded by mu_). A fiber appears in at most
  /// one list; the waker erases it before calling FiberScheduler::wake.
  std::map<detail::WaitKey, std::vector<detail::Fiber*>> fiber_waiters_;
  /// Posted-receive table for the zero-copy rendezvous path (guarded by
  /// mu_). At most one posted recv per channel: a receiver only posts when
  /// the channel queue is empty, and un-posts before leaving its wait.
  std::map<detail::ChannelKey, detail::RecvRec*> posted_recvs_;
};

/// Mutex usable from rank code under both backends. A fiber that blocks on
/// a std::mutex wedges its whole worker thread — and worse, a fiber resumed
/// on a *different* worker would unlock the mutex on a thread that did not
/// lock it, which is undefined behavior. CoopMutex instead parks fibers
/// through the cluster's scheduler and keeps plain threads (engine helper
/// threads) on an internal condition variable. Ownership is a bare atomic,
/// so lock/unlock may legally happen on different OS threads as a fiber
/// migrates. Bind to a cluster once before first use from fiber context;
/// unbound it still works for plain threads.
class CoopMutex {
 public:
  CoopMutex() = default;
  CoopMutex(const CoopMutex&) = delete;
  CoopMutex& operator=(const CoopMutex&) = delete;

  void bind(Cluster* cl) { cluster_ = cl; }
  void lock();
  void unlock();

 private:
  std::atomic<bool> locked_{false};
  Cluster* cluster_ = nullptr;
  // Plain-thread waiters. The unlocker acquires gate_ before notifying so a
  // waiter that saw locked_==true cannot miss the wake between its check
  // and its wait.
  std::mutex gate_;
  std::condition_variable gate_cv_;
};

/// RAII owning buffer whose size is reported to the rank's memory tracker.
/// All work buffers inside the PGEMM algorithms use this, which is how the
/// Table I per-process memory numbers are measured.
template <typename T>
class TrackedBuffer {
 public:
  TrackedBuffer() = default;
  explicit TrackedBuffer(i64 n) { resize(n); }
  ~TrackedBuffer() { release(); }

  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;
  TrackedBuffer(TrackedBuffer&& o) noexcept { swap(o); }
  TrackedBuffer& operator=(TrackedBuffer&& o) noexcept {
    release();
    swap(o);
    return *this;
  }

  void resize(i64 n) {
    release();
    CA_ASSERT(n >= 0);
    if (n == 0) return;
    n_ = n;
    // Draw from the thread's active BufferPool when one is in scope (the
    // engine path); the pool hands back zeroed memory, matching new T[n]().
    // Tracked bytes are identical either way (Table I semantics).
    if constexpr (std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>)
      pool_ = current_buffer_pool();
    if (pool_)
      data_ = static_cast<T*>(pool_->acquire(bytes()));
    else
      data_ = new T[static_cast<size_t>(n)]();
    ctx_ = current_ctx();
    if (ctx_) ctx_->track_alloc(bytes());
  }

  void release() {
    if (data_) {
      if (ctx_) ctx_->track_free(bytes());
      if (pool_)
        pool_->give_back(data_, bytes());
      else
        delete[] data_;
    }
    data_ = nullptr;
    n_ = 0;
    ctx_ = nullptr;
    pool_ = nullptr;
  }

  void swap(TrackedBuffer& o) noexcept {
    std::swap(data_, o.data_);
    std::swap(n_, o.n_);
    std::swap(ctx_, o.ctx_);
    std::swap(pool_, o.pool_);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  i64 size() const { return n_; }
  i64 bytes() const { return n_ * static_cast<i64>(sizeof(T)); }
  T& operator[](i64 i) { return data_[i]; }
  const T& operator[](i64 i) const { return data_[i]; }

 private:
  T* data_ = nullptr;
  i64 n_ = 0;
  RankCtx* ctx_ = nullptr;
  BufferPool* pool_ = nullptr;  ///< pool this buffer was drawn from, if any
};

}  // namespace ca3dmm::simmpi
