#include "simmpi/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm::simmpi {

namespace {

const char* kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kCollective: return "collective";
    case TraceKind::kP2pSend: return "p2p_send";
    case TraceKind::kP2pRecv: return "p2p_recv";
    case TraceKind::kP2pWait: return "p2p_wait";
    case TraceKind::kCompute: return "compute";
    case TraceKind::kMarker: return "marker";
  }
  return "?";
}

/// Deterministic fixed-precision microsecond timestamp (Chrome traces use
/// double microseconds; %.6f keeps sub-picosecond resolution and a stable
/// textual form across runs).
void put_us(std::string& out, double seconds) {
  out += strprintf("%.6f", seconds * 1e6);
}

void put_common_args(std::string& out, const TraceRecord& r) {
  out += strprintf(",\"args\":{\"phase\":\"%s\"", phase_name(r.phase));
  if (r.bytes_out > 0) out += strprintf(",\"bytes_out\":%.0f", r.bytes_out);
  if (r.bytes_in > 0) out += strprintf(",\"bytes_in\":%.0f", r.bytes_in);
  if (r.inter_bytes > 0)
    out += strprintf(",\"inter_bytes\":%.3f", r.inter_bytes);
  if (r.flops > 0) out += strprintf(",\"flops\":%.0f", r.flops);
  if (r.algo != nullptr) out += strprintf(",\"algo\":\"%s\"", r.algo);
  if (r.peer >= 0) out += strprintf(",\"peer\":%d", r.peer);
  if (r.tag >= 0) out += strprintf(",\"tag\":%d", r.tag);
  if (r.comm_id != 0)
    out += strprintf(",\"comm\":%llu,\"comm_size\":%d",
                     static_cast<unsigned long long>(r.comm_id), r.comm_size);
  if (r.dep_rank >= 0) {
    out += strprintf(",\"dep_rank\":%d,\"dep_ts\":", r.dep_rank);
    put_us(out, r.t_dep);
  }
  out += "}";
}

}  // namespace

void write_chrome_trace_file(const Cluster& cl, const std::string& path) {
  CA_REQUIRE(cl.trace_config().enabled,
             "write_chrome_trace_file needs set_trace(true) before run()");
  std::FILE* f = std::fopen(path.c_str(), "w");
  CA_REQUIRE(f != nullptr, "cannot open trace file %s", path.c_str());
  const Topology& topo = cl.topology();
  std::string out = "[\n";
  // Metadata: one process per simulated node, one thread per rank. Node ids
  // are the topology's *physical* ids — possibly non-contiguous after a
  // shrink-and-replan — so events of a survivor rank stay attributed to the
  // node it actually runs on.
  for (const int node : topo.node_ids())
    out += strprintf(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
        "\"args\":{\"name\":\"node %d\"}},\n",
        node, node);
  for (int r = 0; r < cl.nranks(); ++r)
    out += strprintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"name\":\"rank %d\"}},\n",
        topo.node_of_rank(r), r, r);
  bool first = true;
  for (int rank = 0; rank < cl.nranks(); ++rank) {
    const int pid = topo.node_of_rank(rank);
    for (const TraceRecord& r : cl.trace(rank)) {
      if (!first) out += ",\n";
      first = false;
      if (r.kind == TraceKind::kMarker) {
        out += strprintf(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":",
            r.name, phase_name(r.phase));
        put_us(out, r.t0);
        out += strprintf(",\"pid\":%d,\"tid\":%d", pid, rank);
      } else {
        out += strprintf("{\"name\":\"%s\",\"cat\":\"%s %s\",\"ph\":\"X\","
                         "\"ts\":",
                         r.name, kind_name(r.kind), phase_name(r.phase));
        put_us(out, r.t0);
        out += ",\"dur\":";
        put_us(out, r.t1 - r.t0);
        out += strprintf(",\"pid\":%d,\"tid\":%d", pid, rank);
      }
      put_common_args(out, r);
      out += "}";
    }
  }
  out += "\n]\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

TraceAggregate aggregate_trace(const Cluster& cl) {
  CA_REQUIRE(cl.trace_config().enabled,
             "aggregate_trace needs set_trace(true) before run()");
  const int np = static_cast<int>(Phase::kCount);
  TraceAggregate agg;
  agg.phases.resize(static_cast<size_t>(np));
  agg.nranks = cl.nranks();
  std::vector<double> mins(static_cast<size_t>(np), 0);
  std::vector<double> sums(static_cast<size_t>(np), 0);
  for (int rank = 0; rank < cl.nranks(); ++rank) {
    const RankStats& s = cl.stats(rank);
    agg.vtime_max = std::max(agg.vtime_max, s.vtime);
    for (int p = 0; p < np; ++p) {
      PhaseAggregate& a = agg.phases[static_cast<size_t>(p)];
      const double t = s.phase_s[p];
      if (rank == 0)
        mins[static_cast<size_t>(p)] = t;
      else
        mins[static_cast<size_t>(p)] = std::min(mins[static_cast<size_t>(p)], t);
      a.vtime_max = std::max(a.vtime_max, t);
      sums[static_cast<size_t>(p)] += t;
      a.bytes += s.bytes_sent_s[p];
      a.inter_bytes += s.inter_bytes_s[p];
    }
    for (const TraceRecord& r : cl.trace(rank)) {
      PhaseAggregate& a = agg.phases[static_cast<size_t>(r.phase)];
      a.count++;
      a.flops += r.flops;
    }
  }
  for (int p = 0; p < np; ++p) {
    PhaseAggregate& a = agg.phases[static_cast<size_t>(p)];
    a.vtime_avg = sums[static_cast<size_t>(p)] / cl.nranks();
    // max >= min and max >= avg by construction; clamp rounding residue.
    a.skew_max = std::max(0.0, a.vtime_max - mins[static_cast<size_t>(p)]);
    a.skew_avg = std::max(0.0, a.vtime_max - a.vtime_avg);
  }
  return agg;
}

std::string format_aggregate_table(const TraceAggregate& agg) {
  std::string out = strprintf(
      "%-14s %8s %12s %12s %12s %14s %14s\n", "phase", "events", "vtime ms",
      "skew max ms", "skew avg ms", "bytes", "inter bytes");
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    const PhaseAggregate& a = agg.phases[static_cast<size_t>(p)];
    if (a.count == 0 && a.vtime_max == 0 && a.bytes == 0) continue;
    out += strprintf("%-14s %8lld %12.4f %12.4f %12.4f %14.0f %14.0f\n",
                     phase_name(static_cast<Phase>(p)),
                     static_cast<long long>(a.count), a.vtime_max * 1e3,
                     a.skew_max * 1e3, a.skew_avg * 1e3, a.bytes,
                     a.inter_bytes);
  }
  out += strprintf("%-14s %8s %12.4f\n", "total", "", agg.vtime_max * 1e3);
  return out;
}

std::vector<CritSegment> critical_path(const Cluster& cl) {
  CA_REQUIRE(cl.trace_config().enabled,
             "critical_path needs set_trace(true) before run()");
  const double eps = 1e-15;
  // End on the rank that finishes last (ties -> lowest rank).
  int rank = 0;
  double t = 0;
  for (int r = 0; r < cl.nranks(); ++r)
    if (cl.stats(r).vtime > t + eps) {
      t = cl.stats(r).vtime;
      rank = r;
    }
  std::vector<CritSegment> path;
  // Non-marker records of a rank tile [0, vtime] in order; walk backwards
  // from (rank, t), hopping to the dependency rank whenever an operation
  // was bounded by a peer's arrival. Bounded by the total record count.
  size_t guard = 0;
  for (int r = 0; r < cl.nranks(); ++r) guard += cl.trace(r).size();
  while (t > eps && path.size() <= guard) {
    const std::vector<TraceRecord>& recs = cl.trace(rank);
    // Latest record with t0 < t and t1 >= t (durations tile the timeline;
    // markers and zero-width records never cover an interval).
    const TraceRecord* cover = nullptr;
    for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
      if (it->kind == TraceKind::kMarker || it->t1 - it->t0 <= eps) continue;
      if (it->t0 < t - eps && it->t1 >= t - eps) {
        cover = &*it;
        break;
      }
    }
    if (cover == nullptr) break;  // untraced gap (e.g. rank joined late)
    const bool hop =
        cover->dep_rank >= 0 && cover->t_dep > cover->t0 + eps &&
        cover->t_dep < t - eps;
    const double seg_start = hop ? cover->t_dep : cover->t0;
    path.push_back(CritSegment{rank, cover->phase, cover->name, seg_start,
                               std::min(t, cover->t1)});
    if (hop) {
      rank = cover->dep_rank;
      t = cover->t_dep;
    } else {
      t = cover->t0;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string format_critical_path(const std::vector<CritSegment>& path,
                                 size_t max_rows) {
  std::string out = strprintf("%-10s %-6s %-14s %-16s %12s\n", "t0 ms",
                              "rank", "op", "phase", "dur ms");
  size_t shown = 0;
  for (const CritSegment& s : path) {
    if (shown++ >= max_rows) {
      out += strprintf("  ... %zu more segments\n", path.size() - max_rows);
      break;
    }
    out += strprintf("%-10.4f %-6d %-14s %-16s %12.4f\n", s.t0 * 1e3, s.rank,
                     s.name, phase_name(s.phase), (s.t1 - s.t0) * 1e3);
  }
  return out;
}

}  // namespace ca3dmm::simmpi
