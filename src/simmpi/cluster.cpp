#include "simmpi/cluster.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "simmpi/detail_state.hpp"

namespace ca3dmm::simmpi {

namespace {
thread_local RankCtx* g_ctx = nullptr;
}

RankCtx* current_ctx() { return g_ctx; }

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kRedistribute: return "redistribute";
    case Phase::kReplicate: return "replicate A/B";
    case Phase::kShift: return "2D engine comm";
    case Phase::kCompute: return "local compute";
    case Phase::kReduce: return "reduce C";
    case Phase::kMisc: return "misc";
    default: return "?";
  }
}

Cluster::Cluster(int nranks, Machine machine)
    : nranks_(nranks), machine_(machine), ctx_(static_cast<size_t>(nranks)) {
  CA_REQUIRE(nranks >= 1, "Cluster needs at least one rank, got %d", nranks);
}

Cluster::~Cluster() = default;

void Cluster::run(const std::function<void(Comm&)>& rank_main) {
  // Fresh per-rank state for every run.
  for (int r = 0; r < nranks_; ++r) {
    ctx_[r] = RankCtx{};
    ctx_[r].world_rank = r;
    ctx_[r].machine = &machine_;
    ctx_[r].trace_enabled = trace_enabled_;
  }
  channels_.clear();

  std::vector<int> members(static_cast<size_t>(nranks_));
  std::iota(members.begin(), members.end(), 0);
  auto world = detail::CommState::create(this, std::move(members));

  std::vector<std::string> errors(static_cast<size_t>(nranks_));
  std::vector<bool> failed(static_cast<size_t>(nranks_), false);

  auto thread_main = [&](int r) {
    g_ctx = &ctx_[r];
    try {
      Comm c(world, r);
      rank_main(c);
    } catch (const std::exception& e) {
      failed[static_cast<size_t>(r)] = true;
      errors[static_cast<size_t>(r)] = e.what();
    }
    g_ctx = nullptr;
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) threads.emplace_back(thread_main, r);
  for (auto& t : threads) t.join();

  for (int r = 0; r < nranks_; ++r) {
    ctx_[r].stats.vtime = ctx_[r].clock;
    if (failed[static_cast<size_t>(r)])
      throw Error(strprintf("rank %d failed: %s", r,
                            errors[static_cast<size_t>(r)].c_str()));
  }
}

const RankStats& Cluster::stats(int rank) const {
  CA_ASSERT(rank >= 0 && rank < nranks_);
  return ctx_[static_cast<size_t>(rank)].stats;
}

void Cluster::write_chrome_trace(const std::string& path) const {
  CA_REQUIRE(trace_enabled_,
             "write_chrome_trace needs set_trace(true) before run()");
  std::FILE* f = std::fopen(path.c_str(), "w");
  CA_REQUIRE(f != nullptr, "cannot open trace file %s", path.c_str());
  std::fputs("[\n", f);
  bool first = true;
  for (int r = 0; r < nranks_; ++r) {
    for (const TraceEvent& e : ctx_[static_cast<size_t>(r)].trace) {
      if (!first) std::fputs(",\n", f);
      first = false;
      // 1 trace microsecond = 1 simulated microsecond.
      std::fprintf(f,
                   "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                   "\"pid\":0,\"tid\":%d}",
                   phase_name(e.phase), e.t0 * 1e6, (e.t1 - e.t0) * 1e6, r);
    }
  }
  std::fputs("\n]\n", f);
  std::fclose(f);
}

RankStats Cluster::aggregate_stats() const {
  RankStats agg;
  for (int r = 0; r < nranks_; ++r) {
    const RankStats& s = ctx_[static_cast<size_t>(r)].stats;
    agg.vtime = std::max(agg.vtime, s.vtime);
    for (int p = 0; p < static_cast<int>(Phase::kCount); ++p)
      agg.phase_s[p] = std::max(agg.phase_s[p], s.phase_s[p]);
    agg.flops += s.flops;
    agg.peak_bytes = std::max(agg.peak_bytes, s.peak_bytes);
  }
  return agg;
}

namespace detail {

std::shared_ptr<CommState> CommState::create(Cluster* cl,
                                             std::vector<int> members) {
  auto st = std::make_shared<CommState>();
  st->cluster = cl;
  st->members = std::move(members);
  st->id = cl->next_comm_id_++;
  st->prof = GroupProfile::from_world_ranks(cl->machine_, st->members);
  st->link = group_link(cl->machine_, st->prof);
  st->slots.resize(st->members.size());
  return st;
}

}  // namespace detail

}  // namespace ca3dmm::simmpi
