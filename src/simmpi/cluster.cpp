#include "simmpi/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <thread>

#include "simmpi/detail_state.hpp"
#include "simmpi/fiber.hpp"

namespace ca3dmm::simmpi {

namespace {
thread_local RankCtx* g_ctx = nullptr;
}

RankCtx* current_ctx() { return g_ctx; }

namespace detail {

RankCtx* swap_rank_tls(RankCtx* next) {
  RankCtx* prev = g_ctx;
  g_ctx = next;
  return prev;
}

}  // namespace detail

RankCtxScope::RankCtxScope(RankCtx* ctx) : saved_(g_ctx) { g_ctx = ctx; }

RankCtxScope::~RankCtxScope() { g_ctx = saved_; }

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kRedistribute: return "redistribute";
    case Phase::kReplicate: return "replicate A/B";
    case Phase::kShift: return "2D engine comm";
    case Phase::kCompute: return "local compute";
    case Phase::kReduce: return "reduce C";
    case Phase::kMisc: return "misc";
    default: return "?";
  }
}

Cluster::Backend Cluster::default_backend() {
  const char* s = std::getenv("CA3DMM_SIMMPI_BACKEND");
  if (s != nullptr && std::strcmp(s, "fibers") == 0) return Backend::kFibers;
  return Backend::kThreads;
}

Cluster::Cluster(int nranks, Machine machine)
    : Cluster(Topology::homogeneous(nranks, machine)) {}

Cluster::Cluster(Topology topo)
    : nranks_(topo.nranks()),
      topo_(std::move(topo)),
      machine_(topo_.machine()),
      ctx_(static_cast<size_t>(nranks_)),
      backend_(default_backend()) {
  CA_REQUIRE(nranks_ >= 1, "Cluster needs at least one rank, got %d", nranks_);
}

Cluster::~Cluster() = default;

void Cluster::fiber_park_locked(std::unique_lock<std::mutex>& lk,
                                const detail::WaitKey& key) {
  detail::Fiber* f = detail::current_fiber();
  CA_ASSERT(f != nullptr && fiber_sched_ != nullptr);
  fiber_waiters_[key].push_back(f);
  // park_current drops mu_ before switching out and re-takes it on resume;
  // the resume only happens after a waker removed us from fiber_waiters_.
  fiber_sched_->park_current(lk);
}

void Cluster::wake_key_locked(const detail::WaitKey& key) {
  if (fiber_sched_ == nullptr) return;
  auto it = fiber_waiters_.find(key);
  if (it == fiber_waiters_.end()) return;
  std::vector<detail::Fiber*> list = std::move(it->second);
  fiber_waiters_.erase(it);
  for (detail::Fiber* f : list) fiber_sched_->wake(f);
}

void Cluster::wake_all_fibers_locked() {
  if (fiber_sched_ == nullptr) return;
  std::map<detail::WaitKey, std::vector<detail::Fiber*>> all;
  all.swap(fiber_waiters_);
  for (auto& [key, list] : all)
    for (detail::Fiber* f : list) fiber_sched_->wake(f);
}

void Cluster::request_abort_locked(int world_rank, const std::string& what) {
  if (world_rank >= 0 && !rank_failed_[static_cast<size_t>(world_rank)]) {
    rank_failed_[static_cast<size_t>(world_rank)] = 1;
    rank_errors_[static_cast<size_t>(world_rank)] = what;
  }
  abort_requested_ = true;
  progress_gen_++;
  cv_.notify_all();
  // Every parked fiber must re-check its predicate, see the abort, and
  // unwind — keyed wake-ups alone would leave unrelated waits parked
  // forever.
  wake_all_fibers_locked();
  watchdog_cv_.notify_all();
}

void CoopMutex::lock() {
  if (!locked_.exchange(true, std::memory_order_acquire)) return;
  if (detail::current_fiber() != nullptr && cluster_ != nullptr) {
    std::unique_lock<std::mutex> lk(cluster_->mu_);
    while (locked_.exchange(true, std::memory_order_acquire))
      cluster_->fiber_park_locked(lk, detail::WaitKey::mutex(this));
  } else {
    std::unique_lock<std::mutex> lk(gate_);
    gate_cv_.wait(lk, [&] {
      return !locked_.exchange(true, std::memory_order_acquire);
    });
  }
}

void CoopMutex::unlock() {
  locked_.store(false, std::memory_order_release);
  if (cluster_ != nullptr) {
    std::lock_guard<std::mutex> lk(cluster_->mu_);
    cluster_->wake_key_locked(detail::WaitKey::mutex(this));
  }
  // Acquire gate_ before notifying: a plain-thread waiter that saw
  // locked_==true is either already waiting or still holds gate_ (blocking
  // us here until it waits), so the notify cannot fall in its gap.
  { std::lock_guard<std::mutex> lk(gate_); }
  gate_cv_.notify_all();
}

void Cluster::fault_point(RankCtx* ctx) {
  ctx->comm_ops++;
  for (const FaultPlan::KillRank& k : faults_.kills)
    if (k.rank == ctx->world_rank && k.at_op == ctx->comm_ops)
      throw Error(strprintf(
          "fault injection: rank %d killed at its comm op %lld", k.rank,
          static_cast<long long>(k.at_op)));
}

void Cluster::maybe_flip_payload_locked(const detail::ChannelKey& key,
                                        void* buf, i64 bytes) {
  if (faults_.flips.empty() || bytes <= 0) return;
  const int match = ++recv_match_count_[{key.src, key.dst, key.tag}];
  for (const FaultPlan::FlipPayload& f : faults_.flips)
    if (f.src == key.src && f.dst == key.dst && f.tag == key.tag &&
        f.nth_match == match && f.offset >= 0 && f.offset < bytes)
      static_cast<unsigned char*>(buf)[f.offset] ^= f.mask;
}

void Cluster::note_degraded_locked(int node) {
  for (int n : degraded_nodes_)
    if (n == node) return;
  degraded_nodes_.insert(
      std::upper_bound(degraded_nodes_.begin(), degraded_nodes_.end(), node),
      node);
}

std::vector<int> Cluster::failed_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < nranks_; ++r)
    if (rank_failed_[static_cast<size_t>(r)]) out.push_back(r);
  return out;
}

const std::string& Cluster::rank_error(int rank) const {
  CA_ASSERT(rank >= 0 && rank < nranks_);
  return rank_errors_[static_cast<size_t>(rank)];
}

std::vector<int> Cluster::degraded_nodes() const { return degraded_nodes_; }

std::string Cluster::wait_for_table_locked() const {
  std::string out = "wait-for table (rank / state / comm / peer / tag / vtime):\n";
  for (int r = 0; r < nranks_; ++r) {
    const RankCtx& c = ctx_[static_cast<size_t>(r)];
    if (c.finished) {
      out += strprintf("  rank %3d  finished                      vtime=%.9g\n",
                       r, c.clock);
    } else if (c.blocked_op != nullptr) {
      out += strprintf(
          "  rank %3d  blocked in %-14s comm=%llu peer=%d tag=%d vtime=%.9g\n",
          r, c.blocked_op, static_cast<unsigned long long>(c.blocked_comm),
          c.blocked_peer, c.blocked_tag, c.clock);
    } else {
      // A running rank's clock is written by its thread without mu_, so it
      // cannot be read here (ThreadSanitizer-verified); blocked and
      // finished ranks published theirs before taking the lock.
      out += strprintf("  rank %3d  running\n", r);
    }
  }
  return out;
}

void Cluster::watchdog_main() {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t prev_gen = progress_gen_;
  bool prev_all_blocked = false;
  while (run_active_) {
    watchdog_cv_.wait_for(lk, std::chrono::milliseconds(watchdog_interval_ms_));
    if (!run_active_) break;
    if (abort_requested_) {
      prev_all_blocked = false;
      continue;
    }
    // Deadlock iff every live rank is parked in a rendezvous wait, each of
    // them re-evaluated its wait predicate against the *current* progress
    // generation (checked_gen == progress_gen_: it examined the latest
    // rendezvous state under mu_ and found nothing to do — a rank that was
    // merely notified but not yet scheduled by the host has an older
    // checked_gen), and no event happened for a full sampling interval.
    // Every state change that can satisfy a predicate bumps progress_gen_
    // and notifies, so this condition cannot regress to progress and host
    // scheduler lag cannot fake it.
    const bool all_blocked = finished_count_ < nranks_ &&
                             blocked_count_ == nranks_ - finished_count_;
    bool all_checked_current = all_blocked;
    if (all_blocked) {
      if (fiber_sched_ != nullptr) {
        // Fiber backend: keyed wake-ups mean a parked fiber never
        // re-examines generations it did not wait on, so checked_gen
        // freshness is unavailable. Instead: with no fiber runnable or
        // running, every live rank parked, and no rendezvous event for a
        // full interval, nothing can ever wake anyone — wakes only come
        // from rank progress (there is none) or an abort.
        all_checked_current = fiber_sched_->idle();
      } else {
        for (int r = 0; r < nranks_ && all_checked_current; ++r) {
          const RankCtx& c = ctx_[static_cast<size_t>(r)];
          if (!c.finished && c.checked_gen != progress_gen_)
            all_checked_current = false;
        }
      }
    }
    if (all_blocked && all_checked_current && prev_all_blocked &&
        progress_gen_ == prev_gen) {
      watchdog_report_ = strprintf(
          "deadlock detected: all %d live ranks blocked with no progress\n%s",
          nranks_ - finished_count_, wait_for_table_locked().c_str());
      std::fprintf(stderr, "[simmpi watchdog] %s", watchdog_report_.c_str());
      request_abort_locked(-1, watchdog_report_);
      prev_all_blocked = false;
      continue;
    }
    prev_all_blocked = all_blocked;
    prev_gen = progress_gen_;
  }
}

void Cluster::run(const std::function<void(Comm&)>& rank_main) {
  // Fresh per-rank state for every run.
  for (int r = 0; r < nranks_; ++r) {
    ctx_[r] = RankCtx{};
    ctx_[r].world_rank = r;
    ctx_[r].machine = &topo_.machine_of_rank(r);
    ctx_[r].trace_enabled = trace_cfg_.enabled;
    ctx_[r].trace_markers = trace_cfg_.enabled && trace_cfg_.markers;
    for (const FaultPlan::StraggleNode& s : faults_.stragglers)
      if (s.node == topo_.node_of_rank(r))
        ctx_[r].slowdown *= s.factor;
  }
  channels_.clear();
  rank_errors_.assign(static_cast<size_t>(nranks_), {});
  rank_failed_.assign(static_cast<size_t>(nranks_), 0);
  degraded_nodes_.clear();
  watchdog_report_.clear();
  recv_match_count_.clear();
  abort_requested_ = false;
  blocked_count_ = 0;
  finished_count_ = 0;
  run_active_ = true;

  std::vector<int> members(static_cast<size_t>(nranks_));
  std::iota(members.begin(), members.end(), 0);
  auto world = detail::CommState::create(this, std::move(members));

  if (backend_ == Backend::kFibers)
    run_fibers(rank_main, world);
  else
    run_threads(rank_main, world);

  // Drain undelivered messages. An aborted (or simply unbalanced) run can
  // leave eager sends in the channels; the receiver that would have deleted
  // them never came. Rendezvous records point into (already unwound) sender
  // stack frames and are erased by the sender's cleanup, so only eager
  // records are owned here. Posted recvs and wait lists likewise point into
  // dead stacks; every rank unregistered its own on the way out, so these
  // are empty — cleared anyway so a future bug cannot leak into the next
  // run.
  for (auto& [key, q] : channels_)
    for (detail::SendRec* rec : q)
      if (rec->eager) delete rec;
  channels_.clear();
  posted_recvs_.clear();
  fiber_waiters_.clear();

  // Finalize stats for every rank before reporting failures: a failed run
  // still leaves per-rank virtual times readable for diagnostics.
  for (int r = 0; r < nranks_; ++r) ctx_[r].stats.vtime = ctx_[r].clock;

  if (!watchdog_report_.empty()) throw Error(watchdog_report_);

  int nfailed = 0;
  for (int r = 0; r < nranks_; ++r)
    if (rank_failed_[static_cast<size_t>(r)]) nfailed++;
  if (nfailed == 0) return;
  std::string msg;
  if (nfailed > 1) msg = strprintf("%d ranks failed — ", nfailed);
  bool first = true;
  for (int r = 0; r < nranks_; ++r) {
    if (!rank_failed_[static_cast<size_t>(r)]) continue;
    if (!first) msg += "; ";
    first = false;
    msg += strprintf("rank %d failed: %s", r,
                     rank_errors_[static_cast<size_t>(r)].c_str());
  }
  throw Error(msg);
}

void Cluster::rank_body(int rank, const std::function<void(Comm&)>& rank_main,
                        const std::shared_ptr<detail::CommState>& world) {
  try {
    Comm c(world, rank);
    rank_main(c);
  } catch (const detail::ClusterAborted&) {
    // Unwound cooperatively after a peer failure — not this rank's fault.
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(mu_);
    request_abort_locked(rank, e.what());
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    request_abort_locked(rank, "unknown exception");
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ctx_[static_cast<size_t>(rank)].finished = true;
    finished_count_++;
    progress_gen_++;
    // A blocked peer must re-evaluate its predicate against this bump, or
    // its checked_gen stays stale and the watchdog (which requires every
    // blocked rank to have examined the latest generation) can never
    // declare the deadlock. (Fibers are not woken here: no fiber wait
    // predicate depends on a peer finishing, and the fiber watchdog uses
    // scheduler idleness instead of checked_gen freshness.)
    cv_.notify_all();
  }
}

void Cluster::run_threads(const std::function<void(Comm&)>& rank_main,
                          const std::shared_ptr<detail::CommState>& world) {
  std::thread watchdog;
  if (watchdog_enabled_) watchdog = std::thread([this] { watchdog_main(); });

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r)
    threads.emplace_back([this, r, &rank_main, &world] {
      g_ctx = &ctx_[static_cast<size_t>(r)];
      rank_body(r, rank_main, world);
      g_ctx = nullptr;
    });
  for (auto& t : threads) t.join();

  {
    std::lock_guard<std::mutex> lk(mu_);
    run_active_ = false;
    watchdog_cv_.notify_all();
  }
  if (watchdog.joinable()) watchdog.join();
}

void Cluster::run_fibers(const std::function<void(Comm&)>& rank_main,
                         const std::shared_ptr<detail::CommState>& world) {
  std::size_t stack = fiber_stack_bytes_;
  if (stack == 0) {
    if (const char* s = std::getenv("CA3DMM_SIMMPI_STACK_KB")) {
      const long long kb = std::atoll(s);
      if (kb > 0) stack = static_cast<std::size_t>(kb) * 1024;
    }
  }
  if (stack == 0) stack = std::size_t{1} << 20;

  detail::FiberScheduler sched(nranks_, fiber_workers_, stack);
  for (int r = 0; r < nranks_; ++r)
    sched.spawn(r, [this, r, &rank_main, &world] {
      // The body runs on the fiber's stack; the scheduler saves/restores
      // this TLS around every switch (swap_rank_tls), so setting it here
      // behaves exactly like the per-thread install of the thread backend.
      g_ctx = &ctx_[static_cast<size_t>(r)];
      rank_body(r, rank_main, world);
      g_ctx = nullptr;
    });

  // Publish the scheduler before the watchdog starts so its first sample
  // already uses the fiber criterion; cleared only after the watchdog is
  // joined and can no longer observe it.
  {
    std::lock_guard<std::mutex> lk(mu_);
    fiber_sched_ = &sched;
  }
  std::thread watchdog;
  if (watchdog_enabled_) watchdog = std::thread([this] { watchdog_main(); });

  sched.start();
  sched.wait_all_finished();

  {
    std::lock_guard<std::mutex> lk(mu_);
    run_active_ = false;
    watchdog_cv_.notify_all();
  }
  if (watchdog.joinable()) watchdog.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    fiber_sched_ = nullptr;
  }
  sched.shutdown();
}

const RankStats& Cluster::stats(int rank) const {
  CA_ASSERT(rank >= 0 && rank < nranks_);
  return ctx_[static_cast<size_t>(rank)].stats;
}

const std::vector<TraceRecord>& Cluster::trace(int rank) const {
  CA_ASSERT(rank >= 0 && rank < nranks_);
  return ctx_[static_cast<size_t>(rank)].trace;
}

void Cluster::write_chrome_trace(const std::string& path) const {
  CA_REQUIRE(trace_cfg_.enabled,
             "write_chrome_trace needs set_trace(true) before run()");
  write_chrome_trace_file(*this, path);
}

RankStats Cluster::aggregate_stats() const {
  RankStats agg;
  for (int r = 0; r < nranks_; ++r) {
    const RankStats& s = ctx_[static_cast<size_t>(r)].stats;
    agg.vtime = std::max(agg.vtime, s.vtime);
    for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
      agg.phase_s[p] = std::max(agg.phase_s[p], s.phase_s[p]);
      agg.inter_bytes_s[p] += s.inter_bytes_s[p];  // sum: per-rank 1/p shares
      agg.bytes_sent_s[p] += s.bytes_sent_s[p];
      agg.bytes_recvd_s[p] += s.bytes_recvd_s[p];
    }
    agg.flops += s.flops;
    agg.peak_bytes = std::max(agg.peak_bytes, s.peak_bytes);
    agg.comm_splits += s.comm_splits;
    agg.abft_corrected += s.abft_corrected;
  }
  // Compute-phase load balance: max over ranks / mean over ranks that did any
  // compute. 1.0 = perfectly even; > 1 = the slowest rank idles the rest.
  {
    double max_c = 0, sum_c = 0;
    int n_c = 0;
    for (int r = 0; r < nranks_; ++r) {
      const double c =
          ctx_[static_cast<size_t>(r)].stats.phase_s[static_cast<int>(
              Phase::kCompute)];
      if (c <= 0) continue;
      max_c = std::max(max_c, c);
      sum_c += c;
      n_c++;
    }
    if (n_c > 0 && sum_c > 0) agg.load_balance = max_c * n_c / sum_c;
  }
  return agg;
}

namespace detail {

std::shared_ptr<CommState> CommState::create(Cluster* cl,
                                             std::vector<int> members) {
  auto st = std::make_shared<CommState>();
  st->cluster = cl;
  st->members = std::move(members);
  st->id = cl->next_comm_id_++;
  st->prof = GroupProfile::from_topology(cl->topo_, st->members);
  st->link = group_link(cl->machine_, st->prof);
  st->cfg = cl->coll_config_;
  st->slots.resize(st->members.size());
  return st;
}

}  // namespace detail

}  // namespace ca3dmm::simmpi
