// Collective cost formulas (paper §III-D).
//
// The paper assumes butterfly-network collectives, optimal or near-optimal in
// the alpha-beta model, with costs
//
//   T_allgather(n, P)      = alpha log2(P)        + beta n (P-1)/P
//   T_broadcast(n, P)      = alpha (log2(P)+P-1)  + 2 beta n (P-1)/P
//   T_reduce_scatter(n, P) = alpha (P-1)          + beta n (P-1)/P
//
// where n is the total message size. These functions are shared between the
// executable engine (simmpi charges them to rank virtual clocks) and the
// analytic cost model, so the two layers are consistent by construction.
//
// A process group spanning several nodes sees a mix of intra-node and
// inter-node links. GroupProfile summarizes the composition of a group; the
// effective alpha/beta are the intra/inter parameters mixed by the fraction
// of traffic that stays inside a node. For a butterfly schedule over
// contiguously placed ranks this byte fraction is (r-1)/(p-1) for r group
// ranks per node.
#pragma once

#include <cstdint>
#include <vector>

#include "simmpi/machine.hpp"

namespace ca3dmm::simmpi {

/// Composition of a process group with respect to node placement.
struct GroupProfile {
  int size = 1;            ///< number of ranks in the group
  int nodes = 1;           ///< number of distinct nodes the group touches
  int max_ranks_per_node = 1;
  bool single_node = true;

  static GroupProfile from_world_ranks(const Machine& m,
                                       const std::vector<int>& world_ranks);
};

/// Effective per-rank latency/inverse-bandwidth of a group's links.
struct LinkParams {
  double alpha = 0;  ///< seconds per message
  double beta = 0;   ///< seconds per byte
};

/// Mixes intra/inter-node parameters according to the group composition.
LinkParams group_link(const Machine& m, const GroupProfile& g);

/// Point-to-point message cost; `same_node` selects the link class.
double t_p2p(const Machine& m, double bytes, bool same_node);

// Collective costs. `bytes` is the total message size n of the paper's
// formulas (e.g. for allgather: the size of the concatenated result).
double t_allgather(const LinkParams& l, double bytes, int p);
double t_broadcast(const LinkParams& l, double bytes, int p);
double t_reduce_scatter(const LinkParams& l, double bytes, int p);
double t_allreduce(const LinkParams& l, double bytes, int p);
/// Personalized all-to-all with per-rank maximum send/recv volume `max_bytes`.
double t_alltoallv(const LinkParams& l, double max_bytes, int p);

/// Reduce-scatter with the machine's large-message penalty applied (models
/// the MVAPICH2 degradation the paper reports in §IV-C for GPU runs).
double t_reduce_scatter_machine(const Machine& m, const LinkParams& l,
                                double bytes, int p);

/// Personalized all-to-all with the machine's congestion/message-rate
/// factors applied (multi-node groups only) — the cost the redistribution
/// step actually pays.
double t_alltoallv_machine(const Machine& m, const LinkParams& l,
                           double max_bytes, int p, bool single_node);

inline double log2d(int p) {
  double l = 0;
  while ((1 << static_cast<int>(l)) < p) l += 1.0;
  return l;
}

}  // namespace ca3dmm::simmpi
