// Collective cost formulas (paper §III-D).
//
// The paper assumes butterfly-network collectives, optimal or near-optimal in
// the alpha-beta model, with costs
//
//   T_allgather(n, P)      = alpha log2(P)        + beta n (P-1)/P
//   T_broadcast(n, P)      = alpha (log2(P)+P-1)  + 2 beta n (P-1)/P
//   T_reduce_scatter(n, P) = alpha (P-1)          + beta n (P-1)/P
//
// where n is the total message size. These functions are shared between the
// executable engine (simmpi charges them to rank virtual clocks) and the
// analytic cost model, so the two layers are consistent by construction.
//
// A process group spanning several nodes sees a mix of intra-node and
// inter-node links. GroupProfile summarizes the composition of a group; the
// effective alpha/beta are the intra/inter parameters mixed by the fraction
// of traffic that stays inside a node. For a flat schedule over a group
// whose peer pairings are placement-oblivious (butterfly rounds pair every
// rank with every distance class), the expected intra-node byte fraction is
// the probability that a uniformly random ordered pair of distinct group
// ranks shares a node:
//
//   intra_frac = sum_nodes c_n (c_n - 1) / (p (p - 1))
//
// where c_n ranks of the group live on node n. For a group placed as r full
// nodes' worth of contiguous ranks this reduces to the classical (r-1)/(p-1),
// but unlike that shortcut it stays correct for strided and unevenly placed
// groups (e.g. CA3DMM's replication splits, which stride by s^2), which the
// shortcut systematically undercharges for inter-node traffic.
//
// Groups spanning several *clusters* of a heterogeneous Topology
// (topology.hpp) additionally record a per-cluster decomposition; the
// cross-cluster two-level schedule (CollAlgo::kCrossCluster) prices them as
// intra-cluster phases plus an inter-cluster leader exchange, mirroring
// FlagCX's hybrid runner.
#pragma once

#include <cstdint>
#include <vector>

#include "common/partition.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/topology.hpp"

namespace ca3dmm::simmpi {

/// Composition of a process group with respect to node placement.
struct GroupProfile {
  int size = 1;            ///< number of ranks in the group
  int nodes = 1;           ///< number of distinct nodes the group touches
  int max_ranks_per_node = 1;
  bool single_node = true;
  /// Exact intra-node byte fraction from the group's node multiset (see the
  /// header comment). Negative = unknown (hand-built profiles); group_link
  /// then falls back to the contiguous-placement (r-1)/(p-1) shortcut.
  double intra_frac = -1.0;

  /// The group's footprint on one cluster of a Topology. `mach` aliases the
  /// Topology the profile was built from — keep that Topology alive for the
  /// profile's lifetime (Cluster owns its copy; the cost model's Topology
  /// outlives every predict call).
  struct Part {
    int cluster = 0;
    int size = 0;
    int nodes = 1;
    int max_ranks_per_node = 1;
    double intra_frac = 1.0;  ///< node multiset fraction within the part
    const Machine* mach = nullptr;
  };
  /// Per-cluster decomposition, ordered by cluster id. Empty for profiles
  /// built from a bare Machine (from_world_ranks) or by hand.
  std::vector<Part> parts;
  int clusters = 1;          ///< distinct clusters the group touches
  /// Fraction of a flat schedule's traffic that stays within one cluster
  /// (same pair-counting rule as intra_frac, applied to the cluster
  /// multiset). 1 for single-cluster groups.
  double cluster_frac = 1.0;
  /// Inter-cluster link parameters (valid when clusters > 1).
  double inter_alpha = 0;
  double inter_beta = 0;

  static GroupProfile from_world_ranks(const Machine& m,
                                       const std::vector<int>& world_ranks);
  /// Topology-aware profile: exact node multiset fraction, per-cluster
  /// parts, inter-cluster link. For a single-cluster Topology the resulting
  /// costs match from_world_ranks on the same placement.
  static GroupProfile from_topology(const Topology& topo,
                                    const std::vector<int>& world_ranks);
};

/// Effective per-rank latency/inverse-bandwidth of a group's links.
struct LinkParams {
  double alpha = 0;  ///< seconds per message
  double beta = 0;   ///< seconds per byte
};

/// Mixes intra/inter-node parameters according to the group composition.
LinkParams group_link(const Machine& m, const GroupProfile& g);

/// Fraction of a flat schedule's traffic that crosses node boundaries: the
/// complement of the group's intra-node byte fraction (the exact multiset
/// value when the profile carries one, the (r-1)/(p-1) shortcut otherwise;
/// 0 for single-node groups).
double group_inter_frac(const GroupProfile& g);

/// Point-to-point message cost; `same_node` selects the link class.
double t_p2p(const Machine& m, double bytes, bool same_node);

// Collective costs. `bytes` is the total message size n of the paper's
// formulas (e.g. for allgather: the size of the concatenated result).
double t_allgather(const LinkParams& l, double bytes, int p);
double t_broadcast(const LinkParams& l, double bytes, int p);
double t_reduce_scatter(const LinkParams& l, double bytes, int p);
double t_allreduce(const LinkParams& l, double bytes, int p);
/// Personalized all-to-all with per-rank maximum send/recv volume `max_bytes`.
double t_alltoallv(const LinkParams& l, double max_bytes, int p);

/// Reduce-scatter with the machine's large-message penalty applied (models
/// the MVAPICH2 degradation the paper reports in §IV-C for GPU runs).
double t_reduce_scatter_machine(const Machine& m, const LinkParams& l,
                                double bytes, int p);

// ------------------------------------------------------------------
// Collective schedule selection (the topology-aware collective engine)
// ------------------------------------------------------------------

/// Collective schedule. The data a collective delivers is identical under
/// every schedule (and reductions always sum in rank order, so results are
/// byte-identical); what changes is the modeled cost and the inter-node
/// traffic it implies.
enum class CollAlgo {
  /// The paper's §III-D butterfly formulas, exactly as seeded — the default.
  kPaperButterfly,
  /// Ring schedule: bandwidth-optimal, (p-1) latency rounds.
  kRing,
  /// Recursive doubling/halving (Rabenseifner for allreduce): log2(p)
  /// latency rounds; non-power-of-two groups pay a rounded-up bandwidth
  /// term (Bruck-style dissemination).
  kRecursive,
  /// Two-level schedule (Quintin–Hasanov–Lastovetsky): an intra-node phase
  /// over the ranks of each node plus an inter-node phase over one leader
  /// per node. Only the leaders touch the network, so a node's traffic
  /// crosses its NIC once instead of once per rank. Falls back to the paper
  /// butterfly when the group sits on one node or has one rank per node.
  kHierarchical,
  /// Two-level *cross-cluster* schedule (the FlagCX hybrid-runner model):
  /// an intra-cluster phase per cluster the group touches — each priced
  /// with that cluster's own machine parameters — joined by an exchange
  /// over one leader per cluster on the inter-cluster link. Groups
  /// confined to one cluster downgrade to kHierarchical/kPaperButterfly.
  kCrossCluster,
  /// Per-call selection by message size and group composition: groups
  /// spanning clusters use kCrossCluster; multi-node groups with >1 rank
  /// per node use kHierarchical; otherwise messages below
  /// `CollectiveConfig::small_message_bytes` use kRecursive (latency-bound
  /// regime) and larger ones the paper butterfly.
  kAuto,
};

const char* coll_algo_name(CollAlgo a);

/// Per-communicator collective configuration. The default reproduces the
/// seeded behaviour bit-for-bit: paper-butterfly costs for every collective
/// and rank-sharded data movement (which affects host wall-clock only,
/// never virtual time).
struct CollectiveConfig {
  CollAlgo allgather = CollAlgo::kPaperButterfly;
  CollAlgo reduce_scatter = CollAlgo::kPaperButterfly;
  CollAlgo bcast = CollAlgo::kPaperButterfly;
  CollAlgo allreduce = CollAlgo::kPaperButterfly;
  /// kAuto switches from kRecursive to the bandwidth-minded schedule at
  /// this total message size.
  i64 small_message_bytes = 16 * 1024;

  /// Who executes the bulk memcpy/summation of a collective. Virtual time
  /// is identical either way; this is a host wall-clock knob.
  enum class DataMovement {
    kSharded,      ///< every participant moves its own shard, in parallel
    kLastArriver,  ///< the last-arriving rank moves everything (seed-like)
  };
  DataMovement data_movement = DataMovement::kSharded;

  /// All four collectives on kAuto — the tuned mode benches exercise.
  static CollectiveConfig tuned() {
    CollectiveConfig c;
    c.allgather = c.reduce_scatter = c.bcast = c.allreduce = CollAlgo::kAuto;
    return c;
  }

  friend bool operator==(const CollectiveConfig&,
                         const CollectiveConfig&) = default;
};

/// Modeled cost of one collective: virtual seconds charged to every
/// participant, plus the aggregate inter-node bytes the schedule puts on
/// the network (summed over all group members; each participant's RankStats
/// accounts inter_bytes/p so per-phase sums across ranks equal this).
struct CollCost {
  double t = 0;
  double inter_bytes = 0;
  /// Resolved schedule name (static string; null for ops without one, e.g.
  /// barrier/alltoallv) and total message size n — carried into traces.
  const char* algo = nullptr;
  double bytes = 0;
};

/// The schedule actually used for a call: groups spanning clusters resolve
/// kAuto/kHierarchical to kCrossCluster; otherwise kAuto picks by message
/// size / composition, kHierarchical downgrades to the butterfly when the
/// group has no two-level structure (single node, or one rank per node),
/// and kCrossCluster downgrades the same way as kAuto.
CollAlgo resolve_coll_algo(CollAlgo configured, const GroupProfile& g,
                           double bytes, i64 small_message_bytes);

// Schedule-aware costs. `bytes` is the total message size n (as in the
// paper's formulas); `a` must be a resolved algorithm (not kAuto). With
// kPaperButterfly these reproduce t_allgather / t_reduce_scatter(_machine) /
// t_broadcast / t_allreduce bit-for-bit.
CollCost coll_allgather_cost(const Machine& m, const GroupProfile& g,
                             const LinkParams& l, CollAlgo a, double bytes,
                             int p);
/// `custom_tree` skips the machine's large-message degradation (application
/// -implemented reduction trees, paper §IV-C).
CollCost coll_reduce_scatter_cost(const Machine& m, const GroupProfile& g,
                                  const LinkParams& l, CollAlgo a,
                                  double bytes, int p, bool custom_tree);
CollCost coll_bcast_cost(const Machine& m, const GroupProfile& g,
                         const LinkParams& l, CollAlgo a, double bytes, int p);
CollCost coll_allreduce_cost(const Machine& m, const GroupProfile& g,
                             const LinkParams& l, CollAlgo a, double bytes,
                             int p);

/// Personalized all-to-all with the machine's congestion/message-rate
/// factors applied (multi-node groups only) — the cost the redistribution
/// step actually pays.
double t_alltoallv_machine(const Machine& m, const LinkParams& l,
                           double max_bytes, int p, bool single_node);

inline double log2d(int p) {
  double l = 0;
  while ((1 << static_cast<int>(l)) < p) l += 1.0;
  return l;
}

}  // namespace ca3dmm::simmpi
