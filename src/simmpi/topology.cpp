#include "simmpi/topology.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "simmpi/coll_cost.hpp"

namespace ca3dmm::simmpi {

Topology Topology::homogeneous(int nranks, Machine machine) {
  CA_REQUIRE(nranks > 0, "topology needs at least one rank, got %d", nranks);
  ClusterSpec spec;
  spec.name = "cluster0";
  spec.machine = machine;
  spec.nranks = nranks;
  return make({std::move(spec)});
}

Topology Topology::make(std::vector<ClusterSpec> clusters,
                        InterClusterLink link) {
  CA_REQUIRE(!clusters.empty(), "topology needs at least one cluster");
  Topology t;
  t.link_ = link;
  int node_base = 0;
  for (size_t c = 0; c < clusters.size(); ++c) {
    const ClusterSpec& spec = clusters[c];
    CA_REQUIRE(spec.nranks > 0, "cluster %zu has %d ranks", c, spec.nranks);
    CA_REQUIRE(spec.machine.ranks_per_node >= 1,
               "cluster %zu has ranks_per_node %d", c,
               spec.machine.ranks_per_node);
    const int rpn = spec.machine.ranks_per_node;
    for (int r = 0; r < spec.nranks; ++r) {
      t.cluster_of_.push_back(static_cast<int>(c));
      t.node_of_.push_back(node_base + r / rpn);
    }
    node_base += (spec.nranks + rpn - 1) / rpn;
  }
  t.clusters_ = std::move(clusters);
  return t;
}

const Machine& Topology::machine() const {
  CA_REQUIRE(!clusters_.empty(), "empty topology has no machine");
  return clusters_.front().machine;
}

int Topology::nnodes() const { return static_cast<int>(node_ids().size()); }

std::vector<int> Topology::node_ids() const {
  std::vector<int> ids = node_of_;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

int Topology::cluster_of_node(int node) const {
  for (int r = 0; r < nranks(); ++r)
    if (node_of_[r] == node) return cluster_of_[r];
  return -1;
}

Topology Topology::restricted_to(const std::vector<int>& survivors) const {
  CA_REQUIRE(!survivors.empty(), "restricted_to needs at least one survivor");
  Topology t;
  t.clusters_ = clusters_;
  t.link_ = link_;
  t.cluster_of_.reserve(survivors.size());
  t.node_of_.reserve(survivors.size());
  int prev = -1;
  for (const int old : survivors) {
    CA_REQUIRE(old >= 0 && old < nranks(), "survivor rank %d out of range",
               old);
    CA_REQUIRE(old > prev, "survivor list must be strictly ascending");
    prev = old;
    t.cluster_of_.push_back(cluster_of_[old]);
    t.node_of_.push_back(node_of_[old]);
  }
  // Per-cluster rank counts shrink with the survivors; the Machines (and
  // hence node capacity / rates) describe the hardware and stay put.
  for (size_t c = 0; c < t.clusters_.size(); ++c) {
    int count = 0;
    for (const int cl : t.cluster_of_)
      if (cl == static_cast<int>(c)) ++count;
    t.clusters_[c].nranks = count;
  }
  return t;
}

namespace {

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t mixd(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return mix64(h, bits);
}

}  // namespace

std::uint64_t Topology::signature() const {
  if (single_cluster()) {
    // Indistinguishable from the legacy model iff the node map is the plain
    // contiguous division (restricted_to can break that even for one
    // cluster).
    const int rpn = machine().ranks_per_node;
    bool legacy = true;
    for (int r = 0; r < nranks() && legacy; ++r)
      legacy = node_of_[r] == r / rpn;
    if (legacy) return 0;
  }
  std::uint64_t h = mix64(0x4334444d4du /* "C3DMM" */, nclusters());
  h = mixd(h, link_.alpha);
  h = mixd(h, link_.bandwidth);
  for (const ClusterSpec& c : clusters_) {
    const Machine& m = c.machine;
    h = mix64(h, static_cast<std::uint64_t>(c.nranks));
    h = mix64(h, static_cast<std::uint64_t>(m.ranks_per_node));
    h = mix64(h, m.use_gpu ? 1 : 0);
    h = mix64(h, static_cast<std::uint64_t>(m.threads_per_rank));
    h = mixd(h, m.alpha_inter);
    h = mixd(h, m.alpha_intra);
    h = mixd(h, m.nic_bandwidth);
    h = mixd(h, m.mem_bandwidth);
    h = mixd(h, m.flops_per_core);
    h = mixd(h, m.gpu_flops);
    h = mixd(h, m.pcie_bandwidth);
  }
  for (const int n : node_of_) h = mix64(h, static_cast<std::uint64_t>(n));
  return h == 0 ? 1 : h;
}

double t_p2p_ranks(const Topology& topo, int a, int b, double bytes) {
  if (topo.cluster_of_rank(a) != topo.cluster_of_rank(b))
    return topo.link().alpha + bytes * topo.link().beta();
  const Machine& m = topo.machine_of_rank(a);
  return t_p2p(m, bytes, topo.node_of_rank(a) == topo.node_of_rank(b));
}

}  // namespace ca3dmm::simmpi
