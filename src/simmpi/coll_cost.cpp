#include "simmpi/coll_cost.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"

namespace ca3dmm::simmpi {

GroupProfile GroupProfile::from_world_ranks(const Machine& m,
                                            const std::vector<int>& ranks) {
  CA_ASSERT(!ranks.empty());
  std::unordered_map<int, int> per_node;
  for (int r : ranks) per_node[m.node_of_rank(r)]++;
  GroupProfile g;
  g.size = static_cast<int>(ranks.size());
  g.nodes = static_cast<int>(per_node.size());
  g.max_ranks_per_node = 0;
  for (const auto& [node, cnt] : per_node)
    g.max_ranks_per_node = std::max(g.max_ranks_per_node, cnt);
  g.single_node = (g.nodes == 1);
  return g;
}

LinkParams group_link(const Machine& m, const GroupProfile& g) {
  const double beta_intra = 1.0 / m.intra_rank_bandwidth();
  if (g.single_node || g.size <= 1)
    return LinkParams{m.alpha_intra, beta_intra};
  const double beta_inter = 1.0 / m.inter_rank_bandwidth();
  // Fraction of butterfly traffic that stays inside a node when r of the
  // group's ranks share each node: (r-1)/(p-1).
  const double r = static_cast<double>(g.max_ranks_per_node);
  const double p = static_cast<double>(g.size);
  const double intra_frac = (r - 1.0) / (p - 1.0);
  LinkParams l;
  l.alpha = intra_frac * m.alpha_intra + (1.0 - intra_frac) * m.alpha_inter;
  l.beta = intra_frac * beta_intra + (1.0 - intra_frac) * beta_inter;
  return l;
}

double t_p2p(const Machine& m, double bytes, bool same_node) {
  if (same_node)
    return m.alpha_intra + bytes / m.intra_rank_bandwidth();
  return m.alpha_inter + bytes / m.inter_rank_bandwidth();
}

double t_allgather(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * log2d(p) + l.beta * bytes * (p - 1) / p;
}

double t_broadcast(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (log2d(p) + p - 1) + 2.0 * l.beta * bytes * (p - 1) / p;
}

double t_reduce_scatter(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p;
}

double t_allreduce(const LinkParams& l, double bytes, int p) {
  // Butterfly allreduce = reduce-scatter + allgather.
  return t_reduce_scatter(l, bytes, p) + t_allgather(l, bytes, p);
}

double t_alltoallv(const LinkParams& l, double max_bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (p - 1) + l.beta * max_bytes;
}

double t_reduce_scatter_machine(const Machine& m, const LinkParams& l,
                                double bytes, int p) {
  double t = t_reduce_scatter(l, bytes, p);
  if (p > 1 && bytes / p > m.rs_penalty_threshold_bytes)
    t *= m.rs_penalty_factor;
  return t;
}

double t_alltoallv_machine(const Machine& m, const LinkParams& l,
                           double max_bytes, int p, bool single_node) {
  if (p <= 1) return 0.0;
  if (single_node) return t_alltoallv(l, max_bytes, p);
  return l.alpha * (p - 1) * m.alltoallv_alpha_factor +
         l.beta * max_bytes * m.alltoallv_beta_factor;
}

// ------------------------------------------------------------------
// Schedule-aware costs
// ------------------------------------------------------------------

const char* coll_algo_name(CollAlgo a) {
  switch (a) {
    case CollAlgo::kPaperButterfly: return "butterfly";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kRecursive: return "recursive";
    case CollAlgo::kHierarchical: return "hierarchical";
    case CollAlgo::kAuto: return "auto";
  }
  return "?";
}

double group_inter_frac(const GroupProfile& g) {
  if (g.single_node || g.size <= 1) return 0.0;
  const double r = static_cast<double>(g.max_ranks_per_node);
  const double p = static_cast<double>(g.size);
  return 1.0 - (r - 1.0) / (p - 1.0);
}

namespace {

/// Link between node leaders: one rank per node driving the full NIC share
/// a single rank can claim.
LinkParams leader_link(const Machine& m) {
  return LinkParams{m.alpha_inter,
                    1.0 / (m.nic_bandwidth * m.single_rank_nic_fraction)};
}

LinkParams intra_link(const Machine& m) {
  return LinkParams{m.alpha_intra, 1.0 / m.intra_rank_bandwidth()};
}

/// Can a two-level schedule actually do anything for this group?
bool hierarchy_applies(const GroupProfile& g) {
  return !g.single_node && g.nodes > 1 && g.max_ranks_per_node > 1 &&
         g.size > 1;
}

/// Rounded-up power-of-two size for recursive-doubling bandwidth terms on
/// non-power-of-two groups (Bruck-style dissemination sends ceil rounds).
double pow2_ceil(int p) { return static_cast<double>(1 << (int)log2d(p)); }

/// Root-scatter cost: alpha log2(p) + beta n (p-1)/p (binomial scatter of a
/// size-n buffer), the intra-node tail of the hierarchical reduce-scatter.
double t_scatter(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * log2d(p) + l.beta * bytes * (p - 1) / p;
}

}  // namespace

CollAlgo resolve_coll_algo(CollAlgo configured, const GroupProfile& g,
                           double bytes, i64 small_message_bytes) {
  CollAlgo a = configured;
  if (a == CollAlgo::kAuto) {
    if (hierarchy_applies(g))
      a = CollAlgo::kHierarchical;
    else if (bytes <= static_cast<double>(small_message_bytes))
      a = CollAlgo::kRecursive;
    else
      a = CollAlgo::kPaperButterfly;
  }
  if (a == CollAlgo::kHierarchical && !hierarchy_applies(g))
    a = CollAlgo::kPaperButterfly;  // no two-level structure to exploit
  return a;
}

CollCost coll_allgather_cost(const Machine& m, const GroupProfile& g,
                             const LinkParams& l, CollAlgo a, double bytes,
                             int p) {
  CollCost c;
  c.algo = coll_algo_name(a);
  c.bytes = bytes;
  if (p <= 1) return c;
  switch (a) {
    case CollAlgo::kPaperButterfly:
      c.t = t_allgather(l, bytes, p);
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRing:
      // p-1 rounds, each moving n/p per rank.
      c.t = l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p;
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRecursive: {
      // Recursive doubling: log2 rounds; non-power-of-two groups pay the
      // rounded-up bandwidth term.
      const double q = pow2_ceil(p);
      c.t = l.alpha * log2d(p) + l.beta * bytes * (q - 1) / q;
      c.inter_bytes = bytes * (q - 1) / q * p * group_inter_frac(g);
      break;
    }
    case CollAlgo::kHierarchical: {
      // Gather within each node, allgather the per-node aggregates across
      // the N leaders, broadcast the remote part back inside each node.
      const int N = g.nodes;
      const int r = g.max_ranks_per_node;
      const LinkParams li = intra_link(m);
      c.t = t_allgather(li, bytes / N, r) +
            t_allgather(leader_link(m), bytes, N) +
            t_broadcast(li, bytes * (N - 1) / N, r);
      c.inter_bytes = bytes * (N - 1);  // each node's share crosses once
      break;
    }
    case CollAlgo::kAuto:
      CA_ASSERT(false && "resolve_coll_algo first");
  }
  return c;
}

CollCost coll_reduce_scatter_cost(const Machine& m, const GroupProfile& g,
                                  const LinkParams& l, CollAlgo a,
                                  double bytes, int p, bool custom_tree) {
  CollCost c;
  c.algo = coll_algo_name(a);
  c.bytes = bytes;
  if (p <= 1) return c;
  switch (a) {
    case CollAlgo::kPaperButterfly:
      c.t = custom_tree ? t_reduce_scatter(l, bytes, p)
                        : t_reduce_scatter_machine(m, l, bytes, p);
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      return c;
    case CollAlgo::kRing:
      c.t = l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p;
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRecursive: {
      // Recursive halving: log2 rounds instead of the library's p-1.
      const double q = pow2_ceil(p);
      c.t = l.alpha * log2d(p) + l.beta * bytes * (q - 1) / q;
      c.inter_bytes = bytes * (q - 1) / q * p * group_inter_frac(g);
      break;
    }
    case CollAlgo::kHierarchical: {
      // Reduce-scatter within each node, reduce-scatter the partial sums
      // across the N leaders, scatter each node's slice back to its ranks.
      const int N = g.nodes;
      const int r = g.max_ranks_per_node;
      const LinkParams li = intra_link(m);
      c.t = t_reduce_scatter(li, bytes, r) +
            t_reduce_scatter(leader_link(m), bytes, N) +
            t_scatter(li, bytes / N, r);
      c.inter_bytes = bytes * (N - 1);
      break;
    }
    case CollAlgo::kAuto:
      CA_ASSERT(false && "resolve_coll_algo first");
  }
  // Library-implemented schedules still hit the machine's large-message
  // degradation; application trees (custom_tree) bypass it.
  if (!custom_tree && bytes / p > m.rs_penalty_threshold_bytes)
    c.t *= m.rs_penalty_factor;
  return c;
}

CollCost coll_bcast_cost(const Machine& m, const GroupProfile& g,
                         const LinkParams& l, CollAlgo a, double bytes,
                         int p) {
  CollCost c;
  c.algo = coll_algo_name(a);
  c.bytes = bytes;
  if (p <= 1) return c;
  switch (a) {
    case CollAlgo::kPaperButterfly:
      c.t = t_broadcast(l, bytes, p);
      // Scatter + allgather moves ~2 n (p-1)/p per rank.
      c.inter_bytes = 2.0 * bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRing:
      // Pipelined chunks around a ring.
      c.t = l.alpha * (p - 1) + 2.0 * l.beta * bytes * (p - 1) / p;
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRecursive:
      // Binomial tree: log2(p) full-message hops.
      c.t = log2d(p) * (l.alpha + l.beta * bytes);
      c.inter_bytes = bytes * log2d(p) * group_inter_frac(g);
      break;
    case CollAlgo::kHierarchical: {
      const int N = g.nodes;
      const int r = g.max_ranks_per_node;
      c.t = t_broadcast(leader_link(m), bytes, N) +
            t_broadcast(intra_link(m), bytes, r);
      c.inter_bytes = 2.0 * bytes * (N - 1);
      break;
    }
    case CollAlgo::kAuto:
      CA_ASSERT(false && "resolve_coll_algo first");
  }
  return c;
}

CollCost coll_allreduce_cost(const Machine& m, const GroupProfile& g,
                             const LinkParams& l, CollAlgo a, double bytes,
                             int p) {
  CollCost c;
  c.algo = coll_algo_name(a);
  c.bytes = bytes;
  if (p <= 1) return c;
  switch (a) {
    case CollAlgo::kPaperButterfly:
      c.t = t_allreduce(l, bytes, p);
      c.inter_bytes = 2.0 * bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRing:
      // Ring reduce-scatter + ring allgather.
      c.t = 2.0 * (l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p);
      c.inter_bytes = 2.0 * bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRecursive: {
      // Rabenseifner: recursive-halving RS + recursive-doubling AG.
      const double q = pow2_ceil(p);
      c.t = 2.0 * (l.alpha * log2d(p) + l.beta * bytes * (q - 1) / q);
      c.inter_bytes = 2.0 * bytes * (q - 1) / q * p * group_inter_frac(g);
      break;
    }
    case CollAlgo::kHierarchical: {
      const CollCost rs = coll_reduce_scatter_cost(
          m, g, l, CollAlgo::kHierarchical, bytes, p, /*custom_tree=*/true);
      const CollCost ag =
          coll_allgather_cost(m, g, l, CollAlgo::kHierarchical, bytes, p);
      c.t = rs.t + ag.t;
      c.inter_bytes = rs.inter_bytes + ag.inter_bytes;
      break;
    }
    case CollAlgo::kAuto:
      CA_ASSERT(false && "resolve_coll_algo first");
  }
  return c;
}

}  // namespace ca3dmm::simmpi
