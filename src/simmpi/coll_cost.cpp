#include "simmpi/coll_cost.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"

namespace ca3dmm::simmpi {

GroupProfile GroupProfile::from_world_ranks(const Machine& m,
                                            const std::vector<int>& ranks) {
  CA_ASSERT(!ranks.empty());
  std::unordered_map<int, int> per_node;
  for (int r : ranks) per_node[m.node_of_rank(r)]++;
  GroupProfile g;
  g.size = static_cast<int>(ranks.size());
  g.nodes = static_cast<int>(per_node.size());
  g.max_ranks_per_node = 0;
  for (const auto& [node, cnt] : per_node)
    g.max_ranks_per_node = std::max(g.max_ranks_per_node, cnt);
  g.single_node = (g.nodes == 1);
  return g;
}

LinkParams group_link(const Machine& m, const GroupProfile& g) {
  const double beta_intra = 1.0 / m.intra_rank_bandwidth();
  if (g.single_node || g.size <= 1)
    return LinkParams{m.alpha_intra, beta_intra};
  const double beta_inter = 1.0 / m.inter_rank_bandwidth();
  // Fraction of butterfly traffic that stays inside a node when r of the
  // group's ranks share each node: (r-1)/(p-1).
  const double r = static_cast<double>(g.max_ranks_per_node);
  const double p = static_cast<double>(g.size);
  const double intra_frac = (r - 1.0) / (p - 1.0);
  LinkParams l;
  l.alpha = intra_frac * m.alpha_intra + (1.0 - intra_frac) * m.alpha_inter;
  l.beta = intra_frac * beta_intra + (1.0 - intra_frac) * beta_inter;
  return l;
}

double t_p2p(const Machine& m, double bytes, bool same_node) {
  if (same_node)
    return m.alpha_intra + bytes / m.intra_rank_bandwidth();
  return m.alpha_inter + bytes / m.inter_rank_bandwidth();
}

double t_allgather(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * log2d(p) + l.beta * bytes * (p - 1) / p;
}

double t_broadcast(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (log2d(p) + p - 1) + 2.0 * l.beta * bytes * (p - 1) / p;
}

double t_reduce_scatter(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p;
}

double t_allreduce(const LinkParams& l, double bytes, int p) {
  // Butterfly allreduce = reduce-scatter + allgather.
  return t_reduce_scatter(l, bytes, p) + t_allgather(l, bytes, p);
}

double t_alltoallv(const LinkParams& l, double max_bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (p - 1) + l.beta * max_bytes;
}

double t_reduce_scatter_machine(const Machine& m, const LinkParams& l,
                                double bytes, int p) {
  double t = t_reduce_scatter(l, bytes, p);
  if (p > 1 && bytes / p > m.rs_penalty_threshold_bytes)
    t *= m.rs_penalty_factor;
  return t;
}

double t_alltoallv_machine(const Machine& m, const LinkParams& l,
                           double max_bytes, int p, bool single_node) {
  if (p <= 1) return 0.0;
  if (single_node) return t_alltoallv(l, max_bytes, p);
  return l.alpha * (p - 1) * m.alltoallv_alpha_factor +
         l.beta * max_bytes * m.alltoallv_beta_factor;
}

}  // namespace ca3dmm::simmpi
