#include "simmpi/coll_cost.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/error.hpp"

namespace ca3dmm::simmpi {

namespace {

/// Exact intra-node byte fraction of a flat schedule from the group's node
/// multiset: the probability a random ordered pair of distinct group ranks
/// shares a node. `counts` = ranks per node; `p` = group size.
template <typename Counts>
double multiset_intra_frac(const Counts& counts, int p) {
  if (p <= 1) return 1.0;
  double same_pairs = 0;
  for (const auto& [id, cnt] : counts)
    same_pairs += static_cast<double>(cnt) * (cnt - 1);
  return same_pairs / (static_cast<double>(p) * (p - 1));
}

/// Cost-formula machine of a profile: its first cluster's Machine when the
/// profile is topology-built, else the caller's fallback. Engine and model
/// both pass the cluster-0 anchor as fallback, so the two layers agree on
/// every machine-specific knob (rs penalty, alltoallv derating, leader
/// links) by construction.
const Machine& anchor_machine(const Machine& fallback, const GroupProfile& g) {
  return g.parts.empty() ? fallback : *g.parts.front().mach;
}

/// The contiguous-placement shortcut the pre-fix group_link used; kept only
/// for hand-built profiles that carry no node multiset.
double legacy_intra_frac(const GroupProfile& g) {
  const double r = static_cast<double>(g.max_ranks_per_node);
  const double p = static_cast<double>(g.size);
  return (r - 1.0) / (p - 1.0);
}

double group_intra_frac(const GroupProfile& g) {
  return g.intra_frac >= 0 ? g.intra_frac : legacy_intra_frac(g);
}

}  // namespace

GroupProfile GroupProfile::from_world_ranks(const Machine& m,
                                            const std::vector<int>& ranks) {
  CA_ASSERT(!ranks.empty());
  std::unordered_map<int, int> per_node;
  for (int r : ranks) per_node[m.node_of_rank(r)]++;
  GroupProfile g;
  g.size = static_cast<int>(ranks.size());
  g.nodes = static_cast<int>(per_node.size());
  g.max_ranks_per_node = 0;
  for (const auto& [node, cnt] : per_node)
    g.max_ranks_per_node = std::max(g.max_ranks_per_node, cnt);
  g.single_node = (g.nodes == 1);
  g.intra_frac = multiset_intra_frac(per_node, g.size);
  return g;
}

GroupProfile GroupProfile::from_topology(const Topology& topo,
                                         const std::vector<int>& ranks) {
  CA_ASSERT(!ranks.empty());
  GroupProfile g;
  g.size = static_cast<int>(ranks.size());
  std::map<int, int> per_node;                  // node id -> ranks
  std::map<int, std::map<int, int>> per_clu;    // cluster -> node -> ranks
  for (int r : ranks) {
    per_node[topo.node_of_rank(r)]++;
    per_clu[topo.cluster_of_rank(r)][topo.node_of_rank(r)]++;
  }
  g.nodes = static_cast<int>(per_node.size());
  g.max_ranks_per_node = 0;
  for (const auto& [node, cnt] : per_node)
    g.max_ranks_per_node = std::max(g.max_ranks_per_node, cnt);
  g.single_node = (g.nodes == 1);
  g.intra_frac = multiset_intra_frac(per_node, g.size);
  g.clusters = static_cast<int>(per_clu.size());
  g.inter_alpha = topo.link().alpha;
  g.inter_beta = topo.link().beta();
  std::map<int, int> clu_sizes;
  for (const auto& [clu, nodes] : per_clu) {
    Part pt;
    pt.cluster = clu;
    pt.nodes = static_cast<int>(nodes.size());
    pt.mach = &topo.machine_of_cluster(clu);
    for (const auto& [node, cnt] : nodes) {
      pt.size += cnt;
      pt.max_ranks_per_node = std::max(pt.max_ranks_per_node, cnt);
    }
    pt.intra_frac = multiset_intra_frac(nodes, pt.size);
    clu_sizes[clu] = pt.size;
    g.parts.push_back(pt);
  }
  g.cluster_frac = multiset_intra_frac(clu_sizes, g.size);
  return g;
}

LinkParams group_link(const Machine& m, const GroupProfile& g) {
  const Machine& am = anchor_machine(m, g);
  if (g.clusters > 1) {
    // Three-tier mix for a flat schedule spanning clusters: traffic splits
    // into same-node / same-cluster-cross-node / cross-cluster fractions
    // (pair-counting, like intra_frac); the node and cluster tiers use
    // rank-weighted averages of the member clusters' machine parameters.
    const double p = static_cast<double>(g.size);
    double a_node = 0, b_node = 0, a_clu = 0, b_clu = 0;
    for (const GroupProfile::Part& pt : g.parts) {
      const double w = static_cast<double>(pt.size) / p;
      a_node += w * pt.mach->alpha_intra;
      b_node += w / pt.mach->intra_rank_bandwidth();
      a_clu += w * pt.mach->alpha_inter;
      b_clu += w / pt.mach->inter_rank_bandwidth();
    }
    const double f_node = g.intra_frac;
    const double f_x = 1.0 - g.cluster_frac;
    const double f_clu = std::max(0.0, g.cluster_frac - g.intra_frac);
    LinkParams l;
    l.alpha = f_node * a_node + f_clu * a_clu + f_x * g.inter_alpha;
    l.beta = f_node * b_node + f_clu * b_clu + f_x * g.inter_beta;
    return l;
  }
  const double beta_intra = 1.0 / am.intra_rank_bandwidth();
  if (g.single_node || g.size <= 1)
    return LinkParams{am.alpha_intra, beta_intra};
  const double beta_inter = 1.0 / am.inter_rank_bandwidth();
  // Intra-node byte fraction: the exact node-multiset value when the
  // profile carries one, the contiguous-placement (r-1)/(p-1) shortcut for
  // hand-built profiles.
  const double intra_frac = group_intra_frac(g);
  LinkParams l;
  l.alpha = intra_frac * am.alpha_intra + (1.0 - intra_frac) * am.alpha_inter;
  l.beta = intra_frac * beta_intra + (1.0 - intra_frac) * beta_inter;
  return l;
}

double t_p2p(const Machine& m, double bytes, bool same_node) {
  if (same_node)
    return m.alpha_intra + bytes / m.intra_rank_bandwidth();
  return m.alpha_inter + bytes / m.inter_rank_bandwidth();
}

double t_allgather(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * log2d(p) + l.beta * bytes * (p - 1) / p;
}

double t_broadcast(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (log2d(p) + p - 1) + 2.0 * l.beta * bytes * (p - 1) / p;
}

double t_reduce_scatter(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p;
}

double t_allreduce(const LinkParams& l, double bytes, int p) {
  // Butterfly allreduce = reduce-scatter + allgather.
  return t_reduce_scatter(l, bytes, p) + t_allgather(l, bytes, p);
}

double t_alltoallv(const LinkParams& l, double max_bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * (p - 1) + l.beta * max_bytes;
}

double t_reduce_scatter_machine(const Machine& m, const LinkParams& l,
                                double bytes, int p) {
  double t = t_reduce_scatter(l, bytes, p);
  if (p > 1 && bytes / p > m.rs_penalty_threshold_bytes)
    t *= m.rs_penalty_factor;
  return t;
}

double t_alltoallv_machine(const Machine& m, const LinkParams& l,
                           double max_bytes, int p, bool single_node) {
  if (p <= 1) return 0.0;
  if (single_node) return t_alltoallv(l, max_bytes, p);
  return l.alpha * (p - 1) * m.alltoallv_alpha_factor +
         l.beta * max_bytes * m.alltoallv_beta_factor;
}

// ------------------------------------------------------------------
// Schedule-aware costs
// ------------------------------------------------------------------

const char* coll_algo_name(CollAlgo a) {
  switch (a) {
    case CollAlgo::kPaperButterfly: return "butterfly";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kRecursive: return "recursive";
    case CollAlgo::kHierarchical: return "hierarchical";
    case CollAlgo::kCrossCluster: return "cross-cluster";
    case CollAlgo::kAuto: return "auto";
  }
  return "?";
}

double group_inter_frac(const GroupProfile& g) {
  if (g.single_node || g.size <= 1) return 0.0;
  return 1.0 - group_intra_frac(g);
}

namespace {

/// Link between node leaders: one rank per node driving the full NIC share
/// a single rank can claim.
LinkParams leader_link(const Machine& m) {
  return LinkParams{m.alpha_inter,
                    1.0 / (m.nic_bandwidth * m.single_rank_nic_fraction)};
}

LinkParams intra_link(const Machine& m) {
  return LinkParams{m.alpha_intra, 1.0 / m.intra_rank_bandwidth()};
}

/// Can a two-level schedule actually do anything for this group?
bool hierarchy_applies(const GroupProfile& g) {
  return !g.single_node && g.nodes > 1 && g.max_ranks_per_node > 1 &&
         g.size > 1;
}

/// Rounded-up power-of-two size for recursive-doubling bandwidth terms on
/// non-power-of-two groups (Bruck-style dissemination sends ceil rounds).
double pow2_ceil(int p) { return static_cast<double>(1 << (int)log2d(p)); }

/// Root-scatter cost: alpha log2(p) + beta n (p-1)/p (binomial scatter of a
/// size-n buffer), the intra-node tail of the hierarchical reduce-scatter.
double t_scatter(const LinkParams& l, double bytes, int p) {
  if (p <= 1) return 0.0;
  return l.alpha * log2d(p) + l.beta * bytes * (p - 1) / p;
}

/// Effective link inside one cluster part: the part's machine parameters
/// mixed by the part's own node multiset fraction (the same rule group_link
/// applies to whole single-cluster groups).
LinkParams part_link(const GroupProfile::Part& pt) {
  const Machine& m = *pt.mach;
  const double beta_intra = 1.0 / m.intra_rank_bandwidth();
  if (pt.nodes <= 1 || pt.size <= 1)
    return LinkParams{m.alpha_intra, beta_intra};
  const double beta_inter = 1.0 / m.inter_rank_bandwidth();
  const double f = pt.intra_frac;
  return LinkParams{f * m.alpha_intra + (1.0 - f) * m.alpha_inter,
                    f * beta_intra + (1.0 - f) * beta_inter};
}

/// The inter-cluster leader link of a spanning group.
LinkParams cross_link(const GroupProfile& g) {
  return LinkParams{g.inter_alpha, g.inter_beta};
}

/// Does the cross-cluster two-level schedule apply?
bool cross_cluster_applies(const GroupProfile& g) {
  return g.clusters > 1 && g.size > 1;
}

}  // namespace

CollAlgo resolve_coll_algo(CollAlgo configured, const GroupProfile& g,
                           double bytes, i64 small_message_bytes) {
  CollAlgo a = configured;
  // A group spanning clusters has no single fabric a flat hierarchical
  // schedule could assume; kAuto and both two-level schedules route to the
  // cross-cluster plan (explicit flat schedules keep their formulas, priced
  // on the three-tier mixed link).
  if (cross_cluster_applies(g) &&
      (a == CollAlgo::kAuto || a == CollAlgo::kHierarchical ||
       a == CollAlgo::kCrossCluster))
    return CollAlgo::kCrossCluster;
  if (a == CollAlgo::kCrossCluster) a = CollAlgo::kAuto;  // single cluster
  if (a == CollAlgo::kAuto) {
    if (hierarchy_applies(g))
      a = CollAlgo::kHierarchical;
    else if (bytes <= static_cast<double>(small_message_bytes))
      a = CollAlgo::kRecursive;
    else
      a = CollAlgo::kPaperButterfly;
  }
  if (a == CollAlgo::kHierarchical && !hierarchy_applies(g))
    a = CollAlgo::kPaperButterfly;  // no two-level structure to exploit
  return a;
}

CollCost coll_allgather_cost(const Machine& m, const GroupProfile& g,
                             const LinkParams& l, CollAlgo a, double bytes,
                             int p) {
  CollCost c;
  c.algo = coll_algo_name(a);
  c.bytes = bytes;
  if (p <= 1) return c;
  switch (a) {
    case CollAlgo::kPaperButterfly:
      c.t = t_allgather(l, bytes, p);
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRing:
      // p-1 rounds, each moving n/p per rank.
      c.t = l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p;
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRecursive: {
      // Recursive doubling: log2 rounds; non-power-of-two groups pay the
      // rounded-up bandwidth term.
      const double q = pow2_ceil(p);
      c.t = l.alpha * log2d(p) + l.beta * bytes * (q - 1) / q;
      c.inter_bytes = bytes * (q - 1) / q * p * group_inter_frac(g);
      break;
    }
    case CollAlgo::kHierarchical: {
      // Gather within each node, allgather the per-node aggregates across
      // the N leaders, broadcast the remote part back inside each node.
      const Machine& am = anchor_machine(m, g);
      const int N = g.nodes;
      const int r = g.max_ranks_per_node;
      const LinkParams li = intra_link(am);
      c.t = t_allgather(li, bytes / N, r) +
            t_allgather(leader_link(am), bytes, N) +
            t_broadcast(li, bytes * (N - 1) / N, r);
      c.inter_bytes = bytes * (N - 1);  // each node's share crosses once
      break;
    }
    case CollAlgo::kCrossCluster: {
      // Intra-cluster gather of each cluster's share (each part priced on
      // its own machine), allgather of the aggregates over one leader per
      // cluster on the inter-cluster link, then each cluster broadcasts
      // the remote part internally. The slowest cluster gates each phase.
      double t_in = 0, t_out = 0, part_inter = 0;
      for (const GroupProfile::Part& pt : g.parts) {
        const LinkParams lp = part_link(pt);
        const double share = bytes * pt.size / p;
        t_in = std::max(t_in, t_allgather(lp, share, pt.size));
        t_out = std::max(t_out, t_broadcast(lp, bytes - share, pt.size));
        part_inter += share * (pt.nodes - 1);
      }
      c.t = t_in + t_allgather(cross_link(g), bytes, g.clusters) + t_out;
      c.inter_bytes = bytes * (g.clusters - 1) + part_inter;
      break;
    }
    case CollAlgo::kAuto:
      CA_ASSERT(false && "resolve_coll_algo first");
  }
  return c;
}

CollCost coll_reduce_scatter_cost(const Machine& m, const GroupProfile& g,
                                  const LinkParams& l, CollAlgo a,
                                  double bytes, int p, bool custom_tree) {
  CollCost c;
  c.algo = coll_algo_name(a);
  c.bytes = bytes;
  if (p <= 1) return c;
  const Machine& am = anchor_machine(m, g);
  switch (a) {
    case CollAlgo::kPaperButterfly:
      c.t = custom_tree ? t_reduce_scatter(l, bytes, p)
                        : t_reduce_scatter_machine(am, l, bytes, p);
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      return c;
    case CollAlgo::kRing:
      c.t = l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p;
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRecursive: {
      // Recursive halving: log2 rounds instead of the library's p-1.
      const double q = pow2_ceil(p);
      c.t = l.alpha * log2d(p) + l.beta * bytes * (q - 1) / q;
      c.inter_bytes = bytes * (q - 1) / q * p * group_inter_frac(g);
      break;
    }
    case CollAlgo::kHierarchical: {
      // Reduce-scatter within each node, reduce-scatter the partial sums
      // across the N leaders, scatter each node's slice back to its ranks.
      const int N = g.nodes;
      const int r = g.max_ranks_per_node;
      const LinkParams li = intra_link(am);
      c.t = t_reduce_scatter(li, bytes, r) +
            t_reduce_scatter(leader_link(am), bytes, N) +
            t_scatter(li, bytes / N, r);
      c.inter_bytes = bytes * (N - 1);
      break;
    }
    case CollAlgo::kCrossCluster: {
      // Each cluster reduce-scatters the full vector among its ranks, the
      // cluster leaders reduce-scatter the partials over the inter-cluster
      // link, then each leader scatters its cluster's final slice.
      double t_in = 0, t_out = 0, part_inter = 0;
      for (const GroupProfile::Part& pt : g.parts) {
        const LinkParams lp = part_link(pt);
        const double share = bytes * pt.size / p;
        t_in = std::max(t_in, t_reduce_scatter(lp, bytes, pt.size));
        t_out = std::max(t_out, t_scatter(lp, share, pt.size));
        part_inter += share * (pt.nodes - 1);
      }
      c.t = t_in + t_reduce_scatter(cross_link(g), bytes, g.clusters) + t_out;
      c.inter_bytes = bytes * (g.clusters - 1) + part_inter;
      break;
    }
    case CollAlgo::kAuto:
      CA_ASSERT(false && "resolve_coll_algo first");
  }
  // Library-implemented schedules still hit the machine's large-message
  // degradation; application trees (custom_tree) bypass it.
  if (!custom_tree && bytes / p > am.rs_penalty_threshold_bytes)
    c.t *= am.rs_penalty_factor;
  return c;
}

CollCost coll_bcast_cost(const Machine& m, const GroupProfile& g,
                         const LinkParams& l, CollAlgo a, double bytes,
                         int p) {
  CollCost c;
  c.algo = coll_algo_name(a);
  c.bytes = bytes;
  if (p <= 1) return c;
  switch (a) {
    case CollAlgo::kPaperButterfly:
      c.t = t_broadcast(l, bytes, p);
      // Scatter + allgather moves ~2 n (p-1)/p per rank.
      c.inter_bytes = 2.0 * bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRing:
      // Pipelined chunks around a ring.
      c.t = l.alpha * (p - 1) + 2.0 * l.beta * bytes * (p - 1) / p;
      c.inter_bytes = bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRecursive:
      // Binomial tree: log2(p) full-message hops.
      c.t = log2d(p) * (l.alpha + l.beta * bytes);
      c.inter_bytes = bytes * log2d(p) * group_inter_frac(g);
      break;
    case CollAlgo::kHierarchical: {
      const Machine& am = anchor_machine(m, g);
      const int N = g.nodes;
      const int r = g.max_ranks_per_node;
      c.t = t_broadcast(leader_link(am), bytes, N) +
            t_broadcast(intra_link(am), bytes, r);
      c.inter_bytes = 2.0 * bytes * (N - 1);
      break;
    }
    case CollAlgo::kCrossCluster: {
      // Broadcast across the cluster leaders, then inside every cluster.
      double t_in = 0, part_inter = 0;
      for (const GroupProfile::Part& pt : g.parts) {
        t_in = std::max(t_in, t_broadcast(part_link(pt), bytes, pt.size));
        part_inter += 2.0 * bytes * (pt.nodes - 1) * pt.size / p;
      }
      c.t = t_broadcast(cross_link(g), bytes, g.clusters) + t_in;
      c.inter_bytes = 2.0 * bytes * (g.clusters - 1) + part_inter;
      break;
    }
    case CollAlgo::kAuto:
      CA_ASSERT(false && "resolve_coll_algo first");
  }
  return c;
}

CollCost coll_allreduce_cost(const Machine& m, const GroupProfile& g,
                             const LinkParams& l, CollAlgo a, double bytes,
                             int p) {
  CollCost c;
  c.algo = coll_algo_name(a);
  c.bytes = bytes;
  if (p <= 1) return c;
  switch (a) {
    case CollAlgo::kPaperButterfly:
      c.t = t_allreduce(l, bytes, p);
      c.inter_bytes = 2.0 * bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRing:
      // Ring reduce-scatter + ring allgather.
      c.t = 2.0 * (l.alpha * (p - 1) + l.beta * bytes * (p - 1) / p);
      c.inter_bytes = 2.0 * bytes * (p - 1) * group_inter_frac(g);
      break;
    case CollAlgo::kRecursive: {
      // Rabenseifner: recursive-halving RS + recursive-doubling AG.
      const double q = pow2_ceil(p);
      c.t = 2.0 * (l.alpha * log2d(p) + l.beta * bytes * (q - 1) / q);
      c.inter_bytes = 2.0 * bytes * (q - 1) / q * p * group_inter_frac(g);
      break;
    }
    case CollAlgo::kHierarchical:
    case CollAlgo::kCrossCluster: {
      const CollCost rs =
          coll_reduce_scatter_cost(m, g, l, a, bytes, p, /*custom_tree=*/true);
      const CollCost ag = coll_allgather_cost(m, g, l, a, bytes, p);
      c.t = rs.t + ag.t;
      c.inter_bytes = rs.inter_bytes + ag.inter_bytes;
      break;
    }
    case CollAlgo::kAuto:
      CA_ASSERT(false && "resolve_coll_algo first");
  }
  return c;
}

}  // namespace ca3dmm::simmpi
