// CA3DMM: Communication-Avoiding 3D Matrix Multiplication (paper Alg. 1).
//
// Public entry point of the library. Computes C = op(A) x op(B) for
// distributed dense matrices:
//
//   1. find the 3-D process grid (grid_solver, eqs. 4-7),
//   2. redistribute A and B from the caller's distributions to the
//      library-native initial distributions (transposes applied here),
//   3. all-gather the replicated operand inside each k-task group (c > 1),
//   4. run Cannon's algorithm (or SUMMA) per Cannon group,
//   5. reduce-scatter the pk partial C results,
//   6. redistribute C to the caller's distribution.
//
// All steps run on a simmpi communicator and charge virtual time per phase;
// work buffers are TrackedBuffers, so per-rank peak memory matches what the
// paper's Table I measures.
//
// Execution options (inner engine, multi-shift aggregation) are read from
// the plan itself (Ca3dmmPlan::options()): a plan can never be executed with
// options other than the ones that shaped its grid.
//
// Two execution modes:
//   * one-shot ca3dmm_multiply — splits the per-plan communicators on every
//     call (the historical behavior);
//   * ca3dmm_multiply with a PlanComms — reuses communicators split once by
//     PlanComms::make, eliminating the per-call split latency. This is the
//     building block of the persistent engine (src/engine).
#pragma once

#include "core/engine2d.hpp"
#include "core/plan.hpp"
#include "layout/redistribute.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm {

/// The split communicators one plan's execution uses, created once and
/// reusable across any number of multiplications with that plan.
///
/// Per-rank contents (world rank `r`, coordinate co = plan.coord(r)):
///   * active — the plan.active() working ranks (invalid on idle ranks),
///   * cannon — co's s x s Cannon group (invalid on idle ranks),
///   * repl   — the c replication peers sharing co's (gk, i, j) across
///              Cannon groups (valid only when plan.c() > 1),
///   * reduce — the pk k-task peers sharing co's (gc, i, j) (valid only
///              when plan.grid().pk > 1).
struct PlanComms {
  simmpi::Comm active;
  simmpi::Comm cannon;
  simmpi::Comm repl;
  simmpi::Comm reduce;

  /// Splits all communicators for `plan`. Collective over `world`, which
  /// must span exactly plan.nranks() ranks. Charges the split setup cost
  /// once; executions through the returned object charge none.
  static PlanComms make(simmpi::Comm& world, const Ca3dmmPlan& plan);
};

/// Computes C = op(A) x op(B) with op fixed by trans_a / trans_b.
///
/// `plan` must be built with Ca3dmmPlan::make(m, n, k, world.size(), opt)
/// where (m, n, k) are the dimensions of the *logical* product, i.e. op(A)
/// is m x k and op(B) is k x n.
///
/// `a_layout` describes the stored A over world.size() ranks: (m x k) when
/// !trans_a, (k x m) when trans_a; `a_local` is this rank's local data.
/// Similarly for B. `c_layout` is the desired distribution of the m x n
/// result; `c_local` must have c_layout.local_size(rank) elements.
///
/// Collective over `world`. Ranks beyond plan.active() only take part in the
/// redistribution steps (paper Alg. 1 step 2).
template <typename T>
void ca3dmm_multiply(simmpi::Comm& world, const Ca3dmmPlan& plan, bool trans_a,
                     bool trans_b, const BlockLayout& a_layout,
                     const T* a_local, const BlockLayout& b_layout,
                     const T* b_local, const BlockLayout& c_layout, T* c_local);

/// Same computation executed over pre-split communicators (`comms` from
/// PlanComms::make with the same plan): no split latency is charged. Results
/// are bit-identical to the one-shot overload.
template <typename T>
void ca3dmm_multiply(simmpi::Comm& world, const Ca3dmmPlan& plan,
                     PlanComms& comms, bool trans_a, bool trans_b,
                     const BlockLayout& a_layout, const T* a_local,
                     const BlockLayout& b_layout, const T* b_local,
                     const BlockLayout& c_layout, T* c_local);

/// Convenience wrapper: plans with `opt` and multiplies.
template <typename T>
Ca3dmmPlan ca3dmm_multiply(simmpi::Comm& world, i64 m, i64 n, i64 k,
                           bool trans_a, bool trans_b,
                           const BlockLayout& a_layout, const T* a_local,
                           const BlockLayout& b_layout, const T* b_local,
                           const BlockLayout& c_layout, T* c_local,
                           const Ca3dmmOptions& opt = {}) {
  Ca3dmmPlan plan = Ca3dmmPlan::make(m, n, k, world.size(), opt);
  ca3dmm_multiply<T>(world, plan, trans_a, trans_b, a_layout, a_local,
                     b_layout, b_local, c_layout, c_local);
  return plan;
}

}  // namespace ca3dmm
