#include "core/engine2d.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "resilience/abft.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {

using simmpi::Comm;
using simmpi::Phase;
using simmpi::PhaseScope;
using simmpi::TrackedBuffer;

namespace {

// Tags spaced far apart; shift steps reuse one tag per direction (the
// per-channel FIFO keeps successive steps ordered).
constexpr int kTagShiftA = 101;
constexpr int kTagShiftB = 201;
constexpr int kTagSkewA = 301;
constexpr int kTagSkewB = 401;

inline int grid_rank(int s, int i, int j) { return j * s + i; }
inline int wrap(int v, int s) { return ((v % s) + s) % s; }

/// Elements on the wire for a tile of `payload` elements: the payload alone,
/// or payload + ABFT checksum trailer when protection is on.
template <typename T>
i64 msg_elems(bool abft, i64 payload) {
  return abft ? resilience::abft_msg_elems<T>(payload) : payload;
}

/// Writes the checksum trailer behind buf's payload and charges the encode
/// scan (one linear pass over the payload; the staging memcpy of the skew is
/// folded into the same scan). The cost model mirrors this charge.
template <typename T>
void abft_send_prep(Comm& grid, T* buf, i64 payload) {
  resilience::abft_encode_msg<T>(buf, payload);
  grid.charge_local_work(static_cast<double>(payload) * sizeof(T));
}

/// Charges the decode scan and verifies a received message, correcting a
/// single corrupted payload byte in place. Multi-byte corruption raises —
/// detection never silently degrades to a wrong C block.
template <typename T>
void abft_recv_check(Comm& grid, T* buf, i64 payload, const char* what) {
  grid.charge_local_work(static_cast<double>(payload) * sizeof(T));
  const resilience::AbftDecodeResult res =
      resilience::abft_decode_msg<T>(buf, payload);
  if (res.outcome == resilience::AbftOutcome::kUncorrectable)
    throw Error(strprintf(
        "abft: uncorrectable corruption in %s message on grid rank %d "
        "(payload %lld elements)",
        what, grid.rank(), static_cast<long long>(payload)));
  if (res.outcome != resilience::AbftOutcome::kClean)
    simmpi::current_ctx()->stats.abft_corrected++;
}

}  // namespace

template <typename T>
void cannon_2d(Comm& grid, const Engine2dShape& sh, const T* a_block,
               const T* b_block, T* c_partial, i64 min_kblk,
               const ReleaseInputsFn& release_inputs) {
  const int s = sh.s, i = sh.i, j = sh.j;
  CA_ASSERT(grid.size() == s * s);
  CA_ASSERT(grid.rank() == grid_rank(s, i, j));
  CA_ASSERT(static_cast<int>(sh.kpart_sizes.size()) == s);

  auto kpart = [&](int t) { return sh.kpart_sizes[static_cast<size_t>(wrap(t, s))]; };

  if (s == 1) {
    // Degenerate Cannon: one local GEMM, nothing to communicate.
    const i64 kb = kpart(0);
    PhaseScope ps(grid, Phase::kCompute);
    gemm_blocked<T>(false, false, sh.mb, sh.nb, kb, T{1}, a_block, kb, b_block,
                    sh.nb, c_partial, sh.nb);
    grid.charge_compute(gemm_flops(sh.mb, sh.nb, kb),
                        gemm_bytes(sh.mb, sh.nb, kb, sizeof(T)));
    if (release_inputs) release_inputs();
    return;
  }

  const bool abft = sh.abft;
  const i64 kb_max = sh.kb_max();
  TrackedBuffer<T> a_cur(msg_elems<T>(abft, sh.mb * kb_max));
  TrackedBuffer<T> b_cur(msg_elems<T>(abft, kb_max * sh.nb));

  // ---- initial skew (paper §III-B): afterwards this process holds
  // A k-part (i + j) and B k-part (i + j). ----
  {
    PhaseScope ps(grid, Phase::kShift);
    if (!abft) {
      // A: row i shifts left by i; send to (i, j-i), receive from (i, j+i).
      grid.sendrecv(a_block, sh.mb * kpart(j), grid_rank(s, i, wrap(j - i, s)),
                    a_cur.data(), sh.mb * kpart(j + i),
                    grid_rank(s, i, wrap(j + i, s)), kTagSkewA);
      // B: column j shifts up by j; send to (i-j, j), receive from (i+j, j).
      grid.sendrecv(b_block, kpart(i) * sh.nb, grid_rank(s, wrap(i - j, s), j),
                    b_cur.data(), kpart(i + j) * sh.nb,
                    grid_rank(s, wrap(i + j, s), j), kTagSkewB);
    } else {
      // The input blocks are const, so the outgoing skew message is staged
      // to make room for its trailer; the staging buffer dies with the
      // block, before the dual buffers are allocated.
      {
        const i64 pa_s = sh.mb * kpart(j), pa_r = sh.mb * kpart(j + i);
        TrackedBuffer<T> stage(msg_elems<T>(true, pa_s));
        std::memcpy(stage.data(), a_block,
                    static_cast<size_t>(pa_s) * sizeof(T));
        abft_send_prep(grid, stage.data(), pa_s);
        grid.sendrecv(stage.data(), msg_elems<T>(true, pa_s),
                      grid_rank(s, i, wrap(j - i, s)), a_cur.data(),
                      msg_elems<T>(true, pa_r),
                      grid_rank(s, i, wrap(j + i, s)), kTagSkewA);
        abft_recv_check(grid, a_cur.data(), pa_r, "Cannon A-skew");
      }
      {
        const i64 pb_s = kpart(i) * sh.nb, pb_r = kpart(i + j) * sh.nb;
        TrackedBuffer<T> stage(msg_elems<T>(true, pb_s));
        std::memcpy(stage.data(), b_block,
                    static_cast<size_t>(pb_s) * sizeof(T));
        abft_send_prep(grid, stage.data(), pb_s);
        grid.sendrecv(stage.data(), msg_elems<T>(true, pb_s),
                      grid_rank(s, wrap(i - j, s), j), b_cur.data(),
                      msg_elems<T>(true, pb_r),
                      grid_rank(s, wrap(i + j, s), j), kTagSkewB);
        abft_recv_check(grid, b_cur.data(), pb_r, "Cannon B-skew");
      }
    }
  }
  // The skew moved the inputs into the shift buffers; the source blocks are
  // dead from here on. The second (dual) buffer pair is only allocated now,
  // so the peak stays at eq. (11)'s two-buffer footprint.
  if (release_inputs) release_inputs();
  TrackedBuffer<T> a_nxt(msg_elems<T>(abft, sh.mb * kb_max));
  TrackedBuffer<T> b_nxt(msg_elems<T>(abft, kb_max * sh.nb));

  // ---- aggregation buffers (multi-shift optimization, paper §III-F) ----
  const i64 kb_total = sh.kb_total();
  const bool aggregate = min_kblk > 0 && kb_max < min_kblk && s > 1;
  const i64 agg_cap =
      aggregate ? std::min(kb_total, min_kblk + kb_max) : 0;
  TrackedBuffer<T> agg_a(aggregate ? sh.mb * agg_cap : 0);
  TrackedBuffer<T> agg_b(aggregate ? agg_cap * sh.nb : 0);
  i64 agg_k = 0;

  bool c_staged = false;  // the GPU device keeps C resident across steps
  auto step_bytes = [&](i64 kw) {
    const double b = gemm_operand_bytes(sh.mb, sh.nb, kw, sizeof(T)) +
                     (c_staged ? 0.0 : gemm_result_bytes(sh.mb, sh.nb, sizeof(T)));
    c_staged = true;
    return b;
  };
  const int left = grid_rank(s, i, wrap(j - 1, s));
  const int right = grid_rank(s, i, wrap(j + 1, s));
  const int up = grid_rank(s, wrap(i - 1, s), j);
  const int down = grid_rank(s, wrap(i + 1, s), j);

  // Overlap budget accumulates across shifts until the next GEMM flush:
  // with aggregation, the appended panels free the shift buffers
  // immediately, so several steps' transfers pipeline into one aggregated
  // GEMM. The final step has nothing in flight.
  double overlap_budget = 0;
  for (int t = 0; t < s; ++t) {
    const i64 kb = kpart(i + j + t);     // current k-part extent
    const i64 kb_next = kpart(i + j + t + 1);
    if (t < s - 1) {
      PhaseScope ps(grid, Phase::kShift);
      if (abft) abft_send_prep(grid, a_cur.data(), sh.mb * kb);
      grid.sendrecv(a_cur.data(), msg_elems<T>(abft, sh.mb * kb), left,
                    a_nxt.data(), msg_elems<T>(abft, sh.mb * kb_next), right,
                    kTagShiftA);
      if (sh.overlap) overlap_budget += grid.last_op_cost();
      if (abft)
        abft_recv_check(grid, a_nxt.data(), sh.mb * kb_next, "Cannon A-shift");
      if (abft) abft_send_prep(grid, b_cur.data(), kb * sh.nb);
      grid.sendrecv(b_cur.data(), msg_elems<T>(abft, kb * sh.nb), up,
                    b_nxt.data(), msg_elems<T>(abft, kb_next * sh.nb), down,
                    kTagShiftB);
      if (sh.overlap) overlap_budget += grid.last_op_cost();
      if (abft)
        abft_recv_check(grid, b_nxt.data(), kb_next * sh.nb, "Cannon B-shift");
    }
    if (aggregate) {
      // Append the current panels; run one GEMM once enough k accumulated.
      for (i64 r = 0; r < sh.mb; ++r)
        std::memcpy(agg_a.data() + r * agg_cap + agg_k, a_cur.data() + r * kb,
                    static_cast<size_t>(kb) * sizeof(T));
      std::memcpy(agg_b.data() + agg_k * sh.nb, b_cur.data(),
                  static_cast<size_t>(kb * sh.nb) * sizeof(T));
      agg_k += kb;
      if (agg_k >= min_kblk || t == s - 1) {
        PhaseScope ps(grid, Phase::kCompute);
        gemm_blocked<T>(false, false, sh.mb, sh.nb, agg_k, T{1}, agg_a.data(),
                        agg_cap, agg_b.data(), sh.nb, c_partial, sh.nb);
        grid.charge_compute_overlap_budget(gemm_flops(sh.mb, sh.nb, agg_k),
                                           step_bytes(agg_k), overlap_budget);
        overlap_budget = 0;
        agg_k = 0;
      }
    } else {
      PhaseScope ps(grid, Phase::kCompute);
      gemm_blocked<T>(false, false, sh.mb, sh.nb, kb, T{1}, a_cur.data(), kb,
                      b_cur.data(), sh.nb, c_partial, sh.nb);
      grid.charge_compute_overlap_budget(gemm_flops(sh.mb, sh.nb, kb),
                                         step_bytes(kb), overlap_budget);
      overlap_budget = 0;
    }
    a_cur.swap(a_nxt);
    b_cur.swap(b_nxt);
  }
}

template <typename T>
void summa_2d(Comm& grid, const Engine2dShape& sh, const T* a_block,
              const T* b_block, T* c_partial,
              const ReleaseInputsFn& release_inputs) {
  const int s = sh.s, i = sh.i, j = sh.j;
  CA_ASSERT(grid.size() == s * s);
  CA_ASSERT(grid.rank() == grid_rank(s, i, j));

  if (s == 1) {
    const i64 kb = sh.kpart_sizes[0];
    PhaseScope ps(grid, Phase::kCompute);
    gemm_blocked<T>(false, false, sh.mb, sh.nb, kb, T{1}, a_block, kb, b_block,
                    sh.nb, c_partial, sh.nb);
    grid.charge_compute(gemm_flops(sh.mb, sh.nb, kb),
                        gemm_bytes(sh.mb, sh.nb, kb, sizeof(T)));
    if (release_inputs) release_inputs();
    return;
  }

  // Row communicator (fixed i, varying j) and column communicator.
  Comm row = grid.split(i, j);
  Comm col = grid.split(s + j, i);  // color offset keeps the call symmetric

  const i64 kb_max = sh.kb_max();
  TrackedBuffer<T> a_panel(sh.mb * kb_max);
  TrackedBuffer<T> b_panel(kb_max * sh.nb);

  bool c_staged = false;  // the GPU device keeps C resident across steps
  auto step_bytes = [&](i64 kw) {
    const double b = gemm_operand_bytes(sh.mb, sh.nb, kw, sizeof(T)) +
                     (c_staged ? 0.0 : gemm_result_bytes(sh.mb, sh.nb, sizeof(T)));
    c_staged = true;
    return b;
  };
  for (int t = 0; t < s; ++t) {
    const i64 kb = sh.kpart_sizes[static_cast<size_t>(t)];
    double overlap_budget = 0;
    {
      PhaseScope ps(grid, Phase::kShift);
      // Owner of A(i, k-part t) is (i, t); of B(k-part t, j) is (t, j).
      if (j == t && kb > 0)
        std::memcpy(a_panel.data(), a_block,
                    static_cast<size_t>(sh.mb * kb) * sizeof(T));
      row.bcast(a_panel.data(), sh.mb * kb, t);
      if (sh.overlap) overlap_budget = grid.last_op_cost();
      if (i == t && kb > 0)
        std::memcpy(b_panel.data(), b_block,
                    static_cast<size_t>(kb * sh.nb) * sizeof(T));
      col.bcast(b_panel.data(), kb * sh.nb, t);
      if (sh.overlap) overlap_budget += grid.last_op_cost();
    }
    PhaseScope ps(grid, Phase::kCompute);
    gemm_blocked<T>(false, false, sh.mb, sh.nb, kb, T{1}, a_panel.data(), kb,
                    b_panel.data(), sh.nb, c_partial, sh.nb);
    // SUMMA pipelines the next panel broadcast with the current update.
    grid.charge_compute_overlap_budget(gemm_flops(sh.mb, sh.nb, kb),
                                       step_bytes(kb), overlap_budget);
  }
  if (release_inputs) release_inputs();
}

template void cannon_2d<float>(Comm&, const Engine2dShape&, const float*,
                               const float*, float*, i64,
                               const ReleaseInputsFn&);
template void cannon_2d<double>(Comm&, const Engine2dShape&, const double*,
                                const double*, double*, i64,
                                const ReleaseInputsFn&);
template void summa_2d<float>(Comm&, const Engine2dShape&, const float*,
                              const float*, float*, const ReleaseInputsFn&);
template void summa_2d<double>(Comm&, const Engine2dShape&, const double*,
                               const double*, double*, const ReleaseInputsFn&);

}  // namespace ca3dmm
