// 3-D process grid selection (paper §III-A/§III-B).
//
// CA3DMM enumerates all grids p_m x p_k x p_n and picks the one minimizing
// the total subdomain surface area
//
//     S_total = 2 (p_m k n + p_n m k + p_k m n)                       (4)
//
// subject to
//
//     floor(l P) <= p_m p_k p_n <= P                                  (5)
//     mod(max(p_m, p_n), min(p_m, p_n)) == 0                          (7)
//
// with the sub-target of maximizing p_m p_k p_n (6) at lower priority.
// Constraint (7) is what lets each k-task group be covered by c = max/min
// square Cannon groups; it is dropped for the SUMMA-based variant and for
// the COSMA-like baseline.
#pragma once

#include <optional>
#include <vector>

#include "common/partition.hpp"

namespace ca3dmm {

/// A 3-D process grid: pm x pn x pk processes along m / n / k.
struct ProcGrid {
  int pm = 1;
  int pn = 1;
  int pk = 1;

  int active() const { return pm * pn * pk; }
  /// Cannon-group replication factor c = max(pm,pn)/min(pm,pn) (paper eq. 8).
  int c() const { return pm > pn ? pm / pn : pn / pm; }
  /// Cannon grid size s = min(pm, pn).
  int s() const { return pm < pn ? pm : pn; }
  /// True iff A must be replicated across Cannon groups (pn > pm);
  /// otherwise B is the replicated operand when c > 1.
  bool replicates_a() const { return pn > pm; }

  friend bool operator==(const ProcGrid&, const ProcGrid&) = default;
};

/// Exact total surface (eq. 4) evaluated with real block sizes: uses
/// ceil-based block extents so that grids larger than a dimension are
/// penalized correctly.
double grid_surface(i64 m, i64 n, i64 k, const ProcGrid& g);

struct GridOptions {
  /// Utilization lower bound l of constraint (5); the paper uses 0.95.
  double l = 0.95;
  /// Enforce the Cannon compatibility constraint (7).
  bool cannon_compatible = true;
  /// Optional per-process memory budget in elements (0 = unlimited). The
  /// paper's §V discusses "controlling the usage of extra memory in CA3DMM
  /// while minimizing communication costs" and proposes reducing the number
  /// of k-task groups; this implements that: only grids whose eq.-(11)
  /// working set fits the budget are considered, which pushes the solver
  /// toward 2-D (small p_k, small c) grids as the budget tightens.
  i64 max_memory_elems = 0;
  /// Weight of communicated elements against flops in the grid objective.
  /// The paper's stated objective is pure surface minimization (4), but the
  /// grids its implementation reports (Tables II/III) are only consistent
  /// with an objective that also values utilization: idling 5% of processes
  /// to shave 1% of communication is never chosen. Minimizing
  ///     mnk/active + ratio * per_process_surface
  /// reproduces every verifiable paper grid for ratio in (47, 200); 100 is
  /// the midpoint and roughly the flops-per-transferred-element balance of
  /// the paper's testbed.
  double flop_word_ratio = 100.0;

  friend bool operator==(const GridOptions&, const GridOptions&) = default;
};

/// The solver's objective for one grid: estimated per-process cost in flop
/// units, mnk/active + flop_word_ratio * per-process surface (ceil-based
/// block extents). Exposed for tests and for the baselines' grid choosers.
double grid_objective(i64 m, i64 n, i64 k, const ProcGrid& g,
                      double flop_word_ratio = 100.0);

/// Paper eq. (11): per-process working-set estimate of CA3DMM on this grid,
/// in elements — 2(c mk + kn)/P_active + p_k mn/P_active for the
/// A-replicated orientation, symmetric otherwise. Used by the
/// memory-constrained solver mode (the paper's §V first open problem).
double grid_memory_elems(i64 m, i64 n, i64 k, const ProcGrid& g);

/// Finds the optimal or near-optimal grid for a (m x k) x (k x n) product on
/// P processes. Deterministic; ties are broken by (larger active process
/// count, smaller surface with exact block sizes, smaller pk, smaller c,
/// smaller pm).
ProcGrid find_grid(i64 m, i64 n, i64 k, int P, const GridOptions& opt = {});

/// Up to `count` distinct feasible grids ranked by the solver's fitness,
/// best first — candidates[0] is exactly find_grid()'s choice. This is the
/// auto-tuner's search neighbourhood around the eq.-solver optimum: the
/// solver's objective is a flops-per-word heuristic, so grids it ranks
/// second or third (different replication factor c, different pk) can win
/// under the full per-phase cost model (costmodel::predict) on a concrete
/// machine. Deterministic; same constraints (utilization, Cannon
/// compatibility, memory budget) as find_grid.
std::vector<ProcGrid> find_grid_candidates(i64 m, i64 n, i64 k, int P,
                                           int count,
                                           const GridOptions& opt = {});

/// COSMA-style grid (paper §III-C): same enumeration without constraint (7),
/// matching "find p_m x p_k x p_n s.t. m/p_m ~ k/p_k ~ n/p_n".
ProcGrid find_grid_cosma(i64 m, i64 n, i64 k, int P, double l = 0.95);

/// CTF-style grid: the 2.5D algorithm's chooser. Picks the largest
/// replication depth p_k = c such that P/c is a perfect square (falling back
/// to c = 1 and the largest square grid <= P), mirroring CTF's cyclic
/// processor-grid folding, which is often far from GEMM-optimal for
/// non-square problems (paper §IV-A).
ProcGrid find_grid_ctf(i64 m, i64 n, i64 k, int P);

}  // namespace ca3dmm
