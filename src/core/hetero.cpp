#include "core/hetero.hpp"

#include <algorithm>

namespace ca3dmm {

using simmpi::Topology;

bool grid_aligned_with_clusters(const Topology& topo, const ProcGrid& g) {
  const int gsz = g.pm * g.pn;
  const int active = std::min(g.active(), topo.nranks());
  // Cluster boundaries are cumulative rank counts (clusters own contiguous
  // rank ranges); a boundary strictly inside the active range must fall on
  // a k-task-group boundary.
  int cum = 0;
  for (int c = 0; c < topo.nclusters(); ++c) {
    cum += topo.cluster(c).nranks;
    if (cum >= active) break;
    if (cum % gsz != 0) return false;
  }
  return true;
}

std::vector<double> k_group_weights(const Topology& topo, const ProcGrid& g) {
  const int gsz = g.pm * g.pn;
  std::vector<double> w(static_cast<size_t>(g.pk), 0.0);
  for (int gk = 0; gk < g.pk; ++gk) {
    double slowest = 0;
    for (int r = gk * gsz; r < (gk + 1) * gsz; ++r) {
      const double f =
          topo.machine_of_rank(std::min(r, topo.nranks() - 1)).rank_flops();
      slowest = gk * gsz == r ? f : std::min(slowest, f);
    }
    w[static_cast<size_t>(gk)] = slowest;
  }
  return w;
}

Ca3dmmOptions make_hetero_options(const Topology& topo, i64 m, i64 n, i64 k,
                                  int P, const GridOptions& grid) {
  CA_REQUIRE(P >= 1 && P <= topo.nranks(),
             "make_hetero_options: P=%d outside [1, %d]", P, topo.nranks());
  Ca3dmmOptions opt;
  opt.grid = grid;
  if (topo.single_cluster()) return opt;  // homogeneous: nothing to weight

  // Prefer a grid whose k-task groups align with the cluster boundaries, so
  // every group is priced (and weighted) by exactly one machine. The
  // solver's best candidate wins ties; misaligned fallback still benefits
  // from min-rate weighting, just less sharply.
  const std::vector<ProcGrid> cands = find_grid_candidates(m, n, k, P, 32, grid);
  CA_REQUIRE(!cands.empty(), "no feasible grid for m=%lld n=%lld k=%lld P=%d",
             static_cast<long long>(m), static_cast<long long>(n),
             static_cast<long long>(k), P);
  const ProcGrid* pick = nullptr;
  for (const ProcGrid& g : cands)
    if (g.pk > 1 && grid_aligned_with_clusters(topo, g)) {
      pick = &g;
      break;
    }
  if (pick == nullptr) pick = &cands.front();
  opt.force_grid = *pick;

  std::vector<double> w = k_group_weights(topo, *pick);
  const bool uniform =
      std::all_of(w.begin(), w.end(), [&](double x) { return x == w[0]; });
  if (!uniform) opt.k_weights = std::move(w);
  return opt;
}

}  // namespace ca3dmm
