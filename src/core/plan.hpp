// CA3DMM execution plan (paper §III-B, Algorithm 1).
//
// A plan fixes, for a given (m, n, k, P):
//   * the 3-D process grid pm x pn x pk (grid_solver),
//   * the decomposition of the active processes into pk k-task groups of
//     pm x pn processes, each covered by c = max(pm,pn)/min(pm,pn) Cannon
//     groups of s^2 processes (s = min(pm,pn)),
//   * the library-native initial distributions of A and B and the final
//     distribution of C (the distributions of paper Fig. 2),
//   * the block ranges every phase works on.
//
// Rank organization is "column-major" (paper §III-B): processes of the same
// k-task group and the same Cannon group have contiguous world ranks; within
// a Cannon group, rank index q = j*s + i (i = Cannon row, fastest).
//
// Replication granularity: the replicas of a pre-skew Cannon block of the
// replicated operand are the c processes with the same (i, j) across the c
// Cannon groups of a k-task group; each initially stores a 1/c slice of the
// block, split along the k dimension, and an all-gather over those c
// processes reconstructs the full block (paper §III-B). This is the scheme
// consistent with the paper's storage analysis (eq. 11): every process
// initially holds exactly (mk + kn)/P elements of A and B.
//
// Note: the prose of the paper's Example 1 describes replication at
// whole-k-panel granularity, which contradicts eq. (11)'s initial-storage
// accounting by a factor of c; we implement the eq.-(11)-consistent scheme.
#pragma once

#include <optional>
#include <vector>

#include "core/grid_solver.hpp"
#include "layout/block_layout.hpp"
#include "simmpi/coll_cost.hpp"

namespace ca3dmm {

/// User-facing algorithm options.
struct Ca3dmmOptions {
  GridOptions grid{};
  /// Inner 2-D engine: Cannon (paper default) or SUMMA (§III-E ablation).
  bool use_summa = false;
  /// Multi-shift aggregation: Cannon accumulates shifted panels until their
  /// combined k extent reaches this value before running one local GEMM
  /// (paper §III-F "we perform multiple shifts for one local matrix
  /// multiplication if A and B blocks ... do not have a large enough
  /// k-dimension size").
  i64 min_kblk = 192;
  /// Overrides the solver's grid (Table II experiments).
  std::optional<ProcGrid> force_grid{};
  /// Collective schedules for the replication all-gather and the partial-C
  /// reduce-scatter — the two collectives that dominate CA3DMM's
  /// communication (§III-D). Unset (the default) leaves the communicators
  /// on whatever the cluster/world configuration says, i.e. the paper's
  /// butterfly model; setting it overrides the repl/reduce communicators on
  /// every call. The cost model honors Workload::coll at the same two
  /// spots, keeping prediction and execution consistent by construction.
  std::optional<simmpi::CollectiveConfig> coll{};
  /// Protect the Cannon point-to-point traffic (skews and circular shifts)
  /// with ABFT checksum trailers (resilience/abft.hpp): any single byte
  /// corrupted in transit — what FaultPlan::FlipPayload injects — is
  /// corrected in place, and multi-byte corruption raises an error instead
  /// of silently producing a wrong C. Adds O(log payload) bytes per message
  /// plus one encode/decode scan per side, priced by the cost model. No-op
  /// for the SUMMA engine (collectives carry its panels, and the fault
  /// injector only corrupts point-to-point messages).
  bool abft = false;
  /// Dual-buffer communication/computation overlap in the 2-D engine
  /// (Cannon shifts and SUMMA panel broadcasts pipelined behind the local
  /// GEMM). On — the paper's behaviour — by default; the tuner searches
  /// both settings because overlap costs memory bandwidth the GEMM also
  /// wants (Machine::overlap_efficiency) and the cost model prices the
  /// trade both ways.
  bool overlap = true;
  /// Per-k-task-group compute weights for heterogeneous topologies: entry
  /// gk sizes k-task group gk's k slice proportionally (weights need not be
  /// normalized). Empty (the default) = the homogeneous equal split. Must
  /// be empty or have exactly pk positive entries; use
  /// make_hetero_options (core/hetero.hpp) to derive them from a Topology.
  /// Affects only the k partitioning — the m/n block ranges and the Cannon
  /// structure inside each k-task group are unchanged, so the computed C is
  /// bit-identical to the unweighted plan's.
  std::vector<double> k_weights{};

  /// Member-wise equality: plans built from equal options on equal problem
  /// dimensions are interchangeable, which is what the engine's plan cache
  /// keys on.
  friend bool operator==(const Ca3dmmOptions&, const Ca3dmmOptions&) = default;
};

/// Placement of one world rank in the CA3DMM topology.
struct RankCoord {
  bool active = false;
  int gk = 0;  ///< k-task group index in [0, pk)
  int gc = 0;  ///< Cannon group index within the k-task group, in [0, c)
  int i = 0;   ///< Cannon grid row in [0, s)
  int j = 0;   ///< Cannon grid column in [0, s)
  int I = 0;   ///< global m-block index in [0, pm)
  int J = 0;   ///< global n-block index in [0, pn)
};

class Ca3dmmPlan {
 public:
  Ca3dmmPlan() = default;

  i64 m() const { return m_; }
  i64 n() const { return n_; }
  i64 k() const { return k_; }
  int nranks() const { return nranks_; }
  /// The options this plan was built with. Execution reads them from here
  /// (use_summa, min_kblk), so a plan can never be run with options other
  /// than the ones that shaped its grid.
  const Ca3dmmOptions& options() const { return opt_; }
  const ProcGrid& grid() const { return grid_; }
  int active() const { return grid_.active(); }
  int c() const { return grid_.c(); }
  int s() const { return grid_.s(); }
  /// True if A is the replicated operand (pn > pm); else B is (when c > 1).
  bool replicates_a() const { return grid_.replicates_a(); }

  RankCoord coord(int world_rank) const;
  /// Inverse of coord() for active ranks.
  int rank_of(int gk, int gc, int i, int j) const;

  // ---- block ranges ----
  Range m_range(int I) const { return block_range(m_, grid_.pm, I); }
  Range n_range(int J) const { return block_range(n_, grid_.pn, J); }
  /// k-range of k-task group gk (paper: each group computes a
  /// rank-(k/pk) update). With Ca3dmmOptions::k_weights set, group gk's
  /// slice is proportional to its weight (cumulative rounding, so slices
  /// tile [0, k) exactly); kpart/ksub and the native layouts all derive
  /// from this range, so the weighting propagates through the whole plan.
  Range k_range(int gk) const;
  /// Cannon k-part t (in [0, s)) of k-task group gk.
  Range kpart(int gk, int t) const;
  /// Replication slice g (in [0, c)) of Cannon k-part t.
  Range ksub(int gk, int t, int g) const;
  /// Final-C column slice of n-block J owned by k-task group gk after the
  /// reduce-scatter (paper Example 2: column partitioning).
  Range c_sub_cols(int J, int gk) const;

  // ---- library-native distributions over all nranks world ranks ----
  BlockLayout a_native() const;
  BlockLayout b_native() const;
  BlockLayout c_native() const;

  /// Communication volume lower bound (paper eq. 3), in elements.
  double volume_lower_bound() const;
  /// Per-process communication volume of this plan, in elements (paper eq. 9
  /// generalized to non-cubic grids).
  double comm_volume_per_rank() const;

  static Ca3dmmPlan make(i64 m, i64 n, i64 k, int nranks,
                         const Ca3dmmOptions& opt = {});

 private:
  i64 m_ = 0, n_ = 0, k_ = 0;
  int nranks_ = 0;
  Ca3dmmOptions opt_{};
  ProcGrid grid_;
};

}  // namespace ca3dmm
