#include "core/plan.hpp"

#include <cmath>

namespace ca3dmm {

Ca3dmmPlan Ca3dmmPlan::make(i64 m, i64 n, i64 k, int nranks,
                            const Ca3dmmOptions& opt) {
  CA_REQUIRE(m > 0 && n > 0 && k > 0,
             "CA3DMM needs positive dimensions, got m=%lld n=%lld k=%lld",
             static_cast<long long>(m), static_cast<long long>(n),
             static_cast<long long>(k));
  CA_REQUIRE(nranks > 0, "CA3DMM needs at least one rank, got %d", nranks);
  CA_REQUIRE(opt.min_kblk >= 0,
             "min_kblk must be >= 0 (0 = one GEMM per shift), got %lld",
             static_cast<long long>(opt.min_kblk));
  Ca3dmmPlan p;
  p.m_ = m;
  p.n_ = n;
  p.k_ = k;
  p.nranks_ = nranks;
  p.opt_ = opt;
  if (opt.force_grid.has_value()) {
    p.grid_ = *opt.force_grid;
    CA_REQUIRE(p.grid_.pm >= 1 && p.grid_.pn >= 1 && p.grid_.pk >= 1,
               "forced grid %dx%dx%d has a non-positive dimension",
               p.grid_.pm, p.grid_.pn, p.grid_.pk);
    CA_REQUIRE(p.grid_.active() <= nranks,
               "forced grid %dx%dx%d exceeds %d ranks", p.grid_.pm, p.grid_.pn,
               p.grid_.pk, nranks);
    const int lo = p.grid_.s(), hi = std::max(p.grid_.pm, p.grid_.pn);
    CA_REQUIRE(hi % lo == 0,
               "forced grid %dx%dx%d violates the Cannon constraint (7)",
               p.grid_.pm, p.grid_.pn, p.grid_.pk);
  } else {
    // Constraint (7) is kept for both inner engines: the SUMMA variant here
    // runs on the same Cannon-group topology, which is exactly the §III-E
    // comparison setting ("assume CA3DMM-C and CA3DMM-S use the same
    // process grid").
    p.grid_ = find_grid(m, n, k, nranks, opt.grid);
  }
  if (!opt.k_weights.empty()) {
    CA_REQUIRE(static_cast<int>(opt.k_weights.size()) == p.grid_.pk,
               "k_weights has %d entries but the grid has pk=%d k-task "
               "groups",
               static_cast<int>(opt.k_weights.size()), p.grid_.pk);
    for (size_t g = 0; g < opt.k_weights.size(); ++g)
      CA_REQUIRE(opt.k_weights[g] > 0, "k_weights[%zu] = %g must be > 0", g,
                 opt.k_weights[g]);
  }
  return p;
}

Range Ca3dmmPlan::k_range(int gk) const {
  const std::vector<double>& w = opt_.k_weights;
  if (w.empty()) return block_range(k_, grid_.pk, gk);
  CA_ASSERT(gk >= 0 && gk < grid_.pk);
  double total = 0;
  for (const double x : w) total += x;
  // Cumulative rounding: bound(g) = round(k * prefix_g / total). The prefix
  // sums are nondecreasing, so consecutive bounds never cross and the pk
  // slices tile [0, k) exactly.
  double prefix = 0;
  i64 lo = 0;
  for (int g = 0; g <= gk; ++g) {
    lo = g == 0 ? 0 : static_cast<i64>(std::llround(
                          static_cast<double>(k_) * prefix / total));
    prefix += w[static_cast<size_t>(g)];
  }
  const i64 hi = gk + 1 == grid_.pk
                     ? k_
                     : static_cast<i64>(std::llround(
                           static_cast<double>(k_) * prefix / total));
  return Range{lo, hi};
}

RankCoord Ca3dmmPlan::coord(int world_rank) const {
  CA_ASSERT(world_rank >= 0 && world_rank < nranks_);
  RankCoord co;
  if (world_rank >= active()) return co;  // idle rank
  co.active = true;
  const int group_sz = grid_.pm * grid_.pn;
  co.gk = world_rank / group_sz;
  const int t = world_rank % group_sz;
  const int ss = s() * s();
  co.gc = t / ss;
  const int q = t % ss;
  co.i = q % s();
  co.j = q / s();
  if (replicates_a()) {
    // pn > pm: Cannon groups tile the n dimension.
    co.I = co.i;
    co.J = co.gc * s() + co.j;
  } else {
    co.I = co.gc * s() + co.i;
    co.J = co.j;
  }
  return co;
}

int Ca3dmmPlan::rank_of(int gk, int gc, int i, int j) const {
  return gk * grid_.pm * grid_.pn + gc * s() * s() + j * s() + i;
}

Range Ca3dmmPlan::kpart(int gk, int t) const {
  const Range kg = k_range(gk);
  const Range local = block_range(kg.size(), s(), t);
  return Range{kg.lo + local.lo, kg.lo + local.hi};
}

Range Ca3dmmPlan::ksub(int gk, int t, int g) const {
  const Range kp = kpart(gk, t);
  const Range local = block_range(kp.size(), c(), g);
  return Range{kp.lo + local.lo, kp.lo + local.hi};
}

Range Ca3dmmPlan::c_sub_cols(int J, int gk) const {
  const Range nj = n_range(J);
  const Range local = block_range(nj.size(), grid_.pk, gk);
  return Range{nj.lo + local.lo, nj.lo + local.hi};
}

BlockLayout Ca3dmmPlan::a_native() const {
  BlockLayout l(m_, k_, nranks_);
  for (int r = 0; r < active(); ++r) {
    const RankCoord co = coord(r);
    Rect rect;
    if (replicates_a()) {
      // A block (row i, pre-skew k-part j), replication slice gc.
      rect = Rect{m_range(co.i), ksub(co.gk, co.j, co.gc)};
    } else {
      // A fully distributed: rows of this Cannon group's m slice.
      rect = Rect{m_range(co.I), kpart(co.gk, co.j)};
    }
    if (!rect.empty()) l.add_rect(r, rect);
  }
  return l;
}

BlockLayout Ca3dmmPlan::b_native() const {
  BlockLayout l(k_, n_, nranks_);
  for (int r = 0; r < active(); ++r) {
    const RankCoord co = coord(r);
    Rect rect;
    if (replicates_a()) {
      // B fully distributed: (pre-skew k-part i, this group's n slice).
      rect = Rect{kpart(co.gk, co.i), n_range(co.J)};
    } else {
      // B replicated: block (k-part i, col j), replication slice gc.
      rect = Rect{ksub(co.gk, co.i, co.gc), n_range(co.j)};
    }
    if (!rect.empty()) l.add_rect(r, rect);
  }
  return l;
}

BlockLayout Ca3dmmPlan::c_native() const {
  BlockLayout l(m_, n_, nranks_);
  for (int r = 0; r < active(); ++r) {
    const RankCoord co = coord(r);
    const Rect rect{m_range(co.I), c_sub_cols(co.J, co.gk)};
    if (!rect.empty()) l.add_rect(r, rect);
  }
  return l;
}

double Ca3dmmPlan::volume_lower_bound() const {
  const double mnk = static_cast<double>(m_) * n_ * k_;
  return 3.0 * std::pow(mnk / nranks_, 2.0 / 3.0);
}

double Ca3dmmPlan::comm_volume_per_rank() const {
  // Elements read + updated per process: the three faces of its subdomain
  // (paper §III-A): dm*dk (A) + dk*dn (B) + dm*dn (C).
  const double dm = static_cast<double>(m_) / grid_.pm;
  const double dn = static_cast<double>(n_) / grid_.pn;
  const double dk = static_cast<double>(k_) / grid_.pk;
  return dm * dk + dk * dn + dm * dn;
}

}  // namespace ca3dmm
