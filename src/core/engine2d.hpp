// Inner 2-D engines of CA3DMM: Cannon's algorithm (default) and SUMMA
// (the §III-E alternative).
//
// Both compute a partial C block for one Cannon group: a rank-|K_g| update
// C_partial(M_I, N_J) = A(M_I, K_g) * B(K_g, N_J) distributed over an s x s
// process grid. Rank order inside the group communicator is q = j*s + i
// (i fastest), matching the plan's column-major organization.
//
// Initial distribution (both engines): process (i, j) holds the pre-skew
// Cannon blocks A(row block i, k-part j) and B(k-part i, column block j).
//
// Cannon performs the initial skew, then s-1 circular shifts with
// dual-buffering (communication of step t+1 overlaps the GEMM of step t) and
// multi-shift aggregation (several panels accumulated before one local GEMM
// when k-parts are thin). SUMMA broadcasts the k-part panels along process
// rows/columns instead; its latency is provably no better (paper §III-E).
#pragma once

#include <functional>
#include <vector>

#include "common/partition.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm {

/// Shared description of one 2-D engine invocation.
struct Engine2dShape {
  int s = 1;   ///< grid size
  int i = 0;   ///< my Cannon row
  int j = 0;   ///< my Cannon column
  i64 mb = 0;  ///< rows of my C block (|M_I|)
  i64 nb = 0;  ///< cols of my C block (|N_J|)
  /// Sizes of the s k-parts of this k-task group's k range (canonical
  /// partition of |K_g| into s parts).
  std::vector<i64> kpart_sizes;
  /// Append ABFT checksum trailers to every Cannon skew/shift message and
  /// verify (correcting single-byte corruption) on receipt. Ignored by
  /// SUMMA. See Ca3dmmOptions::abft.
  bool abft = false;
  /// Pipeline communication behind the local GEMM (dual-buffer overlap
  /// budget). See Ca3dmmOptions::overlap.
  bool overlap = true;

  i64 kb_total() const {
    i64 t = 0;
    for (i64 v : kpart_sizes) t += v;
    return t;
  }
  i64 kb_max() const {
    i64 t = 0;
    for (i64 v : kpart_sizes) t = t > v ? t : v;
    return t;
  }
};

/// Callback the engines invoke as soon as the input blocks (a_block,
/// b_block) are dead — for Cannon that is right after the initial skew moves
/// them into the engine's shift buffers. The driver releases the source
/// buffers there, which is what keeps CA3DMM at the paper's eq.-(11) memory
/// footprint (two shift buffers, not three copies).
using ReleaseInputsFn = std::function<void()>;

/// Cannon's algorithm. `a_block` is (mb x kpart_sizes[j]) row-major,
/// `b_block` is (kpart_sizes[i] x nb) row-major, `c_partial` is (mb x nb)
/// and is accumulated into (callers pass it zeroed).
/// `min_kblk` enables multi-shift aggregation (0 = one GEMM per shift).
template <typename T>
void cannon_2d(simmpi::Comm& grid, const Engine2dShape& sh, const T* a_block,
               const T* b_block, T* c_partial, i64 min_kblk,
               const ReleaseInputsFn& release_inputs = {});

/// SUMMA on the same grid, distribution, and result contract as cannon_2d.
/// SUMMA broadcasts panels straight out of the input blocks, so
/// release_inputs only fires after the last panel.
template <typename T>
void summa_2d(simmpi::Comm& grid, const Engine2dShape& sh, const T* a_block,
              const T* b_block, T* c_partial,
              const ReleaseInputsFn& release_inputs = {});

}  // namespace ca3dmm
