#include "core/grid_solver.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace ca3dmm {

double grid_surface(i64 m, i64 n, i64 k, const ProcGrid& g) {
  // Exact per-block extents: the largest block is ceil(dim/p); total surface
  // uses the nominal eq. (4) form but with ceil extents so degenerate grids
  // (p > dim) do not look artificially cheap.
  const double dm = static_cast<double>(ceil_div(m, g.pm));
  const double dn = static_cast<double>(ceil_div(n, g.pn));
  const double dk = static_cast<double>(ceil_div(k, g.pk));
  // 2 * (pm*kn + pn*mk + pk*mn) evaluated as per-process block surfaces
  // summed over the grid.
  const double procs = static_cast<double>(g.active());
  return 2.0 * procs * (dm * dk + dk * dn + dm * dn);
}

double grid_objective(i64 m, i64 n, i64 k, const ProcGrid& g,
                      double flop_word_ratio) {
  const double dm = static_cast<double>(ceil_div(m, g.pm));
  const double dn = static_cast<double>(ceil_div(n, g.pn));
  const double dk = static_cast<double>(ceil_div(k, g.pk));
  const double work =
      static_cast<double>(m) * n * k / static_cast<double>(g.active());
  return work + flop_word_ratio * (dm * dk + dk * dn + dm * dn);
}

double grid_memory_elems(i64 m, i64 n, i64 k, const ProcGrid& g) {
  // Eq. (11) evaluated with ceil-based per-rank block extents, like
  // grid_surface: the nominal m*k/P form is the average, and for
  // non-divisible shapes it underestimates the worst rank's working set, so
  // the max_memory_elems feasibility check could admit grids whose measured
  // peak exceeds the budget at runtime. The widest rank of the 2-D engine
  // dual-buffers an mb x kb A block and a kb x nb B block and accumulates an
  // mb x nb C partial, with kb the widest Cannon k-slice (the k range of a
  // replication group, ceil(k/pk), split over s = min(pm, pn) shifts).
  // Divisible shapes reduce exactly to the nominal eq. (11) value.
  const double mb = static_cast<double>(ceil_div(m, g.pm));
  const double nb = static_cast<double>(ceil_div(n, g.pn));
  const double kb =
      static_cast<double>(ceil_div(ceil_div(k, g.pk), g.s()));
  return 2.0 * kb * (mb + nb) + mb * nb;
}

namespace {

/// Lexicographic fitness: smaller is better — the composite objective,
/// then utilization (sub-target (6)), then deterministic tie-breaks that
/// favour cheap collectives (small pk) and low replication.
struct Fitness {
  double cost;
  int neg_active;
  int pk;
  int c;
  int pm;

  auto tie() const { return std::make_tuple(cost, neg_active, pk, c, pm); }
  bool operator<(const Fitness& o) const { return tie() < o.tie(); }
};

Fitness fitness(i64 m, i64 n, i64 k, const ProcGrid& g, double ratio) {
  return Fitness{grid_objective(m, n, k, g, ratio), -g.active(), g.pk, g.c(),
                 g.pm};
}

template <typename Accept>
ProcGrid enumerate_grids(i64 m, i64 n, i64 k, int P, double l, double ratio,
                         Accept&& accept) {
  // Never split a dimension more ways than its extent: a grid factor beyond
  // the dimension only idles processes inside the grid.
  const auto clamp = [](i64 dim, int P_) {
    return static_cast<int>(std::min<i64>(dim, P_));
  };
  const int pm_max = clamp(m, P), pn_max0 = clamp(n, P), pk_max0 = clamp(k, P);

  // Constraint (5) with floor(l P); if the clamps make that unreachable
  // (tiny problems), fall back to the best reachable utilization.
  int max_active = 1;
  for (int pm = 1; pm <= pm_max; ++pm)
    for (int pk = 1; pk <= pk_max0 && pk * pm <= P; ++pk) {
      const int pn_lim = std::min(pn_max0, P / (pm * pk));
      for (int pn = pn_lim; pn >= 1; --pn) {
        ProcGrid g{pm, pn, pk};
        if (g.active() <= max_active) break;  // pn descending: no improvement
        if (accept(g)) {
          max_active = g.active();
          break;
        }
      }
    }
  const int min_active =
      std::min(static_cast<int>(std::floor(l * P)), max_active);

  ProcGrid best;
  bool have = false;
  Fitness best_fit{};
  for (int pm = 1; pm <= pm_max; ++pm)
    for (int pk = 1; pk <= pk_max0 && pk * pm <= P; ++pk) {
      const int pn_lim = std::min(pn_max0, P / (pm * pk));
      for (int pn = 1; pn <= pn_lim; ++pn) {
        ProcGrid g{pm, pn, pk};
        if (g.active() < min_active) continue;
        if (!accept(g)) continue;
        const Fitness f = fitness(m, n, k, g, ratio);
        if (!have || f < best_fit) {
          best = g;
          best_fit = f;
          have = true;
        }
      }
    }
  CA_REQUIRE(have,
             "no feasible process grid for P=%d under the given constraints "
             "(memory budget too tight?)",
             P);
  return best;
}

bool cannon_ok(const ProcGrid& g) {
  const int lo = g.s(), hi = g.pm > g.pn ? g.pm : g.pn;
  return hi % lo == 0;
}

}  // namespace

ProcGrid find_grid(i64 m, i64 n, i64 k, int P, const GridOptions& opt) {
  CA_REQUIRE(m > 0 && n > 0 && k > 0 && P > 0,
             "find_grid needs positive dimensions, got m=%lld n=%lld k=%lld P=%d",
             static_cast<long long>(m), static_cast<long long>(n),
             static_cast<long long>(k), P);
  const i64 budget = opt.max_memory_elems;
  const auto fits = [&](const ProcGrid& g) {
    return budget <= 0 || grid_memory_elems(m, n, k, g) <=
                              static_cast<double>(budget);
  };
  if (!opt.cannon_compatible)
    return enumerate_grids(m, n, k, P, opt.l, opt.flop_word_ratio, fits);
  return enumerate_grids(m, n, k, P, opt.l, opt.flop_word_ratio,
                         [&](const ProcGrid& g) {
                           return cannon_ok(g) && fits(g);
                         });
}

std::vector<ProcGrid> find_grid_candidates(i64 m, i64 n, i64 k, int P,
                                           int count,
                                           const GridOptions& opt) {
  CA_REQUIRE(m > 0 && n > 0 && k > 0 && P > 0,
             "find_grid_candidates needs positive dimensions, got m=%lld "
             "n=%lld k=%lld P=%d",
             static_cast<long long>(m), static_cast<long long>(n),
             static_cast<long long>(k), P);
  if (count <= 0) return {};
  const i64 budget = opt.max_memory_elems;
  const auto accept = [&](const ProcGrid& g) {
    if (opt.cannon_compatible && !cannon_ok(g)) return false;
    return budget <= 0 ||
           grid_memory_elems(m, n, k, g) <= static_cast<double>(budget);
  };

  // Same enumeration bounds and utilization floor as enumerate_grids, but
  // collecting every feasible grid instead of tracking the single best.
  const auto clamp = [](i64 dim, int P_) {
    return static_cast<int>(std::min<i64>(dim, P_));
  };
  const int pm_max = clamp(m, P), pn_max = clamp(n, P), pk_max = clamp(k, P);
  int max_active = 0;
  std::vector<std::pair<Fitness, ProcGrid>> all;
  for (int pm = 1; pm <= pm_max; ++pm)
    for (int pk = 1; pk <= pk_max && pk * pm <= P; ++pk) {
      const int pn_lim = std::min(pn_max, P / (pm * pk));
      for (int pn = 1; pn <= pn_lim; ++pn) {
        ProcGrid g{pm, pn, pk};
        if (!accept(g)) continue;
        max_active = std::max(max_active, g.active());
        all.emplace_back(fitness(m, n, k, g, opt.flop_word_ratio), g);
      }
    }
  CA_REQUIRE(!all.empty(),
             "no feasible process grid for P=%d under the given constraints "
             "(memory budget too tight?)",
             P);
  const int min_active =
      std::min(static_cast<int>(std::floor(opt.l * P)), max_active);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  std::vector<ProcGrid> out;
  for (const auto& [f, g] : all) {
    if (g.active() < min_active) continue;
    out.push_back(g);
    if (static_cast<int>(out.size()) == count) break;
  }
  return out;
}

ProcGrid find_grid_cosma(i64 m, i64 n, i64 k, int P, double l) {
  // COSMA's source enumerates all grids and picks the one with
  // m/pm ~ k/pk ~ n/pn, i.e. the surface-minimizing grid, with no Cannon
  // constraint (paper §III-C).
  return enumerate_grids(m, n, k, P, l, 100.0,
                         [](const ProcGrid&) { return true; });
}

ProcGrid find_grid_ctf(i64 m, i64 n, i64 k, int P) {
  (void)m;
  (void)n;
  (void)k;
  // CTF folds its cyclic processor grid: choose replication depth c and a
  // near-square 2-D grid of the remaining P/c processes, ignoring the matrix
  // shape — which is why CTF's grids are often far from GEMM-optimal.
  ProcGrid best{1, 1, 1};
  i64 best_active = 0;
  for (int c = 1; c <= P; ++c) {
    if (P / c < 1) break;
    const int q = P / c;
    const int r = static_cast<int>(std::sqrt(static_cast<double>(q)));
    for (int pr = std::max(1, r - 1); pr <= r + 1; ++pr) {
      if (pr > q) continue;
      const int pc = q / pr;
      const i64 active = static_cast<i64>(pr) * pc * c;
      // Prefer utilization; among equal utilization prefer square 2-D grids
      // and shallow replication (CTF defaults to c that divides evenly).
      const bool better =
          active > best_active ||
          (active == best_active &&
           std::abs(pr - pc) < std::abs(best.pm - best.pn)) ||
          (active == best_active && std::abs(pr - pc) == std::abs(best.pm - best.pn) &&
           c < best.pk);
      if (better) {
        best = ProcGrid{pr, pc, c};
        best_active = active;
      }
    }
  }
  return best;
}

}  // namespace ca3dmm
