// Heterogeneity-aware planning over a multi-cluster Topology.
//
// CA3DMM's grid solver assumes every process computes at the same rate. On
// a heterogeneous Topology (e.g. a CPU cluster joined to a GPU cluster)
// that assumption makes the fastest ranks idle at every reduce: each k-task
// group gets k/pk columns regardless of what its ranks can sustain.
//
// make_hetero_options exploits the one degree of freedom that changes
// nothing about the computed C: the k split across k-task groups
// (Ca3dmmOptions::k_weights). It
//
//   1. picks, from the solver's top candidates, a grid whose k-task groups
//      (contiguous blocks of pm*pn ranks) align with the cluster
//      boundaries, so no group straddles the inter-cluster link, and
//   2. sizes each group's k slice proportionally to its sustained rate —
//      the *minimum* rank_flops() over the group's ranks, since the even
//      m/n partition inside a group makes its slowest rank the gate.
//
// The result is bit-identical to the homogeneous plan's C (the m/n block
// ranges and reduction order are untouched); only the per-group work —
// and hence the executed virtual time — changes.
#pragma once

#include "core/plan.hpp"
#include "simmpi/topology.hpp"

namespace ca3dmm {

/// Options for an (m x k) x (k x n) product on the first P ranks of `topo`
/// (P <= topo.nranks()). On a single-cluster (homogeneous) topology this
/// returns default options — the caller loses nothing by calling it
/// unconditionally. `grid` carries the solver constraints to respect.
Ca3dmmOptions make_hetero_options(const simmpi::Topology& topo, i64 m, i64 n,
                                  i64 k, int P, const GridOptions& grid = {});

/// Per-k-task-group compute weights for `g` on `topo`: entry gk is the
/// minimum rank_flops() over the ranks of k-task group gk (contiguous
/// blocks of pm*pn ranks). Exposed for tests and the cost model.
std::vector<double> k_group_weights(const simmpi::Topology& topo,
                                    const ProcGrid& g);

/// True iff no k-task group of `g` (contiguous blocks of pm*pn active
/// ranks) straddles a cluster boundary of `topo`.
bool grid_aligned_with_clusters(const simmpi::Topology& topo,
                                const ProcGrid& g);

}  // namespace ca3dmm
