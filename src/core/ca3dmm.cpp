#include "core/ca3dmm.hpp"

#include <cstring>

#include "simmpi/cluster.hpp"

namespace ca3dmm {

using simmpi::Comm;
using simmpi::Phase;
using simmpi::PhaseScope;
using simmpi::TrackedBuffer;

namespace {

/// Assembles the post-replication A Cannon block from the c all-gathered
/// slices. Slice g is (mb x ksub_g) row-major; slices are column ranges of
/// the full (mb x kb) block, in order, so we interleave them column-wise.
template <typename T>
void assemble_a_block(const T* gathered, i64 mb,
                      const std::vector<i64>& sub_sizes, T* block) {
  i64 kb = 0;
  for (i64 sz : sub_sizes) kb += sz;
  i64 src_off = 0, col_off = 0;
  for (i64 sz : sub_sizes) {
    for (i64 r = 0; r < mb; ++r)
      std::memcpy(block + r * kb + col_off, gathered + src_off + r * sz,
                  static_cast<size_t>(sz) * sizeof(T));
    src_off += mb * sz;
    col_off += sz;
  }
}

/// Algorithm-1 execution body. When `cached` is non-null its pre-split
/// communicators are used and no split cost is charged; when null, every
/// split happens at the same program point as always (so one-shot virtual
/// times are unchanged and the cost model stays pinned to the engine).
template <typename T>
void ca3dmm_execute(Comm& world, const Ca3dmmPlan& plan, PlanComms* cached,
                    bool trans_a, bool trans_b, const BlockLayout& a_layout,
                    const T* a_local, const BlockLayout& b_layout,
                    const T* b_local, const BlockLayout& c_layout,
                    T* c_local) {
  // Precondition validation. Every check below depends only on arguments
  // that MPI semantics require to be identical on all ranks (or on this
  // rank's own buffers), and runs before any communication: a bad input
  // raises the same ca3dmm::Error on every rank collectively instead of
  // diverging into a hang.
  CA_REQUIRE(world.valid(), "ca3dmm_multiply needs a valid communicator");
  CA_REQUIRE(world.size() == plan.nranks(), "plan is for %d ranks, comm has %d",
             plan.nranks(), world.size());
  const i64 m = plan.m(), n = plan.n(), k = plan.k();
  CA_REQUIRE(m > 0 && n > 0 && k > 0, "plan is empty (default-constructed?)");
  CA_REQUIRE(a_layout.nranks() == world.size() &&
                 b_layout.nranks() == world.size() &&
                 c_layout.nranks() == world.size(),
             "operand layouts must cover exactly the %d ranks of the "
             "communicator (got A:%d B:%d C:%d)",
             world.size(), a_layout.nranks(), b_layout.nranks(),
             c_layout.nranks());
  CA_REQUIRE(c_layout.rows() == m && c_layout.cols() == n,
             "C layout is %lld x %lld, plan computes %lld x %lld",
             static_cast<long long>(c_layout.rows()),
             static_cast<long long>(c_layout.cols()),
             static_cast<long long>(m), static_cast<long long>(n));
  CA_REQUIRE((trans_a ? a_layout.cols() : a_layout.rows()) == m &&
                 (trans_a ? a_layout.rows() : a_layout.cols()) == k,
             "A layout is %lld x %lld, plan needs op(A) = %lld x %lld",
             static_cast<long long>(a_layout.rows()),
             static_cast<long long>(a_layout.cols()),
             static_cast<long long>(m), static_cast<long long>(k));
  CA_REQUIRE((trans_b ? b_layout.cols() : b_layout.rows()) == k &&
                 (trans_b ? b_layout.rows() : b_layout.cols()) == n,
             "B layout is %lld x %lld, plan needs op(B) = %lld x %lld",
             static_cast<long long>(b_layout.rows()),
             static_cast<long long>(b_layout.cols()),
             static_cast<long long>(k), static_cast<long long>(n));
  const Ca3dmmOptions& opt = plan.options();
  CA_REQUIRE(opt.min_kblk >= 0,
             "min_kblk must be >= 0 (0 = one GEMM per shift), got %lld",
             static_cast<long long>(opt.min_kblk));

  const int me = world.rank();
  CA_REQUIRE(a_local != nullptr || a_layout.local_size(me) == 0,
             "rank %d: A local buffer is null but the layout assigns it "
             "%lld elements",
             me, static_cast<long long>(a_layout.local_size(me)));
  CA_REQUIRE(b_local != nullptr || b_layout.local_size(me) == 0,
             "rank %d: B local buffer is null but the layout assigns it "
             "%lld elements",
             me, static_cast<long long>(b_layout.local_size(me)));
  CA_REQUIRE(c_local != nullptr || c_layout.local_size(me) == 0,
             "rank %d: C local buffer is null but the layout assigns it "
             "%lld elements",
             me, static_cast<long long>(c_layout.local_size(me)));
  const RankCoord co = plan.coord(me);
  const int s = plan.s(), c = plan.c(), pk = plan.grid().pk;
  if (cached) {
    CA_REQUIRE(co.active == cached->active.valid(),
               "rank %d: cached communicators do not match the plan "
               "(active comm %s but rank is %s)",
               me, cached->active.valid() ? "valid" : "invalid",
               co.active ? "active" : "idle");
    CA_REQUIRE(!co.active || cached->cannon.size() == s * s,
               "rank %d: cached Cannon comm has %d ranks, plan needs %d",
               me, cached->cannon.valid() ? cached->cannon.size() : 0, s * s);
  }

  const BlockLayout a_native = plan.a_native();
  const BlockLayout b_native = plan.b_native();
  const BlockLayout c_native = plan.c_native();

  // ---- step 4 (Alg. 1): redistribute A and B (all ranks participate) ----
  TrackedBuffer<T> a_init(a_native.local_size(me));
  TrackedBuffer<T> b_init(b_native.local_size(me));
  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, a_layout, a_local, a_native, a_init.data(),
                    trans_a);
    redistribute<T>(world, b_layout, b_local, b_native, b_init.data(),
                    trans_b);
  }

  // Communicator splits. Colors are disjoint per split call; inactive ranks
  // pass color -1 (undefined).
  Comm active_local;
  if (!cached) active_local = world.split(co.active ? 0 : -1, me);
  Comm& active = cached ? cached->active : active_local;

  TrackedBuffer<T> c_result;  // my final C block (c_native local data)

  if (co.active) {
    const i64 mb = plan.m_range(co.I).size();
    const i64 nb = plan.n_range(co.J).size();

    Engine2dShape sh;
    sh.s = s;
    sh.i = co.i;
    sh.j = co.j;
    sh.mb = mb;
    sh.nb = nb;
    for (int t = 0; t < s; ++t)
      sh.kpart_sizes.push_back(plan.kpart(co.gk, t).size());
    sh.abft = opt.abft;
    sh.overlap = opt.overlap;

    Comm cannon_local;
    if (!cached) cannon_local = active.split(co.gk * c + co.gc, co.j * s + co.i);
    Comm& cannon = cached ? cached->cannon : cannon_local;
    CA_ASSERT(cannon.size() == s * s);

    // ---- step 5: replicate A or B across the c Cannon groups ----
    TrackedBuffer<T> a_blk, b_blk;
    const T* a_ptr = a_init.data();
    const T* b_ptr = b_init.data();
    if (c > 1) {
      Comm repl_local;
      if (!cached)
        repl_local = active.split(co.gk * s * s + co.j * s + co.i, co.gc);
      Comm& repl = cached ? cached->repl : repl_local;
      CA_ASSERT(repl.size() == c);
      if (opt.coll) repl.set_collective_config(*opt.coll);
      PhaseScope ps(world, Phase::kReplicate);
      if (plan.replicates_a()) {
        std::vector<i64> sub_elems(static_cast<size_t>(c));
        std::vector<i64> sub_bytes(static_cast<size_t>(c));
        std::vector<i64> sub_cols(static_cast<size_t>(c));
        for (int g = 0; g < c; ++g) {
          const Range r = plan.ksub(co.gk, co.j, g);
          sub_cols[static_cast<size_t>(g)] = r.size();
          sub_elems[static_cast<size_t>(g)] = mb * r.size();
          sub_bytes[static_cast<size_t>(g)] =
              sub_elems[static_cast<size_t>(g)] * static_cast<i64>(sizeof(T));
        }
        TrackedBuffer<T> gathered(mb * plan.kpart(co.gk, co.j).size());
        repl.allgatherv_bytes(a_init.data(),
                              sub_bytes[static_cast<size_t>(co.gc)],
                              gathered.data(), sub_bytes);
        a_blk.resize(mb * plan.kpart(co.gk, co.j).size());
        simmpi::trace_marker("ca3dmm:assemble A",
                             static_cast<double>(a_blk.size()) * sizeof(T));
        assemble_a_block<T>(gathered.data(), mb, sub_cols, a_blk.data());
        a_ptr = a_blk.data();
        a_init.release();
      } else {
        // B slices are row ranges: the all-gather output is already the
        // row-major block.
        std::vector<i64> sub_bytes(static_cast<size_t>(c));
        for (int g = 0; g < c; ++g)
          sub_bytes[static_cast<size_t>(g)] =
              plan.ksub(co.gk, co.i, g).size() * nb *
              static_cast<i64>(sizeof(T));
        b_blk.resize(plan.kpart(co.gk, co.i).size() * nb);
        repl.allgatherv_bytes(b_init.data(),
                              sub_bytes[static_cast<size_t>(co.gc)],
                              b_blk.data(), sub_bytes);
        b_ptr = b_blk.data();
        b_init.release();
      }
    }

    // ---- step 6: 2-D engine computes the partial C block ----
    TrackedBuffer<T> c_partial(mb * nb);
    const auto release_inputs = [&] {
      a_blk.release();
      b_blk.release();
      a_init.release();
      b_init.release();
    };
    if (opt.use_summa)
      summa_2d<T>(cannon, sh, a_ptr, b_ptr, c_partial.data(), release_inputs);
    else
      cannon_2d<T>(cannon, sh, a_ptr, b_ptr, c_partial.data(), opt.min_kblk,
                   release_inputs);

    // ---- step 7: reduce-scatter partial C across the pk k-task groups ----
    if (pk > 1) {
      Comm reduce_local;
      if (!cached)
        reduce_local = active.split((co.gc * s + co.j) * s + co.i, co.gk);
      Comm& reduce = cached ? cached->reduce : reduce_local;
      CA_ASSERT(reduce.size() == pk);
      if (opt.coll) reduce.set_collective_config(*opt.coll);
      PhaseScope ps(world, Phase::kReduce);
      // Pack column sub-blocks in destination (gk) order.
      simmpi::trace_marker("ca3dmm:pack C",
                           static_cast<double>(mb * nb) * sizeof(T));
      TrackedBuffer<T> packed(mb * nb);
      std::vector<i64> counts(static_cast<size_t>(pk));
      i64 pos = 0;
      const Range nj = plan.n_range(co.J);
      for (int g = 0; g < pk; ++g) {
        const Range sub = plan.c_sub_cols(co.J, g);
        counts[static_cast<size_t>(g)] = mb * sub.size();
        for (i64 r = 0; r < mb; ++r) {
          std::memcpy(packed.data() + pos,
                      c_partial.data() + r * nb + (sub.lo - nj.lo),
                      static_cast<size_t>(sub.size()) * sizeof(T));
          pos += sub.size();
        }
      }
      CA_ASSERT(pos == mb * nb);
      // The packed buffer holds everything; the partial block is dead.
      c_partial.release();
      c_result.resize(counts[static_cast<size_t>(co.gk)]);
      reduce.reduce_scatter(packed.data(), c_result.data(), counts);
    } else {
      c_result = std::move(c_partial);
    }
  } else {
    c_result.resize(0);
  }

  // ---- step 8: redistribute C to the caller's layout (all ranks) ----
  {
    PhaseScope ps(world, Phase::kRedistribute);
    redistribute<T>(world, c_native, c_result.data(), c_layout, c_local,
                    false);
  }
}

}  // namespace

PlanComms PlanComms::make(Comm& world, const Ca3dmmPlan& plan) {
  CA_REQUIRE(world.valid(), "PlanComms::make needs a valid communicator");
  CA_REQUIRE(world.size() == plan.nranks(),
             "plan is for %d ranks, comm has %d", plan.nranks(), world.size());
  CA_REQUIRE(plan.m() > 0, "plan is empty (default-constructed?)");
  const int me = world.rank();
  const RankCoord co = plan.coord(me);
  const int s = plan.s(), c = plan.c(), pk = plan.grid().pk;
  PlanComms pc;
  pc.active = world.split(co.active ? 0 : -1, me);
  if (!co.active) return pc;
  pc.cannon = pc.active.split(co.gk * c + co.gc, co.j * s + co.i);
  CA_ASSERT(pc.cannon.size() == s * s);
  if (c > 1) {
    pc.repl = pc.active.split(co.gk * s * s + co.j * s + co.i, co.gc);
    CA_ASSERT(pc.repl.size() == c);
  }
  if (pk > 1) {
    pc.reduce = pc.active.split((co.gc * s + co.j) * s + co.i, co.gk);
    CA_ASSERT(pc.reduce.size() == pk);
  }
  return pc;
}

template <typename T>
void ca3dmm_multiply(Comm& world, const Ca3dmmPlan& plan, bool trans_a,
                     bool trans_b, const BlockLayout& a_layout,
                     const T* a_local, const BlockLayout& b_layout,
                     const T* b_local, const BlockLayout& c_layout,
                     T* c_local) {
  ca3dmm_execute<T>(world, plan, nullptr, trans_a, trans_b, a_layout, a_local,
                    b_layout, b_local, c_layout, c_local);
}

template <typename T>
void ca3dmm_multiply(Comm& world, const Ca3dmmPlan& plan, PlanComms& comms,
                     bool trans_a, bool trans_b, const BlockLayout& a_layout,
                     const T* a_local, const BlockLayout& b_layout,
                     const T* b_local, const BlockLayout& c_layout,
                     T* c_local) {
  ca3dmm_execute<T>(world, plan, &comms, trans_a, trans_b, a_layout, a_local,
                    b_layout, b_local, c_layout, c_local);
}

template void ca3dmm_multiply<float>(Comm&, const Ca3dmmPlan&, bool, bool,
                                     const BlockLayout&, const float*,
                                     const BlockLayout&, const float*,
                                     const BlockLayout&, float*);
template void ca3dmm_multiply<double>(Comm&, const Ca3dmmPlan&, bool, bool,
                                      const BlockLayout&, const double*,
                                      const BlockLayout&, const double*,
                                      const BlockLayout&, double*);
template void ca3dmm_multiply<float>(Comm&, const Ca3dmmPlan&, PlanComms&,
                                     bool, bool, const BlockLayout&,
                                     const float*, const BlockLayout&,
                                     const float*, const BlockLayout&, float*);
template void ca3dmm_multiply<double>(Comm&, const Ca3dmmPlan&, PlanComms&,
                                      bool, bool, const BlockLayout&,
                                      const double*, const BlockLayout&,
                                      const double*, const BlockLayout&,
                                      double*);

}  // namespace ca3dmm
