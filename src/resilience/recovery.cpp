#include "resilience/recovery.hpp"

#include <numeric>

#include "common/error.hpp"

namespace ca3dmm::resilience {

using simmpi::Cluster;
using simmpi::FaultPlan;
using simmpi::Machine;
using simmpi::Topology;

namespace {

/// Translates a fault plan from the pre-shrink rank numbering to the
/// post-shrink one. old_to_new[r] is the new rank of pre-shrink rank r, or
/// -1 if r was excluded. Entries targeting excluded ranks (or degraded
/// nodes) are dropped — the fault already fired, or its target no longer
/// exists; entries that survive keep their trigger points (a kill's at_op
/// counts the rank's own ops, which restart from zero each attempt).
/// Straggler entries name PHYSICAL nodes and survive untouched (unless
/// degraded or empty of survivors): the attempt topology pins survivors to
/// their original nodes, so a slow node keeps its id across shrinks.
FaultPlan remap_fault_plan(const FaultPlan& plan,
                           const std::vector<int>& old_to_new,
                           const std::vector<int>& degraded,
                           const Topology& next_topo) {
  const int p_old = static_cast<int>(old_to_new.size());
  auto mapped = [&](int r) {
    return r >= 0 && r < p_old ? old_to_new[static_cast<size_t>(r)] : -1;
  };
  FaultPlan out;
  for (const FaultPlan::KillRank& k : plan.kills) {
    const int nr = mapped(k.rank);
    if (nr >= 0) out.kills.push_back({nr, k.at_op});
  }
  for (const FaultPlan::FlipPayload& f : plan.flips) {
    const int ns = mapped(f.src), nd = mapped(f.dst);
    if (ns >= 0 && nd >= 0)
      out.flips.push_back({ns, nd, f.tag, f.nth_match, f.offset, f.mask});
  }
  for (const FaultPlan::StraggleNode& s : plan.stragglers) {
    bool dropped = false;
    for (int dn : degraded) dropped = dropped || dn == s.node;
    if (dropped) continue;
    bool populated = false;
    for (int r = 0; r < next_topo.nranks() && !populated; ++r)
      populated = next_topo.node_of_rank(r) == s.node;
    if (populated) out.stragglers.push_back(s);
  }
  return out;
}

}  // namespace

ResilientRunner::ResilientRunner(int nranks, Machine machine,
                                 RetryPolicy policy)
    : ResilientRunner(Topology::homogeneous(nranks, machine), policy) {}

ResilientRunner::ResilientRunner(Topology topo, RetryPolicy policy)
    : nranks_(topo.nranks()), topo_(std::move(topo)), policy_(policy) {
  CA_REQUIRE(nranks_ >= 1, "ResilientRunner needs at least one rank, got %d",
             nranks_);
  CA_REQUIRE(policy.max_attempts >= 1,
             "RetryPolicy::max_attempts must be >= 1, got %d",
             policy.max_attempts);
  CA_REQUIRE(policy.backoff_s >= 0, "RetryPolicy::backoff_s must be >= 0");
}

RecoveryReport ResilientRunner::run(
    const std::function<void(simmpi::Comm&)>& rank_main) {
  report_ = RecoveryReport{};
  std::vector<int> survivors(static_cast<size_t>(nranks_));
  std::iota(survivors.begin(), survivors.end(), 0);
  FaultPlan plan = faults_;

  for (int attempt = 1;; ++attempt) {
    const int P = static_cast<int>(survivors.size());
    // The attempt topology pins survivors to their pre-shrink physical
    // nodes (and clusters); for attempt 1 this is the full original world.
    const Topology attempt_topo = topo_.restricted_to(survivors);
    cluster_ = std::make_unique<Cluster>(attempt_topo);
    cluster_->set_fault_plan(plan);
    cluster_->set_straggler_policy(straggler_);
    cluster_->set_validation(validation_);
    cluster_->set_trace(trace_);

    AttemptRecord rec;
    rec.attempt = attempt;
    rec.nranks = P;
    try {
      cluster_->run(rank_main);
      rec.ok = true;
      rec.vtime = cluster_->aggregate_stats().vtime;
      report_.attempts.push_back(rec);
      report_.ok = true;
      report_.final_nranks = P;
      report_.surviving_world_ranks = survivors;
      report_.final_stats = cluster_->aggregate_stats();
      return report_;
    } catch (const Error& e) {
      rec.error = e.what();
      rec.vtime = cluster_->aggregate_stats().vtime;
      rec.degraded_nodes = cluster_->degraded_nodes();

      // Failure set in attempt-local numbering. Node-level faults
      // (straggler reclassification) exclude whole nodes; otherwise the
      // recorded failed ranks are excluded individually. Both sources are
      // sorted ascending.
      std::vector<int> excluded;
      if (!rec.degraded_nodes.empty()) {
        for (int r = 0; r < P; ++r)
          for (int dn : rec.degraded_nodes)
            if (attempt_topo.node_of_rank(r) == dn) {
              excluded.push_back(r);
              break;
            }
      } else {
        excluded = cluster_->failed_ranks();
      }
      for (int r : excluded)
        rec.failed_world_ranks.push_back(survivors[static_cast<size_t>(r)]);
      report_.attempts.push_back(rec);
      report_.final_nranks = P;
      report_.surviving_world_ranks = survivors;

      // A failure with no rank attributed (watchdog deadlock) cannot be
      // shrunk away; one where every rank failed without a degraded node is
      // a collectively raised input error that would recur at any size.
      if (excluded.empty() || static_cast<int>(excluded.size()) >= P)
        throw Error(strprintf(
            "recovery: failure is not shrinkable (%s) — %s",
            excluded.empty() ? "no rank attributed"
                             : "all ranks failed collectively",
            e.what()));
      if (attempt >= policy_.max_attempts)
        throw Error(strprintf(
            "recovery: retry budget exhausted after %d attempt%s — last "
            "failure: %s",
            attempt, attempt == 1 ? "" : "s", e.what()));

      // Shrink: renumber survivors contiguously (MPI_Comm_shrink-like).
      std::vector<int> old_to_new(static_cast<size_t>(P), -1);
      std::vector<int> next;
      size_t xi = 0;
      int nn = 0;
      for (int r = 0; r < P; ++r) {
        if (xi < excluded.size() && excluded[xi] == r) {
          ++xi;
          continue;
        }
        old_to_new[static_cast<size_t>(r)] = nn++;
        next.push_back(survivors[static_cast<size_t>(r)]);
      }
      survivors = std::move(next);
      plan = remap_fault_plan(plan, old_to_new, rec.degraded_nodes,
                              topo_.restricted_to(survivors));
      report_.backoff_s += policy_.backoff_s;
    }
  }
}

}  // namespace ca3dmm::resilience
