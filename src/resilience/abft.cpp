#include "resilience/abft.hpp"

namespace ca3dmm::resilience {

namespace {

inline int trailer_bits(i64 payload_bytes) {
  int bits = 0;
  while ((payload_bytes >> bits) != 0) ++bits;
  return bits;
}

}  // namespace

void abft_encode(const void* payload, i64 payload_bytes, void* trailer) {
  if (payload_bytes <= 0) return;
  const unsigned char* p = static_cast<const unsigned char*>(payload);
  unsigned char* tr = static_cast<unsigned char*>(trailer);
  const int bits = trailer_bits(payload_bytes);
  unsigned char x_all = 0;
  for (int b = 0; b <= bits; ++b) tr[b] = 0;
  for (i64 i = 0; i < payload_bytes; ++i) {
    const unsigned char v = p[i];
    x_all ^= v;
    // Position i participates in parity b iff bit b of (i + 1) is set.
    i64 pos = i + 1;
    for (int b = 0; pos != 0; ++b, pos >>= 1)
      if (pos & 1) tr[1 + b] ^= v;
  }
  tr[0] = x_all;
}

AbftDecodeResult abft_decode(void* payload, i64 payload_bytes,
                             const void* trailer) {
  AbftDecodeResult res;
  if (payload_bytes <= 0) return res;
  unsigned char* p = static_cast<unsigned char*>(payload);
  const unsigned char* tr = static_cast<const unsigned char*>(trailer);
  const int bits = trailer_bits(payload_bytes);

  unsigned char s_all = tr[0];
  unsigned char s_pos[64] = {};
  for (i64 i = 0; i < payload_bytes; ++i) {
    const unsigned char v = p[i];
    s_all ^= v;
    i64 pos = i + 1;
    for (int b = 0; pos != 0; ++b, pos >>= 1)
      if (pos & 1) s_pos[b] ^= v;
  }
  i64 loc_mask = 0;     // bits b with nonzero syndrome
  int nonzero_pos = 0;  // count of nonzero positional syndromes
  bool uniform = true;  // every nonzero S_b equals S_all
  for (int b = 0; b < bits; ++b) {
    const unsigned char s = static_cast<unsigned char>(s_pos[b] ^ tr[1 + b]);
    if (s != 0) {
      ++nonzero_pos;
      loc_mask |= static_cast<i64>(1) << b;
      if (s != s_all) uniform = false;
    }
  }

  if (s_all == 0 && nonzero_pos == 0) return res;  // clean

  if (s_all != 0 && nonzero_pos > 0 && uniform) {
    const i64 loc = loc_mask - 1;
    if (loc >= payload_bytes) {
      res.outcome = AbftOutcome::kUncorrectable;
      return res;
    }
    p[loc] ^= s_all;
    res.outcome = AbftOutcome::kCorrected;
    res.offset = loc;
    res.delta = s_all;
    return res;
  }
  if (s_all != 0 && nonzero_pos == 0) {
    // Only the X_all trailer byte itself differs: it took the error.
    res.outcome = AbftOutcome::kTrailerHit;
    return res;
  }
  if (s_all == 0 && nonzero_pos == 1) {
    // Exactly one positional trailer byte took the error.
    res.outcome = AbftOutcome::kTrailerHit;
    return res;
  }
  res.outcome = AbftOutcome::kUncorrectable;
  return res;
}

}  // namespace ca3dmm::resilience
